// bcastgen — inspect a broadcast program without running a simulation.
//
// Prints the generated schedule's geometry (chunk sizes, minor cycles,
// period, wasted slots), per-disk frequencies and analytic expected
// delays, and optionally the raw slot sequence. Examples:
//
//   bcastgen --disks=1,4,4 --freqs=4,2,1 --dump     # the paper's Figure 3
//   bcastgen --disks=500,2000,2500 --delta=7
//   bcastgen --disks=500,2000,2500 --optimizer=ksy
//   bcastgen --disks=500,2000,2500 --delta=3 --optimize

#include <algorithm>
#include <fstream>
#include <iostream>
#include <numeric>

#include "broadcast/analysis.h"
#include "broadcast/generator.h"
#include "broadcast/schedule_optimizer.h"
#include "broadcast/serialize.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/zipf.h"

namespace bcast {
namespace {

int Run(int argc, const char* const* argv) {
  std::string disks = "500,2000,2500";
  std::string freqs;
  std::string optimizer_name = "delta";
  uint64_t delta = 3;
  bool dump = false;
  bool optimize = false;
  uint64_t access_range = 1000;
  double theta = 0.95;
  std::string save_path;
  std::string log_level;

  FlagSet flags("bcastgen");
  flags.AddString("disks", &disks, "comma-separated pages per disk");
  flags.AddString("freqs", &freqs,
                  "explicit relative frequencies (overrides --delta)");
  flags.AddUint64("delta", &delta, "frequency rule parameter");
  flags.AddString("optimizer", &optimizer_name,
                  "schedule optimizer: delta | ksy | rbo (non-delta "
                  "derive frequencies from the analytic workload)");
  flags.AddBool("dump", &dump, "print the full slot sequence");
  flags.AddBool("optimize", &optimize,
                "also search for a better layout with the chosen "
                "optimizer (same disk count)");
  flags.AddUint64("access_range", &access_range,
                  "hot pages for the analytic workload");
  flags.AddDouble("theta", &theta, "Zipf skew of the analytic workload");
  flags.AddString("save", &save_path,
                  "serialize the program to this file (bcastcheck input)");
  flags.AddString("log_level", &log_level,
                  "log threshold: debug|info|warn|error|fatal");

  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n\n" << flags.HelpText();
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::cerr << "unknown --log_level: " << log_level
                << " (debug|info|warn|error|fatal)\n";
      return 2;
    }
    SetLogThreshold(level);
  }

  Result<std::vector<uint64_t>> sizes = ParseUint64List(disks);
  if (!sizes.ok()) {
    std::cerr << "--disks: " << sizes.status().ToString() << "\n";
    return 2;
  }
  const ScheduleOptimizer* opt = FindScheduleOptimizer(optimizer_name);
  if (opt == nullptr) {
    std::cerr << "unknown --optimizer: " << optimizer_name
              << " (delta|ksy|rbo)\n";
    return 2;
  }
  if (optimizer_name != "delta" && !freqs.empty()) {
    std::cerr << "explicit --freqs pin the schedule; they require "
                 "--optimizer=delta\n";
    return 2;
  }
  const uint64_t total_pages =
      std::accumulate(sizes->begin(), sizes->end(), uint64_t{0});
  // The analytic workload (also what ksy/rbo optimize for): Zipf over
  // the hottest access_range pages, zero elsewhere.
  auto workload_probs = [&]() -> std::vector<double> {
    std::vector<double> probs(total_pages, 0.0);
    auto zipf = RegionZipfGenerator::Make(access_range, 50, theta);
    if (zipf.ok()) {
      const uint64_t hot = std::min(access_range, total_pages);
      for (PageId p = 0; p < static_cast<PageId>(hot); ++p) {
        probs[p] = zipf->Probability(p);
      }
    }
    return probs;
  };

  OptimizerRequest request;
  request.disk_sizes = *sizes;
  request.delta = delta;
  if (!freqs.empty()) {
    Result<std::vector<uint64_t>> f = ParseUint64List(freqs);
    if (!f.ok()) {
      std::cerr << "--freqs: " << f.status().ToString() << "\n";
      return 2;
    }
    request.rel_freqs = *f;
  }
  if (optimizer_name != "delta") request.probs = workload_probs();
  Result<OptimizedSchedule> built = opt->Build(request);
  if (!built.ok()) {
    std::cerr << built.status().ToString() << "\n";
    return 1;
  }
  const DiskLayout* const layout = &built->layout;
  const BroadcastProgram* const program = &built->program;

  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) {
      std::cerr << "--save: cannot open " << save_path << "\n";
      return 1;
    }
    Status saved = SaveProgram(*program, &out);
    if (!saved.ok()) {
      std::cerr << "--save: " << saved.ToString() << "\n";
      return 1;
    }
    std::cout << "Saved program to " << save_path << "\n";
  }

  std::cout << "Layout " << layout->ToString() << "\n";
  if (optimizer_name != "delta") {
    std::cout << "Optimizer " << optimizer_name << " predicts E[delay] "
              << FormatDouble(built->predicted_delay, 1) << " units\n";
  }
  std::cout << "Period " << program->period() << " slots, "
            << program->EmptySlots() << " empty ("
            << FormatDouble(100.0 * program->EmptySlots() /
                                program->period(),
                            2)
            << "% waste)\n\n";

  AsciiTable table({"Disk", "Pages", "RelFreq", "Gap", "E[delay]"});
  PageId first = 0;
  for (uint64_t d = 0; d < layout->NumDisks(); ++d) {
    const auto gaps = program->InterArrivalGaps(first);
    table.AddRow({std::to_string(d + 1),
                  std::to_string(layout->sizes[d]),
                  std::to_string(layout->rel_freqs[d]),
                  std::to_string(gaps[0]),
                  FormatDouble(ExpectedDelay(*program, first), 1)});
    first += static_cast<PageId>(layout->sizes[d]);
  }
  table.Print(std::cout);

  // Workload-weighted expected delay.
  const uint64_t total = layout->TotalPages();
  if (access_range <= total) {
    auto zipf = RegionZipfGenerator::Make(access_range, 50, theta);
    if (zipf.ok()) {
      std::vector<double> probs(total, 0.0);
      for (PageId p = 0; p < access_range; ++p) {
        probs[p] = zipf->Probability(p);
      }
      std::cout << "\nExpected delay under Zipf(" << theta << ") access to "
                << access_range << " pages: "
                << FormatDouble(
                       ExpectedDelayForDistribution(*program, probs), 1)
                << " units (flat disk: "
                << FormatDouble(static_cast<double>(total) / 2.0, 1)
                << ")\n";
      if (optimize) {
        OptimizerRequest search;
        search.disk_sizes = *sizes;
        search.delta = delta;
        search.probs = probs;
        search.num_disks = layout->NumDisks();
        search.max_delta = 7;
        Result<OptimizedSchedule> best = opt->Design(search);
        if (best.ok()) {
          std::cout << "Optimizer (" << opt->name() << ") suggests "
                    << best->layout.ToString() << ": "
                    << FormatDouble(best->predicted_delay, 1)
                    << " units\n";
        }
      }
    }
  }

  if (dump) {
    std::cout << "\nSchedule:\n";
    for (SlotId s = 0; s < program->period(); ++s) {
      const PageId p = program->page_at(s);
      if (p == kEmptySlot) {
        std::cout << "-";
      } else {
        std::cout << p;
      }
      std::cout << ((s + 1) % 25 == 0 ? '\n' : ' ');
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace bcast

int main(int argc, char** argv) { return bcast::Run(argc, argv); }
