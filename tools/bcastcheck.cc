// bcastcheck — the regression gate: independently re-verifies paper
// invariants and diffs run reports against golden baselines.
//
// Three check surfaces, combinable in one invocation; the exit code is 0
// only when every requested check passes (1 = checks failed, 2 = usage or
// I/O error):
//
//   bcastcheck --report build/report.json
//       internal consistency of a JSON run report (percentile ordering,
//       request accounting, non-negative throughput).
//
//   bcastcheck --report build/report.json --baseline tests/baselines/
//       additionally diff the report against the matching golden baseline
//       (matched by tool/mode/config/seed) with per-metric tolerances:
//       exact for counts, --perf_tolerance for percentiles,
//       --throughput_tolerance for slots/sec. Baselines recorded on a
//       different machine: add --skip_throughput. --diff_out writes the
//       full diff as JSON (the CI artifact).
//
//   bcastcheck --program prog.txt [--disks 500,2000,2500 --delta 2]
//       structural invariants of a serialized broadcast program (fixed
//       inter-arrival spacing, service mix); with a layout given, also
//       the Section-2.2 period identity and per-disk frequencies. The
//       layout checks assume the Δ-rule's chunked structure — check
//       bit-reversal (--optimizer=rbo) programs without --disks, since
//       their dyadic slot layout keeps fixed inter-arrival but not the
//       chunk-interleaved period identity.
//
//   bcastcheck --paper
//       simulation-backed checks of the paper's quantitative claims
//       (DES vs analytic model agreement, Bus Stop Paradox ordering,
//       Figure-10 P >= PIX ordering).
//
//   bcastcheck --fault_sweep r0.json,r1.json,...
//       degradation invariants across a loss sweep of run reports: mean
//       response monotone and bounded in the combined failure rate,
//       delivery ratio tracking 1 - rate. Reports without fault extras
//       anchor the sweep as lossless points.
//
//   bcastcheck --pull_sweep r0.json,r1.json,...
//       hybrid push-pull invariants across a pull-capacity sweep at fixed
//       total bandwidth: cold-page mean response non-increasing in pull
//       slots, zero-capacity points serviced nothing, uplink accounting
//       adds up. Reports without pull extras anchor the sweep as pure
//       push points.
//
//   bcastcheck --adapt_sweep static.json,adaptive.json,...
//       adaptive-control invariants across static-vs-adaptive runs of
//       the same workload: pinned cold-class mean response strictly
//       improves on the best static anchor, static anchors show an inert
//       controller, the slot controller converges (bounded late-epoch
//       oscillation within configured bounds). Reports without adapt
//       extras anchor the comparison as static points.
//
//   bcastcheck --bench new.json --bench_baseline old.json
//       diff two google-benchmark JSON files (--benchmark_out format);
//       time regressions beyond --bench_tolerance fail unless
//       --bench_informational records them without gating.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "broadcast/serialize.h"
#include "check/baseline.h"
#include "check/bench_diff.h"
#include "check/invariants.h"
#include "check/paper_checks.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/report_reader.h"

namespace bcast {
namespace {

int Run(int argc, const char* const* argv) {
  std::string report_path;
  std::string baseline_path;
  std::string program_path;
  std::string disks;
  std::string freqs;
  uint64_t delta = 2;
  bool allow_irregular = false;
  bool paper = false;
  uint64_t paper_requests = 20000;
  uint64_t paper_seed = 42;
  double perf_tolerance = 0.03;
  double throughput_tolerance = 0.03;
  bool skip_throughput = false;
  std::string diff_out;
  std::string fault_sweep;
  double fault_slack = 0.05;
  std::string pull_sweep;
  double pull_slack = 0.05;
  std::string adapt_sweep;
  double adapt_slack = 0.0;
  bool adapt_require_grow = false;
  std::string bench_path;
  std::string bench_baseline_path;
  double bench_tolerance = 0.10;
  bool bench_informational = false;
  bool bench_regressions_only = false;
  std::string log_level;

  FlagSet flags("bcastcheck");
  flags.AddString("report", &report_path, "JSON run report to verify");
  flags.AddString("baseline", &baseline_path,
                  "golden report file, or directory to search");
  flags.AddString("program", &program_path,
                  "serialized broadcast program to verify");
  flags.AddString("disks", &disks,
                  "expected layout: comma-separated pages per disk");
  flags.AddString("freqs", &freqs,
                  "expected relative frequencies (overrides --delta)");
  flags.AddUint64("delta", &delta, "expected layout: Delta rule parameter");
  flags.AddBool("allow_irregular", &allow_irregular,
                "skip fixed-inter-arrival checks (skewed/random programs)");
  flags.AddBool("paper", &paper,
                "run the simulation-backed paper-claim checks");
  flags.AddUint64("paper_requests", &paper_requests,
                  "measured requests per paper-check simulation");
  flags.AddUint64("paper_seed", &paper_seed,
                  "master seed for the paper-check simulations");
  flags.AddDouble("perf_tolerance", &perf_tolerance,
                  "relative tolerance for response/tuning metrics");
  flags.AddDouble("throughput_tolerance", &throughput_tolerance,
                  "relative tolerance for slots/events per second");
  flags.AddBool("skip_throughput", &skip_throughput,
                "record but never fail wall-clock throughput metrics");
  flags.AddString("diff_out", &diff_out,
                  "write the baseline diff as JSON to this path");
  flags.AddString("fault_sweep", &fault_sweep,
                  "comma-separated run reports forming a loss sweep");
  flags.AddDouble("fault_slack", &fault_slack,
                  "relative slack for the fault-sweep invariants");
  flags.AddString("pull_sweep", &pull_sweep,
                  "comma-separated run reports forming a pull-capacity "
                  "sweep");
  flags.AddDouble("pull_slack", &pull_slack,
                  "relative slack for the pull-sweep invariants");
  flags.AddString("adapt_sweep", &adapt_sweep,
                  "comma-separated run reports forming a static-vs-"
                  "adaptive comparison");
  flags.AddDouble("adapt_slack", &adapt_slack,
                  "relative margin the adaptive cold-class latency must "
                  "beat the static anchor by");
  flags.AddBool("adapt_require_grow", &adapt_require_grow,
                "--adapt_sweep: additionally require an adaptive point "
                "whose pull-slot split grew (backlog scenarios)");
  flags.AddString("bench", &bench_path,
                  "google-benchmark JSON file to diff");
  flags.AddString("bench_baseline", &bench_baseline_path,
                  "google-benchmark JSON file to diff --bench against");
  flags.AddDouble("bench_tolerance", &bench_tolerance,
                  "relative tolerance for per-iteration CPU time");
  flags.AddBool("bench_informational", &bench_informational,
                "record bench time deltas without failing on them");
  flags.AddBool("bench_regressions_only", &bench_regressions_only,
                "fail only on slowdowns beyond --bench_tolerance; "
                "speedups of any size pass (perf-gate posture)");
  flags.AddString("log_level", &log_level,
                  "log threshold: debug|info|warn|error|fatal");

  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n\n" << flags.HelpText();
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      BCAST_LOG(kError) << "unknown --log_level: " << log_level
                        << " (debug|info|warn|error|fatal)";
      return 2;
    }
    SetLogThreshold(level);
  }
  if (report_path.empty() && program_path.empty() && !paper &&
      fault_sweep.empty() && pull_sweep.empty() && adapt_sweep.empty() &&
      bench_path.empty()) {
    BCAST_LOG(kError) << "nothing to check: give --report, --program, "
                         "--fault_sweep, --pull_sweep, --adapt_sweep, "
                         "--bench, and/or --paper";
    std::cerr << flags.HelpText();
    return 2;
  }
  if (baseline_path.empty() && bench_path.empty() && !diff_out.empty()) {
    BCAST_LOG(kError) << "--diff_out requires --baseline or --bench";
    return 2;
  }
  if (bench_path.empty() != bench_baseline_path.empty()) {
    BCAST_LOG(kError)
        << "--bench and --bench_baseline must be given together";
    return 2;
  }

  check::CheckList all;

  if (!report_path.empty()) {
    Result<obs::RunReport> report = obs::ReadRunReportFile(report_path);
    if (!report.ok()) {
      BCAST_LOG(kError) << "--report: " << report.status().ToString();
      return 2;
    }
    BCAST_LOG(kInfo) << "checking report invariants: " << report_path;
    all.Extend(check::CheckReportInvariants(*report));

    if (!baseline_path.empty()) {
      std::string baseline_file = baseline_path;
      std::error_code ec;
      if (std::filesystem::is_directory(baseline_path, ec)) {
        Result<std::string> found =
            check::FindBaselineFile(*report, baseline_path);
        if (!found.ok()) {
          BCAST_LOG(kError) << "--baseline: "
                            << found.status().ToString();
          return 1;  // a missing baseline IS a gate failure
        }
        baseline_file = *found;
      }
      Result<obs::RunReport> baseline =
          obs::ReadRunReportFile(baseline_file);
      if (!baseline.ok()) {
        BCAST_LOG(kError) << "--baseline: "
                          << baseline.status().ToString();
        return 2;
      }
      check::ToleranceOptions tolerances;
      tolerances.perf = perf_tolerance;
      tolerances.throughput = throughput_tolerance;
      tolerances.check_throughput = !skip_throughput;
      const check::BaselineDiff diff =
          check::CompareReports(*baseline, *report, tolerances);
      std::cout << "Baseline: " << baseline_file << "\n";
      check::PrintDiff(diff, std::cout);
      if (!diff_out.empty()) {
        std::ofstream out(diff_out);
        if (!out) {
          BCAST_LOG(kError) << "--diff_out: cannot open " << diff_out;
          return 2;
        }
        check::WriteDiffJson(diff, out);
      }
      all.Add("baseline." + std::filesystem::path(baseline_file)
                                .filename()
                                .string(),
              diff.ok(),
              std::to_string(diff.failures()) + " metric(s) out of "
                                                "tolerance");
    }
  } else if (!baseline_path.empty()) {
    BCAST_LOG(kError) << "--baseline requires --report";
    return 2;
  }

  if (!program_path.empty()) {
    std::ifstream in(program_path);
    if (!in) {
      BCAST_LOG(kError) << "--program: cannot open " << program_path;
      return 2;
    }
    Result<BroadcastProgram> program = LoadProgram(&in);
    if (!program.ok()) {
      BCAST_LOG(kError) << "--program: " << program.status().ToString();
      return 2;
    }
    BCAST_LOG(kInfo) << "checking program invariants: " << program_path;
    all.Extend(check::CheckProgramInvariants(*program, !allow_irregular));

    if (!disks.empty()) {
      Result<std::vector<uint64_t>> sizes = ParseUint64List(disks);
      if (!sizes.ok()) {
        BCAST_LOG(kError) << "--disks: " << sizes.status().ToString();
        return 2;
      }
      Result<DiskLayout> layout = [&]() -> Result<DiskLayout> {
        if (freqs.empty()) return MakeDeltaLayout(*sizes, delta);
        Result<std::vector<uint64_t>> f = ParseUint64List(freqs);
        if (!f.ok()) return f.status();
        return MakeLayout(*sizes, *f);
      }();
      if (!layout.ok()) {
        BCAST_LOG(kError) << layout.status().ToString();
        return 2;
      }
      all.Extend(check::CheckLayoutProgramAgreement(*layout, *program));
    }
  }

  if (!fault_sweep.empty()) {
    std::vector<check::FaultSweepPoint> points;
    for (const std::string& path : Split(fault_sweep, ',')) {
      Result<obs::RunReport> report = obs::ReadRunReportFile(path);
      if (!report.ok()) {
        BCAST_LOG(kError) << "--fault_sweep: "
                          << report.status().ToString();
        return 2;
      }
      // Every sweep member must itself be a sane report before its
      // numbers feed the degradation invariants.
      all.Extend(check::CheckReportInvariants(*report));
      points.push_back(check::FaultSweepPointFromReport(*report));
    }
    all.Extend(check::CheckFaultDegradation(std::move(points), fault_slack));
  }

  if (!pull_sweep.empty()) {
    std::vector<check::PullSweepPoint> points;
    for (const std::string& path : Split(pull_sweep, ',')) {
      Result<obs::RunReport> report = obs::ReadRunReportFile(path);
      if (!report.ok()) {
        BCAST_LOG(kError) << "--pull_sweep: "
                          << report.status().ToString();
        return 2;
      }
      // Every sweep member must itself be a sane report before its
      // numbers feed the improvement invariants.
      all.Extend(check::CheckReportInvariants(*report));
      points.push_back(check::PullSweepPointFromReport(*report));
    }
    all.Extend(check::CheckPullImprovement(std::move(points), pull_slack));
  }

  if (!adapt_sweep.empty()) {
    std::vector<check::AdaptSweepPoint> points;
    for (const std::string& path : Split(adapt_sweep, ',')) {
      Result<obs::RunReport> report = obs::ReadRunReportFile(path);
      if (!report.ok()) {
        BCAST_LOG(kError) << "--adapt_sweep: "
                          << report.status().ToString();
        return 2;
      }
      // Every comparison member must itself be a sane report before its
      // numbers feed the improvement invariants.
      all.Extend(check::CheckReportInvariants(*report));
      points.push_back(check::AdaptSweepPointFromReport(*report));
    }
    all.Extend(check::CheckAdaptImprovement(std::move(points), adapt_slack,
                                            adapt_require_grow));
  }

  if (!bench_path.empty()) {
    Result<check::BenchRun> bench = check::LoadBenchJson(bench_path);
    if (!bench.ok()) {
      BCAST_LOG(kError) << "--bench: " << bench.status().ToString();
      return 2;
    }
    Result<check::BenchRun> bench_baseline =
        check::LoadBenchJson(bench_baseline_path);
    if (!bench_baseline.ok()) {
      BCAST_LOG(kError) << "--bench_baseline: "
                        << bench_baseline.status().ToString();
      return 2;
    }
    check::BenchToleranceOptions bench_options;
    bench_options.time = bench_tolerance;
    bench_options.check_time = !bench_informational;
    bench_options.regressions_only = bench_regressions_only;
    const check::BaselineDiff diff =
        check::CompareBenchRuns(*bench_baseline, *bench, bench_options);
    std::cout << "Bench baseline: " << bench_baseline_path << "\n";
    check::PrintDiff(diff, std::cout);
    if (!diff_out.empty() && baseline_path.empty()) {
      std::ofstream out(diff_out);
      if (!out) {
        BCAST_LOG(kError) << "--diff_out: cannot open " << diff_out;
        return 2;
      }
      check::WriteDiffJson(diff, out);
    }
    all.Add("bench." +
                std::filesystem::path(bench_path).filename().string(),
            diff.ok(),
            std::to_string(diff.failures()) +
                " benchmark(s) out of tolerance");
  }

  if (paper) {
    BCAST_LOG(kInfo) << "running simulation-backed paper checks ("
                     << paper_requests << " requests, seed " << paper_seed
                     << ")";
    check::PaperCheckOptions options;
    options.requests = paper_requests;
    options.seed = paper_seed;
    Result<check::CheckList> checks = check::RunPaperChecks(options);
    if (!checks.ok()) {
      BCAST_LOG(kError) << "--paper: " << checks.status().ToString();
      return 2;
    }
    all.Extend(*checks);
  }

  all.Print(std::cout);
  if (!all.all_ok()) {
    std::cout << all.failures() << " of " << all.checks().size()
              << " checks failed\n";
    return 1;
  }
  std::cout << "all " << all.checks().size() << " checks passed\n";
  return 0;
}

}  // namespace
}  // namespace bcast

int main(int argc, char** argv) { return bcast::Run(argc, argv); }
