// bcastcheck — the regression gate: independently re-verifies paper
// invariants and diffs run reports against golden baselines.
//
// Three check surfaces, combinable in one invocation; the exit code is 0
// only when every requested check passes (1 = checks failed, 2 = usage or
// I/O error):
//
//   bcastcheck --report build/report.json
//       internal consistency of a JSON run report (percentile ordering,
//       request accounting, non-negative throughput).
//
//   bcastcheck --report build/report.json --baseline tests/baselines/
//       additionally diff the report against the matching golden baseline
//       (matched by tool/mode/config/seed) with per-metric tolerances:
//       exact for counts, --perf_tolerance for percentiles,
//       --throughput_tolerance for slots/sec. Baselines recorded on a
//       different machine: add --skip_throughput. --diff_out writes the
//       full diff as JSON (the CI artifact).
//
//   bcastcheck --program prog.txt [--disks 500,2000,2500 --delta 2]
//       structural invariants of a serialized broadcast program (fixed
//       inter-arrival spacing, service mix); with a layout given, also
//       the Section-2.2 period identity and per-disk frequencies.
//
//   bcastcheck --paper
//       simulation-backed checks of the paper's quantitative claims
//       (DES vs analytic model agreement, Bus Stop Paradox ordering,
//       Figure-10 P >= PIX ordering).

#include <filesystem>
#include <fstream>
#include <iostream>

#include "broadcast/serialize.h"
#include "check/baseline.h"
#include "check/invariants.h"
#include "check/paper_checks.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "obs/report_reader.h"

namespace bcast {
namespace {

int Run(int argc, const char* const* argv) {
  std::string report_path;
  std::string baseline_path;
  std::string program_path;
  std::string disks;
  std::string freqs;
  uint64_t delta = 2;
  bool allow_irregular = false;
  bool paper = false;
  uint64_t paper_requests = 20000;
  uint64_t paper_seed = 42;
  double perf_tolerance = 0.03;
  double throughput_tolerance = 0.03;
  bool skip_throughput = false;
  std::string diff_out;

  FlagSet flags("bcastcheck");
  flags.AddString("report", &report_path, "JSON run report to verify");
  flags.AddString("baseline", &baseline_path,
                  "golden report file, or directory to search");
  flags.AddString("program", &program_path,
                  "serialized broadcast program to verify");
  flags.AddString("disks", &disks,
                  "expected layout: comma-separated pages per disk");
  flags.AddString("freqs", &freqs,
                  "expected relative frequencies (overrides --delta)");
  flags.AddUint64("delta", &delta, "expected layout: Delta rule parameter");
  flags.AddBool("allow_irregular", &allow_irregular,
                "skip fixed-inter-arrival checks (skewed/random programs)");
  flags.AddBool("paper", &paper,
                "run the simulation-backed paper-claim checks");
  flags.AddUint64("paper_requests", &paper_requests,
                  "measured requests per paper-check simulation");
  flags.AddUint64("paper_seed", &paper_seed,
                  "master seed for the paper-check simulations");
  flags.AddDouble("perf_tolerance", &perf_tolerance,
                  "relative tolerance for response/tuning metrics");
  flags.AddDouble("throughput_tolerance", &throughput_tolerance,
                  "relative tolerance for slots/events per second");
  flags.AddBool("skip_throughput", &skip_throughput,
                "record but never fail wall-clock throughput metrics");
  flags.AddString("diff_out", &diff_out,
                  "write the baseline diff as JSON to this path");

  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n\n" << flags.HelpText();
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (report_path.empty() && program_path.empty() && !paper) {
    std::cerr << "nothing to check: give --report, --program, and/or "
                 "--paper\n\n"
              << flags.HelpText();
    return 2;
  }
  if (baseline_path.empty() && !diff_out.empty()) {
    std::cerr << "--diff_out requires --baseline\n";
    return 2;
  }

  check::CheckList all;

  if (!report_path.empty()) {
    Result<obs::RunReport> report = obs::ReadRunReportFile(report_path);
    if (!report.ok()) {
      std::cerr << "--report: " << report.status().ToString() << "\n";
      return 2;
    }
    all.Extend(check::CheckReportInvariants(*report));

    if (!baseline_path.empty()) {
      std::string baseline_file = baseline_path;
      std::error_code ec;
      if (std::filesystem::is_directory(baseline_path, ec)) {
        Result<std::string> found =
            check::FindBaselineFile(*report, baseline_path);
        if (!found.ok()) {
          std::cerr << "--baseline: " << found.status().ToString() << "\n";
          return 1;  // a missing baseline IS a gate failure
        }
        baseline_file = *found;
      }
      Result<obs::RunReport> baseline =
          obs::ReadRunReportFile(baseline_file);
      if (!baseline.ok()) {
        std::cerr << "--baseline: " << baseline.status().ToString() << "\n";
        return 2;
      }
      check::ToleranceOptions tolerances;
      tolerances.perf = perf_tolerance;
      tolerances.throughput = throughput_tolerance;
      tolerances.check_throughput = !skip_throughput;
      const check::BaselineDiff diff =
          check::CompareReports(*baseline, *report, tolerances);
      std::cout << "Baseline: " << baseline_file << "\n";
      check::PrintDiff(diff, std::cout);
      if (!diff_out.empty()) {
        std::ofstream out(diff_out);
        if (!out) {
          std::cerr << "--diff_out: cannot open " << diff_out << "\n";
          return 2;
        }
        check::WriteDiffJson(diff, out);
      }
      all.Add("baseline." + std::filesystem::path(baseline_file)
                                .filename()
                                .string(),
              diff.ok(),
              std::to_string(diff.failures()) + " metric(s) out of "
                                                "tolerance");
    }
  } else if (!baseline_path.empty()) {
    std::cerr << "--baseline requires --report\n";
    return 2;
  }

  if (!program_path.empty()) {
    std::ifstream in(program_path);
    if (!in) {
      std::cerr << "--program: cannot open " << program_path << "\n";
      return 2;
    }
    Result<BroadcastProgram> program = LoadProgram(&in);
    if (!program.ok()) {
      std::cerr << "--program: " << program.status().ToString() << "\n";
      return 2;
    }
    all.Extend(check::CheckProgramInvariants(*program, !allow_irregular));

    if (!disks.empty()) {
      Result<std::vector<uint64_t>> sizes = ParseUint64List(disks);
      if (!sizes.ok()) {
        std::cerr << "--disks: " << sizes.status().ToString() << "\n";
        return 2;
      }
      Result<DiskLayout> layout = [&]() -> Result<DiskLayout> {
        if (freqs.empty()) return MakeDeltaLayout(*sizes, delta);
        Result<std::vector<uint64_t>> f = ParseUint64List(freqs);
        if (!f.ok()) return f.status();
        return MakeLayout(*sizes, *f);
      }();
      if (!layout.ok()) {
        std::cerr << layout.status().ToString() << "\n";
        return 2;
      }
      all.Extend(check::CheckLayoutProgramAgreement(*layout, *program));
    }
  }

  if (paper) {
    check::PaperCheckOptions options;
    options.requests = paper_requests;
    options.seed = paper_seed;
    Result<check::CheckList> checks = check::RunPaperChecks(options);
    if (!checks.ok()) {
      std::cerr << "--paper: " << checks.status().ToString() << "\n";
      return 2;
    }
    all.Extend(*checks);
  }

  all.Print(std::cout);
  if (!all.all_ok()) {
    std::cout << all.failures() << " of " << all.checks().size()
              << " checks failed\n";
    return 1;
  }
  std::cout << "all " << all.checks().size() << " checks passed\n";
  return 0;
}

}  // namespace
}  // namespace bcast

int main(int argc, char** argv) { return bcast::Run(argc, argv); }
