// bcasttop — terminal dashboard over a bcastsim stats stream.
//
// bcastsim --stats_out=stats.jsonl appends one JSON snapshot every K
// simulated slots; this tool consumes that stream:
//
//   bcasttop --in stats.jsonl              one rendered frame (batch)
//   bcasttop --in stats.jsonl --follow     live dashboard, tails the file
//   bcastsim ... --stats_out=/dev/stdout | bcasttop --follow
//   bcasttop --in stats.jsonl --summarize  whole-stream JSON summary
//
// --summarize is the CI surface: it folds the stream back into the
// headline numbers (request-weighted mean response time, events/sec,
// service mix) so they can be cross-checked against the run report.
// Exit codes: 0 = ok, 1 = no valid samples in the stream, 2 = usage or
// I/O error.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/stats_stream.h"

namespace bcast {
namespace {

// Eight-level unicode sparkline of `values` scaled to its own min..max.
std::string Sparkline(const std::vector<double>& values) {
  static const char* const kLevels[] = {"▁", "▂", "▃", "▄",
                                        "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values.front();
  double hi = values.front();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  std::string out;
  for (double v : values) {
    const int level =
        span <= 0.0
            ? 0
            : std::min(7, static_cast<int>((v - lo) / span * 8.0));
    out += kLevels[level];
  }
  return out;
}

// Proportional bar of `frac` in [0, 1], `width` cells wide.
std::string Bar(double frac, int width) {
  frac = std::max(0.0, std::min(1.0, frac));
  const int filled = static_cast<int>(frac * width + 0.5);
  std::string out;
  for (int i = 0; i < width; ++i) out += i < filled ? "█" : "·";
  return out;
}

// Rolling dashboard state fed one sample at a time.
struct Dashboard {
  obs::StatsSample last;
  std::vector<double> win_rt_history;
  uint64_t samples = 0;
  uint64_t invalid_lines = 0;
  uint64_t segments = 0;
  double last_t = 0.0;

  void Feed(const obs::StatsSample& s) {
    if (samples == 0 || s.t < last_t) ++segments;
    last_t = s.t;
    last = s;
    ++samples;
    win_rt_history.push_back(s.win_mean_rt);
    constexpr size_t kHistory = 60;
    if (win_rt_history.size() > kHistory) {
      win_rt_history.erase(win_rt_history.begin());
    }
  }

  void Render(std::ostream& out) const {
    const obs::StatsSample& s = last;
    const double hit_rate =
        s.requests > 0 ? static_cast<double>(s.hits) /
                             static_cast<double>(s.requests)
                       : 0.0;
    const double eps =
        s.wall_seconds > 0.0
            ? static_cast<double>(s.events) / s.wall_seconds
            : 0.0;
    out << "bcasttop — " << samples << " sample(s)";
    if (segments > 1) out << ", " << segments << " segments";
    if (invalid_lines > 0) out << ", " << invalid_lines << " invalid";
    if (s.final_sample) out << " [run complete]";
    out << "\n";
    out << "  t " << FormatDouble(s.t, 1) << " slots   wall "
        << FormatDouble(s.wall_seconds, 2) << " s   events " << s.events
        << " (" << FormatDouble(eps / 1e6, 2) << "M ev/s)\n";
    out << "  requests " << s.requests << "   hits " << s.hits << " ("
        << FormatDouble(100.0 * hit_rate, 1) << "%)   warmup "
        << s.warmup_requests << "\n";
    out << "  mean_rt " << FormatDouble(s.mean_rt, 2) << "   win_rt "
        << FormatDouble(s.win_mean_rt, 2) << "   win_requests "
        << s.win_requests << "\n";
    if (!win_rt_history.empty()) {
      out << "  win_rt " << Sparkline(win_rt_history) << "\n";
    }
    uint64_t served_total = 0;
    for (uint64_t d : s.served_per_disk) served_total += d;
    if (served_total > 0) {
      out << "  broadcast service mix\n";
      for (size_t d = 0; d < s.served_per_disk.size(); ++d) {
        const double frac = static_cast<double>(s.served_per_disk[d]) /
                            static_cast<double>(served_total);
        out << "    disk" << d << " " << Bar(frac, 24) << " "
            << FormatDouble(100.0 * frac, 1) << "%\n";
      }
    }
    if (s.pop_clients > 0) {
      out << "  population " << s.pop_clients << " clients / "
          << s.pop_shards << " shard(s)   req_rate "
          << FormatDouble(s.pop_req_rate, 3) << "/slot   worst_p99 "
          << FormatDouble(s.pop_worst_p99, 1) << "\n";
    }
    if (s.pull_serviced > 0 || s.pull_queue_depth > 0) {
      out << "  pull queue " << s.pull_queue_depth << "   serviced "
          << s.pull_serviced << "\n";
    }
    if (s.fault_lost > 0 || s.fault_retries > 0) {
      out << "  fault lost " << s.fault_lost << "   retries "
          << s.fault_retries << "\n";
    }
    out.flush();
  }
};

int Run(int argc, const char* const* argv) {
  std::string in_path = "-";
  bool summarize = false;
  bool follow = false;
  uint64_t interval_ms = 500;
  std::string log_level;

  FlagSet flags("bcasttop");
  flags.AddString("in", &in_path,
                  "stats stream to read (JSONL; \"-\" = stdin)");
  flags.AddBool("summarize", &summarize,
                "batch mode: fold the whole stream into one JSON summary");
  flags.AddBool("follow", &follow,
                "keep tailing the stream and re-render on new samples");
  flags.AddUint64("interval_ms", &interval_ms,
                  "--follow: poll interval in milliseconds");
  flags.AddString("log_level", &log_level,
                  "log threshold: debug|info|warn|error|fatal");

  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n\n" << flags.HelpText();
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      BCAST_LOG(kError) << "unknown --log_level: " << log_level
                        << " (debug|info|warn|error|fatal)";
      return 2;
    }
    SetLogThreshold(level);
  }
  if (summarize && follow) {
    BCAST_LOG(kError) << "--summarize and --follow are exclusive";
    return 2;
  }

  std::ifstream file;
  const bool from_stdin = in_path == "-";
  if (!from_stdin) {
    file.open(in_path);
    if (!file) {
      BCAST_LOG(kError) << "--in: cannot open " << in_path;
      return 2;
    }
  }
  std::istream& in = from_stdin ? std::cin : file;

  if (summarize) {
    Result<obs::StatsSummary> summary = obs::SummarizeStatsStream(in);
    if (!summary.ok()) {
      BCAST_LOG(kError) << summary.status().ToString();
      return 1;
    }
    obs::WriteStatsSummaryJson(*summary, std::cout);
    return 0;
  }

  // Dashboard: consume the stream line by line. --follow clears the
  // stream state at EOF and polls for more. The producer terminates
  // every record with '\n', so a final line without one is a torn
  // in-progress write: its bytes are stashed and glued to the remainder
  // on a later poll, never parsed (and miscounted) as two fragments.
  Dashboard dash;
  std::string line;
  std::string stash;  // bytes of an unterminated (torn) tail line
  bool done = false;
  auto feed_line = [&dash](const std::string& l) {
    if (l.find_first_not_of(" \t\r") == std::string::npos) return false;
    Result<obs::StatsSample> sample = obs::ParseStatsLine(l);
    if (!sample.ok()) {
      ++dash.invalid_lines;
      return false;
    }
    dash.Feed(*sample);
    return true;
  };
  while (!done) {
    bool progressed = false;
    while (std::getline(in, line)) {
      if (in.eof()) {
        stash += line;
        break;
      }
      if (!stash.empty()) {
        line.insert(0, stash);
        stash.clear();
      }
      progressed = feed_line(line) || progressed;
    }
    if (follow && progressed && dash.samples > 0) {
      std::cout << "\x1b[H\x1b[2J";  // cursor home + clear screen
      dash.Render(std::cout);
    }
    if (!follow || from_stdin || dash.last.final_sample) {
      // End of input for good: a parseable unterminated tail is a
      // complete record whose newline never made it (truncated copy);
      // an unparseable one is a torn write, skipped without penalty.
      if (!stash.empty()) {
        Result<obs::StatsSample> tail = obs::ParseStatsLine(stash);
        if (tail.ok()) dash.Feed(*tail);
      }
      done = true;
    } else {
      in.clear();  // rewind the EOF bit and poll for appended lines
      std::this_thread::sleep_for(
          std::chrono::milliseconds(interval_ms));
    }
  }
  if (dash.samples == 0) {
    BCAST_LOG(kError) << "no valid stats samples in "
                      << (from_stdin ? "stdin" : in_path);
    return 1;
  }
  if (!follow) dash.Render(std::cout);
  return 0;
}

}  // namespace
}  // namespace bcast

int main(int argc, char** argv) { return bcast::Run(argc, argv); }
