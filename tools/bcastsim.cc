// bcastsim — command-line driver for the broadcast-disk simulator.
//
// Runs client/server experiments with every knob of the paper's Tables
// 2-4 exposed as a flag. Three modes:
//
//   --mode=single      one client (default)
//   --mode=population  several clients with spread-out interests
//   --mode=updates     one client against volatile data
//
// Examples:
//
//   bcastsim                                  # paper defaults (D5, LRU)
//   bcastsim --policy=pix --cache_size=500 --offset=500 --noise=30
//   bcastsim --disks=300,1200,3500 --delta=4 --cache_size=1
//   bcastsim --program=skewed --seeds=5       # Bus Stop Paradox, averaged
//   bcastsim --mode=population --clients=5 --policy=pix
//   bcastsim --mode=updates --update_rate=0.2 --consistency=auto-refresh

#include <iostream>
#include <memory>
#include <utility>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/multi_client.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "core/updates.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/stats_stream.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "pop/client_store.h"
#include "pop/engine.h"
#include "pop/pop_params.h"
#include "pull/pull_params.h"

namespace bcast {
namespace {

// Writes \p report to \p path (no-op when the path is empty). Returns
// false — after printing the error — when the file cannot be written.
bool MaybeWriteReport(const obs::RunReport& report,
                      const std::string& path) {
  if (path.empty()) return true;
  Status st = report.WriteToFile(path);
  if (!st.ok()) {
    std::cerr << "--report_out: " << st.ToString() << "\n";
    return false;
  }
  return true;
}

// Appends the opt-in backend marker to \p report. Off by default: runs
// are bit-identical under every backend, and golden reports must stay
// byte-for-byte comparable across backends.
void MaybeRecordBackend(obs::RunReport* report, bool record,
                        des::QueueBackend backend) {
  if (!record) return;
  report->extra.emplace_back(
      "des_queue_calendar",
      backend == des::QueueBackend::kCalendar ? 1.0 : 0.0);
}

// Runs the population mode: `clients` specs whose interests are spread
// evenly across the database. `pop` (clients already stamped) selects
// the execution engine: the classic single-threaded runner, or the
// sharded multi-threaded engine when `--shards` > 1 or
// `--force_pop_engine` is set — results are shard-count invariant.
int RunPopulation(const SimParams& base, const pop::PopParams& pop,
                  const std::string& report_out,
                  const SimObservers& observers,
                  bool record_des_queue) {
  const uint64_t clients = pop.clients;
  MultiClientParams params;
  params.disk_sizes = base.disk_sizes;
  params.delta = base.delta;
  params.rel_freqs = base.rel_freqs;
  params.program_kind = base.program_kind;
  params.optimizer = base.optimizer;
  params.measured_requests = base.measured_requests;
  params.seed = base.seed;
  const uint64_t db = params.ServerDbSize();
  for (uint64_t c = 0; c < clients; ++c) {
    ClientSpec spec;
    spec.access_range = base.access_range;
    spec.theta = base.theta;
    spec.region_size = base.region_size;
    spec.cache_size = base.cache_size;
    spec.policy = base.policy;
    spec.offset = base.offset;
    spec.noise_percent = base.noise_percent;
    spec.think_time = base.think_time;
    spec.interest_shift = clients > 1 ? db * c / clients : 0;
    params.clients.push_back(spec);
  }
  params.fault = base.fault;
  params.pull = base.pull;
  params.adapt = base.adapt;
  params.des_queue = base.des_queue;
  pop::ApplyClassProfiles(pop.classes, &params.clients);
  auto result = pop.UseEngine()
                    ? pop::RunPopulationSimulation(params, pop, observers)
                    : RunMultiClientSimulation(params, observers);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  // Per-client rows stay readable for paper-scale populations; a 100k
  // client run gets the aggregate lines only.
  constexpr size_t kMaxClientRows = 32;
  if (params.clients.size() <= kMaxClientRows) {
    AsciiTable table({"Client", "InterestShift", "MeanRT", "CacheHit%"});
    for (size_t c = 0; c < params.clients.size(); ++c) {
      table.AddRow({std::to_string(c),
                    std::to_string(params.clients[c].interest_shift),
                    FormatDouble(result->mean_response_times[c], 1),
                    FormatDouble(100.0 * result->per_client[c].hit_rate(),
                                 1)});
    }
    table.Print(std::cout);
  } else {
    std::cout << params.clients.size() << " clients over "
              << pop.EffectiveShards() << " shard(s)\n";
  }
  std::cout << "Population mean "
            << FormatDouble(result->response_across_clients.mean(), 1)
            << ", max/min "
            << FormatDouble(result->response_across_clients.max() /
                                result->response_across_clients.min(),
                            2)
            << "\n";

  if (!report_out.empty()) {
    obs::RunReport report = MakePopulationRunReport(
        params, *result, base.ToString(), "bcastsim");
    if (pop.UseEngine()) {
      pop::AppendPopulationExtras(pop, *result, &report);
    }
    MaybeRecordBackend(&report, record_des_queue, result->resolved_queue);
    if (!MaybeWriteReport(report, report_out)) return 1;
  }
  return 0;
}

// Runs the updates mode with the given consistency action name.
int RunUpdates(const SimParams& base, double update_rate,
               double update_theta, const std::string& consistency,
               const std::string& report_out, bool record_des_queue) {
  UpdateParams updates;
  updates.update_rate = update_rate;
  updates.update_theta = update_theta;
  if (consistency == "none") {
    updates.action = ConsistencyAction::kNone;
  } else if (consistency == "invalidate") {
    updates.action = ConsistencyAction::kInvalidate;
  } else if (consistency == "auto-refresh") {
    updates.action = ConsistencyAction::kAutoRefresh;
  } else {
    std::cerr << "unknown --consistency: " << consistency
              << " (none|invalidate|auto-refresh)\n";
    return 2;
  }
  obs::MetricsRegistry registry;
  auto result = RunUpdateSimulation(
      base, updates, report_out.empty() ? nullptr : &registry);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const double n = static_cast<double>(result->requests);
  AsciiTable table({"Metric", "Value"});
  table.AddRow({"mean response", FormatDouble(result->mean_response_time,
                                              2)});
  table.AddRow({"stale-served %",
                FormatDouble(100.0 * result->StaleFraction(), 2)});
  table.AddRow({"fresh hits %",
                FormatDouble(100.0 * result->fresh_hits / n, 2)});
  table.AddRow({"invalidation refetches %",
                FormatDouble(100.0 * result->invalidation_refetches / n,
                             2)});
  table.AddRow({"cold misses %",
                FormatDouble(100.0 * result->cold_misses / n, 2)});
  table.Print(std::cout);

  if (!report_out.empty()) {
    obs::RunReport report =
        MakeUpdateRunReport(base, updates, *result, "bcastsim");
    report.metrics = registry.TakeSnapshot();
    MaybeRecordBackend(
        &report, record_des_queue,
        des::ResolveQueueBackend(base.des_queue, /*expected_clients=*/1));
    if (!MaybeWriteReport(report, report_out)) return 1;
  }
  return 0;
}

int Run(int argc, const char* const* argv) {
  SimConfig config;
  std::string mode = "single";
  std::string consistency = "invalidate";
  uint64_t seeds = 1;
  uint64_t clients = 5;
  double update_rate = 0.05;
  double update_theta = 0.95;
  bool csv = false;
  std::string report_out;
  std::string trace_out;
  double trace_sample = 1.0;
  std::string trace_format = "jsonl";
  std::string trace_timeline;
  std::string stats_out;
  double stats_interval = 1000.0;
  bool profile_des = false;
  bool record_des_queue = false;
  std::string log_level;

  // The whole simulation surface comes from SimConfig; only the
  // tool-level knobs (mode, output sinks, seed averaging) live here.
  FlagSet flags("bcastsim");
  flags.AddString("mode", &mode, "single | population | updates");
  flags.AddUint64("clients", &clients, "population mode: client count");
  flags.AddDouble("update_rate", &update_rate,
                  "updates mode: updates per broadcast unit");
  flags.AddDouble("update_theta", &update_theta,
                  "updates mode: Zipf skew of update targets");
  flags.AddString("consistency", &consistency,
                  "updates mode: none | invalidate | auto-refresh");
  config.RegisterFlags(&flags);
  flags.AddUint64("seeds", &seeds, "seeds to average over");
  flags.AddBool("csv", &csv, "emit a CSV row instead of a table");
  flags.AddString("report_out", &report_out,
                  "write a JSON run report to this path");
  flags.AddString("trace_out", &trace_out,
                  "write sampled per-request trace here "
                  "(single and population modes)");
  flags.AddDouble("trace_sample", &trace_sample,
                  "trace sampling probability in [0, 1]");
  flags.AddString("trace_format", &trace_format, "trace encoding: jsonl | csv");
  flags.AddString("trace_timeline", &trace_timeline,
                  "write a Chrome trace-event timeline (JSON, loadable in "
                  "Perfetto) here");
  flags.AddString("stats_out", &stats_out,
                  "stream periodic run stats (JSONL, for bcasttop) here");
  flags.AddDouble("stats_interval", &stats_interval,
                  "simulated slots between stats samples");
  flags.AddBool("profile_des", &profile_des,
                "per-event-kind DES dispatch profiling (profile_* report "
                "extras)");
  flags.AddBool("record_des_queue", &record_des_queue,
                "stamp the des_queue_calendar extra (0/1) into the run "
                "report (off by default: backends are bit-identical and "
                "golden reports must stay byte-comparable)");
  flags.AddString("log_level", &log_level,
                  "log threshold: debug|info|warn|error|fatal");

  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n\n" << flags.HelpText();
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::cerr << "unknown --log_level: " << log_level
                << " (debug|info|warn|error|fatal)\n";
      return 2;
    }
    SetLogThreshold(level);
  }

  // One call owns string parsing, set-ness coherence, and validation.
  Status finalized = config.Finalize(&flags);
  if (!finalized.ok()) {
    std::cerr << finalized.message() << "\n";
    return 2;
  }
  SimParams& params = config.params;

  if (mode == "updates" &&
      (!trace_out.empty() || !trace_timeline.empty() ||
       !stats_out.empty() || profile_des)) {
    BCAST_LOG(kWarning)
        << "--trace_out/--trace_timeline/--stats_out/--profile_des do "
           "not apply to --mode=updates; ignored";
  }
  if (mode == "updates") {
    return RunUpdates(params, update_rate, update_theta, consistency,
                      report_out, record_des_queue);
  }
  if (mode != "single" && mode != "population") {
    std::cerr << "unknown --mode: " << mode << "\n";
    return 2;
  }

  // Observability: one registry, and (optionally) one trace sink, one
  // timeline, and one stats stream shared across all seeds. All of them
  // apply to single and population runs alike.
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_out.empty()) {
    Result<obs::TraceFormat> format = obs::ParseTraceFormat(trace_format);
    if (!format.ok()) {
      std::cerr << "--trace_format: " << format.status().ToString() << "\n";
      return 2;
    }
    if (trace_sample < 0.0 || trace_sample > 1.0) {
      std::cerr << "--trace_sample must be in [0, 1]\n";
      return 2;
    }
    Result<std::unique_ptr<obs::TraceSink>> sink =
        obs::TraceSink::Open(trace_out, trace_sample, *format, params.seed);
    if (!sink.ok()) {
      std::cerr << "--trace_out: " << sink.status().ToString() << "\n";
      return 1;
    }
    trace = std::move(*sink);
  }
  std::unique_ptr<obs::TimelineWriter> timeline;
  if (!trace_timeline.empty()) {
    Result<std::unique_ptr<obs::TimelineWriter>> writer =
        obs::TimelineWriter::Open(trace_timeline);
    if (!writer.ok()) {
      std::cerr << "--trace_timeline: " << writer.status().ToString()
                << "\n";
      return 1;
    }
    timeline = std::move(*writer);
  }
  std::unique_ptr<obs::StatsWriter> stats;
  if (!stats_out.empty()) {
    Result<std::unique_ptr<obs::StatsWriter>> writer =
        obs::StatsWriter::Open(stats_out);
    if (!writer.ok()) {
      std::cerr << "--stats_out: " << writer.status().ToString() << "\n";
      return 1;
    }
    stats = std::move(*writer);
  }
  SimObservers observers;
  observers.trace = trace.get();
  observers.registry = &registry;
  observers.timeline = timeline.get();
  observers.stats = stats.get();
  observers.stats_interval = stats_interval;
  observers.profile_des = profile_des;

  if (mode == "population") {
    pop::PopParams pop = config.pop;
    pop.clients = clients;
    return RunPopulation(params, pop, report_out, observers,
                         record_des_queue);
  }

  // Run (averaging over seeds if requested); keep the last run's
  // breakdown for display and an across-seeds aggregate for the report.
  RunningStat response;
  Result<SimResult> last = Status::Internal("no runs");
  SimResult aggregate;
  bool have_aggregate = false;
  const uint64_t num_seeds = std::max<uint64_t>(seeds, 1);
  for (uint64_t i = 0; i < num_seeds; ++i) {
    SimParams run = params;
    run.seed = params.seed + i;
    last = RunSimulation(run, observers);
    if (!last.ok()) {
      std::cerr << last.status().ToString() << "\n";
      return 1;
    }
    response.Add(last->metrics.mean_response_time());
    if (!have_aggregate) {
      aggregate = *last;
      have_aggregate = true;
    } else {
      aggregate.metrics.Merge(last->metrics);
      aggregate.warmup_requests += last->warmup_requests;
      aggregate.end_time += last->end_time;
      aggregate.timings.Accumulate(last->timings);
      aggregate.events_dispatched += last->events_dispatched;
      if (last->faults_active) {
        aggregate.faults.Merge(last->faults);
        aggregate.faults_active = true;
      }
      if (last->pull_active) {
        aggregate.pull_stats.Merge(last->pull_stats);
        aggregate.pull_active = true;
      }
      if (last->adapt_active) {
        aggregate.adapt_stats.Merge(last->adapt_stats);
        aggregate.adapt_active = true;
      }
      aggregate.cold_requests += last->cold_requests;
      aggregate.cold_hits += last->cold_hits;
      if (last->profile_active) {
        aggregate.profile.Merge(last->profile);
        aggregate.profile_active = true;
      }
    }
  }
  if (trace != nullptr) trace->Flush();
  if (timeline != nullptr) timeline->Flush();
  if (stats != nullptr) stats->Flush();
  if (!report_out.empty()) {
    obs::RunReport report = MakeRunReport(params, aggregate, "bcastsim");
    report.seeds = num_seeds;
    report.metrics = registry.TakeSnapshot();
    MaybeRecordBackend(&report, record_des_queue,
                       aggregate.resolved_queue);
    if (!MaybeWriteReport(report, report_out)) return 1;
  }
  const ClientMetrics& m = last->metrics;
  const std::vector<double> fractions = m.LocationFractions();

  if (csv) {
    std::cout << params.ToString() << "\n";
    std::cout << "mean_rt,ci95,hit_rate";
    for (size_t d = 1; d < fractions.size(); ++d) {
      std::cout << ",disk" << d << "_frac";
    }
    std::cout << "\n"
              << FormatDouble(response.mean(), 3) << ","
              << FormatDouble(response.ci95_halfwidth(), 3) << ","
              << FormatDouble(m.hit_rate(), 4);
    for (size_t d = 1; d < fractions.size(); ++d) {
      std::cout << "," << FormatDouble(fractions[d], 4);
    }
    std::cout << "\n";
    return 0;
  }

  std::cout << "Config: " << params.ToString() << "\n";
  std::cout << "Program period " << last->period << " slots, "
            << last->empty_slots << " empty; warm-up "
            << last->warmup_requests << " requests; noise moved "
            << last->perturbed_pages << " pages\n\n";
  AsciiTable table({"Metric", "Value"});
  table.AddRow({"mean response (broadcast units)",
                FormatDouble(response.mean(), 2)});
  if (seeds > 1) {
    table.AddRow({"95% CI halfwidth",
                  FormatDouble(response.ci95_halfwidth(), 2)});
  }
  table.AddRow({"cache hit rate %", FormatDouble(100.0 * m.hit_rate(), 2)});
  for (size_t d = 1; d < fractions.size(); ++d) {
    table.AddRow({"served from disk " + std::to_string(d) + " %",
                  FormatDouble(100.0 * fractions[d], 2)});
  }
  table.AddRow({"max response", FormatDouble(m.response_time().max(), 1)});
  table.AddRow({"mean tuning (radio-on slots)",
                FormatDouble(m.tuning_time().mean(), 2)});
  if (last->faults_active) {
    const fault::FaultStats& fs = last->faults;
    table.AddRow({"delivery ratio %",
                  FormatDouble(100.0 * fs.delivery_ratio(), 2)});
    table.AddRow({"loss-delayed fetches",
                  std::to_string(fs.loss_delayed_fetches)});
    table.AddRow({"reception deadline expiries",
                  std::to_string(fs.deadline_expiries)});
    table.AddRow({"doze-missed arrivals",
                  std::to_string(fs.doze_missed_arrivals)});
  }
  if (last->pull_active) {
    const pull::PullStats& ps = last->pull_stats;
    table.AddRow({"pull requests (re-sends)",
                  std::to_string(ps.requests_attempted) + " (" +
                      std::to_string(ps.re_requests) + ")"});
    table.AddRow({"uplink dropped / lost",
                  std::to_string(ps.uplink_dropped) + " / " +
                      std::to_string(ps.uplink_lost)});
    table.AddRow({"pull slots serviced / offered",
                  std::to_string(ps.serviced_pages) + " / " +
                      std::to_string(ps.pull_opportunities)});
    table.AddRow({"pull service share %",
                  FormatDouble(100.0 * ps.pull_service_share(), 2)});
    table.AddRow({"mean pull latency",
                  FormatDouble(ps.pull_latency.mean(), 2)});
    table.AddRow({"mean push latency",
                  FormatDouble(ps.push_latency.mean(), 2)});
  }
  if (last->adapt_active) {
    const adapt::AdaptStats& as = last->adapt_stats;
    table.AddRow({"adapt epochs (rebuilds)",
                  std::to_string(as.epochs) + " (" +
                      std::to_string(as.rebuilds) + ")"});
    table.AddRow({"pages promoted", std::to_string(as.promotions)});
    if (params.adapt.reopt) {
      table.AddRow({"reopt epochs / pages demoted",
                    std::to_string(as.reopts) + " / " +
                        std::to_string(as.demotions)});
    }
    table.AddRow({"pull slots start -> end",
                  std::to_string(as.initial_slots) + " -> " +
                      std::to_string(as.final_slots)});
    if (as.cold_wait.count() > 0) {
      table.AddRow({"cold-class mean response (pinned)",
                    FormatDouble(as.cold_wait.mean(), 2)});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bcast

int main(int argc, char** argv) { return bcast::Run(argc, argv); }
