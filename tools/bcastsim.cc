// bcastsim — command-line driver for the broadcast-disk simulator.
//
// Runs client/server experiments with every knob of the paper's Tables
// 2-4 exposed as a flag. Three modes:
//
//   --mode=single      one client (default)
//   --mode=population  several clients with spread-out interests
//   --mode=updates     one client against volatile data
//
// Examples:
//
//   bcastsim                                  # paper defaults (D5, LRU)
//   bcastsim --policy=pix --cache_size=500 --offset=500 --noise=30
//   bcastsim --disks=300,1200,3500 --delta=4 --cache_size=1
//   bcastsim --program=skewed --seeds=5       # Bus Stop Paradox, averaged
//   bcastsim --mode=population --clients=5 --policy=pix
//   bcastsim --mode=updates --update_rate=0.2 --consistency=auto-refresh

#include <iostream>
#include <memory>
#include <utility>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/multi_client.h"
#include "core/simulator.h"
#include "core/updates.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "pull/pull_params.h"

namespace bcast {
namespace {

// Writes \p report to \p path (no-op when the path is empty). Returns
// false — after printing the error — when the file cannot be written.
bool MaybeWriteReport(const obs::RunReport& report,
                      const std::string& path) {
  if (path.empty()) return true;
  Status st = report.WriteToFile(path);
  if (!st.ok()) {
    std::cerr << "--report_out: " << st.ToString() << "\n";
    return false;
  }
  return true;
}

// Runs the population mode: `clients` specs whose interests are spread
// evenly across the database.
int RunPopulation(const SimParams& base, uint64_t clients,
                  const std::string& report_out) {
  MultiClientParams params;
  params.disk_sizes = base.disk_sizes;
  params.delta = base.delta;
  params.rel_freqs = base.rel_freqs;
  params.program_kind = base.program_kind;
  params.measured_requests = base.measured_requests;
  params.seed = base.seed;
  const uint64_t db = params.ServerDbSize();
  for (uint64_t c = 0; c < clients; ++c) {
    ClientSpec spec;
    spec.access_range = base.access_range;
    spec.theta = base.theta;
    spec.region_size = base.region_size;
    spec.cache_size = base.cache_size;
    spec.policy = base.policy;
    spec.offset = base.offset;
    spec.noise_percent = base.noise_percent;
    spec.think_time = base.think_time;
    spec.interest_shift = clients > 1 ? db * c / clients : 0;
    params.clients.push_back(spec);
  }
  params.fault = base.fault;
  params.pull = base.pull;
  auto result = RunMultiClientSimulation(params);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  AsciiTable table({"Client", "InterestShift", "MeanRT", "CacheHit%"});
  for (size_t c = 0; c < params.clients.size(); ++c) {
    table.AddRow({std::to_string(c),
                  std::to_string(params.clients[c].interest_shift),
                  FormatDouble(result->mean_response_times[c], 1),
                  FormatDouble(100.0 * result->per_client[c].hit_rate(),
                               1)});
  }
  table.Print(std::cout);
  std::cout << "Population mean "
            << FormatDouble(result->response_across_clients.mean(), 1)
            << ", max/min "
            << FormatDouble(result->response_across_clients.max() /
                                result->response_across_clients.min(),
                            2)
            << "\n";

  if (!report_out.empty()) {
    obs::RunReport report = MakePopulationRunReport(
        params, *result, base.ToString(), "bcastsim");
    if (!MaybeWriteReport(report, report_out)) return 1;
  }
  return 0;
}

// Runs the updates mode with the given consistency action name.
int RunUpdates(const SimParams& base, double update_rate,
               double update_theta, const std::string& consistency,
               const std::string& report_out) {
  UpdateParams updates;
  updates.update_rate = update_rate;
  updates.update_theta = update_theta;
  if (consistency == "none") {
    updates.action = ConsistencyAction::kNone;
  } else if (consistency == "invalidate") {
    updates.action = ConsistencyAction::kInvalidate;
  } else if (consistency == "auto-refresh") {
    updates.action = ConsistencyAction::kAutoRefresh;
  } else {
    std::cerr << "unknown --consistency: " << consistency
              << " (none|invalidate|auto-refresh)\n";
    return 2;
  }
  obs::MetricsRegistry registry;
  auto result = RunUpdateSimulation(
      base, updates, report_out.empty() ? nullptr : &registry);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const double n = static_cast<double>(result->requests);
  AsciiTable table({"Metric", "Value"});
  table.AddRow({"mean response", FormatDouble(result->mean_response_time,
                                              2)});
  table.AddRow({"stale-served %",
                FormatDouble(100.0 * result->StaleFraction(), 2)});
  table.AddRow({"fresh hits %",
                FormatDouble(100.0 * result->fresh_hits / n, 2)});
  table.AddRow({"invalidation refetches %",
                FormatDouble(100.0 * result->invalidation_refetches / n,
                             2)});
  table.AddRow({"cold misses %",
                FormatDouble(100.0 * result->cold_misses / n, 2)});
  table.Print(std::cout);

  if (!report_out.empty()) {
    obs::RunReport report =
        MakeUpdateRunReport(base, updates, *result, "bcastsim");
    report.metrics = registry.TakeSnapshot();
    if (!MaybeWriteReport(report, report_out)) return 1;
  }
  return 0;
}

int Run(int argc, const char* const* argv) {
  SimParams params;
  std::string mode = "single";
  std::string disks = "500,2000,2500";
  std::string policy = "lru";
  std::string program = "multidisk";
  std::string noise_scope = "access_range";
  std::string consistency = "invalidate";
  std::string pull_sched = "fcfs";
  uint64_t seeds = 1;
  uint64_t clients = 5;
  double update_rate = 0.05;
  double update_theta = 0.95;
  bool csv = false;
  std::string report_out;
  std::string trace_out;
  double trace_sample = 1.0;
  std::string trace_format = "jsonl";
  std::string log_level;

  FlagSet flags("bcastsim");
  flags.AddString("mode", &mode, "single | population | updates");
  flags.AddUint64("clients", &clients, "population mode: client count");
  flags.AddDouble("update_rate", &update_rate,
                  "updates mode: updates per broadcast unit");
  flags.AddDouble("update_theta", &update_theta,
                  "updates mode: Zipf skew of update targets");
  flags.AddString("consistency", &consistency,
                  "updates mode: none | invalidate | auto-refresh");
  flags.AddString("disks", &disks, "comma-separated pages per disk");
  flags.AddUint64("delta", &params.delta,
                  "broadcast shape: rel_freq(i) = (N-i)*delta + 1");
  flags.AddString("program", &program,
                  "program kind: multidisk | skewed | random");
  flags.AddString("policy", &policy,
                  "cache policy: p|pix|lru|l|lix|lru-k|2q|clock");
  flags.AddUint64("cache_size", &params.cache_size, "client cache pages");
  flags.AddUint64("offset", &params.offset,
                  "hot pages shifted to the slow-disk tail");
  flags.AddDouble("noise", &params.noise_percent,
                  "percent of pages with perturbed mapping");
  flags.AddString("noise_scope", &noise_scope,
                  "noise coin population: access_range | all");
  flags.AddUint64("access_range", &params.access_range,
                  "pages the client requests");
  flags.AddDouble("theta", &params.theta, "Zipf skew");
  flags.AddUint64("region_size", &params.region_size, "pages per region");
  flags.AddDouble("think_time", &params.think_time,
                  "pause between requests (broadcast units)");
  flags.AddUint64("requests", &params.measured_requests,
                  "measured requests");
  flags.AddBool("knows_schedule", &params.knows_schedule,
                "client dozes to its page's slot (tuning metric only)");
  flags.AddDouble("loss", &params.fault.loss,
                  "per-transmission loss probability in [0, 1)");
  flags.AddDouble("burst_len", &params.fault.burst_len,
                  "mean loss-burst length (<=1: i.i.d., >1: Gilbert-"
                  "Elliott)");
  flags.AddDouble("corrupt", &params.fault.corrupt,
                  "per-reception corruption probability in [0, 1)");
  flags.AddDouble("doze", &params.fault.doze_for,
                  "slots the radio dozes per duty cycle (0 = always on)");
  flags.AddDouble("doze_awake", &params.fault.awake_for,
                  "slots the radio is awake per duty cycle");
  flags.AddUint64("fault_seed", &params.fault.fault_seed,
                  "fault RNG seed (independent of --seed)");
  flags.AddUint64("deadline_k", &params.fault.deadline_arrivals,
                  "reception deadline in guaranteed inter-arrival gaps");
  flags.AddDouble("backoff_base", &params.fault.backoff_base,
                  "retry backoff base delay (slots)");
  flags.AddDouble("backoff_cap", &params.fault.backoff_cap,
                  "retry backoff cap (slots)");
  flags.AddUint64("pull_slots", &params.pull.pull_slots,
                  "pull slots interleaved per minor cycle (0 = pure push)");
  flags.AddUint64("uplink_cap", &params.pull.uplink_cap,
                  "backchannel requests accepted per broadcast slot");
  flags.AddString("pull_sched", &pull_sched,
                  "pull-slot scheduler: fcfs | mrf | lxw");
  flags.AddDouble("pull_threshold", &params.pull.threshold,
                  "request only when the scheduled wait exceeds this many "
                  "slots");
  flags.AddUint64("pull_timeout", &params.pull.timeout_services,
                  "re-request timeout in pull service intervals");
  flags.AddBool("pull_force", &params.pull.force,
                "build the pull machinery even with zero pull slots");
  flags.AddUint64("seed", &params.seed, "master RNG seed");
  flags.AddUint64("seeds", &seeds, "seeds to average over");
  flags.AddBool("csv", &csv, "emit a CSV row instead of a table");
  flags.AddString("report_out", &report_out,
                  "write a JSON run report to this path");
  flags.AddString("trace_out", &trace_out,
                  "single mode: write sampled per-request trace here");
  flags.AddDouble("trace_sample", &trace_sample,
                  "trace sampling probability in [0, 1]");
  flags.AddString("trace_format", &trace_format, "trace encoding: jsonl | csv");
  flags.AddString("log_level", &log_level,
                  "log threshold: debug|info|warn|error|fatal");

  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n\n" << flags.HelpText();
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  // Reject incoherent flag combinations by *set-ness*, not value:
  // `--loss=0 --burst_len=4` is a legal (inert) pairing, but a burst
  // length with no loss model at all is a configuration mistake the
  // defaults would otherwise silently swallow.
  if (flags.WasSet("burst_len") && !flags.WasSet("loss")) {
    std::cerr << "--burst_len shapes the loss process; it needs --loss\n";
    return 2;
  }
  if (flags.WasSet("doze_awake") && !flags.WasSet("doze")) {
    std::cerr << "--doze_awake sets the duty cycle's on-phase; it needs "
                 "--doze\n";
    return 2;
  }
  if (flags.WasSet("uplink_cap") && !flags.WasSet("pull_slots") &&
      !flags.WasSet("pull_force")) {
    std::cerr << "--uplink_cap sizes the pull backchannel; it needs "
                 "--pull_slots (or --pull_force)\n";
    return 2;
  }

  Result<pull::PullScheduler> sched = pull::ParsePullScheduler(pull_sched);
  if (!sched.ok()) {
    std::cerr << "--pull_sched: " << sched.status().ToString() << "\n";
    return 2;
  }
  params.pull.scheduler = *sched;

  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::cerr << "unknown --log_level: " << log_level
                << " (debug|info|warn|error|fatal)\n";
      return 2;
    }
    SetLogThreshold(level);
  }

  Result<std::vector<uint64_t>> sizes = ParseUint64List(disks);
  if (!sizes.ok()) {
    std::cerr << "--disks: " << sizes.status().ToString() << "\n";
    return 2;
  }
  params.disk_sizes = *sizes;

  Result<PolicyKind> kind = ParsePolicyKind(policy);
  if (!kind.ok()) {
    std::cerr << kind.status().ToString() << "\n";
    return 2;
  }
  params.policy = *kind;

  if (program == "multidisk") {
    params.program_kind = ProgramKind::kMultiDisk;
  } else if (program == "skewed") {
    params.program_kind = ProgramKind::kSkewed;
  } else if (program == "random") {
    params.program_kind = ProgramKind::kRandom;
  } else {
    std::cerr << "unknown --program: " << program << "\n";
    return 2;
  }
  if (noise_scope == "access_range") {
    params.noise_scope = NoiseScope::kAccessRange;
  } else if (noise_scope == "all") {
    params.noise_scope = NoiseScope::kAllPages;
  } else {
    std::cerr << "unknown --noise_scope: " << noise_scope << "\n";
    return 2;
  }

  if (mode != "single" && !trace_out.empty()) {
    BCAST_LOG(kWarning) << "--trace_out only applies to --mode=single; "
                           "no trace will be written";
  }
  if (mode == "population") {
    return RunPopulation(params, clients, report_out);
  }
  if (mode == "updates") {
    return RunUpdates(params, update_rate, update_theta, consistency,
                      report_out);
  }
  if (mode != "single") {
    std::cerr << "unknown --mode: " << mode << "\n";
    return 2;
  }

  // Observability: one registry and (optionally) one trace sink shared
  // across all seeds.
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_out.empty()) {
    Result<obs::TraceFormat> format = obs::ParseTraceFormat(trace_format);
    if (!format.ok()) {
      std::cerr << "--trace_format: " << format.status().ToString() << "\n";
      return 2;
    }
    if (trace_sample < 0.0 || trace_sample > 1.0) {
      std::cerr << "--trace_sample must be in [0, 1]\n";
      return 2;
    }
    Result<std::unique_ptr<obs::TraceSink>> sink =
        obs::TraceSink::Open(trace_out, trace_sample, *format, params.seed);
    if (!sink.ok()) {
      std::cerr << "--trace_out: " << sink.status().ToString() << "\n";
      return 1;
    }
    trace = std::move(*sink);
  }
  SimObservers observers;
  observers.trace = trace.get();
  observers.registry = &registry;

  // Run (averaging over seeds if requested); keep the last run's
  // breakdown for display and an across-seeds aggregate for the report.
  RunningStat response;
  Result<SimResult> last = Status::Internal("no runs");
  SimResult aggregate;
  bool have_aggregate = false;
  const uint64_t num_seeds = std::max<uint64_t>(seeds, 1);
  for (uint64_t i = 0; i < num_seeds; ++i) {
    SimParams run = params;
    run.seed = params.seed + i;
    last = RunSimulation(run, observers);
    if (!last.ok()) {
      std::cerr << last.status().ToString() << "\n";
      return 1;
    }
    response.Add(last->metrics.mean_response_time());
    if (!have_aggregate) {
      aggregate = *last;
      have_aggregate = true;
    } else {
      aggregate.metrics.Merge(last->metrics);
      aggregate.warmup_requests += last->warmup_requests;
      aggregate.end_time += last->end_time;
      aggregate.timings.Accumulate(last->timings);
      aggregate.events_dispatched += last->events_dispatched;
      if (last->faults_active) {
        aggregate.faults.Merge(last->faults);
        aggregate.faults_active = true;
      }
      if (last->pull_active) {
        aggregate.pull_stats.Merge(last->pull_stats);
        aggregate.pull_active = true;
      }
    }
  }
  if (trace != nullptr) trace->Flush();
  if (!report_out.empty()) {
    obs::RunReport report = MakeRunReport(params, aggregate, "bcastsim");
    report.seeds = num_seeds;
    report.metrics = registry.TakeSnapshot();
    if (!MaybeWriteReport(report, report_out)) return 1;
  }
  const ClientMetrics& m = last->metrics;
  const std::vector<double> fractions = m.LocationFractions();

  if (csv) {
    std::cout << params.ToString() << "\n";
    std::cout << "mean_rt,ci95,hit_rate";
    for (size_t d = 1; d < fractions.size(); ++d) {
      std::cout << ",disk" << d << "_frac";
    }
    std::cout << "\n"
              << FormatDouble(response.mean(), 3) << ","
              << FormatDouble(response.ci95_halfwidth(), 3) << ","
              << FormatDouble(m.hit_rate(), 4);
    for (size_t d = 1; d < fractions.size(); ++d) {
      std::cout << "," << FormatDouble(fractions[d], 4);
    }
    std::cout << "\n";
    return 0;
  }

  std::cout << "Config: " << params.ToString() << "\n";
  std::cout << "Program period " << last->period << " slots, "
            << last->empty_slots << " empty; warm-up "
            << last->warmup_requests << " requests; noise moved "
            << last->perturbed_pages << " pages\n\n";
  AsciiTable table({"Metric", "Value"});
  table.AddRow({"mean response (broadcast units)",
                FormatDouble(response.mean(), 2)});
  if (seeds > 1) {
    table.AddRow({"95% CI halfwidth",
                  FormatDouble(response.ci95_halfwidth(), 2)});
  }
  table.AddRow({"cache hit rate %", FormatDouble(100.0 * m.hit_rate(), 2)});
  for (size_t d = 1; d < fractions.size(); ++d) {
    table.AddRow({"served from disk " + std::to_string(d) + " %",
                  FormatDouble(100.0 * fractions[d], 2)});
  }
  table.AddRow({"max response", FormatDouble(m.response_time().max(), 1)});
  table.AddRow({"mean tuning (radio-on slots)",
                FormatDouble(m.tuning_time().mean(), 2)});
  if (last->faults_active) {
    const fault::FaultStats& fs = last->faults;
    table.AddRow({"delivery ratio %",
                  FormatDouble(100.0 * fs.delivery_ratio(), 2)});
    table.AddRow({"loss-delayed fetches",
                  std::to_string(fs.loss_delayed_fetches)});
    table.AddRow({"reception deadline expiries",
                  std::to_string(fs.deadline_expiries)});
    table.AddRow({"doze-missed arrivals",
                  std::to_string(fs.doze_missed_arrivals)});
  }
  if (last->pull_active) {
    const pull::PullStats& ps = last->pull_stats;
    table.AddRow({"pull requests (re-sends)",
                  std::to_string(ps.requests_attempted) + " (" +
                      std::to_string(ps.re_requests) + ")"});
    table.AddRow({"uplink dropped / lost",
                  std::to_string(ps.uplink_dropped) + " / " +
                      std::to_string(ps.uplink_lost)});
    table.AddRow({"pull slots serviced / offered",
                  std::to_string(ps.serviced_pages) + " / " +
                      std::to_string(ps.pull_opportunities)});
    table.AddRow({"pull service share %",
                  FormatDouble(100.0 * ps.pull_service_share(), 2)});
    table.AddRow({"mean pull latency",
                  FormatDouble(ps.pull_latency.mean(), 2)});
    table.AddRow({"mean push latency",
                  FormatDouble(ps.push_latency.mean(), 2)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bcast

int main(int argc, char** argv) { return bcast::Run(argc, argv); }
