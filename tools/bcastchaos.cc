// bcastchaos — seeded chaos harness over the whole fault surface.
//
// Generates randomized scenarios (geometry, workload, a schedule
// optimizer drawn per seed — delta, ksy, or bit-reversal — and a
// composition of loss/corruption/doze/crash/stall/jitter/version-bump
// schedules),
// runs each to completion under a liveness horizon, and checks global
// invariants: no hang, every request serviced with balanced books,
// response accounting matching the request count, and — periodically —
// byte-identical reports under both DES backends with the process axes
// stripped, plus byte-identical population reports re-run single-sharded
// (the engine's shard-count invariance under full fault composition).
// Any violation reproduces from one integer.
//
//   bcastchaos --seeds 500                 # the CI smoke sweep
//   bcastchaos --chaos_seed 123 --replay   # re-run one seed, verbosely
//   bcastchaos --chaos_seed 123 --min      # shrink a failing scenario
//
// Exit code: 0 when every scenario passed, 1 on any violation, 2 on
// usage errors. On violation the failing seed's report and timeline are
// written next to --artifact_dir and the one-line repro is printed.

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/simulator.h"
#include "obs/timeline.h"

namespace bcast {
namespace {

// Re-runs a failing scenario with a timeline attached and writes the
// report + trace artifacts CI uploads. Best-effort: artifact failures
// are reported but never mask the violation itself.
void WriteArtifacts(const chaos::ChaosScenario& scenario,
                    const std::string& dir) {
  const std::string stem =
      dir + "/chaos_fail_" + std::to_string(scenario.chaos_seed);
  Result<std::unique_ptr<obs::TimelineWriter>> timeline =
      obs::TimelineWriter::Open(stem + ".timeline.json");
  // Population scenarios re-run through the engine so the artifact
  // shows the run that actually failed (per-shard timeline tracks
  // included); single-client scenarios re-run the plain simulator.
  chaos::ChaosOutcome rerun = chaos::RunScenario(
      scenario, nullptr, timeline.ok() ? timeline->get() : nullptr);
  if (rerun.completed) {
    Status st = rerun.report.WriteToFile(stem + ".report.json");
    if (!st.ok()) {
      std::cerr << "artifact write failed: " << st.ToString() << "\n";
    }
  }
  std::cerr << "artifacts: " << stem << ".report.json, " << stem
            << ".timeline.json\n";
}

void PrintViolations(const chaos::ChaosOutcome& outcome, uint64_t seed) {
  for (const chaos::ChaosViolation& v : outcome.violations) {
    std::cerr << "FAIL seed " << seed << " [" << v.invariant
              << "]: " << v.detail << "\n";
  }
  std::cerr << "repro: " << chaos::ReproCommand(seed) << "\n";
}

int Run(int argc, char** argv) {
  uint64_t seeds = 500;
  uint64_t start_seed = 0;
  uint64_t chaos_seed = 0;
  uint64_t identity_every = 16;
  uint64_t shard_identity_every = 8;
  bool replay = false;
  bool minimize = false;
  std::string artifact_dir = ".";

  FlagSet flags("bcastchaos");
  flags.AddUint64("seeds", &seeds, "scenarios to run (seed range)");
  flags.AddUint64("start_seed", &start_seed, "first chaos seed");
  flags.AddUint64("chaos_seed", &chaos_seed,
                  "run exactly this seed (with --replay or --min)");
  flags.AddUint64("identity_every", &identity_every,
                  "every Nth seed also runs the disabled-axes two-backend "
                  "bit-identity check (0 = never)");
  flags.AddUint64("shard_identity_every", &shard_identity_every,
                  "every Nth population seed also re-runs single-sharded "
                  "and requires a bit-identical report (0 = never)");
  flags.AddBool("replay", &replay, "re-run one seed and print its report");
  flags.AddBool("min", &minimize,
                "shrink a failing seed by disabling axes one at a time");
  flags.AddString("artifact_dir", &artifact_dir,
                  "where failing-seed report/timeline artifacts go");
  Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  if (replay || minimize) {
    const chaos::ChaosScenario scenario =
        chaos::GenerateScenario(chaos_seed, chaos::ChaosAxes::All());
    chaos::ChaosOutcome outcome = chaos::RunScenario(scenario);
    std::cout << "seed " << chaos_seed << " axes "
              << scenario.axes.ToString() << " config "
              << scenario.params.ToString() << "\n";
    if (outcome.ok()) {
      std::cout << "ok: every invariant held\n";
      if (minimize) {
        std::cout << "nothing to minimize (seed passes)\n";
      }
      return 0;
    }
    PrintViolations(outcome, chaos_seed);
    WriteArtifacts(scenario, artifact_dir);
    if (minimize) {
      const chaos::ChaosAxes minimal =
          chaos::MinimizeAxes(chaos_seed, scenario.axes);
      std::cout << "minimal failing axes: " << minimal.ToString() << "\n";
    }
    return 1;
  }

  uint64_t failures = 0;
  for (uint64_t s = start_seed; s < start_seed + seeds; ++s) {
    const chaos::ChaosScenario scenario =
        chaos::GenerateScenario(s, chaos::ChaosAxes::All());
    chaos::ChaosOutcome outcome = chaos::RunScenario(scenario);
    if (!outcome.ok()) {
      ++failures;
      PrintViolations(outcome, s);
      WriteArtifacts(scenario, artifact_dir);
      continue;
    }
    if (identity_every > 0 && (s - start_seed) % identity_every == 0) {
      if (auto v = chaos::CheckDisabledIdentity(scenario)) {
        ++failures;
        std::cerr << "FAIL seed " << s << " [" << v->invariant
                  << "]: " << v->detail << "\n";
        std::cerr << "repro: " << chaos::ReproCommand(s) << "\n";
      }
    }
    if (shard_identity_every > 0 &&
        (s - start_seed) % shard_identity_every == 0) {
      if (auto v = chaos::CheckShardIdentity(scenario)) {
        ++failures;
        std::cerr << "FAIL seed " << s << " [" << v->invariant
                  << "]: " << v->detail << "\n";
        std::cerr << "repro: " << chaos::ReproCommand(s) << "\n";
      }
    }
  }
  std::cout << "bcastchaos: " << (seeds - failures) << "/" << seeds
            << " scenarios clean (seeds " << start_seed << ".."
            << (start_seed + seeds - 1) << ")\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bcast

int main(int argc, char** argv) { return bcast::Run(argc, argv); }
