#include "cache/clock.h"

#include <gtest/gtest.h>

#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

TEST(ClockCacheTest, BasicInsertLookup) {
  FakeCatalog catalog(10);
  ClockCache cache(3, 10, &catalog);
  EXPECT_FALSE(cache.Lookup(2, 0.0));
  cache.Insert(2, 0.0);
  EXPECT_TRUE(cache.Lookup(2, 1.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.name(), "CLOCK");
}

TEST(ClockCacheTest, FillsAllSlotsBeforeEvicting) {
  FakeCatalog catalog(10);
  ClockCache cache(3, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);
  cache.Insert(2, 0.0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(ClockCacheTest, SweepEvictsUnreferencedFirst) {
  FakeCatalog catalog(10);
  ClockCache cache(3, 10, &catalog);
  for (PageId p : {0, 1, 2}) cache.Insert(p, 0.0);
  // All ref bits set by insertion. First eviction sweeps: clears all
  // bits, evicts slot 0 (page 0).
  cache.Insert(3, 1.0);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ClockCacheTest, SecondChanceProtectsReferencedPage) {
  FakeCatalog catalog(10);
  ClockCache cache(3, 10, &catalog);
  for (PageId p : {0, 1, 2}) cache.Insert(p, 0.0);
  cache.Insert(3, 1.0);   // evicts 0; hand now past slot 0; bits cleared
  cache.Lookup(1, 2.0);   // re-reference page 1
  cache.Insert(4, 3.0);   // sweep: slot1(page1) referenced -> spared;
                          // slot2(page2) unreferenced -> evicted
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(ClockCacheTest, CapacityOne) {
  FakeCatalog catalog(10);
  ClockCache cache(1, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 1.0);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(ClockCacheTest, ChurnStaysWithinCapacity) {
  FakeCatalog catalog(50);
  ClockCache cache(5, 50, &catalog);
  for (int round = 0; round < 10; ++round) {
    for (PageId p = 0; p < 50; p += 2) {
      if (!cache.Lookup(p, 0.0)) cache.Insert(p, 0.0);
      ASSERT_LE(cache.size(), 5u);
    }
  }
  EXPECT_EQ(cache.size(), 5u);
}

TEST(ClockCacheDeathTest, DoubleInsertDies) {
  FakeCatalog catalog(10);
  ClockCache cache(3, 10, &catalog);
  cache.Insert(0, 0.0);
  EXPECT_DEATH(cache.Insert(0, 1.0), "cached page");
}

}  // namespace
}  // namespace bcast
