#include "cache/two_q.h"

#include <gtest/gtest.h>

#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

// Reclamation in this 2Q is lazy: demotion from A1in happens only when
// the cache is at capacity and a slot is needed, exactly like the
// original's "reclaiming" procedure.

TEST(TwoQCacheTest, NameReflectsVariant) {
  FakeCatalog catalog(20, 1);
  TwoQCache plain(8, 20, &catalog);
  TwoQCache costly(8, 20, &catalog, TwoQOptions{0.25, 0.5, true});
  EXPECT_EQ(plain.name(), "2Q");
  EXPECT_EQ(costly.name(), "2QX");
}

TEST(TwoQCacheTest, FirstInsertGoesToA1in) {
  FakeCatalog catalog(20, 1);
  TwoQCache cache(8, 20, &catalog);
  cache.Insert(3, 0.0);
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.a1in_size(), 1u);
  EXPECT_EQ(cache.am_size(), 0u);
}

TEST(TwoQCacheTest, HitInA1inDoesNotPromote) {
  // Correlated references must not promote; promotion goes via A1out.
  FakeCatalog catalog(20, 1);
  TwoQCache cache(8, 20, &catalog);
  cache.Insert(3, 0.0);
  EXPECT_TRUE(cache.Lookup(3, 1.0));
  EXPECT_EQ(cache.am_size(), 0u);
  EXPECT_EQ(cache.a1in_size(), 1u);
}

TEST(TwoQCacheTest, OverflowDemotesA1inTailToGhost) {
  FakeCatalog catalog(40, 1);
  TwoQCache cache(4, 40, &catalog);  // kin = 1, kout = 2
  for (PageId p = 0; p < 4; ++p) cache.Insert(p, p);
  cache.Insert(4, 4.0);  // at capacity: FIFO tail (page 0) becomes a ghost
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_EQ(cache.a1out_size(), 1u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(TwoQCacheTest, GhostReferencePromotesToAm) {
  FakeCatalog catalog(40, 1);
  TwoQCache cache(4, 40, &catalog);  // kin = 1, kout = 2
  for (PageId p = 0; p < 4; ++p) cache.Insert(p, p);
  cache.Insert(4, 4.0);            // page 0 -> ghost
  EXPECT_FALSE(cache.Lookup(0, 5.0));
  cache.Insert(0, 5.0);            // ghost hit -> Am
  EXPECT_EQ(cache.am_size(), 1u);
  EXPECT_TRUE(cache.Contains(0));
}

TEST(TwoQCacheTest, PromotionConsumesGhostEntry) {
  FakeCatalog catalog(40, 1);
  TwoQCache cache(4, 40, &catalog);
  for (PageId p = 0; p < 4; ++p) cache.Insert(p, p);
  cache.Insert(4, 4.0);  // 0 -> ghost
  ASSERT_EQ(cache.a1out_size(), 1u);
  // Promoting 0 demotes one more A1in page (+1 ghost) and consumes 0's
  // ghost entry (-1): net size stays 1, and 0's entry is gone.
  cache.Insert(0, 5.0);
  EXPECT_EQ(cache.a1out_size(), 1u);
}

TEST(TwoQCacheTest, CapacityNeverExceeded) {
  FakeCatalog catalog(100, 1);
  TwoQCache cache(10, 100, &catalog);
  for (int round = 0; round < 5; ++round) {
    for (PageId p = 0; p < 100; p += 3) {
      const double t = round * 100.0 + p;
      if (!cache.Lookup(p, t)) cache.Insert(p, t);
      ASSERT_LE(cache.size(), 10u);
    }
  }
}

TEST(TwoQCacheTest, GhostQueueBounded) {
  FakeCatalog catalog(200, 1);
  TwoQCache cache(10, 200, &catalog);  // kout = 5
  for (PageId p = 0; p < 200; ++p) {
    if (!cache.Lookup(p, p)) cache.Insert(p, p);
  }
  EXPECT_LE(cache.a1out_size(), 5u);
}

TEST(TwoQCacheTest, OneShotScanDoesNotEvictHotAmPages) {
  FakeCatalog catalog(200, 1);
  TwoQCache cache(10, 200, &catalog);  // kin = 2, kout = 5
  // Establish page 0 in Am: fill to capacity, overflow it to the ghost
  // queue, then re-reference it.
  for (PageId p = 0; p < 10; ++p) cache.Insert(p, p);
  cache.Insert(10, 10.0);  // page 0 -> ghost
  cache.Insert(0, 11.0);   // ghost hit -> Am
  ASSERT_EQ(cache.am_size(), 1u);
  ASSERT_TRUE(cache.Contains(0));
  // A long one-shot scan washes through A1in only.
  for (PageId p = 100; p < 180; ++p) {
    ASSERT_FALSE(cache.Lookup(p, p));
    cache.Insert(p, p);
  }
  EXPECT_TRUE(cache.Contains(0)) << "hot page evicted by scan";
}

TEST(TwoQCacheTest, AmEvictsItsLruPageWhenA1inIsSmall) {
  FakeCatalog catalog(100, 1);
  TwoQCache cache(4, 100, &catalog, TwoQOptions{0.5, 0.5, false});
  // kin = 2, kout = 2. Promote 0, 1, 2 into Am one by one; each ghost-hit
  // insert shrinks A1in by one.
  for (PageId p = 0; p < 4; ++p) cache.Insert(p, p);
  cache.Insert(4, 4.0);  // demote 0 -> ghost
  cache.Insert(0, 5.0);  // 0 -> Am (demotes 1)
  cache.Insert(1, 6.0);  // 1 -> Am (demotes 2)
  cache.Insert(2, 7.0);  // 2 -> Am (demotes 3)
  ASSERT_EQ(cache.am_size(), 3u);
  ASSERT_EQ(cache.a1in_size(), 1u);
  cache.Lookup(0, 8.0);  // Am order MRU->LRU: 0, 2, 1
  // A1in is now below kin, so the next reclaim hits Am's LRU: page 1.
  cache.Insert(3, 9.0);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(TwoQXCacheTest, EvictsCheapToRefetchCandidate) {
  // Fast pages (freq 0.5) are cheap to re-acquire; slow ones (0.01) are
  // not. 2QX keeps the slow A1in page and sacrifices the fast Am page —
  // plain 2Q would do the opposite.
  FakeCatalog catalog(100, 2);
  for (PageId p = 0; p < 50; ++p) catalog.set_frequency(p, 0.5);
  for (PageId p = 50; p < 100; ++p) catalog.set_frequency(p, 0.01);

  for (bool use_freq : {true, false}) {
    TwoQCache cache(4, 100, &catalog, TwoQOptions{0.5, 0.5, use_freq});
    cache.Insert(0, 0.0);    // fast
    cache.Insert(61, 1.0);   // slow
    cache.Insert(62, 2.0);
    cache.Insert(63, 3.0);   // at capacity, A1in = [63,62,61,0]
    cache.Insert(64, 4.0);   // demote 0 -> ghost
    cache.Insert(0, 5.0);    // ghost hit: fast page 0 -> Am
    ASSERT_TRUE(cache.Contains(0));
    // Next insert: candidates are A1in tail 62 (slow) and Am LRU 0 (fast).
    cache.Insert(65, 6.0);
    if (use_freq) {
      EXPECT_FALSE(cache.Contains(0)) << "2QX should evict the fast page";
      EXPECT_TRUE(cache.Contains(62));
    } else {
      EXPECT_TRUE(cache.Contains(0)) << "plain 2Q demotes from A1in";
      EXPECT_FALSE(cache.Contains(62));
    }
  }
}

TEST(TwoQCacheTest, CapacityOneWorks) {
  FakeCatalog catalog(10, 1);
  TwoQCache cache(1, 10, &catalog);
  cache.Insert(0, 0.0);
  EXPECT_TRUE(cache.Contains(0));
  cache.Insert(1, 1.0);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TwoQCacheDeathTest, InsertingCachedPageDies) {
  FakeCatalog catalog(10, 1);
  TwoQCache cache(4, 10, &catalog);
  cache.Insert(0, 0.0);
  EXPECT_DEATH(cache.Insert(0, 1.0), "cached page");
}

}  // namespace
}  // namespace bcast
