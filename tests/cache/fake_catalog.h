/// \file fake_catalog.h
/// \brief A configurable PageCatalog for cache-policy unit tests.

#ifndef BCAST_TESTS_CACHE_FAKE_CATALOG_H_
#define BCAST_TESTS_CACHE_FAKE_CATALOG_H_

#include <vector>

#include "cache/cache_policy.h"

namespace bcast {

/// All pages default to probability 1/n, frequency 1, disk 0; tests
/// override individual pages as needed.
class FakeCatalog : public PageCatalog {
 public:
  explicit FakeCatalog(PageId num_pages, uint64_t num_disks = 1)
      : prob_(num_pages, 1.0 / static_cast<double>(num_pages)),
        freq_(num_pages, 1.0),
        disk_(num_pages, 0),
        num_disks_(num_disks) {}

  void set_probability(PageId p, double v) { prob_[p] = v; }
  void set_frequency(PageId p, double v) { freq_[p] = v; }
  void set_disk(PageId p, DiskIndex d) { disk_[p] = d; }

  double Probability(PageId p) const override { return prob_[p]; }
  double Frequency(PageId p) const override { return freq_[p]; }
  DiskIndex DiskOf(PageId p) const override { return disk_[p]; }
  uint64_t NumDisks() const override { return num_disks_; }

 private:
  std::vector<double> prob_;
  std::vector<double> freq_;
  std::vector<DiskIndex> disk_;
  uint64_t num_disks_;
};

}  // namespace bcast

#endif  // BCAST_TESTS_CACHE_FAKE_CATALOG_H_
