#include "cache/p_policy.h"

#include <gtest/gtest.h>

#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

FakeCatalog DescendingProbCatalog(PageId n) {
  FakeCatalog catalog(n, 2);
  for (PageId p = 0; p < n; ++p) {
    // Page 0 hottest.
    catalog.set_probability(p, 1.0 / static_cast<double>(p + 1));
  }
  return catalog;
}

TEST(PCacheTest, KeepsHighestProbabilityPages) {
  FakeCatalog catalog = DescendingProbCatalog(10);
  PCache cache(3, 10, &catalog);
  // Insert cold-to-hot; the hot ones must win.
  for (PageId p = 9; p != kEmptySlot && p < 10; --p) {
    if (!cache.Contains(p)) cache.Insert(p, 0.0);
  }
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.name(), "P");
}

TEST(PCacheTest, DeclinesColderNewcomer) {
  FakeCatalog catalog = DescendingProbCatalog(10);
  PCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);
  cache.Insert(7, 0.0);  // colder than both residents: declined
  EXPECT_FALSE(cache.Contains(7));
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(PCacheTest, EvictsColdestWhenHotterArrives) {
  FakeCatalog catalog = DescendingProbCatalog(10);
  PCache cache(2, 10, &catalog);
  cache.Insert(5, 0.0);
  cache.Insert(6, 0.0);
  cache.Insert(1, 0.0);  // hotter: evicts page 6 (the coldest resident)
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_FALSE(cache.Contains(6));
}

TEST(PCacheTest, TieKeepsResident) {
  FakeCatalog catalog(4);
  for (PageId p = 0; p < 4; ++p) catalog.set_probability(p, 0.25);
  PCache cache(1, 4, &catalog);
  cache.Insert(2, 0.0);
  cache.Insert(3, 0.0);  // equal value: resident 2 stays
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(3));
}

TEST(PCacheTest, LookupDoesNotDisturbContents) {
  FakeCatalog catalog = DescendingProbCatalog(10);
  PCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);
  EXPECT_TRUE(cache.Lookup(0, 1.0));
  EXPECT_FALSE(cache.Lookup(5, 1.0));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PCacheTest, ValueOfExposesProbability) {
  FakeCatalog catalog = DescendingProbCatalog(10);
  PCache cache(2, 10, &catalog);
  EXPECT_DOUBLE_EQ(cache.ValueOf(0), 1.0);
  EXPECT_DOUBLE_EQ(cache.ValueOf(3), 0.25);
}

// --- PIX: the paper's Section-3 worked example ---

TEST(PixCacheTest, PaperSection3Example) {
  // "One page is accessed 1% of the time and broadcast 1% of the time; a
  // second is accessed only 0.5% of the time but broadcast 0.1% of the
  // time." PIX prefers the second even though it is accessed half as
  // often.
  FakeCatalog catalog(3, 2);
  catalog.set_probability(0, 0.01);
  catalog.set_frequency(0, 0.01);   // pix = 1.0
  catalog.set_probability(1, 0.005);
  catalog.set_frequency(1, 0.001);  // pix = 5.0
  PixCache cache(1, 3, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);  // displaces page 0 despite lower probability
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_EQ(cache.name(), "PIX");
}

TEST(PixCacheTest, EqualFrequencyReducesToP) {
  FakeCatalog catalog = DescendingProbCatalog(10);
  for (PageId p = 0; p < 10; ++p) catalog.set_frequency(p, 0.2);
  PixCache pix(3, 10, &catalog);
  PCache p_cache(3, 10, &catalog);
  for (PageId page = 9; page != kEmptySlot && page < 10; --page) {
    if (!pix.Contains(page)) pix.Insert(page, 0.0);
    if (!p_cache.Contains(page)) p_cache.Insert(page, 0.0);
  }
  for (PageId page = 0; page < 10; ++page) {
    EXPECT_EQ(pix.Contains(page), p_cache.Contains(page)) << page;
  }
}

TEST(PixCacheTest, HotFastPageLosesToWarmSlowPage) {
  FakeCatalog catalog(2, 2);
  catalog.set_probability(0, 0.4);
  catalog.set_frequency(0, 0.5);    // hot but very fast: pix 0.8
  catalog.set_probability(1, 0.1);
  catalog.set_frequency(1, 0.01);   // warm but very slow: pix 10
  PixCache cache(1, 2, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(PixCacheDeathTest, ZeroFrequencyPageDies) {
  FakeCatalog catalog(2);
  catalog.set_frequency(1, 0.0);
  EXPECT_DEATH(PixCache(1, 2, &catalog), "never broadcast");
}

TEST(StaticValueCacheTest, FillsToCapacityBeforeComparing) {
  FakeCatalog catalog = DescendingProbCatalog(10);
  PCache cache(5, 10, &catalog);
  // Even cold pages are admitted while there is room.
  cache.Insert(9, 0.0);
  cache.Insert(8, 0.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(9));
}

}  // namespace
}  // namespace bcast
