#include "cache/factory.h"

#include <gtest/gtest.h>

#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

TEST(FactoryTest, BuildsEveryKind) {
  FakeCatalog catalog(10, 2);
  for (PolicyKind kind :
       {PolicyKind::kP, PolicyKind::kPix, PolicyKind::kLru, PolicyKind::kL,
        PolicyKind::kLix, PolicyKind::kLruK, PolicyKind::kTwoQ,
        PolicyKind::kClock, PolicyKind::kGreedyDual}) {
    auto policy = MakeCachePolicy(kind, 4, 10, &catalog);
    ASSERT_TRUE(policy.ok()) << PolicyKindName(kind);
    EXPECT_EQ((*policy)->capacity(), 4u);
    EXPECT_EQ((*policy)->size(), 0u);
  }
}

TEST(FactoryTest, NamesMatchPolicies) {
  FakeCatalog catalog(10, 2);
  EXPECT_EQ((*MakeCachePolicy(PolicyKind::kP, 2, 10, &catalog))->name(), "P");
  EXPECT_EQ((*MakeCachePolicy(PolicyKind::kPix, 2, 10, &catalog))->name(),
            "PIX");
  EXPECT_EQ((*MakeCachePolicy(PolicyKind::kLru, 2, 10, &catalog))->name(),
            "LRU");
  EXPECT_EQ((*MakeCachePolicy(PolicyKind::kL, 2, 10, &catalog))->name(), "L");
  EXPECT_EQ((*MakeCachePolicy(PolicyKind::kLix, 2, 10, &catalog))->name(),
            "LIX");
  EXPECT_EQ((*MakeCachePolicy(PolicyKind::kTwoQ, 2, 10, &catalog))->name(),
            "2Q");
  EXPECT_EQ((*MakeCachePolicy(PolicyKind::kClock, 2, 10, &catalog))->name(),
            "CLOCK");
  EXPECT_EQ(
      (*MakeCachePolicy(PolicyKind::kGreedyDual, 2, 10, &catalog))->name(),
      "GD");
}

TEST(FactoryTest, LOptionsForceFrequencyOff) {
  FakeCatalog catalog(10, 2);
  PolicyOptions options;
  options.lix.use_frequency = true;  // must be overridden for kL
  auto policy = MakeCachePolicy(PolicyKind::kL, 2, 10, &catalog, options);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->name(), "L");
}

TEST(FactoryTest, RejectsBadArguments) {
  FakeCatalog catalog(10, 2);
  EXPECT_FALSE(MakeCachePolicy(PolicyKind::kLru, 0, 10, &catalog).ok());
  EXPECT_FALSE(MakeCachePolicy(PolicyKind::kLru, 2, 0, &catalog).ok());
  EXPECT_FALSE(MakeCachePolicy(PolicyKind::kLru, 2, 10, nullptr).ok());
}

TEST(ParsePolicyKindTest, CanonicalNames) {
  EXPECT_EQ(*ParsePolicyKind("P"), PolicyKind::kP);
  EXPECT_EQ(*ParsePolicyKind("PIX"), PolicyKind::kPix);
  EXPECT_EQ(*ParsePolicyKind("pix"), PolicyKind::kPix);
  EXPECT_EQ(*ParsePolicyKind("LRU"), PolicyKind::kLru);
  EXPECT_EQ(*ParsePolicyKind("l"), PolicyKind::kL);
  EXPECT_EQ(*ParsePolicyKind("LIX"), PolicyKind::kLix);
  EXPECT_EQ(*ParsePolicyKind("lru-k"), PolicyKind::kLruK);
  EXPECT_EQ(*ParsePolicyKind("2q"), PolicyKind::kTwoQ);
  EXPECT_EQ(*ParsePolicyKind("clock"), PolicyKind::kClock);
  EXPECT_EQ(*ParsePolicyKind("gd"), PolicyKind::kGreedyDual);
  EXPECT_EQ(*ParsePolicyKind("GreedyDual"), PolicyKind::kGreedyDual);
}

TEST(ParsePolicyKindTest, UnknownNameFails) {
  EXPECT_FALSE(ParsePolicyKind("mru").ok());
  EXPECT_FALSE(ParsePolicyKind("").ok());
}

TEST(ParsePolicyKindTest, RoundTripsThroughName) {
  for (PolicyKind kind :
       {PolicyKind::kP, PolicyKind::kPix, PolicyKind::kLru, PolicyKind::kL,
        PolicyKind::kLix, PolicyKind::kTwoQ, PolicyKind::kClock,
        PolicyKind::kGreedyDual}) {
    auto parsed = ParsePolicyKind(PolicyKindName(kind));
    ASSERT_TRUE(parsed.ok()) << PolicyKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

// Cross-policy behavioural property: every policy respects capacity and
// membership coherence under a common random workload.
class PolicyContractTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyContractTest, CapacityAndMembershipInvariants) {
  FakeCatalog catalog(50, 3);
  for (PageId p = 0; p < 50; ++p) {
    catalog.set_disk(p, p % 3);
    catalog.set_frequency(p, 0.5 / static_cast<double>(1 + p % 3));
    catalog.set_probability(p, 1.0 / static_cast<double>(p + 1));
  }
  auto policy = MakeCachePolicy(GetParam(), 8, 50, &catalog);
  ASSERT_TRUE(policy.ok());
  CachePolicy& cache = **policy;

  uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const PageId page = static_cast<PageId>((state >> 33) % 50);
    const double now = static_cast<double>(i);
    const bool hit = cache.Lookup(page, now);
    EXPECT_EQ(hit, cache.Contains(page));
    if (!hit) {
      cache.Insert(page, now);
      // P/PIX may decline admission; everyone else must admit.
      if (GetParam() != PolicyKind::kP && GetParam() != PolicyKind::kPix) {
        EXPECT_TRUE(cache.Contains(page));
      }
    }
    ASSERT_LE(cache.size(), 8u);
  }
  EXPECT_EQ(cache.size(), 8u) << "cache should be full after 2000 accesses";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyContractTest,
    ::testing::Values(PolicyKind::kP, PolicyKind::kPix, PolicyKind::kLru,
                      PolicyKind::kL, PolicyKind::kLix, PolicyKind::kLruK,
                      PolicyKind::kTwoQ, PolicyKind::kClock,
                      PolicyKind::kGreedyDual),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      std::string name = PolicyKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name == "2Q" ? std::string("TwoQ") : name;
    });

}  // namespace
}  // namespace bcast
