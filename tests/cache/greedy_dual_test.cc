#include "cache/greedy_dual.h"

#include <gtest/gtest.h>

#include "cache/lru.h"
#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

// Pages 0-4 on a fast disk (freq 0.5 -> cost 1), pages 5-9 on a slow one
// (freq 0.05 -> cost 10).
FakeCatalog TwoCostCatalog() {
  FakeCatalog catalog(10, 2);
  for (PageId p = 0; p < 5; ++p) {
    catalog.set_frequency(p, 0.5);
    catalog.set_disk(p, 0);
  }
  for (PageId p = 5; p < 10; ++p) {
    catalog.set_frequency(p, 0.05);
    catalog.set_disk(p, 1);
  }
  return catalog;
}

TEST(GreedyDualTest, BasicInsertLookup) {
  FakeCatalog catalog = TwoCostCatalog();
  GreedyDualCache cache(3, 10, &catalog);
  EXPECT_FALSE(cache.Lookup(1, 0.0));
  cache.Insert(1, 0.0);
  EXPECT_TRUE(cache.Lookup(1, 1.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.name(), "GD");
}

TEST(GreedyDualTest, CreditIsInflationPlusCost) {
  FakeCatalog catalog = TwoCostCatalog();
  GreedyDualCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);  // cost 1
  cache.Insert(5, 0.0);  // cost 10
  EXPECT_DOUBLE_EQ(cache.CreditOf(0), 1.0);
  EXPECT_DOUBLE_EQ(cache.CreditOf(5), 10.0);
  EXPECT_DOUBLE_EQ(cache.inflation(), 0.0);
}

TEST(GreedyDualTest, EvictsMinimumCreditAndInflates) {
  FakeCatalog catalog = TwoCostCatalog();
  GreedyDualCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);  // H = 1
  cache.Insert(5, 0.0);  // H = 10
  cache.Insert(6, 0.0);  // evicts 0 (min H), L = 1, H(6) = 11
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_DOUBLE_EQ(cache.inflation(), 1.0);
  EXPECT_DOUBLE_EQ(cache.CreditOf(6), 11.0);
}

TEST(GreedyDualTest, ExpensivePageSurvivesCheapChurn) {
  // One slow-disk page plus a churn of fast pages: the slow page's high
  // credit outlasts many rounds of cheap evictions.
  FakeCatalog catalog = TwoCostCatalog();
  GreedyDualCache cache(3, 10, &catalog);
  cache.Insert(5, 0.0);  // H = 10
  PageId fast = 0;
  for (int i = 0; i < 8; ++i) {
    const PageId page = fast % 5;
    if (!cache.Lookup(page, i)) cache.Insert(page, i);
    ++fast;
  }
  EXPECT_TRUE(cache.Contains(5)) << "expensive page evicted too early";
}

TEST(GreedyDualTest, StaleExpensivePageEventuallyEvicted) {
  // Unlike a pure cost ranking, GD's inflation retires even expensive
  // pages that are never touched again.
  FakeCatalog catalog = TwoCostCatalog();
  GreedyDualCache cache(2, 10, &catalog);
  cache.Insert(5, 0.0);  // H = 10, never touched again
  // Repeatedly churn fast pages: each eviction raises L by ~1 until the
  // fast pages' refreshed credits pass 10.
  for (int i = 0; i < 40; ++i) {
    const PageId page = i % 5;
    if (!cache.Lookup(page, i)) cache.Insert(page, i);
  }
  EXPECT_FALSE(cache.Contains(5)) << "inflation never retired the page";
}

TEST(GreedyDualTest, HitsRefreshCredit) {
  FakeCatalog catalog = TwoCostCatalog();
  GreedyDualCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);
  cache.Insert(2, 0.0);  // evict 0 (tie -> lowest id), L = 1
  ASSERT_TRUE(cache.Contains(1));
  cache.Lookup(1, 1.0);  // refresh: H(1) = L + 1 = 2
  EXPECT_DOUBLE_EQ(cache.CreditOf(1), 2.0);
}

TEST(GreedyDualTest, UniformCostApproximatesLru) {
  // With equal costs GD orders victims by last-refresh *epoch* (credits
  // tie within an inter-eviction window and break by page id), so it is
  // LRU up to intra-epoch ties: hit rates must match closely, though
  // individual victims may differ.
  FakeCatalog catalog(32, 1);  // all freq 1 -> cost 0.5
  GreedyDualCache gd(8, 32, &catalog);
  LruCache lru(8, 32, &catalog);
  uint64_t state = 99;
  int hits_gd = 0, hits_lru = 0;
  const int ops = 20000;
  for (int i = 0; i < ops; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const PageId page = static_cast<PageId>((state >> 33) % 32);
    if (gd.Lookup(page, i)) {
      ++hits_gd;
    } else {
      gd.Insert(page, i);
    }
    if (lru.Lookup(page, i)) {
      ++hits_lru;
    } else {
      lru.Insert(page, i);
    }
  }
  EXPECT_NEAR(static_cast<double>(hits_gd) / ops,
              static_cast<double>(hits_lru) / ops, 0.02);
}

TEST(GreedyDualTest, CapacityRespected) {
  FakeCatalog catalog = TwoCostCatalog();
  GreedyDualCache cache(4, 10, &catalog);
  for (int round = 0; round < 5; ++round) {
    for (PageId p = 0; p < 10; ++p) {
      if (!cache.Lookup(p, round * 10 + p)) cache.Insert(p, round * 10 + p);
      ASSERT_LE(cache.size(), 4u);
    }
  }
}

}  // namespace
}  // namespace bcast
