// Differential tests: pairs of policies that must behave *identically*
// under specific conditions. These catch subtle implementation drift that
// example-based unit tests miss, across long random workloads.

#include <gtest/gtest.h>

#include <cmath>

#include "cache/factory.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

// Runs `ops` Zipf-distributed accesses through both policies and checks
// they agree on every lookup result (=> identical contents throughout).
void ExpectIdenticalBehaviour(CachePolicy* a, CachePolicy* b, PageId pages,
                              int ops, uint64_t seed) {
  auto zipf = ZipfDistribution::Make(pages, 0.9);
  ASSERT_TRUE(zipf.ok());
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    const PageId page = static_cast<PageId>(zipf->Sample(&rng) - 1);
    const double now = static_cast<double>(i);
    const bool hit_a = a->Lookup(page, now);
    const bool hit_b = b->Lookup(page, now);
    ASSERT_EQ(hit_a, hit_b) << "divergence at op " << i;
    if (!hit_a) {
      a->Insert(page, now);
      b->Insert(page, now);
    }
    ASSERT_EQ(a->size(), b->size()) << "size divergence at op " << i;
  }
  for (PageId p = 0; p < pages; ++p) {
    EXPECT_EQ(a->Contains(p), b->Contains(p)) << "final contents differ";
  }
}

TEST(DifferentialTest, LixOnOneDiskIsExactlyLru) {
  // With a single (flat) disk LIX has one chain; its victim is always
  // the chain bottom — the LRU page — and it always admits. The paper:
  // "LIX reduces to LRU if the broadcast uses a single flat disk."
  FakeCatalog catalog(64, 1);
  auto lru = MakeCachePolicy(PolicyKind::kLru, 12, 64, &catalog);
  auto lix = MakeCachePolicy(PolicyKind::kLix, 12, 64, &catalog);
  ASSERT_TRUE(lru.ok());
  ASSERT_TRUE(lix.ok());
  ExpectIdenticalBehaviour(lru->get(), lix->get(), 64, 5000, 11);
}

TEST(DifferentialTest, LOnAnyBroadcastEqualsLixOnFlat) {
  // L is LIX with the frequency division removed, so on a multi-disk
  // catalog L must behave like LIX does when all frequencies are equal
  // ... within one chain. With multiple chains the chain *structure*
  // still differs, so we check the single-disk case where they must be
  // identical.
  FakeCatalog catalog(64, 1);
  auto l = MakeCachePolicy(PolicyKind::kL, 12, 64, &catalog);
  auto lix = MakeCachePolicy(PolicyKind::kLix, 12, 64, &catalog);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(lix.ok());
  ExpectIdenticalBehaviour(l->get(), lix->get(), 64, 5000, 13);
}

TEST(DifferentialTest, PixWithUniformFrequencyIsP) {
  FakeCatalog catalog(64, 2);
  for (PageId p = 0; p < 64; ++p) {
    catalog.set_probability(p, 1.0 / static_cast<double>(p + 2));
    catalog.set_frequency(p, 0.125);
    catalog.set_disk(p, p % 2);
  }
  auto p_cache = MakeCachePolicy(PolicyKind::kP, 12, 64, &catalog);
  auto pix = MakeCachePolicy(PolicyKind::kPix, 12, 64, &catalog);
  ASSERT_TRUE(p_cache.ok());
  ASSERT_TRUE(pix.ok());
  ExpectIdenticalBehaviour(p_cache->get(), pix->get(), 64, 5000, 17);
}

TEST(DifferentialTest, LruKWithFrequencyOffOnOneDiskIsOrderedByOldest) {
  // LRU-1 without the frequency term on one disk: eviction by oldest
  // last-access — exactly LRU.
  FakeCatalog catalog(64, 1);
  PolicyOptions options;
  options.lru_k.k = 1;
  options.lru_k.use_frequency = false;
  auto lru = MakeCachePolicy(PolicyKind::kLru, 12, 64, &catalog);
  auto lru1 = MakeCachePolicy(PolicyKind::kLruK, 12, 64, &catalog, options);
  ASSERT_TRUE(lru.ok());
  ASSERT_TRUE(lru1.ok());
  ExpectIdenticalBehaviour(lru->get(), lru1->get(), 64, 5000, 19);
}

// --- Cost-differential tests -------------------------------------------
// The paper's argument for cost-based caching (Section 5): with
// non-uniform broadcast frequencies a miss is not a unit event — a page
// broadcast with normalized frequency x costs ~1/(2x) slots to refetch.
// Replaying one shared trace through two policies and pricing each miss
// that way turns the claim "PIX beats P" into an executable assertion.

// A two-disk catalog where probability and frequency disagree: the hot
// half sits on the fast disk (cheap misses), the cold half on the slow
// disk (expensive misses). P ranks by probability only, so it evicts
// exactly the expensive-to-refetch pages PIX protects.
FakeCatalog MakeTwoTierCatalog(PageId pages) {
  FakeCatalog catalog(pages, 2);
  const PageId half = pages / 2;
  double norm = 0.0;
  for (PageId p = 0; p < pages; ++p) norm += 1.0 / static_cast<double>(p + 1);
  for (PageId p = 0; p < pages; ++p) {
    catalog.set_probability(p, 1.0 / (static_cast<double>(p + 1) * norm));
    catalog.set_frequency(p, p < half ? 0.02 : 0.005);  // 4:1 disk speeds
    catalog.set_disk(p, p < half ? 0 : 1);
  }
  return catalog;
}

// Replays `ops` Zipf accesses and returns the summed steady-state miss
// cost (1/(2x) per miss, counted after `warmup` ops).
double ReplayMissCost(CachePolicy* cache, const FakeCatalog& catalog,
                      PageId pages, int ops, int warmup, uint64_t seed) {
  auto zipf = ZipfDistribution::Make(pages, 0.95);
  EXPECT_TRUE(zipf.ok());
  Rng rng(seed);
  double cost = 0.0;
  for (int i = 0; i < ops; ++i) {
    const PageId page = static_cast<PageId>(zipf->Sample(&rng) - 1);
    const double now = static_cast<double>(i);
    if (!cache->Lookup(page, now)) {
      if (i >= warmup) cost += 1.0 / (2.0 * catalog.Frequency(page));
      cache->Insert(page, now);
    }
  }
  return cost;
}

TEST(DifferentialTest, PixMissCostAtMostPOnSharedTrace) {
  const PageId kPages = 64;
  const FakeCatalog catalog = MakeTwoTierCatalog(kPages);
  auto p_cache = MakeCachePolicy(PolicyKind::kP, 12, kPages, &catalog);
  auto pix = MakeCachePolicy(PolicyKind::kPix, 12, kPages, &catalog);
  ASSERT_TRUE(p_cache.ok());
  ASSERT_TRUE(pix.ok());
  const double p_cost =
      ReplayMissCost(p_cache->get(), catalog, kPages, 20000, 2000, 23);
  const double pix_cost =
      ReplayMissCost(pix->get(), catalog, kPages, 20000, 2000, 23);
  // Frequency-aware eviction must not cost more at steady state; the 1%
  // slack absorbs boundary effects of the finite trace.
  EXPECT_LE(pix_cost, p_cost * 1.01)
      << "PIX cost " << pix_cost << " vs P cost " << p_cost;
  EXPECT_GT(p_cost, 0.0) << "trace never missed — test is vacuous";
}

TEST(DifferentialTest, LixMissCostWithinToleranceOfPixOnSharedTrace) {
  // LIX approximates PIX's probability estimate with a per-chain running
  // average (the paper's implementable variant), so it tracks PIX's cost
  // rather than matching it. The band below is deliberately loose; what
  // it must catch is LIX degenerating to frequency-blind LRU behaviour.
  const PageId kPages = 64;
  const FakeCatalog catalog = MakeTwoTierCatalog(kPages);
  auto lru = MakeCachePolicy(PolicyKind::kLru, 12, kPages, &catalog);
  auto lix = MakeCachePolicy(PolicyKind::kLix, 12, kPages, &catalog);
  auto pix = MakeCachePolicy(PolicyKind::kPix, 12, kPages, &catalog);
  ASSERT_TRUE(lru.ok());
  ASSERT_TRUE(lix.ok());
  ASSERT_TRUE(pix.ok());
  const double lru_cost =
      ReplayMissCost(lru->get(), catalog, kPages, 20000, 2000, 29);
  const double lix_cost =
      ReplayMissCost(lix->get(), catalog, kPages, 20000, 2000, 29);
  const double pix_cost =
      ReplayMissCost(pix->get(), catalog, kPages, 20000, 2000, 29);
  EXPECT_LE(lix_cost, lru_cost * 1.01)
      << "LIX cost " << lix_cost << " vs LRU cost " << lru_cost;
  EXPECT_LE(std::abs(lix_cost - pix_cost) / pix_cost, 0.25)
      << "LIX cost " << lix_cost << " strayed from PIX cost " << pix_cost;
}

TEST(DifferentialTest, SeedsChangeWorkloadNotInvariants) {
  // Meta-check of the harness itself: different seeds produce different
  // access sequences (so the tests above are not vacuous).
  FakeCatalog catalog(64, 1);
  auto a = MakeCachePolicy(PolicyKind::kLru, 12, 64, &catalog);
  auto b = MakeCachePolicy(PolicyKind::kLru, 12, 64, &catalog);
  auto zipf = ZipfDistribution::Make(64, 0.9);
  Rng rng1(1), rng2(2);
  int diverged = 0;
  for (int i = 0; i < 500; ++i) {
    const PageId p1 = static_cast<PageId>(zipf->Sample(&rng1) - 1);
    const PageId p2 = static_cast<PageId>(zipf->Sample(&rng2) - 1);
    if (p1 != p2) ++diverged;
    if (!(*a)->Lookup(p1, i)) (*a)->Insert(p1, i);
    if (!(*b)->Lookup(p2, i)) (*b)->Insert(p2, i);
  }
  EXPECT_GT(diverged, 100);
}

}  // namespace
}  // namespace bcast
