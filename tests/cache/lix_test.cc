#include "cache/lix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

// Two-disk catalog: pages 0-4 on fast disk 0 (freq 0.5), pages 5-9 on
// slow disk 1 (freq 0.1).
FakeCatalog TwoDiskCatalog() {
  FakeCatalog catalog(10, 2);
  for (PageId p = 0; p < 5; ++p) {
    catalog.set_disk(p, 0);
    catalog.set_frequency(p, 0.5);
  }
  for (PageId p = 5; p < 10; ++p) {
    catalog.set_disk(p, 1);
    catalog.set_frequency(p, 0.1);
  }
  return catalog;
}

TEST(LixCacheTest, NamesReflectVariant) {
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache lix(2, 10, &catalog);
  LCache l(2, 10, &catalog);
  EXPECT_EQ(lix.name(), "LIX");
  EXPECT_EQ(l.name(), "L");
}

TEST(LixCacheTest, PagesEnterTheirDiskChain) {
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache cache(4, 10, &catalog);
  cache.Insert(0, 0.0);  // disk 0
  cache.Insert(6, 0.0);  // disk 1
  cache.Insert(1, 0.0);  // disk 0
  EXPECT_EQ(cache.ChainSize(0), 2u);
  EXPECT_EQ(cache.ChainSize(1), 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LixCacheTest, ChainsResizeDynamically) {
  // Figure 12's point: chains shrink/grow as victims and newcomers come
  // from different disks.
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 1.0);
  EXPECT_EQ(cache.ChainSize(0), 2u);
  // Hit both fast-disk pages often so their estimates are high.
  for (double t = 2.0; t < 10.0; t += 1.0) {
    cache.Lookup(0, t);
    cache.Lookup(1, t + 0.5);
  }
  // A slow-disk page arrives; the victim must come from disk 0's chain
  // (the only non-empty one), and the newcomer joins disk 1's chain.
  cache.Insert(7, 10.0);
  EXPECT_EQ(cache.ChainSize(0), 1u);
  EXPECT_EQ(cache.ChainSize(1), 1u);
}

TEST(LixCacheTest, EvictsSmallestLixAmongChainBottoms) {
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);  // fast disk
  cache.Insert(6, 0.0);  // slow disk
  // Hit both equally often: equal probability estimates, but page 0's
  // frequency is 5x page 6's, so lix(0) = p/0.5 < lix(6) = p/0.1.
  for (double t = 1.0; t <= 5.0; t += 1.0) {
    cache.Lookup(0, t);
    cache.Lookup(6, t);
  }
  cache.Insert(3, 6.0);
  EXPECT_FALSE(cache.Contains(0)) << "fast-disk page should be evicted";
  EXPECT_TRUE(cache.Contains(6));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LCacheTest, IgnoresFrequency) {
  FakeCatalog catalog = TwoDiskCatalog();
  LCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(6, 0.0);
  // Hit page 6 less recently than page 0: L evicts 6 (lower estimate),
  // even though LIX would evict 0.
  cache.Lookup(6, 1.0);
  cache.Lookup(0, 4.0);
  cache.Insert(3, 5.0);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(6));
}

TEST(LixCacheTest, EstimateGrowsWithHitRate) {
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);
  // Page 0 hit every unit, page 1 hit every 4 units.
  for (double t = 1.0; t <= 8.0; t += 1.0) cache.Lookup(0, t);
  cache.Lookup(1, 4.0);
  cache.Lookup(1, 8.0);
  EXPECT_GT(cache.EvaluateLix(0, 9.0), cache.EvaluateLix(1, 9.0));
}

TEST(LixCacheTest, RunningEstimateFormulaMatchesPaper) {
  FakeCatalog catalog(2, 1);
  catalog.set_frequency(0, 1.0);
  LixOptions options;
  options.alpha = 0.25;
  LixCache cache(2, 2, &catalog, options);
  cache.Insert(0, 10.0);  // p = 0, t = 10
  cache.Lookup(0, 14.0);  // p = 0.25/4 + 0.75*0 = 0.0625, t = 14
  // Evaluated at t = 16: 0.25/2 + 0.75*0.0625 = 0.171875.
  EXPECT_NEAR(cache.EvaluateLix(0, 16.0), 0.171875, 1e-12);
}

TEST(LixCacheTest, SameTimeHitsDoNotDivideByZero) {
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache cache(2, 10, &catalog);
  cache.Insert(0, 5.0);
  cache.Lookup(0, 5.0);  // zero inter-access gap
  cache.Lookup(0, 5.0);
  const double lix = cache.EvaluateLix(0, 5.0);
  EXPECT_TRUE(std::isfinite(lix));
}

TEST(LixCacheTest, SingleFlatDiskReducesToLruOrder) {
  // On a one-disk broadcast LIX has a single chain; with no hits the
  // bottom of the chain (the LRU page) is evicted, like LRU.
  FakeCatalog catalog(10, 1);
  LixCache cache(3, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 1.0);
  cache.Insert(2, 2.0);
  cache.Insert(3, 3.0);  // evicts the single chain's bottom: page 0
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LixCacheTest, NewcomerAlwaysAdmitted) {
  // Unlike P/PIX, LIX admits every fetched page (it cannot know the
  // newcomer's future worth; p starts at 0).
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache cache(1, 10, &catalog);
  cache.Insert(0, 0.0);
  for (double t = 1.0; t <= 3.0; t += 1.0) cache.Lookup(0, t);
  cache.Insert(9, 4.0);
  EXPECT_TRUE(cache.Contains(9));
  EXPECT_FALSE(cache.Contains(0));
}

TEST(LixCacheTest, CapacityRespectedUnderChurn) {
  FakeCatalog catalog = TwoDiskCatalog();
  LixCache cache(3, 10, &catalog);
  for (int round = 0; round < 5; ++round) {
    for (PageId p = 0; p < 10; ++p) {
      const double t = round * 10.0 + p;
      if (!cache.Lookup(p, t)) cache.Insert(p, t);
      EXPECT_LE(cache.size(), 3u);
    }
  }
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LixCacheDeathTest, BadAlphaDies) {
  FakeCatalog catalog(4, 1);
  EXPECT_DEATH(LixCache(2, 4, &catalog, LixOptions{0.0, true}),
               "Check failed");
  EXPECT_DEATH(LixCache(2, 4, &catalog, LixOptions{1.5, true}),
               "Check failed");
}

}  // namespace
}  // namespace bcast
