#include "cache/lru.h"

#include <gtest/gtest.h>

#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

TEST(LruListTest, PushFrontAndBack) {
  LruList list(10);
  list.PushFront(3);
  list.PushFront(5);
  list.PushFront(7);
  EXPECT_EQ(list.Front(), 7u);
  EXPECT_EQ(list.Back(), 3u);
  EXPECT_EQ(list.size(), 3u);
}

TEST(LruListTest, EmptySentinels) {
  LruList list(4);
  EXPECT_EQ(list.Front(), kEmptySlot);
  EXPECT_EQ(list.Back(), kEmptySlot);
  EXPECT_EQ(list.size(), 0u);
}

TEST(LruListTest, RemoveHeadTailMiddle) {
  LruList list(10);
  for (PageId p : {1, 2, 3, 4}) list.PushFront(p);  // 4 3 2 1
  list.Remove(3);                                   // middle
  EXPECT_EQ(list.size(), 3u);
  list.Remove(4);  // head
  EXPECT_EQ(list.Front(), 2u);
  list.Remove(1);  // tail
  EXPECT_EQ(list.Back(), 2u);
  EXPECT_EQ(list.size(), 1u);
  list.Remove(2);  // only element
  EXPECT_EQ(list.Front(), kEmptySlot);
}

TEST(LruListTest, TouchMovesToFront) {
  LruList list(10);
  for (PageId p : {1, 2, 3}) list.PushFront(p);  // 3 2 1
  list.Touch(1);                                 // 1 3 2
  EXPECT_EQ(list.Front(), 1u);
  EXPECT_EQ(list.Back(), 2u);
  list.Touch(1);  // already front: no-op
  EXPECT_EQ(list.Front(), 1u);
}

TEST(LruListTest, ContainsTracksMembership) {
  LruList list(5);
  EXPECT_FALSE(list.Contains(2));
  list.PushFront(2);
  EXPECT_TRUE(list.Contains(2));
  list.Remove(2);
  EXPECT_FALSE(list.Contains(2));
}

TEST(LruListTest, ReinsertAfterRemove) {
  LruList list(5);
  list.PushFront(1);
  list.Remove(1);
  list.PushFront(1);
  EXPECT_TRUE(list.Contains(1));
  EXPECT_EQ(list.size(), 1u);
}

TEST(LruListDeathTest, DoublePushDies) {
  LruList list(5);
  list.PushFront(1);
  EXPECT_DEATH(list.PushFront(1), "already linked");
}

TEST(LruListDeathTest, RemoveUnlinkedDies) {
  LruList list(5);
  EXPECT_DEATH(list.Remove(1), "unlinked");
}

// --- LruCache ---

TEST(LruCacheTest, MissThenHit) {
  FakeCatalog catalog(10);
  LruCache cache(3, 10, &catalog);
  EXPECT_FALSE(cache.Lookup(5, 0.0));
  cache.Insert(5, 0.0);
  EXPECT_TRUE(cache.Lookup(5, 1.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.name(), "LRU");
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  FakeCatalog catalog(10);
  LruCache cache(3, 10, &catalog);
  for (PageId p : {0, 1, 2}) cache.Insert(p, 0.0);
  cache.Insert(3, 1.0);  // evicts 0
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, HitRefreshesRecency) {
  FakeCatalog catalog(10);
  LruCache cache(3, 10, &catalog);
  for (PageId p : {0, 1, 2}) cache.Insert(p, 0.0);
  cache.Lookup(0, 1.0);  // 0 becomes MRU
  cache.Insert(3, 2.0);  // evicts 1, not 0
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, CapacityOneReplacesEveryInsert) {
  FakeCatalog catalog(10);
  LruCache cache(1, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 1.0);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, NeverExceedsCapacity) {
  FakeCatalog catalog(100);
  LruCache cache(7, 100, &catalog);
  for (PageId p = 0; p < 100; ++p) {
    if (!cache.Lookup(p, p)) cache.Insert(p, p);
    EXPECT_LE(cache.size(), 7u);
  }
  EXPECT_EQ(cache.size(), 7u);
}

TEST(LruCacheDeathTest, InsertingCachedPageDies) {
  FakeCatalog catalog(10);
  LruCache cache(3, 10, &catalog);
  cache.Insert(1, 0.0);
  EXPECT_DEATH(cache.Insert(1, 1.0), "cached page");
}

TEST(LruCacheDeathTest, ZeroCapacityDies) {
  FakeCatalog catalog(10);
  EXPECT_DEATH(LruCache(0, 10, &catalog), "at least 1");
}

}  // namespace
}  // namespace bcast
