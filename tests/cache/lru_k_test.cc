#include "cache/lru_k.h"

#include <gtest/gtest.h>

#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

FakeCatalog TwoDiskCatalog() {
  FakeCatalog catalog(10, 2);
  for (PageId p = 0; p < 5; ++p) {
    catalog.set_disk(p, 0);
    catalog.set_frequency(p, 0.5);
  }
  for (PageId p = 5; p < 10; ++p) {
    catalog.set_disk(p, 1);
    catalog.set_frequency(p, 0.1);
  }
  return catalog;
}

TEST(LruKCacheTest, NameIncludesKAndVariant) {
  FakeCatalog catalog = TwoDiskCatalog();
  LruKCache with_freq(2, 10, &catalog, LruKOptions{2, true});
  LruKCache without(2, 10, &catalog, LruKOptions{3, false});
  EXPECT_EQ(with_freq.name(), "LRU-2X");
  EXPECT_EQ(without.name(), "LRU-3");
}

TEST(LruKCacheTest, BasicInsertLookup) {
  FakeCatalog catalog = TwoDiskCatalog();
  LruKCache cache(3, 10, &catalog);
  EXPECT_FALSE(cache.Lookup(1, 0.0));
  cache.Insert(1, 0.0);
  EXPECT_TRUE(cache.Lookup(1, 1.0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruKCacheTest, CapacityRespected) {
  FakeCatalog catalog = TwoDiskCatalog();
  LruKCache cache(2, 10, &catalog);
  cache.Insert(0, 0.0);
  cache.Insert(1, 1.0);
  cache.Insert(2, 2.0);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruKCacheTest, EvictsOldestKDistanceWithinDisk) {
  FakeCatalog catalog(10, 1);
  LruKCache cache(2, 10, &catalog, LruKOptions{2, false});
  cache.Insert(0, 0.0);
  cache.Insert(1, 1.0);
  // Page 0 gets a second access (k=2 history at {0, 5}); page 1 stays at
  // one access from t=1. Backward-2 distance: page 0's oldest tracked is
  // 0.0, page 1's is 1.0 -> page 0 looks older by k-distance... but its
  // two accesses give a higher rate: rate(0) = 2/(6-0), rate(1) = 1/(6-1).
  cache.Lookup(0, 5.0);
  EXPECT_GT(cache.EvaluateValue(0, 6.0), cache.EvaluateValue(1, 6.0));
}

TEST(LruKCacheTest, FrequencyVariantPrefersEvictingFastDiskPages) {
  FakeCatalog catalog = TwoDiskCatalog();
  LruKCache cache(2, 10, &catalog, LruKOptions{2, true});
  cache.Insert(0, 0.0);  // fast disk
  cache.Insert(6, 0.0);  // slow disk
  cache.Lookup(0, 2.0);
  cache.Lookup(6, 2.0);  // identical histories
  // Equal rates, but page 0 is cheap to re-fetch: evict it.
  cache.Insert(8, 3.0);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(6));
  EXPECT_TRUE(cache.Contains(8));
}

TEST(LruKCacheTest, HistoryRingKeepsOnlyKEntries) {
  FakeCatalog catalog(4, 1);
  LruKCache cache(2, 4, &catalog, LruKOptions{2, false});
  cache.Insert(0, 0.0);
  cache.Lookup(0, 10.0);
  cache.Lookup(0, 20.0);
  cache.Lookup(0, 30.0);
  // Tracked times should be {20, 30}: rate = 2 / (35 - 20).
  EXPECT_NEAR(cache.EvaluateValue(0, 35.0), 2.0 / 15.0, 1e-12);
}

TEST(LruKCacheTest, ReinsertResetsHistory) {
  FakeCatalog catalog(4, 1);
  LruKCache cache(1, 4, &catalog, LruKOptions{2, false});
  cache.Insert(0, 0.0);
  cache.Lookup(0, 1.0);
  cache.Insert(1, 2.0);  // evicts 0
  cache.Insert(0, 3.0);  // 0 returns with fresh history
  EXPECT_NEAR(cache.EvaluateValue(0, 4.0), 1.0 / 1.0, 1e-12);
}

TEST(LruKCacheTest, KOneBehavesLikeRecencyRate) {
  FakeCatalog catalog(6, 1);
  LruKCache cache(2, 6, &catalog, LruKOptions{1, false});
  cache.Insert(0, 0.0);
  cache.Insert(1, 0.0);
  cache.Lookup(0, 8.0);
  cache.Lookup(1, 2.0);
  // k=1: value is 1/(now - last access). Page 1 is staler.
  EXPECT_LT(cache.EvaluateValue(1, 10.0), cache.EvaluateValue(0, 10.0));
  cache.Insert(2, 10.0);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruKCacheTest, ChurnStaysWithinCapacity) {
  FakeCatalog catalog = TwoDiskCatalog();
  LruKCache cache(3, 10, &catalog);
  for (int round = 0; round < 10; ++round) {
    for (PageId p = 0; p < 10; ++p) {
      const double t = round * 10.0 + p;
      if (!cache.Lookup(p, t)) cache.Insert(p, t);
      ASSERT_LE(cache.size(), 3u);
    }
  }
}

TEST(LruKCacheDeathTest, KZeroDies) {
  FakeCatalog catalog(4, 1);
  EXPECT_DEATH(LruKCache(2, 4, &catalog, LruKOptions{0, true}),
               "Check failed");
}

}  // namespace
}  // namespace bcast
