// The pluggable cost estimators: each weighting reproduces its historical
// inline expression exactly (the bit-identity contract of the redesign),
// the pull-aware estimator caps the refetch cost at the pull service
// interval, and the factory wires PLIX up by name.

#include "cache/cost.h"

#include <gtest/gtest.h>

#include "cache/factory.h"
#include "tests/cache/fake_catalog.h"

namespace bcast {
namespace {

TEST(CostEstimatorTest, UnitCostIgnoresThePage) {
  FakeCatalog catalog(4);
  UnitCost cost(&catalog);
  EXPECT_EQ(cost.name(), "unit");
  EXPECT_DOUBLE_EQ(cost.Value(0, 0.25), 0.25);
  catalog.set_frequency(0, 8.0);
  EXPECT_DOUBLE_EQ(cost.Value(0, 0.25), 0.25);
}

TEST(CostEstimatorTest, InverseFrequencyIsExactlyPOverF) {
  FakeCatalog catalog(4);
  catalog.set_frequency(1, 0.125);
  InverseFrequencyCost cost(&catalog);
  // Bitwise the same expression the inline PIX/LIX code used: p / freq.
  EXPECT_EQ(cost.Value(1, 0.75), 0.75 / 0.125);
  EXPECT_EQ(cost.Value(0, 0.5), 0.5 / 1.0);
}

TEST(CostEstimatorTest, BroadcastDelayIsExactlyHalfGap) {
  FakeCatalog catalog(4);
  catalog.set_frequency(2, 0.25);
  BroadcastDelayCost cost(&catalog);
  // Bitwise the GreedyDual credit: p * (1 / (2 * freq)).
  EXPECT_EQ(cost.Value(2, 1.0), 1.0 * (1.0 / (2.0 * 0.25)));
  EXPECT_EQ(cost.Value(2, 0.5), 0.5 * (1.0 / (2.0 * 0.25)));
}

TEST(CostEstimatorTest, PullAwareCapsAtTheServiceInterval) {
  FakeCatalog catalog(4);
  catalog.set_frequency(0, 0.5);    // push wait 1 slot
  catalog.set_frequency(3, 0.001);  // push wait 500 slots
  PullAwareCost cost(&catalog, /*pull_service_interval=*/20.0);
  // Hot page: the push wait is below the cap; identical to delay cost.
  EXPECT_EQ(cost.Value(0, 1.0), 1.0 * (1.0 / (2.0 * 0.5)));
  // Cold page: the backchannel is the cheaper repair; cost is capped.
  EXPECT_EQ(cost.Value(3, 1.0), 1.0 * 20.0);
  EXPECT_LT(cost.Value(3, 1.0), BroadcastDelayCost(&catalog).Value(3, 1.0));
}

TEST(CostEstimatorTest, PullAwareWithoutBackchannelIsDelayCost) {
  FakeCatalog catalog(4);
  catalog.set_frequency(1, 0.01);
  BroadcastDelayCost delay(&catalog);
  for (double interval : {0.0, -5.0}) {
    PullAwareCost cost(&catalog, interval);
    EXPECT_EQ(cost.Value(1, 0.3), delay.Value(1, 0.3)) << interval;
  }
}

TEST(CostEstimatorTest, FactoryBuildsPlixByName) {
  for (const char* name : {"plix", "PLIX", "pull-lix"}) {
    auto kind = ParsePolicyKind(name);
    ASSERT_TRUE(kind.ok()) << name;
    EXPECT_EQ(*kind, PolicyKind::kPullLix);
  }
  FakeCatalog catalog(10, 3);
  PolicyOptions options;
  options.pull_service_interval = 25.0;
  auto policy =
      MakeCachePolicy(PolicyKind::kPullLix, 4, 10, &catalog, options);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->name(), "PLIX");
}

}  // namespace
}  // namespace bcast
