// End-to-end behaviour of the adaptive control plane: the inactive
// config identity, validation walls, the controller actually repairing
// under loss, slot control staying within bounds, determinism, and the
// report extras the --adapt_sweep gate consumes.

#include <gtest/gtest.h>

#include <string>

#include "adapt/access_monitor.h"
#include "core/multi_client.h"
#include "core/simulator.h"

namespace bcast {
namespace {

// Small D-layout whose access range reaches the slowest disk, so cold
// fetches exist and promotions have somewhere to matter.
SimParams SmallParams() {
  SimParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.access_range = 500;
  params.region_size = 5;
  params.cache_size = 50;
  params.policy = PolicyKind::kLru;
  params.noise_percent = 0.0;
  params.measured_requests = 2000;
  return params;
}

SimParams AdaptiveLossParams() {
  SimParams params = SmallParams();
  params.fault.loss = 0.1;
  params.adapt.epoch_cycles = 2;
  params.adapt.max_promote = 4;
  return params;
}

bool HasExtra(const obs::RunReport& report, const std::string& key) {
  for (const auto& [k, v] : report.extra) {
    if (k == key) return true;
  }
  return false;
}

TEST(AdaptSimTest, InactiveAdaptKeepsConfigIdentity) {
  const SimParams params = SmallParams();
  EXPECT_FALSE(params.adapt.Active());
  EXPECT_EQ(params.ToString().find("adapt"), std::string::npos);

  const SimParams adaptive = AdaptiveLossParams();
  EXPECT_NE(adaptive.ToString().find("adapt<"), std::string::npos);
}

TEST(AdaptSimTest, AdaptRequiresTheMultiDiskProgram) {
  SimParams params = AdaptiveLossParams();
  params.program_kind = ProgramKind::kSkewed;
  EXPECT_FALSE(params.Validate().ok());
  EXPECT_FALSE(RunSimulation(params).ok());
}

TEST(AdaptSimTest, AdaptRequiresASignalToAdaptTo) {
  SimParams params = SmallParams();
  params.adapt.epoch_cycles = 2;  // neither faults nor pull configured
  EXPECT_FALSE(params.Validate().ok());
  // Either signal alone suffices.
  SimParams with_loss = params;
  with_loss.fault.loss = 0.1;
  EXPECT_TRUE(with_loss.Validate().ok());
  SimParams with_pull = params;
  with_pull.pull.pull_slots = 2;
  EXPECT_TRUE(with_pull.Validate().ok());
}

TEST(AdaptSimTest, InactiveAdaptReportCarriesNoAdaptExtras) {
  SimParams params = SmallParams();
  params.fault.loss = 0.1;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->adapt_active);
  const obs::RunReport report = MakeRunReport(params, *result, "test");
  EXPECT_FALSE(HasExtra(report, "adapt_epochs"));
  EXPECT_FALSE(HasExtra(report, "adapt_cold_mean_rt"));
}

TEST(AdaptSimTest, ControllerRepairsUnderLoss) {
  const SimParams params = AdaptiveLossParams();
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->adapt_active);
  const adapt::AdaptStats& stats = result->adapt_stats;
  EXPECT_GT(stats.epochs, 0u);
  EXPECT_GT(stats.promotions, 0u);
  EXPECT_GT(stats.rebuilds, 0u);
  EXPECT_EQ(stats.slot_history.size(), stats.epochs);
  // The pinned cold class was exercised and measured.
  EXPECT_GT(result->cold_requests, 0u);
  EXPECT_GT(stats.cold_wait.count(), 0u);

  const obs::RunReport report = MakeRunReport(params, *result, "test");
  EXPECT_TRUE(HasExtra(report, "adapt_epochs"));
  EXPECT_TRUE(HasExtra(report, "adapt_promotions"));
  EXPECT_TRUE(HasExtra(report, "adapt_cold_mean_rt"));
  EXPECT_TRUE(HasExtra(report, "adapt_slot_range_late"));
}

TEST(AdaptSimTest, AdaptiveRunsAreBitIdentical) {
  const SimParams params = AdaptiveLossParams();
  auto a = RunSimulation(params);
  auto b = RunSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->events_dispatched, b->events_dispatched);
  EXPECT_EQ(a->adapt_stats.epochs, b->adapt_stats.epochs);
  EXPECT_EQ(a->adapt_stats.promotions, b->adapt_stats.promotions);
  EXPECT_EQ(a->adapt_stats.slot_history, b->adapt_stats.slot_history);
  EXPECT_EQ(a->cold_hits, b->cold_hits);
}

TEST(AdaptSimTest, SlotControlStaysWithinBounds) {
  SimParams params = SmallParams();
  params.pull.pull_slots = 2;
  params.pull.threshold = 50.0;
  params.adapt.epoch_cycles = 2;
  params.adapt.max_promote = 0;  // slot control only
  params.adapt.min_slots = 1;
  params.adapt.max_slots = 4;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  const adapt::AdaptStats& stats = result->adapt_stats;
  EXPECT_GT(stats.epochs, 0u);
  EXPECT_EQ(stats.initial_slots, 2u);
  for (uint64_t slots : stats.slot_history) {
    EXPECT_GE(slots, params.adapt.min_slots);
    EXPECT_LE(slots, params.adapt.max_slots);
  }
  EXPECT_GE(stats.final_slots, params.adapt.min_slots);
  EXPECT_LE(stats.final_slots, params.adapt.max_slots);
}

TEST(AccessMonitorTest, WindowCountsAndDrains) {
  adapt::AccessMonitor monitor(4);
  EXPECT_EQ(monitor.window_total(), 0u);
  monitor.OnFetch(1);
  monitor.OnFetch(1);
  monitor.OnFetch(3);
  EXPECT_EQ(monitor.window_total(), 3u);
  const std::vector<uint64_t> window = monitor.TakeWindow();
  EXPECT_EQ(window, (std::vector<uint64_t>{0, 2, 0, 1}));
  EXPECT_EQ(monitor.window_total(), 0u);
  EXPECT_EQ(monitor.TakeWindow(), (std::vector<uint64_t>{0, 0, 0, 0}));
}

TEST(AccessMonitorTest, AbsorbFoldsAndResetsTheSource) {
  adapt::AccessMonitor a(3);
  adapt::AccessMonitor b(3);
  a.OnFetch(0);
  b.OnFetch(0);
  b.OnFetch(2);
  a.Absorb(b);
  EXPECT_EQ(a.window_total(), 3u);
  EXPECT_EQ(b.window_total(), 0u);
  EXPECT_EQ(a.TakeWindow(), (std::vector<uint64_t>{2, 0, 1}));
  EXPECT_EQ(b.TakeWindow(), (std::vector<uint64_t>{0, 0, 0}));
}

// Demand misaligned with the nominal layout: the client's hot region
// starts 250 pages in, seated on the slow disks until reopt notices.
SimParams ReoptParams() {
  SimParams params = SmallParams();
  params.offset = 250;
  params.adapt.epoch_cycles = 2;
  params.adapt.reopt = true;
  return params;
}

TEST(AdaptSimTest, ReoptReseatsToMeasuredDemand) {
  const SimParams params = ReoptParams();
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->adapt_active);
  const adapt::AdaptStats& stats = result->adapt_stats;
  EXPECT_GT(stats.epochs, 0u);
  EXPECT_GT(stats.reopts, 0u);
  EXPECT_GT(stats.promotions, 0u);
  EXPECT_GT(stats.demotions, 0u)
      << "re-seating a misaligned layout must also demote";
  EXPECT_GT(stats.rebuilds, 0u);

  const obs::RunReport report = MakeRunReport(params, *result, "test");
  EXPECT_TRUE(HasExtra(report, "adapt_reopts"));
  EXPECT_TRUE(HasExtra(report, "adapt_demotions"));
}

TEST(AdaptSimTest, ReoptRunsAreBitIdentical) {
  const SimParams params = ReoptParams();
  auto a = RunSimulation(params);
  auto b = RunSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->adapt_stats.reopts, b->adapt_stats.reopts);
  EXPECT_EQ(a->adapt_stats.promotions, b->adapt_stats.promotions);
  EXPECT_EQ(a->adapt_stats.demotions, b->adapt_stats.demotions);
}

TEST(AdaptSimTest, ReoptHelpsWhenInterestDisagreesWithNominal) {
  SimParams fixed = ReoptParams();
  fixed.adapt.epoch_cycles = 0;  // nominal schedule, never re-seated
  fixed.adapt.reopt = false;
  auto without = RunSimulation(fixed);
  auto with = RunSimulation(ReoptParams());
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_LT(with->metrics.mean_response_time(),
            without->metrics.mean_response_time())
      << "re-seating hot-but-cold-seated pages must pay off";
}

TEST(AdaptSimTest, PopulationRunAdaptsAndStaysDeterministic) {
  MultiClientParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.measured_requests = 500;
  params.fault.loss = 0.1;
  params.adapt.epoch_cycles = 2;
  for (int c = 0; c < 4; ++c) {
    ClientSpec spec;
    spec.access_range = 500;
    spec.region_size = 5;
    spec.cache_size = 20;
    spec.policy = PolicyKind::kLru;
    params.clients.push_back(spec);
  }
  auto result = RunMultiClientSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->adapt_active);
  EXPECT_GT(result->adapt_stats.epochs, 0u);
  EXPECT_GT(result->adapt_stats.promotions, 0u);
  auto again = RunMultiClientSimulation(params);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(result->adapt_stats.epochs, again->adapt_stats.epochs);
  EXPECT_EQ(result->adapt_stats.promotions,
            again->adapt_stats.promotions);
  EXPECT_EQ(result->cold_requests, again->cold_requests);
}

}  // namespace
}  // namespace bcast
