// The pull-slot hysteresis rule in isolation: sustained signals act after
// exactly `hysteresis_epochs`, mixed signals never act, every move resets
// the streak, and the configured bounds are never crossed.

#include "adapt/controller.h"

#include <gtest/gtest.h>

namespace bcast::adapt {
namespace {

AdaptParams Defaults() {
  AdaptParams params;
  params.epoch_cycles = 4;
  params.queue_high = 2.0;
  params.idle_low = 0.25;
  params.idle_high = 0.75;
  params.hysteresis_epochs = 2;
  params.min_slots = 1;
  params.max_slots = 8;
  return params;
}

TEST(SlotControllerTest, SustainedBacklogGrowsAfterHysteresis) {
  SlotController control(Defaults(), 2);
  // One epoch of backlog is not enough...
  EXPECT_EQ(control.Decide(5.0, 0.0), 2u);
  // ...the second consecutive one acts.
  EXPECT_EQ(control.Decide(5.0, 0.0), 3u);
  EXPECT_EQ(control.grows(), 1u);
  EXPECT_EQ(control.shrinks(), 0u);
}

TEST(SlotControllerTest, SustainedIdlenessShrinksAfterHysteresis) {
  SlotController control(Defaults(), 4);
  EXPECT_EQ(control.Decide(0.0, 0.9), 4u);
  EXPECT_EQ(control.Decide(0.0, 0.9), 3u);
  EXPECT_EQ(control.shrinks(), 1u);
}

TEST(SlotControllerTest, ActingResetsTheStreak) {
  SlotController control(Defaults(), 2);
  control.Decide(5.0, 0.0);
  EXPECT_EQ(control.Decide(5.0, 0.0), 3u);  // acted
  // The streak restarts: two more epochs needed for the next move.
  EXPECT_EQ(control.Decide(5.0, 0.0), 3u);
  EXPECT_EQ(control.Decide(5.0, 0.0), 4u);
  EXPECT_EQ(control.grows(), 2u);
}

TEST(SlotControllerTest, NeutralEpochsResetTheStreak) {
  SlotController control(Defaults(), 2);
  control.Decide(5.0, 0.0);   // grow signal, streak 1
  control.Decide(1.0, 0.5);   // neutral: streak dies
  control.Decide(5.0, 0.0);   // streak 1 again
  EXPECT_EQ(control.slots(), 2u);
  EXPECT_EQ(control.Decide(5.0, 0.0), 3u);
}

TEST(SlotControllerTest, AlternatingSignalsNeverAct) {
  SlotController control(Defaults(), 4);
  for (int epoch = 0; epoch < 20; ++epoch) {
    const uint64_t slots = (epoch % 2 == 0) ? control.Decide(5.0, 0.0)
                                            : control.Decide(0.0, 0.9);
    EXPECT_EQ(slots, 4u) << "epoch " << epoch;
  }
  EXPECT_EQ(control.grows(), 0u);
  EXPECT_EQ(control.shrinks(), 0u);
}

TEST(SlotControllerTest, BacklogWithIdleSlotsIsNotAGrowSignal) {
  // Queue depth alone must not grow the split: if slots already idle,
  // more of them cannot help.
  SlotController control(Defaults(), 2);
  for (int epoch = 0; epoch < 10; ++epoch) {
    EXPECT_EQ(control.Decide(5.0, 0.5), 2u);
  }
}

TEST(SlotControllerTest, BoundsAreNeverCrossed) {
  AdaptParams params = Defaults();
  params.hysteresis_epochs = 1;
  SlotController grow(params, 7);
  for (int epoch = 0; epoch < 10; ++epoch) grow.Decide(9.0, 0.0);
  EXPECT_EQ(grow.slots(), params.max_slots);

  SlotController shrink(params, 2);
  for (int epoch = 0; epoch < 10; ++epoch) shrink.Decide(0.0, 1.0);
  EXPECT_EQ(shrink.slots(), params.min_slots);
}

TEST(SlotControllerTest, ConvergesUnderStationaryLoad) {
  // A stationary grow signal moves at most one slot per hysteresis
  // window; once the signal clears, the count stays put forever.
  AdaptParams params = Defaults();
  params.hysteresis_epochs = 3;
  SlotController control(params, 1);
  for (int epoch = 0; epoch < 6; ++epoch) control.Decide(5.0, 0.0);
  EXPECT_EQ(control.slots(), 3u);
  for (int epoch = 0; epoch < 50; ++epoch) control.Decide(1.0, 0.5);
  EXPECT_EQ(control.slots(), 3u);
  EXPECT_EQ(control.grows(), 2u);
  EXPECT_EQ(control.shrinks(), 0u);
}

}  // namespace
}  // namespace bcast::adapt
