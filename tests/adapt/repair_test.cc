// Loss-aware frequency repair: seat-swap semantics, and the property the
// whole control plane leans on — relabeling a seat program through any
// promotion sequence preserves the paper's fixed per-page inter-arrival
// guarantee exactly, for arbitrary valid layouts and pull-slot counts.

#include "adapt/repair.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "broadcast/generator.h"
#include "check/invariants.h"
#include "common/rng.h"
#include "pull/hybrid.h"

namespace bcast::adapt {
namespace {

DiskLayout SmallD3() {
  auto layout = MakeDeltaLayout({2, 3, 4}, 2);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

// Per-page inter-arrival gaps of \p program, computed from the raw slot
// vector alone (wrapping the period).
std::map<PageId, std::vector<uint64_t>> GapsOf(
    const BroadcastProgram& program) {
  std::map<PageId, std::vector<uint64_t>> arrivals;
  for (uint64_t s = 0; s < program.period(); ++s) {
    const PageId page = program.page_at(s);
    if (page != kEmptySlot) arrivals[page].push_back(s);
  }
  std::map<PageId, std::vector<uint64_t>> gaps;
  for (const auto& [page, slots] : arrivals) {
    for (size_t i = 0; i < slots.size(); ++i) {
      const uint64_t next = slots[(i + 1) % slots.size()];
      gaps[page].push_back(i + 1 < slots.size()
                               ? next - slots[i]
                               : next + program.period() - slots[i]);
    }
  }
  return gaps;
}

TEST(PromotionMapTest, StartsAsTheIdentity) {
  PromotionMap perm(SmallD3());
  EXPECT_FALSE(perm.dirty());
  EXPECT_EQ(perm.num_pages(), 9u);
  for (PageId p = 0; p < 9; ++p) {
    EXPECT_EQ(perm.SeatOf(p), p);
    EXPECT_EQ(perm.PageAt(p), p);
  }
  EXPECT_EQ(perm.DiskOf(0), 0u);
  EXPECT_EQ(perm.DiskOf(2), 1u);
  EXPECT_EQ(perm.DiskOf(5), 2u);
}

TEST(PromotionMapTest, PromoteSwapsWithLeastLossyHotterPage) {
  PromotionMap perm(SmallD3());
  // Disk 1 holds pages 2,3,4. Page 3 is the least lossy; promoting page 7
  // (disk 2) must displace page 3, not 2 or 4.
  std::vector<uint64_t> failures{0, 0, 5, 1, 5, 0, 0, 9, 0};
  EXPECT_TRUE(perm.Promote(7, failures));
  EXPECT_TRUE(perm.dirty());
  EXPECT_EQ(perm.DiskOf(7), 1u);
  EXPECT_EQ(perm.DiskOf(3), 2u);
  EXPECT_EQ(perm.SeatOf(7), 3u);
  EXPECT_EQ(perm.SeatOf(3), 7u);
}

TEST(PromotionMapTest, TiesBreakTowardTheColdestSeat) {
  PromotionMap perm(SmallD3());
  // All of disk 1 equally lossless: the victim is the highest seat (4).
  std::vector<uint64_t> failures(9, 0);
  failures[8] = 3;
  EXPECT_TRUE(perm.Promote(8, failures));
  EXPECT_EQ(perm.SeatOf(8), 4u);
  EXPECT_EQ(perm.SeatOf(4), 8u);
}

TEST(PromotionMapTest, FastestDiskPagesCannotPromote) {
  PromotionMap perm(SmallD3());
  std::vector<uint64_t> failures(9, 1);
  EXPECT_FALSE(perm.Promote(0, failures));
  EXPECT_FALSE(perm.Promote(1, failures));
  EXPECT_FALSE(perm.dirty());
}

TEST(PromotionMapTest, ChainedPromotionsReachTheFastestDisk) {
  PromotionMap perm(SmallD3());
  std::vector<uint64_t> failures(9, 0);
  failures[8] = 7;
  EXPECT_TRUE(perm.Promote(8, failures));  // disk 2 -> 1
  EXPECT_TRUE(perm.Promote(8, failures));  // disk 1 -> 0
  EXPECT_EQ(perm.DiskOf(8), 0u);
  EXPECT_FALSE(perm.Promote(8, failures));
}

TEST(PromotionMapTest, ApplyRelabelsWithoutChangingTheIdentityProgram) {
  const DiskLayout layout = SmallD3();
  PromotionMap perm(layout);
  auto base = GenerateMultiDiskProgram(layout);
  ASSERT_TRUE(base.ok());
  auto mapped = perm.Apply(*base);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->slots(), base->slots());
}

// The tentpole property: for arbitrary valid (rel_freqs, pull_slots) and
// arbitrary promotion sequences, the relabeled program still has *equal*
// inter-arrival gaps per page, and every page inherits exactly the gap
// train of the seat it landed in.
TEST(PromotionMapPropertyTest, RepairKeepsInterArrivalFixed) {
  Rng rng(20260805);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Random layout: 1-4 disks, small sizes, non-increasing frequencies.
    const uint64_t num_disks = 1 + rng.NextBounded(4);
    std::vector<uint64_t> sizes;
    std::vector<uint64_t> freqs;
    uint64_t freq = 1 + rng.NextBounded(8);
    for (uint64_t d = 0; d < num_disks; ++d) {
      sizes.push_back(1 + rng.NextBounded(12));
      freqs.push_back(freq);
      if (freq > 1) freq -= rng.NextBounded(freq);  // non-increasing, >= 1
      if (freq == 0) freq = 1;
    }
    auto layout = MakeLayout(sizes, freqs);
    if (!layout.ok()) continue;  // rare degenerate draw
    const uint64_t num_pages = layout->TotalPages();

    // Half the trials run a hybrid seat program, half a pure push one.
    const uint64_t pull_slots = rng.NextBounded(8);
    auto hybrid = pull::GenerateHybridProgram(*layout, pull_slots);
    ASSERT_TRUE(hybrid.ok());
    const BroadcastProgram& base = hybrid->program;
    ++checked;

    // Random promotion sequence with random failure tallies.
    PromotionMap perm(*layout);
    const uint64_t moves = 1 + rng.NextBounded(2 * num_pages);
    std::vector<uint64_t> failures(num_pages);
    for (uint64_t m = 0; m < moves; ++m) {
      for (uint64_t& f : failures) f = rng.NextBounded(16);
      perm.Promote(static_cast<PageId>(rng.NextBounded(num_pages)),
                   failures);
    }

    auto mapped = perm.Apply(base);
    ASSERT_TRUE(mapped.ok());

    // Independent re-derivation: the checker recomputes per-page gap
    // equality from the raw slot vector.
    check::CheckList checks =
        check::CheckProgramInvariants(*mapped, true);
    EXPECT_TRUE(checks.all_ok()) << [&] {
      std::ostringstream out;
      checks.Print(out);
      return out.str();
    }() << "disks=" << num_disks << " pull_slots=" << pull_slots
        << " moves=" << moves;

    // And the exact relabeling law: page p's gaps in the mapped program
    // are seat SeatOf(p)'s gaps in the base program.
    const auto base_gaps = GapsOf(base);
    const auto mapped_gaps = GapsOf(*mapped);
    ASSERT_EQ(base_gaps.size(), mapped_gaps.size());
    for (PageId p = 0; p < static_cast<PageId>(num_pages); ++p) {
      const auto seat_it = base_gaps.find(
          static_cast<PageId>(perm.SeatOf(p)));
      const auto page_it = mapped_gaps.find(p);
      ASSERT_NE(seat_it, base_gaps.end());
      ASSERT_NE(page_it, mapped_gaps.end());
      EXPECT_EQ(page_it->second, seat_it->second) << "page " << p;
    }
  }
  EXPECT_GE(checked, 20);  // the generator must not degenerate-skip away
}

TEST(PromotionMapTest, ReseatIdentityOrderIsANoOp) {
  PromotionMap perm(SmallD3());
  const PromotionMap::ReseatResult moves =
      perm.Reseat({0, 1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(moves.promoted, 0u);
  EXPECT_EQ(moves.demoted, 0u);
  EXPECT_FALSE(perm.dirty());
}

TEST(PromotionMapTest, ReseatMovesPagesInBothDirections) {
  PromotionMap perm(SmallD3());
  // Reversed demand ranking: what was coldest is now hottest, so pages
  // must be demoted as readily as promoted — the capability Promote
  // alone lacks.
  const PromotionMap::ReseatResult moves =
      perm.Reseat({8, 7, 6, 5, 4, 3, 2, 1, 0});
  EXPECT_GT(moves.promoted, 0u);
  EXPECT_GT(moves.demoted, 0u);
  EXPECT_TRUE(perm.dirty());
  EXPECT_EQ(perm.PageAt(0), 8u);
  EXPECT_EQ(perm.DiskOf(8), 0u);
  EXPECT_EQ(perm.DiskOf(0), 2u);  // the old hottest page fell to disk 2
}

TEST(PromotionMapDeathTest, ReseatRejectsNonPermutations) {
  PromotionMap perm(SmallD3());
  EXPECT_DEATH(perm.Reseat({0, 0, 2, 3, 4, 5, 6, 7, 8}), "repeats");
}

// The reopt analogue of the repair property: re-seating the whole layout
// by an arbitrary permutation still relabels seat programs into programs
// with fixed per-page inter-arrival, with each page inheriting exactly
// its seat's gap train.
TEST(PromotionMapPropertyTest, ReseatKeepsInterArrivalFixed) {
  Rng rng(20260808);
  for (int trial = 0; trial < 30; ++trial) {
    const uint64_t num_disks = 1 + rng.NextBounded(4);
    std::vector<uint64_t> sizes;
    std::vector<uint64_t> freqs;
    uint64_t freq = 1 + rng.NextBounded(8);
    for (uint64_t d = 0; d < num_disks; ++d) {
      sizes.push_back(1 + rng.NextBounded(12));
      freqs.push_back(freq);
      if (freq > 1) freq -= rng.NextBounded(freq);
      if (freq == 0) freq = 1;
    }
    auto layout = MakeLayout(sizes, freqs);
    if (!layout.ok()) continue;
    const uint64_t num_pages = layout->TotalPages();
    auto base = GenerateMultiDiskProgram(*layout);
    ASSERT_TRUE(base.ok());

    // Random demand ranking (Fisher-Yates on the identity).
    std::vector<PageId> order(num_pages);
    for (uint64_t p = 0; p < num_pages; ++p) {
      order[p] = static_cast<PageId>(p);
    }
    for (uint64_t i = num_pages - 1; i > 0; --i) {
      std::swap(order[i], order[rng.NextBounded(i + 1)]);
    }

    PromotionMap perm(*layout);
    perm.Reseat(order);
    for (uint64_t s = 0; s < num_pages; ++s) {
      ASSERT_EQ(perm.PageAt(s), order[s]);
    }
    auto mapped = perm.Apply(*base);
    ASSERT_TRUE(mapped.ok());
    check::CheckList checks = check::CheckProgramInvariants(*mapped, true);
    EXPECT_TRUE(checks.all_ok()) << "trial " << trial;
    const auto base_gaps = GapsOf(*base);
    const auto mapped_gaps = GapsOf(*mapped);
    for (PageId p = 0; p < static_cast<PageId>(num_pages); ++p) {
      const auto seat_it =
          base_gaps.find(static_cast<PageId>(perm.SeatOf(p)));
      const auto page_it = mapped_gaps.find(p);
      ASSERT_NE(seat_it, base_gaps.end());
      ASSERT_NE(page_it, mapped_gaps.end());
      EXPECT_EQ(page_it->second, seat_it->second) << "page " << p;
    }
  }
}

}  // namespace
}  // namespace bcast::adapt
