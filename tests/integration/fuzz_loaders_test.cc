// Deterministic pseudo-fuzzing of the text-format loaders: whatever the
// bytes, LoadProgram/Trace::Load must either return a *valid* object or a
// clean error — never crash, hang, or hand back a program that would
// stall a client.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "broadcast/generator.h"
#include "broadcast/serialize.h"
#include "client/trace.h"
#include "common/rng.h"

namespace bcast {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->NextBounded(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Bias toward printable/structure-ish characters so some inputs get
    // past the header checks.
    const uint64_t pick = rng->NextBounded(10);
    if (pick < 5) {
      s += static_cast<char>('0' + rng->NextBounded(10));
    } else if (pick < 7) {
      s += ' ';
    } else if (pick < 8) {
      s += '\n';
    } else {
      s += static_cast<char>(rng->NextBounded(256));
    }
  }
  return s;
}

// Mutates a valid serialization: flip/insert/delete bytes.
std::string Mutate(std::string s, Rng* rng) {
  const int edits = 1 + static_cast<int>(rng->NextBounded(4));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const size_t pos = rng->NextBounded(s.size());
    switch (rng->NextBounded(3)) {
      case 0:
        s[pos] = static_cast<char>(rng->NextBounded(256));
        break;
      case 1:
        s.insert(pos, 1, static_cast<char>('0' + rng->NextBounded(10)));
        break;
      default:
        s.erase(pos, 1);
        break;
    }
  }
  return s;
}

void CheckProgramLoad(const std::string& text) {
  std::istringstream in(text);
  Result<BroadcastProgram> program = LoadProgram(&in);
  if (!program.ok()) return;  // clean rejection is fine
  // If accepted, the invariants must hold.
  ASSERT_GT(program->period(), 0u);
  ASSERT_GT(program->num_pages(), 0u);
  for (PageId p = 0; p < program->num_pages(); ++p) {
    ASSERT_GE(program->Frequency(p), 1u) << "accepted a stalling program";
  }
}

void CheckTraceLoad(const std::string& text) {
  std::istringstream in(text);
  Result<Trace> trace = Trace::Load(&in);
  if (!trace.ok()) return;
  ASSERT_GT(trace->size(), 0u);
  for (PageId p : trace->pages()) {
    ASSERT_LT(p, trace->access_range());
  }
}

TEST(FuzzLoadersTest, ProgramLoaderSurvivesGarbage) {
  Rng rng(0xF00D);
  for (int i = 0; i < 3000; ++i) {
    CheckProgramLoad(RandomBytes(&rng, 300));
  }
}

TEST(FuzzLoadersTest, ProgramLoaderSurvivesMutatedValidFiles) {
  auto layout = MakeLayout({2, 3}, {2, 1});
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveProgram(*program, &out).ok());
  const std::string valid = out.str();

  Rng rng(0xBEEF);
  int still_valid = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::string mutated = Mutate(valid, &rng);
    std::istringstream in(mutated);
    if (LoadProgram(&in).ok()) ++still_valid;
    CheckProgramLoad(mutated);
  }
  // Some mutations (e.g. inside slot ids) still parse — that's fine, but
  // the vast majority must be rejected.
  EXPECT_LT(still_valid, 1500);
}

TEST(FuzzLoadersTest, TraceLoaderSurvivesGarbage) {
  Rng rng(0xCAFE);
  for (int i = 0; i < 3000; ++i) {
    CheckTraceLoad(RandomBytes(&rng, 300));
  }
}

TEST(FuzzLoadersTest, TraceLoaderSurvivesMutatedValidFiles) {
  auto trace = Trace::Make({0, 1, 2, 1, 0, 3}, 2.0);
  ASSERT_TRUE(trace.ok());
  std::ostringstream out;
  ASSERT_TRUE(trace->Save(&out).ok());
  const std::string valid = out.str();

  Rng rng(0xD1CE);
  for (int i = 0; i < 3000; ++i) {
    CheckTraceLoad(Mutate(valid, &rng));
  }
}

TEST(FuzzLoadersTest, RoundTripSurvivesEveryGeneratorOutput) {
  // Property: Save(Load(Save(p))) is stable for arbitrary generated
  // programs (seeded grid).
  Rng rng(0xABCD);
  for (int i = 0; i < 50; ++i) {
    const uint64_t d1 = 1 + rng.NextBounded(20);
    const uint64_t d2 = 1 + rng.NextBounded(40);
    const uint64_t delta = rng.NextBounded(6);
    auto layout = MakeDeltaLayout({d1, d2}, delta);
    ASSERT_TRUE(layout.ok());
    auto program = GenerateMultiDiskProgram(*layout);
    ASSERT_TRUE(program.ok());
    std::ostringstream out1;
    ASSERT_TRUE(SaveProgram(*program, &out1).ok());
    std::istringstream in(out1.str());
    auto loaded = LoadProgram(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::ostringstream out2;
    ASSERT_TRUE(SaveProgram(*loaded, &out2).ok());
    EXPECT_EQ(out1.str(), out2.str());
  }
}

}  // namespace
}  // namespace bcast
