// Deterministic pseudo-fuzzing of the text-format loaders: whatever the
// bytes, LoadProgram/Trace::Load must either return a *valid* object or a
// clean error — never crash, hang, or hand back a program that would
// stall a client.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "broadcast/generator.h"
#include "broadcast/serialize.h"
#include "check/invariants.h"
#include "client/trace.h"
#include "common/rng.h"
#include "obs/report_reader.h"
#include "obs/run_report.h"

namespace bcast {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->NextBounded(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Bias toward printable/structure-ish characters so some inputs get
    // past the header checks.
    const uint64_t pick = rng->NextBounded(10);
    if (pick < 5) {
      s += static_cast<char>('0' + rng->NextBounded(10));
    } else if (pick < 7) {
      s += ' ';
    } else if (pick < 8) {
      s += '\n';
    } else {
      s += static_cast<char>(rng->NextBounded(256));
    }
  }
  return s;
}

// Mutates a valid serialization: flip/insert/delete bytes.
std::string Mutate(std::string s, Rng* rng) {
  const int edits = 1 + static_cast<int>(rng->NextBounded(4));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const size_t pos = rng->NextBounded(s.size());
    switch (rng->NextBounded(3)) {
      case 0:
        s[pos] = static_cast<char>(rng->NextBounded(256));
        break;
      case 1:
        s.insert(pos, 1, static_cast<char>('0' + rng->NextBounded(10)));
        break;
      default:
        s.erase(pos, 1);
        break;
    }
  }
  return s;
}

void CheckProgramLoad(const std::string& text) {
  std::istringstream in(text);
  Result<BroadcastProgram> program = LoadProgram(&in);
  if (!program.ok()) return;  // clean rejection is fine
  // If accepted, the invariants must hold.
  ASSERT_GT(program->period(), 0u);
  ASSERT_GT(program->num_pages(), 0u);
  for (PageId p = 0; p < program->num_pages(); ++p) {
    ASSERT_GE(program->Frequency(p), 1u) << "accepted a stalling program";
  }
}

void CheckTraceLoad(const std::string& text) {
  std::istringstream in(text);
  Result<Trace> trace = Trace::Load(&in);
  if (!trace.ok()) return;
  ASSERT_GT(trace->size(), 0u);
  for (PageId p : trace->pages()) {
    ASSERT_LT(p, trace->access_range());
  }
}

TEST(FuzzLoadersTest, ProgramLoaderSurvivesGarbage) {
  Rng rng(0xF00D);
  for (int i = 0; i < 3000; ++i) {
    CheckProgramLoad(RandomBytes(&rng, 300));
  }
}

TEST(FuzzLoadersTest, ProgramLoaderSurvivesMutatedValidFiles) {
  auto layout = MakeLayout({2, 3}, {2, 1});
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveProgram(*program, &out).ok());
  const std::string valid = out.str();

  Rng rng(0xBEEF);
  int still_valid = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::string mutated = Mutate(valid, &rng);
    std::istringstream in(mutated);
    if (LoadProgram(&in).ok()) ++still_valid;
    CheckProgramLoad(mutated);
  }
  // Some mutations (e.g. inside slot ids) still parse — that's fine, but
  // the vast majority must be rejected.
  EXPECT_LT(still_valid, 1500);
}

TEST(FuzzLoadersTest, TraceLoaderSurvivesGarbage) {
  Rng rng(0xCAFE);
  for (int i = 0; i < 3000; ++i) {
    CheckTraceLoad(RandomBytes(&rng, 300));
  }
}

TEST(FuzzLoadersTest, TraceLoaderSurvivesMutatedValidFiles) {
  auto trace = Trace::Make({0, 1, 2, 1, 0, 3}, 2.0);
  ASSERT_TRUE(trace.ok());
  std::ostringstream out;
  ASSERT_TRUE(trace->Save(&out).ok());
  const std::string valid = out.str();

  Rng rng(0xD1CE);
  for (int i = 0; i < 3000; ++i) {
    CheckTraceLoad(Mutate(valid, &rng));
  }
}

// --- Run-report JSON reader ---------------------------------------------
// bcastcheck trusts ReadRunReport with checked-in baseline files and CI
// artifacts; the same never-crash contract applies.

obs::RunReport SampleReport() {
  obs::RunReport report;
  report.tool = "fuzz";
  report.mode = "single";
  report.config = "disks=<10,20>@freqs{2,1}";
  report.seed = 42;
  report.seeds = 1;
  report.period = 40;
  report.empty_slots = 0;
  report.requests = 1000;
  report.warmup_requests = 100;
  report.cache_hits = 400;
  report.response = {1000, 12.5, 0.5, 39.0, 10.0, 20.0, 35.0};
  report.tuning = {1000, 12.5, 0.5, 39.0, 10.0, 20.0, 35.0};
  report.served_per_disk = {450, 150};
  report.end_time = 12345.0;
  report.events_dispatched = 2345;
  report.slots_per_second = 1.0e6;
  report.events_per_second = 2.0e5;
  report.extra.emplace_back("stale_hits", 3.0);
  return report;
}

void CheckReportLoad(const std::string& text) {
  Result<obs::RunReport> report = obs::ReadRunReport(text);
  if (!report.ok()) {
    // Clean rejection: a real Status with a message, not a crash.
    ASSERT_FALSE(report.status().message().empty());
    return;
  }
  // Accepted bytes must decode into a report the rest of the pipeline can
  // use. Mutations can legally flip numbers in valid JSON (hits >
  // requests, say), so semantic invariants are not unconditional here —
  // but re-serializing must always work and stay finite.
  std::ostringstream out;
  report->WriteJson(out);
  ASSERT_FALSE(out.str().empty());
  // The invariant checker itself must also survive arbitrary decoded
  // values (it reports FAIL verdicts; it must not crash).
  check::CheckReportInvariants(*report);
}

TEST(FuzzLoadersTest, ReportReaderSurvivesGarbage) {
  Rng rng(0x9E14);
  for (int i = 0; i < 3000; ++i) {
    CheckReportLoad(RandomBytes(&rng, 400));
  }
}

TEST(FuzzLoadersTest, ReportReaderSurvivesMutatedValidReports) {
  std::ostringstream out;
  SampleReport().WriteJson(out);
  const std::string valid = out.str();

  Rng rng(0x7A57);
  int still_valid = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::string mutated = Mutate(valid, &rng);
    if (obs::ReadRunReport(mutated).ok()) ++still_valid;
    CheckReportLoad(mutated);
  }
  // Most random edits break JSON syntax or a required key.
  EXPECT_LT(still_valid, 1500);
}

TEST(FuzzLoadersTest, ReportReaderRejectsEveryTruncation) {
  // A truncated report must never parse: JSON's closing braces make any
  // strict parser detect the cut. This sweeps every prefix.
  std::ostringstream out;
  SampleReport().WriteJson(out);
  const std::string valid = out.str();
  ASSERT_TRUE(obs::ReadRunReport(valid).ok());
  // Cutting only trailing whitespace still leaves a complete document, so
  // sweep prefixes of the document proper.
  const size_t end = valid.find_last_not_of(" \t\r\n") + 1;
  for (size_t len = 0; len < end; ++len) {
    Result<obs::RunReport> r = obs::ReadRunReport(valid.substr(0, len));
    ASSERT_FALSE(r.ok()) << "accepted truncation at byte " << len;
  }
}

TEST(FuzzLoadersTest, ReportReaderRoundTripsThroughWriter) {
  const obs::RunReport original = SampleReport();
  std::ostringstream out1;
  original.WriteJson(out1);
  Result<obs::RunReport> loaded = obs::ReadRunReport(out1.str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Write(Read(Write(r))) is byte-identical — the reader loses nothing.
  std::ostringstream out2;
  loaded->WriteJson(out2);
  EXPECT_EQ(out1.str(), out2.str());
}

TEST(FuzzLoadersTest, RoundTripSurvivesEveryGeneratorOutput) {
  // Property: Save(Load(Save(p))) is stable for arbitrary generated
  // programs (seeded grid).
  Rng rng(0xABCD);
  for (int i = 0; i < 50; ++i) {
    const uint64_t d1 = 1 + rng.NextBounded(20);
    const uint64_t d2 = 1 + rng.NextBounded(40);
    const uint64_t delta = rng.NextBounded(6);
    auto layout = MakeDeltaLayout({d1, d2}, delta);
    ASSERT_TRUE(layout.ok());
    auto program = GenerateMultiDiskProgram(*layout);
    ASSERT_TRUE(program.ok());
    std::ostringstream out1;
    ASSERT_TRUE(SaveProgram(*program, &out1).ok());
    std::istringstream in(out1.str());
    auto loaded = LoadProgram(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::ostringstream out2;
    ASSERT_TRUE(SaveProgram(*loaded, &out2).ok());
    EXPECT_EQ(out1.str(), out2.str());
  }
}

}  // namespace
}  // namespace bcast
