// Integration tests at the paper's full scale (ServerDBSize 5000,
// AccessRange 1000) with request counts trimmed for CI speed.

#include <gtest/gtest.h>

#include "broadcast/analysis.h"
#include "core/experiment.h"
#include "core/simulator.h"

namespace bcast {
namespace {

SimParams PaperBase() {
  SimParams params;  // defaults are the paper's Table 4
  params.measured_requests = 20000;
  return params;
}

TEST(EndToEndTest, FlatDiskBaselineIsHalfDb) {
  SimParams params = PaperBase();
  params.disk_sizes = {5000};
  params.delta = 0;
  params.cache_size = 1;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->metrics.mean_response_time(), 2500.0, 60.0);
}

TEST(EndToEndTest, DeltaZeroEqualsFlatRegardlessOfDisks) {
  // "at delta 0 the broadcast is flat": any disk partitioning with equal
  // frequencies gives the flat response time.
  SimParams flat = PaperBase();
  flat.disk_sizes = {5000};
  flat.cache_size = 1;
  flat.delta = 0;
  SimParams d5 = PaperBase();
  d5.cache_size = 1;
  d5.delta = 0;
  auto r_flat = RunSimulation(flat);
  auto r_d5 = RunSimulation(d5);
  ASSERT_TRUE(r_flat.ok());
  ASSERT_TRUE(r_d5.ok());
  EXPECT_NEAR(r_flat->metrics.mean_response_time(),
              r_d5->metrics.mean_response_time(), 30.0);
}

TEST(EndToEndTest, SimulatedDelaysMatchAnalyticNoCacheModel) {
  // With no cache and no noise, the simulator's mean response should
  // match the analytic expectation: sum over pages of P(page) *
  // (expected wait + 1 transmission unit).
  SimParams params = PaperBase();
  params.cache_size = 1;
  params.delta = 3;
  params.measured_requests = 40000;
  auto program = BuildProgram(params);
  ASSERT_TRUE(program.ok());
  auto gen = AccessGenerator::Make(params.access_range, params.region_size,
                                   params.theta, params.think_time,
                                   params.think_kind, Rng(params.seed));
  ASSERT_TRUE(gen.ok());
  double analytic = 0.0;
  for (PageId p = 0; p < params.access_range; ++p) {
    analytic += gen->Probability(p) * (ExpectedDelay(*program, p) + 1.0);
  }
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->metrics.mean_response_time(), analytic,
              analytic * 0.05);
}

TEST(EndToEndTest, CacheDramaticallyImprovesResponse) {
  SimParams no_cache = PaperBase();
  no_cache.cache_size = 1;
  no_cache.delta = 3;
  SimParams with_cache = no_cache;
  with_cache.cache_size = 500;
  with_cache.offset = 500;
  with_cache.policy = PolicyKind::kPix;
  auto a = RunSimulation(no_cache);
  auto b = RunSimulation(with_cache);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b->metrics.mean_response_time(),
            a->metrics.mean_response_time() / 2.0);
}

TEST(EndToEndTest, WarmupExcludedFromMeasurement) {
  SimParams params = PaperBase();
  params.cache_size = 250;
  params.policy = PolicyKind::kLru;
  params.measured_requests = 5000;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  // Warm-up happened (cache had to fill) and did not pollute metrics.
  EXPECT_GE(result->warmup_requests, 250u);
  EXPECT_EQ(result->metrics.requests(), 5000u);
}

TEST(EndToEndTest, HighNoiseHurtsNoCacheMultiDisk) {
  SimParams params = PaperBase();
  params.cache_size = 1;
  params.delta = 4;
  params.disk_sizes = {2500, 2500};  // D3, the paper's fragile config
  auto quiet = RunSimulation(params);
  params.noise_percent = 75.0;
  auto noisy = RunSimulation(params);
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(noisy.ok());
  EXPECT_GT(noisy->metrics.mean_response_time(),
            quiet->metrics.mean_response_time() * 1.5);
}

TEST(EndToEndTest, ResponseTimesBoundedByPeriod) {
  SimParams params = PaperBase();
  params.cache_size = 1;
  params.delta = 5;
  params.noise_percent = 30.0;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  // No single wait can exceed one full period (fixed inter-arrival).
  EXPECT_LE(result->metrics.response_time().max(),
            static_cast<double>(result->period) + 1.0);
}

TEST(EndToEndTest, ThinkTimeKindChangesAlignmentNotShape) {
  SimParams fixed = PaperBase();
  fixed.cache_size = 1;
  fixed.delta = 3;
  SimParams expo = fixed;
  expo.think_kind = ThinkTimeKind::kExponential;
  auto a = RunSimulation(fixed);
  auto b = RunSimulation(expo);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->metrics.mean_response_time(),
              b->metrics.mean_response_time(),
              a->metrics.mean_response_time() * 0.1);
}

}  // namespace
}  // namespace bcast
