// Qualitative claims of the paper's evaluation (Section 5), verified at
// paper scale with trimmed request counts. Each test names the paper
// result it guards.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/simulator.h"

namespace bcast {
namespace {

SimParams D5Base() {
  SimParams params;  // D5 <500,2000,2500> by default
  params.measured_requests = 20000;
  return params;
}

double Response(SimParams params) {
  auto result = RunSimulation(params);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->metrics.mean_response_time();
}

// Experiment 1 (Figure 5): with a well-matched broadcast and no cache,
// multi-disk beats flat and improves with delta.
TEST(PaperExp1Test, MultiDiskBeatsFlatWithoutCache) {
  SimParams params = D5Base();
  params.cache_size = 1;
  params.delta = 0;
  const double flat = Response(params);
  params.delta = 4;
  const double multi = Response(params);
  EXPECT_NEAR(flat, 2500.0, 80.0);
  EXPECT_LT(multi, 0.6 * flat);
}

TEST(PaperExp1Test, ImprovementFlattensAroundDelta3To4) {
  SimParams params = D5Base();
  params.cache_size = 1;
  auto values = SweepDelta(params, {0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_TRUE(values.ok());
  const auto& v = *values;
  // Strictly improving early...
  EXPECT_LT(v[1], v[0]);
  EXPECT_LT(v[2], v[1]);
  EXPECT_LT(v[3], v[2]);
  // ...with diminishing returns: the delta 3->7 gain is much smaller
  // than the 0->3 gain.
  EXPECT_LT(v[3] - v[7], (v[0] - v[3]) / 3.0);
}

// Experiment 2 (Figures 6-7): without a cache, noise erodes the
// multi-disk advantage; D3 can become worse than flat.
TEST(PaperExp2Test, NoiseDegradesD3PastFlat) {
  SimParams params = D5Base();
  params.disk_sizes = {2500, 2500};
  params.cache_size = 1;
  params.delta = 5;
  params.noise_percent = 0.0;
  const double quiet = Response(params);
  params.noise_percent = 75.0;
  const double noisy = Response(params);
  EXPECT_LT(quiet, 2500.0);
  EXPECT_GT(noisy, 2500.0) << "D3 at high noise should fall behind flat";
}

// Experiment 3 (Figure 8): P caching is *more* noise-sensitive than no
// caching — its misses land on slow disks.
TEST(PaperExp3Test, PDegradesFasterThanPixUnderNoise) {
  SimParams params = D5Base();
  params.cache_size = 500;
  params.offset = 500;
  params.delta = 4;
  params.policy = PolicyKind::kP;
  params.noise_percent = 0.0;
  const double p_quiet = Response(params);
  params.noise_percent = 60.0;
  const double p_noisy = Response(params);

  params.policy = PolicyKind::kPix;
  params.noise_percent = 0.0;
  const double pix_quiet = Response(params);
  params.noise_percent = 60.0;
  const double pix_noisy = Response(params);

  EXPECT_GT(p_noisy / p_quiet, pix_noisy / pix_quiet)
      << "P should degrade relatively faster than PIX";
  EXPECT_LT(pix_noisy, p_noisy);
}

// Experiment 4 (Figures 9-10): PIX stays below the flat-disk baseline
// across the noise range; P crosses it.
TEST(PaperExp4Test, PixStaysBelowFlatBaseline) {
  SimParams flat = D5Base();
  flat.cache_size = 500;
  flat.offset = 500;
  flat.delta = 0;
  flat.policy = PolicyKind::kPix;
  const double flat_rt = Response(flat);

  for (double noise : {15.0, 45.0, 75.0}) {
    SimParams params = D5Base();
    params.cache_size = 500;
    params.offset = 500;
    params.delta = 3;
    params.policy = PolicyKind::kPix;
    params.noise_percent = noise;
    EXPECT_LT(Response(params), flat_rt) << "noise " << noise;
  }
}

// Figure 11: PIX fetches fewer pages from the slowest disk than P.
TEST(PaperFig11Test, PixAvoidsTheSlowestDisk) {
  SimParams params = D5Base();
  params.cache_size = 500;
  params.offset = 500;
  params.delta = 3;
  params.noise_percent = 30.0;
  params.policy = PolicyKind::kP;
  auto p_result = RunSimulation(params);
  params.policy = PolicyKind::kPix;
  auto pix_result = RunSimulation(params);
  ASSERT_TRUE(p_result.ok());
  ASSERT_TRUE(pix_result.ok());
  const auto p_frac = p_result->metrics.LocationFractions();
  const auto pix_frac = pix_result->metrics.LocationFractions();
  // Index 3 = slowest disk (cache, disk1, disk2, disk3).
  EXPECT_LT(pix_frac[3], p_frac[3]);
}

// Experiment 5 (Figure 13): LIX approximates PIX well and beats LRU; the
// frequency term (LIX vs L) is where the win comes from.
TEST(PaperExp5Test, PolicyOrderingUnderNoise) {
  SimParams params = D5Base();
  params.cache_size = 500;
  params.offset = 500;
  params.delta = 3;
  params.noise_percent = 30.0;

  params.policy = PolicyKind::kLru;
  const double lru = Response(params);
  params.policy = PolicyKind::kL;
  const double l = Response(params);
  params.policy = PolicyKind::kLix;
  const double lix = Response(params);
  params.policy = PolicyKind::kPix;
  const double pix = Response(params);

  EXPECT_LT(lix, lru) << "LIX must beat LRU";
  EXPECT_LT(lix, l) << "frequency term must help";
  EXPECT_LE(pix, lix) << "PIX is the bound LIX approximates";
  // Figure 13 factors: LIX is a clear constant factor below LRU, and the
  // gap widens with delta (checked at delta 5).
  EXPECT_LT(lix, 0.7 * lru);
  SimParams steep = params;
  steep.delta = 5;
  steep.policy = PolicyKind::kLru;
  const double lru5 = Response(steep);
  steep.policy = PolicyKind::kLix;
  const double lix5 = Response(steep);
  EXPECT_LT(lix5, 0.6 * lru5);
}

// Figure 14: LIX takes far fewer pages from the slowest disk than LRU/L.
TEST(PaperFig14Test, LixAvoidsTheSlowestDisk) {
  SimParams params = D5Base();
  params.cache_size = 500;
  params.offset = 500;
  params.delta = 3;
  params.noise_percent = 30.0;
  params.policy = PolicyKind::kLru;
  auto lru_result = RunSimulation(params);
  params.policy = PolicyKind::kLix;
  auto lix_result = RunSimulation(params);
  ASSERT_TRUE(lru_result.ok());
  ASSERT_TRUE(lix_result.ok());
  EXPECT_LT(lix_result->metrics.LocationFractions()[3],
            lru_result->metrics.LocationFractions()[3]);
}

// Section 5.4 (Figure 11 discussion): a lower cache hit rate does not
// mean a worse response time — PIX can hit less yet respond faster.
TEST(PaperSection54Test, HitRateDoesNotDetermineResponse) {
  SimParams params = D5Base();
  params.cache_size = 500;
  params.offset = 500;
  params.delta = 3;
  params.noise_percent = 30.0;
  params.policy = PolicyKind::kP;
  auto p_result = RunSimulation(params);
  params.policy = PolicyKind::kPix;
  auto pix_result = RunSimulation(params);
  ASSERT_TRUE(p_result.ok());
  ASSERT_TRUE(pix_result.ok());
  EXPECT_LT(pix_result->metrics.mean_response_time(),
            p_result->metrics.mean_response_time());
  // P holds the true hottest pages, so its hit rate is at least PIX's.
  EXPECT_GE(p_result->metrics.hit_rate(),
            pix_result->metrics.hit_rate() - 0.02);
}

// Table 1 at scale: the multi-disk program beats the skewed program with
// the same bandwidth allocation (Bus Stop Paradox, simulated).
TEST(BusStopParadoxTest, RegularBeatsClusteredInSimulation) {
  SimParams params = D5Base();
  params.cache_size = 1;
  params.delta = 3;
  params.measured_requests = 15000;
  params.program_kind = ProgramKind::kMultiDisk;
  const double multi = Response(params);
  params.program_kind = ProgramKind::kSkewed;
  const double skewed = Response(params);
  params.program_kind = ProgramKind::kRandom;
  const double random = Response(params);
  EXPECT_LT(multi, skewed);
  EXPECT_LT(multi, random);
}

}  // namespace
}  // namespace bcast
