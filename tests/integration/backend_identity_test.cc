// Golden bit-identity across DES backends.
//
// The calendar queue is a performance substitution, not a semantic one:
// every configuration the checked-in goldens gate (tests/baselines/)
// must produce byte-for-byte identical serialized reports under
// --des_queue=heap and --des_queue=calendar. Wall-clock fields (phase
// timings, throughput rates) are zeroed before comparison — they are
// measurements of the host, not of the simulation; everything else,
// down to the last percentile digit and event count, must match
// exactly. A mismatch means the backends diverged in event order, which
// no optimization is allowed to do.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/multi_client.h"
#include "core/simulator.h"
#include "core/updates.h"
#include "obs/run_report.h"

namespace bcast {
namespace {

// Golden runs are 20000 requests at seed 42 (bench/baseline_refresh.cc);
// identity must hold at exactly the gated scale.
constexpr uint64_t kRequests = 20000;
constexpr uint64_t kSeed = 42;

// Zeroes the host-measurement fields, leaving only simulation-derived
// bytes in the serialization.
std::string SimulationBytes(obs::RunReport report) {
  report.timings = {};
  report.slots_per_second = 0.0;
  report.events_per_second = 0.0;
  std::ostringstream out;
  report.WriteJson(out);
  return out.str();
}

// The single-client golden configurations, mirroring
// bench/baseline_refresh.cc's Configs() list.
std::vector<std::pair<std::string, SimParams>> GoldenConfigs() {
  std::vector<std::pair<std::string, SimParams>> configs;
  {
    SimParams params;
    configs.emplace_back("single_lru_d5", params);
  }
  {
    SimParams params;
    params.policy = PolicyKind::kPix;
    params.offset = 500;
    params.noise_percent = 30.0;
    configs.emplace_back("single_pix_offset500_noise30", params);
  }
  {
    SimParams params;
    params.cache_size = 1;
    params.policy = PolicyKind::kP;
    configs.emplace_back("single_nocache_d5", params);
  }
  {
    SimParams params;
    params.delta = 4;
    configs.emplace_back("single_delta4_d5", params);
  }
  {
    SimParams params;
    params.fault.force = true;
    configs.emplace_back("single_lru_d5_fault0", params);
  }
  {
    SimParams params;
    params.access_range = 5000;
    params.pull.pull_slots = 2;
    params.pull.threshold = 100.0;
    configs.emplace_back("single_pull2_d5", params);
  }
  {
    SimParams params;
    params.access_range = 5000;
    params.fault.loss = 0.1;
    params.pull.pull_slots = 2;
    params.pull.threshold = 100.0;
    params.adapt.epoch_cycles = 4;
    configs.emplace_back("single_adapt_d5", params);
  }
  {
    SimParams params;
    params.access_range = 5000;
    params.fault.loss = 0.1;
    params.pull.pull_slots = 2;
    params.pull.threshold = 100.0;
    params.fault.process.crash_every = 1000000.0;
    params.fault.process.crash_down = 200.0;
    params.fault.process.crash_cold = true;
    configs.emplace_back("single_crash_d5", params);
  }
  {
    SimParams params;
    params.access_range = 5000;
    params.fault.loss = 0.1;
    params.pull.pull_slots = 2;
    params.pull.threshold = 100.0;
    configs.emplace_back("single_crashoff_d5", params);
  }
  for (auto& [name, params] : configs) {
    params.measured_requests = kRequests;
    params.seed = kSeed;
  }
  return configs;
}

TEST(BackendIdentityTest, EverySingleClientGoldenIsBitIdentical) {
  for (const auto& [name, base] : GoldenConfigs()) {
    SCOPED_TRACE(name);
    std::string bytes[2];
    const des::QueueBackend backends[2] = {des::QueueBackend::kHeap,
                                           des::QueueBackend::kCalendar};
    for (int b = 0; b < 2; ++b) {
      SimParams params = base;
      params.des_queue = backends[b];
      Result<SimResult> result = RunSimulation(params);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      bytes[b] = SimulationBytes(MakeRunReport(params, *result, "test"));
    }
    EXPECT_EQ(bytes[0], bytes[1])
        << name << " diverged between heap and calendar backends";
  }
}

TEST(BackendIdentityTest, PopulationGoldenIsBitIdentical) {
  SimParams base;
  base.measured_requests = kRequests;
  base.seed = kSeed;
  std::string bytes[2];
  const des::QueueBackend backends[2] = {des::QueueBackend::kHeap,
                                         des::QueueBackend::kCalendar};
  for (int b = 0; b < 2; ++b) {
    MultiClientParams params;
    params.disk_sizes = base.disk_sizes;
    params.delta = base.delta;
    params.measured_requests = base.measured_requests;
    params.seed = base.seed;
    params.des_queue = backends[b];
    const uint64_t db = params.ServerDbSize();
    for (uint64_t c = 0; c < 3; ++c) {
      ClientSpec spec;
      spec.access_range = base.access_range;
      spec.theta = base.theta;
      spec.region_size = base.region_size;
      spec.cache_size = base.cache_size;
      spec.policy = base.policy;
      spec.offset = base.offset;
      spec.noise_percent = base.noise_percent;
      spec.think_time = base.think_time;
      spec.interest_shift = db * c / 3;
      params.clients.push_back(spec);
    }
    auto result = RunMultiClientSimulation(params);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    bytes[b] = SimulationBytes(
        MakePopulationRunReport(params, *result, base.ToString(), "test"));
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(BackendIdentityTest, UpdatesGoldenIsBitIdentical) {
  std::string bytes[2];
  const des::QueueBackend backends[2] = {des::QueueBackend::kHeap,
                                         des::QueueBackend::kCalendar};
  for (int b = 0; b < 2; ++b) {
    SimParams base;
    base.measured_requests = kRequests;
    base.seed = kSeed;
    base.des_queue = backends[b];
    UpdateParams updates;
    updates.update_rate = 0.05;
    updates.update_theta = 0.95;
    updates.action = ConsistencyAction::kInvalidate;
    auto result = RunUpdateSimulation(base, updates);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    bytes[b] = SimulationBytes(
        MakeUpdateRunReport(base, updates, *result, "test"));
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

}  // namespace
}  // namespace bcast
