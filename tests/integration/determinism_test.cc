// Determinism and stream-independence properties across every runner.
// Exact reproducibility is a design requirement (the paper's results are
// point estimates; ours must be re-derivable bit-for-bit), and the named
// RNG sub-streams must isolate experimental factors from each other.

#include <gtest/gtest.h>

#include "core/analytic_model.h"
#include "core/multi_client.h"
#include "core/simulator.h"
#include "core/updates.h"

namespace bcast {
namespace {

SimParams SmallParams() {
  SimParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.access_range = 100;
  params.region_size = 5;
  params.cache_size = 50;
  params.policy = PolicyKind::kLix;
  params.noise_percent = 30.0;
  params.measured_requests = 3000;
  return params;
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  const SimParams params = SmallParams();
  auto a = RunSimulation(params);
  auto b = RunSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.cache_hits(), b->metrics.cache_hits());
  EXPECT_EQ(a->metrics.served_per_disk(), b->metrics.served_per_disk());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->perturbed_pages, b->perturbed_pages);
}

TEST(DeterminismTest, PolicyChangeKeepsNoiseRealization) {
  // The noise mapping draws from its own stream: switching the cache
  // policy must not move a single page.
  SimParams lru = SmallParams();
  lru.policy = PolicyKind::kLru;
  SimParams pix = SmallParams();
  pix.policy = PolicyKind::kPix;
  auto a = RunSimulation(lru);
  auto b = RunSimulation(pix);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->perturbed_pages, b->perturbed_pages);
}

TEST(DeterminismTest, CacheSizeChangeKeepsRequestStream) {
  // Request generation draws from its own stream: with no cache effect
  // (capacity 1 vs 2 both ~nothing), total requests' structure is fixed.
  // Observable proxy: the noise realization and warm-up length pattern.
  SimParams small = SmallParams();
  small.cache_size = 1;
  SimParams bigger = SmallParams();
  bigger.cache_size = 2;
  auto a = RunSimulation(small);
  auto b = RunSimulation(bigger);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->perturbed_pages, b->perturbed_pages);
  // Same request stream, nearly-equal hit behaviour: both tiny caches
  // serve the same heavy traffic to the broadcast.
  EXPECT_NEAR(a->metrics.mean_response_time(),
              b->metrics.mean_response_time(),
              0.05 * a->metrics.mean_response_time());
}

TEST(DeterminismTest, AnalyticModelSeesTheSimulatorsNoise) {
  // The closed form must consume the *same* noise realization: its
  // predicted cached set depends on the mapping, so two calls with the
  // same seed agree exactly, and a different seed moves it.
  SimParams params = SmallParams();
  params.policy = PolicyKind::kPix;
  auto a = PredictResponse(params);
  auto b = PredictResponse(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cached_pages, b->cached_pages);
  EXPECT_EQ(a->response_time, b->response_time);

  params.seed += 1;
  auto c = PredictResponse(params);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->response_time, c->response_time);
}

TEST(DeterminismTest, UpdateRunsAreBitIdentical) {
  UpdateParams updates;
  updates.update_rate = 0.1;
  updates.awake_for = 500.0;
  updates.sleep_for = 500.0;
  auto a = RunUpdateSimulation(SmallParams(), updates);
  auto b = RunUpdateSimulation(SmallParams(), updates);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->fresh_hits, b->fresh_hits);
  EXPECT_EQ(a->stale_hits, b->stale_hits);
  EXPECT_EQ(a->invalidation_refetches, b->invalidation_refetches);
  EXPECT_EQ(a->naps, b->naps);
  EXPECT_EQ(a->mean_response_time, b->mean_response_time);
}

TEST(DeterminismTest, MultiClientRunsAreBitIdentical) {
  MultiClientParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.measured_requests = 1500;
  for (uint64_t shift : {0ull, 100ull, 250ull}) {
    ClientSpec spec;
    spec.access_range = 100;
    spec.region_size = 5;
    spec.cache_size = 20;
    spec.interest_shift = shift;
    params.clients.push_back(spec);
  }
  auto a = RunMultiClientSimulation(params);
  auto b = RunMultiClientSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->mean_response_times, b->mean_response_times);
  EXPECT_EQ(a->end_time, b->end_time);
}

TEST(DeterminismTest, ProgramKindsShareTheSameClientRandomness) {
  // Swapping the broadcast *program* must not disturb the request
  // stream: the random program draws from a dedicated stream.
  SimParams multi = SmallParams();
  multi.cache_size = 1;
  SimParams random = multi;
  random.program_kind = ProgramKind::kRandom;
  auto a = RunSimulation(multi);
  auto b = RunSimulation(random);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical request count and noise; only the schedule differs.
  EXPECT_EQ(a->metrics.requests(), b->metrics.requests());
  EXPECT_EQ(a->perturbed_pages, b->perturbed_pages);
  EXPECT_NE(a->metrics.mean_response_time(),
            b->metrics.mean_response_time());
}

}  // namespace
}  // namespace bcast
