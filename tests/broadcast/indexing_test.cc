#include "broadcast/indexing.h"

#include <gtest/gtest.h>

#include "broadcast/generator.h"
#include "common/zipf.h"

namespace bcast {
namespace {

BroadcastProgram SmallData() {
  auto program = GenerateFlatProgram(100);
  EXPECT_TRUE(program.ok());
  return std::move(*program);
}

IndexedProgram MakeIndexed(uint64_t copies, uint64_t entries = 16,
                           uint64_t fanout = 4) {
  auto indexed =
      IndexedProgram::Make(SmallData(), IndexConfig{copies, entries, fanout});
  EXPECT_TRUE(indexed.ok()) << indexed.status().ToString();
  return std::move(*indexed);
}

TEST(IndexedProgramTest, RejectsBadConfigs) {
  EXPECT_FALSE(IndexedProgram::Make(SmallData(), {0, 16, 4}).ok());
  EXPECT_FALSE(IndexedProgram::Make(SmallData(), {1, 0, 4}).ok());
  EXPECT_FALSE(IndexedProgram::Make(SmallData(), {1, 16, 0}).ok());
  EXPECT_FALSE(IndexedProgram::Make(SmallData(), {101, 16, 4}).ok());
}

TEST(IndexedProgramTest, GeometrySmall) {
  // 100 pages, 16 entries/slot -> 7 leaves; fanout 4 -> 2 nodes -> 1 root.
  // 10 slots per copy, 3 levels.
  IndexedProgram indexed = MakeIndexed(1);
  EXPECT_EQ(indexed.index_slots_per_copy(), 10u);
  EXPECT_EQ(indexed.tree_levels(), 3u);
  EXPECT_EQ(indexed.period(), 110u);
  EXPECT_NEAR(indexed.IndexOverhead(), 10.0 / 110.0, 1e-12);
}

TEST(IndexedProgramTest, PeriodGrowsWithCopies) {
  EXPECT_EQ(MakeIndexed(1).period(), 110u);
  EXPECT_EQ(MakeIndexed(2).period(), 120u);
  EXPECT_EQ(MakeIndexed(5).period(), 150u);
}

TEST(IndexedProgramTest, SingleLevelIndexWhenEverythingFits) {
  auto indexed = IndexedProgram::Make(SmallData(), {1, 128, 64});
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed->index_slots_per_copy(), 1u);
  EXPECT_EQ(indexed->tree_levels(), 1u);
}

TEST(IndexedProgramTest, NextIndexCopyStartSingleCopy) {
  IndexedProgram indexed = MakeIndexed(1);  // copy at [0, 10)
  EXPECT_DOUBLE_EQ(indexed.NextIndexCopyStart(0.0), 0.0);
  EXPECT_DOUBLE_EQ(indexed.NextIndexCopyStart(0.5), 110.0);
  EXPECT_DOUBLE_EQ(indexed.NextIndexCopyStart(50.0), 110.0);
}

TEST(IndexedProgramTest, NextIndexCopyStartMultiCopy) {
  IndexedProgram indexed = MakeIndexed(2);  // copies at 0 and 50+10=60
  EXPECT_DOUBLE_EQ(indexed.NextIndexCopyStart(1.0), 60.0);
  EXPECT_DOUBLE_EQ(indexed.NextIndexCopyStart(60.0), 60.0);
  EXPECT_DOUBLE_EQ(indexed.NextIndexCopyStart(61.0), 120.0);
}

TEST(IndexedProgramTest, DataArrivalsShiftPastIndexCopies) {
  // Flat data: page k sits at data slot k. With one 10-slot copy at the
  // front, page k's expanded slot is k + 10.
  IndexedProgram indexed = MakeIndexed(1);
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(42, 0.0), 52.0);
  // Once past its slot, the page comes around next period.
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(0, 10.5), 120.0);
}

TEST(IndexedProgramTest, DataArrivalsWithTwoCopies) {
  // Copies at expanded [0,10) and [60,70); data slots 0-49 at 10-59,
  // data slots 50-99 at 70-119.
  IndexedProgram indexed = MakeIndexed(2);
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(49, 0.0), 59.0);
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(50, 0.0), 70.0);
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(99, 0.0), 119.0);
  // A request during the second copy catches slot 50 right after it.
  EXPECT_DOUBLE_EQ(indexed.NextDataArrivalStart(50, 65.0), 70.0);
}

TEST(IndexedProgramTest, ArrivalMonotoneAndWithinOnePeriod) {
  IndexedProgram indexed = MakeIndexed(3);
  for (PageId p : {0u, 33u, 99u}) {
    for (double t = 0.0; t < 2.0 * indexed.period(); t += 7.3) {
      const double arr = indexed.NextDataArrivalStart(p, t);
      EXPECT_GE(arr, t);
      EXPECT_LE(arr - t, static_cast<double>(indexed.period()) + 1.0);
    }
  }
}

TEST(IndexedProgramTest, WorksOnMultiDiskData) {
  auto layout = MakeDeltaLayout({10, 40, 50}, 2);
  auto data = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(data.ok());
  auto indexed = IndexedProgram::Make(std::move(*data), {4, 16, 4});
  ASSERT_TRUE(indexed.ok());
  // Hot pages still arrive much sooner on average than cold ones.
  double hot_sum = 0.0, cold_sum = 0.0;
  for (double t = 0.0; t < indexed->period(); t += 13.7) {
    hot_sum += indexed->NextDataArrivalStart(0, t) - t;
    cold_sum += indexed->NextDataArrivalStart(99, t) - t;
  }
  EXPECT_LT(hot_sum, cold_sum / 2.0);
}

// --- Protocol analysis ---

std::vector<double> UniformProbs(uint64_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

TEST(AnalyzeTuningTest, RejectsBadInputs) {
  IndexedProgram indexed = MakeIndexed(1);
  Rng rng(1);
  EXPECT_FALSE(AnalyzeTuning(indexed, UniformProbs(5),
                             TuningProtocol::kOneMIndex, 100, &rng)
                   .ok());
  EXPECT_FALSE(AnalyzeTuning(indexed, UniformProbs(100),
                             TuningProtocol::kOneMIndex, 0, &rng)
                   .ok());
  EXPECT_FALSE(AnalyzeTuning(indexed, std::vector<double>(100, 0.0),
                             TuningProtocol::kOneMIndex, 10, &rng)
                   .ok());
}

TEST(AnalyzeTuningTest, ContinuousListenTuningEqualsLatency) {
  IndexedProgram indexed = MakeIndexed(1);
  Rng rng(2);
  auto analysis = AnalyzeTuning(indexed, UniformProbs(100),
                                TuningProtocol::kContinuousListen, 20000,
                                &rng);
  ASSERT_TRUE(analysis.ok());
  EXPECT_DOUBLE_EQ(analysis->expected_latency, analysis->expected_tuning);
  // Uniform access to a flat 110-slot period: ~56 slots.
  EXPECT_NEAR(analysis->expected_latency, 56.0, 3.0);
}

TEST(AnalyzeTuningTest, KnownScheduleTunesOneSlot) {
  IndexedProgram indexed = MakeIndexed(1);
  Rng rng(3);
  auto analysis =
      AnalyzeTuning(indexed, UniformProbs(100),
                    TuningProtocol::kKnownSchedule, 20000, &rng);
  ASSERT_TRUE(analysis.ok());
  EXPECT_DOUBLE_EQ(analysis->expected_tuning, 1.0);
}

TEST(AnalyzeTuningTest, IndexTuningIsConstantAndTiny) {
  IndexedProgram indexed = MakeIndexed(4);
  Rng rng(4);
  auto analysis = AnalyzeTuning(indexed, UniformProbs(100),
                                TuningProtocol::kOneMIndex, 20000, &rng);
  ASSERT_TRUE(analysis.ok());
  // 1 probe + 3 levels + 1 data slot = 5, independent of the period.
  EXPECT_DOUBLE_EQ(analysis->expected_tuning, 5.0);
  // Latency exceeds continuous listening (index detour + overhead)...
  auto continuous =
      AnalyzeTuning(indexed, UniformProbs(100),
                    TuningProtocol::kContinuousListen, 20000, &rng);
  EXPECT_GT(analysis->expected_latency, continuous->expected_latency);
  // ...but tuning is an order of magnitude lower.
  EXPECT_LT(analysis->expected_tuning,
            continuous->expected_tuning / 10.0);
}

TEST(AnalyzeTuningTest, MoreCopiesCutIndexWait) {
  Rng rng(5);
  auto one = AnalyzeTuning(MakeIndexed(1), UniformProbs(100),
                           TuningProtocol::kOneMIndex, 20000, &rng);
  auto four = AnalyzeTuning(MakeIndexed(4), UniformProbs(100),
                            TuningProtocol::kOneMIndex, 20000, &rng);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_LT(four->expected_latency, one->expected_latency);
}

TEST(OptimalIndexCopiesTest, SquareRootRule) {
  EXPECT_EQ(OptimalIndexCopies(100, 1), 10u);
  EXPECT_EQ(OptimalIndexCopies(100, 4), 5u);
  EXPECT_EQ(OptimalIndexCopies(10000, 100), 10u);
  EXPECT_EQ(OptimalIndexCopies(4, 100), 1u);  // clamped up to 1
}

TEST(OptimalIndexCopiesTest, NearOptimalInPractice) {
  // The rule's m should be within a few percent of the best m found by a
  // sweep, for uniform access over a flat program.
  Rng rng(6);
  const std::vector<double> probs = UniformProbs(100);
  const uint64_t m_star = OptimalIndexCopies(100, 10);
  double best = 1e18;
  uint64_t best_m = 0;
  for (uint64_t m = 1; m <= 10; ++m) {
    auto analysis = AnalyzeTuning(MakeIndexed(m), probs,
                                  TuningProtocol::kOneMIndex, 30000, &rng);
    ASSERT_TRUE(analysis.ok());
    if (analysis->expected_latency < best) {
      best = analysis->expected_latency;
      best_m = m;
    }
  }
  auto rule = AnalyzeTuning(MakeIndexed(m_star), probs,
                            TuningProtocol::kOneMIndex, 30000, &rng);
  ASSERT_TRUE(rule.ok());
  EXPECT_LT(rule->expected_latency, best * 1.10)
      << "rule m=" << m_star << " vs swept best m=" << best_m;
}

}  // namespace
}  // namespace bcast
