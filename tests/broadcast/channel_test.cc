#include "broadcast/channel.h"

#include <gtest/gtest.h>

#include <vector>

#include "broadcast/generator.h"

namespace bcast {
namespace {

// A B A C multi-disk program (A fast disk, B/C slow disk).
BroadcastProgram Abac() {
  auto layout = MakeLayout({1, 2}, {2, 1});
  auto program = GenerateMultiDiskProgram(*layout);
  EXPECT_TRUE(program.ok());
  return std::move(*program);
}

des::Process FetchSequence(des::Simulation* sim, BroadcastChannel* channel,
                           std::vector<PageId> pages,
                           std::vector<double>* completion_times,
                           std::vector<double>* waits) {
  for (PageId p : pages) {
    const double wait = co_await channel->WaitForPage(p);
    completion_times->push_back(sim->Now());
    waits->push_back(wait);
  }
}

TEST(ChannelTest, WaitsForSlotEnd) {
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  std::vector<double> times, waits;
  // From t=0: A occupies slot 0 => received at 1.0.
  sim.Spawn(FetchSequence(&sim, &channel, {0}, &times, &waits));
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0}));
  EXPECT_EQ(waits, (std::vector<double>{1.0}));
}

TEST(ChannelTest, SequentialFetchesFollowSchedule) {
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  std::vector<double> times, waits;
  // A at slots 0,2; B at 1; C at 3.
  // Fetch C: done at 4. Then B: next B starts slot 5 -> done 6.
  // Then A: next A starts slot 6 -> done 7.
  sim.Spawn(FetchSequence(&sim, &channel, {2, 1, 0}, &times, &waits));
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{4.0, 6.0, 7.0}));
}

TEST(ChannelTest, PerDiskStatsCount) {
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  std::vector<double> times, waits;
  sim.Spawn(FetchSequence(&sim, &channel, {0, 1, 0, 2}, &times, &waits));
  sim.Run();
  EXPECT_EQ(channel.total_served(), 4u);
  EXPECT_EQ(channel.served_per_disk(), (std::vector<uint64_t>{2, 2}));
}

TEST(ChannelTest, ResetStatsClearsCounters) {
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  std::vector<double> times, waits;
  sim.Spawn(FetchSequence(&sim, &channel, {0}, &times, &waits));
  sim.Run();
  channel.ResetStats();
  EXPECT_EQ(channel.total_served(), 0u);
  EXPECT_EQ(channel.served_per_disk(), (std::vector<uint64_t>{0, 0}));
}

TEST(ChannelTest, MultipleClientsShareTheBroadcast) {
  // Two clients waiting for the same page complete at the same instant —
  // a broadcast never contends.
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  std::vector<double> t1, t2, w1, w2;
  sim.Spawn(FetchSequence(&sim, &channel, {2}, &t1, &w1));
  sim.Spawn(FetchSequence(&sim, &channel, {2}, &t2, &w2));
  sim.Run();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(channel.total_served(), 2u);
}

TEST(ChannelTest, NextArrivalStartTracksClock) {
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  EXPECT_DOUBLE_EQ(channel.NextArrivalStart(1), 1.0);
  sim.RunUntil(2.0);
  EXPECT_DOUBLE_EQ(channel.NextArrivalStart(1), 5.0);
}

}  // namespace
}  // namespace bcast
