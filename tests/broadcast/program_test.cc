#include "broadcast/program.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bcast {
namespace {

// Figure 2(c): A B A C with A on a 2x disk.
BroadcastProgram MultiDiskAbac() {
  auto program = BroadcastProgram::Make({0, 1, 0, 2}, 3, {0, 1, 1});
  EXPECT_TRUE(program.ok());
  return std::move(*program);
}

TEST(ProgramTest, BasicProperties) {
  BroadcastProgram p = MultiDiskAbac();
  EXPECT_EQ(p.period(), 4u);
  EXPECT_EQ(p.num_pages(), 3u);
  EXPECT_EQ(p.num_disks(), 2u);
  EXPECT_EQ(p.EmptySlots(), 0u);
  EXPECT_EQ(p.page_at(0), 0u);
  EXPECT_EQ(p.page_at(3), 2u);
}

TEST(ProgramTest, FrequencyCountsArrivals) {
  BroadcastProgram p = MultiDiskAbac();
  EXPECT_EQ(p.Frequency(0), 2u);
  EXPECT_EQ(p.Frequency(1), 1u);
  EXPECT_EQ(p.Frequency(2), 1u);
}

TEST(ProgramTest, NormalizedFrequency) {
  BroadcastProgram p = MultiDiskAbac();
  EXPECT_DOUBLE_EQ(p.NormalizedFrequency(0), 0.5);
  EXPECT_DOUBLE_EQ(p.NormalizedFrequency(1), 0.25);
}

TEST(ProgramTest, DiskOfUsesMetadata) {
  BroadcastProgram p = MultiDiskAbac();
  EXPECT_EQ(p.DiskOf(0), 0u);
  EXPECT_EQ(p.DiskOf(1), 1u);
  EXPECT_EQ(p.DiskOf(2), 1u);
}

TEST(ProgramTest, DiskOfDefaultsToZeroWithoutMetadata) {
  auto p = BroadcastProgram::Make({0, 1}, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->DiskOf(0), 0u);
  EXPECT_EQ(p->DiskOf(1), 0u);
  EXPECT_EQ(p->num_disks(), 1u);
}

TEST(ProgramTest, EmptySlotsCounted) {
  auto p = BroadcastProgram::Make({0, kEmptySlot, 1, kEmptySlot}, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->EmptySlots(), 2u);
  EXPECT_EQ(p->Frequency(0), 1u);
}

TEST(ProgramTest, RejectsEmptyProgram) {
  EXPECT_FALSE(BroadcastProgram::Make({}, 1).ok());
}

TEST(ProgramTest, RejectsPageNeverBroadcast) {
  // Page 1 exists but never appears: a client wanting it would wait
  // forever.
  auto p = BroadcastProgram::Make({0, 0}, 2);
  EXPECT_FALSE(p.ok());
}

TEST(ProgramTest, RejectsOutOfRangePage) {
  EXPECT_FALSE(BroadcastProgram::Make({0, 5}, 2).ok());
}

TEST(ProgramTest, RejectsBadDiskMetadataLength) {
  EXPECT_FALSE(BroadcastProgram::Make({0, 1}, 2, {0}).ok());
}

// --- NextArrival semantics ---

TEST(NextArrivalTest, ExactSlotStartIsCatchable) {
  BroadcastProgram p = MultiDiskAbac();  // A at slots 0, 2
  EXPECT_DOUBLE_EQ(p.NextArrivalStart(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.NextArrivalEnd(0, 0.0), 1.0);
}

TEST(NextArrivalTest, MidTransmissionWaitsForNext) {
  BroadcastProgram p = MultiDiskAbac();
  // At t = 0.5, A's slot-0 transmission is underway and cannot be joined.
  EXPECT_DOUBLE_EQ(p.NextArrivalStart(0, 0.5), 2.0);
}

TEST(NextArrivalTest, WrapsToNextCycle) {
  BroadcastProgram p = MultiDiskAbac();  // B at slot 1
  EXPECT_DOUBLE_EQ(p.NextArrivalStart(1, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(p.NextArrivalStart(2, 3.5), 7.0);
}

TEST(NextArrivalTest, FarFutureCycles) {
  BroadcastProgram p = MultiDiskAbac();
  // t = 1000 = cycle 250 exactly; A's next start is slot 0 of cycle 250.
  EXPECT_DOUBLE_EQ(p.NextArrivalStart(0, 1000.0), 1000.0);
  EXPECT_DOUBLE_EQ(p.NextArrivalStart(1, 1000.5), 1001.0);
}

TEST(NextArrivalTest, MatchesBruteForceScan) {
  // Property check against a brute-force definition on a padded program.
  auto program = BroadcastProgram::Make(
      {3, 0, kEmptySlot, 1, 3, 2, 0, kEmptySlot, 3}, 4);
  ASSERT_TRUE(program.ok());
  const uint64_t period = program->period();
  for (PageId page = 0; page < 4; ++page) {
    for (double t = 0.0; t < 2.0 * static_cast<double>(period); t += 0.25) {
      // Brute force: scan forward slot by slot.
      double expected = -1.0;
      for (uint64_t k = 0;; ++k) {
        const double slot_start = std::floor(t) + static_cast<double>(k);
        if (slot_start < t) continue;
        const uint64_t slot =
            static_cast<uint64_t>(slot_start) % period;
        if (program->page_at(slot) == page) {
          expected = slot_start;
          break;
        }
      }
      EXPECT_DOUBLE_EQ(program->NextArrivalStart(page, t), expected)
          << "page " << page << " t " << t;
    }
  }
}

// --- Gap analysis ---

TEST(GapTest, MultiDiskGapsAreFixed) {
  BroadcastProgram p = MultiDiskAbac();
  EXPECT_EQ(p.InterArrivalGaps(0), (std::vector<uint64_t>{2, 2}));
  EXPECT_EQ(p.InterArrivalGaps(1), (std::vector<uint64_t>{4}));
  EXPECT_TRUE(p.HasFixedInterArrival(0));
  EXPECT_TRUE(p.HasFixedInterArrival(1));
}

TEST(GapTest, SkewedGapsAreNot) {
  // Figure 2(b): A A B C.
  auto p = BroadcastProgram::Make({0, 0, 1, 2}, 3);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->InterArrivalGaps(0), (std::vector<uint64_t>{1, 3}));
  EXPECT_FALSE(p->HasFixedInterArrival(0));
  EXPECT_TRUE(p->HasFixedInterArrival(1));
}

TEST(GapTest, GapsSumToPeriod) {
  auto p = BroadcastProgram::Make({0, 1, 0, 2, 0, 1, kEmptySlot}, 3);
  ASSERT_TRUE(p.ok());
  for (PageId page = 0; page < 3; ++page) {
    uint64_t sum = 0;
    for (uint64_t g : p->InterArrivalGaps(page)) sum += g;
    EXPECT_EQ(sum, p->period()) << "page " << page;
  }
}

}  // namespace
}  // namespace bcast
