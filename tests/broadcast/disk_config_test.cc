#include "broadcast/disk_config.h"

#include <gtest/gtest.h>

namespace bcast {
namespace {

TEST(DiskLayoutTest, TotalPagesSumsSizes) {
  DiskLayout layout{{500, 2000, 2500}, {7, 4, 1}};
  EXPECT_EQ(layout.TotalPages(), 5000u);
  EXPECT_EQ(layout.NumDisks(), 3u);
}

TEST(DiskLayoutTest, ToStringIsReadable) {
  DiskLayout layout{{500, 2000, 2500}, {7, 4, 1}};
  EXPECT_EQ(layout.ToString(), "<500,2000,2500>@freqs{7,4,1}");
}

TEST(ValidateLayoutTest, AcceptsPaperConfigs) {
  for (const auto& sizes : std::vector<std::vector<uint64_t>>{
           {500, 4500}, {900, 4100}, {2500, 2500}, {300, 1200, 3500},
           {500, 2000, 2500}}) {
    auto layout = MakeDeltaLayout(sizes, 3);
    EXPECT_TRUE(layout.ok()) << layout.status().ToString();
  }
}

TEST(ValidateLayoutTest, RejectsEmpty) {
  EXPECT_FALSE(ValidateLayout(DiskLayout{{}, {}}).ok());
}

TEST(ValidateLayoutTest, RejectsLengthMismatch) {
  EXPECT_FALSE(ValidateLayout(DiskLayout{{10, 20}, {1}}).ok());
}

TEST(ValidateLayoutTest, RejectsZeroSize) {
  EXPECT_FALSE(ValidateLayout(DiskLayout{{10, 0}, {2, 1}}).ok());
}

TEST(ValidateLayoutTest, RejectsZeroFrequency) {
  EXPECT_FALSE(ValidateLayout(DiskLayout{{10, 20}, {2, 0}}).ok());
}

TEST(ValidateLayoutTest, RejectsIncreasingFrequencies) {
  // Disk 0 must be the fastest.
  EXPECT_FALSE(ValidateLayout(DiskLayout{{10, 20}, {1, 2}}).ok());
}

TEST(ValidateLayoutTest, AcceptsEqualFrequencies) {
  EXPECT_TRUE(ValidateLayout(DiskLayout{{10, 20}, {3, 3}}).ok());
}

TEST(MakeDeltaLayoutTest, DeltaZeroIsFlat) {
  auto layout = MakeDeltaLayout({100, 200, 300}, 0);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->rel_freqs, (std::vector<uint64_t>{1, 1, 1}));
}

TEST(MakeDeltaLayoutTest, PaperDeltaExamples) {
  // Section 4.2: 3 disks, delta = 1 -> speeds 3, 2, 1.
  auto d1 = MakeDeltaLayout({1, 1, 1}, 1);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->rel_freqs, (std::vector<uint64_t>{3, 2, 1}));
  // delta = 3 -> 7, 4, 1.
  auto d3 = MakeDeltaLayout({1, 1, 1}, 3);
  ASSERT_TRUE(d3.ok());
  EXPECT_EQ(d3->rel_freqs, (std::vector<uint64_t>{7, 4, 1}));
}

TEST(MakeDeltaLayoutTest, TwoDiskDelta) {
  auto layout = MakeDeltaLayout({2500, 2500}, 5);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->rel_freqs, (std::vector<uint64_t>{6, 1}));
}

TEST(MakeDeltaLayoutTest, SingleDiskAlwaysFrequencyOne) {
  for (uint64_t delta : {0u, 3u, 9u}) {
    auto layout = MakeDeltaLayout({5000}, delta);
    ASSERT_TRUE(layout.ok());
    EXPECT_EQ(layout->rel_freqs, (std::vector<uint64_t>{1}));
  }
}

TEST(MakeLayoutTest, ExplicitFrequencies) {
  // The paper's "141 rotations for every 98" fine-tuning example is legal.
  auto layout = MakeLayout({100, 400}, {141, 98});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->rel_freqs[0], 141u);
}

TEST(MakeLayoutTest, PropagatesValidationErrors) {
  EXPECT_FALSE(MakeLayout({100}, {1, 2}).ok());
  EXPECT_FALSE(MakeLayout({0}, {1}).ok());
}

}  // namespace
}  // namespace bcast
