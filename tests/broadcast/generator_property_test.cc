// Property-based test of the Section-2.2 generator: for ~200 randomized
// layouts, re-derive the paper's two structural guarantees from the raw
// slot vector alone — every page's transmissions are *exactly* equally
// spaced, and the period equals LCM(rel_freqs) times the minor cycle
// length — without trusting any BroadcastProgram accessor to do it.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "broadcast/disk_config.h"
#include "broadcast/generator.h"
#include "broadcast/program.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace bcast {
namespace {

// Draws a random layout: 1..4 disks, sizes 1..12, non-increasing
// frequencies from a divisor-friendly set so LCM stays small and the 200
// programs build fast.
DiskLayout RandomLayout(Rng* rng) {
  static const uint64_t kFreqPool[] = {1, 2, 3, 4, 6, 8, 12};
  const size_t disks = 1 + rng->NextBounded(4);
  DiskLayout layout;
  for (size_t d = 0; d < disks; ++d) {
    layout.sizes.push_back(1 + rng->NextBounded(12));
    layout.rel_freqs.push_back(kFreqPool[rng->NextBounded(7)]);
  }
  // Disk 0 must spin fastest: sort frequencies non-increasing.
  std::sort(layout.rel_freqs.begin(), layout.rel_freqs.end(),
            std::greater<uint64_t>());
  return layout;
}

// Arrival slots of each page, collected by a linear scan of the raw period.
std::vector<std::vector<uint64_t>> ArrivalsBySlotScan(
    const BroadcastProgram& program) {
  std::vector<std::vector<uint64_t>> arrivals(program.num_pages());
  const std::vector<PageId>& slots = program.slots();
  for (uint64_t s = 0; s < slots.size(); ++s) {
    if (slots[s] != kEmptySlot) arrivals[slots[s]].push_back(s);
  }
  return arrivals;
}

std::string Describe(const DiskLayout& layout, uint64_t seed) {
  std::ostringstream out;
  out << "layout " << layout.ToString() << " (iteration seed " << seed << ")";
  return out.str();
}

TEST(GeneratorPropertyTest, RandomLayoutsHaveExactEqualSpacing) {
  Rng rng(0x5EC22);  // pinned: same 200 layouts every run
  for (int iter = 0; iter < 200; ++iter) {
    const DiskLayout layout = RandomLayout(&rng);
    ASSERT_TRUE(ValidateLayout(layout).ok()) << Describe(layout, iter);
    auto program = GenerateMultiDiskProgram(layout);
    ASSERT_TRUE(program.ok())
        << Describe(layout, iter) << ": " << program.status().ToString();

    const auto arrivals = ArrivalsBySlotScan(*program);
    const uint64_t period = program->period();
    for (PageId p = 0; p < program->num_pages(); ++p) {
      const std::vector<uint64_t>& a = arrivals[p];
      ASSERT_FALSE(a.empty())
          << Describe(layout, iter) << ": page " << p << " never broadcast";
      // Period-wrapped gaps between consecutive transmissions: with k
      // arrivals in a period of P slots, exact equal spacing means every
      // gap is P/k — which also forces k to divide P.
      ASSERT_EQ(period % a.size(), 0u)
          << Describe(layout, iter) << ": page " << p << " has " << a.size()
          << " arrivals, not a divisor of period " << period;
      const uint64_t expected_gap = period / a.size();
      for (size_t i = 0; i < a.size(); ++i) {
        const uint64_t next = a[(i + 1) % a.size()];
        const uint64_t gap = (next + period - a[i]) % period == 0
                                 ? period
                                 : (next + period - a[i]) % period;
        ASSERT_EQ(gap, expected_gap)
            << Describe(layout, iter) << ": page " << p << " gap " << i
            << " is " << gap << ", want " << expected_gap;
      }
    }
  }
}

TEST(GeneratorPropertyTest, RandomLayoutsSatisfyPeriodIdentity) {
  Rng rng(0xA11CE);  // independent pinned stream from the spacing test
  for (int iter = 0; iter < 200; ++iter) {
    const DiskLayout layout = RandomLayout(&rng);
    auto program = GenerateMultiDiskProgram(layout);
    ASSERT_TRUE(program.ok())
        << Describe(layout, iter) << ": " << program.status().ToString();

    // Recompute the Section-2.2 geometry from the layout alone:
    //   max_chunks      = LCM(rel_freqs)
    //   num_chunks[i]   = max_chunks / rel_freq[i]
    //   chunk_size[i]   = ceil(size[i] / num_chunks[i])
    //   minor_cycle_len = sum_i chunk_size[i]
    //   period          = max_chunks * minor_cycle_len
    auto max_chunks = LcmOfAll(layout.rel_freqs);
    ASSERT_TRUE(max_chunks.ok()) << Describe(layout, iter);
    uint64_t minor_cycle_len = 0;
    for (size_t d = 0; d < layout.sizes.size(); ++d) {
      const uint64_t num_chunks = *max_chunks / layout.rel_freqs[d];
      minor_cycle_len += CeilDiv(layout.sizes[d], num_chunks);
    }
    EXPECT_EQ(program->period(), *max_chunks * minor_cycle_len)
        << Describe(layout, iter) << ": period " << program->period()
        << " != LCM " << *max_chunks << " * minor cycle " << minor_cycle_len;

    // Frequency accounting against the same independent scan: every page
    // of disk d appears exactly rel_freq(d) times per period.
    const auto arrivals = ArrivalsBySlotScan(*program);
    PageId page = 0;
    for (size_t d = 0; d < layout.sizes.size(); ++d) {
      for (uint64_t i = 0; i < layout.sizes[d]; ++i, ++page) {
        EXPECT_EQ(arrivals[page].size(), layout.rel_freqs[d])
            << Describe(layout, iter) << ": page " << page << " on disk "
            << d;
      }
    }
  }
}

}  // namespace
}  // namespace bcast
