#include "broadcast/generator.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace bcast {
namespace {

TEST(MultiDiskGeneratorTest, Figure2MultiDiskProgram) {
  // Three pages, A twice as often as B and C -> "A B A C" (Figure 2c).
  auto layout = MakeLayout({1, 2}, {2, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->slots(), (std::vector<PageId>{0, 1, 0, 2}));
}

TEST(MultiDiskGeneratorTest, Figure3Example) {
  // Section 2.2 / Figure 3: rel freqs 4, 2, 1 => max_chunks 4,
  // num_chunks = {1, 2, 4}. With sizes {1, 4, 4}: chunk sizes {1, 2, 1},
  // minor cycle 4 slots, period 16, no waste.
  auto layout = MakeLayout({1, 4, 4}, {4, 2, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->period(), 16u);
  EXPECT_EQ(program->EmptySlots(), 0u);
  EXPECT_EQ(program->slots(),
            (std::vector<PageId>{0, 1, 2, 5,    // C11 C21 C31
                                 0, 3, 4, 6,    // C11 C22 C32
                                 0, 1, 2, 7,    // C11 C21 C33
                                 0, 3, 4, 8})); // C11 C22 C34
}

TEST(MultiDiskGeneratorTest, FrequenciesMatchLayout) {
  auto layout = MakeLayout({1, 4, 4}, {4, 2, 1});
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->Frequency(0), 4u);
  for (PageId p = 1; p <= 4; ++p) EXPECT_EQ(program->Frequency(p), 2u);
  for (PageId p = 5; p <= 8; ++p) EXPECT_EQ(program->Frequency(p), 1u);
}

TEST(MultiDiskGeneratorTest, DiskMetadataMatchesLayout) {
  auto layout = MakeLayout({1, 4, 4}, {4, 2, 1});
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->DiskOf(0), 0u);
  EXPECT_EQ(program->DiskOf(1), 1u);
  EXPECT_EQ(program->DiskOf(4), 1u);
  EXPECT_EQ(program->DiskOf(5), 2u);
  EXPECT_EQ(program->DiskOf(8), 2u);
}

TEST(MultiDiskGeneratorTest, PaddingWhenChunksDoNotDivide) {
  // Disk 2 (2 pages) splits into 3 chunks of 1 slot: one empty slot.
  auto layout = MakeLayout({3, 2}, {3, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->EmptySlots(), 1u);
  // Even with padding, inter-arrival times stay fixed.
  for (PageId p = 0; p < 5; ++p) {
    EXPECT_TRUE(program->HasFixedInterArrival(p)) << "page " << p;
  }
}

TEST(MultiDiskGeneratorTest, PaperD5Delta7Geometry) {
  // D5 <500,2000,2500> at delta 7: freqs 15, 8, 1; LCM 120;
  // chunks 63+134+21 = 218 slots per minor cycle; period 26160;
  // waste = 26160 - (500*15 + 2000*8 + 2500*1) = 160 slots (~0.6%).
  auto layout = MakeDeltaLayout({500, 2000, 2500}, 7);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->rel_freqs, (std::vector<uint64_t>{15, 8, 1}));
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->period(), 26160u);
  EXPECT_EQ(program->EmptySlots(), 160u);
}

TEST(FlatGeneratorTest, CyclesAllPagesOnce) {
  auto program = GenerateFlatProgram(5);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->slots(), (std::vector<PageId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(program->num_disks(), 1u);
  for (PageId p = 0; p < 5; ++p) EXPECT_EQ(program->Frequency(p), 1u);
}

TEST(FlatGeneratorTest, RejectsZeroPages) {
  EXPECT_FALSE(GenerateFlatProgram(0).ok());
}

TEST(SkewedGeneratorTest, Figure2SkewedProgram) {
  // "A A B C" (Figure 2b).
  auto layout = MakeLayout({1, 2}, {2, 1});
  auto program = GenerateSkewedProgram(*layout);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->slots(), (std::vector<PageId>{0, 0, 1, 2}));
}

TEST(SkewedGeneratorTest, SameBandwidthAsMultiDisk) {
  auto layout = MakeDeltaLayout({5, 10, 20}, 2);
  ASSERT_TRUE(layout.ok());
  auto skewed = GenerateSkewedProgram(*layout);
  auto multi = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(skewed.ok());
  ASSERT_TRUE(multi.ok());
  for (PageId p = 0; p < 35; ++p) {
    EXPECT_EQ(skewed->Frequency(p), multi->Frequency(p)) << "page " << p;
  }
}

TEST(RandomGeneratorTest, ServesEveryPage) {
  auto layout = MakeDeltaLayout({5, 10, 20}, 3);
  ASSERT_TRUE(layout.ok());
  Rng rng(101);
  auto program = GenerateRandomProgram(*layout, 200, &rng);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->period(), 200u);
  for (PageId p = 0; p < 35; ++p) {
    EXPECT_GE(program->Frequency(p), 1u) << "page " << p;
  }
}

TEST(RandomGeneratorTest, BandwidthSharesApproximatelyRespected) {
  auto layout = MakeDeltaLayout({10, 90}, 4);  // freqs 5, 1
  ASSERT_TRUE(layout.ok());
  Rng rng(102);
  auto program = GenerateRandomProgram(*layout, 50000, &rng);
  ASSERT_TRUE(program.ok());
  // Disk 0 pages should get ~5x the slots of disk 1 pages.
  double disk0 = 0, disk1 = 0;
  for (PageId p = 0; p < 10; ++p) disk0 += program->Frequency(p);
  for (PageId p = 10; p < 100; ++p) disk1 += program->Frequency(p);
  EXPECT_NEAR((disk0 / 10.0) / (disk1 / 90.0), 5.0, 0.5);
}

TEST(RandomGeneratorTest, RejectsTooShortPeriod) {
  auto layout = MakeDeltaLayout({5, 10}, 1);
  Rng rng(103);
  EXPECT_FALSE(GenerateRandomProgram(*layout, 10, &rng).ok());
}

TEST(RandomGeneratorTest, DeterministicInSeed) {
  auto layout = MakeDeltaLayout({5, 10}, 1);
  Rng rng1(7), rng2(7);
  auto p1 = GenerateRandomProgram(*layout, 100, &rng1);
  auto p2 = GenerateRandomProgram(*layout, 100, &rng2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->slots(), p2->slots());
}

TEST(DiskOfPagesTest, AssignsContiguousRanges) {
  DiskLayout layout{{2, 3}, {2, 1}};
  EXPECT_EQ(DiskOfPages(layout),
            (std::vector<DiskIndex>{0, 0, 1, 1, 1}));
}

// Property sweep: the Section-2.2 guarantees hold across a grid of
// layouts and deltas.
class MultiDiskProperty
    : public ::testing::TestWithParam<
          std::tuple<std::vector<uint64_t>, uint64_t>> {};

TEST_P(MultiDiskProperty, StructuralInvariants) {
  const auto& [sizes, delta] = GetParam();
  auto layout = MakeDeltaLayout(sizes, delta);
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  const uint64_t total = layout->TotalPages();
  ASSERT_EQ(program->num_pages(), total);

  uint64_t base = 0;
  for (uint64_t d = 0; d < layout->NumDisks(); ++d) {
    for (uint64_t i = 0; i < layout->sizes[d]; ++i) {
      const PageId p = static_cast<PageId>(base + i);
      // (1) Every page appears exactly rel_freq(disk) times per period.
      EXPECT_EQ(program->Frequency(p), layout->rel_freqs[d]);
      // (2) Fixed inter-arrival times for every page.
      EXPECT_TRUE(program->HasFixedInterArrival(p));
      // (3) Disk metadata is consistent.
      EXPECT_EQ(program->DiskOf(p), d);
    }
    base += layout->sizes[d];
  }
  // (4) Bandwidth accounting: page slots + empty slots = period.
  uint64_t used = 0;
  for (uint64_t d = 0; d < layout->NumDisks(); ++d) {
    used += layout->sizes[d] * layout->rel_freqs[d];
  }
  EXPECT_EQ(used + program->EmptySlots(), program->period());
}

INSTANTIATE_TEST_SUITE_P(
    LayoutGrid, MultiDiskProperty,
    ::testing::Combine(
        ::testing::Values(std::vector<uint64_t>{10},
                          std::vector<uint64_t>{3, 7},
                          std::vector<uint64_t>{5, 45},
                          std::vector<uint64_t>{9, 41},
                          std::vector<uint64_t>{25, 25},
                          std::vector<uint64_t>{3, 12, 35},
                          std::vector<uint64_t>{5, 20, 25},
                          std::vector<uint64_t>{1, 1, 1, 1},
                          std::vector<uint64_t>{7, 11, 13, 17}),
        ::testing::Values(0, 1, 2, 3, 5, 7)));

}  // namespace
}  // namespace bcast
