#include "broadcast/analysis.h"

#include <gtest/gtest.h>

#include "broadcast/generator.h"

namespace bcast {
namespace {

// The three Figure-2 programs over pages {A=0, B=1, C=2}.
BroadcastProgram Flat3() {
  auto p = GenerateFlatProgram(3);
  EXPECT_TRUE(p.ok());
  return std::move(*p);
}
BroadcastProgram Skewed3() {
  auto layout = MakeLayout({1, 2}, {2, 1});
  auto p = GenerateSkewedProgram(*layout);  // A A B C
  EXPECT_TRUE(p.ok());
  return std::move(*p);
}
BroadcastProgram Multi3() {
  auto layout = MakeLayout({1, 2}, {2, 1});
  auto p = GenerateMultiDiskProgram(*layout);  // A B A C
  EXPECT_TRUE(p.ok());
  return std::move(*p);
}

TEST(ExpectedDelayTest, FlatProgramHalfPeriod) {
  BroadcastProgram p = Flat3();
  for (PageId page = 0; page < 3; ++page) {
    EXPECT_DOUBLE_EQ(ExpectedDelay(p, page), 1.5);
  }
}

TEST(ExpectedDelayTest, SkewedPerPageDelays) {
  BroadcastProgram p = Skewed3();
  // A: gaps 1 and 3 -> (1 + 9) / (2*4) = 1.25.
  EXPECT_DOUBLE_EQ(ExpectedDelay(p, 0), 1.25);
  EXPECT_DOUBLE_EQ(ExpectedDelay(p, 1), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedDelay(p, 2), 2.0);
}

TEST(ExpectedDelayTest, MultiDiskPerPageDelays) {
  BroadcastProgram p = Multi3();
  EXPECT_DOUBLE_EQ(ExpectedDelay(p, 0), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedDelay(p, 1), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedDelay(p, 2), 2.0);
}

// Table 1 of the paper, all twelve cells.
struct Table1Case {
  std::vector<double> probs;
  double flat;
  double skewed;
  double multi;
};

class Table1Test : public ::testing::TestWithParam<Table1Case> {};

TEST_P(Table1Test, MatchesPaper) {
  const Table1Case& c = GetParam();
  EXPECT_NEAR(ExpectedDelayForDistribution(Flat3(), c.probs), c.flat, 1e-9);
  EXPECT_NEAR(ExpectedDelayForDistribution(Skewed3(), c.probs), c.skewed,
              1e-9);
  EXPECT_NEAR(ExpectedDelayForDistribution(Multi3(), c.probs), c.multi,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1Test,
    ::testing::Values(
        Table1Case{{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1.50, 1.75, 5.0 / 3},
        Table1Case{{0.50, 0.25, 0.25}, 1.50, 1.625, 1.50},
        Table1Case{{0.75, 0.125, 0.125}, 1.50, 1.4375, 1.25},
        Table1Case{{0.90, 0.05, 0.05}, 1.50, 1.325, 1.10}));

TEST(Table1PropertiesTest, UniformAccessFavorsFlat) {
  const std::vector<double> uniform{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const double flat = ExpectedDelayForDistribution(Flat3(), uniform);
  EXPECT_LT(flat, ExpectedDelayForDistribution(Skewed3(), uniform));
  EXPECT_LT(flat, ExpectedDelayForDistribution(Multi3(), uniform));
}

TEST(Table1PropertiesTest, MultiDiskAlwaysBeatsSkewed) {
  // The Bus Stop Paradox: for any access distribution, the regular
  // program is at least as good as the clustered one.
  for (double pa : {0.0, 0.2, 1.0 / 3, 0.5, 0.75, 0.9, 1.0}) {
    const std::vector<double> probs{pa, (1 - pa) / 2, (1 - pa) / 2};
    EXPECT_LE(ExpectedDelayForDistribution(Multi3(), probs),
              ExpectedDelayForDistribution(Skewed3(), probs) + 1e-12)
        << "pa = " << pa;
  }
}

TEST(Table1PropertiesTest, SkewFavorsMultiDiskOverFlat) {
  const std::vector<double> skewed_access{0.90, 0.05, 0.05};
  EXPECT_LT(ExpectedDelayForDistribution(Multi3(), skewed_access),
            ExpectedDelayForDistribution(Flat3(), skewed_access));
}

TEST(DelayVarianceTest, FixedGapsGiveUniformWaitVariance) {
  // With one gap G, the wait is Uniform(0, G): variance G^2 / 12.
  BroadcastProgram p = Flat3();
  EXPECT_NEAR(DelayVariance(p, 0), 9.0 / 12.0, 1e-12);
}

TEST(DelayVarianceTest, SkewIncreasesVariance) {
  EXPECT_GT(DelayVariance(Skewed3(), 0), DelayVariance(Multi3(), 0));
}

TEST(GapVarianceTest, ZeroIffFixedInterArrival) {
  EXPECT_DOUBLE_EQ(GapVariance(Multi3(), 0), 0.0);
  EXPECT_GT(GapVariance(Skewed3(), 0), 0.0);
}

TEST(LargeScaleTest, FlatFiveThousandPages) {
  auto p = GenerateFlatProgram(5000);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(ExpectedDelay(*p, 0), 2500.0);
  EXPECT_DOUBLE_EQ(ExpectedDelay(*p, 4999), 2500.0);
}

TEST(LargeScaleTest, D5AnalyticDelaysOrderedByDisk) {
  auto layout = MakeDeltaLayout({500, 2000, 2500}, 3);
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  const double fast = ExpectedDelay(*program, 0);
  const double mid = ExpectedDelay(*program, 600);
  const double slow = ExpectedDelay(*program, 3000);
  EXPECT_LT(fast, mid);
  EXPECT_LT(mid, slow);
  // Frequencies 7:4:1 -> delays scale inversely with frequency.
  EXPECT_NEAR(slow / fast, 7.0, 1e-9);
  EXPECT_NEAR(slow / mid, 4.0, 1e-9);
  EXPECT_NEAR(mid / fast, 7.0 / 4.0, 1e-9);
}

}  // namespace
}  // namespace bcast
