#include "broadcast/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "broadcast/analysis.h"
#include "broadcast/generator.h"
#include "common/zipf.h"

namespace bcast {
namespace {

std::vector<double> ZipfProbs(uint64_t access_range, uint64_t db_size,
                              double theta) {
  auto gen = RegionZipfGenerator::Make(access_range, 50, theta);
  EXPECT_TRUE(gen.ok());
  std::vector<double> probs(db_size, 0.0);
  for (uint64_t p = 0; p < access_range; ++p) {
    probs[p] = gen->Probability(p);
  }
  return probs;
}

TEST(AnalyticExpectedDelayTest, MatchesProgramAnalysis) {
  // The O(num_disks) closed form must agree with the per-page gap
  // analysis of the actually generated program.
  for (uint64_t delta : {0u, 1u, 3u, 5u}) {
    auto layout = MakeDeltaLayout({500, 2000, 2500}, delta);
    ASSERT_TRUE(layout.ok());
    auto program = GenerateMultiDiskProgram(*layout);
    ASSERT_TRUE(program.ok());
    const std::vector<double> probs = ZipfProbs(1000, 5000, 0.95);
    EXPECT_NEAR(AnalyticExpectedDelay(*layout, probs),
                ExpectedDelayForDistribution(*program, probs), 1e-9)
        << "delta " << delta;
  }
}

TEST(AnalyticExpectedDelayTest, FlatEqualsHalfPeriod) {
  auto layout = MakeDeltaLayout({5000}, 0);
  const std::vector<double> probs = ZipfProbs(1000, 5000, 0.95);
  EXPECT_DOUBLE_EQ(AnalyticExpectedDelay(*layout, probs), 2500.0);
}

TEST(SquareRootSharesTest, SharesSumToOne) {
  const std::vector<double> shares =
      SquareRootBandwidthShares({0.5, 0.3, 0.2});
  double sum = 0.0;
  for (double s : shares) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SquareRootSharesTest, ProportionalToSqrt) {
  const std::vector<double> shares = SquareRootBandwidthShares({0.64, 0.04});
  EXPECT_NEAR(shares[0] / shares[1], std::sqrt(0.64 / 0.04), 1e-12);
}

TEST(SquareRootSharesTest, ZeroProbabilityGetsZeroShare) {
  const std::vector<double> shares = SquareRootBandwidthShares({1.0, 0.0});
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
  EXPECT_DOUBLE_EQ(shares[0], 1.0);
}

TEST(SquareRootSharesTest, AllZeroStaysZero) {
  const std::vector<double> shares = SquareRootBandwidthShares({0.0, 0.0});
  EXPECT_DOUBLE_EQ(shares[0], 0.0);
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
}

TEST(OptimizeLayoutTest, RejectsBadInputs) {
  EXPECT_FALSE(OptimizeLayout({}, 2, 3).ok());
  EXPECT_FALSE(OptimizeLayout({0.5, 0.5}, 0, 3).ok());
  EXPECT_FALSE(OptimizeLayout({0.5, 0.5}, 3, 3).ok());
  // Unsorted probabilities rejected.
  EXPECT_FALSE(OptimizeLayout({0.1, 0.9}, 1, 1).ok());
}

TEST(OptimizeLayoutTest, SingleDiskIsFlat) {
  const std::vector<double> probs = ZipfProbs(100, 500, 0.95);
  auto result = OptimizeLayout(probs, 1, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->layout.NumDisks(), 1u);
  EXPECT_DOUBLE_EQ(result->expected_delay, 250.0);
}

TEST(OptimizeLayoutTest, UniformAccessPrefersFlat) {
  // With uniform probabilities, any skew hurts; the optimizer should
  // land on delta 0 (or an equivalent-cost layout).
  const std::vector<double> probs(500, 1.0 / 500);
  auto result = OptimizeLayout(probs, 2, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->expected_delay, 250.0, 1.0);
}

TEST(OptimizeLayoutTest, BeatsFlatOnSkewedAccess) {
  const std::vector<double> probs = ZipfProbs(1000, 5000, 0.95);
  auto result = OptimizeLayout(probs, 3, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->expected_delay, 2500.0 * 0.5)
      << "optimizer should at least halve the flat delay";
}

TEST(OptimizeLayoutTest, BeatsOrMatchesHandPickedD5) {
  const std::vector<double> probs = ZipfProbs(1000, 5000, 0.95);
  auto d5 = MakeDeltaLayout({500, 2000, 2500}, 3);
  ASSERT_TRUE(d5.ok());
  const double hand = AnalyticExpectedDelay(*d5, probs);
  auto result = OptimizeLayout(probs, 3, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->expected_delay, hand + 1e-9);
}

TEST(OptimizeLayoutTest, ReturnedDelayMatchesReturnedLayout) {
  const std::vector<double> probs = ZipfProbs(200, 1000, 0.95);
  auto result = OptimizeLayout(probs, 2, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->expected_delay,
              AnalyticExpectedDelay(result->layout, probs), 1e-9);
}

TEST(OptimizeLayoutTest, DeterministicAcrossCalls) {
  const std::vector<double> probs = ZipfProbs(200, 1000, 0.95);
  auto a = OptimizeLayout(probs, 3, 4);
  auto b = OptimizeLayout(probs, 3, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->layout.sizes, b->layout.sizes);
  EXPECT_EQ(a->delta, b->delta);
}

}  // namespace
}  // namespace bcast
