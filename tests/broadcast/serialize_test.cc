#include "broadcast/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "broadcast/generator.h"
#include "common/rng.h"

namespace bcast {
namespace {

std::string Save(const BroadcastProgram& program) {
  std::ostringstream out;
  EXPECT_TRUE(SaveProgram(program, &out).ok());
  return out.str();
}

Result<BroadcastProgram> Load(const std::string& text) {
  std::istringstream in(text);
  return LoadProgram(&in);
}

void ExpectSamePrograms(const BroadcastProgram& a,
                        const BroadcastProgram& b) {
  ASSERT_EQ(a.period(), b.period());
  ASSERT_EQ(a.num_pages(), b.num_pages());
  ASSERT_EQ(a.num_disks(), b.num_disks());
  EXPECT_EQ(a.slots(), b.slots());
  for (PageId p = 0; p < a.num_pages(); ++p) {
    EXPECT_EQ(a.DiskOf(p), b.DiskOf(p)) << "page " << p;
    EXPECT_EQ(a.Frequency(p), b.Frequency(p)) << "page " << p;
  }
}

TEST(SerializeTest, RoundTripsFlatProgram) {
  auto program = GenerateFlatProgram(20);
  ASSERT_TRUE(program.ok());
  auto loaded = Load(Save(*program));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSamePrograms(*program, *loaded);
}

TEST(SerializeTest, RoundTripsMultiDiskProgram) {
  auto layout = MakeDeltaLayout({3, 12, 35}, 3);
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  auto loaded = Load(Save(*program));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSamePrograms(*program, *loaded);
}

TEST(SerializeTest, RoundTripsProgramWithEmptySlots) {
  auto layout = MakeLayout({3, 2}, {3, 1});  // pads one empty slot
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  ASSERT_GT(program->EmptySlots(), 0u);
  auto loaded = Load(Save(*program));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->EmptySlots(), program->EmptySlots());
  ExpectSamePrograms(*program, *loaded);
}

TEST(SerializeTest, RoundTripsRandomProgram) {
  auto layout = MakeDeltaLayout({5, 20}, 2);
  Rng rng(3);
  auto program = GenerateRandomProgram(*layout, 100, &rng);
  ASSERT_TRUE(program.ok());
  auto loaded = Load(Save(*program));
  ASSERT_TRUE(loaded.ok());
  ExpectSamePrograms(*program, *loaded);
}

TEST(SerializeTest, FormatIsHumanReadable) {
  auto layout = MakeLayout({1, 2}, {2, 1});
  auto program = GenerateMultiDiskProgram(*layout);
  const std::string text = Save(*program);
  EXPECT_NE(text.find("bcast-program v1"), std::string::npos);
  EXPECT_NE(text.find("period 4 pages 3 disks 2"), std::string::npos);
  EXPECT_NE(text.find("slots 0 1 0 2"), std::string::npos);
  EXPECT_NE(text.find("diskof 0 1 1"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(SerializeTest, RejectsBadHeader) {
  EXPECT_FALSE(Load("not-a-program\n").ok());
  EXPECT_FALSE(Load("bcast-program v2\n").ok());
  EXPECT_FALSE(Load("").ok());
}

TEST(SerializeTest, RejectsMalformedSizeLine) {
  EXPECT_FALSE(Load("bcast-program v1\nperiod x pages 3 disks 1\n").ok());
  EXPECT_FALSE(Load("bcast-program v1\nperiod 0 pages 3 disks 1\n").ok());
}

TEST(SerializeTest, RejectsWrongSlotCount) {
  EXPECT_FALSE(
      Load("bcast-program v1\nperiod 3 pages 2 disks 1\nslots 0 1\nend\n")
          .ok());
}

TEST(SerializeTest, RejectsOutOfRangeSlot) {
  EXPECT_FALSE(
      Load("bcast-program v1\nperiod 2 pages 2 disks 1\nslots 0 5\nend\n")
          .ok());
}

TEST(SerializeTest, RejectsMissingDiskofForMultiDisk) {
  EXPECT_FALSE(
      Load("bcast-program v1\nperiod 2 pages 2 disks 2\nslots 0 1\nend\n")
          .ok());
}

TEST(SerializeTest, RejectsPageNeverBroadcast) {
  // Page 1 declared but absent: the loader must refuse (a client would
  // hang waiting for it).
  EXPECT_FALSE(
      Load("bcast-program v1\nperiod 2 pages 2 disks 1\nslots 0 0\nend\n")
          .ok());
}

TEST(SerializeTest, RejectsMissingEnd) {
  EXPECT_FALSE(
      Load("bcast-program v1\nperiod 2 pages 2 disks 1\nslots 0 1\n").ok());
}

TEST(SerializeTest, ErrorsCarryLineNumbers) {
  auto result =
      Load("bcast-program v1\nperiod 2 pages 2 disks 1\nslots 0 x\nend\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace bcast
