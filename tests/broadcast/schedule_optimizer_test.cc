#include "broadcast/schedule_optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "broadcast/analysis.h"
#include "broadcast/disk_config.h"
#include "broadcast/generator.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace bcast {
namespace {

std::vector<double> ZipfProbs(uint64_t access_range, uint64_t db_size,
                              double theta) {
  auto gen = RegionZipfGenerator::Make(access_range, 50, theta);
  EXPECT_TRUE(gen.ok());
  std::vector<double> probs(db_size, 0.0);
  for (uint64_t p = 0; p < access_range; ++p) {
    probs[p] = gen->Probability(p);
  }
  return probs;
}

// A random normalized hottest-first distribution; cubing the uniform
// draws skews it enough that frequency assignment actually matters.
std::vector<double> RandomSkewedProbs(Rng* rng, uint64_t n) {
  std::vector<double> probs(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const double u = rng->NextDouble();
    probs[i] = u * u * u + 1e-9;
    total += probs[i];
  }
  std::sort(probs.begin(), probs.end(), std::greater<double>());
  for (double& p : probs) p /= total;
  return probs;
}

// ---------------------------------------------------------------------------
// Registry.

TEST(RegistryTest, KnowsEveryAdvertisedName) {
  for (const std::string& name : ScheduleOptimizerNames()) {
    const ScheduleOptimizer* opt = FindScheduleOptimizer(name);
    ASSERT_NE(opt, nullptr) << name;
    EXPECT_EQ(opt->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNull) {
  EXPECT_EQ(FindScheduleOptimizer("simulated-annealing"), nullptr);
  EXPECT_EQ(FindScheduleOptimizer(""), nullptr);
}

// ---------------------------------------------------------------------------
// delta — must be the paper's build path re-expressed, bit for bit.

TEST(DeltaBuildTest, MatchesLegacyDeltaRulePath) {
  auto legacy_layout = MakeDeltaLayout({500, 2000, 2500}, 3);
  ASSERT_TRUE(legacy_layout.ok());
  auto legacy_program = GenerateMultiDiskProgram(*legacy_layout);
  ASSERT_TRUE(legacy_program.ok());

  OptimizerRequest request;
  request.disk_sizes = {500, 2000, 2500};
  request.delta = 3;
  auto built = FindScheduleOptimizer("delta")->Build(request);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->layout.sizes, legacy_layout->sizes);
  EXPECT_EQ(built->layout.rel_freqs, legacy_layout->rel_freqs);
  ASSERT_EQ(built->program.period(), legacy_program->period());
  for (SlotId s = 0; s < built->program.period(); ++s) {
    ASSERT_EQ(built->program.page_at(s), legacy_program->page_at(s))
        << "slot " << s;
  }
}

TEST(DeltaBuildTest, HonorsExplicitFrequencies) {
  OptimizerRequest request;
  request.disk_sizes = {1, 4, 4};
  request.rel_freqs = {4, 2, 1};
  auto built = FindScheduleOptimizer("delta")->Build(request);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->layout.rel_freqs, (std::vector<uint64_t>{4, 2, 1}));
}

TEST(DeltaBuildTest, PredictedDelayMatchesAnalytic) {
  OptimizerRequest request;
  request.disk_sizes = {500, 2000, 2500};
  request.delta = 3;
  request.probs = ZipfProbs(1000, 5000, 0.95);
  auto built = FindScheduleOptimizer("delta")->Build(request);
  ASSERT_TRUE(built.ok());
  EXPECT_NEAR(built->predicted_delay,
              AnalyticExpectedDelay(built->layout, request.probs), 1e-9);
}

TEST(DeltaBuildTest, RejectsProbsNotCoveringEveryPage) {
  OptimizerRequest request;
  request.disk_sizes = {10, 20};
  request.probs = std::vector<double>(7, 1.0 / 7);
  EXPECT_FALSE(FindScheduleOptimizer("delta")->Build(request).ok());
}

// ---------------------------------------------------------------------------
// Design — the layout search behind every optimizer.

TEST(DesignTest, RejectsBadInputs) {
  const ScheduleOptimizer* delta = FindScheduleOptimizer("delta");
  OptimizerRequest request;
  request.num_disks = 2;
  EXPECT_FALSE(delta->Design(request).ok());  // no probabilities
  request.probs = {0.5, 0.5};
  request.num_disks = 0;
  EXPECT_FALSE(delta->Design(request).ok());
  request.num_disks = 3;
  EXPECT_FALSE(delta->Design(request).ok());  // more disks than pages
  request.probs = {0.1, 0.9};                 // unsorted
  request.num_disks = 1;
  EXPECT_FALSE(delta->Design(request).ok());
}

TEST(DesignTest, SingleDiskIsFlat) {
  OptimizerRequest request;
  request.probs = ZipfProbs(100, 500, 0.95);
  request.num_disks = 1;
  request.max_delta = 5;
  auto result = FindScheduleOptimizer("delta")->Design(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->layout.NumDisks(), 1u);
  EXPECT_DOUBLE_EQ(result->predicted_delay, 250.0);
}

TEST(DesignTest, UniformAccessPrefersFlat) {
  // With uniform probabilities, any skew hurts; the search should land
  // on delta 0 (or an equivalent-cost layout).
  OptimizerRequest request;
  request.probs = std::vector<double>(500, 1.0 / 500);
  request.num_disks = 2;
  request.max_delta = 5;
  auto result = FindScheduleOptimizer("delta")->Design(request);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->predicted_delay, 250.0, 1.0);
}

TEST(DesignTest, BeatsFlatOnSkewedAccess) {
  OptimizerRequest request;
  request.probs = ZipfProbs(1000, 5000, 0.95);
  request.num_disks = 3;
  request.max_delta = 7;
  auto result = FindScheduleOptimizer("delta")->Design(request);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->predicted_delay, 2500.0 * 0.5)
      << "the search should at least halve the flat delay";
}

TEST(DesignTest, BeatsOrMatchesHandPickedD5) {
  const std::vector<double> probs = ZipfProbs(1000, 5000, 0.95);
  auto d5 = MakeDeltaLayout({500, 2000, 2500}, 3);
  ASSERT_TRUE(d5.ok());
  const double hand = AnalyticExpectedDelay(*d5, probs);
  OptimizerRequest request;
  request.probs = probs;
  request.num_disks = 3;
  request.max_delta = 7;
  auto result = FindScheduleOptimizer("delta")->Design(request);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->predicted_delay, hand + 1e-9);
}

TEST(DesignTest, ReturnedDelayMatchesReturnedLayout) {
  OptimizerRequest request;
  request.probs = ZipfProbs(200, 1000, 0.95);
  request.num_disks = 2;
  request.max_delta = 4;
  auto result = FindScheduleOptimizer("delta")->Design(request);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->predicted_delay,
              AnalyticExpectedDelay(result->layout, request.probs), 1e-9);
}

TEST(DesignTest, DeterministicAcrossCalls) {
  OptimizerRequest request;
  request.probs = ZipfProbs(200, 1000, 0.95);
  request.num_disks = 3;
  request.max_delta = 4;
  auto a = FindScheduleOptimizer("delta")->Design(request);
  auto b = FindScheduleOptimizer("delta")->Design(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->layout.sizes, b->layout.sizes);
  EXPECT_EQ(a->layout.rel_freqs, b->layout.rel_freqs);
}

// ---------------------------------------------------------------------------
// Analytic machinery.

TEST(AnalyticExpectedDelayTest, MatchesProgramAnalysis) {
  // The O(num_disks) closed form must agree with the per-page gap
  // analysis of the actually generated program.
  for (uint64_t delta : {0u, 1u, 3u, 5u}) {
    auto layout = MakeDeltaLayout({500, 2000, 2500}, delta);
    ASSERT_TRUE(layout.ok());
    auto program = GenerateMultiDiskProgram(*layout);
    ASSERT_TRUE(program.ok());
    const std::vector<double> probs = ZipfProbs(1000, 5000, 0.95);
    EXPECT_NEAR(AnalyticExpectedDelay(*layout, probs),
                ExpectedDelayForDistribution(*program, probs), 1e-9)
        << "delta " << delta;
  }
}

TEST(AnalyticExpectedDelayTest, FlatEqualsHalfPeriod) {
  auto layout = MakeDeltaLayout({5000}, 0);
  const std::vector<double> probs = ZipfProbs(1000, 5000, 0.95);
  EXPECT_DOUBLE_EQ(AnalyticExpectedDelay(*layout, probs), 2500.0);
}

TEST(SquareRootSharesTest, SharesSumToOne) {
  const std::vector<double> shares =
      SquareRootBandwidthShares({0.5, 0.3, 0.2});
  double sum = 0.0;
  for (double s : shares) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SquareRootSharesTest, ProportionalToSqrt) {
  const std::vector<double> shares = SquareRootBandwidthShares({0.64, 0.04});
  EXPECT_NEAR(shares[0] / shares[1], std::sqrt(0.64 / 0.04), 1e-12);
}

TEST(SquareRootSharesTest, ZeroProbabilityGetsZeroShare) {
  const std::vector<double> shares = SquareRootBandwidthShares({1.0, 0.0});
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
  EXPECT_DOUBLE_EQ(shares[0], 1.0);
}

TEST(SquareRootSharesTest, AllZeroStaysZero) {
  const std::vector<double> shares = SquareRootBandwidthShares({0.0, 0.0});
  EXPECT_DOUBLE_EQ(shares[0], 0.0);
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
}

// ---------------------------------------------------------------------------
// ksy.

TEST(KsyTest, RejectsExplicitFrequencies) {
  OptimizerRequest request;
  request.disk_sizes = {10, 20};
  request.rel_freqs = {2, 1};
  request.probs = std::vector<double>(30, 1.0 / 30);
  EXPECT_FALSE(FindScheduleOptimizer("ksy")->Build(request).ok());
}

TEST(KsyTest, RejectsMissingProbabilities) {
  OptimizerRequest request;
  request.disk_sizes = {10, 20};
  EXPECT_FALSE(FindScheduleOptimizer("ksy")->Build(request).ok());
}

TEST(KsyTest, PredictedDelayMatchesReturnedLayout) {
  OptimizerRequest request;
  request.disk_sizes = {50, 150, 300};
  request.probs = ZipfProbs(100, 500, 0.95);
  auto built = FindScheduleOptimizer("ksy")->Build(request);
  ASSERT_TRUE(built.ok());
  EXPECT_NEAR(built->predicted_delay,
              AnalyticExpectedDelay(built->layout, request.probs), 1e-9);
}

TEST(KsyTest, StrictlyBeatsDeltaOnPaperWorkload) {
  // The Δ-rule's arithmetic ladder (7,4,1 at best) is far from the
  // square-root optimum on the paper's skew; ksy must win outright.
  OptimizerRequest request;
  request.disk_sizes = {500, 2000, 2500};
  request.delta = 3;
  request.probs = ZipfProbs(1000, 5000, 0.95);
  auto delta = FindScheduleOptimizer("delta")->Build(request);
  auto ksy = FindScheduleOptimizer("ksy")->Build(request);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(ksy.ok());
  EXPECT_LT(ksy->predicted_delay, delta->predicted_delay);
}

TEST(KsyTest, NeverLosesToDeltaOnRandomizedSkew) {
  // Property: the Δ-rule frequency vector is one of ksy's candidates, so
  // for any hottest-first distribution and any partition, ksy's analytic
  // delay is at most delta's.
  Rng rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    const uint64_t n = 60 + rng.NextBounded(240);
    const uint64_t a = 1 + rng.NextBounded(n / 3);
    const uint64_t b = 1 + rng.NextBounded(n - a - 1);
    OptimizerRequest request;
    request.disk_sizes = {a, b, n - a - b};
    request.delta = 1 + rng.NextBounded(5);
    request.probs = RandomSkewedProbs(&rng, n);
    auto delta = FindScheduleOptimizer("delta")->Build(request);
    auto ksy = FindScheduleOptimizer("ksy")->Build(request);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ASSERT_TRUE(ksy.ok()) << ksy.status().ToString();
    EXPECT_LE(ksy->predicted_delay, delta->predicted_delay + 1e-9)
        << "trial " << trial << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// rbo.

TEST(RboTest, RejectsExplicitFrequencies) {
  OptimizerRequest request;
  request.rel_freqs = {2, 1};
  request.probs = std::vector<double>(30, 1.0 / 30);
  EXPECT_FALSE(FindScheduleOptimizer("rbo")->Build(request).ok());
}

TEST(RboTest, PeriodIsAPowerOfTwo) {
  OptimizerRequest request;
  request.probs = ZipfProbs(100, 300, 0.95);
  auto built = FindScheduleOptimizer("rbo")->Build(request);
  ASSERT_TRUE(built.ok());
  const uint64_t period = built->program.period();
  EXPECT_EQ(period & (period - 1), 0u);
}

TEST(RboTest, PredictedDelayMatchesProgramAnalysis) {
  OptimizerRequest request;
  request.probs = ZipfProbs(100, 300, 0.95);
  auto built = FindScheduleOptimizer("rbo")->Build(request);
  ASSERT_TRUE(built.ok());
  EXPECT_NEAR(built->predicted_delay,
              ExpectedDelayForDistribution(built->program, request.probs),
              1e-9);
}

TEST(RboTest, LocatorAgreesWithProgramOnFuzzedQueries) {
  // Property: for fuzzed (page, slot) queries, the O(1) residue
  // arithmetic names exactly the next slot where the materialized
  // program broadcasts the page.
  const std::vector<double> probs = ZipfProbs(100, 300, 0.95);
  auto locator = MakeRboLocator(probs, uint64_t{1} << 20);
  ASSERT_TRUE(locator.ok());
  OptimizerRequest request;
  request.probs = probs;
  auto built = FindScheduleOptimizer("rbo")->Build(request);
  ASSERT_TRUE(built.ok());
  const BroadcastProgram& program = built->program;
  ASSERT_EQ(program.period(), locator->period);

  auto next_by_scan = [&](PageId page, SlotId from) {
    for (SlotId s = from; s < from + locator->period; ++s) {
      if (program.page_at(s % locator->period) == page) return s;
    }
    ADD_FAILURE() << "page " << page << " never broadcast";
    return from;
  };
  Rng rng(7);
  for (int q = 0; q < 500; ++q) {
    const PageId page = static_cast<PageId>(rng.NextBounded(probs.size()));
    const SlotId from = rng.NextBounded(4 * locator->period);
    EXPECT_EQ(locator->NextSlot(page, from), next_by_scan(page, from))
        << "page " << page << " from slot " << from;
  }
}

// ---------------------------------------------------------------------------
// Cross-optimizer properties.

TEST(FrontierTest, EveryOptimizerBroadcastsWithFixedInterArrival) {
  // The Bus Stop Paradox: gap variance only ever hurts, so every
  // optimizer in the registry must emit zero-variance per-page gaps.
  const std::vector<double> probs = ZipfProbs(100, 400, 0.95);
  for (const std::string& name : ScheduleOptimizerNames()) {
    OptimizerRequest request;
    request.disk_sizes = {50, 120, 230};
    request.probs = probs;
    auto built = FindScheduleOptimizer(name)->Build(request);
    ASSERT_TRUE(built.ok()) << name << ": " << built.status().ToString();
    for (PageId p = 0; p < 400; ++p) {
      ASSERT_DOUBLE_EQ(GapVariance(built->program, p), 0.0)
          << name << " page " << p;
    }
  }
}

TEST(FrontierTest, EveryOptimizerReportsItsOwnLayoutsDelay) {
  const std::vector<double> probs = ZipfProbs(100, 400, 0.95);
  for (const std::string& name : ScheduleOptimizerNames()) {
    OptimizerRequest request;
    request.disk_sizes = {50, 120, 230};
    request.probs = probs;
    auto built = FindScheduleOptimizer(name)->Build(request);
    ASSERT_TRUE(built.ok()) << name;
    EXPECT_NEAR(built->predicted_delay,
                ExpectedDelayForDistribution(built->program, probs), 1e-9)
        << name;
  }
}

}  // namespace
}  // namespace bcast
