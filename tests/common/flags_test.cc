#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace bcast {
namespace {

// Helper: parse a vector of C-string args.
Status ParseArgs(FlagSet* flags, std::vector<const char*> args) {
  return flags->Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagSetTest, ParsesAllTypesWithEquals) {
  uint64_t n = 1;
  double x = 0.5;
  std::string s = "a";
  bool b = false;
  FlagSet flags("t");
  flags.AddUint64("n", &n, "");
  flags.AddDouble("x", &x, "");
  flags.AddString("s", &s, "");
  flags.AddBool("b", &b, "");
  ASSERT_TRUE(
      ParseArgs(&flags, {"--n=42", "--x=2.5", "--s=hello", "--b=true"})
          .ok());
  EXPECT_EQ(n, 42u);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(FlagSetTest, ParsesSpaceSeparatedValues) {
  uint64_t n = 0;
  FlagSet flags("t");
  flags.AddUint64("n", &n, "");
  ASSERT_TRUE(ParseArgs(&flags, {"--n", "7"}).ok());
  EXPECT_EQ(n, 7u);
}

TEST(FlagSetTest, BareBoolFlagIsTrue) {
  bool b = false;
  FlagSet flags("t");
  flags.AddBool("verbose", &b, "");
  ASSERT_TRUE(ParseArgs(&flags, {"--verbose"}).ok());
  EXPECT_TRUE(b);
}

TEST(FlagSetTest, BoolAcceptsSpellings) {
  bool b = true;
  FlagSet flags("t");
  flags.AddBool("b", &b, "");
  ASSERT_TRUE(ParseArgs(&flags, {"--b=false"}).ok());
  EXPECT_FALSE(b);
  ASSERT_TRUE(ParseArgs(&flags, {"--b=yes"}).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(ParseArgs(&flags, {"--b=0"}).ok());
  EXPECT_FALSE(b);
}

TEST(FlagSetTest, RejectsUnknownFlag) {
  FlagSet flags("t");
  EXPECT_FALSE(ParseArgs(&flags, {"--nope=1"}).ok());
}

TEST(FlagSetTest, RejectsPositionalArguments) {
  FlagSet flags("t");
  EXPECT_FALSE(ParseArgs(&flags, {"positional"}).ok());
}

TEST(FlagSetTest, RejectsMissingValue) {
  uint64_t n = 0;
  FlagSet flags("t");
  flags.AddUint64("n", &n, "");
  EXPECT_FALSE(ParseArgs(&flags, {"--n"}).ok());
}

TEST(FlagSetTest, RejectsMalformedNumbers) {
  uint64_t n = 0;
  double x = 0;
  FlagSet flags("t");
  flags.AddUint64("n", &n, "");
  flags.AddDouble("x", &x, "");
  EXPECT_FALSE(ParseArgs(&flags, {"--n=12abc"}).ok());
  EXPECT_FALSE(ParseArgs(&flags, {"--n=-3"}).ok());
  EXPECT_FALSE(ParseArgs(&flags, {"--x=abc"}).ok());
}

TEST(FlagSetTest, HelpRequested) {
  FlagSet flags("t");
  ASSERT_TRUE(ParseArgs(&flags, {"--help"}).ok());
  EXPECT_TRUE(flags.help_requested());
}

TEST(FlagSetTest, HelpTextListsFlagsAndDefaults) {
  uint64_t n = 42;
  FlagSet flags("mytool");
  flags.AddUint64("widgets", &n, "how many widgets");
  const std::string help = flags.HelpText();
  EXPECT_NE(help.find("mytool"), std::string::npos);
  EXPECT_NE(help.find("--widgets"), std::string::npos);
  EXPECT_NE(help.find("how many widgets"), std::string::npos);
  EXPECT_NE(help.find("42"), std::string::npos);
}

TEST(FlagSetTest, EmptyStringValueAllowed) {
  std::string s = "default";
  FlagSet flags("t");
  flags.AddString("s", &s, "");
  ASSERT_TRUE(ParseArgs(&flags, {"--s="}).ok());
  EXPECT_EQ(s, "");
}

TEST(FlagSetTest, WasSetTracksPresenceNotValue) {
  // Coherence checks (e.g. "--burst_len needs --loss") must fire on
  // set-ness: `--loss=0` is an explicit choice, absence is not.
  double loss = 0.0;
  uint64_t burst = 1;
  FlagSet flags("t");
  flags.AddDouble("loss", &loss, "");
  flags.AddUint64("burst_len", &burst, "");
  EXPECT_FALSE(flags.WasSet("loss"));  // before any parse
  ASSERT_TRUE(ParseArgs(&flags, {"--loss=0", "--burst_len", "4"}).ok());
  EXPECT_TRUE(flags.WasSet("loss"));  // set to its default value
  EXPECT_TRUE(flags.WasSet("burst_len"));
}

TEST(FlagSetTest, WasSetIsFalseForAbsentAndUnknownNames) {
  uint64_t n = 0;
  FlagSet flags("t");
  flags.AddUint64("n", &n, "");
  ASSERT_TRUE(ParseArgs(&flags, {}).ok());
  EXPECT_FALSE(flags.WasSet("n"));
  EXPECT_FALSE(flags.WasSet("never_registered"));
}

TEST(FlagSetDeathTest, DuplicateFlagDies) {
  uint64_t n = 0;
  FlagSet flags("t");
  flags.AddUint64("n", &n, "");
  EXPECT_DEATH(flags.AddUint64("n", &n, ""), "duplicate");
}

// --- ParseUint64List (string_util) ---

TEST(ParseUint64ListTest, ParsesPaperConfigs) {
  auto list = ParseUint64List("500,2000,2500");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<uint64_t>{500, 2000, 2500}));
}

TEST(ParseUint64ListTest, SingleValue) {
  EXPECT_EQ(*ParseUint64List("5000"), (std::vector<uint64_t>{5000}));
}

TEST(ParseUint64ListTest, RejectsBadInput) {
  EXPECT_FALSE(ParseUint64List("").ok());
  EXPECT_FALSE(ParseUint64List("1,,2").ok());
  EXPECT_FALSE(ParseUint64List("1,a").ok());
  EXPECT_FALSE(ParseUint64List("-1").ok());
  EXPECT_FALSE(ParseUint64List("1 2").ok());
  EXPECT_FALSE(ParseUint64List("99999999999999999999999").ok());
}

}  // namespace
}  // namespace bcast
