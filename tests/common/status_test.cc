#include "common/status.h"

#include <gtest/gtest.h>

namespace bcast {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactoryEqualsDefault) {
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "invalid argument: bad knob");
}

TEST(StatusTest, AllNamedConstructorsProduceTheirCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::OK());
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status a = Status::Internal("boom");
  Status b = a;  // shares rep
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value(), 41);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(*r, "ab");
  r->push_back('c');
  EXPECT_EQ(*r, "abc");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AccessingErrorValueDies) {
  Result<int> r(Status::Internal("no value"));
  EXPECT_DEATH({ (void)r.value(); }, "errored Result");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = []() { return Status::OutOfRange("deep"); };
  auto outer = [&]() -> Status {
    BCAST_RETURN_IF_ERROR(fails());
    return Status::Internal("unreached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  auto succeeds = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    BCAST_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "invalid argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "unimplemented");
}

}  // namespace
}  // namespace bcast
