#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bcast {
namespace {

TEST(CsvTest, PlainFieldsUnquoted) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"a", "b", "42"});
  EXPECT_EQ(out.str(), "a,b,42\n");
}

TEST(CsvTest, FieldsWithCommasQuoted) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(CsvTest, EmbeddedQuotesDoubled) {
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, NewlinesQuoted) {
  EXPECT_EQ(CsvWriter::EscapeField("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::EscapeField("a\rb"), "\"a\rb\"");
}

TEST(CsvTest, EmptyFieldStaysEmpty) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"", "x", ""});
  EXPECT_EQ(out.str(), ",x,\n");
}

TEST(CsvTest, EmptyRowIsBlankLine) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({});
  EXPECT_EQ(out.str(), "\n");
}

TEST(CsvTest, RowCountTracksHeadersAndRows) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteHeader({"x", "y"});
  csv.WriteRow({"1", "2"});
  csv.WriteRow({"3", "4"});
  EXPECT_EQ(csv.rows_written(), 3u);
}

}  // namespace
}  // namespace bcast
