#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace bcast {
namespace {

TEST(RunningStatTest, EmptyState) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatTest, SingleObservation) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Rng rng(77);
  RunningStat whole, part1, part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    whole.Add(x);
    (i < 400 ? part1 : part2).Add(x);
  }
  part1.Merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat a_copy = a;
  a.Merge(b);  // empty other: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty this: adopt other
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatTest, Ci95ShrinksWithSamples) {
  Rng rng(78);
  RunningStat small, large;
  for (int i = 0; i < 100; ++i) small.Add(rng.NextDouble());
  for (int i = 0; i < 10000; ++i) large.Add(rng.NextDouble());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_GT(small.ci95_halfwidth(), 0.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(10.0, 5);  // [0,50) + overflow
  h.Add(0.0);
  h.Add(9.99);
  h.Add(10.0);
  h.Add(49.9);
  h.Add(50.0);
  h.Add(1000.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.overflow_count(), 2u);
}

TEST(HistogramTest, NegativeClampsToFirstBucket) {
  Histogram h(1.0, 3);
  h.Add(-5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(HistogramTest, BucketLowerEdges) {
  Histogram h(2.5, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(3), 7.5);
}

TEST(HistogramTest, QuantileOnEmptyIsZero) {
  Histogram h(1.0, 10);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileApproximatesUniform) {
  Histogram h(1.0, 100);
  Rng rng(79);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble() * 100.0);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.1), 10.0, 2.0);
}

TEST(HistogramTest, QuantileClampsArgument) {
  Histogram h(1.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  EXPECT_GE(h.Quantile(-1.0), 0.0);
  EXPECT_LE(h.Quantile(2.0), 4.0);
}

}  // namespace
}  // namespace bcast
