#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace bcast {
namespace {

TEST(SplitMix64Test, KnownVector) {
  // Reference values for splitmix64 seeded with 0 (from Vigna's reference
  // implementation).
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(&state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(&state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64(&state), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Next());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(RngTest, ReseedRestartsTheStream) {
  Rng rng(9);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(9);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(13);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], n / static_cast<int>(bound), 600)
        << "bucket " << b;
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextIntSingleton) {
  Rng rng(18);
  EXPECT_EQ(rng.NextInt(42, 42), 42);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(21);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  const double mean = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextExponential(mean);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(99);
  Rng s1 = parent.Split(1);
  Rng s2 = parent.Split(2);
  Rng s1_again = parent.Split(1);
  EXPECT_EQ(s1.Next(), s1_again.Next());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1.Next() == s2.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng a(4), b(4);
  (void)a.Split(7);
  EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace bcast
