#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace bcast {
namespace {

TEST(ZipfTest, RejectsBadArguments) {
  EXPECT_FALSE(ZipfDistribution::Make(0, 1.0).ok());
  EXPECT_FALSE(ZipfDistribution::Make(10, -0.1).ok());
  EXPECT_FALSE(ZipfDistribution::Make(10, std::nan("")).ok());
  EXPECT_TRUE(ZipfDistribution::Make(1, 0.0).ok());
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  auto zipf = ZipfDistribution::Make(100, 0.95);
  ASSERT_TRUE(zipf.ok());
  double total = 0.0;
  for (uint64_t r = 1; r <= 100; ++r) total += zipf->Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  auto zipf = ZipfDistribution::Make(50, 0.0);
  ASSERT_TRUE(zipf.ok());
  for (uint64_t r = 1; r <= 50; ++r) {
    EXPECT_NEAR(zipf->Probability(r), 1.0 / 50.0, 1e-12);
  }
}

TEST(ZipfTest, ProbabilityRatioMatchesPowerLaw) {
  const double theta = 0.95;
  auto zipf = ZipfDistribution::Make(10, theta);
  ASSERT_TRUE(zipf.ok());
  // P(i)/P(j) = (j/i)^theta.
  EXPECT_NEAR(zipf->Probability(1) / zipf->Probability(2),
              std::pow(2.0, theta), 1e-9);
  EXPECT_NEAR(zipf->Probability(2) / zipf->Probability(6),
              std::pow(3.0, theta), 1e-9);
}

TEST(ZipfTest, ProbabilitiesDecreaseWithRank) {
  auto zipf = ZipfDistribution::Make(100, 1.2);
  ASSERT_TRUE(zipf.ok());
  for (uint64_t r = 2; r <= 100; ++r) {
    EXPECT_LT(zipf->Probability(r), zipf->Probability(r - 1));
  }
}

TEST(ZipfTest, SampleFrequenciesMatchProbabilities) {
  auto zipf = ZipfDistribution::Make(20, 0.95);
  ASSERT_TRUE(zipf.ok());
  Rng rng(31);
  const int n = 200000;
  std::vector<int> counts(21, 0);
  for (int i = 0; i < n; ++i) {
    const uint64_t r = zipf->Sample(&rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 20u);
    ++counts[r];
  }
  for (uint64_t r = 1; r <= 20; ++r) {
    const double expected = zipf->Probability(r) * n;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 5)
        << "rank " << r;
  }
}

TEST(ZipfTest, SingleRankAlwaysSampled) {
  auto zipf = ZipfDistribution::Make(1, 0.95);
  ASSERT_TRUE(zipf.ok());
  Rng rng(32);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf->Sample(&rng), 1u);
}

// --- Region variant (the paper's client access distribution) ---

TEST(RegionZipfTest, RejectsBadArguments) {
  EXPECT_FALSE(RegionZipfGenerator::Make(0, 50, 0.95).ok());
  EXPECT_FALSE(RegionZipfGenerator::Make(1000, 0, 0.95).ok());
  EXPECT_FALSE(RegionZipfGenerator::Make(1000, 50, -1.0).ok());
}

TEST(RegionZipfTest, PaperConfigurationHasTwentyRegions) {
  auto gen = RegionZipfGenerator::Make(1000, 50, 0.95);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->num_regions(), 20u);
  EXPECT_EQ(gen->access_range(), 1000u);
}

TEST(RegionZipfTest, ProbabilitiesSumToOne) {
  auto gen = RegionZipfGenerator::Make(1000, 50, 0.95);
  ASSERT_TRUE(gen.ok());
  double total = 0.0;
  for (uint64_t p = 0; p < 1000; ++p) total += gen->Probability(p);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RegionZipfTest, UniformWithinRegion) {
  auto gen = RegionZipfGenerator::Make(1000, 50, 0.95);
  ASSERT_TRUE(gen.ok());
  for (uint64_t p = 0; p + 1 < 50; ++p) {
    EXPECT_DOUBLE_EQ(gen->Probability(p), gen->Probability(p + 1));
  }
  for (uint64_t p = 950; p + 1 < 1000; ++p) {
    EXPECT_DOUBLE_EQ(gen->Probability(p), gen->Probability(p + 1));
  }
}

TEST(RegionZipfTest, RegionsFollowZipfRatios) {
  const double theta = 0.95;
  auto gen = RegionZipfGenerator::Make(1000, 50, theta);
  ASSERT_TRUE(gen.ok());
  // Page 0 is in region 1, page 50 in region 2 (equal-size regions):
  // per-page probability ratio equals the region-weight ratio 2^theta.
  EXPECT_NEAR(gen->Probability(0) / gen->Probability(50),
              std::pow(2.0, theta), 1e-9);
}

TEST(RegionZipfTest, ZeroOutsideAccessRange) {
  auto gen = RegionZipfGenerator::Make(1000, 50, 0.95);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->Probability(1000), 0.0);
  EXPECT_EQ(gen->Probability(4999), 0.0);
}

TEST(RegionZipfTest, PartialFinalRegionIsHandled) {
  // 130 pages, regions of 50: regions of 50, 50, and 30 pages.
  auto gen = RegionZipfGenerator::Make(130, 50, 0.95);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->num_regions(), 3u);
  double total = 0.0;
  for (uint64_t p = 0; p < 130; ++p) total += gen->Probability(p);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Pages in the final 30-page region share that region's weight.
  EXPECT_DOUBLE_EQ(gen->Probability(100), gen->Probability(129));
}

TEST(RegionZipfTest, SamplesStayInRangeAndMatchDistribution) {
  auto gen = RegionZipfGenerator::Make(200, 50, 0.95);
  ASSERT_TRUE(gen.ok());
  Rng rng(33);
  const int n = 200000;
  std::vector<int> region_counts(4, 0);
  for (int i = 0; i < n; ++i) {
    const uint64_t p = gen->Sample(&rng);
    ASSERT_LT(p, 200u);
    ++region_counts[p / 50];
  }
  for (uint64_t r = 0; r < 4; ++r) {
    const double expected = gen->Probability(r * 50) * 50 * n;
    EXPECT_NEAR(region_counts[r], expected, 5 * std::sqrt(expected) + 5);
  }
}

TEST(RegionZipfTest, HigherThetaIsMoreSkewed) {
  auto mild = RegionZipfGenerator::Make(1000, 50, 0.5);
  auto steep = RegionZipfGenerator::Make(1000, 50, 1.5);
  ASSERT_TRUE(mild.ok());
  ASSERT_TRUE(steep.ok());
  EXPECT_GT(steep->Probability(0), mild->Probability(0));
  EXPECT_LT(steep->Probability(999), mild->Probability(999));
}

}  // namespace
}  // namespace bcast
