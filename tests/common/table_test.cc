#include "common/table.h"

#include <gtest/gtest.h>

namespace bcast {
namespace {

TEST(AsciiTableTest, HeaderAndRule) {
  AsciiTable t({"Name", "Value"});
  t.AddRow({"flat", "2500.0"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("Value"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("flat"), std::string::npos);
}

TEST(AsciiTableTest, NumericCellsRightAligned) {
  AsciiTable t({"Policy", "RT"});
  t.AddRow({"LIX", "9.5"});
  t.AddRow({"P", "12345.5"});
  const std::string s = t.ToString();
  // The short number is padded on the left to line up with the long one.
  EXPECT_NE(s.find("    9.5"), std::string::npos);
}

TEST(AsciiTableTest, TextCellsLeftAligned) {
  AsciiTable t({"Policy", "Note"});
  t.AddRow({"P", "short"});
  t.AddRow({"LIX-long-name", "x"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("P    "), std::string::npos);
}

TEST(AsciiTableTest, ShortRowsPadded) {
  AsciiTable t({"A", "B", "C"});
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
  // Should not crash and should render three columns.
  const std::string s = t.ToString();
  EXPECT_NE(s.find("A"), std::string::npos);
}

TEST(AsciiTableTest, ColumnsWidenToContent) {
  AsciiTable t({"X"});
  t.AddRow({"a-very-wide-cell"});
  const std::string s = t.ToString();
  // Rule must cover the widest cell.
  EXPECT_NE(s.find(std::string(16, '-')), std::string::npos);
}

TEST(AsciiTableTest, PercentagesCountAsNumeric) {
  AsciiTable t({"P", "Share"});
  t.AddRow({"LRU", "45.5%"});
  t.AddRow({"LIX", "5.1%"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find(" 5.1%"), std::string::npos);
}

TEST(AsciiTableDeathTest, TooManyCellsRejected) {
  AsciiTable t({"only"});
  EXPECT_DEATH(t.AddRow({"a", "b"}), "Check failed");
}

}  // namespace
}  // namespace bcast
