#include "common/math_util.h"

#include <gtest/gtest.h>

namespace bcast {
namespace {

TEST(GcdTest, Basics) {
  EXPECT_EQ(Gcd(12, 18), 6u);
  EXPECT_EQ(Gcd(18, 12), 6u);
  EXPECT_EQ(Gcd(7, 13), 1u);
  EXPECT_EQ(Gcd(0, 5), 5u);
  EXPECT_EQ(Gcd(5, 0), 5u);
  EXPECT_EQ(Gcd(0, 0), 0u);
  EXPECT_EQ(Gcd(42, 42), 42u);
}

TEST(LcmTest, Basics) {
  EXPECT_EQ(*Lcm(4, 6), 12u);
  EXPECT_EQ(*Lcm(7, 4), 28u);
  EXPECT_EQ(*Lcm(1, 1), 1u);
  // The paper's Section 2.2 example: rel freqs 3 and 2 -> max_chunks 6.
  EXPECT_EQ(*Lcm(3, 2), 6u);
}

TEST(LcmTest, ZeroRejected) {
  EXPECT_FALSE(Lcm(0, 3).ok());
  EXPECT_FALSE(Lcm(3, 0).ok());
}

TEST(LcmTest, OverflowDetected) {
  const uint64_t big = (1ULL << 63) + 1;  // odd, huge
  Result<uint64_t> r = Lcm(big, big - 2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(LcmOfAllTest, PaperExample) {
  // Figure 3: rel freqs 4, 2, 1 -> max_chunks 4.
  EXPECT_EQ(*LcmOfAll({4, 2, 1}), 4u);
  // Delta = 3 three-disk freqs 7, 4, 1 -> LCM 28.
  EXPECT_EQ(*LcmOfAll({7, 4, 1}), 28u);
  // The "141 for every 98" example: a very long period.
  EXPECT_EQ(*LcmOfAll({141, 98}), 13818u);
}

TEST(LcmOfAllTest, SingleAndEmptyAndZero) {
  EXPECT_EQ(*LcmOfAll({5}), 5u);
  EXPECT_FALSE(LcmOfAll({}).ok());
  EXPECT_FALSE(LcmOfAll({2, 0}).ok());
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(0, 3), 0u);
  EXPECT_EQ(CeilDiv(1, 3), 1u);
  EXPECT_EQ(CeilDiv(3, 3), 1u);
  EXPECT_EQ(CeilDiv(4, 3), 2u);
  // Section 2.2's padding: 2500 pages into 120 chunks -> 21-slot chunks.
  EXPECT_EQ(CeilDiv(2500, 120), 21u);
}

TEST(CheckedMulTest, DetectsOverflow) {
  EXPECT_EQ(*CheckedMul(3, 4), 12u);
  EXPECT_EQ(*CheckedMul(0, ~0ULL), 0u);
  EXPECT_FALSE(CheckedMul(1ULL << 33, 1ULL << 33).ok());
}

}  // namespace
}  // namespace bcast
