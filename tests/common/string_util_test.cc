#include "common/string_util.h"

#include <gtest/gtest.h>

namespace bcast {
namespace {

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "ab"), "x=3 y=ab");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, LongOutput) {
  const std::string big(500, 'z');
  EXPECT_EQ(StrFormat("%s!", big.c_str()), big + "!");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(2.0), "2.00");
  EXPECT_EQ(FormatDouble(2.5, 0), "2" /* rounds to even */);
  EXPECT_EQ(FormatDouble(1234.5678, 1), "1234.6");
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(SplitTest, Basics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitJoinTest, RoundTrip) {
  const std::vector<std::string> parts{"one", "two", "three"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("broadcast", "broad"));
  EXPECT_TRUE(StartsWith("broadcast", ""));
  EXPECT_FALSE(StartsWith("broad", "broadcast"));
  EXPECT_FALSE(StartsWith("broadcast", "cast"));
}

}  // namespace
}  // namespace bcast
