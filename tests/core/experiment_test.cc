#include "core/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bcast {
namespace {

SimParams TinyParams() {
  SimParams params;
  params.disk_sizes = {20, 80};
  params.delta = 2;
  params.access_range = 40;
  params.region_size = 4;
  params.cache_size = 1;
  params.measured_requests = 2000;
  return params;
}

TEST(SweepDeltaTest, ReturnsOneValuePerDelta) {
  auto values = SweepDelta(TinyParams(), {0, 1, 2, 3});
  ASSERT_TRUE(values.ok()) << values.status().ToString();
  ASSERT_EQ(values->size(), 4u);
  // Flat (delta 0) must be near half the database size.
  EXPECT_NEAR((*values)[0], 50.0, 8.0);
  // With a matched broadcast, skew helps this no-cache client.
  EXPECT_LT((*values)[3], (*values)[0]);
}

TEST(SweepDeltaTest, PropagatesErrors) {
  SimParams bad = TinyParams();
  bad.cache_size = 0;
  EXPECT_FALSE(SweepDelta(bad, {0, 1}).ok());
}

TEST(SweepNoiseTest, MoreNoiseNeverHelpsMatchedBroadcast) {
  auto values = SweepNoise(TinyParams(), {0.0, 50.0, 100.0});
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 3u);
  EXPECT_LT((*values)[0], (*values)[2]);
}

TEST(ReplicateResponseTest, AggregatesAcrossSeeds) {
  auto stat = ReplicateResponse(TinyParams(), 3);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->count(), 3u);
  EXPECT_GT(stat->mean(), 0.0);
  // Independent seeds should produce *some* spread.
  EXPECT_GT(stat->max(), stat->min());
}

TEST(PrintXYTableTest, RendersTitleHeadersAndValues) {
  std::ostringstream out;
  PrintXYTable(out, "Figure X", "Delta", {0.0, 1.0},
               {{"LRU", {10.0, 20.0}}, {"LIX", {5.0, 7.5}}});
  const std::string s = out.str();
  EXPECT_NE(s.find("Figure X"), std::string::npos);
  EXPECT_NE(s.find("Delta"), std::string::npos);
  EXPECT_NE(s.find("LRU"), std::string::npos);
  EXPECT_NE(s.find("20.0"), std::string::npos);
  EXPECT_NE(s.find("7.5"), std::string::npos);
}

TEST(PrintXYTableTest, IntegerXsPrintedWithoutDecimals) {
  std::ostringstream out;
  PrintXYTable(out, "T", "Delta", {3.0}, {{"S", {1.0}}});
  // The integral x renders as "3" (right-aligned), not "3.0".
  EXPECT_EQ(out.str().find("3.0"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find(" 3"), std::string::npos) << out.str();
}

TEST(PrintXYCsvTest, EmitsHeaderAndRows) {
  std::ostringstream out;
  PrintXYCsv(out, "delta", {0.0, 1.0}, {{"LRU", {10.0, 20.0}}}, 1);
  EXPECT_EQ(out.str(), "delta,LRU\n0.0,10.0\n1.0,20.0\n");
}

TEST(PrintLocationTableTest, RendersPercentages) {
  std::ostringstream out;
  PrintLocationTable(out, "Figure 11", {"P", "PIX"},
                     {{0.5, 0.2, 0.2, 0.1}, {0.4, 0.3, 0.2, 0.1}});
  const std::string s = out.str();
  EXPECT_NE(s.find("Cache%"), std::string::npos);
  EXPECT_NE(s.find("Disk3%"), std::string::npos);
  EXPECT_NE(s.find("50.0"), std::string::npos);
  EXPECT_NE(s.find("PIX"), std::string::npos);
}

TEST(PrintXYTableDeathTest, MismatchedSeriesDies) {
  std::ostringstream out;
  EXPECT_DEATH(
      PrintXYTable(out, "T", "x", {0.0, 1.0}, {{"S", {1.0}}}),
      "length mismatch");
}

}  // namespace
}  // namespace bcast
