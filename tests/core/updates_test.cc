#include "core/updates.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcast {
namespace {

SimParams SmallBase() {
  SimParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.access_range = 100;
  params.region_size = 5;
  params.cache_size = 50;
  params.policy = PolicyKind::kLix;
  params.measured_requests = 5000;
  return params;
}

// --- UpdateTracker ---

TEST(UpdateTrackerTest, RejectsBadInputs) {
  EXPECT_FALSE(UpdateTracker::Make(0, 1.0, 0.0, Rng(1)).ok());
  EXPECT_FALSE(UpdateTracker::Make(10, -1.0, 0.0, Rng(1)).ok());
  EXPECT_FALSE(UpdateTracker::Make(10, 1.0, -0.5, Rng(1)).ok());
}

TEST(UpdateTrackerTest, ZeroRateMeansNoUpdates) {
  auto tracker = UpdateTracker::Make(10, 0.0, 0.0, Rng(1));
  ASSERT_TRUE(tracker.ok());
  for (PageId p = 0; p < 10; ++p) {
    EXPECT_TRUE(std::isinf(tracker->LastUpdateBefore(p, 1e9)));
    EXPECT_LT(tracker->LastUpdateBefore(p, 1e9), 0.0);
  }
  EXPECT_EQ(tracker->updates_generated(), 0u);
}

TEST(UpdateTrackerTest, UpdatesAccumulateOverTime) {
  auto tracker = UpdateTracker::Make(4, 1.0, 0.0, Rng(2));
  ASSERT_TRUE(tracker.ok());
  // Rate 1 over 4 pages -> 0.25/page; by t=1000 each page has ~250.
  for (PageId p = 0; p < 4; ++p) {
    const double last = tracker->LastUpdateBefore(p, 1000.0);
    EXPECT_GT(last, 0.0);
    EXPECT_LE(last, 1000.0);
  }
  EXPECT_NEAR(static_cast<double>(tracker->updates_generated()), 1000.0,
              150.0);
}

TEST(UpdateTrackerTest, LastUpdateIsMonotone) {
  auto tracker = UpdateTracker::Make(2, 0.5, 0.0, Rng(3));
  ASSERT_TRUE(tracker.ok());
  double prev = -1e300;
  for (double t = 10.0; t <= 200.0; t += 10.0) {
    const double last = tracker->LastUpdateBefore(0, t);
    EXPECT_GE(last, prev);
    EXPECT_LE(last, t);
    prev = last;
  }
}

TEST(UpdateTrackerTest, SkewConcentratesUpdatesOnHotPages) {
  auto tracker = UpdateTracker::Make(100, 1.0, 1.2, Rng(4));
  ASSERT_TRUE(tracker.ok());
  // After a long horizon, page 0 must have been updated far more
  // recently on average than page 99. Compare recency at one instant.
  const double now = 100000.0;
  const double hot_age = now - tracker->LastUpdateBefore(0, now);
  const double cold_age = now - tracker->LastUpdateBefore(99, now);
  EXPECT_LT(hot_age, cold_age);
}

TEST(UpdateTrackerTest, DeterministicInSeed) {
  auto a = UpdateTracker::Make(8, 0.3, 0.95, Rng(9));
  auto b = UpdateTracker::Make(8, 0.3, 0.95, Rng(9));
  for (PageId p = 0; p < 8; ++p) {
    EXPECT_EQ(a->LastUpdateBefore(p, 500.0), b->LastUpdateBefore(p, 500.0));
  }
}

// --- RunUpdateSimulation ---

TEST(UpdateSimulationTest, ZeroRateMatchesReadOnlyBehaviour) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.0;
  auto result = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stale_hits, 0u);
  EXPECT_EQ(result->invalidation_refetches, 0u);
  EXPECT_EQ(result->requests, 5000u);
  EXPECT_GT(result->fresh_hits, 0u);
}

TEST(UpdateSimulationTest, CountsAreConsistent) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.1;
  updates.action = ConsistencyAction::kInvalidate;
  auto result = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fresh_hits + result->stale_hits +
                result->invalidation_refetches + result->cold_misses,
            result->requests);
}

TEST(UpdateSimulationTest, NoActionServesStaleData) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.2;
  updates.action = ConsistencyAction::kNone;
  auto result = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stale_hits, 0u);
  EXPECT_EQ(result->invalidation_refetches, 0u);
}

TEST(UpdateSimulationTest, InvalidationTradesStalenessForRefetches) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.2;
  updates.action = ConsistencyAction::kNone;
  auto none = RunUpdateSimulation(base, updates);
  updates.action = ConsistencyAction::kInvalidate;
  auto invalidate = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(none.ok());
  ASSERT_TRUE(invalidate.ok());
  EXPECT_LT(invalidate->StaleFraction(), none->StaleFraction() / 2.0);
  EXPECT_GT(invalidate->invalidation_refetches, 0u);
  // Consistency costs latency: re-fetches wait on the broadcast.
  EXPECT_GT(invalidate->mean_response_time, none->mean_response_time);
}

TEST(UpdateSimulationTest, AutoRefreshBeatsInvalidationOnStaleness) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.2;
  updates.action = ConsistencyAction::kInvalidate;
  auto invalidate = RunUpdateSimulation(base, updates);
  updates.action = ConsistencyAction::kAutoRefresh;
  auto refresh = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(invalidate.ok());
  ASSERT_TRUE(refresh.ok());
  // Auto-refresh keeps copies current without demand re-fetches...
  EXPECT_EQ(refresh->invalidation_refetches, 0u);
  EXPECT_LE(refresh->StaleFraction(), invalidate->StaleFraction() + 0.02);
  // ...so it also responds faster.
  EXPECT_LT(refresh->mean_response_time, invalidate->mean_response_time);
}

TEST(UpdateSimulationTest, MoreUpdatesMoreStaleness) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.action = ConsistencyAction::kNone;
  updates.update_rate = 0.02;
  auto low = RunUpdateSimulation(base, updates);
  updates.update_rate = 0.5;
  auto high = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(high->StaleFraction(), low->StaleFraction());
}

TEST(UpdateSimulationTest, DeterministicInSeed) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.1;
  auto a = RunUpdateSimulation(base, updates);
  auto b = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stale_hits, b->stale_hits);
  EXPECT_DOUBLE_EQ(a->mean_response_time, b->mean_response_time);
}

TEST(UpdateSimulationTest, RejectsBadRate) {
  UpdateParams updates;
  updates.update_rate = -0.1;
  EXPECT_FALSE(RunUpdateSimulation(SmallBase(), updates).ok());
}

// --- Disconnection model (Sleepers and Workaholics) ---

TEST(SleeperTest, RejectsInconsistentNapConfig) {
  UpdateParams updates;
  updates.awake_for = 100.0;  // sleep_for left 0
  EXPECT_FALSE(RunUpdateSimulation(SmallBase(), updates).ok());
  updates.awake_for = 0.0;
  updates.sleep_for = 100.0;
  EXPECT_FALSE(RunUpdateSimulation(SmallBase(), updates).ok());
  updates.awake_for = -1.0;
  EXPECT_FALSE(RunUpdateSimulation(SmallBase(), updates).ok());
}

TEST(SleeperTest, NapsAreCounted) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.05;
  updates.awake_for = 500.0;
  updates.sleep_for = 500.0;
  auto result = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->naps, 0u);
  EXPECT_EQ(result->requests, base.measured_requests);
}

TEST(SleeperTest, LongSleeperDistrustsPastTheWindow) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.05;
  updates.action = ConsistencyAction::kInvalidate;
  updates.invalidation_window_cycles = 2;
  updates.awake_for = 2000.0;
  // Sleep far longer than 2 cycles (period is ~1101 slots for this
  // config): every nap forces a distrust purge.
  updates.sleep_for = 10000.0;
  auto result = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->naps, 0u);
  EXPECT_EQ(result->distrust_purges, result->naps);
  EXPECT_GT(result->invalidation_refetches, 0u);
}

TEST(SleeperTest, ShortSleeperStaysInsideTheWindow) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.05;
  updates.action = ConsistencyAction::kInvalidate;
  updates.invalidation_window_cycles = 50;  // generous history
  updates.awake_for = 2000.0;
  updates.sleep_for = 2000.0;  // well under 50 cycles
  auto result = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->naps, 0u);
  EXPECT_EQ(result->distrust_purges, 0u);
}

TEST(SleeperTest, DistrustCostsResponseTime) {
  // Same nap pattern; bounded vs unbounded invalidation history. The
  // distrusting client refetches pages that were actually fine.
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.01;  // few real updates
  updates.action = ConsistencyAction::kInvalidate;
  updates.awake_for = 2000.0;
  updates.sleep_for = 10000.0;
  updates.invalidation_window_cycles = 0;  // unbounded: trust survives
  auto trusting = RunUpdateSimulation(base, updates);
  updates.invalidation_window_cycles = 2;  // bounded: distrust purges
  auto distrusting = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(trusting.ok());
  ASSERT_TRUE(distrusting.ok());
  EXPECT_GT(distrusting->invalidation_refetches,
            trusting->invalidation_refetches);
  EXPECT_GT(distrusting->mean_response_time,
            trusting->mean_response_time);
}

TEST(SleeperTest, AutoRefreshBanksRefreshesAcrossNaps) {
  // A napping auto-refresh client must not lose the refreshes it saw in
  // earlier awake windows: staleness stays far below serve-stale's.
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.05;
  updates.awake_for = 3000.0;
  updates.sleep_for = 3000.0;
  updates.action = ConsistencyAction::kAutoRefresh;
  auto refresh = RunUpdateSimulation(base, updates);
  updates.action = ConsistencyAction::kNone;
  auto none = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(refresh.ok());
  ASSERT_TRUE(none.ok());
  EXPECT_LT(refresh->StaleFraction(), none->StaleFraction() / 2.0);
}

TEST(SleeperTest, SleepingMoreServesStalerData) {
  SimParams base = SmallBase();
  UpdateParams updates;
  updates.update_rate = 0.05;
  updates.action = ConsistencyAction::kAutoRefresh;
  updates.awake_for = 2000.0;
  updates.sleep_for = 500.0;
  auto light = RunUpdateSimulation(base, updates);
  updates.sleep_for = 20000.0;
  auto heavy = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_GE(heavy->StaleFraction(), light->StaleFraction());
}

}  // namespace
}  // namespace bcast
