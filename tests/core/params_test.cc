#include "core/params.h"

#include <gtest/gtest.h>

namespace bcast {
namespace {

TEST(SimParamsTest, DefaultsAreValidAndMatchThePaper) {
  SimParams params;
  EXPECT_TRUE(params.Validate().ok());
  EXPECT_EQ(params.ServerDbSize(), 5000u);
  EXPECT_EQ(params.access_range, 1000u);
  EXPECT_EQ(params.region_size, 50u);
  EXPECT_DOUBLE_EQ(params.theta, 0.95);
  EXPECT_DOUBLE_EQ(params.think_time, 2.0);
}

TEST(SimParamsTest, RejectsEmptyDisks) {
  SimParams params;
  params.disk_sizes = {};
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsZeroDiskSize) {
  SimParams params;
  params.disk_sizes = {100, 0};
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsAccessRangeBeyondDb) {
  SimParams params;
  params.disk_sizes = {100};
  params.access_range = 101;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsZeroCache) {
  SimParams params;
  params.cache_size = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsBadNoise) {
  SimParams params;
  params.noise_percent = 150.0;
  EXPECT_FALSE(params.Validate().ok());
  params.noise_percent = -1.0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsBadOffset) {
  SimParams params;
  params.offset = 5001;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsMismatchedExplicitFreqs) {
  SimParams params;
  params.rel_freqs = {3, 2};  // three disks configured
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsIncreasingExplicitFreqs) {
  SimParams params;
  params.rel_freqs = {1, 2, 3};
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, AcceptsExplicitFreqs) {
  SimParams params;
  params.rel_freqs = {7, 4, 1};
  EXPECT_TRUE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsZeroMeasuredRequests) {
  SimParams params;
  params.measured_requests = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, RejectsNegativeThinkTime) {
  SimParams params;
  params.think_time = -1.0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SimParamsTest, ToStringMentionsKeyKnobs) {
  SimParams params;
  params.policy = PolicyKind::kLix;
  params.noise_percent = 30.0;
  const std::string s = params.ToString();
  EXPECT_NE(s.find("LIX"), std::string::npos);
  EXPECT_NE(s.find("noise=30%"), std::string::npos);
  EXPECT_NE(s.find("500,2000,2500"), std::string::npos);
}

}  // namespace
}  // namespace bcast
