#include "core/analytic_model.h"

#include <gtest/gtest.h>

#include "core/simulator.h"

namespace bcast {
namespace {

SimParams PaperPixParams() {
  SimParams params;
  params.cache_size = 500;
  params.offset = 500;
  params.policy = PolicyKind::kPix;
  params.delta = 3;
  // Cross-validation needs long runs: misses on the slowest disk are
  // rare (<1%) but cost thousands of units, so short runs have very
  // noisy means.
  params.measured_requests = 150000;
  return params;
}

TEST(AnalyticModelTest, RejectsHistoryDependentPolicies) {
  SimParams params = PaperPixParams();
  params.policy = PolicyKind::kLru;
  auto prediction = PredictResponse(params);
  EXPECT_FALSE(prediction.ok());
  EXPECT_EQ(prediction.status().code(), StatusCode::kUnimplemented);
}

TEST(AnalyticModelTest, AllowsAnyPolicyWhenCacheless) {
  SimParams params = PaperPixParams();
  params.policy = PolicyKind::kLru;
  params.cache_size = 1;
  EXPECT_TRUE(PredictResponse(params).ok());
}

TEST(AnalyticModelTest, FractionsSumToOne) {
  auto prediction = PredictResponse(PaperPixParams());
  ASSERT_TRUE(prediction.ok());
  double total = prediction->hit_rate;
  for (double f : prediction->disk_fractions) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(prediction->cached_pages.size(), 500u);
}

TEST(AnalyticModelTest, CachelessFlatDiskIsHalfDbPlusOne) {
  SimParams params;
  params.disk_sizes = {5000};
  params.delta = 0;
  params.cache_size = 1;
  auto prediction = PredictResponse(params);
  ASSERT_TRUE(prediction.ok());
  EXPECT_NEAR(prediction->response_time, 2501.0, 1e-9);
  EXPECT_DOUBLE_EQ(prediction->hit_rate, 0.0);
}

TEST(AnalyticModelTest, PCachesHottestPages) {
  SimParams params = PaperPixParams();
  params.policy = PolicyKind::kP;
  params.noise_percent = 0.0;
  auto prediction = PredictResponse(params);
  ASSERT_TRUE(prediction.ok());
  // P's steady state is exactly the 500 hottest logical pages.
  for (PageId l : prediction->cached_pages) EXPECT_LT(l, 500u);
}

TEST(AnalyticModelTest, MatchesSimulationNoCache) {
  for (uint64_t delta : {0u, 2u, 5u}) {
    SimParams params;
    params.cache_size = 1;
    params.delta = delta;
    params.measured_requests = 30000;
    auto prediction = PredictResponse(params);
    auto simulated = RunSimulation(params);
    ASSERT_TRUE(prediction.ok());
    ASSERT_TRUE(simulated.ok());
    EXPECT_NEAR(simulated->metrics.mean_response_time(),
                prediction->response_time,
                0.05 * prediction->response_time)
        << "delta " << delta;
  }
}

TEST(AnalyticModelTest, MatchesSimulationPixUnderNoise) {
  // The strongest cross-check: cache, offset AND noise all active. The
  // analytic model shares the noise realization but no simulation code.
  for (double noise : {0.0, 30.0, 60.0}) {
    SimParams params = PaperPixParams();
    params.noise_percent = noise;
    auto prediction = PredictResponse(params);
    auto simulated = RunSimulation(params);
    ASSERT_TRUE(prediction.ok());
    ASSERT_TRUE(simulated.ok());
    EXPECT_NEAR(simulated->metrics.mean_response_time(),
                prediction->response_time,
                0.09 * prediction->response_time + 5.0)
        << "noise " << noise;
    EXPECT_NEAR(simulated->metrics.hit_rate(), prediction->hit_rate, 0.03)
        << "noise " << noise;
  }
}

TEST(AnalyticModelTest, MatchesSimulationPWithOffset) {
  SimParams params = PaperPixParams();
  params.policy = PolicyKind::kP;
  params.noise_percent = 15.0;
  auto prediction = PredictResponse(params);
  auto simulated = RunSimulation(params);
  ASSERT_TRUE(prediction.ok());
  ASSERT_TRUE(simulated.ok());
  EXPECT_NEAR(simulated->metrics.mean_response_time(),
              prediction->response_time,
              0.09 * prediction->response_time + 5.0);
}

TEST(AnalyticModelTest, DiskFractionsMatchSimulation) {
  SimParams params = PaperPixParams();
  params.noise_percent = 30.0;
  auto prediction = PredictResponse(params);
  auto simulated = RunSimulation(params);
  ASSERT_TRUE(prediction.ok());
  ASSERT_TRUE(simulated.ok());
  const auto sim_fracs = simulated->metrics.LocationFractions();
  for (size_t d = 0; d < prediction->disk_fractions.size(); ++d) {
    EXPECT_NEAR(sim_fracs[d + 1], prediction->disk_fractions[d], 0.03)
        << "disk " << d;
  }
}

TEST(AnalyticModelTest, PredictsThePixAdvantage) {
  // The model alone reproduces Figure 10's qualitative content.
  SimParams params = PaperPixParams();
  params.noise_percent = 60.0;
  auto pix = PredictResponse(params);
  params.policy = PolicyKind::kP;
  auto p = PredictResponse(params);
  ASSERT_TRUE(pix.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_LT(pix->response_time, p->response_time);
}

}  // namespace
}  // namespace bcast
