#include "core/multi_client.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "core/simulator.h"

namespace bcast {
namespace {

// A small world that runs in milliseconds.
MultiClientParams SmallPopulation(size_t num_clients) {
  MultiClientParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.measured_requests = 2000;
  for (size_t c = 0; c < num_clients; ++c) {
    ClientSpec spec;
    spec.access_range = 100;
    spec.region_size = 5;
    spec.cache_size = 20;
    spec.policy = PolicyKind::kLix;
    params.clients.push_back(spec);
  }
  return params;
}

TEST(MultiClientValidationTest, RejectsEmptyPopulation) {
  MultiClientParams params = SmallPopulation(1);
  params.clients.clear();
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MultiClientValidationTest, RejectsBadClient) {
  MultiClientParams params = SmallPopulation(2);
  params.clients[1].cache_size = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = SmallPopulation(2);
  params.clients[0].interest_shift = 500;  // == DB size
  EXPECT_FALSE(params.Validate().ok());
  params = SmallPopulation(2);
  params.clients[0].access_range = 501;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MultiClientValidationTest, RejectsUnknownOptimizer) {
  MultiClientParams params = SmallPopulation(2);
  params.optimizer = "annealing";
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MultiClientValidationTest, NonDeltaOptimizerRejectsExplicitFreqs) {
  MultiClientParams params = SmallPopulation(2);
  params.optimizer = "ksy";
  params.rel_freqs = {5, 3, 1};
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MultiClientValidationTest, RejectsRboWithPull) {
  MultiClientParams params = SmallPopulation(2);
  params.optimizer = "rbo";
  params.pull.pull_slots = 2;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MultiClientValidationTest, RejectsReoptForPopulations) {
  MultiClientParams params = SmallPopulation(2);
  params.adapt.epoch_cycles = 2;
  params.adapt.reopt = true;
  const Status st = params.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("single-client only"), std::string::npos);
}

TEST(MultiClientTest, PopulationNominalProbsIsTheHottestFirstMean) {
  MultiClientParams params = SmallPopulation(3);
  params.clients[1].interest_shift = 200;  // shifts must NOT matter
  params.clients[2].noise_percent = 30.0;  // nor noise
  const std::vector<double> probs = PopulationNominalProbs(params);
  ASSERT_EQ(probs.size(), params.ServerDbSize());
  double sum = 0.0;
  for (size_t p = 1; p < probs.size(); ++p) {
    EXPECT_LE(probs[p], probs[p - 1]) << "page " << p;
  }
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);

  MultiClientParams plain = SmallPopulation(3);
  EXPECT_EQ(PopulationNominalProbs(params), PopulationNominalProbs(plain));
}

TEST(MultiClientTest, KsyPopulationRunsAndRecordsProvenance) {
  MultiClientParams params = SmallPopulation(3);
  params.optimizer = "ksy";
  auto result = RunMultiClientSimulation(params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->predicted_delay, 0.0);
  const obs::RunReport report =
      MakePopulationRunReport(params, *result, "cfg", "test");
  EXPECT_EQ(report.optimizer, "ksy");
  bool has_predicted = false;
  for (const auto& [k, v] : report.extra) {
    if (k == "optimizer_predicted_delay") {
      has_predicted = true;
      EXPECT_DOUBLE_EQ(v, result->predicted_delay);
    }
  }
  EXPECT_TRUE(has_predicted);
}

TEST(MultiClientTest, DeltaPopulationReportOmitsThePredictionExtra) {
  MultiClientParams params = SmallPopulation(2);
  auto result = RunMultiClientSimulation(params);
  ASSERT_TRUE(result.ok());
  const obs::RunReport report =
      MakePopulationRunReport(params, *result, "cfg", "test");
  EXPECT_EQ(report.optimizer, "delta");
  for (const auto& [k, v] : report.extra) {
    EXPECT_NE(k, "optimizer_predicted_delay");
  }
}

TEST(MultiClientTest, AutoBackendResolvesByPopulationSize) {
  MultiClientParams small = SmallPopulation(3);
  small.des_queue = des::QueueBackend::kAuto;
  small.measured_requests = 200;
  auto tiny = RunMultiClientSimulation(small);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->resolved_queue, des::QueueBackend::kHeap);

  MultiClientParams big = SmallPopulation(9);
  big.des_queue = des::QueueBackend::kAuto;
  big.measured_requests = 200;
  auto large = RunMultiClientSimulation(big);
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large->resolved_queue, des::QueueBackend::kCalendar);

  // Resolution can never change results — only which backend ran.
  MultiClientParams pinned = SmallPopulation(9);
  pinned.des_queue = des::QueueBackend::kHeap;
  pinned.measured_requests = 200;
  auto heap = RunMultiClientSimulation(pinned);
  ASSERT_TRUE(heap.ok());
  EXPECT_EQ(heap->resolved_queue, des::QueueBackend::kHeap);
  EXPECT_EQ(heap->response_across_clients.sum(),
            large->response_across_clients.sum());
  EXPECT_EQ(heap->events_dispatched, large->events_dispatched);
}

TEST(MultiClientTest, OptimizerChoiceChangesTheScheduleDeterministically) {
  for (const char* name : {"ksy", "rbo"}) {
    MultiClientParams params = SmallPopulation(2);
    params.optimizer = name;
    auto a = RunMultiClientSimulation(params);
    auto b = RunMultiClientSimulation(params);
    ASSERT_TRUE(a.ok()) << name << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->response_across_clients.sum(),
              b->response_across_clients.sum())
        << name;
    EXPECT_EQ(a->events_dispatched, b->events_dispatched) << name;
  }
}

TEST(MultiClientTest, EveryClientCompletes) {
  auto result = RunMultiClientSimulation(SmallPopulation(4));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->per_client.size(), 4u);
  for (const ClientMetrics& m : result->per_client) {
    EXPECT_EQ(m.requests(), 2000u);
    EXPECT_EQ(m.cache_hits() + m.misses(), m.requests());
  }
  EXPECT_EQ(result->response_across_clients.count(), 4u);
}

TEST(MultiClientTest, IdenticalClientsGetSimilarService) {
  // A broadcast never contends: identical specs (different RNG streams)
  // must see statistically similar response times.
  auto result = RunMultiClientSimulation(SmallPopulation(4));
  ASSERT_TRUE(result.ok());
  const double spread = result->response_across_clients.max() -
                        result->response_across_clients.min();
  EXPECT_LT(spread, 0.25 * result->response_across_clients.mean());
}

TEST(MultiClientTest, DeterministicInSeed) {
  auto a = RunMultiClientSimulation(SmallPopulation(3));
  auto b = RunMultiClientSimulation(SmallPopulation(3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->mean_response_times, b->mean_response_times);
}

TEST(MultiClientTest, AddingAClientDoesNotPerturbOthers) {
  // Client sub-streams are independent: client 0's request sequence (and
  // with a contention-free channel, its results) are identical whether or
  // not client 1 exists.
  auto solo = RunMultiClientSimulation(SmallPopulation(1));
  auto duo = RunMultiClientSimulation(SmallPopulation(2));
  ASSERT_TRUE(solo.ok());
  ASSERT_TRUE(duo.ok());
  EXPECT_DOUBLE_EQ(solo->mean_response_times[0],
                   duo->mean_response_times[0]);
}

TEST(MultiClientTest, AlignedClientBeatsShiftedClient) {
  // The zero-sum game (Section 3): the broadcast is hottest-first for
  // physical page 0; a client whose interest sits mid-database fares
  // worse, without caches, than the aligned one.
  MultiClientParams params = SmallPopulation(2);
  params.clients[0].interest_shift = 0;
  params.clients[1].interest_shift = 250;  // interests on the slow disk
  for (ClientSpec& spec : params.clients) {
    spec.cache_size = 1;  // isolate the broadcast fit
    spec.policy = PolicyKind::kLru;
  }
  auto result = RunMultiClientSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->mean_response_times[0],
            0.8 * result->mean_response_times[1]);
}

TEST(MultiClientTest, CachesShrinkTheFairnessGap) {
  // With cost-based caches, the disadvantaged client recovers much of the
  // gap (the paper's remedy for the zero-sum dilemma).
  MultiClientParams no_cache = SmallPopulation(2);
  no_cache.clients[1].interest_shift = 250;
  for (ClientSpec& spec : no_cache.clients) {
    spec.cache_size = 1;
    spec.policy = PolicyKind::kLru;
  }
  MultiClientParams cached = SmallPopulation(2);
  cached.clients[1].interest_shift = 250;
  for (ClientSpec& spec : cached.clients) {
    spec.cache_size = 50;
    spec.policy = PolicyKind::kPix;
  }
  auto without = RunMultiClientSimulation(no_cache);
  auto with = RunMultiClientSimulation(cached);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  const double gap_without = without->mean_response_times[1] /
                             without->mean_response_times[0];
  const double gap_with =
      with->mean_response_times[1] / with->mean_response_times[0];
  EXPECT_LT(gap_with, gap_without);
}

TEST(MultiClientTest, MixedPoliciesCoexist) {
  MultiClientParams params = SmallPopulation(3);
  params.clients[0].policy = PolicyKind::kLru;
  params.clients[1].policy = PolicyKind::kPix;
  params.clients[2].policy = PolicyKind::kTwoQ;
  auto result = RunMultiClientSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_client.size(), 3u);
}

TEST(MultiClientTest, MatchesSingleClientSimulator) {
  // A one-client population must agree with RunSimulation given the same
  // seed wiring. (The single-client path uses different stream tags, so
  // compare behaviourally: same config, similar response.)
  MultiClientParams multi = SmallPopulation(1);
  multi.measured_requests = 10000;
  auto population = RunMultiClientSimulation(multi);
  ASSERT_TRUE(population.ok());

  SimParams single;
  single.disk_sizes = multi.disk_sizes;
  single.delta = multi.delta;
  single.access_range = 100;
  single.region_size = 5;
  single.cache_size = 20;
  single.policy = PolicyKind::kLix;
  single.measured_requests = 10000;
  auto solo = RunSimulation(single);
  ASSERT_TRUE(solo.ok());

  EXPECT_NEAR(population->mean_response_times[0],
              solo->metrics.mean_response_time(),
              0.1 * solo->metrics.mean_response_time());
}

TEST(MultiClientReportTest, CarriesPerClientResponseHistograms) {
  MultiClientParams params = SmallPopulation(3);
  auto result = RunMultiClientSimulation(params);
  ASSERT_TRUE(result.ok());
  const obs::RunReport report =
      MakePopulationRunReport(params, *result, "cfg", "test");
  // Every client contributes its own mean/percentile block, keyed by
  // index, so population reports expose the full response distribution
  // per client rather than only the cross-client aggregate.
  for (size_t c = 0; c < 3; ++c) {
    const std::string prefix = "client" + std::to_string(c) + "_";
    for (const char* suffix :
         {"mean_rt", "rt_p50", "rt_p90", "rt_p99", "rt_max", "hit_rate"}) {
      const std::string key = prefix + suffix;
      bool found = false;
      for (const auto& [k, v] : report.extra) {
        if (k == key) found = true;
      }
      EXPECT_TRUE(found) << "missing extra " << key;
    }
  }
  // The per-client means echo the result vector exactly.
  for (const auto& [k, v] : report.extra) {
    if (k == "client1_mean_rt") {
      EXPECT_DOUBLE_EQ(v, result->per_client[1].mean_response_time());
    }
  }
}

TEST(MultiClientObserverTest, TraceRecordsCarryClientIndices) {
  std::ostringstream trace_out;
  obs::TraceSink trace(&trace_out, 1.0, obs::TraceFormat::kCsv, 7);
  SimObservers observers;
  observers.trace = &trace;
  auto result = RunMultiClientSimulation(SmallPopulation(3), observers);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(trace.recorded(), 0u);

  // The CSV header grew a client column, and every client index of the
  // population appears in the stream.
  std::istringstream in(trace_out.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find(",client"), std::string::npos) << header;
  std::set<std::string> seen;
  std::string line;
  while (std::getline(in, line)) {
    const size_t comma = line.rfind(',');
    ASSERT_NE(comma, std::string::npos);
    seen.insert(line.substr(comma + 1));
  }
  EXPECT_EQ(seen, (std::set<std::string>{"0", "1", "2"}));
}

TEST(MultiClientObserverTest, ObserversDoNotPerturbThePopulation) {
  auto plain = RunMultiClientSimulation(SmallPopulation(2));
  ASSERT_TRUE(plain.ok());

  std::ostringstream timeline_out;
  obs::TimelineWriter timeline(&timeline_out);
  SimObservers observers;
  observers.timeline = &timeline;
  observers.profile_des = true;
  auto observed =
      RunMultiClientSimulation(SmallPopulation(2), observers);
  ASSERT_TRUE(observed.ok());
  timeline.Close();

  EXPECT_EQ(observed->events_dispatched, plain->events_dispatched);
  EXPECT_EQ(observed->aggregate.requests(), plain->aggregate.requests());
  EXPECT_DOUBLE_EQ(observed->aggregate.mean_response_time(),
                   plain->aggregate.mean_response_time());
  EXPECT_EQ(timeline.open_spans(), 0);
#ifndef BCAST_DISABLE_TIMELINE
  EXPECT_GT(timeline.events_written(), 0u);
#endif
  ASSERT_TRUE(observed->profile_active);
  EXPECT_EQ(observed->profile.total_dispatches(),
            observed->events_dispatched);

  // Profile extras reach the population report only when profiling ran.
  const obs::RunReport with = MakePopulationRunReport(
      SmallPopulation(2), *observed, "cfg", "test");
  bool found = false;
  for (const auto& [k, v] : with.extra) {
    if (k == "profile_total_dispatches") {
      found = true;
      EXPECT_DOUBLE_EQ(
          v, static_cast<double>(observed->events_dispatched));
    }
  }
  EXPECT_TRUE(found);
  const obs::RunReport without = MakePopulationRunReport(
      SmallPopulation(2), *plain, "cfg", "test");
  for (const auto& [k, v] : without.extra) {
    EXPECT_NE(k.rfind("profile_", 0), 0u) << k;
  }
}

TEST(MultiClientObserverTest, StatsStreamAggregatesThePopulation) {
  std::ostringstream stats_out;
  obs::StatsWriter stats(&stats_out);
  SimObservers observers;
  observers.stats = &stats;
  observers.stats_interval = 500.0;
  auto result = RunMultiClientSimulation(SmallPopulation(3), observers);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(stats.samples_written(), 2u);

  std::istringstream in(stats_out.str());
  Result<obs::StatsSummary> summary = obs::SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->requests, result->aggregate.requests());
  EXPECT_EQ(summary->hits, result->aggregate.cache_hits());
  EXPECT_NEAR(summary->mean_rt, result->aggregate.mean_response_time(),
              1e-8 * result->aggregate.mean_response_time());
  EXPECT_EQ(summary->served_per_disk,
            result->aggregate.served_per_disk());
}

}  // namespace
}  // namespace bcast
