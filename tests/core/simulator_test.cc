#include "core/simulator.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bcast {
namespace {

// A scaled-down paper configuration that runs in milliseconds.
SimParams SmallParams() {
  SimParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.access_range = 100;
  params.region_size = 5;
  params.cache_size = 50;
  params.offset = 0;
  params.measured_requests = 3000;
  return params;
}

TEST(BuildProgramTest, MultiDiskByDefault) {
  auto program = BuildProgram(SmallParams());
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->num_disks(), 3u);
  EXPECT_TRUE(program->HasFixedInterArrival(0));
}

TEST(BuildProgramTest, SkewedKind) {
  SimParams params = SmallParams();
  params.program_kind = ProgramKind::kSkewed;
  auto program = BuildProgram(params);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->HasFixedInterArrival(0));
}

TEST(BuildProgramTest, RandomKindMatchesMultiDiskPeriod) {
  SimParams params = SmallParams();
  params.program_kind = ProgramKind::kRandom;
  auto random = BuildProgram(params);
  auto multi = BuildProgram(SmallParams());
  ASSERT_TRUE(random.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(random->period(), multi->period());
}

TEST(BuildProgramTest, ExplicitFrequenciesOverrideDelta) {
  SimParams params = SmallParams();
  params.rel_freqs = {5, 3, 1};
  auto program = BuildProgram(params);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->Frequency(0), 5u);
  EXPECT_EQ(program->Frequency(60), 3u);
  EXPECT_EQ(program->Frequency(400), 1u);
}

TEST(BuildProgramTest, InvalidParamsPropagate) {
  SimParams params = SmallParams();
  params.cache_size = 0;
  EXPECT_FALSE(BuildProgram(params).ok());
}

TEST(RunSimulationTest, ProducesConsistentMetrics) {
  auto result = RunSimulation(SmallParams());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ClientMetrics& m = result->metrics;
  EXPECT_EQ(m.requests(), 3000u);
  EXPECT_EQ(m.cache_hits() + m.misses(), m.requests());
  uint64_t served = 0;
  for (uint64_t c : m.served_per_disk()) served += c;
  EXPECT_EQ(served, m.misses());
  EXPECT_GT(result->end_time, 0.0);
  EXPECT_GT(result->period, 0u);
}

TEST(RunSimulationTest, DeterministicInSeed) {
  auto a = RunSimulation(SmallParams());
  auto b = RunSimulation(SmallParams());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->metrics.mean_response_time(),
                   b->metrics.mean_response_time());
  EXPECT_EQ(a->metrics.cache_hits(), b->metrics.cache_hits());
  EXPECT_EQ(a->warmup_requests, b->warmup_requests);
}

TEST(RunSimulationTest, DifferentSeedsDiffer) {
  SimParams other = SmallParams();
  other.seed = 777;
  auto a = RunSimulation(SmallParams());
  auto b = RunSimulation(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->metrics.mean_response_time(),
            b->metrics.mean_response_time());
}

TEST(RunSimulationTest, NoiseSeedIndependentOfRequestStream) {
  // Changing only noise keeps the same request sequence: with noise 0 vs
  // noise 0 via different unrelated knob (seed fixed), hits must be equal.
  SimParams a = SmallParams();
  SimParams b = SmallParams();
  b.noise_percent = 0.0;  // same as a; sanity guard
  auto ra = RunSimulation(a);
  auto rb = RunSimulation(b);
  EXPECT_DOUBLE_EQ(ra->metrics.mean_response_time(),
                   rb->metrics.mean_response_time());
}

TEST(RunSimulationTest, FlatDiskNearHalfDb) {
  SimParams params;
  params.disk_sizes = {500};
  params.delta = 0;
  params.access_range = 100;
  params.region_size = 5;
  params.cache_size = 1;
  params.measured_requests = 5000;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->metrics.mean_response_time(), 250.0, 15.0);
}

TEST(RunSimulationTest, EveryPolicyRunsEndToEnd) {
  for (PolicyKind kind :
       {PolicyKind::kP, PolicyKind::kPix, PolicyKind::kLru, PolicyKind::kL,
        PolicyKind::kLix, PolicyKind::kLruK, PolicyKind::kTwoQ,
        PolicyKind::kClock, PolicyKind::kGreedyDual}) {
    SimParams params = SmallParams();
    params.policy = kind;
    params.measured_requests = 1000;
    auto result = RunSimulation(params);
    ASSERT_TRUE(result.ok()) << PolicyKindName(kind) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->metrics.requests(), 1000u) << PolicyKindName(kind);
    EXPECT_GT(result->metrics.hit_rate(), 0.0) << PolicyKindName(kind);
  }
}

TEST(RunSimulationTest, PerturbedPagesReported) {
  SimParams params = SmallParams();
  params.noise_percent = 50.0;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->perturbed_pages, 0u);
}

TEST(RunSimulationTest, ObserversDoNotPerturbResults) {
  const SimParams params = SmallParams();
  auto plain = RunSimulation(params);
  ASSERT_TRUE(plain.ok());

  obs::MetricsRegistry registry;
  std::ostringstream trace_out;
  obs::TraceSink trace(&trace_out, 0.5, obs::TraceFormat::kJsonl,
                       params.seed);
  SimObservers observers;
  observers.trace = &trace;
  observers.registry = &registry;
  auto observed = RunSimulation(params, observers);
  ASSERT_TRUE(observed.ok());

  // Observability must never change what the simulation computes.
  EXPECT_EQ(observed->metrics.requests(), plain->metrics.requests());
  EXPECT_EQ(observed->metrics.cache_hits(), plain->metrics.cache_hits());
  EXPECT_DOUBLE_EQ(observed->metrics.mean_response_time(),
                   plain->metrics.mean_response_time());
  EXPECT_DOUBLE_EQ(observed->end_time, plain->end_time);
  EXPECT_EQ(observed->metrics.served_per_disk(),
            plain->metrics.served_per_disk());

  // And the registry must agree with the returned metrics.
  EXPECT_EQ(registry.GetCounter("sim/requests")->value(),
            observed->metrics.requests());
  EXPECT_EQ(registry.GetCounter("sim/cache_hits")->value(),
            observed->metrics.cache_hits());
  EXPECT_DOUBLE_EQ(registry.GetGauge("sim/period")->value(),
                   static_cast<double>(observed->period));
  EXPECT_EQ(registry.GetHistogram("sim/response_slots")->count(),
            observed->metrics.requests());

  // The trace sampled every request exactly once.
  EXPECT_EQ(trace.offered(),
            observed->metrics.requests() + observed->warmup_requests);
  EXPECT_GT(trace.recorded(), 0u);
}

TEST(RunSimulationTest, TimelineAndProfilingAreBitIdentical) {
  const SimParams params = SmallParams();
  auto plain = RunSimulation(params);
  ASSERT_TRUE(plain.ok());

  std::ostringstream timeline_out;
  obs::TimelineWriter timeline(&timeline_out);
  SimObservers observers;
  observers.timeline = &timeline;
  observers.profile_des = true;
  auto observed = RunSimulation(params, observers);
  ASSERT_TRUE(observed.ok());
  timeline.Close();

  // Timeline and profiling add no events and change nothing: the run is
  // bit-identical, event count included (unlike the stats sampler).
  EXPECT_EQ(observed->events_dispatched, plain->events_dispatched);
  EXPECT_EQ(observed->metrics.requests(), plain->metrics.requests());
  EXPECT_EQ(observed->metrics.cache_hits(), plain->metrics.cache_hits());
  EXPECT_DOUBLE_EQ(observed->metrics.mean_response_time(),
                   plain->metrics.mean_response_time());
  EXPECT_DOUBLE_EQ(observed->end_time, plain->end_time);

  // The timeline saw the run and closed balanced. (Call sites vanish
  // when the tracer is compiled out, so only check balance then.)
#ifndef BCAST_DISABLE_TIMELINE
  EXPECT_GT(timeline.events_written(), 0u);
#endif
  EXPECT_EQ(timeline.open_spans(), 0);

  // The profile covered every dispatched event.
  ASSERT_TRUE(observed->profile_active);
  EXPECT_EQ(observed->profile.total_dispatches(),
            observed->events_dispatched);
}

TEST(RunSimulationTest, StatsStreamReproducesRunTotals) {
  const SimParams params = SmallParams();
  auto plain = RunSimulation(params);
  ASSERT_TRUE(plain.ok());

  std::ostringstream stats_out;
  obs::StatsWriter stats(&stats_out);
  SimObservers observers;
  observers.stats = &stats;
  observers.stats_interval = 500.0;
  auto observed = RunSimulation(params, observers);
  ASSERT_TRUE(observed.ok());

  // The sampler adds kStats events (documented exception)...
  EXPECT_GT(observed->events_dispatched, plain->events_dispatched);
  // ...but never touches what the simulation computes.
  EXPECT_EQ(observed->metrics.requests(), plain->metrics.requests());
  EXPECT_EQ(observed->metrics.cache_hits(), plain->metrics.cache_hits());
  EXPECT_DOUBLE_EQ(observed->metrics.mean_response_time(),
                   plain->metrics.mean_response_time());
  // The last armed tick may land past the client's final event, so the
  // clock can end up to one interval later — never earlier.
  EXPECT_GE(observed->end_time, plain->end_time);
  EXPECT_LE(observed->end_time, plain->end_time + observers.stats_interval);

  // The stream's final record reproduces the run's headline numbers
  // (mean_rt passes through JSON text, so compare to rounding precision).
  EXPECT_GE(stats.samples_written(), 2u);
  std::istringstream in(stats_out.str());
  Result<obs::StatsSummary> summary = obs::SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->segments, 1u);
  EXPECT_EQ(summary->requests, observed->metrics.requests());
  EXPECT_EQ(summary->hits, observed->metrics.cache_hits());
  EXPECT_NEAR(summary->mean_rt, observed->metrics.mean_response_time(),
              1e-8 * observed->metrics.mean_response_time());
  EXPECT_EQ(summary->served_per_disk,
            observed->metrics.served_per_disk());
  EXPECT_EQ(summary->events, observed->events_dispatched);
}

TEST(RunSimulationTest, ProfileExtrasAppendedOnlyWhenActive) {
  const SimParams params = SmallParams();
  SimObservers observers;
  observers.profile_des = true;
  auto profiled = RunSimulation(params, observers);
  ASSERT_TRUE(profiled.ok());
  const obs::RunReport with =
      MakeRunReport(params, *profiled, "test");
  uint64_t profile_extras = 0;
  double total_dispatches = -1.0;
  for (const auto& [key, value] : with.extra) {
    if (key.rfind("profile_", 0) == 0) ++profile_extras;
    if (key == "profile_total_dispatches") total_dispatches = value;
  }
  // Totals plus one (dispatches, cpu_ns) pair per event kind — a stable
  // schema: kinds with zero dispatches still appear.
  EXPECT_EQ(profile_extras, 2u + 2u * des::kNumEventKinds);
  EXPECT_DOUBLE_EQ(total_dispatches,
                   static_cast<double>(profiled->events_dispatched));

  auto unprofiled = RunSimulation(params);
  ASSERT_TRUE(unprofiled.ok());
  const obs::RunReport without =
      MakeRunReport(params, *unprofiled, "test");
  for (const auto& [key, value] : without.extra) {
    EXPECT_NE(key.rfind("profile_", 0), 0u) << key;
  }
}

TEST(RunSimulationTest, MakeRunReportFillsHeadlineFields) {
  const SimParams params = SmallParams();
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  const obs::RunReport report = MakeRunReport(params, *result, "test");
  EXPECT_EQ(report.tool, "test");
  EXPECT_EQ(report.mode, "single");
  EXPECT_EQ(report.seed, params.seed);
  EXPECT_EQ(report.requests, result->metrics.requests());
  EXPECT_EQ(report.period, result->period);
  EXPECT_EQ(report.response.count, result->metrics.requests());
  EXPECT_GE(report.response.p99, report.response.p50);
  EXPECT_EQ(report.served_per_disk, result->metrics.served_per_disk());
  EXPECT_GT(report.slots_per_second, 0.0);
}

TEST(SimCatalogTest, DelegatesThroughMapping) {
  auto program = BuildProgram(SmallParams());
  ASSERT_TRUE(program.ok());
  auto gen = AccessGenerator::Make(100, 5, 0.95, 2.0, ThinkTimeKind::kFixed,
                                   Rng(1));
  ASSERT_TRUE(gen.ok());
  auto layout = MakeDeltaLayout({50, 200, 250}, 2);
  ASSERT_TRUE(layout.ok());
  // Offset 10: logical 0 -> physical 490 (slowest disk).
  auto mapping = Mapping::Make(*layout, 10, 0.0, Rng(2));
  ASSERT_TRUE(mapping.ok());
  SimCatalog catalog(&*gen, &*program, &*mapping);
  EXPECT_EQ(catalog.NumDisks(), 3u);
  EXPECT_EQ(catalog.DiskOf(0), 2u);   // pushed to slow disk by offset
  EXPECT_EQ(catalog.DiskOf(10), 0u);  // pulled onto fast disk
  EXPECT_GT(catalog.Frequency(10), catalog.Frequency(0));
  EXPECT_DOUBLE_EQ(catalog.Probability(0), gen->Probability(0));
}

}  // namespace
}  // namespace bcast
