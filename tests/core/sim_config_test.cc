// The consolidated simulation configuration: defaults finalize cleanly,
// the flag-coherence rules reject meaningless combinations with their
// exact messages, string enums parse (and reject) correctly, and the
// result always passes SimParams::Validate.

#include "core/sim_config.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bcast {
namespace {

// Helper: register, parse a command line, and finalize in one step.
Status ConfigureFrom(SimConfig* config, std::vector<const char*> args) {
  FlagSet flags("test");
  config->RegisterFlags(&flags);
  Status parsed =
      flags.Parse(static_cast<int>(args.size()), args.data());
  if (!parsed.ok()) return parsed;
  return config->Finalize(&flags);
}

TEST(SimConfigTest, DefaultsFinalizeToThePaperConfiguration) {
  SimConfig config;
  ASSERT_TRUE(config.Finalize(nullptr).ok());
  EXPECT_EQ(config.params.disk_sizes,
            (std::vector<uint64_t>{500, 2000, 2500}));
  EXPECT_EQ(config.params.program_kind, ProgramKind::kMultiDisk);
  EXPECT_EQ(config.params.policy, PolicyKind::kLru);
  EXPECT_EQ(config.params.noise_scope, NoiseScope::kAccessRange);
  EXPECT_EQ(config.params.pull.scheduler, pull::PullScheduler::kFcfs);
  EXPECT_FALSE(config.params.adapt.Active());
}

TEST(SimConfigTest, ProgrammaticFinalizeSkipsSetnessRules) {
  // Without a parsed command line there is no "was set" information;
  // only structural validation applies.
  SimConfig config;
  config.params.fault.burst_len = 4.0;  // alone: fine programmatically
  EXPECT_TRUE(config.Finalize(nullptr).ok());
}

TEST(SimConfigTest, ParsedFlagsFlowIntoParams) {
  SimConfig config;
  const Status st = ConfigureFrom(
      &config, {"--disks=50,200,250", "--access_range=500",
                "--policy=pix", "--cache_size=100", "--loss=0.1",
                "--adapt_epoch=4", "--adapt_promote=2"});
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(config.params.disk_sizes,
            (std::vector<uint64_t>{50, 200, 250}));
  EXPECT_EQ(config.params.access_range, 500u);
  EXPECT_EQ(config.params.policy, PolicyKind::kPix);
  EXPECT_EQ(config.params.cache_size, 100u);
  EXPECT_DOUBLE_EQ(config.params.fault.loss, 0.1);
  EXPECT_EQ(config.params.adapt.epoch_cycles, 4u);
  EXPECT_EQ(config.params.adapt.max_promote, 2u);
}

TEST(SimConfigTest, BurstLenNeedsLoss) {
  SimConfig config;
  const Status st = ConfigureFrom(&config, {"--burst_len=4"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(
                "--burst_len shapes the loss process; it needs --loss"),
            std::string::npos);
}

TEST(SimConfigTest, DozeAwakeNeedsDoze) {
  SimConfig config;
  const Status st = ConfigureFrom(&config, {"--doze_awake=10"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("it needs --doze"), std::string::npos);
}

TEST(SimConfigTest, UplinkCapNeedsPull) {
  SimConfig config;
  const Status st = ConfigureFrom(&config, {"--uplink_cap=2"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(
      st.message().find("it needs --pull_slots (or --pull_force)"),
      std::string::npos);
}

TEST(SimConfigTest, AdaptEpochNeedsASignal) {
  SimConfig config;
  const Status st = ConfigureFrom(&config, {"--adapt_epoch=4"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--adapt_epoch adapts to measured loss, "
                              "pull load, or measured demand"),
            std::string::npos);
  // Any of the signal flags satisfies it.
  for (const char* signal :
       {"--loss=0.1", "--corrupt=0.1", "--doze=5", "--pull_slots=2",
        "--pull_force"}) {
    SimConfig ok_config;
    EXPECT_TRUE(
        ConfigureFrom(&ok_config, {"--adapt_epoch=4", signal}).ok())
        << signal;
  }
}

TEST(SimConfigTest, ControllerKnobsNeedTheController) {
  for (const char* knob :
       {"--adapt_promote=2", "--adapt_queue_high=3",
        "--adapt_idle_low=0.1", "--adapt_idle_high=0.9",
        "--adapt_hysteresis=3", "--adapt_min_slots=1",
        "--adapt_max_slots=4"}) {
    SimConfig config;
    const Status st = ConfigureFrom(&config, {knob});
    ASSERT_FALSE(st.ok()) << knob;
    EXPECT_NE(st.message().find(
                  " tunes the epoch controller; it needs --adapt_epoch"),
              std::string::npos)
        << knob;
  }
}

TEST(SimConfigTest, RejectsUnknownEnumStrings) {
  {
    SimConfig config;
    const Status st = ConfigureFrom(&config, {"--program=banana"});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("unknown --program: banana"),
              std::string::npos);
  }
  {
    SimConfig config;
    const Status st = ConfigureFrom(&config, {"--noise_scope=some"});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("unknown --noise_scope"),
              std::string::npos);
  }
  {
    SimConfig config;
    EXPECT_FALSE(ConfigureFrom(&config, {"--policy=banana"}).ok());
  }
  {
    SimConfig config;
    EXPECT_FALSE(ConfigureFrom(&config, {"--pull_sched=banana"}).ok());
  }
  {
    SimConfig config;
    EXPECT_FALSE(ConfigureFrom(&config, {"--disks=1,x"}).ok());
  }
}

TEST(SimConfigTest, OptimizerFlagFlowsIntoParams) {
  SimConfig config;
  const Status st = ConfigureFrom(&config, {"--optimizer=ksy"});
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(config.params.optimizer, "ksy");
}

TEST(SimConfigTest, UnknownOptimizerRejected) {
  SimConfig config;
  const Status st = ConfigureFrom(&config, {"--optimizer=annealing"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unknown optimizer: annealing"),
            std::string::npos);
}

TEST(SimConfigTest, NonDeltaOptimizerNeedsTheMultiDiskProgram) {
  SimConfig config;
  const Status st =
      ConfigureFrom(&config, {"--optimizer=rbo", "--program=skewed"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--program=multidisk"), std::string::npos);
}

TEST(SimConfigTest, RboRejectsPull) {
  SimConfig config;
  const Status st =
      ConfigureFrom(&config, {"--optimizer=rbo", "--pull_slots=2"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("bit-reversal"), std::string::npos);
}

TEST(SimConfigTest, AdaptReoptIsAnAdaptSignal) {
  // Re-optimization is itself a signal: no fault or pull flag needed.
  SimConfig config;
  const Status st =
      ConfigureFrom(&config, {"--adapt_epoch=4", "--adapt_reopt"});
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(config.params.adapt.reopt);
  EXPECT_EQ(config.params.adapt.epoch_cycles, 4u);
}

TEST(SimConfigTest, AdaptReoptNeedsTheController) {
  SimConfig config;
  const Status st = ConfigureFrom(&config, {"--adapt_reopt"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(
                " tunes the epoch controller; it needs --adapt_epoch"),
            std::string::npos);
}

TEST(SimConfigTest, DesQueueParsesEveryBackend) {
  {
    SimConfig config;
    ASSERT_TRUE(ConfigureFrom(&config, {"--des_queue=auto"}).ok());
    EXPECT_EQ(config.params.des_queue, des::QueueBackend::kAuto);
  }
  {
    SimConfig config;
    ASSERT_TRUE(ConfigureFrom(&config, {"--des_queue=heap"}).ok());
    EXPECT_EQ(config.params.des_queue, des::QueueBackend::kHeap);
  }
  {
    SimConfig config;
    const Status st = ConfigureFrom(&config, {"--des_queue=splay"});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("(heap|calendar|auto)"),
              std::string::npos);
  }
}

TEST(SimConfigTest, FinalizeRunsStructuralValidation) {
  // Coherent flags can still describe an invalid simulation; Finalize
  // must catch that too (here: adaptation without a multi-disk program).
  SimConfig config;
  EXPECT_FALSE(ConfigureFrom(&config, {"--program=skewed",
                                       "--adapt_epoch=4", "--loss=0.1"})
                   .ok());
}

}  // namespace
}  // namespace bcast
