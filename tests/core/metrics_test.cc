#include "core/metrics.h"

#include <gtest/gtest.h>

namespace bcast {
namespace {

TEST(ClientMetricsTest, EmptyState) {
  ClientMetrics m(3);
  EXPECT_EQ(m.requests(), 0u);
  EXPECT_EQ(m.cache_hits(), 0u);
  EXPECT_EQ(m.misses(), 0u);
  EXPECT_EQ(m.hit_rate(), 0.0);
  EXPECT_EQ(m.mean_response_time(), 0.0);
}

TEST(ClientMetricsTest, HitsAndMissesAccumulate) {
  ClientMetrics m(2);
  m.RecordHit(0.0);
  m.RecordMiss(10.0, 0);
  m.RecordMiss(20.0, 1);
  m.RecordHit(0.0);
  EXPECT_EQ(m.requests(), 4u);
  EXPECT_EQ(m.cache_hits(), 2u);
  EXPECT_EQ(m.misses(), 2u);
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(m.mean_response_time(), 7.5);
}

TEST(ClientMetricsTest, PerDiskCounts) {
  ClientMetrics m(3);
  m.RecordMiss(1.0, 0);
  m.RecordMiss(2.0, 2);
  m.RecordMiss(3.0, 2);
  EXPECT_EQ(m.served_per_disk(), (std::vector<uint64_t>{1, 0, 2}));
}

TEST(ClientMetricsTest, LocationFractionsSumToOne) {
  ClientMetrics m(3);
  m.RecordHit(0.0);
  m.RecordMiss(5.0, 0);
  m.RecordMiss(5.0, 1);
  m.RecordMiss(5.0, 2);
  const std::vector<double> f = m.LocationFractions();
  ASSERT_EQ(f.size(), 4u);
  double total = 0.0;
  for (double x : f) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(f[0], 0.25);  // cache
  EXPECT_DOUBLE_EQ(f[1], 0.25);  // disk 1
}

TEST(ClientMetricsTest, LocationFractionsEmptyIsAllZero) {
  ClientMetrics m(2);
  const std::vector<double> f = m.LocationFractions();
  for (double x : f) EXPECT_EQ(x, 0.0);
}

TEST(ClientMetricsTest, ResponseStatTracksSpread) {
  ClientMetrics m(1);
  m.RecordMiss(10.0, 0);
  m.RecordMiss(30.0, 0);
  EXPECT_DOUBLE_EQ(m.response_time().min(), 10.0);
  EXPECT_DOUBLE_EQ(m.response_time().max(), 30.0);
  EXPECT_DOUBLE_EQ(m.response_time().mean(), 20.0);
}

TEST(ClientMetricsDeathTest, DiskOutOfRangeDies) {
  ClientMetrics m(2);
  EXPECT_DEATH(m.RecordMiss(1.0, 5), "Check failed");
}

// Regression: derived quantities must stay finite (0, not NaN/inf) with
// zero recorded requests, including through the histogram summaries —
// a zero-request run still has to serialize to valid JSON.
TEST(ClientMetricsTest, EmptyStateHistogramSummariesAreZero) {
  ClientMetrics m(2);
  const obs::HistogramSummary response = m.response_histogram().Summary();
  EXPECT_EQ(response.count, 0u);
  EXPECT_EQ(response.mean, 0.0);
  EXPECT_EQ(response.p50, 0.0);
  EXPECT_EQ(response.p99, 0.0);
  const obs::HistogramSummary tuning = m.tuning_histogram().Summary();
  EXPECT_EQ(tuning.count, 0u);
  EXPECT_EQ(tuning.max, 0.0);
}

TEST(ClientMetricsTest, HistogramsTrackRecordedTimes) {
  ClientMetrics m(1);
  m.RecordHit(0.0);
  m.RecordMiss(100.0, 0);
  m.RecordTuning(0.0);
  m.RecordTuning(100.0);
  EXPECT_EQ(m.response_histogram().count(), 2u);
  EXPECT_DOUBLE_EQ(m.response_histogram().max(), 100.0);
  EXPECT_DOUBLE_EQ(m.response_histogram().mean(), 50.0);
  EXPECT_EQ(m.tuning_histogram().count(), 2u);
}

TEST(ClientMetricsTest, MergeCombinesEverything) {
  ClientMetrics a(2);
  a.RecordHit(0.0);
  a.RecordMiss(10.0, 0);
  a.RecordTuning(10.0);
  ClientMetrics b(2);
  b.RecordMiss(30.0, 1);
  b.RecordMiss(50.0, 1);
  b.RecordTuning(30.0);

  a.Merge(b);
  EXPECT_EQ(a.requests(), 4u);
  EXPECT_EQ(a.cache_hits(), 1u);
  EXPECT_EQ(a.served_per_disk(), (std::vector<uint64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(a.response_time().max(), 50.0);
  EXPECT_DOUBLE_EQ(a.mean_response_time(), 22.5);
  EXPECT_EQ(a.response_histogram().count(), 4u);
  EXPECT_DOUBLE_EQ(a.response_histogram().max(), 50.0);
  EXPECT_EQ(a.tuning_histogram().count(), 2u);
}

TEST(ClientMetricsTest, MergeWithEmptyIsIdentity) {
  ClientMetrics a(1);
  a.RecordMiss(5.0, 0);
  a.Merge(ClientMetrics(1));
  EXPECT_EQ(a.requests(), 1u);
  EXPECT_DOUBLE_EQ(a.mean_response_time(), 5.0);
  EXPECT_EQ(a.hit_rate(), 0.0);
}

TEST(ClientMetricsDeathTest, MergeShapeMismatchDies) {
  ClientMetrics a(2);
  ClientMetrics b(3);
  EXPECT_DEATH(a.Merge(b), "Check failed");
}

}  // namespace
}  // namespace bcast
