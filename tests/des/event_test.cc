#include "des/event.h"

#include <gtest/gtest.h>

#include <vector>

#include "des/simulation.h"

namespace bcast::des {
namespace {

Process Waiter(Simulation* sim, Event* ev, std::vector<double>* log) {
  co_await ev->Wait();
  log->push_back(sim->Now());
}

Process SignalAt(Simulation* sim, Event* ev, double t) {
  co_await sim->Delay(t);
  ev->Signal();
}

TEST(EventTest, SignalWakesWaiter) {
  Simulation sim;
  Event ev(&sim);
  std::vector<double> log;
  sim.Spawn(Waiter(&sim, &ev, &log));
  sim.Spawn(SignalAt(&sim, &ev, 3.0));
  sim.Run();
  EXPECT_EQ(log, (std::vector<double>{3.0}));
}

TEST(EventTest, SignalWakesAllWaitersFifo) {
  Simulation sim;
  Event ev(&sim);
  std::vector<int> order;
  auto waiter = [](Simulation* s, Event* e, std::vector<int>* ord,
                   int id) -> Process {
    (void)s;
    co_await e->Wait();
    ord->push_back(id);
  };
  sim.Spawn(waiter(&sim, &ev, &order, 1));
  sim.Spawn(waiter(&sim, &ev, &order, 2));
  sim.Spawn(waiter(&sim, &ev, &order, 3));
  sim.Spawn(SignalAt(&sim, &ev, 1.0));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventTest, SignalWithNoWaitersIsLost) {
  Simulation sim;
  Event ev(&sim);
  std::vector<double> log;
  sim.Spawn(SignalAt(&sim, &ev, 1.0));   // fires before anyone waits
  auto late_waiter = [](Simulation* s, Event* e,
                        std::vector<double>* lg) -> Process {
    co_await s->Delay(5.0);
    co_await e->Wait();  // needs a *new* signal
    lg->push_back(s->Now());
  };
  sim.Spawn(late_waiter(&sim, &ev, &log));
  sim.Spawn(SignalAt(&sim, &ev, 10.0));
  sim.Run();
  EXPECT_EQ(log, (std::vector<double>{10.0}));
}

TEST(EventTest, RewaitTargetsNextSignal) {
  Simulation sim;
  Event ev(&sim);
  std::vector<double> log;
  auto repeat_waiter = [](Simulation* s, Event* e,
                          std::vector<double>* lg) -> Process {
    co_await e->Wait();
    lg->push_back(s->Now());
    co_await e->Wait();
    lg->push_back(s->Now());
  };
  sim.Spawn(repeat_waiter(&sim, &ev, &log));
  sim.Spawn(SignalAt(&sim, &ev, 1.0));
  sim.Spawn(SignalAt(&sim, &ev, 2.0));
  sim.Run();
  EXPECT_EQ(log, (std::vector<double>{1.0, 2.0}));
}

TEST(EventTest, NumWaitersTracksState) {
  Simulation sim;
  Event ev(&sim);
  std::vector<double> log;
  sim.Spawn(Waiter(&sim, &ev, &log));
  sim.Spawn(Waiter(&sim, &ev, &log));
  EXPECT_EQ(ev.num_waiters(), 0u);  // not started yet
  sim.RunUntil(0.0);
  EXPECT_EQ(ev.num_waiters(), 2u);
  ev.Signal();
  EXPECT_EQ(ev.num_waiters(), 0u);
  sim.Run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(EventTest, TeardownWithSuspendedWaitersIsSafe) {
  std::vector<double> log;
  {
    Simulation sim;
    Event ev(&sim);
    sim.Spawn(Waiter(&sim, &ev, &log));
    sim.RunUntil(1.0);
    // Destroy sim with the waiter still suspended on the event.
  }
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace bcast::des
