// Property and fuzz coverage for the calendar backend's resize and
// bucketing boundaries — the distributions a calendar queue historically
// gets wrong: every event in one bucket (all-equal), events spread over
// exponentially growing gaps, and far-future outliers that would smear
// the width estimate. The binary heap needs no such suite; these shapes
// are exactly where the calendar's O(1) claim has sharp edges.

#include "des/calendar_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "des/event_queue.h"

namespace bcast::des {
namespace {

EventRef Ref(double time, uint64_t seq) {
  return EventRef{time, seq << 8, static_cast<uint32_t>(seq), 1};
}

// Pops everything, asserting (time, seq) order and that entries() ticks
// down by exactly one per pop.
std::vector<EventRef> DrainSorted(CalendarEventSet* set) {
  std::vector<EventRef> popped;
  EventRef ref;
  while (set->PeekMin(&ref)) {
    if (!popped.empty()) {
      EXPECT_FALSE(EarlierRef(ref, popped.back()))
          << "pop " << popped.size() << " went backwards: " << ref.time
          << " after " << popped.back().time;
    }
    const uint64_t before = set->entries();
    set->PopMin();
    EXPECT_EQ(set->entries(), before - 1);
    popped.push_back(ref);
  }
  EXPECT_EQ(set->entries(), 0u);
  return popped;
}

TEST(CalendarEventSetTest, AllEqualTimestampsStayFifo) {
  CalendarEventSet set;
  for (uint64_t i = 0; i < 10000; ++i) {
    set.Push(Ref(1234.5, i));
    ASSERT_EQ(set.entries(), i + 1);
  }
  const std::vector<EventRef> popped = DrainSorted(&set);
  ASSERT_EQ(popped.size(), 10000u);
  for (uint64_t i = 0; i < popped.size(); ++i) {
    ASSERT_EQ(popped[i].seq_and_kind >> 8, i) << "FIFO broken at pop " << i;
  }
}

TEST(CalendarEventSetTest, ExponentialSprayStaysSorted) {
  // Times 2^0 .. 2^59 pushed in a scrambled order: the width estimate is
  // meaningless for this spread, so correctness must come from the
  // virtual-bucket eligibility check and the direct-min fallback.
  CalendarEventSet set;
  std::vector<int> exponents;
  for (int e = 0; e < 60; ++e) exponents.push_back(e);
  Rng rng(11);
  for (size_t i = exponents.size(); i > 1; --i) {
    std::swap(exponents[i - 1], exponents[rng.NextBounded(i)]);
  }
  uint64_t seq = 0;
  for (int e : exponents) set.Push(Ref(std::ldexp(1.0, e), seq++));
  const std::vector<EventRef> popped = DrainSorted(&set);
  ASSERT_EQ(popped.size(), 60u);
  for (size_t i = 0; i < popped.size(); ++i) {
    EXPECT_DOUBLE_EQ(popped[i].time, std::ldexp(1.0, static_cast<int>(i)));
  }
}

TEST(CalendarEventSetTest, FarFutureOutliersDoNotSmearTheCalendar) {
  // A realistic near-term schedule plus a handful of events at 1e15 and
  // 1e300. The [p10, p90] width estimate must ignore the outliers (the
  // calendar keeps resolving the near-term mass), and the clamp keeps
  // the virtual-bucket arithmetic finite.
  CalendarEventSet set;
  Rng rng(23);
  uint64_t seq = 0;
  for (int i = 0; i < 5000; ++i) {
    set.Push(Ref(rng.NextDouble() * 100.0, seq++));
  }
  set.Push(Ref(1e15, seq++));
  set.Push(Ref(1e300, seq++));
  set.Push(Ref(-1e300, seq++));
  const size_t buckets_with_outliers = set.num_buckets();
  const std::vector<EventRef> popped = DrainSorted(&set);
  ASSERT_EQ(popped.size(), 5003u);
  EXPECT_DOUBLE_EQ(popped.front().time, -1e300);
  EXPECT_DOUBLE_EQ(popped.back().time, 1e300);
  EXPECT_TRUE(std::isfinite(set.bucket_width()));
  EXPECT_GT(set.bucket_width(), 0.0);
  // The near-term mass, not the outliers, sized the calendar.
  EXPECT_GT(buckets_with_outliers, 8u);
}

TEST(CalendarEventSetTest, GrowsAndShrinksAcrossResizeBoundaries) {
  CalendarEventSet set;
  const size_t initial = set.num_buckets();
  uint64_t seq = 0;
  for (int i = 0; i < 4096; ++i) {
    set.Push(Ref(static_cast<double>(i) * 0.5, seq++));
  }
  EXPECT_GT(set.num_buckets(), initial);
  EXPECT_GT(set.resizes(), 0u);
  const uint64_t resizes_after_growth = set.resizes();
  DrainSorted(&set);
  // Draining crosses the shrink threshold repeatedly on the way down.
  EXPECT_GT(set.resizes(), resizes_after_growth);
  EXPECT_LT(set.num_buckets(), 4096u / 2);

  // The emptied calendar is immediately reusable.
  set.Push(Ref(42.0, seq++));
  EventRef ref;
  ASSERT_TRUE(set.PeekMin(&ref));
  EXPECT_DOUBLE_EQ(ref.time, 42.0);
}

TEST(CalendarEventSetTest, RandomizedAgainstSortReference) {
  // Backend-level fuzz: random interleavings of pushes and pops across
  // every adversarial time shape at once, checked against std::sort on
  // the same refs. Seeds are printed so a failure replays exactly.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    CalendarEventSet set;
    std::vector<EventRef> model;  // refs currently inside `set`
    std::vector<EventRef> popped;
    uint64_t seq = 0;
    for (int op = 0; op < 4000; ++op) {
      if (model.empty() || rng.NextBernoulli(0.6)) {
        double time;
        switch (rng.NextBounded(5)) {
          case 0:
            time = static_cast<double>(rng.NextBounded(3));
            break;
          case 1:
            time = rng.NextDouble() * 1e4;
            break;
          case 2:
            time = -rng.NextDouble() * 1e4;
            break;
          case 3:
            time = rng.NextExponential(100.0);
            break;
          default:
            time = std::ldexp(rng.NextDouble(), rng.NextInt(-40, 200));
        }
        const EventRef ref = Ref(time, seq++);
        set.Push(ref);
        model.push_back(ref);
      } else {
        EventRef ref;
        ASSERT_TRUE(set.PeekMin(&ref));
        set.PopMin();
        popped.push_back(ref);
        const auto min = std::min_element(
            model.begin(), model.end(),
            [](const EventRef& a, const EventRef& b) {
              return EarlierRef(a, b);
            });
        ASSERT_EQ(min->seq_and_kind, ref.seq_and_kind)
            << "pop " << popped.size() << " returned time " << ref.time
            << ", expected " << min->time;
        model.erase(min);
      }
      ASSERT_EQ(set.entries(), model.size());
    }
    // Drain and compare the tail against the fully sorted model.
    std::sort(model.begin(), model.end(),
              [](const EventRef& a, const EventRef& b) {
                return EarlierRef(a, b);
              });
    for (const EventRef& expect : model) {
      EventRef ref;
      ASSERT_TRUE(set.PeekMin(&ref));
      set.PopMin();
      ASSERT_EQ(ref.seq_and_kind, expect.seq_and_kind);
    }
    EXPECT_EQ(set.entries(), 0u);
  }
}

TEST(CalendarEventSetTest, ClearResetsToReusableState) {
  CalendarEventSet set;
  for (uint64_t i = 0; i < 1000; ++i) set.Push(Ref(i * 3.0, i));
  set.Clear();
  EXPECT_EQ(set.entries(), 0u);
  EventRef ref;
  EXPECT_FALSE(set.PeekMin(&ref));
  set.Push(Ref(5.0, 1));
  ASSERT_TRUE(set.PeekMin(&ref));
  EXPECT_DOUBLE_EQ(ref.time, 5.0);
}

// --- Facade-level memory bounds -----------------------------------------
//
// The old kernel kept every cancelled far-future event inside its heap
// (and its id in two hash sets) until the simulation's clock reached the
// event's timestamp — never, for periodic-timeout workloads. These tests
// pin the fix: stale refs are compacted once they outnumber live events,
// and Clear releases everything.

TEST(EventQueueMemoryTest, RepeatedScheduleCancelStaysBounded) {
  for (QueueBackend backend :
       {QueueBackend::kHeap, QueueBackend::kCalendar}) {
    SCOPED_TRACE(QueueBackendName(backend));
    EventQueue q(backend);
    // One long-lived event keeps the queue non-empty (live_ == 1).
    q.Push(1e18, [] {});
    for (int i = 0; i < 100000; ++i) {
      // A timeout scheduled far in the future and cancelled before
      // firing — the pattern that leaked before.
      const auto id = q.Push(1e12 + i, [] {});
      ASSERT_TRUE(q.Cancel(id));
      ASSERT_EQ(q.size(), 1u);
    }
    // Stale refs are purged whenever they outnumber live events (floor
    // 64), so the backend never holds more than live + floor + 1 refs.
    EXPECT_LE(q.backend_entries(), 66u);
    // And the payload slab reuses the same slot every cycle.
    EXPECT_LE(q.allocated_slots(), 2u);
  }
}

TEST(EventQueueMemoryTest, ScheduleCancelClearCyclesKeepSlabBounded) {
  for (QueueBackend backend :
       {QueueBackend::kHeap, QueueBackend::kCalendar}) {
    SCOPED_TRACE(QueueBackendName(backend));
    EventQueue q(backend);
    for (int cycle = 0; cycle < 200; ++cycle) {
      std::vector<uint64_t> ids;
      for (int i = 0; i < 100; ++i) {
        ids.push_back(q.Push(static_cast<double>(i), [] {}));
      }
      for (size_t i = 0; i < ids.size(); i += 2) {
        ASSERT_TRUE(q.Cancel(ids[i]));
      }
      q.Clear();
      ASSERT_TRUE(q.empty());
      ASSERT_EQ(q.backend_entries(), 0u);
    }
    // 200 cycles of 100 events reuse the same 100 slots.
    EXPECT_EQ(q.allocated_slots(), 100u);
  }
}

TEST(EventQueueMemoryTest, CompactionPreservesOrderUnderChurn) {
  // Heavy cancel churn with interleaved pops: compaction must never
  // reorder or lose the surviving events.
  for (QueueBackend backend :
       {QueueBackend::kHeap, QueueBackend::kCalendar}) {
    SCOPED_TRACE(QueueBackendName(backend));
    EventQueue q(backend);
    Rng rng(99);
    std::vector<double> survivors;
    for (int i = 0; i < 20000; ++i) {
      const double t = rng.NextDouble() * 1e6;
      const auto id = q.Push(t, [] {});
      if (rng.NextBernoulli(0.9)) {
        ASSERT_TRUE(q.Cancel(id));
      } else {
        survivors.push_back(t);
      }
    }
    std::sort(survivors.begin(), survivors.end());
    for (const double expect : survivors) {
      double t;
      q.Pop(&t);
      ASSERT_DOUBLE_EQ(t, expect);
    }
    EXPECT_TRUE(q.empty());
  }
}

}  // namespace
}  // namespace bcast::des
