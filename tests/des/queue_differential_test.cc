// Differential correctness harness for the pending-event-set backends.
//
// The binary heap is the oracle: it is small enough to trust by
// inspection. The calendar queue must be observably indistinguishable
// from it, so randomized operation scripts — pushes across adversarial
// time distributions, cancels (head, middle, stale), pops whose
// callbacks re-enter Push, and clears — are replayed against both
// backends and every observable compared: the ids Push returns, the
// verdicts Cancel returns, and the exact (time, kind, marker) sequence
// of the pops. A failure prints the script seed; rerunning with that
// seed (and, if needed, a smaller op count) reproduces and shrinks it.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "des/event_queue.h"

namespace bcast::des {
namespace {

// One observable step of a script run. Push and Cancel record their
// results; Pop records everything the facade exposes about the event.
struct Observation {
  enum Op : uint8_t { kPush, kCancel, kPop, kClear } op;
  double time = 0.0;        // pop: timestamp (push: the scheduled time)
  uint64_t id = 0;          // push: returned id; cancel: target id
  uint64_t marker = 0;      // pop: which callback ran
  int kind = 0;             // pop: the EventKind byte
  bool ok = false;          // cancel: verdict
  uint64_t size_after = 0;  // q.size() after the step

  bool operator==(const Observation&) const = default;
};

// Draws an event time from one of several adversarial distributions so a
// single script exercises dense equal-time bursts, smooth DES-like
// schedules, and far-future outliers together.
double DrawTime(Rng& rng) {
  switch (rng.NextBounded(6)) {
    case 0:
      return static_cast<double>(rng.NextBounded(4));  // dense collisions
    case 1:
      return rng.NextDouble() * 1e3;  // smooth near-term spread
    case 2:
      return rng.NextExponential(50.0);  // DES think-time shape
    case 3:
      return static_cast<double>(rng.NextBounded(1 << 20)) * 1e6;  // sparse
    case 4:
      return -rng.NextDouble() * 100.0;  // past (EventQueue allows it)
    default:
      return 1e15 + rng.NextDouble();  // far-future outliers
  }
}

// Replays the script derived from \p seed against \p backend and returns
// the full observation log. All control decisions draw from the same
// seeded stream, so two backends with identical observable behaviour
// walk identical scripts.
std::vector<Observation> RunScript(QueueBackend backend, uint64_t seed,
                                   size_t num_ops) {
  Rng rng(seed);
  EventQueue q(backend);
  std::vector<Observation> log;
  log.reserve(num_ops + num_ops / 2);
  std::vector<uint64_t> outstanding;  // ids believed live
  uint64_t next_marker = 1;
  uint64_t last_marker = 0;            // set by the callback that just ran
  std::vector<Observation> reentrant;  // pushes made inside callbacks

  auto push_one = [&](double time) {
    const uint64_t marker = next_marker++;
    const auto kind = static_cast<EventKind>(rng.NextBounded(8));
    Rng nested = rng.Split(marker);
    const bool reenter = rng.NextBernoulli(0.1);
    const uint64_t id = q.Push(
        time,
        [&, marker, reenter, nested]() mutable {
          last_marker = marker;
          if (reenter) {
            // Re-entrant Push from a running callback, as coroutine
            // resumptions do constantly in the real kernel.
            const double t = DrawTime(nested);
            const uint64_t nested_id = q.Push(t, [] {});
            outstanding.push_back(nested_id);
            reentrant.push_back(Observation{Observation::kPush, t, nested_id,
                                            0, 0, true, q.size()});
          }
        },
        kind);
    outstanding.push_back(id);
    log.push_back(Observation{Observation::kPush, time, id, marker,
                              static_cast<int>(kind), true, q.size()});
  };

  for (size_t op = 0; op < num_ops; ++op) {
    const uint64_t roll = rng.NextBounded(100);
    if (roll < 45 || q.empty()) {
      double time = DrawTime(rng);
      push_one(time);
      // Occasionally a burst at exactly the same timestamp.
      if (rng.NextBernoulli(0.15)) {
        const uint64_t burst = 1 + rng.NextBounded(8);
        for (uint64_t i = 0; i < burst && op + 1 < num_ops; ++i, ++op) {
          push_one(time);
        }
      }
    } else if (roll < 65) {
      // Cancel: mostly a live id, sometimes a stale or bogus one.
      uint64_t id;
      if (rng.NextBernoulli(0.8) && !outstanding.empty()) {
        const size_t at = rng.NextBounded(outstanding.size());
        id = outstanding[at];
        outstanding.erase(outstanding.begin() + at);
      } else {
        id = rng.Next();  // almost surely invalid
      }
      const bool ok = q.Cancel(id);
      log.push_back(
          Observation{Observation::kCancel, 0.0, id, 0, 0, ok, q.size()});
    } else if (roll < 97) {
      double t;
      EventKind kind;
      std::function<void()> fn = q.Pop(&t, &kind);
      const size_t before = log.size();
      last_marker = 0;
      fn();  // may re-enter Push (recorded into `reentrant`)
      for (Observation& o : reentrant) log.push_back(o);
      reentrant.clear();
      log.insert(log.begin() + static_cast<ptrdiff_t>(before),
                 Observation{Observation::kPop, t, 0, last_marker,
                             static_cast<int>(kind), true, q.size()});
    } else {
      q.Clear();
      outstanding.clear();
      log.push_back(
          Observation{Observation::kClear, 0.0, 0, 0, 0, true, q.size()});
    }
  }
  // Drain: the tail of the sequence is as telling as the middle.
  while (!q.empty()) {
    double t;
    EventKind kind;
    std::function<void()> fn = q.Pop(&t, &kind);
    last_marker = 0;
    fn();
    log.push_back(Observation{Observation::kPop, t, 0, last_marker,
                              static_cast<int>(kind), true, q.size()});
    for (Observation& o : reentrant) log.push_back(o);
    reentrant.clear();
  }
  return log;
}

std::string Describe(const Observation& o) {
  std::ostringstream out;
  const char* names[] = {"push", "cancel", "pop", "clear"};
  out << names[o.op] << " time=" << o.time << " id=" << o.id
      << " marker=" << o.marker << " kind=" << o.kind << " ok=" << o.ok
      << " size_after=" << o.size_after;
  return out.str();
}

void ExpectIdenticalRuns(uint64_t seed, size_t num_ops) {
  SCOPED_TRACE("script seed " + std::to_string(seed) + ", " +
               std::to_string(num_ops) + " ops");
  const std::vector<Observation> heap =
      RunScript(QueueBackend::kHeap, seed, num_ops);
  const std::vector<Observation> calendar =
      RunScript(QueueBackend::kCalendar, seed, num_ops);
  ASSERT_EQ(heap.size(), calendar.size());
  for (size_t i = 0; i < heap.size(); ++i) {
    ASSERT_EQ(heap[i], calendar[i])
        << "first divergence at step " << i << ":\n  heap:     "
        << Describe(heap[i]) << "\n  calendar: " << Describe(calendar[i]);
  }
}

TEST(QueueDifferentialTest, TenThousandOpScripts) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ExpectIdenticalRuns(seed, 10000);
  }
}

TEST(QueueDifferentialTest, ManyShortScripts) {
  // Short scripts hit the empty/small-queue edges (first push after a
  // drain, cancel-at-head with one survivor) far more often per op.
  for (uint64_t seed = 100; seed < 140; ++seed) {
    ExpectIdenticalRuns(seed, 300);
  }
}

TEST(QueueDifferentialTest, CancelHeavyScript) {
  // A dedicated high-cancel mix: interleave pushes with immediate
  // cancels of the current head so the skip-stale path runs constantly.
  for (QueueBackend backend :
       {QueueBackend::kHeap, QueueBackend::kCalendar}) {
    SCOPED_TRACE(QueueBackendName(backend));
    EventQueue q(backend);
    Rng rng(7);
    std::multiset<double> live_times;  // reference model of live events
    std::map<uint64_t, double> time_of;
    auto pop_and_check = [&] {
      double t;
      q.Pop(&t);
      ASSERT_FALSE(live_times.empty());
      ASSERT_DOUBLE_EQ(t, *live_times.begin())
          << "pop was not the minimum live event";
      live_times.erase(live_times.begin());
    };
    for (int i = 0; i < 5000; ++i) {
      const double time = DrawTime(rng);
      const uint64_t id = q.Push(time, [] {});
      live_times.insert(time);
      time_of[id] = time;
      if (rng.NextBernoulli(0.7)) {
        // Cancelling the event just pushed frequently cancels the
        // current head, exercising the skip-stale path on every pop.
        ASSERT_TRUE(q.Cancel(id));
        live_times.erase(live_times.find(time_of[id]));
        time_of.erase(id);
      }
      if (rng.NextBernoulli(0.3) && !q.empty()) pop_and_check();
      ASSERT_EQ(q.size(), live_times.size());
    }
    while (!q.empty()) pop_and_check();
    EXPECT_TRUE(live_times.empty());
  }
}

TEST(QueueDifferentialTest, IdSequencesAreBackendInvariant) {
  // The ids Push hands out are part of the cross-backend contract (a
  // golden run cancels by id); check them directly on a simple script.
  EventQueue heap(QueueBackend::kHeap);
  EventQueue calendar(QueueBackend::kCalendar);
  std::vector<uint64_t> heap_ids, calendar_ids;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      heap_ids.push_back(heap.Push(static_cast<double>(i % 7), [] {}));
      calendar_ids.push_back(
          calendar.Push(static_cast<double>(i % 7), [] {}));
    }
    for (int i = 0; i < 50; ++i) {
      double t;
      heap.Pop(&t);
      calendar.Pop(&t);
    }
    heap.Clear();
    calendar.Clear();
  }
  EXPECT_EQ(heap_ids, calendar_ids);
}

}  // namespace
}  // namespace bcast::des
