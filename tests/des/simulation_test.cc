#include "des/simulation.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bcast::des {
namespace {

TEST(SimulationTest, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
}

TEST(SimulationTest, ScheduledCallbackAdvancesClock) {
  Simulation sim;
  double seen = -1.0;
  sim.Schedule(5.0, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimulationTest, CallbacksFireInOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, NestedSchedulingUsesCurrentTime) {
  Simulation sim;
  double inner_time = -1.0;
  sim.Schedule(2.0, [&] {
    sim.Schedule(3.0, [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(inner_time, 5.0);
}

TEST(SimulationTest, ScheduleAtAbsoluteTime) {
  Simulation sim;
  double seen = -1.0;
  sim.ScheduleAt(4.5, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(SimulationTest, CancelPreventsCallback) {
  Simulation sim;
  bool fired = false;
  const auto id = sim.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.CancelEvent(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // The remaining event still exists; a new Run picks it up.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.Schedule(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.RunUntil(2.0);  // inclusive
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  sim.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulationTest, RunUntilAdvancesClockWhenIdle) {
  Simulation sim;
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
}

TEST(SimulationTest, EventsDispatchedCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_dispatched(), 5u);
}

// --- Coroutine processes ---

Process CountTo(Simulation* sim, int n, double dt, std::vector<double>* log) {
  for (int i = 0; i < n; ++i) {
    co_await sim->Delay(dt);
    log->push_back(sim->Now());
  }
}

TEST(ProcessTest, DelayLoopAdvancesClock) {
  Simulation sim;
  std::vector<double> log;
  sim.Spawn(CountTo(&sim, 3, 2.5, &log));
  sim.Run();
  EXPECT_EQ(log, (std::vector<double>{2.5, 5.0, 7.5}));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(ProcessTest, MultipleProcessesInterleave) {
  Simulation sim;
  std::vector<double> fast, slow;
  sim.Spawn(CountTo(&sim, 4, 1.0, &fast));
  sim.Spawn(CountTo(&sim, 2, 2.0, &slow));
  sim.Run();
  EXPECT_EQ(fast, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(slow, (std::vector<double>{2.0, 4.0}));
}

Process ZeroDelay(Simulation* sim, std::vector<int>* log, int id) {
  co_await sim->Delay(0.0);
  log->push_back(id);
}

TEST(ProcessTest, SpawnOrderIsStartOrderAtTimeZero) {
  Simulation sim;
  std::vector<int> log;
  sim.Spawn(ZeroDelay(&sim, &log, 1));
  sim.Spawn(ZeroDelay(&sim, &log, 2));
  sim.Spawn(ZeroDelay(&sim, &log, 3));
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

Process Forever(Simulation* sim) {
  for (;;) co_await sim->Delay(1.0);
}

TEST(ProcessTest, UnfinishedProcessReclaimedByDestructor) {
  // Must not leak or crash: the simulation destroys the suspended frame.
  Simulation sim;
  sim.Spawn(Forever(&sim));
  sim.RunUntil(10.0);
  EXPECT_EQ(sim.live_processes(), 1u);
}

TEST(ProcessTest, NeverSpawnedProcessIsReclaimed) {
  // A Process that is created and dropped without Spawn must free itself.
  Simulation sim;
  { Process p = Forever(&sim); }
  SUCCEED();
}

TEST(ProcessTest, LiveProcessCountTracksCompletion) {
  Simulation sim;
  std::vector<double> log;
  sim.Spawn(CountTo(&sim, 1, 1.0, &log));
  sim.Spawn(CountTo(&sim, 5, 1.0, &log));
  EXPECT_EQ(sim.live_processes(), 2u);
  sim.RunUntil(2.0);
  EXPECT_EQ(sim.live_processes(), 1u);
  sim.Run();
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(ProfilingTest, DisabledByDefaultAndZeroed) {
  Simulation sim;
  EXPECT_FALSE(sim.profiling());
  sim.Schedule(1.0, [] {});
  sim.Run();
  EXPECT_EQ(sim.profile().total_dispatches(), 0u);
}

TEST(ProfilingTest, CountsMatchDispatchesPerKind) {
  Simulation sim;
  sim.EnableProfiling();
  sim.Schedule(1.0, [] {});  // kGeneric
  sim.Schedule(2.0, [] {}, EventKind::kSlot);
  sim.Schedule(3.0, [] {}, EventKind::kSlot);
  sim.Schedule(4.0, [] {}, EventKind::kStats);
  sim.Run();
  const DesProfile& profile = sim.profile();
  EXPECT_EQ(profile.total_dispatches(), sim.events_dispatched());
  EXPECT_EQ(
      profile.kinds[static_cast<size_t>(EventKind::kGeneric)].dispatches,
      1u);
  EXPECT_EQ(profile.kinds[static_cast<size_t>(EventKind::kSlot)].dispatches,
            2u);
  EXPECT_EQ(
      profile.kinds[static_cast<size_t>(EventKind::kStats)].dispatches,
      1u);
}

TEST(ProfilingTest, ProfilingDoesNotChangeEventOrder) {
  const auto run = [](bool profiled) {
    Simulation sim;
    if (profiled) sim.EnableProfiling();
    std::vector<int> order;
    sim.Schedule(2.0, [&order] { order.push_back(2); });
    sim.Schedule(1.0, [&order] { order.push_back(1); }, EventKind::kSlot);
    sim.Schedule(1.0, [&order] { order.push_back(3); });
    sim.Run();
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ProfilingTest, MergeAccumulatesElementWise) {
  DesProfile a;
  a.kinds[0].dispatches = 3;
  a.kinds[0].cpu_ns = 100;
  DesProfile b;
  b.kinds[0].dispatches = 2;
  b.kinds[1].dispatches = 5;
  a.Merge(b);
  EXPECT_EQ(a.kinds[0].dispatches, 5u);
  EXPECT_EQ(a.kinds[1].dispatches, 5u);
  EXPECT_EQ(a.total_dispatches(), 10u);
  EXPECT_EQ(a.total_cpu_ns(), 100u);
}

TEST(EventKindTest, EveryKindHasAName) {
  for (size_t i = 0; i < kNumEventKinds; ++i) {
    const char* name = EventKindName(static_cast<EventKind>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_STREQ(EventKindName(EventKind::kSlot), "slot");
  EXPECT_STREQ(EventKindName(EventKind::kStats), "stats");
}

TEST(SimulationDeathTest, NegativeDelayDies) {
  Simulation sim;
  EXPECT_DEATH(sim.Schedule(-1.0, [] {}), "Check failed");
}

TEST(SimulationDeathTest, ScheduleAtPastDies) {
  Simulation sim;
  sim.Schedule(5.0, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(1.0, [] {}), "Check failed");
}

}  // namespace
}  // namespace bcast::des
