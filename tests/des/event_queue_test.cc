#include "des/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace bcast::des {
namespace {

// Every contract test runs under both backends: the heap oracle and the
// calendar queue must be observably indistinguishable.
class EventQueueTest : public testing::TestWithParam<QueueBackend> {
 protected:
  EventQueue q{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueTest,
                         testing::Values(QueueBackend::kHeap,
                                         QueueBackend::kCalendar),
                         [](const auto& info) {
                           return QueueBackendName(info.param);
                         });

TEST_P(EventQueueTest, StartsEmpty) {
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST_P(EventQueueTest, ReportsItsBackend) {
  EXPECT_EQ(q.backend(), GetParam());
  EXPECT_STREQ(q.backend_name(), QueueBackendName(GetParam()));
}

TEST_P(EventQueueTest, PopsInTimeOrder) {
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    double t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, EqualTimesFireFifo) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    double t;
    q.Pop(&t)();
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(EventQueueTest, PopReportsTime) {
  q.Push(7.25, [] {});
  double t = 0.0;
  q.Pop(&t);
  EXPECT_DOUBLE_EQ(t, 7.25);
}

TEST_P(EventQueueTest, PopReportsKind) {
  q.Push(1.0, [] {}, EventKind::kSlot);
  q.Push(2.0, [] {}, EventKind::kPull);
  double t;
  EventKind kind;
  q.Pop(&t, &kind);
  EXPECT_EQ(kind, EventKind::kSlot);
  q.Pop(&t, &kind);
  EXPECT_EQ(kind, EventKind::kPull);
}

TEST_P(EventQueueTest, PeekTimeDoesNotPop) {
  q.Push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueTest, CancelRemovesEvent) {
  bool fired = false;
  const auto id = q.Push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST_P(EventQueueTest, CancelTwiceFails) {
  const auto id = q.Push(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST_P(EventQueueTest, CancelFiredEventFails) {
  const auto id = q.Push(1.0, [] {});
  double t;
  q.Pop(&t);
  EXPECT_FALSE(q.Cancel(id));
}

TEST_P(EventQueueTest, CancelUnknownIdFails) {
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(999));
}

TEST_P(EventQueueTest, CancelStaleIdFromReusedSlotFails) {
  const auto id1 = q.Push(1.0, [] {});
  double t;
  q.Pop(&t);
  // The new event reuses the slot under a new generation; the old id
  // must not cancel it.
  const auto id2 = q.Push(2.0, [] {});
  EXPECT_NE(id1, id2);
  EXPECT_FALSE(q.Cancel(id1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.Cancel(id2));
}

TEST_P(EventQueueTest, CancelMiddleKeepsOthers) {
  std::vector<int> order;
  q.Push(1.0, [&] { order.push_back(1); });
  const auto id2 = q.Push(2.0, [&] { order.push_back(2); });
  q.Push(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.Cancel(id2));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    double t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST_P(EventQueueTest, CancelHeadAdvancesPeek) {
  const auto id1 = q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_TRUE(q.Cancel(id1));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
}

TEST_P(EventQueueTest, ClearDropsEverything) {
  q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST_P(EventQueueTest, ClearInvalidatesOldIds) {
  const auto id = q.Push(1.0, [] {});
  q.Clear();
  EXPECT_FALSE(q.Cancel(id));
  q.Push(2.0, [] {});
  EXPECT_FALSE(q.Cancel(id));
}

TEST_P(EventQueueTest, NegativeTimesAreOrdered) {
  std::vector<double> popped;
  q.Push(0.0, [] {});
  q.Push(-5.5, [] {});
  q.Push(-1.0, [] {});
  while (!q.empty()) {
    double t;
    q.Pop(&t);
    popped.push_back(t);
  }
  EXPECT_EQ(popped, (std::vector<double>{-5.5, -1.0, 0.0}));
}

TEST_P(EventQueueTest, ManyEventsStressOrder) {
  // Deterministic pseudo-random times with duplicates.
  uint64_t state = 42;
  std::vector<double> times;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    times.push_back(static_cast<double>(state % 97));
  }
  std::vector<double> popped;
  for (double t : times) q.Push(t, [] {});
  while (!q.empty()) {
    double t;
    q.Pop(&t);
    popped.push_back(t);
  }
  for (size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), times.size());
}

using EventQueueDeathTest = EventQueueTest;
INSTANTIATE_TEST_SUITE_P(Backends, EventQueueDeathTest,
                         testing::Values(QueueBackend::kHeap,
                                         QueueBackend::kCalendar),
                         [](const auto& info) {
                           return QueueBackendName(info.param);
                         });

TEST_P(EventQueueDeathTest, PopEmptyDies) {
  double t;
  EXPECT_DEATH(q.Pop(&t), "empty EventQueue");
}

TEST_P(EventQueueDeathTest, PeekEmptyDies) {
  EXPECT_DEATH(q.PeekTime(), "empty EventQueue");
}

TEST_P(EventQueueDeathTest, NonFiniteTimesRejected) {
  EXPECT_DEATH(q.Push(std::numeric_limits<double>::quiet_NaN(), [] {}),
               "finite");
  EXPECT_DEATH(q.Push(std::numeric_limits<double>::infinity(), [] {}),
               "finite");
  EXPECT_DEATH(q.Push(-std::numeric_limits<double>::infinity(), [] {}),
               "finite");
}

TEST(QueueBackendTest, ParseRoundTrips) {
  QueueBackend backend;
  ASSERT_TRUE(ParseQueueBackend("heap", &backend));
  EXPECT_EQ(backend, QueueBackend::kHeap);
  ASSERT_TRUE(ParseQueueBackend("calendar", &backend));
  EXPECT_EQ(backend, QueueBackend::kCalendar);
  ASSERT_TRUE(ParseQueueBackend("auto", &backend));
  EXPECT_EQ(backend, QueueBackend::kAuto);
  EXPECT_FALSE(ParseQueueBackend("splay", &backend));
  EXPECT_FALSE(ParseQueueBackend("", &backend));
}

TEST(QueueBackendTest, AutoResolvesByClientCount) {
  // A handful of clients keeps the pending set tiny, where the heap
  // wins; the ceiling is 8 clients, and the boundary must be exact.
  EXPECT_EQ(ResolveQueueBackend(QueueBackend::kAuto, 0),
            QueueBackend::kHeap);
  EXPECT_EQ(ResolveQueueBackend(QueueBackend::kAuto, 1),
            QueueBackend::kHeap);
  EXPECT_EQ(ResolveQueueBackend(QueueBackend::kAuto, 8),
            QueueBackend::kHeap);
  EXPECT_EQ(ResolveQueueBackend(QueueBackend::kAuto, 9),
            QueueBackend::kCalendar);
  EXPECT_EQ(ResolveQueueBackend(QueueBackend::kAuto, 1000),
            QueueBackend::kCalendar);
}

TEST(QueueBackendTest, ExplicitBackendsPassThroughResolution) {
  for (uint64_t clients : {0u, 1u, 8u, 9u, 1000u}) {
    EXPECT_EQ(ResolveQueueBackend(QueueBackend::kHeap, clients),
              QueueBackend::kHeap);
    EXPECT_EQ(ResolveQueueBackend(QueueBackend::kCalendar, clients),
              QueueBackend::kCalendar);
  }
}

}  // namespace
}  // namespace bcast::des
