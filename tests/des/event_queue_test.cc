#include "des/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace bcast::des {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    double t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    double t;
    q.Pop(&t)();
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PopReportsTime) {
  EventQueue q;
  q.Push(7.25, [] {});
  double t = 0.0;
  q.Pop(&t);
  EXPECT_DOUBLE_EQ(t, 7.25);
}

TEST(EventQueueTest, PeekTimeDoesNotPop) {
  EventQueue q;
  q.Push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const auto id = q.Push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const auto id = q.Push(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelFiredEventFails) {
  EventQueue q;
  const auto id = q.Push(1.0, [] {});
  double t;
  q.Pop(&t);
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Push(1.0, [&] { order.push_back(1); });
  const auto id2 = q.Push(2.0, [&] { order.push_back(2); });
  q.Push(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.Cancel(id2));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    double t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelHeadAdvancesPeek) {
  EventQueue q;
  const auto id1 = q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_TRUE(q.Cancel(id1));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  // Deterministic pseudo-random times with duplicates.
  uint64_t state = 42;
  std::vector<double> times;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    times.push_back(static_cast<double>(state % 97));
  }
  std::vector<double> popped;
  for (double t : times) q.Push(t, [] {});
  while (!q.empty()) {
    double t;
    q.Pop(&t);
    popped.push_back(t);
  }
  for (size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), times.size());
}

TEST(EventQueueDeathTest, PopEmptyDies) {
  EventQueue q;
  double t;
  EXPECT_DEATH(q.Pop(&t), "empty EventQueue");
}

}  // namespace
}  // namespace bcast::des
