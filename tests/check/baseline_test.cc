#include "check/baseline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/report_reader.h"
#include "obs/run_report.h"

namespace bcast::check {
namespace {

obs::RunReport GoldenReport() {
  obs::RunReport report;
  report.tool = "bcastsim";
  report.mode = "single";
  report.config = "disks<500,2000,2500> delta=2 policy=LRU";
  report.seed = 42;
  report.seeds = 1;
  report.period = 11010;
  report.empty_slots = 10;
  report.requests = 20000;
  report.warmup_requests = 993;
  report.cache_hits = 14394;
  report.response = {20000, 424.0, 0.5, 3670.0, 100.0, 1844.0, 3584.0};
  report.tuning = {20000, 424.0, 0.5, 3670.0, 100.0, 1844.0, 3584.0};
  report.served_per_disk = {2938, 2668, 0};
  report.end_time = 9211919.0;
  report.events_dispatched = 27100;
  report.slots_per_second = 3.2e9;
  report.events_per_second = 9.4e6;
  return report;
}

const DiffEntry* FindEntry(const BaselineDiff& diff,
                           const std::string& metric) {
  for (const DiffEntry& e : diff.entries) {
    if (e.metric == metric) return &e;
  }
  return nullptr;
}

TEST(CompareReportsTest, IdenticalReportsPass) {
  const obs::RunReport golden = GoldenReport();
  const BaselineDiff diff = CompareReports(golden, golden);
  std::ostringstream out;
  PrintDiff(diff, out);
  EXPECT_TRUE(diff.ok()) << out.str();
  EXPECT_EQ(diff.failures(), 0u);
  EXPECT_TRUE(diff.structural_mismatches.empty());
}

TEST(CompareReportsTest, P99DriftBeyondToleranceFails) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.response.p99 *= 1.05;  // 5% > the 3% default
  const BaselineDiff diff = CompareReports(golden, actual);
  EXPECT_FALSE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "response.p99");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->ok);
  EXPECT_NEAR(e->relative_delta, 0.05, 1e-9);
}

TEST(CompareReportsTest, P99DriftWithinTolerancePasses) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.response.p99 *= 1.02;  // 2% < 3%
  const BaselineDiff diff = CompareReports(golden, actual);
  std::ostringstream out;
  PrintDiff(diff, out);
  EXPECT_TRUE(diff.ok()) << out.str();
}

TEST(CompareReportsTest, CountsAreExact) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.cache_hits += 1;  // off by one: a 0.007% drift, still a failure
  const BaselineDiff diff = CompareReports(golden, actual);
  EXPECT_FALSE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "requests.cache_hits");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->ok);
  EXPECT_EQ(e->tolerance, 0.0);
}

TEST(CompareReportsTest, PerDiskServesAreExact) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.served_per_disk[1] -= 1;
  EXPECT_FALSE(CompareReports(golden, actual).ok());
}

TEST(CompareReportsTest, ThroughputDriftFailsWhenChecked) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.slots_per_second *= 1.10;
  const BaselineDiff diff = CompareReports(golden, actual);
  EXPECT_FALSE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "throughput.slots_per_second");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->ok);
  EXPECT_FALSE(e->informational);
}

TEST(CompareReportsTest, ThroughputIsInformationalWhenSkipped) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.slots_per_second *= 10.0;  // a different machine entirely
  ToleranceOptions options;
  options.check_throughput = false;
  const BaselineDiff diff = CompareReports(golden, actual, options);
  std::ostringstream out;
  PrintDiff(diff, out);
  EXPECT_TRUE(diff.ok()) << out.str();
  const DiffEntry* e = FindEntry(diff, "throughput.slots_per_second");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->informational);
  EXPECT_GT(e->relative_delta, 1.0);  // still recorded for the artifact
}

TEST(CompareReportsTest, CustomPerfToleranceApplies) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.response.mean *= 1.05;
  ToleranceOptions loose;
  loose.perf = 0.10;
  EXPECT_TRUE(CompareReports(golden, actual, loose).ok());
  ToleranceOptions tight;
  tight.perf = 0.01;
  EXPECT_FALSE(CompareReports(golden, actual, tight).ok());
}

TEST(CompareReportsTest, DifferentIdentityIsStructuralMismatch) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.config = "disks<100>@freqs{1}";
  actual.seed = 7;
  const BaselineDiff diff = CompareReports(golden, actual);
  EXPECT_FALSE(diff.ok());
  EXPECT_GE(diff.structural_mismatches.size(), 2u);
}

TEST(CompareReportsTest, DiskCountMismatchIsStructural) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.served_per_disk.pop_back();
  const BaselineDiff diff = CompareReports(golden, actual);
  EXPECT_FALSE(diff.ok());
  EXPECT_FALSE(diff.structural_mismatches.empty());
}

TEST(CompareReportsTest, DiffJsonSerializes) {
  const obs::RunReport golden = GoldenReport();
  obs::RunReport actual = golden;
  actual.response.p99 *= 1.5;
  const BaselineDiff diff = CompareReports(golden, actual);
  std::ostringstream out;
  WriteDiffJson(diff, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("response.p99"), std::string::npos);
}

TEST(CompareReportsTest, SurvivesJsonRoundTrip) {
  // The CI path: golden and candidate both travel through files. The
  // comparison must behave identically on re-parsed reports.
  const obs::RunReport golden = GoldenReport();
  std::ostringstream out;
  golden.WriteJson(out);
  Result<obs::RunReport> reloaded = obs::ReadRunReport(out.str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const BaselineDiff diff = CompareReports(golden, *reloaded);
  std::ostringstream printed;
  PrintDiff(diff, printed);
  EXPECT_TRUE(diff.ok()) << printed.str();
}

class FindBaselineFileTest : public ::testing::Test {
 protected:
  std::string WriteReport(const obs::RunReport& report,
                          const std::string& name) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    report.WriteJson(out);
    return path;
  }

  std::string dir_ = ::testing::TempDir() + "baseline_lookup";

  void SetUp() override {
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
};

TEST_F(FindBaselineFileTest, MatchesByIdentityNotFilename) {
  obs::RunReport other = GoldenReport();
  other.config = "something else";
  WriteReport(other, "aaa_first_alphabetically.json");
  const std::string match = WriteReport(GoldenReport(), "zzz_match.json");

  Result<std::string> found = FindBaselineFile(GoldenReport(), dir_);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(*found, match);
}

TEST_F(FindBaselineFileTest, NoMatchIsNotFound) {
  WriteReport(GoldenReport(), "golden.json");
  obs::RunReport other = GoldenReport();
  other.seed = 999;
  Result<std::string> found = FindBaselineFile(other, dir_);
  EXPECT_FALSE(found.ok());
}

TEST_F(FindBaselineFileTest, SkipsUnparseableNeighbours) {
  std::ofstream(dir_ + "/garbage.json") << "{not json";
  const std::string match = WriteReport(GoldenReport(), "golden.json");
  Result<std::string> found = FindBaselineFile(GoldenReport(), dir_);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(*found, match);
}

TEST_F(FindBaselineFileTest, MissingDirectoryIsCleanError) {
  Result<std::string> found =
      FindBaselineFile(GoldenReport(), dir_ + "/nope");
  EXPECT_FALSE(found.ok());
}

}  // namespace
}  // namespace bcast::check
