#include "check/invariants.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "broadcast/disk_config.h"
#include "broadcast/generator.h"
#include "broadcast/program.h"
#include "obs/run_report.h"

namespace bcast::check {
namespace {

bool ContainsFailure(const CheckList& list, const std::string& name) {
  return std::any_of(list.checks().begin(), list.checks().end(),
                     [&](const Check& c) { return c.name == name && !c.ok; });
}

obs::RunReport ConsistentReport() {
  obs::RunReport report;
  report.tool = "test";
  report.requests = 100;
  report.warmup_requests = 10;
  report.cache_hits = 40;
  report.response = {100, 10.0, 1.0, 30.0, 8.0, 20.0, 28.0};
  report.tuning = {100, 5.0, 1.0, 15.0, 4.0, 10.0, 14.0};
  report.served_per_disk = {50, 10};
  report.end_time = 1000.0;
  return report;
}

TEST(ProgramInvariantsTest, MultiDiskProgramPassesAll) {
  auto layout = MakeLayout({3, 5, 8}, {4, 2, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckProgramInvariants(*program);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
  EXPECT_GE(checks.checks().size(), 6u);
}

TEST(ProgramInvariantsTest, SkewedProgramFailsOnlyRegularity) {
  // The skewed reference program (Figure 2b) broadcasts each fast page in
  // consecutive bursts: valid bandwidth allocation, irregular spacing.
  auto layout = MakeLayout({2, 4}, {3, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateSkewedProgram(*layout);
  ASSERT_TRUE(program.ok());

  const CheckList strict = CheckProgramInvariants(*program);
  EXPECT_FALSE(strict.all_ok());
  EXPECT_TRUE(ContainsFailure(strict, "program.fixed_inter_arrival"));

  const CheckList relaxed =
      CheckProgramInvariants(*program, /*expect_regular=*/false);
  std::ostringstream out;
  relaxed.Print(out);
  EXPECT_TRUE(relaxed.all_ok()) << out.str();
}

TEST(ProgramInvariantsTest, FailureDetailNamesThePage) {
  auto layout = MakeLayout({1, 2}, {2, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateSkewedProgram(*layout);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckProgramInvariants(*program);
  for (const Check& c : checks.checks()) {
    if (c.name == "program.fixed_inter_arrival" && !c.ok) {
      EXPECT_FALSE(c.detail.empty());
      return;
    }
  }
  FAIL() << "expected a fixed_inter_arrival failure with detail";
}

TEST(LayoutAgreementTest, GeneratorOutputMatchesItsLayout) {
  auto layout = MakeDeltaLayout({5, 10, 15}, 2);
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckLayoutProgramAgreement(*layout, *program);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(LayoutAgreementTest, WrongLayoutIsCaught) {
  auto layout = MakeLayout({3, 5}, {2, 1});
  auto other = MakeLayout({3, 5}, {4, 1});
  ASSERT_TRUE(layout.ok());
  ASSERT_TRUE(other.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  // Claiming the program came from a different-frequency layout must trip
  // the per-page frequency and period-identity checks.
  const CheckList checks = CheckLayoutProgramAgreement(*other, *program);
  EXPECT_FALSE(checks.all_ok());
}

TEST(LayoutAgreementTest, FlatProgramMatchesOneDiskLayout) {
  auto layout = MakeLayout({12}, {1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateFlatProgram(12);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckLayoutProgramAgreement(*layout, *program);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(ReportInvariantsTest, ConsistentReportPasses) {
  const CheckList checks = CheckReportInvariants(ConsistentReport());
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(ReportInvariantsTest, NonMonotonePercentilesFail) {
  obs::RunReport report = ConsistentReport();
  report.response.p90 = report.response.p99 + 5.0;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.response.percentiles_monotone"));
}

TEST(ReportInvariantsTest, MeanOutsideRangeFails) {
  obs::RunReport report = ConsistentReport();
  report.response.mean = report.response.max * 2.0;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.response.mean_within_range"));
}

TEST(ReportInvariantsTest, HitsExceedingRequestsFail) {
  obs::RunReport report = ConsistentReport();
  report.cache_hits = report.requests + 1;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.hits_within_requests"));
}

TEST(ReportInvariantsTest, BrokenRequestAccountingFails) {
  obs::RunReport report = ConsistentReport();
  report.served_per_disk = {50, 5};  // hits + serves != requests
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.request_accounting"));
}

TEST(ReportInvariantsTest, MissingDiskBreakdownSkipsAccounting) {
  obs::RunReport report = ConsistentReport();
  report.served_per_disk.clear();
  const CheckList checks = CheckReportInvariants(report);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(ReportInvariantsTest, NegativeTimingFails) {
  obs::RunReport report = ConsistentReport();
  report.timings.measured_seconds = -0.5;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.timings_nonnegative"));
}

TEST(CheckListTest, ExtendAndCounting) {
  CheckList a;
  a.Add("one", true);
  CheckList b;
  b.Add("two", false, "broke");
  b.Add("three", true);
  a.Extend(b);
  EXPECT_EQ(a.checks().size(), 3u);
  EXPECT_FALSE(a.all_ok());
  EXPECT_EQ(a.failures(), 1u);
  std::ostringstream out;
  a.Print(out);
  EXPECT_NE(out.str().find("FAIL two: broke"), std::string::npos);
}

}  // namespace
}  // namespace bcast::check
