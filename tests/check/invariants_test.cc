#include "check/invariants.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "broadcast/disk_config.h"
#include "broadcast/generator.h"
#include "broadcast/program.h"
#include "obs/run_report.h"

namespace bcast::check {
namespace {

bool ContainsFailure(const CheckList& list, const std::string& name) {
  return std::any_of(list.checks().begin(), list.checks().end(),
                     [&](const Check& c) { return c.name == name && !c.ok; });
}

obs::RunReport ConsistentReport() {
  obs::RunReport report;
  report.tool = "test";
  report.requests = 100;
  report.warmup_requests = 10;
  report.cache_hits = 40;
  report.response = {100, 10.0, 1.0, 30.0, 8.0, 20.0, 28.0};
  report.tuning = {100, 5.0, 1.0, 15.0, 4.0, 10.0, 14.0};
  report.served_per_disk = {50, 10};
  report.end_time = 1000.0;
  return report;
}

TEST(ProgramInvariantsTest, MultiDiskProgramPassesAll) {
  auto layout = MakeLayout({3, 5, 8}, {4, 2, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckProgramInvariants(*program);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
  EXPECT_GE(checks.checks().size(), 6u);
}

TEST(ProgramInvariantsTest, SkewedProgramFailsOnlyRegularity) {
  // The skewed reference program (Figure 2b) broadcasts each fast page in
  // consecutive bursts: valid bandwidth allocation, irregular spacing.
  auto layout = MakeLayout({2, 4}, {3, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateSkewedProgram(*layout);
  ASSERT_TRUE(program.ok());

  const CheckList strict = CheckProgramInvariants(*program);
  EXPECT_FALSE(strict.all_ok());
  EXPECT_TRUE(ContainsFailure(strict, "program.fixed_inter_arrival"));

  const CheckList relaxed =
      CheckProgramInvariants(*program, /*expect_regular=*/false);
  std::ostringstream out;
  relaxed.Print(out);
  EXPECT_TRUE(relaxed.all_ok()) << out.str();
}

TEST(ProgramInvariantsTest, FailureDetailNamesThePage) {
  auto layout = MakeLayout({1, 2}, {2, 1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateSkewedProgram(*layout);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckProgramInvariants(*program);
  for (const Check& c : checks.checks()) {
    if (c.name == "program.fixed_inter_arrival" && !c.ok) {
      EXPECT_FALSE(c.detail.empty());
      return;
    }
  }
  FAIL() << "expected a fixed_inter_arrival failure with detail";
}

TEST(LayoutAgreementTest, GeneratorOutputMatchesItsLayout) {
  auto layout = MakeDeltaLayout({5, 10, 15}, 2);
  ASSERT_TRUE(layout.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckLayoutProgramAgreement(*layout, *program);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(LayoutAgreementTest, WrongLayoutIsCaught) {
  auto layout = MakeLayout({3, 5}, {2, 1});
  auto other = MakeLayout({3, 5}, {4, 1});
  ASSERT_TRUE(layout.ok());
  ASSERT_TRUE(other.ok());
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  // Claiming the program came from a different-frequency layout must trip
  // the per-page frequency and period-identity checks.
  const CheckList checks = CheckLayoutProgramAgreement(*other, *program);
  EXPECT_FALSE(checks.all_ok());
}

TEST(LayoutAgreementTest, FlatProgramMatchesOneDiskLayout) {
  auto layout = MakeLayout({12}, {1});
  ASSERT_TRUE(layout.ok());
  auto program = GenerateFlatProgram(12);
  ASSERT_TRUE(program.ok());
  const CheckList checks = CheckLayoutProgramAgreement(*layout, *program);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(ReportInvariantsTest, ConsistentReportPasses) {
  const CheckList checks = CheckReportInvariants(ConsistentReport());
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(ReportInvariantsTest, KnownOptimizerNamesPass) {
  for (const char* name : {"delta", "ksy", "rbo", ""}) {
    obs::RunReport report = ConsistentReport();
    report.optimizer = name;
    const CheckList checks = CheckReportInvariants(report);
    EXPECT_TRUE(checks.all_ok()) << "optimizer '" << name << "'";
  }
}

TEST(ReportInvariantsTest, UnknownOptimizerNameFails) {
  obs::RunReport report = ConsistentReport();
  report.optimizer = "annealing";
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.optimizer_known"));
}

TEST(ReportInvariantsTest, NonMonotonePercentilesFail) {
  obs::RunReport report = ConsistentReport();
  report.response.p90 = report.response.p99 + 5.0;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.response.percentiles_monotone"));
}

TEST(ReportInvariantsTest, MeanOutsideRangeFails) {
  obs::RunReport report = ConsistentReport();
  report.response.mean = report.response.max * 2.0;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.response.mean_within_range"));
}

TEST(ReportInvariantsTest, HitsExceedingRequestsFail) {
  obs::RunReport report = ConsistentReport();
  report.cache_hits = report.requests + 1;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.hits_within_requests"));
}

TEST(ReportInvariantsTest, BrokenRequestAccountingFails) {
  obs::RunReport report = ConsistentReport();
  report.served_per_disk = {50, 5};  // hits + serves != requests
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.request_accounting"));
}

TEST(ReportInvariantsTest, MissingDiskBreakdownSkipsAccounting) {
  obs::RunReport report = ConsistentReport();
  report.served_per_disk.clear();
  const CheckList checks = CheckReportInvariants(report);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(ReportInvariantsTest, NegativeTimingFails) {
  obs::RunReport report = ConsistentReport();
  report.timings.measured_seconds = -0.5;
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.timings_nonnegative"));
}

// --- Pull sweep gate ---

// A balanced sweep point at the given capacity/latency; accounting that
// always adds up (everything admitted, everything serviced).
PullSweepPoint PullPoint(double slots, double cold_rt) {
  PullSweepPoint p;
  p.pull_slots = slots;
  p.cold_mean_rt = cold_rt;
  p.cold_count = 100.0;
  p.mean_response = cold_rt / 2.0;
  if (slots > 0.0) {
    p.requests = 50.0;
    p.uplink_accepted = 50.0;
    p.serviced = 40.0;
    p.opportunities = 80.0;
  }
  return p;
}

TEST(PullSweepTest, MonotoneImprovementPasses) {
  // Out of order on purpose: the checker sorts by capacity itself.
  const CheckList checks = CheckPullImprovement(
      {PullPoint(2, 300.0), PullPoint(0, 5000.0), PullPoint(4, 150.0)});
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(PullSweepTest, RisingColdLatencyFails) {
  const CheckList checks = CheckPullImprovement(
      {PullPoint(0, 5000.0), PullPoint(2, 300.0), PullPoint(4, 400.0)});
  EXPECT_TRUE(ContainsFailure(checks, "pull_sweep.cold_latency_improves"));
}

TEST(PullSweepTest, SlackToleratesSmallRises) {
  const CheckList checks = CheckPullImprovement(
      {PullPoint(0, 5000.0), PullPoint(2, 300.0), PullPoint(4, 309.0)},
      /*slack=*/0.05);
  EXPECT_TRUE(checks.all_ok());
}

TEST(PullSweepTest, ZeroCapacityPointMustBeInert) {
  PullSweepPoint zero = PullPoint(0, 5000.0);
  zero.requests = 3.0;
  zero.uplink_accepted = 3.0;
  zero.serviced = 3.0;
  zero.opportunities = 3.0;
  const CheckList checks =
      CheckPullImprovement({zero, PullPoint(2, 300.0)});
  EXPECT_TRUE(ContainsFailure(checks, "pull_sweep.zero_capacity_inert"));
}

TEST(PullSweepTest, UnbalancedUplinkBooksFail) {
  PullSweepPoint bad = PullPoint(2, 300.0);
  bad.uplink_dropped = 1.0;  // accepted + dropped != requests
  const CheckList checks =
      CheckPullImprovement({PullPoint(0, 5000.0), bad});
  EXPECT_TRUE(ContainsFailure(checks, "pull_sweep.uplink_accounting"));
}

TEST(PullSweepTest, ServicingBeyondAdmissionFails) {
  PullSweepPoint bad = PullPoint(2, 300.0);
  bad.serviced = 60.0;  // > accepted - lost
  const CheckList checks =
      CheckPullImprovement({PullPoint(0, 5000.0), bad});
  EXPECT_TRUE(ContainsFailure(checks, "pull_sweep.uplink_accounting"));
}

TEST(PullSweepTest, DuplicateCapacitiesFail) {
  const CheckList checks = CheckPullImprovement(
      {PullPoint(2, 300.0), PullPoint(2, 310.0)});
  EXPECT_TRUE(ContainsFailure(checks, "pull_sweep.capacities_distinct"));
}

TEST(PullSweepTest, SinglePointCannotSpanTheSweep) {
  const CheckList checks = CheckPullImprovement({PullPoint(2, 300.0)});
  EXPECT_TRUE(ContainsFailure(checks, "pull_sweep.spans_capacities"));
}

TEST(PullSweepTest, PointsWithoutColdFetchesAreSkipped) {
  // A no-cold-data point must neither fail nor anchor the comparison.
  PullSweepPoint empty = PullPoint(2, 9999.0);
  empty.cold_count = 0.0;
  const CheckList checks = CheckPullImprovement(
      {PullPoint(0, 5000.0), empty, PullPoint(4, 150.0)});
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(ReportInvariantsTest, PullExtrasAccountingIsChecked) {
  obs::RunReport report = ConsistentReport();
  report.extra.emplace_back("pull_requests", 10.0);
  report.extra.emplace_back("pull_re_requests", 2.0);
  report.extra.emplace_back("pull_uplink_accepted", 11.0);
  report.extra.emplace_back("pull_uplink_dropped", 1.0);
  report.extra.emplace_back("pull_uplink_lost", 0.0);
  report.extra.emplace_back("pull_serviced", 8.0);
  report.extra.emplace_back("pull_opportunities", 20.0);
  EXPECT_TRUE(CheckReportInvariants(report).all_ok());

  report.extra[2].second = 12.0;  // books no longer balance
  const CheckList checks = CheckReportInvariants(report);
  EXPECT_TRUE(ContainsFailure(checks, "report.pull_uplink_accounting"));
}

TEST(ReportInvariantsTest, PullPointExtractionRoundTrips) {
  obs::RunReport report = ConsistentReport();
  report.extra.emplace_back("pull_slots", 4.0);
  report.extra.emplace_back("pull_cold_mean_rt", 178.8);
  report.extra.emplace_back("pull_cold_count", 2879.0);
  report.extra.emplace_back("pull_requests", 100.0);
  report.extra.emplace_back("pull_uplink_accepted", 100.0);
  const PullSweepPoint point = PullSweepPointFromReport(report);
  EXPECT_DOUBLE_EQ(point.pull_slots, 4.0);
  EXPECT_DOUBLE_EQ(point.cold_mean_rt, 178.8);
  EXPECT_DOUBLE_EQ(point.cold_count, 2879.0);
  EXPECT_DOUBLE_EQ(point.uplink_accepted, 100.0);
  // A pure push report anchors the sweep at zero capacity.
  const PullSweepPoint anchor =
      PullSweepPointFromReport(ConsistentReport());
  EXPECT_DOUBLE_EQ(anchor.pull_slots, 0.0);
  EXPECT_DOUBLE_EQ(anchor.serviced, 0.0);
}

// --- Adapt sweep gate ---

// A static anchor with a measured cold class and no controller activity.
AdaptSweepPoint StaticAnchor(double cold_rt) {
  AdaptSweepPoint p;
  p.cold_mean_rt = cold_rt;
  p.cold_count = 100.0;
  p.mean_response = cold_rt / 2.0;
  return p;
}

// A converged adaptive point that ran the controller.
AdaptSweepPoint AdaptPoint(double epoch, double cold_rt) {
  AdaptSweepPoint p = StaticAnchor(cold_rt);
  p.epoch_cycles = epoch;
  p.epochs = 10.0;
  p.rebuilds = 4.0;
  p.promotions = 12.0;
  p.min_slots = 1.0;
  p.max_slots = 8.0;
  p.final_slots = 1.0;
  p.slot_range_late = 0.0;
  return p;
}

TEST(AdaptSweepTest, StrictImprovementPasses) {
  const CheckList checks = CheckAdaptImprovement(
      {StaticAnchor(6700.0), AdaptPoint(2, 6500.0), AdaptPoint(4, 6600.0)});
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

TEST(AdaptSweepTest, EqualColdLatencyIsNotAnImprovement) {
  const CheckList checks = CheckAdaptImprovement(
      {StaticAnchor(6700.0), AdaptPoint(4, 6700.0)});
  EXPECT_TRUE(
      ContainsFailure(checks, "adapt_sweep.cold_latency_improves"));
}

TEST(AdaptSweepTest, SlackRelaxesTheStrictBar) {
  // 6700 * (1 - 0.05) = 6365: 6300 clears it, 6400 does not.
  EXPECT_TRUE(CheckAdaptImprovement({StaticAnchor(6700.0),
                                     AdaptPoint(4, 6300.0)},
                                    /*slack=*/0.05)
                  .all_ok());
  EXPECT_TRUE(ContainsFailure(
      CheckAdaptImprovement({StaticAnchor(6700.0), AdaptPoint(4, 6400.0)},
                            /*slack=*/0.05),
      "adapt_sweep.cold_latency_improves"));
}

TEST(AdaptSweepTest, ComparesAgainstTheBestAnchor) {
  // Beating the worse of two anchors is not enough.
  const CheckList checks = CheckAdaptImprovement(
      {StaticAnchor(7000.0), StaticAnchor(6400.0), AdaptPoint(4, 6500.0)});
  EXPECT_TRUE(
      ContainsFailure(checks, "adapt_sweep.cold_latency_improves"));
}

TEST(AdaptSweepTest, BothSidesOfTheComparisonAreRequired) {
  EXPECT_TRUE(ContainsFailure(
      CheckAdaptImprovement({AdaptPoint(4, 6500.0)}),
      "adapt_sweep.has_static_anchor"));
  EXPECT_TRUE(ContainsFailure(
      CheckAdaptImprovement({StaticAnchor(6700.0)}),
      "adapt_sweep.has_adaptive_point"));
  EXPECT_TRUE(ContainsFailure(CheckAdaptImprovement({}),
                              "adapt_sweep.nonempty"));
}

TEST(AdaptSweepTest, ActiveStaticAnchorFails) {
  AdaptSweepPoint anchor = StaticAnchor(6700.0);
  anchor.promotions = 1.0;  // a "static" run that re-seated a page
  const CheckList checks =
      CheckAdaptImprovement({anchor, AdaptPoint(4, 6500.0)});
  EXPECT_TRUE(ContainsFailure(checks, "adapt_sweep.static_anchor_inert"));
}

TEST(AdaptSweepTest, AdaptivePointMustRunTheController) {
  AdaptSweepPoint idle = AdaptPoint(4, 6500.0);
  idle.epochs = 0.0;
  const CheckList checks =
      CheckAdaptImprovement({StaticAnchor(6700.0), idle});
  EXPECT_TRUE(ContainsFailure(checks, "adapt_sweep.controller_ran"));
}

TEST(AdaptSweepTest, UnmeasuredColdClassFails) {
  AdaptSweepPoint blind = AdaptPoint(4, 0.0);
  blind.cold_count = 0.0;
  const CheckList checks =
      CheckAdaptImprovement({StaticAnchor(6700.0), blind});
  EXPECT_TRUE(ContainsFailure(checks, "adapt_sweep.cold_class_measured"));
}

TEST(AdaptSweepTest, FinalSlotsOutsideBoundsFail) {
  AdaptSweepPoint wild = AdaptPoint(4, 6500.0);
  wild.final_slots = 9.0;  // above max_slots = 8
  const CheckList checks =
      CheckAdaptImprovement({StaticAnchor(6700.0), wild});
  EXPECT_TRUE(ContainsFailure(checks, "adapt_sweep.slots_within_bounds"));
}

TEST(AdaptSweepTest, RequireGrowGatesOnSlotSplitDirection) {
  // A backlog scenario must show the split moving toward pull: grows
  // recorded AND a final count above the initial one. Holding steady,
  // or growing then shrinking back, both fail the gate.
  AdaptSweepPoint grew = AdaptPoint(4, 6500.0);
  grew.initial_slots = 1.0;
  grew.final_slots = 3.0;
  grew.slot_grows = 2.0;
  EXPECT_TRUE(CheckAdaptImprovement({StaticAnchor(6700.0), grew},
                                    /*slack=*/0.0, /*require_grow=*/true)
                  .all_ok());

  AdaptSweepPoint held = AdaptPoint(4, 6500.0);
  held.initial_slots = 1.0;
  held.final_slots = 1.0;
  EXPECT_TRUE(ContainsFailure(
      CheckAdaptImprovement({StaticAnchor(6700.0), held}, 0.0, true),
      "adapt_sweep.slot_split_grew"));

  AdaptSweepPoint bounced = AdaptPoint(4, 6500.0);
  bounced.initial_slots = 2.0;
  bounced.final_slots = 2.0;
  bounced.slot_grows = 1.0;
  bounced.slot_shrinks = 1.0;
  EXPECT_TRUE(ContainsFailure(
      CheckAdaptImprovement({StaticAnchor(6700.0), bounced}, 0.0, true),
      "adapt_sweep.slot_split_grew"));

  // Without the gate the same held point passes.
  EXPECT_TRUE(
      CheckAdaptImprovement({StaticAnchor(6700.0), held}).all_ok());
}

TEST(AdaptSweepTest, HuntingControllerFailsConvergence) {
  AdaptSweepPoint hunting = AdaptPoint(4, 6500.0);
  hunting.slot_range_late = 2.0;
  const CheckList checks =
      CheckAdaptImprovement({StaticAnchor(6700.0), hunting});
  EXPECT_TRUE(
      ContainsFailure(checks, "adapt_sweep.slot_controller_converges"));
}

TEST(ReportInvariantsTest, AdaptPointExtractionPrefersAdaptExtras) {
  obs::RunReport report = ConsistentReport();
  report.extra.emplace_back("adapt_epoch_cycles", 4.0);
  report.extra.emplace_back("adapt_epochs", 30.0);
  report.extra.emplace_back("adapt_promotions", 12.0);
  report.extra.emplace_back("adapt_rebuilds", 9.0);
  report.extra.emplace_back("adapt_cold_mean_rt", 6500.0);
  report.extra.emplace_back("adapt_cold_count", 700.0);
  report.extra.emplace_back("pull_cold_mean_rt", 9999.0);
  report.extra.emplace_back("pull_cold_count", 1.0);
  report.extra.emplace_back("adapt_min_slots", 1.0);
  report.extra.emplace_back("adapt_max_slots", 8.0);
  report.extra.emplace_back("adapt_final_slots", 1.0);
  report.extra.emplace_back("adapt_slot_range_late", 0.0);
  const AdaptSweepPoint point = AdaptSweepPointFromReport(report);
  EXPECT_DOUBLE_EQ(point.epoch_cycles, 4.0);
  EXPECT_DOUBLE_EQ(point.cold_mean_rt, 6500.0);  // adapt_* wins
  EXPECT_DOUBLE_EQ(point.cold_count, 700.0);
  EXPECT_DOUBLE_EQ(point.final_slots, 1.0);

  // A static hybrid report falls back to the pull_cold_* extras.
  obs::RunReport anchor = ConsistentReport();
  anchor.extra.emplace_back("pull_cold_mean_rt", 6700.0);
  anchor.extra.emplace_back("pull_cold_count", 650.0);
  const AdaptSweepPoint fallback = AdaptSweepPointFromReport(anchor);
  EXPECT_DOUBLE_EQ(fallback.epoch_cycles, 0.0);
  EXPECT_DOUBLE_EQ(fallback.cold_mean_rt, 6700.0);
  EXPECT_DOUBLE_EQ(fallback.cold_count, 650.0);
}

TEST(CheckListTest, ExtendAndCounting) {
  CheckList a;
  a.Add("one", true);
  CheckList b;
  b.Add("two", false, "broke");
  b.Add("three", true);
  a.Extend(b);
  EXPECT_EQ(a.checks().size(), 3u);
  EXPECT_FALSE(a.all_ok());
  EXPECT_EQ(a.failures(), 1u);
  std::ostringstream out;
  a.Print(out);
  EXPECT_NE(out.str().find("FAIL two: broke"), std::string::npos);
}

}  // namespace
}  // namespace bcast::check
