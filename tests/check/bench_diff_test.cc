// Microbenchmark diffing: parse google-benchmark JSON (skipping
// aggregate rows), tolerate small time drift, fail structural changes,
// and record new benchmarks informationally.

#include "check/bench_diff.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace bcast::check {
namespace {

std::string BenchJson(double foo_ns, double bar_us) {
  std::ostringstream out;
  out << R"({
  "context": {"host_name": "ci", "num_cpus": 4},
  "benchmarks": [
    {"name": "BM_Foo/64", "run_type": "iteration", "iterations": 1000,
     "real_time": )"
      << foo_ns << R"(, "cpu_time": )" << foo_ns
      << R"(, "time_unit": "ns"},
    {"name": "BM_Foo/64_mean", "run_type": "aggregate",
     "aggregate_name": "mean", "iterations": 3,
     "real_time": 1.0, "cpu_time": 1.0, "time_unit": "ns"},
    {"name": "BM_Bar", "run_type": "iteration", "iterations": 50,
     "real_time": )"
      << bar_us << R"(, "cpu_time": )" << bar_us
      << R"(, "time_unit": "us"}
  ]
})";
  return out.str();
}

const DiffEntry* FindEntry(const BaselineDiff& diff,
                           const std::string& metric) {
  for (const DiffEntry& e : diff.entries) {
    if (e.metric == metric) return &e;
  }
  return nullptr;
}

TEST(ParseBenchJsonTest, ParsesIterationRowsSkipsAggregates) {
  auto run = ParseBenchJson(BenchJson(120.0, 3.5));
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->entries.size(), 2u);  // the _mean aggregate is dropped
  EXPECT_EQ(run->entries[0].name, "BM_Foo/64");
  EXPECT_DOUBLE_EQ(run->entries[0].cpu_time, 120.0);
  EXPECT_EQ(run->entries[0].time_unit, "ns");
  EXPECT_EQ(run->entries[0].iterations, 1000u);
  EXPECT_EQ(run->entries[1].name, "BM_Bar");
  EXPECT_EQ(run->entries[1].time_unit, "us");
}

TEST(ParseBenchJsonTest, RejectsNonBenchmarkJson) {
  EXPECT_FALSE(ParseBenchJson(R"({"context": {}})").ok());
  EXPECT_FALSE(ParseBenchJson("not json at all").ok());
}

TEST(CompareBenchRunsTest, IdenticalRunsPass) {
  auto run = ParseBenchJson(BenchJson(120.0, 3.5));
  ASSERT_TRUE(run.ok());
  const BaselineDiff diff = CompareBenchRuns(*run, *run);
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.failures(), 0u);
  EXPECT_TRUE(diff.structural_mismatches.empty());
}

TEST(CompareBenchRunsTest, DriftWithinTolerancePasses) {
  auto baseline = ParseBenchJson(BenchJson(100.0, 3.5));
  auto actual = ParseBenchJson(BenchJson(108.0, 3.5));  // +8% < 10%
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(actual.ok());
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual);
  EXPECT_TRUE(diff.ok());
}

TEST(CompareBenchRunsTest, DriftBeyondToleranceFails) {
  auto baseline = ParseBenchJson(BenchJson(100.0, 3.5));
  auto actual = ParseBenchJson(BenchJson(125.0, 3.5));  // +25% > 10%
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(actual.ok());
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual);
  EXPECT_FALSE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "BM_Foo/64.cpu_ns");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->ok);
  EXPECT_NEAR(e->relative_delta, 0.25, 1e-9);
}

TEST(CompareBenchRunsTest, InformationalModeNeverFailsOnTime) {
  auto baseline = ParseBenchJson(BenchJson(100.0, 3.5));
  auto actual = ParseBenchJson(BenchJson(300.0, 3.5));  // 3x slower
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(actual.ok());
  BenchToleranceOptions options;
  options.check_time = false;
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual, options);
  EXPECT_TRUE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "BM_Foo/64.cpu_ns");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->informational);
}

TEST(CompareBenchRunsTest, RegressionsOnlyPassesLargeSpeedups) {
  // A 4x speedup trips the symmetric check but passes the perf-gate
  // posture, where only slowdowns count.
  auto baseline = ParseBenchJson(BenchJson(400.0, 3.5));
  auto actual = ParseBenchJson(BenchJson(100.0, 3.5));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_FALSE(CompareBenchRuns(*baseline, *actual).ok());
  BenchToleranceOptions options;
  options.regressions_only = true;
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual, options);
  EXPECT_TRUE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "BM_Foo/64.cpu_ns");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->informational);  // recorded, not gated
  EXPECT_NEAR(e->relative_delta, 0.75, 1e-9);
}

TEST(CompareBenchRunsTest, RegressionsOnlyStillFailsSlowdowns) {
  auto baseline = ParseBenchJson(BenchJson(100.0, 3.5));
  auto actual = ParseBenchJson(BenchJson(125.0, 3.5));  // +25% > 10%
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(actual.ok());
  BenchToleranceOptions options;
  options.regressions_only = true;
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual, options);
  EXPECT_FALSE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "BM_Foo/64.cpu_ns");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->ok);
}

TEST(CompareBenchRunsTest, UnitsAreNormalizedBeforeComparing) {
  // 3.5 us in the baseline vs 3500 ns in the candidate: identical.
  auto baseline = ParseBenchJson(BenchJson(100.0, 3.5));
  ASSERT_TRUE(baseline.ok());
  auto actual = ParseBenchJson(R"({
    "benchmarks": [
      {"name": "BM_Foo/64", "run_type": "iteration", "iterations": 1000,
       "real_time": 100.0, "cpu_time": 100.0, "time_unit": "ns"},
      {"name": "BM_Bar", "run_type": "iteration", "iterations": 50,
       "real_time": 3500.0, "cpu_time": 3500.0, "time_unit": "ns"}
    ]})");
  ASSERT_TRUE(actual.ok());
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual);
  EXPECT_TRUE(diff.ok()) << "unit normalization should equate us and ns";
}

TEST(CompareBenchRunsTest, MissingBenchmarkIsStructural) {
  auto baseline = ParseBenchJson(BenchJson(100.0, 3.5));
  ASSERT_TRUE(baseline.ok());
  auto actual = ParseBenchJson(R"({
    "benchmarks": [
      {"name": "BM_Foo/64", "run_type": "iteration", "iterations": 1000,
       "real_time": 100.0, "cpu_time": 100.0, "time_unit": "ns"}
    ]})");
  ASSERT_TRUE(actual.ok());
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual);
  EXPECT_FALSE(diff.ok());
  ASSERT_EQ(diff.structural_mismatches.size(), 1u);
  EXPECT_NE(diff.structural_mismatches[0].find("BM_Bar"),
            std::string::npos);
}

TEST(CompareBenchRunsTest, NewBenchmarkIsInformationalOnly) {
  auto baseline = ParseBenchJson(R"({
    "benchmarks": [
      {"name": "BM_Foo/64", "run_type": "iteration", "iterations": 1000,
       "real_time": 100.0, "cpu_time": 100.0, "time_unit": "ns"}
    ]})");
  ASSERT_TRUE(baseline.ok());
  auto actual = ParseBenchJson(BenchJson(100.0, 3.5));
  ASSERT_TRUE(actual.ok());
  const BaselineDiff diff = CompareBenchRuns(*baseline, *actual);
  EXPECT_TRUE(diff.ok());
  const DiffEntry* e = FindEntry(diff, "BM_Bar.cpu_ns (new)");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->informational);
  EXPECT_TRUE(e->ok);
}

}  // namespace
}  // namespace bcast::check
