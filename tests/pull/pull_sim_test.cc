// End-to-end behaviour of the hybrid subsystem: the bit-identity
// contract for inactive/zero-capacity pull, the latency win the sweep
// gate formalizes, determinism, the client decision rule (threshold,
// at-most-one outstanding, timeout recovery), and the validation walls.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broadcast/generator.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/multi_client.h"
#include "core/simulator.h"
#include "core/updates.h"
#include "des/simulation.h"
#include "pull/hybrid.h"
#include "pull/pull_client.h"
#include "pull/pull_server.h"

namespace bcast {
namespace {

// Small D-layout whose access range reaches the slowest disk, so cold
// fetches exist and pull has something to win on.
SimParams SmallParams() {
  SimParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.access_range = 500;
  params.region_size = 5;
  params.cache_size = 50;
  params.policy = PolicyKind::kLru;
  params.noise_percent = 0.0;
  params.measured_requests = 2000;
  return params;
}

TEST(PullSimTest, InactivePullKeepsConfigIdentity) {
  const SimParams params = SmallParams();
  EXPECT_FALSE(params.pull.Active());
  EXPECT_EQ(params.ToString().find("pull"), std::string::npos);

  SimParams forced = SmallParams();
  forced.pull.force = true;
  EXPECT_NE(forced.ToString().find("pull<"), std::string::npos);
}

TEST(PullSimTest, ForcedZeroPullIsBitIdenticalToPullOff) {
  // Zero pull slots leave the program, the event count, and every
  // client-visible number untouched: the machinery exists but is inert.
  const SimParams off = SmallParams();
  SimParams forced = SmallParams();
  forced.pull.force = true;
  auto a = RunSimulation(off);
  auto b = RunSimulation(forced);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->pull_active);
  EXPECT_TRUE(b->pull_active);
  EXPECT_EQ(a->period, b->period);
  EXPECT_EQ(a->metrics.requests(), b->metrics.requests());
  EXPECT_EQ(a->metrics.cache_hits(), b->metrics.cache_hits());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->events_dispatched, b->events_dispatched);
  // The inert server never moved: no requests, no pull deliveries.
  EXPECT_EQ(b->pull_stats.requests_attempted, 0u);
  EXPECT_EQ(b->pull_stats.serviced_pages, 0u);
  EXPECT_EQ(b->pull_stats.pull_opportunities, 0u);
}

TEST(PullSimTest, ForcedZeroPullIsBitIdenticalUnderChannelFaults) {
  // The identity must also hold with the fault layer active: pull and
  // fault randomness live in disjoint sub-streams.
  SimParams off = SmallParams();
  off.fault.loss = 0.05;
  off.fault.burst_len = 3.0;
  SimParams forced = off;
  forced.pull.force = true;
  auto a = RunSimulation(off);
  auto b = RunSimulation(forced);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->faults.lost, b->faults.lost);
  EXPECT_EQ(a->faults.retries, b->faults.retries);
}

TEST(PullSimTest, PullSlotsImproveColdLatency) {
  SimParams push = SmallParams();
  SimParams hybrid = SmallParams();
  hybrid.pull.pull_slots = 2;
  hybrid.pull.threshold = 50.0;
  auto a = RunSimulation(push);
  auto b = RunSimulation(hybrid);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->pull_active);
  EXPECT_GT(b->pull_stats.requests_attempted, 0u);
  EXPECT_GT(b->pull_stats.pull_deliveries, 0u);
  // The request stream is identical; only waits change.
  EXPECT_EQ(a->metrics.requests(), b->metrics.requests());
  EXPECT_LT(b->metrics.mean_response_time(),
            a->metrics.mean_response_time());
  // Uplink books balance.
  EXPECT_EQ(b->pull_stats.uplink_accepted + b->pull_stats.uplink_dropped,
            b->pull_stats.requests_attempted + b->pull_stats.re_requests);
  EXPECT_LE(b->pull_stats.serviced_pages,
            b->pull_stats.pull_opportunities);
}

TEST(PullSimTest, MoreCapacityHelpsMore) {
  SimParams one = SmallParams();
  one.pull.pull_slots = 1;
  one.pull.threshold = 50.0;
  SimParams four = SmallParams();
  four.pull.pull_slots = 4;
  four.pull.threshold = 50.0;
  auto a = RunSimulation(one);
  auto b = RunSimulation(four);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double a_cold = a->pull_stats.cold_wait.Summary().mean;
  const double b_cold = b->pull_stats.cold_wait.Summary().mean;
  EXPECT_GT(a->pull_stats.cold_wait.count(), 0u);
  EXPECT_LT(b_cold, a_cold);
}

TEST(PullSimTest, HybridRunsAreBitIdentical) {
  SimParams params = SmallParams();
  params.pull.pull_slots = 2;
  params.pull.threshold = 50.0;
  auto a = RunSimulation(params);
  auto b = RunSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->events_dispatched, b->events_dispatched);
  EXPECT_EQ(a->pull_stats.requests_attempted,
            b->pull_stats.requests_attempted);
  EXPECT_EQ(a->pull_stats.serviced_pages, b->pull_stats.serviced_pages);
  EXPECT_EQ(a->pull_stats.pull_deliveries, b->pull_stats.pull_deliveries);
}

TEST(PullSimTest, PullReportCarriesExtrasAndPassesInvariants) {
  SimParams params = SmallParams();
  params.pull.pull_slots = 2;
  params.pull.threshold = 50.0;
  auto result = RunSimulation(params);
  ASSERT_TRUE(result.ok());
  const obs::RunReport report = MakeRunReport(params, *result, "test");
  bool saw_requests = false;
  bool saw_cold = false;
  for (const auto& [key, value] : report.extra) {
    if (key == "pull_requests") saw_requests = true;
    if (key == "pull_cold_mean_rt") saw_cold = true;
  }
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_cold);
}

TEST(PullSimTest, PullRequiresTheMultiDiskProgram) {
  SimParams params = SmallParams();
  params.program_kind = ProgramKind::kSkewed;
  params.pull.pull_slots = 2;
  EXPECT_FALSE(params.Validate().ok());
  EXPECT_FALSE(RunSimulation(params).ok());
}

TEST(PullSimTest, UpdatesModeRejectsPull) {
  SimParams base = SmallParams();
  base.pull.pull_slots = 2;
  EXPECT_FALSE(RunUpdateSimulation(base, UpdateParams{}).ok());
}

// --- Client decision rule, tested against a live server. ---

struct ClientFixture {
  ClientFixture() {
    auto hybrid = pull::GenerateHybridProgram(
        *MakeDeltaLayout({5, 20, 25}, 2), 2);
    BCAST_CHECK(hybrid.ok());
    server = std::make_unique<pull::PullServer>(&sim, hybrid->layout,
                                               params);
    client = std::make_unique<pull::PullClient>(
        &sim, server.get(), params, std::nullopt, /*uplink_loss=*/0.0);
  }

  pull::PullParams params;
  des::Simulation sim;
  std::unique_ptr<pull::PullServer> server;
  std::unique_ptr<pull::PullClient> client;
};

TEST(PullClientTest, RequestsOnlyBeyondThreshold) {
  ClientFixture f;
  // Default threshold: scheduled waits at or below it never go uplink.
  f.client->MaybeRequest(3, 0.0, f.params.threshold);
  EXPECT_FALSE(f.client->outstanding());
  EXPECT_EQ(f.server->stats().requests_attempted, 0u);
  f.client->MaybeRequest(3, 0.0, f.params.threshold + 1.0);
  EXPECT_TRUE(f.client->outstanding());
  EXPECT_EQ(f.server->stats().requests_attempted, 1u);
}

TEST(PullClientTest, AtMostOneOutstandingRequest) {
  ClientFixture f;
  f.client->MaybeRequest(3, 0.0, 1e9);
  f.client->MaybeRequest(4, 0.5, 1e9);  // swallowed: one in flight
  EXPECT_EQ(f.server->stats().requests_attempted, 1u);
  EXPECT_EQ(f.server->queue_depth(), 1u);
  // Completion clears the slot; the next miss may request again.
  f.client->OnFetchDone(3, 1.0, 1.0, /*via_pull=*/false,
                        /*measured=*/false, /*cold=*/false);
  EXPECT_FALSE(f.client->outstanding());
  f.client->MaybeRequest(4, 2.0, 1e9);
  EXPECT_EQ(f.server->stats().requests_attempted, 2u);
}

TEST(PullClientTest, TimeoutReRequestsUntilServed) {
  // Total uplink loss: every send is admitted then lost, so the timeout
  // must keep firing. Bound the run; a perpetually-lost request re-arms
  // forever by design.
  ClientFixture f;
  pull::PullClient lossy(&f.sim, f.server.get(), f.params,
                         Rng(7), /*uplink_loss=*/1.0);
  lossy.MaybeRequest(3, 0.0, 1e9);
  const double horizon =
      20.0 * static_cast<double>(f.params.timeout_services) *
      f.server->ServiceInterval();
  f.sim.RunUntil(horizon);
  EXPECT_TRUE(lossy.outstanding());
  EXPECT_GT(f.server->stats().re_requests, 10u);
  EXPECT_EQ(f.server->stats().uplink_lost,
            f.server->stats().uplink_accepted);
  EXPECT_EQ(f.server->stats().serviced_pages, 0u);
}

TEST(PullClientTest, BackchannelCapacityDropsBurstTraffic) {
  // Ten distinct clients fire in the same instant; the per-slot window
  // (default capacity) cannot admit them all.
  ClientFixture f;
  std::vector<std::unique_ptr<pull::PullClient>> clients;
  for (int c = 0; c < 10; ++c) {
    clients.push_back(std::make_unique<pull::PullClient>(
        &f.sim, f.server.get(), f.params, std::nullopt, 0.0));
    clients.back()->MaybeRequest(static_cast<PageId>(c), 0.0, 1e9);
  }
  const pull::PullStats& stats = f.server->stats();
  EXPECT_EQ(stats.requests_attempted, 10u);
  EXPECT_GT(stats.uplink_dropped, 0u);
  EXPECT_EQ(stats.uplink_accepted + stats.uplink_dropped, 10u);
}

TEST(PullSimTest, PopulationRunAccumulatesSharedServerStats) {
  MultiClientParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.measured_requests = 500;
  for (int c = 0; c < 4; ++c) {
    ClientSpec spec;
    spec.access_range = 500;
    spec.region_size = 5;
    spec.cache_size = 20;
    spec.policy = PolicyKind::kLru;
    params.clients.push_back(spec);
  }
  params.pull.pull_slots = 2;
  params.pull.threshold = 50.0;
  auto result = RunMultiClientSimulation(params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pull_active);
  EXPECT_GT(result->pull_stats.requests_attempted, 0u);
  EXPECT_EQ(result->pull_stats.uplink_accepted +
                result->pull_stats.uplink_dropped,
            result->pull_stats.requests_attempted +
                result->pull_stats.re_requests);
  // Determinism holds for the population too.
  auto again = RunMultiClientSimulation(params);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(result->pull_stats.requests_attempted,
            again->pull_stats.requests_attempted);
  EXPECT_EQ(result->pull_stats.serviced_pages,
            again->pull_stats.serviced_pages);
}

}  // namespace
}  // namespace bcast
