#include "pull/request_queue.h"

#include <gtest/gtest.h>

namespace bcast::pull {
namespace {

TEST(RequestQueueTest, PopOnEmptyIsNullopt) {
  RequestQueue queue(PullScheduler::kFcfs);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.PopNext(0.0).has_value());
}

TEST(RequestQueueTest, SamePageRequestsMerge) {
  RequestQueue queue(PullScheduler::kFcfs);
  queue.Add(7, 1.0);
  queue.Add(7, 3.0);
  queue.Add(7, 5.0);
  EXPECT_EQ(queue.depth(), 1u);
  std::optional<PendingRequest> pick = queue.PopNext(6.0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->page, 7u);
  EXPECT_EQ(pick->count, 3u);
  EXPECT_DOUBLE_EQ(pick->first_time, 1.0);
  EXPECT_TRUE(queue.empty());
}

TEST(RequestQueueTest, ContainsTracksEntries) {
  RequestQueue queue(PullScheduler::kFcfs);
  EXPECT_FALSE(queue.Contains(2));
  queue.Add(2, 0.0);
  EXPECT_TRUE(queue.Contains(2));
  queue.PopNext(1.0);
  EXPECT_FALSE(queue.Contains(2));
}

TEST(RequestQueueTest, FcfsServesOldestFirst) {
  RequestQueue queue(PullScheduler::kFcfs);
  queue.Add(3, 2.0);
  queue.Add(1, 1.0);
  queue.Add(2, 3.0);
  queue.Add(2, 0.5);  // merge keeps the entry's original first_time (3.0)
  EXPECT_EQ(queue.PopNext(4.0)->page, 1u);
  EXPECT_EQ(queue.PopNext(4.0)->page, 3u);
  EXPECT_EQ(queue.PopNext(4.0)->page, 2u);
}

TEST(RequestQueueTest, FcfsBreaksEqualTimesByArrival) {
  RequestQueue queue(PullScheduler::kFcfs);
  queue.Add(9, 1.0);
  queue.Add(4, 1.0);
  EXPECT_EQ(queue.PopNext(2.0)->page, 9u);
  EXPECT_EQ(queue.PopNext(2.0)->page, 4u);
}

TEST(RequestQueueTest, MrfServesMostRequestedFirst) {
  RequestQueue queue(PullScheduler::kMrf);
  queue.Add(1, 0.0);
  queue.Add(2, 1.0);
  queue.Add(2, 2.0);
  queue.Add(3, 3.0);
  EXPECT_EQ(queue.PopNext(4.0)->page, 2u);  // count 2 beats age
  EXPECT_EQ(queue.PopNext(4.0)->page, 1u);  // counts tie, oldest wins
  EXPECT_EQ(queue.PopNext(4.0)->page, 3u);
}

TEST(RequestQueueTest, LxwBalancesCountAndWait) {
  RequestQueue queue(PullScheduler::kLxw);
  // Page 1: count 1, waiting since t=0 -> score 1 * 10 = 10 at t=10.
  // Page 2: count 3, waiting since t=7 -> score 3 * 3 = 9 at t=10.
  queue.Add(1, 0.0);
  queue.Add(2, 7.0);
  queue.Add(2, 8.0);
  queue.Add(2, 9.0);
  EXPECT_EQ(queue.PopNext(10.0)->page, 1u);
  // With page 1 gone, page 2 wins regardless of clock.
  EXPECT_EQ(queue.PopNext(10.0)->page, 2u);
}

TEST(RequestQueueTest, LxwPrefersPopularAtEqualWait) {
  RequestQueue queue(PullScheduler::kLxw);
  queue.Add(1, 5.0);
  queue.Add(2, 5.0);
  queue.Add(2, 5.0);
  EXPECT_EQ(queue.PopNext(9.0)->page, 2u);  // 2*4 beats 1*4
}

TEST(RequestQueueTest, DeterministicAcrossIdenticalStreams) {
  for (PullScheduler s : {PullScheduler::kFcfs, PullScheduler::kMrf,
                          PullScheduler::kLxw}) {
    RequestQueue a(s);
    RequestQueue b(s);
    for (int i = 0; i < 50; ++i) {
      const PageId page = static_cast<PageId>((i * 13) % 7);
      a.Add(page, static_cast<double>(i));
      b.Add(page, static_cast<double>(i));
    }
    while (!a.empty()) {
      std::optional<PendingRequest> pa = a.PopNext(100.0);
      std::optional<PendingRequest> pb = b.PopNext(100.0);
      ASSERT_TRUE(pa.has_value());
      ASSERT_TRUE(pb.has_value());
      EXPECT_EQ(pa->page, pb->page);
      EXPECT_EQ(pa->count, pb->count);
    }
    EXPECT_TRUE(b.empty());
  }
}

}  // namespace
}  // namespace bcast::pull
