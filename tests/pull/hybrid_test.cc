// Hybrid program construction: pull-slot placement, the zero-capacity
// identity, and the property the whole subsystem leans on — interleaving
// the same pull pattern into every minor cycle preserves the paper's
// fixed per-page inter-arrival guarantee exactly, for arbitrary valid
// (rel_freqs, pull_slots).

#include "pull/hybrid.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "broadcast/generator.h"
#include "check/invariants.h"
#include "common/rng.h"

namespace bcast::pull {
namespace {

DiskLayout D5() {
  auto layout = MakeDeltaLayout({500, 2000, 2500}, 2);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

// Per-page inter-arrival gaps of \p program, computed from the raw slot
// vector alone (wrapping the period).
std::map<PageId, std::vector<uint64_t>> GapsOf(
    const BroadcastProgram& program) {
  std::map<PageId, std::vector<uint64_t>> arrivals;
  for (uint64_t s = 0; s < program.period(); ++s) {
    const PageId page = program.page_at(s);
    if (page != kEmptySlot) arrivals[page].push_back(s);
  }
  std::map<PageId, std::vector<uint64_t>> gaps;
  for (const auto& [page, slots] : arrivals) {
    for (size_t i = 0; i < slots.size(); ++i) {
      const uint64_t next = slots[(i + 1) % slots.size()];
      gaps[page].push_back(i + 1 < slots.size()
                               ? next - slots[i]
                               : next + program.period() - slots[i]);
    }
  }
  return gaps;
}

TEST(HybridProgramTest, ZeroSlotsIsTheSlotForSlotPushProgram) {
  const DiskLayout layout = D5();
  auto push = GenerateMultiDiskProgram(layout);
  ASSERT_TRUE(push.ok());
  auto hybrid = GenerateHybridProgram(layout, 0);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_FALSE(hybrid->layout.enabled());
  EXPECT_EQ(hybrid->program.slots(), push->slots());
}

TEST(HybridProgramTest, PullSlotsAreEmptyAtTheLayoutOffsets) {
  auto hybrid = GenerateHybridProgram(D5(), 3);
  ASSERT_TRUE(hybrid.ok());
  const HybridLayout& hl = hybrid->layout;
  ASSERT_TRUE(hl.enabled());
  EXPECT_EQ(hl.pull_offsets.size(), 3u);
  EXPECT_EQ(hybrid->program.period(), hl.period());
  for (uint64_t s = 0; s < hybrid->program.period(); ++s) {
    if (hl.IsPullSlot(s)) {
      EXPECT_EQ(hybrid->program.page_at(s), kEmptySlot) << "slot " << s;
    }
  }
}

TEST(HybridProgramTest, PushSubsequenceIsThePushProgram) {
  const DiskLayout layout = D5();
  auto push = GenerateMultiDiskProgram(layout);
  ASSERT_TRUE(push.ok());
  auto hybrid = GenerateHybridProgram(layout, 2);
  ASSERT_TRUE(hybrid.ok());
  std::vector<PageId> kept;
  for (uint64_t s = 0; s < hybrid->program.period(); ++s) {
    if (!hybrid->layout.IsPullSlot(s)) {
      kept.push_back(hybrid->program.page_at(s));
    }
  }
  EXPECT_EQ(kept, push->slots());
}

TEST(HybridLayoutTest, NextPullSlotStartAndCountAgree) {
  auto hybrid = GenerateHybridProgram(D5(), 4);
  ASSERT_TRUE(hybrid.ok());
  const HybridLayout& hl = hybrid->layout;
  // Walk two periods via NextPullSlotStart; the visit count at any time t
  // must equal PullSlotsBefore(t).
  uint64_t visited = 0;
  double t = 0.0;
  const double horizon = 2.0 * static_cast<double>(hl.period());
  while (true) {
    const double at = hl.NextPullSlotStart(t);
    if (at >= horizon) break;
    EXPECT_EQ(hl.PullSlotsBefore(at), visited);
    EXPECT_EQ(hl.PullSlotsBefore(at + 0.5), visited + 1);
    EXPECT_TRUE(hl.IsPullSlot(static_cast<uint64_t>(at)));
    ++visited;
    t = at + 1.0;
  }
  EXPECT_EQ(visited, 2 * hl.num_minor * hl.pull_per_minor);
  EXPECT_EQ(hl.PullSlotsBefore(horizon), visited);
}

// The tentpole property: for arbitrary valid (rel_freqs, pull_slots),
// every page of the hybrid program still has *equal* inter-arrival gaps,
// and each gap is exactly the push gap scaled by (L + s) / L.
TEST(HybridProgramPropertyTest, InterArrivalStaysFixedForArbitraryConfigs) {
  Rng rng(20260805);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Random layout: 1-4 disks, small sizes, non-increasing frequencies.
    const uint64_t num_disks = 1 + rng.NextBounded(4);
    std::vector<uint64_t> sizes;
    std::vector<uint64_t> freqs;
    uint64_t freq = 1 + rng.NextBounded(8);
    for (uint64_t d = 0; d < num_disks; ++d) {
      sizes.push_back(1 + rng.NextBounded(12));
      freqs.push_back(freq);
      if (freq > 1) freq -= rng.NextBounded(freq);  // non-increasing, >= 1
      if (freq == 0) freq = 1;
    }
    auto layout = MakeLayout(sizes, freqs);
    if (!layout.ok()) continue;  // rare degenerate draw

    const uint64_t pull_slots = 1 + rng.NextBounded(7);
    auto push = GenerateMultiDiskProgram(*layout);
    ASSERT_TRUE(push.ok());
    auto hybrid = GenerateHybridProgram(*layout, pull_slots);
    ASSERT_TRUE(hybrid.ok());
    ++checked;

    const uint64_t push_len = hybrid->layout.push_minor_len;
    const uint64_t minor_len = hybrid->layout.minor_len();
    ASSERT_EQ(minor_len, push_len + pull_slots);

    // Independent re-derivation: the checker recomputes per-page gap
    // equality from the raw slot vector.
    check::CheckList checks =
        check::CheckProgramInvariants(hybrid->program, true);
    EXPECT_TRUE(checks.all_ok()) << [&] {
      std::ostringstream out;
      checks.Print(out);
      return out.str();
    }() << "sizes=" << sizes.size() << " pull_slots=" << pull_slots;

    // And the exact dilation law: hybrid gap == push gap * (L+s)/L.
    const auto push_gaps = GapsOf(*push);
    const auto hybrid_gaps = GapsOf(hybrid->program);
    ASSERT_EQ(push_gaps.size(), hybrid_gaps.size());
    for (const auto& [page, gaps] : push_gaps) {
      const auto it = hybrid_gaps.find(page);
      ASSERT_NE(it, hybrid_gaps.end());
      ASSERT_EQ(it->second.size(), gaps.size());
      for (size_t i = 0; i < gaps.size(); ++i) {
        EXPECT_EQ(gaps[i] % push_len, 0u);
        EXPECT_EQ(it->second[i], gaps[i] / push_len * minor_len)
            << "page " << page << " gap " << i;
      }
    }
  }
  EXPECT_GE(checked, 20);  // the generator must not degenerate-skip away
}

}  // namespace
}  // namespace bcast::pull
