#include "pull/pull_params.h"

#include <gtest/gtest.h>

namespace bcast::pull {
namespace {

TEST(PullParamsTest, DefaultIsInactiveAndValid) {
  PullParams params;
  EXPECT_FALSE(params.Active());
  EXPECT_TRUE(params.Validate().ok());
  EXPECT_EQ(params.ToString(), "");
}

TEST(PullParamsTest, SlotsActivate) {
  PullParams params;
  params.pull_slots = 2;
  EXPECT_TRUE(params.Active());
}

TEST(PullParamsTest, ForceActivatesWithZeroSlots) {
  PullParams params;
  params.force = true;
  EXPECT_TRUE(params.Active());
  EXPECT_EQ(params.pull_slots, 0u);
}

TEST(PullParamsTest, RejectsZeroUplinkCap) {
  PullParams params;
  params.uplink_cap = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(PullParamsTest, RejectsBadThreshold) {
  PullParams params;
  params.threshold = -1.0;
  EXPECT_FALSE(params.Validate().ok());
  params.threshold = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(params.Validate().ok());
}

TEST(PullParamsTest, RejectsZeroTimeout) {
  PullParams params;
  params.timeout_services = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(PullParamsTest, ToStringIsStable) {
  PullParams params;
  params.pull_slots = 2;
  params.uplink_cap = 3;
  params.scheduler = PullScheduler::kMrf;
  params.threshold = 50.0;
  params.timeout_services = 6;
  EXPECT_EQ(params.ToString(),
            "pull<slots=2,cap=3,sched=mrf,thresh=50,timeout=6>");
}

TEST(PullParamsTest, SchedulerNamesRoundTrip) {
  for (PullScheduler s : {PullScheduler::kFcfs, PullScheduler::kMrf,
                          PullScheduler::kLxw}) {
    Result<PullScheduler> parsed = ParsePullScheduler(PullSchedulerName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParsePullScheduler("rr").ok());
}

}  // namespace
}  // namespace bcast::pull
