// The chaos harness itself: scenario generation is a pure function of
// (seed, axes), disabling one axis never reshuffles another, scenarios
// run clean, the disabled-axes two-backend identity holds, and — the
// mutation check — a deliberately injected accounting bug is caught by
// an invariant (proving the net has no holes where it claims coverage).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "chaos/chaos.h"

namespace bcast::chaos {
namespace {

TEST(ChaosGeneratorTest, DeterministicInSeedAndAxes) {
  const ChaosScenario a = GenerateScenario(77, ChaosAxes::All());
  const ChaosScenario b = GenerateScenario(77, ChaosAxes::All());
  EXPECT_EQ(a.params.ToString(), b.params.ToString());
  EXPECT_EQ(a.horizon, b.horizon);
  const ChaosScenario c = GenerateScenario(78, ChaosAxes::All());
  EXPECT_NE(a.params.ToString(), c.params.ToString());
}

TEST(ChaosGeneratorTest, DisablingOneAxisNeverReshufflesOthers) {
  // The shrinker depends on this: turning the crash axis off must leave
  // every other axis's drawn values bit-identical.
  ChaosAxes no_crash = ChaosAxes::All();
  no_crash.crash = false;
  const ChaosScenario all = GenerateScenario(5, ChaosAxes::All());
  const ChaosScenario less = GenerateScenario(5, no_crash);
  EXPECT_EQ(less.params.fault.process.crash_every, 0.0);
  EXPECT_EQ(all.params.fault.loss, less.params.fault.loss);
  EXPECT_EQ(all.params.fault.doze_for, less.params.fault.doze_for);
  EXPECT_EQ(all.params.fault.process.stall_every,
            less.params.fault.process.stall_every);
  EXPECT_EQ(all.params.fault.process.slot_jitter,
            less.params.fault.process.slot_jitter);
  EXPECT_EQ(all.params.fault.process.version_every,
            less.params.fault.process.version_every);
  EXPECT_EQ(all.params.pull.threshold, less.params.pull.threshold);
  EXPECT_EQ(all.params.cache_size, less.params.cache_size);
  EXPECT_EQ(all.params.seed, less.params.seed);
}

TEST(ChaosGeneratorTest, AxesToStringAndEmpty) {
  EXPECT_EQ(ChaosAxes::None().ToString(), "none");
  EXPECT_TRUE(ChaosAxes::None().Empty());
  EXPECT_FALSE(ChaosAxes::All().Empty());
  ChaosAxes only_crash = ChaosAxes::None();
  only_crash.crash = true;
  EXPECT_EQ(only_crash.ToString(), "crash");
}

TEST(ChaosRunTest, FirstSeedsRunClean) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const ChaosScenario scenario = GenerateScenario(seed, ChaosAxes::All());
    const ChaosOutcome outcome = RunScenario(scenario);
    EXPECT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << (outcome.violations.empty()
                                      ? ""
                                      : outcome.violations[0].detail);
    EXPECT_TRUE(outcome.completed);
  }
}

TEST(ChaosRunTest, AxislessScenarioRunsClean) {
  const ChaosScenario scenario = GenerateScenario(3, ChaosAxes::None());
  EXPECT_FALSE(scenario.params.fault.process.Active());
  const ChaosOutcome outcome = RunScenario(scenario);
  EXPECT_TRUE(outcome.ok());
}

TEST(ChaosRunTest, MutationCheckCatchesInjectedAccountingBug) {
  // The acceptance gate: an off-by-one planted in the request books must
  // trip an invariant. If this test ever passes with outcome.ok(), the
  // net has a hole exactly where it claims coverage.
  const ChaosScenario scenario = GenerateScenario(0, ChaosAxes::All());
  const ChaosOutcome outcome =
      RunScenario(scenario, [](obs::RunReport* report) { ++report->requests; });
  ASSERT_FALSE(outcome.ok());
  bool caught = false;
  for (const ChaosViolation& v : outcome.violations) {
    if (v.invariant == "measured_count") caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(ChaosRunTest, DisabledIdentityHoldsOnSampledSeeds) {
  for (uint64_t seed : {0ull, 9ull, 23ull}) {
    const ChaosScenario scenario = GenerateScenario(seed, ChaosAxes::All());
    const auto violation = CheckDisabledIdentity(scenario);
    EXPECT_FALSE(violation.has_value())
        << "seed " << seed << ": " << violation->detail;
  }
}

TEST(ChaosOptimizerTest, AxisDrawsTheWholeFrontier) {
  // With the pull axis off, nothing forces a downgrade, so the draw must
  // reach every registered optimizer across a handful of seeds.
  ChaosAxes no_pull = ChaosAxes::All();
  no_pull.pull = false;
  std::set<std::string> seen;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    seen.insert(GenerateScenario(seed, no_pull).params.optimizer);
  }
  EXPECT_EQ(seen, (std::set<std::string>{"delta", "ksy", "rbo"}));
}

TEST(ChaosOptimizerTest, PullScenariosDowngradeRboToKsy) {
  // Validate rejects pull+rbo, so scenarios with the pull axis enabled
  // must never draw a bit-reversal schedule — and every generated
  // scenario must be structurally valid.
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const ChaosScenario scenario = GenerateScenario(seed, ChaosAxes::All());
    EXPECT_NE(scenario.params.optimizer, "rbo") << "seed " << seed;
    const Status st = scenario.params.Validate();
    EXPECT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
  }
}

TEST(ChaosOptimizerTest, DisabledAxisKeepsThePaperSchedule) {
  ChaosAxes no_opt = ChaosAxes::All();
  no_opt.optimizer = false;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const ChaosScenario all = GenerateScenario(seed, ChaosAxes::All());
    const ChaosScenario less = GenerateScenario(seed, no_opt);
    EXPECT_EQ(less.params.optimizer, "delta");
    // The other axes' drawn values stay put (the shrinker's contract);
    // only version_every may move, since its cadence is derived from the
    // on-air program's period.
    EXPECT_EQ(all.params.fault.loss, less.params.fault.loss);
    EXPECT_EQ(all.params.cache_size, less.params.cache_size);
    EXPECT_EQ(all.params.pull.threshold, less.params.pull.threshold);
    EXPECT_EQ(all.params.seed, less.params.seed);
  }
}

TEST(ChaosOptimizerTest, NamedInToString) {
  EXPECT_NE(ChaosAxes::All().ToString().find("optimizer"),
            std::string::npos);
  ChaosAxes only_optimizer = ChaosAxes::None();
  only_optimizer.optimizer = true;
  EXPECT_EQ(only_optimizer.ToString(), "optimizer");
  EXPECT_FALSE(only_optimizer.Empty());
}

TEST(ChaosPopulationTest, PopAxisDrawsBoundedShape) {
  bool saw_population = false;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    const ChaosScenario scenario = GenerateScenario(seed, ChaosAxes::All());
    EXPECT_GE(scenario.clients, 2u);
    EXPECT_LE(scenario.clients, 5u);
    EXPECT_GE(scenario.shards, 1u);
    EXPECT_LE(scenario.shards, scenario.clients);
    if (scenario.clients > 1) saw_population = true;
    // Disabling the axis collapses the shape without reshuffling the
    // rest of the scenario (the shrinker's contract).
    ChaosAxes no_pop = ChaosAxes::All();
    no_pop.pop = false;
    const ChaosScenario single = GenerateScenario(seed, no_pop);
    EXPECT_EQ(single.clients, 1u);
    EXPECT_EQ(single.shards, 1u);
    EXPECT_EQ(single.params.ToString(), scenario.params.ToString());
  }
  EXPECT_TRUE(saw_population);
}

TEST(ChaosPopulationTest, PopAxisNamedInToString) {
  EXPECT_NE(ChaosAxes::All().ToString().find("pop"), std::string::npos);
  ChaosAxes only_pop = ChaosAxes::None();
  only_pop.pop = true;
  EXPECT_EQ(only_pop.ToString(), "pop");
  EXPECT_FALSE(only_pop.Empty());
}

TEST(ChaosPopulationTest, ShardIdentityHoldsOnSampledSeeds) {
  // The K-invariance contract under full fault composition: the drawn
  // shard count and a single-shard re-run must serialize identically.
  for (uint64_t seed : {0ull, 5ull, 11ull}) {
    const ChaosScenario scenario = GenerateScenario(seed, ChaosAxes::All());
    const auto violation = CheckShardIdentity(scenario);
    EXPECT_FALSE(violation.has_value())
        << "seed " << seed << ": " << violation->detail;
  }
}

TEST(ChaosPopulationTest, ShardIdentityIsVacuousForSingleClient) {
  ChaosAxes no_pop = ChaosAxes::All();
  no_pop.pop = false;
  const ChaosScenario scenario = GenerateScenario(2, no_pop);
  EXPECT_FALSE(CheckShardIdentity(scenario).has_value());
}

TEST(ChaosMinimizeTest, PassingSeedMinimizesToItself) {
  // MinimizeAxes only removes an axis when the scenario still fails
  // without it; a passing scenario must come back untouched.
  const ChaosAxes minimal = MinimizeAxes(0, ChaosAxes::All());
  EXPECT_EQ(minimal.ToString(), ChaosAxes::All().ToString());
}

TEST(ChaosReproTest, CommandNamesTheSeed) {
  EXPECT_NE(ReproCommand(42).find("--chaos_seed 42"), std::string::npos);
  EXPECT_NE(ReproCommand(42).find("bcastchaos"), std::string::npos);
}

}  // namespace
}  // namespace bcast::chaos
