#include "client/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "cache/p_policy.h"
#include "client/access_generator.h"
#include "client/client.h"
#include "core/simulator.h"

namespace bcast {
namespace {

TEST(TraceTest, MakeValidatesInput) {
  EXPECT_FALSE(Trace::Make({}, 2.0).ok());
  EXPECT_FALSE(Trace::Make({1, 2}, -1.0).ok());
  EXPECT_FALSE(Trace::Make({kEmptySlot}, 2.0).ok());
  EXPECT_TRUE(Trace::Make({0, 1, 2}, 0.0).ok());
}

TEST(TraceTest, AccessRangeIsMaxPagePlusOne) {
  auto trace = Trace::Make({3, 7, 3}, 2.0);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->access_range(), 8u);
  EXPECT_EQ(trace->size(), 3u);
}

TEST(TraceTest, EmpiricalProbabilitiesSumToOne) {
  auto trace = Trace::Make({0, 0, 1, 2}, 2.0);
  ASSERT_TRUE(trace.ok());
  const auto probs = trace->EmpiricalProbabilities();
  EXPECT_DOUBLE_EQ(probs[0], 0.5);
  EXPECT_DOUBLE_EQ(probs[1], 0.25);
  EXPECT_DOUBLE_EQ(probs[2], 0.25);
}

TEST(TraceTest, RecordCapturesGeneratorOutput) {
  auto gen = AccessGenerator::Make(100, 10, 0.95, 2.0,
                                   ThinkTimeKind::kFixed, Rng(5));
  ASSERT_TRUE(gen.ok());
  auto gen_copy = AccessGenerator::Make(100, 10, 0.95, 2.0,
                                        ThinkTimeKind::kFixed, Rng(5));
  auto trace = Trace::Record(&*gen, 500);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 500u);
  EXPECT_DOUBLE_EQ(trace->think_time(), 2.0);
  for (PageId p : trace->pages()) {
    EXPECT_EQ(p, gen_copy->NextPage());
  }
}

TEST(TraceTest, SaveLoadRoundTrip) {
  auto trace = Trace::Make({5, 1, 4, 1, 5, 9}, 2.5);
  ASSERT_TRUE(trace.ok());
  std::ostringstream out;
  ASSERT_TRUE(trace->Save(&out).ok());
  std::istringstream in(out.str());
  auto loaded = Trace::Load(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->pages(), trace->pages());
  EXPECT_DOUBLE_EQ(loaded->think_time(), 2.5);
}

TEST(TraceTest, LoadRejectsMalformedInput) {
  auto load = [](const std::string& text) {
    std::istringstream in(text);
    return Trace::Load(&in);
  };
  EXPECT_FALSE(load("").ok());
  EXPECT_FALSE(load("wrong\n").ok());
  EXPECT_FALSE(load("bcast-trace v1\nrequests x think 2\n").ok());
  EXPECT_FALSE(
      load("bcast-trace v1\nrequests 3 think 2\npages 1 2\nend\n").ok());
  EXPECT_FALSE(
      load("bcast-trace v1\nrequests 2 think 2\npages 1 2\n").ok());
}

TEST(TraceSourceTest, ReplaysInOrderAndWraps) {
  auto trace = Trace::Make({7, 8, 9}, 1.0);
  ASSERT_TRUE(trace.ok());
  TraceSource source(&*trace);
  EXPECT_EQ(source.NextPage(), 7u);
  EXPECT_EQ(source.NextPage(), 8u);
  EXPECT_EQ(source.NextPage(), 9u);
  EXPECT_FALSE(source.wrapped());
  EXPECT_EQ(source.NextPage(), 7u);
  EXPECT_TRUE(source.wrapped());
  EXPECT_EQ(source.replayed(), 4u);
  EXPECT_DOUBLE_EQ(source.NextThinkTime(), 1.0);
}

TEST(TraceSourceTest, ProbabilityIsEmpirical) {
  auto trace = Trace::Make({0, 0, 0, 2}, 1.0);
  ASSERT_TRUE(trace.ok());
  TraceSource source(&*trace);
  EXPECT_DOUBLE_EQ(source.Probability(0), 0.75);
  EXPECT_DOUBLE_EQ(source.Probability(1), 0.0);
  EXPECT_DOUBLE_EQ(source.Probability(2), 0.25);
  EXPECT_DOUBLE_EQ(source.Probability(99), 0.0);
}

TEST(TraceSourceTest, DrivesAFullClientSimulation) {
  // End to end: record a synthetic workload, replay it through the
  // standard Client against a broadcast, with a P cache keyed by the
  // trace's empirical probabilities.
  auto gen = AccessGenerator::Make(50, 5, 0.95, 2.0, ThinkTimeKind::kFixed,
                                   Rng(9));
  ASSERT_TRUE(gen.ok());
  auto trace = Trace::Record(&*gen, 2000);
  ASSERT_TRUE(trace.ok());

  auto program = GenerateFlatProgram(100);
  ASSERT_TRUE(program.ok());
  Mapping mapping = Mapping::Identity(100);
  TraceSource source(&*trace);
  SimCatalog catalog(&source, &*program, &mapping);
  PCache cache(10, 100, &catalog);
  des::Simulation sim;
  BroadcastChannel channel(&sim, &*program);
  Client client(&sim, &channel, &cache, &source, &mapping,
                ClientRunConfig{1000, 100000});
  sim.Spawn(client.Run());
  sim.Run();
  EXPECT_TRUE(client.finished());
  EXPECT_EQ(client.metrics().requests(), 1000u);
  // The P cache holds the trace's empirically hottest pages, so the hit
  // rate must be at least the mass of the top-10 empirical pages minus
  // sampling slack.
  EXPECT_GT(client.metrics().hit_rate(), 0.3);
}

TEST(TraceSourceTest, ReplayIsDeterministic) {
  auto gen = AccessGenerator::Make(50, 5, 0.95, 2.0, ThinkTimeKind::kFixed,
                                   Rng(10));
  auto trace = Trace::Record(&*gen, 100);
  ASSERT_TRUE(trace.ok());
  TraceSource a(&*trace), b(&*trace);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a.NextPage(), b.NextPage());
  }
}

}  // namespace
}  // namespace bcast
