#include "client/schedule_learner.h"

#include <gtest/gtest.h>

#include "broadcast/generator.h"

namespace bcast {
namespace {

// Feeds `count` slots of `program` starting at slot `start`.
void Listen(ScheduleLearner* learner, const BroadcastProgram& program,
            uint64_t count, uint64_t start = 0) {
  for (uint64_t i = 0; i < count; ++i) {
    learner->Observe(program.page_at((start + i) % program.period()));
  }
}

TEST(ScheduleLearnerTest, EmptyLearnerNotConverged) {
  ScheduleLearner learner;
  EXPECT_EQ(learner.observed(), 0u);
  EXPECT_EQ(learner.CandidatePeriod(), 0u);
  EXPECT_FALSE(learner.converged());
  EXPECT_FALSE(learner.Build().ok());
}

TEST(ScheduleLearnerTest, LearnsFlatProgramExactly) {
  auto program = GenerateFlatProgram(10);
  ASSERT_TRUE(program.ok());
  ScheduleLearner learner;
  Listen(&learner, *program, 20);
  ASSERT_TRUE(learner.converged());
  EXPECT_EQ(learner.CandidatePeriod(), 10u);
  auto learned = learner.Build();
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_EQ(learned->slots(), program->slots());
}

TEST(ScheduleLearnerTest, ConvergesOnlyAfterTwoPeriods) {
  auto program = GenerateFlatProgram(10);
  ScheduleLearner learner;
  Listen(&learner, *program, 19);
  EXPECT_FALSE(learner.converged());
  learner.Observe(program->page_at(19 % 10));
  EXPECT_TRUE(learner.converged());
}

TEST(ScheduleLearnerTest, LearnsMultiDiskStructure) {
  auto layout = MakeLayout({1, 4, 4}, {4, 2, 1});  // Figure 3
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  ScheduleLearner learner;
  Listen(&learner, *program, 2 * program->period());
  ASSERT_TRUE(learner.converged());
  EXPECT_EQ(learner.CandidatePeriod(), program->period());
  auto learned = learner.Build();
  ASSERT_TRUE(learned.ok());
  // Frequencies and inferred disk assignment match the transmitter's.
  for (PageId p = 0; p < program->num_pages(); ++p) {
    EXPECT_EQ(learned->Frequency(p), program->Frequency(p)) << "page " << p;
    EXPECT_EQ(learned->DiskOf(p), program->DiskOf(p)) << "page " << p;
  }
}

TEST(ScheduleLearnerTest, MidStreamStartLearnsARotation) {
  auto layout = MakeLayout({1, 2}, {2, 1});  // A B A C
  auto program = GenerateMultiDiskProgram(*layout);
  ScheduleLearner learner;
  Listen(&learner, *program, 8, /*start=*/2);  // A C A B A C A B
  ASSERT_TRUE(learner.converged());
  EXPECT_EQ(learner.CandidatePeriod(), 4u);
  auto learned = learner.Build();
  ASSERT_TRUE(learned.ok());
  // A rotation preserves every page's gap structure.
  for (PageId p = 0; p < 3; ++p) {
    EXPECT_EQ(learned->InterArrivalGaps(p), program->InterArrivalGaps(p));
  }
}

TEST(ScheduleLearnerTest, RefutesPrematurePeriodGuess) {
  // Stream AAAB: after "AA" the candidate period is 1; the learner must
  // abandon it when B arrives.
  auto program = BroadcastProgram::Make({0, 0, 0, 1}, 2);
  ASSERT_TRUE(program.ok());
  ScheduleLearner learner;
  learner.Observe(0);
  learner.Observe(0);
  EXPECT_EQ(learner.CandidatePeriod(), 1u);
  EXPECT_TRUE(learner.converged());  // consistent so far — but wrong
  Listen(&learner, *program, 6, /*start=*/2);  // ... 0 1 0 0 0 1
  ASSERT_TRUE(learner.converged());
  EXPECT_EQ(learner.CandidatePeriod(), 4u);
  auto learned = learner.Build();
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(learned->slots(), program->slots());
}

TEST(ScheduleLearnerTest, HandlesEmptySlots) {
  auto layout = MakeLayout({3, 2}, {3, 1});  // pads an empty slot
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  ScheduleLearner learner;
  Listen(&learner, *program, 2 * program->period());
  ASSERT_TRUE(learner.converged());
  auto learned = learner.Build();
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(learned->EmptySlots(), program->EmptySlots());
}

TEST(ScheduleLearnerTest, AllEmptyStreamRejected) {
  ScheduleLearner learner;
  for (int i = 0; i < 10; ++i) learner.Observe(kEmptySlot);
  ASSERT_TRUE(learner.converged());
  EXPECT_FALSE(learner.Build().ok());
}

TEST(ScheduleLearnerTest, SparsePageIdsRejected) {
  // Pages 0 and 2 observed, 1 never: ids are not dense.
  ScheduleLearner learner;
  for (int i = 0; i < 4; ++i) {
    learner.Observe(0);
    learner.Observe(2);
  }
  ASSERT_TRUE(learner.converged());
  auto learned = learner.Build();
  EXPECT_FALSE(learned.ok());
  EXPECT_NE(learned.status().message().find("not dense"),
            std::string::npos);
}

TEST(ScheduleLearnerTest, LearnsPaperScaleD5) {
  auto layout = MakeDeltaLayout({500, 2000, 2500}, 3);
  auto program = GenerateMultiDiskProgram(*layout);
  ASSERT_TRUE(program.ok());
  ScheduleLearner learner;
  Listen(&learner, *program, 2 * program->period(), /*start=*/1234);
  ASSERT_TRUE(learner.converged());
  EXPECT_EQ(learner.CandidatePeriod(), program->period());
  auto learned = learner.Build();
  ASSERT_TRUE(learned.ok());
  for (PageId p : {0u, 499u, 500u, 2499u, 2500u, 4999u}) {
    EXPECT_EQ(learned->Frequency(p), program->Frequency(p));
    EXPECT_EQ(learned->DiskOf(p), program->DiskOf(p));
  }
}

}  // namespace
}  // namespace bcast
