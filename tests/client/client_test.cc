#include "client/client.h"

#include <gtest/gtest.h>

#include "broadcast/generator.h"
#include "cache/lru.h"
#include "core/simulator.h"

namespace bcast {
namespace {

// A small world: 20-page flat broadcast, client accesses the first 10.
struct SmallWorld {
  SmallWorld(uint64_t cache_size, uint64_t measured, double think = 2.0)
      : program(*GenerateFlatProgram(20)),
        mapping(Mapping::Identity(20)),
        gen(*AccessGenerator::Make(10, 5, 0.95, think,
                                   ThinkTimeKind::kFixed, Rng(3))),
        catalog(&gen, &program, &mapping),
        cache(cache_size, 20, &catalog),
        channel(&sim, &program),
        client(&sim, &channel, &cache, &gen, &mapping,
               ClientRunConfig{measured, 100000}) {}

  des::Simulation sim;
  BroadcastProgram program;
  Mapping mapping;
  AccessGenerator gen;
  SimCatalog catalog;
  LruCache cache;
  BroadcastChannel channel;
  Client client;
};

TEST(ClientTest, CompletesRequestedMeasurements) {
  SmallWorld world(1, 500);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  EXPECT_TRUE(world.client.finished());
  EXPECT_EQ(world.client.metrics().requests(), 500u);
}

TEST(ClientTest, NoCacheMeansNoHits) {
  // Capacity 1 still caches exactly one page, so back-to-back repeats can
  // hit; with a hot first region those exist but are rare. The paper
  // calls capacity 1 "no caching" — hits should be a small minority.
  SmallWorld world(1, 2000);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  EXPECT_LT(world.client.metrics().hit_rate(), 0.2);
}

TEST(ClientTest, FlatDiskResponseNearHalfPeriod) {
  SmallWorld world(1, 5000);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  // Flat 20-page disk: expected miss delay ~ 10-11 broadcast units.
  const ClientMetrics& m = world.client.metrics();
  const double miss_rate = 1.0 - m.hit_rate();
  EXPECT_NEAR(m.mean_response_time(), 10.5 * miss_rate, 1.5);
}

TEST(ClientTest, WarmupFillsCacheBeforeMeasuring) {
  SmallWorld world(5, 100);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  EXPECT_EQ(world.cache.size(), 5u);
  EXPECT_GE(world.client.warmup_requests(), 5u);
}

TEST(ClientTest, WarmupCapRespectedWhenCacheCannotFill) {
  // Capacity 15 > access range 10: the cache can never fill; warm-up must
  // stop at the fill target min(capacity, access_range).
  SmallWorld world(15, 100);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  EXPECT_TRUE(world.client.finished());
  EXPECT_EQ(world.cache.size(), 10u);
}

TEST(ClientTest, AllAccessRangeCachedMeansAllHits) {
  // Cache holds the whole access range: after warm-up every request hits.
  SmallWorld world(10, 1000);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  EXPECT_DOUBLE_EQ(world.client.metrics().hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(world.client.metrics().mean_response_time(), 0.0);
}

TEST(ClientTest, HitsPlusMissesEqualRequests) {
  SmallWorld world(3, 700);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  const ClientMetrics& m = world.client.metrics();
  EXPECT_EQ(m.cache_hits() + m.misses(), m.requests());
  uint64_t served = 0;
  for (uint64_t c : m.served_per_disk()) served += c;
  EXPECT_EQ(served, m.misses());
}

TEST(ClientTest, ThinkTimePacesRequests) {
  // With all hits (cache == access range) and think time T, the run lasts
  // ~measured * T units after warm-up.
  SmallWorld world(10, 1000, /*think=*/4.0);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  // End time ≈ warmup time + 1000 * 4; check the dominant term.
  EXPECT_GT(world.sim.Now(), 4000.0);
}

TEST(ClientTest, TuningEqualsWaitWithoutScheduleKnowledge) {
  SmallWorld world(1, 2000);
  world.sim.Spawn(world.client.Run());
  world.sim.Run();
  const ClientMetrics& m = world.client.metrics();
  // Ignorant client: radio-on time == response time on every request.
  EXPECT_DOUBLE_EQ(m.tuning_time().mean(), m.mean_response_time());
}

TEST(ClientTest, KnownScheduleTunesOneSlotPerMiss) {
  SmallWorld world(1, 2000);
  // Rebuild the client with schedule knowledge.
  Client knowing(&world.sim, &world.channel, &world.cache, &world.gen,
                 &world.mapping, ClientRunConfig{2000, 100000, true});
  world.sim.Spawn(knowing.Run());
  world.sim.Run();
  const ClientMetrics& m = knowing.metrics();
  // Tuning = 1 slot per miss, 0 per hit.
  const double expected = 1.0 - m.hit_rate();
  EXPECT_NEAR(m.tuning_time().mean(), expected, 1e-9);
  // Response time is unaffected by schedule knowledge.
  EXPECT_GT(m.mean_response_time(), 1.0);
}

TEST(ClientDeathTest, MappingSmallerThanAccessRangeDies) {
  des::Simulation sim;
  auto program = GenerateFlatProgram(5);
  ASSERT_TRUE(program.ok());
  Mapping mapping = Mapping::Identity(5);
  auto gen = AccessGenerator::Make(10, 5, 0.95, 2.0, ThinkTimeKind::kFixed,
                                   Rng(3));
  ASSERT_TRUE(gen.ok());
  SimCatalog catalog(&*gen, &*program, &mapping);
  LruCache cache(2, 10, &catalog);
  BroadcastChannel channel(&sim, &*program);
  EXPECT_DEATH(Client(&sim, &channel, &cache, &*gen, &mapping,
                      ClientRunConfig{10, 100}),
               "outside the broadcast");
}

}  // namespace
}  // namespace bcast
