#include "client/access_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bcast {
namespace {

AccessGenerator PaperGenerator(uint64_t seed = 1,
                               ThinkTimeKind kind = ThinkTimeKind::kFixed) {
  auto gen =
      AccessGenerator::Make(1000, 50, 0.95, 2.0, kind, Rng(seed));
  EXPECT_TRUE(gen.ok());
  return std::move(*gen);
}

TEST(AccessGeneratorTest, RejectsBadArguments) {
  EXPECT_FALSE(AccessGenerator::Make(0, 50, 0.95, 2.0,
                                     ThinkTimeKind::kFixed, Rng(1))
                   .ok());
  EXPECT_FALSE(AccessGenerator::Make(1000, 0, 0.95, 2.0,
                                     ThinkTimeKind::kFixed, Rng(1))
                   .ok());
  EXPECT_FALSE(AccessGenerator::Make(1000, 50, -1.0, 2.0,
                                     ThinkTimeKind::kFixed, Rng(1))
                   .ok());
  EXPECT_FALSE(AccessGenerator::Make(1000, 50, 0.95, -2.0,
                                     ThinkTimeKind::kFixed, Rng(1))
                   .ok());
}

TEST(AccessGeneratorTest, PagesStayInAccessRange) {
  AccessGenerator gen = PaperGenerator();
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.NextPage(), 1000u);
  }
}

TEST(AccessGeneratorTest, FixedThinkTimeIsConstant) {
  AccessGenerator gen = PaperGenerator();
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(gen.NextThinkTime(), 2.0);
  }
}

TEST(AccessGeneratorTest, ExponentialThinkTimeHasRightMean) {
  AccessGenerator gen = PaperGenerator(5, ThinkTimeKind::kExponential);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += gen.NextThinkTime();
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(AccessGeneratorTest, ZeroThinkTimeAllowed) {
  auto gen = AccessGenerator::Make(10, 5, 0.95, 0.0,
                                   ThinkTimeKind::kExponential, Rng(1));
  ASSERT_TRUE(gen.ok());
  EXPECT_DOUBLE_EQ(gen->NextThinkTime(), 0.0);
}

TEST(AccessGeneratorTest, DeterministicInSeed) {
  AccessGenerator a = PaperGenerator(7);
  AccessGenerator b = PaperGenerator(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextPage(), b.NextPage());
  }
}

TEST(AccessGeneratorTest, HotPagesDominateSamples) {
  AccessGenerator gen = PaperGenerator(11);
  const int n = 100000;
  int hot = 0;  // first region
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < n; ++i) {
    const PageId p = gen.NextPage();
    ++counts[p];
    if (p < 50) ++hot;
  }
  // The hottest region's share should match its Zipf weight.
  const double expected_hot = gen.Probability(0) * 50 * n;
  EXPECT_NEAR(hot, expected_hot, 5 * std::sqrt(expected_hot));
  // And it must far exceed the coldest region's.
  int cold = 0;
  for (PageId p = 950; p < 1000; ++p) cold += counts[p];
  EXPECT_GT(hot, 3 * cold);
}

TEST(AccessGeneratorTest, ProbabilityMatchesUnderlyingZipf) {
  AccessGenerator gen = PaperGenerator();
  EXPECT_GT(gen.Probability(0), gen.Probability(999));
  EXPECT_EQ(gen.Probability(1000), 0.0);
  double total = 0.0;
  for (PageId p = 0; p < 1000; ++p) total += gen.Probability(p);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace bcast
