#include "client/prefetch.h"

#include <gtest/gtest.h>

#include "broadcast/generator.h"
#include "client/client.h"
#include "cache/lru.h"
#include "core/simulator.h"

namespace bcast {
namespace {

struct PrefetchWorld {
  PrefetchWorld(uint64_t cache_size, uint64_t measured)
      : program(*GenerateMultiDiskProgram(
            *MakeDeltaLayout({10, 20, 30}, 2))),
        mapping(Mapping::Identity(60)),
        gen(*AccessGenerator::Make(30, 5, 0.95, 2.0, ThinkTimeKind::kFixed,
                                   Rng(5))),
        channel(&sim, &program),
        client(&sim, &channel, &gen, &mapping, cache_size,
               PrefetchClientConfig{measured, 50000}) {}

  des::Simulation sim;
  BroadcastProgram program;
  Mapping mapping;
  AccessGenerator gen;
  BroadcastChannel channel;
  PrefetchClient client;

  void Run() {
    sim.Spawn(client.RunRequests());
    sim.Spawn(client.RunMonitor());
    sim.Run();
  }
};

TEST(PrefetchClientTest, CompletesAndRecords) {
  PrefetchWorld world(5, 300);
  world.Run();
  EXPECT_EQ(world.client.metrics().requests(), 300u);
}

TEST(PrefetchClientTest, CacheBoundedByCapacity) {
  PrefetchWorld world(5, 300);
  world.Run();
  EXPECT_LE(world.client.cache_size(), 5u);
}

TEST(PrefetchClientTest, MonitorOnlyCachesAccessedPages) {
  PrefetchWorld world(8, 200);
  world.Run();
  // Pages outside the access range (>= 30) have zero probability and must
  // never occupy a slot.
  for (PageId p = 30; p < 60; ++p) {
    EXPECT_FALSE(world.client.Contains(p)) << "page " << p;
  }
}

TEST(PrefetchClientTest, PtValueUsesProbabilityAndWait) {
  PrefetchWorld world(5, 10);
  // Before running: at t=0, pt = P(page) * next-arrival-start.
  const double pt0 = world.client.PtValue(0, 0.0);
  const double expected =
      world.gen.Probability(0) * world.program.NextArrivalStart(0, 0.0);
  EXPECT_DOUBLE_EQ(pt0, expected);
  world.Run();  // leave the simulation clean
}

TEST(PrefetchClientTest, BeatsDemandOnlyLruAtSameCapacity) {
  // The whole point of prefetching: grabbing free pages off the air must
  // not hurt, and with a skewed workload it should clearly help.
  PrefetchWorld prefetch(8, 2000);
  prefetch.Run();
  const double prefetch_rt = prefetch.client.metrics().mean_response_time();

  // Demand-only LRU client in an identical world.
  des::Simulation sim;
  auto program =
      GenerateMultiDiskProgram(*MakeDeltaLayout({10, 20, 30}, 2));
  ASSERT_TRUE(program.ok());
  Mapping mapping = Mapping::Identity(60);
  auto gen = AccessGenerator::Make(30, 5, 0.95, 2.0, ThinkTimeKind::kFixed,
                                   Rng(5));
  ASSERT_TRUE(gen.ok());
  SimCatalog catalog(&*gen, &*program, &mapping);
  LruCache cache(8, 60, &catalog);
  BroadcastChannel channel(&sim, &*program);
  Client client(&sim, &channel, &cache, &*gen, &mapping,
                ClientRunConfig{2000, 50000});
  sim.Spawn(client.Run());
  sim.Run();
  const double lru_rt = client.metrics().mean_response_time();

  EXPECT_LT(prefetch_rt, lru_rt);
}

}  // namespace
}  // namespace bcast
