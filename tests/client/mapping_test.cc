#include "client/mapping.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace bcast {
namespace {

DiskLayout D5() {
  auto layout = MakeDeltaLayout({500, 2000, 2500}, 2);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

bool IsPermutation(const Mapping& mapping) {
  const PageId n = mapping.num_pages();
  std::vector<bool> seen(n, false);
  for (PageId l = 0; l < n; ++l) {
    const PageId p = mapping.ToPhysical(l);
    if (p >= n || seen[p]) return false;
    seen[p] = true;
    if (mapping.ToLogical(p) != l) return false;  // inverse consistency
  }
  return true;
}

TEST(MappingTest, IdentityByDefault) {
  auto mapping = Mapping::Make(D5(), 0, 0.0, Rng(1));
  ASSERT_TRUE(mapping.ok());
  for (PageId l = 0; l < 5000; l += 97) {
    EXPECT_EQ(mapping->ToPhysical(l), l);
    EXPECT_EQ(mapping->ToLogical(l), l);
  }
  EXPECT_EQ(mapping->PerturbedPages(), 0u);
}

TEST(MappingTest, IdentityFactory) {
  Mapping mapping = Mapping::Identity(100);
  EXPECT_EQ(mapping.num_pages(), 100u);
  EXPECT_TRUE(IsPermutation(mapping));
  EXPECT_EQ(mapping.ToPhysical(42), 42u);
}

TEST(MappingTest, OffsetPushesHottestToSlowDiskTail) {
  // Figure 4: with offset K, the K hottest logical pages wrap to the end
  // of the physical space — the tail of the slowest disk.
  auto mapping = Mapping::Make(D5(), 500, 0.0, Rng(1));
  ASSERT_TRUE(mapping.ok());
  // Logical 0 (hottest) lands at physical 4500 (inside slow disk 3).
  EXPECT_EQ(mapping->ToPhysical(0), 4500u);
  EXPECT_EQ(mapping->ToPhysical(499), 4999u);
  // Logical 500 becomes physical 0 — the head of the fastest disk.
  EXPECT_EQ(mapping->ToPhysical(500), 0u);
  EXPECT_EQ(mapping->ToPhysical(4999), 4499u);
}

TEST(MappingTest, OffsetIsStillAPermutation) {
  for (uint64_t offset : {1u, 250u, 500u, 4999u, 5000u}) {
    auto mapping = Mapping::Make(D5(), offset, 0.0, Rng(1));
    ASSERT_TRUE(mapping.ok()) << "offset " << offset;
    EXPECT_TRUE(IsPermutation(*mapping)) << "offset " << offset;
  }
}

TEST(MappingTest, FullOffsetWrapsToIdentity) {
  auto mapping = Mapping::Make(D5(), 5000, 0.0, Rng(1));
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->ToPhysical(123), 123u);
}

TEST(MappingTest, RejectsBadArguments) {
  EXPECT_FALSE(Mapping::Make(D5(), 5001, 0.0, Rng(1)).ok());
  EXPECT_FALSE(Mapping::Make(D5(), 0, -1.0, Rng(1)).ok());
  EXPECT_FALSE(Mapping::Make(D5(), 0, 101.0, Rng(1)).ok());
}

TEST(MappingTest, NoisePreservesPermutation) {
  for (double noise : {15.0, 30.0, 45.0, 60.0, 75.0, 100.0}) {
    auto mapping = Mapping::Make(D5(), 500, noise, Rng(99));
    ASSERT_TRUE(mapping.ok()) << "noise " << noise;
    EXPECT_TRUE(IsPermutation(*mapping)) << "noise " << noise;
  }
}

TEST(MappingTest, NoiseZeroChangesNothing) {
  auto a = Mapping::Make(D5(), 500, 0.0, Rng(1));
  auto b = Mapping::Make(D5(), 500, 0.0, Rng(2));
  for (PageId l = 0; l < 5000; l += 101) {
    EXPECT_EQ(a->ToPhysical(l), b->ToPhysical(l));
  }
}

TEST(MappingTest, PerturbedPagesScalesWithNoise) {
  // Noise is an upper bound on mismatch (same-disk swaps may cancel),
  // but more noise must perturb more pages, roughly proportionally.
  const uint64_t low =
      Mapping::Make(D5(), 0, 15.0, Rng(7))->PerturbedPages();
  const uint64_t high =
      Mapping::Make(D5(), 0, 75.0, Rng(7))->PerturbedPages();
  EXPECT_GT(low, 0u);
  EXPECT_GT(high, 2 * low);
  // 75% of 5000 pages get a coin flip; swaps move at least the flipped
  // page (unless it swaps with itself), so expect the same order.
  EXPECT_GT(high, 2000u);
  EXPECT_LE(high, 5000u);
}

TEST(MappingTest, NoiseDeterministicInSeed) {
  auto a = Mapping::Make(D5(), 500, 30.0, Rng(42));
  auto b = Mapping::Make(D5(), 500, 30.0, Rng(42));
  for (PageId l = 0; l < 5000; ++l) {
    ASSERT_EQ(a->ToPhysical(l), b->ToPhysical(l));
  }
}

TEST(MappingTest, DifferentSeedsGiveDifferentNoise) {
  auto a = Mapping::Make(D5(), 500, 30.0, Rng(1));
  auto b = Mapping::Make(D5(), 500, 30.0, Rng(2));
  uint64_t differing = 0;
  for (PageId l = 0; l < 5000; ++l) {
    if (a->ToPhysical(l) != b->ToPhysical(l)) ++differing;
  }
  EXPECT_GT(differing, 100u);
}

TEST(MappingTest, SingleDiskNoiseStaysValid) {
  auto layout = MakeDeltaLayout({100}, 0);
  ASSERT_TRUE(layout.ok());
  auto mapping = Mapping::Make(*layout, 10, 50.0, Rng(3));
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(IsPermutation(*mapping));
}

TEST(NoiseModelTest, CoinScopeRestrictsPerturbedInitiators) {
  // Coins only on the first 1000 logical pages: far fewer swaps happen
  // than with coins on all 5000, at the same noise level.
  NoiseModel narrow{75.0, 1000, NoiseModel::Destination::kUniformDisk};
  NoiseModel wide{75.0, 0, NoiseModel::Destination::kUniformDisk};
  auto a = Mapping::Make(D5(), 500, narrow, Rng(5));
  auto b = Mapping::Make(D5(), 500, wide, Rng(5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(IsPermutation(*a));
  EXPECT_LT(a->PerturbedPages(), b->PerturbedPages() / 2);
  // ~750 initiators, each swap moves <= 2 pages.
  EXPECT_LE(a->PerturbedPages(), 1600u);
}

TEST(NoiseModelTest, CoinScopeLargerThanDbMeansAll) {
  NoiseModel clamped{30.0, 999999, NoiseModel::Destination::kUniformDisk};
  NoiseModel all{30.0, 0, NoiseModel::Destination::kUniformDisk};
  auto a = Mapping::Make(D5(), 0, clamped, Rng(9));
  auto b = Mapping::Make(D5(), 0, all, Rng(9));
  for (PageId l = 0; l < 5000; ++l) {
    ASSERT_EQ(a->ToPhysical(l), b->ToPhysical(l));
  }
}

TEST(NoiseModelTest, UniformPageDestinationIsAPermutation) {
  NoiseModel noise{60.0, 0, NoiseModel::Destination::kUniformPage};
  auto mapping = Mapping::Make(D5(), 500, noise, Rng(11));
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(IsPermutation(*mapping));
  EXPECT_GT(mapping->PerturbedPages(), 0u);
}

TEST(NoiseModelTest, DestinationsProduceDifferentChurn) {
  // Uniform-disk pushes one third of all swap targets onto the 500-page
  // fast disk (2.5 hits per slot at 75% noise); uniform-page spreads them
  // evenly (0.75 hits per slot). The fast disk therefore retains far less
  // of its original content under uniform-disk destinations.
  auto fast_disk_survivors = [](const Mapping& mapping) {
    uint64_t count = 0;
    for (PageId phys = 0; phys < 500; ++phys) {
      // Under offset 0 the pre-noise occupant of physical p is logical p.
      if (mapping.ToLogical(phys) == phys) ++count;
    }
    return count;
  };
  NoiseModel disk_dest{75.0, 0, NoiseModel::Destination::kUniformDisk};
  NoiseModel page_dest{75.0, 0, NoiseModel::Destination::kUniformPage};
  uint64_t disk_survivors = 0, page_survivors = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    disk_survivors += fast_disk_survivors(
        *Mapping::Make(D5(), 0, disk_dest, Rng(seed)));
    page_survivors += fast_disk_survivors(
        *Mapping::Make(D5(), 0, page_dest, Rng(seed)));
  }
  EXPECT_LT(disk_survivors, page_survivors);
}

// Property sweep over (offset, noise) grid.
class MappingProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(MappingProperty, AlwaysABijection) {
  const auto& [offset, noise] = GetParam();
  auto mapping = Mapping::Make(D5(), offset, noise, Rng(offset * 100 + 7));
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(IsPermutation(*mapping));
}

INSTANTIATE_TEST_SUITE_P(
    OffsetNoiseGrid, MappingProperty,
    ::testing::Combine(::testing::Values(0, 50, 250, 500, 2500),
                       ::testing::Values(0.0, 15.0, 30.0, 45.0, 60.0,
                                         75.0)));

}  // namespace
}  // namespace bcast
