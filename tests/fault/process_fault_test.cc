// Process-level faults: crash–restart, server stalls, slot jitter, and
// version bumps. Covers the window generator's determinism, the backoff
// cap boundary, end-to-end semantics of each axis (runs complete, books
// balance, the right counters move), and the doze+loss+deadline liveness
// property over randomized fault seeds.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "core/multi_client.h"
#include "core/simulator.h"
#include "fault/fault_model.h"
#include "fault/process_faults.h"
#include "fault/recovery.h"

namespace bcast {
namespace {

SimParams SmallParams() {
  SimParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.access_range = 100;
  params.region_size = 5;
  params.cache_size = 50;
  params.policy = PolicyKind::kLru;
  params.noise_percent = 0.0;
  params.measured_requests = 2000;
  return params;
}

// --- FaultWindows -----------------------------------------------------

TEST(FaultWindowsTest, SameSeedSameWindows) {
  const Rng master(42);
  fault::FaultWindows a(fault::FaultStream(master, 3, fault::Purpose::kCrash),
                        100.0, 10.0);
  fault::FaultWindows b(fault::FaultStream(master, 3, fault::Purpose::kCrash),
                        100.0, 10.0);
  for (double t = 0.0; t < 5000.0; t += 7.0) {
    EXPECT_EQ(a.DownDuring(t, t + 3.0), b.DownDuring(t, t + 3.0));
    EXPECT_EQ(a.ClearTime(t), b.ClearTime(t));
    EXPECT_EQ(a.CountUpTo(t), b.CountUpTo(t));
  }
}

TEST(FaultWindowsTest, QueryOrderDoesNotChangeWindows) {
  // The lazy horizon extension must generate a window exactly once no
  // matter which query materializes it: probing far ahead first must
  // agree with probing incrementally.
  const Rng master(7);
  fault::FaultWindows ahead(
      fault::FaultStream(master, 0, fault::Purpose::kStall), 50.0, 5.0);
  fault::FaultWindows step(
      fault::FaultStream(master, 0, fault::Purpose::kStall), 50.0, 5.0);
  (void)ahead.CountUpTo(10000.0);  // materialize everything up front
  for (double t = 0.0; t < 10000.0; t += 13.0) {
    EXPECT_EQ(ahead.DownDuring(t, t + 1.0), step.DownDuring(t, t + 1.0));
  }
  EXPECT_EQ(ahead.CountUpTo(10000.0), step.CountUpTo(10000.0));
}

TEST(FaultWindowsTest, ClearTimeIsOutsideEveryWindow) {
  const Rng master(11);
  fault::FaultWindows w(fault::FaultStream(master, 1, fault::Purpose::kCrash),
                        30.0, 20.0);
  for (double t = 0.0; t < 3000.0; t += 1.7) {
    const double clear = w.ClearTime(t);
    EXPECT_GE(clear, t);
    EXPECT_FALSE(w.DownDuring(clear, clear));
    if (clear == t) {
      EXPECT_FALSE(w.DownDuring(t, t));
    }
  }
}

TEST(FaultWindowsTest, CountIsMonotoneAndGrows) {
  const Rng master(3);
  fault::FaultWindows w(fault::FaultStream(master, 2, fault::Purpose::kCrash),
                        40.0, 0.0);  // zero-width: counted, never down
  uint64_t last = 0;
  for (double t = 100.0; t <= 10000.0; t += 100.0) {
    const uint64_t n = w.CountUpTo(t);
    EXPECT_GE(n, last);
    EXPECT_FALSE(w.DownDuring(0.0, t));  // zero-width windows never down
    last = n;
  }
  EXPECT_GT(last, 0u);
}

// --- Backoff cap boundary (the overflow fix) --------------------------

TEST(BackoffPolicyTest, SaturatesAtCapWithoutOverflow) {
  fault::BackoffPolicy backoff(1.0, 2.0, 64.0);
  double last = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double d = backoff.Next();
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GE(d, last);
    EXPECT_LE(d, 64.0);
    last = d;
  }
  EXPECT_EQ(last, 64.0);
  EXPECT_EQ(backoff.peek(), 64.0);
}

TEST(BackoffPolicyTest, ExtremeCapNeverFormsInfinity) {
  // Near DBL_MAX the pre-fix multiply produced +inf before min() clipped
  // it; the saturation guard must pin to the cap instead.
  const double cap = std::numeric_limits<double>::max();
  fault::BackoffPolicy backoff(1.0, 1e308, cap);
  for (int i = 0; i < 10; ++i) {
    const double d = backoff.Next();
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_LE(d, cap);
  }
  EXPECT_EQ(backoff.peek(), cap);
  backoff.Reset();
  EXPECT_EQ(backoff.peek(), 1.0);
}

TEST(BackoffPolicyTest, CapBelowBasePinsToCap) {
  fault::BackoffPolicy backoff(8.0, 2.0, 4.0);
  (void)backoff.Next();
  // Growth can never exceed the cap even when the base starts above it.
  EXPECT_LE(backoff.peek(), 8.0);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(std::isfinite(backoff.Next()));
}

// --- End-to-end axis semantics ----------------------------------------

TEST(ProcessFaultTest, CrashRunCompletesAndCounts) {
  SimParams params = SmallParams();
  params.fault.process.crash_every = 2000.0;
  params.fault.process.crash_down = 50.0;
  auto a = RunSimulation(params);
  auto b = RunSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->faults_active);
  EXPECT_EQ(a->metrics.requests(), params.measured_requests);
  EXPECT_GT(a->faults.crashes, 0u);
  // Crashes are state loss, never request loss; and identical runs are
  // bit-identical.
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->faults.crashes, b->faults.crashes);
  EXPECT_EQ(a->end_time, b->end_time);
}

TEST(ProcessFaultTest, ColdRestartHurtsAtLeastAsMuchAsWarm) {
  SimParams warm = SmallParams();
  warm.fault.process.crash_every = 1500.0;
  warm.fault.process.crash_down = 20.0;
  SimParams cold = warm;
  cold.fault.process.crash_cold = true;
  auto w = RunSimulation(warm);
  auto c = RunSimulation(cold);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(c.ok());
  // Same crash schedule (same fault stream), but the cold variant
  // flushes the cache each time, so it can only lose hits — and the
  // longer run it causes can only encounter *more* crash windows.
  EXPECT_GT(w->faults.crashes, 0u);
  EXPECT_GE(c->faults.crashes, w->faults.crashes);
  EXPECT_LE(c->metrics.cache_hits(), w->metrics.cache_hits());
  EXPECT_GE(c->end_time, w->end_time);
}

TEST(ProcessFaultTest, StallsDelayButNeverDrop) {
  SimParams clean = SmallParams();
  SimParams stalled = SmallParams();
  stalled.fault.process.stall_every = 1000.0;
  stalled.fault.process.stall_len = 60.0;
  auto a = RunSimulation(clean);
  auto b = RunSimulation(stalled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->metrics.requests(), a->metrics.requests());
  EXPECT_GT(b->faults.stall_missed_arrivals, 0u);
  EXPECT_GE(b->metrics.mean_response_time(), a->metrics.mean_response_time());

  // Stalls keep the radio on: no doze accounting moves.
  EXPECT_EQ(b->faults.doze_missed_arrivals, 0u);
}

TEST(ProcessFaultTest, JitterIsLatencyNotLoss) {
  SimParams clean = SmallParams();
  SimParams jittery = SmallParams();
  jittery.fault.process.slot_jitter = 0.9;
  auto a = RunSimulation(clean);
  auto b = RunSimulation(jittery);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.requests(), b->metrics.requests());
  EXPECT_EQ(a->metrics.cache_hits(), b->metrics.cache_hits());
  EXPECT_GE(b->metrics.mean_response_time(), a->metrics.mean_response_time());
  EXPECT_EQ(b->faults.lost, 0u);
}

TEST(ProcessFaultTest, VersionBumpsAreCountedAndHarmless) {
  SimParams params = SmallParams();
  params.fault.process.version_every = 800.0;
  auto r = RunSimulation(params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->faults_active);
  EXPECT_GT(r->faults.version_bumps, 0u);
  EXPECT_EQ(r->metrics.requests(), params.measured_requests);
}

TEST(ProcessFaultTest, AllAxesComposedStillCompletes) {
  // Crash-during-stall-during-version-bump with loss and doze on top:
  // the composition must terminate with the full request count.
  SimParams params = SmallParams();
  params.fault.loss = 0.1;
  params.fault.burst_len = 3.0;
  params.fault.doze_for = 15.0;
  params.fault.awake_for = 80.0;
  params.fault.process.crash_every = 2500.0;
  params.fault.process.crash_down = 40.0;
  params.fault.process.crash_cold = true;
  params.fault.process.stall_every = 1800.0;
  params.fault.process.stall_len = 50.0;
  params.fault.process.slot_jitter = 0.5;
  params.fault.process.version_every = 2000.0;
  auto a = RunSimulation(params);
  auto b = RunSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.requests(), params.measured_requests);
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_GT(a->faults.crashes, 0u);
  EXPECT_GT(a->faults.version_bumps, 0u);
}

TEST(ProcessFaultTest, MultiClientCrashesAreIndependentPerClient) {
  MultiClientParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.measured_requests = 600;
  for (uint64_t shift : {0ull, 100ull, 200ull}) {
    ClientSpec spec;
    spec.access_range = 100;
    spec.region_size = 5;
    spec.cache_size = 20;
    spec.interest_shift = shift;
    params.clients.push_back(spec);
  }
  params.fault.process.crash_every = 1500.0;
  params.fault.process.crash_down = 30.0;
  auto a = RunMultiClientSimulation(params);
  auto b = RunMultiClientSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->faults_active);
  EXPECT_GT(a->faults.crashes, 0u);
  EXPECT_EQ(a->faults.crashes, b->faults.crashes);
  EXPECT_EQ(a->mean_response_times, b->mean_response_times);
}

TEST(ProcessFaultTest, HorizonTurnsHangsIntoErrors) {
  // An absurdly tight horizon must yield a Status error, not an abort —
  // the chaos harness's no-hang invariant depends on this.
  SimParams params = SmallParams();
  SimObservers observers;
  observers.horizon = 10.0;
  auto r = RunSimulation(params, observers);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("no-hang"), std::string::npos);
}

TEST(ProcessFaultTest, CommensurateDozeCycleStillCompletes) {
  // A duty cycle whose length exactly equals the program period is the
  // adversarial phase-lock: every arrival of a given page lands at the
  // same position in the cycle forever, so pages whose slot falls into
  // the doze stretch would never be heard. Panic listening (a deadline
  // expiry waives dozing for the rest of the wait) is what keeps this
  // live; without it the run blows through any horizon.
  SimParams params = SmallParams();
  // Only the slowest disk can lock: a frequency-f page airs at f distinct
  // phases of the cycle, so reach into the freq-1 tail of the database.
  params.access_range = 500;
  Result<BroadcastProgram> program = BuildProgram(params);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const double period = static_cast<double>(program->period());
  params.fault.doze_for = period / 2.0;
  params.fault.awake_for = period - params.fault.doze_for;
  SimObservers observers;
  observers.horizon = 4e6;
  auto r = RunSimulation(params, observers);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->metrics.requests(), params.measured_requests);
  // The starved pages are rescued through the deadline machinery.
  EXPECT_GT(r->faults.deadline_expiries, 0u);
}

// --- Liveness property: doze + bursty loss + deadlines ----------------

TEST(ProcessFaultProperty, DozeBurstyLossAlwaysResyncsWithinKCycles) {
  // Over randomized fault seeds the composition of a radio duty cycle,
  // bursty loss, and deadline expiry must never deadlock (the horizon
  // converts a hang into a test failure) and every resync episode must
  // complete within a few major cycles.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SimParams params = SmallParams();
    params.measured_requests = 500;
    params.fault.loss = 0.25;
    params.fault.burst_len = 4.0;
    params.fault.doze_for = 30.0;
    params.fault.awake_for = 60.0;
    params.fault.deadline_arrivals = 4;
    params.fault.fault_seed = seed * 7919;
    SimObservers observers;
    observers.horizon = 4e6;
    auto r = RunSimulation(params, observers);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    EXPECT_EQ(r->metrics.requests(), params.measured_requests)
        << "seed " << seed;
    if (r->faults.resync_slots.count() > 0) {
      // An episode ends when one specific page is finally received
      // intact; each extra cycle is another independent doze-or-loss
      // coin flip over that page's slot, so the tail is geometric.
      // Typical episodes resolve within a cycle or two; the bound
      // catches deadlock and unbounded drift, not the lucky tail.
      const double k = 20.0;
      EXPECT_LE(r->faults.resync_slots.max(),
                k * static_cast<double>(r->period))
          << "seed " << seed;
      EXPECT_LE(r->faults.resync_slots.Quantile(0.9),
                4.0 * static_cast<double>(r->period))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace bcast
