// End-to-end faulty waits through BroadcastChannel: forced-zero faults
// must be bit-identical to the ideal path, sustained corruption must
// starve only boundedly, doze windows spanning a whole major cycle must
// resynchronize, and a deadline that nominally expires mid-slot must be
// acted on at the end of the attempt that crossed it.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "broadcast/serialize.h"
#include "fault/fault_model.h"
#include "fault/fault_params.h"
#include "fault/recovery.h"

namespace bcast {
namespace {

// A B A C multi-disk program (A fast disk, B/C slow disk), period 4.
// A occupies slots 0 and 2 of each cycle (gap 2); B slot 1; C slot 3.
BroadcastProgram Abac() {
  auto layout = MakeLayout({1, 2}, {2, 1});
  auto program = GenerateMultiDiskProgram(*layout);
  EXPECT_TRUE(program.ok());
  return std::move(*program);
}

des::Process FetchSequence(des::Simulation* sim, BroadcastChannel* channel,
                           fault::Receiver* receiver,
                           std::vector<PageId> pages,
                           std::vector<double>* completion_times,
                           std::vector<double>* waits) {
  for (PageId p : pages) {
    const double wait = co_await channel->WaitForPage(p, receiver);
    completion_times->push_back(sim->Now());
    waits->push_back(wait);
  }
}

// Damages every transmission that starts before `until`, intact after.
class CorruptUntil : public fault::FaultModel {
 public:
  explicit CorruptUntil(double until) : until_(until) {}
  std::optional<fault::Transmission> Receive(PageId page,
                                             double slot_start) override {
    uint32_t checksum = PageChecksum(page);
    if (slot_start < until_) checksum ^= 0xDEADu;
    return fault::Transmission{page, checksum};
  }

 private:
  double until_;
};

// Loses every transmission that starts before `until`, intact after.
class DeafUntil : public fault::FaultModel {
 public:
  explicit DeafUntil(double until) : until_(until) {}
  std::optional<fault::Transmission> Receive(PageId page,
                                             double slot_start) override {
    if (slot_start < until_) return std::nullopt;
    return fault::Transmission{page, PageChecksum(page)};
  }

 private:
  double until_;
};

fault::FaultParams RecoveryParams() {
  fault::FaultParams params;
  params.force = true;
  params.deadline_arrivals = 4;
  params.backoff_base = 1.0;
  params.backoff_mult = 2.0;
  params.backoff_cap = 8.0;
  return params;
}

TEST(ChannelFaultTest, ForcedZeroFaultsMatchIdealPathExactly) {
  const std::vector<PageId> pages = {2, 1, 0, 0, 2};

  des::Simulation ideal_sim;
  BroadcastProgram ideal_program = Abac();
  BroadcastChannel ideal_channel(&ideal_sim, &ideal_program);
  std::vector<double> ideal_times, ideal_waits;
  ideal_sim.Spawn(FetchSequence(&ideal_sim, &ideal_channel, nullptr, pages,
                                &ideal_times, &ideal_waits));
  ideal_sim.Run();

  des::Simulation faulty_sim;
  BroadcastProgram faulty_program = Abac();
  BroadcastChannel faulty_channel(&faulty_sim, &faulty_program);
  fault::FaultParams params;
  params.force = true;  // active machinery, zero rates, no doze
  auto receiver = fault::MakeReceiver(
      params, 0, static_cast<double>(faulty_program.period()));
  std::vector<double> faulty_times, faulty_waits;
  faulty_sim.Spawn(FetchSequence(&faulty_sim, &faulty_channel,
                                 receiver.get(), pages, &faulty_times,
                                 &faulty_waits));
  faulty_sim.Run();

  EXPECT_EQ(ideal_times, faulty_times);
  EXPECT_EQ(ideal_waits, faulty_waits);
  EXPECT_EQ(receiver->stats().attempts, pages.size());
  EXPECT_EQ(receiver->stats().delivered, pages.size());
  EXPECT_EQ(receiver->stats().retries, 0u);
}

TEST(ChannelFaultTest, SustainedCorruptionStarvesOnlyBoundedly) {
  // Every transmission for the first two major cycles is damaged; the
  // client must keep retrying (checksum rejects each copy) and complete
  // within deadline-fallback + backoff-cap slots of the channel healing.
  const double kHealAt = 8.0;
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  fault::FaultParams params = RecoveryParams();
  fault::Receiver receiver(std::make_unique<CorruptUntil>(kHealAt), params,
                           fault::DozeSchedule{},
                           static_cast<double>(program.period()));
  std::vector<double> times, waits;
  sim.Spawn(
      FetchSequence(&sim, &channel, &receiver, {0}, &times, &waits));
  sim.Run();

  ASSERT_EQ(times.size(), 1u);
  EXPECT_GE(times[0], kHealAt);  // nothing intact before the channel heals
  // Starvation bound: once healed, at most one backoff-cap sleep plus one
  // period to the next arrival.
  EXPECT_LE(times[0],
            kHealAt + params.backoff_cap + program.period() + 1.0);
  EXPECT_EQ(receiver.stats().delivered, 1u);
  EXPECT_GE(receiver.stats().corrupted, 1u);
  EXPECT_EQ(receiver.stats().retries, receiver.stats().corrupted);
  EXPECT_EQ(receiver.stats().loss_delayed_fetches, 1u);
}

TEST(ChannelFaultTest, DozeSpanningMajorCycleResynchronizes) {
  // Awake [0,2), dozing [2,10): the doze window covers two full major
  // cycles (period 4). A fetch of C (arrival [3,4]) must sleep through,
  // wake at 10, and catch the next C at [11,12].
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  fault::FaultParams params = RecoveryParams();
  fault::Receiver receiver(std::make_unique<fault::IdealModel>(), params,
                           fault::DozeSchedule{2.0, 8.0, 0.0},
                           static_cast<double>(program.period()));
  std::vector<double> times, waits;
  sim.Spawn(
      FetchSequence(&sim, &channel, &receiver, {2}, &times, &waits));
  sim.Run();

  EXPECT_EQ(times, (std::vector<double>{12.0}));
  EXPECT_GE(receiver.stats().doze_missed_arrivals, 1u);
  EXPECT_EQ(receiver.stats().attempts, 1u);  // radio off slots not listened
  EXPECT_EQ(receiver.stats().resync_slots.count(), 1u);
  EXPECT_DOUBLE_EQ(receiver.stats().resync_slots.max(), 2.0);
}

TEST(ChannelFaultTest, MidSlotDeadlineActsAtSlotEnd) {
  // Page A (gap 2), k = 2: the deadline sits at t = 4, mid-way through
  // the backoff-deferred third attempt. Failed attempts end at 1, 3 and
  // 7; the expiry (nominally at 4) is acted on at 7 — immediate fallback
  // to the next arrival (end 9) instead of the 4-slot backoff that would
  // land at 13.
  des::Simulation sim;
  BroadcastProgram program = Abac();
  BroadcastChannel channel(&sim, &program);
  fault::FaultParams params = RecoveryParams();
  params.deadline_arrivals = 2;
  fault::Receiver receiver(std::make_unique<DeafUntil>(7.5), params,
                           fault::DozeSchedule{},
                           static_cast<double>(program.period()));
  std::vector<double> times, waits;
  sim.Spawn(
      FetchSequence(&sim, &channel, &receiver, {0}, &times, &waits));
  sim.Run();

  EXPECT_EQ(times, (std::vector<double>{9.0}));
  EXPECT_EQ(receiver.stats().deadline_expiries, 1u);
  EXPECT_EQ(receiver.stats().lost, 3u);
  EXPECT_EQ(receiver.stats().delivered, 1u);
}

}  // namespace
}  // namespace bcast
