// Channel impairment models: statistical loss rates, burstiness of the
// Gilbert-Elliott chain, corruption detectability via checksums, and
// stream-keying of the fault RNG.

#include "fault/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "broadcast/serialize.h"
#include "fault/fault_params.h"

namespace bcast::fault {
namespace {

TEST(TransmissionTest, IntactTransmissionVerifies) {
  const Transmission tx{7, PageChecksum(7)};
  EXPECT_TRUE(VerifyTransmission(tx));
}

TEST(TransmissionTest, DamagedChecksumDoesNotVerify) {
  Transmission tx{7, PageChecksum(7)};
  tx.checksum ^= 0x1u;
  EXPECT_FALSE(VerifyTransmission(tx));
}

TEST(IdealModelTest, HearsEverythingIntact) {
  IdealModel model;
  for (PageId p = 0; p < 100; ++p) {
    const auto tx = model.Receive(p, static_cast<double>(p));
    ASSERT_TRUE(tx.has_value());
    EXPECT_TRUE(VerifyTransmission(*tx));
  }
}

TEST(IidLossModelTest, LossRateConvergesToParameter) {
  IidLossModel model(0.2, Rng(123));
  int lost = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (!model.Receive(0, i).has_value()) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kTrials, 0.2, 0.02);
}

TEST(IidLossModelTest, ZeroLossHearsEverything) {
  IidLossModel model(0.0, Rng(123));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(model.Receive(0, i).has_value());
  }
}

TEST(GilbertElliottModelTest, StationaryLossMatchesConfiguredRate) {
  // p = 0.1, mean burst 4: p_exit = 0.25, p_enter = 0.1*0.25/0.9.
  const double p_exit = 0.25;
  const double p_enter = 0.1 * p_exit / 0.9;
  GilbertElliottModel model(p_enter, p_exit, Rng(7));
  int lost = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (!model.Receive(0, i).has_value()) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kTrials, 0.1, 0.02);
}

TEST(GilbertElliottModelTest, LossesComeInBursts) {
  // Mean burst length across the run should approach 1/p_exit.
  const double p_exit = 0.25;
  const double p_enter = 0.1 * p_exit / 0.9;
  GilbertElliottModel model(p_enter, p_exit, Rng(7));
  int bursts = 0;
  int lost = 0;
  bool in_burst = false;
  for (int i = 0; i < 200000; ++i) {
    const bool loss = !model.Receive(0, i).has_value();
    if (loss) {
      ++lost;
      if (!in_burst) ++bursts;
    }
    in_burst = loss;
  }
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(lost) / bursts;
  EXPECT_NEAR(mean_burst, 4.0, 0.5);
}

TEST(CorruptingModelTest, CorruptionIsDetectedByVerification) {
  CorruptingModel model(0.3, std::make_unique<IdealModel>(), Rng(99));
  int corrupted = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const auto tx = model.Receive(5, i);
    ASSERT_TRUE(tx.has_value());  // ideal inner model never loses
    if (!VerifyTransmission(*tx)) ++corrupted;
  }
  EXPECT_NEAR(static_cast<double>(corrupted) / kTrials, 0.3, 0.02);
}

TEST(FaultStreamTest, StreamsAreKeyedByClientAndPurpose) {
  const Rng master(42);
  Rng a = FaultStream(master, 0, Purpose::kLoss);
  Rng b = FaultStream(master, 1, Purpose::kLoss);
  Rng c = FaultStream(master, 0, Purpose::kCorrupt);
  Rng a2 = FaultStream(master, 0, Purpose::kLoss);
  EXPECT_EQ(a.Next(), a2.Next());  // same key, same stream
  // Different keys should diverge immediately (overwhelmingly likely).
  Rng a3 = FaultStream(master, 0, Purpose::kLoss);
  EXPECT_NE(a3.Next(), b.Next());
  Rng a4 = FaultStream(master, 0, Purpose::kLoss);
  EXPECT_NE(a4.Next(), c.Next());
}

TEST(MakeFaultModelTest, PicksModelByParams) {
  FaultParams params;
  params.force = true;  // active with all-zero rates -> ideal
  auto ideal = MakeFaultModel(params, 0);
  EXPECT_NE(dynamic_cast<IdealModel*>(ideal.get()), nullptr);

  params.loss = 0.1;
  auto iid = MakeFaultModel(params, 0);
  EXPECT_NE(dynamic_cast<IidLossModel*>(iid.get()), nullptr);

  params.burst_len = 4.0;
  auto ge = MakeFaultModel(params, 0);
  EXPECT_NE(dynamic_cast<GilbertElliottModel*>(ge.get()), nullptr);

  params.corrupt = 0.05;
  auto wrapped = MakeFaultModel(params, 0);
  EXPECT_NE(dynamic_cast<CorruptingModel*>(wrapped.get()), nullptr);
}

TEST(MakeFaultModelTest, DifferentClientsDrawIndependently) {
  FaultParams params;
  params.loss = 0.5;
  auto m0 = MakeFaultModel(params, 0);
  auto m1 = MakeFaultModel(params, 1);
  // With loss 0.5 over 64 transmissions, identical outcome sequences for
  // the two clients would mean the streams collide.
  bool differ = false;
  for (int i = 0; i < 64 && !differ; ++i) {
    differ = m0->Receive(0, i).has_value() != m1->Receive(0, i).has_value();
  }
  EXPECT_TRUE(differ);
}

TEST(FaultParamsTest, ValidateRejectsBadRates) {
  FaultParams params;
  params.loss = 1.0;
  EXPECT_FALSE(params.Validate().ok());
  params.loss = -0.1;
  EXPECT_FALSE(params.Validate().ok());
  params.loss = 0.5;
  EXPECT_TRUE(params.Validate().ok());
  params.corrupt = 1.5;
  EXPECT_FALSE(params.Validate().ok());
  params.corrupt = 0.0;
  params.doze_for = 100.0;
  params.awake_for = 0.5;  // no slot fits: rejected
  EXPECT_FALSE(params.Validate().ok());
  params.awake_for = 10.0;
  EXPECT_TRUE(params.Validate().ok());
  params.backoff_cap = params.backoff_base - 1.0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(FaultParamsTest, InactiveParamsHaveEmptyIdentity) {
  const FaultParams params;
  EXPECT_FALSE(params.Active());
  EXPECT_EQ(params.ToString(), "");
}

TEST(FaultParamsTest, ForceMakesZeroRatesActiveWithIdentity) {
  FaultParams params;
  params.force = true;
  EXPECT_TRUE(params.Active());
  EXPECT_NE(params.ToString(), "");
}

}  // namespace
}  // namespace bcast::fault
