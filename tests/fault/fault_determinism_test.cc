// Seeding discipline of the fault subsystem: disabled faults leave every
// prior result (and report identity) untouched, forced-zero faults are
// bit-identical to the ideal path, and the fault seed is isolated from
// the simulation's request/noise streams.

#include <gtest/gtest.h>

#include <string>

#include "core/multi_client.h"
#include "core/simulator.h"
#include "core/updates.h"

namespace bcast {
namespace {

SimParams SmallParams() {
  SimParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.access_range = 100;
  params.region_size = 5;
  params.cache_size = 50;
  params.policy = PolicyKind::kLru;
  params.noise_percent = 0.0;
  params.measured_requests = 2000;
  return params;
}

TEST(FaultDeterminismTest, InactiveFaultsKeepConfigIdentity) {
  // Golden baselines are matched by the config string: a defaulted fault
  // block must not change it, or every PR-2 baseline would orphan.
  const SimParams params = SmallParams();
  EXPECT_FALSE(params.fault.Active());
  EXPECT_EQ(params.ToString().find("fault"), std::string::npos);

  SimParams forced = SmallParams();
  forced.fault.force = true;
  EXPECT_NE(forced.ToString().find("fault<"), std::string::npos);
}

TEST(FaultDeterminismTest, ForcedZeroFaultsAreBitIdenticalToFaultsOff) {
  // The loss=0 fault path must reproduce the lossless numbers exactly:
  // same events, same response sum, same end time.
  const SimParams off = SmallParams();
  SimParams forced = SmallParams();
  forced.fault.force = true;
  auto a = RunSimulation(off);
  auto b = RunSimulation(forced);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->faults_active);
  EXPECT_TRUE(b->faults_active);
  EXPECT_EQ(a->metrics.requests(), b->metrics.requests());
  EXPECT_EQ(a->metrics.cache_hits(), b->metrics.cache_hits());
  EXPECT_EQ(a->metrics.served_per_disk(), b->metrics.served_per_disk());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->perturbed_pages, b->perturbed_pages);
  // And the forced path proves it listened: every attempt delivered.
  EXPECT_EQ(b->faults.attempts, b->faults.delivered);
  EXPECT_EQ(b->faults.retries, 0u);
  EXPECT_DOUBLE_EQ(b->faults.delivery_ratio(), 1.0);
}

TEST(FaultDeterminismTest, FaultyRunsAreBitIdentical) {
  SimParams params = SmallParams();
  params.fault.loss = 0.05;
  params.fault.burst_len = 4.0;
  params.fault.corrupt = 0.01;
  auto a = RunSimulation(params);
  auto b = RunSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.response_time().sum(),
            b->metrics.response_time().sum());
  EXPECT_EQ(a->end_time, b->end_time);
  EXPECT_EQ(a->faults.attempts, b->faults.attempts);
  EXPECT_EQ(a->faults.lost, b->faults.lost);
  EXPECT_EQ(a->faults.corrupted, b->faults.corrupted);
}

TEST(FaultDeterminismTest, FaultSeedChangeKeepsRequestStream) {
  // The fault master seed keys its own streams: re-seeding it must not
  // move a single request or noise draw of the simulation proper.
  SimParams one = SmallParams();
  one.noise_percent = 30.0;
  one.fault.loss = 0.05;
  one.fault.fault_seed = 1;
  SimParams two = one;
  two.fault.fault_seed = 2;
  auto a = RunSimulation(one);
  auto b = RunSimulation(two);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.requests(), b->metrics.requests());
  EXPECT_EQ(a->perturbed_pages, b->perturbed_pages);
  // The channel realization does move.
  EXPECT_NE(a->faults.lost, b->faults.lost);
}

TEST(FaultDeterminismTest, LossDelaysButNeverDropsRequests) {
  SimParams lossless = SmallParams();
  SimParams lossy = SmallParams();
  lossy.fault.loss = 0.1;
  auto a = RunSimulation(lossless);
  auto b = RunSimulation(lossy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.requests(), b->metrics.requests());
  EXPECT_GT(b->faults.lost, 0u);
  EXPECT_GT(b->metrics.mean_response_time(),
            a->metrics.mean_response_time());
  EXPECT_GT(b->faults.loss_delayed_fetches, 0u);
}

TEST(FaultDeterminismTest, MultiClientFaultyRunsAreBitIdentical) {
  MultiClientParams params;
  params.disk_sizes = {50, 200, 250};
  params.delta = 2;
  params.measured_requests = 800;
  for (uint64_t shift : {0ull, 100ull}) {
    ClientSpec spec;
    spec.access_range = 100;
    spec.region_size = 5;
    spec.cache_size = 20;
    spec.interest_shift = shift;
    params.clients.push_back(spec);
  }
  params.fault.loss = 0.05;
  auto a = RunMultiClientSimulation(params);
  auto b = RunMultiClientSimulation(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->faults_active);
  EXPECT_EQ(a->mean_response_times, b->mean_response_times);
  EXPECT_EQ(a->faults.attempts, b->faults.attempts);
  EXPECT_EQ(a->faults.lost, b->faults.lost);
}

TEST(FaultDeterminismTest, UpdateFaultyRunsAreBitIdentical) {
  SimParams base = SmallParams();
  base.fault.loss = 0.05;
  UpdateParams updates;
  updates.update_rate = 0.1;
  auto a = RunUpdateSimulation(base, updates);
  auto b = RunUpdateSimulation(base, updates);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->faults_active);
  EXPECT_EQ(a->fresh_hits, b->fresh_hits);
  EXPECT_EQ(a->mean_response_time, b->mean_response_time);
  EXPECT_EQ(a->faults.lost, b->faults.lost);
}

}  // namespace
}  // namespace bcast
