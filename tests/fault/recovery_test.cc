// Recovery-policy units: capped exponential backoff (including overflow
// safety), the doze duty cycle, deadline expiry and re-arm, and
// degradation accounting in FaultStats.

#include "fault/recovery.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fault/fault_model.h"
#include "fault/fault_params.h"

namespace bcast::fault {
namespace {

// A radio that never hears anything — drives every retry path.
class DeafModel : public FaultModel {
 public:
  std::optional<Transmission> Receive(PageId, double) override {
    return std::nullopt;
  }
};

TEST(BackoffPolicyTest, GrowsGeometricallyToCap) {
  BackoffPolicy policy(1.0, 2.0, 8.0);
  EXPECT_DOUBLE_EQ(policy.Next(), 1.0);
  EXPECT_DOUBLE_EQ(policy.Next(), 2.0);
  EXPECT_DOUBLE_EQ(policy.Next(), 4.0);
  EXPECT_DOUBLE_EQ(policy.Next(), 8.0);
  EXPECT_DOUBLE_EQ(policy.Next(), 8.0);  // clamped
}

TEST(BackoffPolicyTest, ResetReturnsToBase) {
  BackoffPolicy policy(1.0, 2.0, 64.0);
  policy.Next();
  policy.Next();
  policy.Reset();
  EXPECT_DOUBLE_EQ(policy.Next(), 1.0);
}

TEST(BackoffPolicyTest, MillionsOfFailuresNeverOverflow) {
  BackoffPolicy policy(1.0, 2.0, 64.0);
  double last = 0.0;
  for (int i = 0; i < 1'000'000; ++i) last = policy.Next();
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_DOUBLE_EQ(last, 64.0);
  EXPECT_DOUBLE_EQ(policy.peek(), 64.0);
}

TEST(DozeScheduleTest, DisabledScheduleIsAlwaysAwake) {
  const DozeSchedule doze;
  EXPECT_FALSE(doze.enabled());
  EXPECT_TRUE(doze.Awake(123.4));
  EXPECT_TRUE(doze.AwakeDuring(0.0, 1e9));
  EXPECT_DOUBLE_EQ(doze.NextWake(55.0), 55.0);
}

TEST(DozeScheduleTest, AwakeFollowsTheDutyCycle) {
  const DozeSchedule doze{10.0, 5.0, 0.0};  // awake [0,10), doze [10,15)
  EXPECT_TRUE(doze.Awake(0.0));
  EXPECT_TRUE(doze.Awake(9.9));
  EXPECT_FALSE(doze.Awake(10.0));
  EXPECT_FALSE(doze.Awake(14.9));
  EXPECT_TRUE(doze.Awake(15.0));
  EXPECT_TRUE(doze.Awake(24.0));
  EXPECT_FALSE(doze.Awake(25.0));
}

TEST(DozeScheduleTest, PhaseShiftsTheCycle) {
  const DozeSchedule doze{10.0, 5.0, 3.0};  // awake [3,13), doze [13,18)
  EXPECT_FALSE(doze.Awake(1.0));  // pre-phase wraps into the doze tail
  EXPECT_TRUE(doze.Awake(3.0));
  EXPECT_TRUE(doze.Awake(12.9));
  EXPECT_FALSE(doze.Awake(13.0));
  EXPECT_TRUE(doze.Awake(18.0));
}

TEST(DozeScheduleTest, AwakeDuringRequiresTheWholeInterval) {
  const DozeSchedule doze{10.0, 5.0, 0.0};
  EXPECT_TRUE(doze.AwakeDuring(2.0, 9.0));
  EXPECT_TRUE(doze.AwakeDuring(9.0, 10.0));   // final instant may touch
  EXPECT_FALSE(doze.AwakeDuring(9.5, 10.5));  // straddles the boundary
  EXPECT_FALSE(doze.AwakeDuring(11.0, 12.0));
  EXPECT_TRUE(doze.AwakeDuring(15.0, 16.0));
}

TEST(DozeScheduleTest, NextWakeJumpsToTheComingAwakeStretch) {
  const DozeSchedule doze{10.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(doze.NextWake(4.0), 4.0);  // already awake
  EXPECT_DOUBLE_EQ(doze.NextWake(10.0), 15.0);
  EXPECT_DOUBLE_EQ(doze.NextWake(14.999), 15.0);
  EXPECT_DOUBLE_EQ(doze.NextWake(25.0), 30.0);
}

TEST(FaultStatsTest, MergeAddsCountersAndHistograms) {
  FaultStats a;
  a.attempts = 3;
  a.delivered = 2;
  a.lost = 1;
  a.retries = 1;
  a.extra_cycles.Add(1.0);
  FaultStats b;
  b.attempts = 5;
  b.delivered = 4;
  b.corrupted = 1;
  b.retries = 1;
  b.deadline_expiries = 2;
  b.extra_cycles.Add(3.0);
  b.resync_slots.Add(7.0);
  a.Merge(b);
  EXPECT_EQ(a.attempts, 8u);
  EXPECT_EQ(a.delivered, 6u);
  EXPECT_EQ(a.lost, 1u);
  EXPECT_EQ(a.corrupted, 1u);
  EXPECT_EQ(a.retries, 2u);
  EXPECT_EQ(a.deadline_expiries, 2u);
  EXPECT_EQ(a.extra_cycles.count(), 2u);
  EXPECT_EQ(a.resync_slots.count(), 1u);
  EXPECT_NEAR(a.delivery_ratio(), 6.0 / 8.0, 1e-12);
}

TEST(FaultStatsTest, DeliveryRatioIsOneWithNoAttempts) {
  const FaultStats empty;
  EXPECT_DOUBLE_EQ(empty.delivery_ratio(), 1.0);
}

FaultParams RecoveryParams() {
  FaultParams params;
  params.force = true;
  params.deadline_arrivals = 4;
  params.backoff_base = 1.0;
  params.backoff_mult = 2.0;
  params.backoff_cap = 8.0;
  return params;
}

TEST(ReceiverTest, DeadlineExpiryResetsBackoffAndRearms) {
  Receiver receiver(std::make_unique<DeafModel>(), RecoveryParams(),
                    DozeSchedule{}, 100.0);
  // gap 10, k = 4: the deadline sits at t = 40.
  receiver.BeginWait(1, 0.0, 5.0, 10.0);
  double now = 5.0;
  uint64_t expiries_seen = 0;
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(receiver.Attempt(1, now));
    const double next = receiver.NextRetryTime(now);
    if (receiver.stats().deadline_expiries > expiries_seen) {
      // Expiry: act immediately (fall back to the next arrival) and
      // re-arm the deadline k gaps out.
      EXPECT_DOUBLE_EQ(next, now);
      EXPECT_GE(now, 40.0);
      expiries_seen = receiver.stats().deadline_expiries;
      now = next + 10.0;  // next cycle's arrival
    } else {
      EXPECT_GT(next, now);  // backoff keeps the radio off
      now = next;
    }
  }
  EXPECT_GE(receiver.stats().deadline_expiries, 1u);
  EXPECT_EQ(receiver.stats().attempts, 12u);
  EXPECT_EQ(receiver.stats().lost, 12u);
  EXPECT_EQ(receiver.stats().retries, 12u);
}

TEST(ReceiverTest, SuccessfulWaitAccountsAttemptsAndDelay) {
  FaultParams params = RecoveryParams();
  Receiver receiver(std::make_unique<IdealModel>(), params, DozeSchedule{},
                    100.0);
  receiver.BeginWait(3, 0.0, 50.0, 10.0);
  EXPECT_TRUE(receiver.Attempt(3, 50.0));
  receiver.EndWait(50.0);
  EXPECT_EQ(receiver.last_wait_attempts(), 1u);
  EXPECT_DOUBLE_EQ(receiver.last_wait_radio_off(), 0.0);
  EXPECT_EQ(receiver.stats().loss_delayed_fetches, 0u);
  EXPECT_EQ(receiver.stats().extra_cycles.count(), 1u);
  EXPECT_DOUBLE_EQ(receiver.stats().extra_cycles.max(), 0.0);
}

TEST(ReceiverTest, RetriedWaitCountsAsLossDelayed) {
  // Lose the first transmission, hear the second.
  class LoseOnceModel : public FaultModel {
   public:
    std::optional<Transmission> Receive(PageId page, double) override {
      if (!lost_one_) {
        lost_one_ = true;
        return std::nullopt;
      }
      return IdealModel().Receive(page, 0.0);
    }

   private:
    bool lost_one_ = false;
  };
  Receiver receiver(std::make_unique<LoseOnceModel>(), RecoveryParams(),
                    DozeSchedule{}, 100.0);
  receiver.BeginWait(3, 0.0, 5.0, 10.0);  // deadline well out at t = 40
  EXPECT_FALSE(receiver.Attempt(3, 5.0));
  const double retry_at = receiver.NextRetryTime(5.0);
  EXPECT_GT(retry_at, 5.0);  // backoff keeps the radio off
  EXPECT_TRUE(receiver.Attempt(3, 105.0));
  receiver.EndWait(105.0);
  EXPECT_EQ(receiver.last_wait_attempts(), 2u);
  EXPECT_EQ(receiver.stats().loss_delayed_fetches, 1u);
  // One full extra period waited: extra_cycles records 1 cycle.
  EXPECT_DOUBLE_EQ(receiver.stats().extra_cycles.max(), 1.0);
}

TEST(ReceiverTest, DozeMissAdvancesToWakeAndCountsResync) {
  FaultParams params = RecoveryParams();
  DozeSchedule doze{10.0, 5.0, 0.0};
  Receiver receiver(std::make_unique<IdealModel>(), params, doze, 100.0);
  receiver.BeginWait(2, 0.0, 12.0, 10.0);
  // The wanted arrival [11, 12] is inside the doze window [10, 15).
  ASSERT_FALSE(receiver.AwakeDuring(11.0, 12.0));
  const double wake = receiver.NoteDozeMiss(11.0);
  EXPECT_DOUBLE_EQ(wake, 15.0);
  EXPECT_EQ(receiver.stats().doze_missed_arrivals, 1u);
  // First intact reception after wake closes the resync episode.
  EXPECT_TRUE(receiver.Attempt(2, 18.0));
  receiver.EndWait(18.0);
  EXPECT_EQ(receiver.stats().resync_slots.count(), 1u);
  EXPECT_DOUBLE_EQ(receiver.stats().resync_slots.max(), 3.0);
}

TEST(ReceiverTest, SleptThroughDeadlineExpiresOnWake) {
  FaultParams params = RecoveryParams();  // k = 4
  // Doze long enough that waking up is already past the deadline.
  DozeSchedule doze{10.0, 100.0, 0.0};
  Receiver receiver(std::make_unique<IdealModel>(), params, doze, 100.0);
  receiver.BeginWait(2, 0.0, 12.0, 10.0);  // deadline at t = 40
  const double wake = receiver.NoteDozeMiss(11.0);
  EXPECT_DOUBLE_EQ(wake, 110.0);
  EXPECT_EQ(receiver.stats().deadline_expiries, 1u);
}

TEST(MakeReceiverTest, DozePhaseIsDeterministicPerClient) {
  FaultParams params;
  params.doze_for = 50.0;
  params.awake_for = 50.0;
  params.fault_seed = 9;
  auto a = MakeReceiver(params, 3, 100.0);
  auto b = MakeReceiver(params, 3, 100.0);
  auto c = MakeReceiver(params, 4, 100.0);
  EXPECT_DOUBLE_EQ(a->doze().phase, b->doze().phase);
  EXPECT_NE(a->doze().phase, c->doze().phase);
  EXPECT_GE(a->doze().phase, 0.0);
  EXPECT_LT(a->doze().phase, 100.0);
}

}  // namespace
}  // namespace bcast::fault
