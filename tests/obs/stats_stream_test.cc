#include "obs/stats_stream.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/json_reader.h"

namespace bcast::obs {
namespace {

StatsSample MakeSample(double t, uint64_t requests, double mean_rt) {
  StatsSample s;
  s.t = t;
  s.wall_seconds = 0.5;
  s.events = requests * 3;
  s.requests = requests;
  s.hits = requests / 2;
  s.warmup_requests = 10;
  s.mean_rt = mean_rt;
  s.win_requests = requests;
  s.win_hits = requests / 2;
  s.win_mean_rt = mean_rt;
  s.served_per_disk = {5, 3, 1};
  s.pull_queue_depth = 2;
  s.pull_serviced = 7;
  s.fault_lost = 4;
  s.fault_retries = 6;
  return s;
}

TEST(StatsStreamTest, WriteParseRoundTrip) {
  std::ostringstream out;
  StatsWriter writer(&out);
  writer.Write(MakeSample(123.5, 40, 17.25));
  EXPECT_EQ(writer.samples_written(), 1u);

  std::string line = out.str();
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();

  Result<StatsSample> parsed = ParseStatsLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->t, 123.5);
  EXPECT_EQ(parsed->events, 120u);
  EXPECT_EQ(parsed->requests, 40u);
  EXPECT_EQ(parsed->hits, 20u);
  EXPECT_EQ(parsed->warmup_requests, 10u);
  EXPECT_DOUBLE_EQ(parsed->mean_rt, 17.25);
  EXPECT_EQ(parsed->win_requests, 40u);
  EXPECT_DOUBLE_EQ(parsed->win_mean_rt, 17.25);
  EXPECT_EQ(parsed->served_per_disk, (std::vector<uint64_t>{5, 3, 1}));
  EXPECT_EQ(parsed->pull_queue_depth, 2u);
  EXPECT_EQ(parsed->pull_serviced, 7u);
  EXPECT_EQ(parsed->fault_lost, 4u);
  EXPECT_EQ(parsed->fault_retries, 6u);
  EXPECT_FALSE(parsed->final_sample);
}

TEST(StatsStreamTest, FinalFlagRoundTrips) {
  std::ostringstream out;
  StatsWriter writer(&out);
  StatsSample s = MakeSample(10.0, 5, 1.0);
  s.final_sample = true;
  writer.Write(s);
  Result<StatsSample> parsed = ParseStatsLine(out.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->final_sample);
}

TEST(StatsStreamTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseStatsLine("not json at all").ok());
  EXPECT_FALSE(ParseStatsLine("{\"t\": 1.0}").ok());  // missing required
  EXPECT_FALSE(ParseStatsLine("[1, 2, 3]").ok());
  EXPECT_FALSE(ParseStatsLine("{\"t\": \"x\", \"events\": 1, "
                              "\"requests\": 1}")
                   .ok());  // wrong type
}

TEST(StatsStreamTest, SummaryAggregatesOneSegment) {
  std::ostringstream out;
  StatsWriter writer(&out);
  writer.Write(MakeSample(100.0, 10, 5.0));
  writer.Write(MakeSample(200.0, 30, 8.0));
  StatsSample last = MakeSample(300.0, 50, 6.0);
  last.final_sample = true;
  writer.Write(last);

  std::istringstream in(out.str());
  Result<StatsSummary> summary = SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->samples, 3u);
  EXPECT_EQ(summary->invalid_lines, 0u);
  EXPECT_EQ(summary->segments, 1u);
  EXPECT_DOUBLE_EQ(summary->end_time, 300.0);
  // Totals come from the segment's last sample, not a sum over samples.
  EXPECT_EQ(summary->requests, 50u);
  EXPECT_EQ(summary->hits, 25u);
  EXPECT_DOUBLE_EQ(summary->mean_rt, 6.0);
  EXPECT_DOUBLE_EQ(summary->max_win_mean_rt, 8.0);
  EXPECT_EQ(summary->served_per_disk, (std::vector<uint64_t>{5, 3, 1}));
}

TEST(StatsStreamTest, SummaryDetectsSegmentsOnClockReset) {
  std::ostringstream out;
  StatsWriter writer(&out);
  // Segment 1: two samples ending at t=200 with 20 requests, mean 4.
  writer.Write(MakeSample(100.0, 10, 3.0));
  writer.Write(MakeSample(200.0, 20, 4.0));
  // Segment 2 (t resets): ends at t=150 with 10 requests, mean 10.
  writer.Write(MakeSample(50.0, 5, 9.0));
  writer.Write(MakeSample(150.0, 10, 10.0));

  std::istringstream in(out.str());
  Result<StatsSummary> summary = SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->segments, 2u);
  EXPECT_EQ(summary->requests, 30u);
  EXPECT_DOUBLE_EQ(summary->end_time, 150.0);
  // Request-weighted mean across segments: (20*4 + 10*10) / 30.
  EXPECT_NEAR(summary->mean_rt, (20.0 * 4.0 + 10.0 * 10.0) / 30.0, 1e-9);
}

TEST(StatsStreamTest, SummarySkipsAndCountsInvalidLines) {
  std::ostringstream out;
  StatsWriter writer(&out);
  writer.Write(MakeSample(100.0, 10, 5.0));
  out << "garbage line\n";
  out << "{\"truncated\": \n";
  writer.Write(MakeSample(200.0, 20, 6.0));

  std::istringstream in(out.str());
  Result<StatsSummary> summary = SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->samples, 2u);
  EXPECT_EQ(summary->invalid_lines, 2u);
  EXPECT_EQ(summary->requests, 20u);
}

TEST(StatsStreamTest, SummaryErrorsOnlyWithNoValidSample) {
  std::istringstream empty("");
  EXPECT_FALSE(SummarizeStatsStream(empty).ok());
  std::istringstream junk("nope\nstill nope\n");
  EXPECT_FALSE(SummarizeStatsStream(junk).ok());
  std::istringstream blank("\n   \n\t\r\n");
  EXPECT_FALSE(SummarizeStatsStream(blank).ok());
}

TEST(StatsStreamTest, SummaryIgnoresTornTrailingLine) {
  // The writer ends every record with '\n'; a final line without one is
  // an in-progress write (the stream is read live), not corruption — it
  // must be skipped without inflating invalid_lines.
  std::ostringstream out;
  StatsWriter writer(&out);
  writer.Write(MakeSample(100.0, 10, 5.0));
  std::string stream = out.str();
  stream += "{\"t\": 200.0, \"events\": 77, \"requ";  // torn mid-write

  std::istringstream in(stream);
  Result<StatsSummary> summary = SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->samples, 1u);
  EXPECT_EQ(summary->invalid_lines, 0u);
  EXPECT_EQ(summary->requests, 10u);
}

TEST(StatsStreamTest, SummaryAcceptsCompleteUnterminatedTail) {
  // A complete record whose trailing newline never made it (a truncated
  // copy) still parses — only unparseable torn tails are dropped.
  std::ostringstream out;
  StatsWriter writer(&out);
  writer.Write(MakeSample(100.0, 10, 5.0));
  writer.Write(MakeSample(200.0, 20, 6.0));
  std::string stream = out.str();
  ASSERT_EQ(stream.back(), '\n');
  stream.pop_back();

  std::istringstream in(stream);
  Result<StatsSummary> summary = SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->samples, 2u);
  EXPECT_EQ(summary->invalid_lines, 0u);
  EXPECT_EQ(summary->requests, 20u);
}

TEST(StatsStreamTest, TornOnlyStreamErrorsCleanly) {
  std::istringstream in("{\"t\": 1.0, \"ev");
  Result<StatsSummary> summary = SummarizeStatsStream(in);
  EXPECT_FALSE(summary.ok());
}

TEST(StatsStreamTest, ReaderSurvivesFuzzedLines) {
  // The reader must never crash on arbitrary input: feed it random
  // bytes, random truncations of a valid line, and random JSON-ish
  // fragments. Deterministic seed — failures reproduce.
  std::ostringstream valid_out;
  StatsWriter writer(&valid_out);
  writer.Write(MakeSample(100.0, 10, 5.0));
  std::string valid = valid_out.str();
  if (!valid.empty() && valid.back() == '\n') valid.pop_back();

  Rng rng(20260808);
  const std::string charset =
      "{}[]\":,.0123456789eE+-truefalsn \t\\\"xyz";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string line;
    switch (rng.NextBounded(3)) {
      case 0: {  // random bytes
        const uint64_t len = rng.NextBounded(64);
        for (uint64_t i = 0; i < len; ++i) {
          line += charset[rng.NextBounded(charset.size())];
        }
        break;
      }
      case 1:  // truncation of a valid line (torn tail write)
        line = valid.substr(0, rng.NextBounded(valid.size() + 1));
        break;
      default: {  // valid line with a corrupted byte
        line = valid;
        if (!line.empty()) {
          line[rng.NextBounded(line.size())] =
              charset[rng.NextBounded(charset.size())];
        }
        break;
      }
    }
    Result<StatsSample> parsed = ParseStatsLine(line);  // must not crash
    (void)parsed;
  }
}

TEST(StatsStreamTest, SummarizerSurvivesFuzzedStreams) {
  // Whole-stream fuzz: random compositions of valid lines, garbage,
  // blank lines, and a randomly truncated tail. The summarizer must
  // never crash, and when at least one intact line precedes the damage
  // it must still produce a summary counting exactly those lines.
  std::ostringstream valid_out;
  StatsWriter writer(&valid_out);
  writer.Write(MakeSample(100.0, 10, 5.0));
  const std::string valid = valid_out.str();  // newline-terminated

  Rng rng(877);
  for (int iter = 0; iter < 500; ++iter) {
    std::string stream;
    uint64_t intact = 0;
    const uint64_t lines = rng.NextBounded(6);
    for (uint64_t i = 0; i < lines; ++i) {
      switch (rng.NextBounded(3)) {
        case 0:
          stream += valid;
          ++intact;
          break;
        case 1:
          stream += "garbage\n";
          break;
        default:
          stream += "\n";
          break;
      }
    }
    if (rng.NextBernoulli(0.7)) {  // torn tail, cut at a random byte
      stream += valid.substr(0, rng.NextBounded(valid.size()));
    }
    std::istringstream in(stream);
    Result<StatsSummary> summary = SummarizeStatsStream(in);
    if (intact > 0) {
      ASSERT_TRUE(summary.ok()) << "iter " << iter;
      EXPECT_GE(summary->samples, intact) << "iter " << iter;
    }
  }
}

TEST(StatsStreamTest, SummaryJsonIsParseable) {
  std::ostringstream out;
  StatsWriter writer(&out);
  writer.Write(MakeSample(100.0, 10, 5.0));
  std::istringstream in(out.str());
  Result<StatsSummary> summary = SummarizeStatsStream(in);
  ASSERT_TRUE(summary.ok());

  std::ostringstream rendered;
  WriteStatsSummaryJson(*summary, rendered);
  Result<JsonValue> doc = JsonValue::Parse(rendered.str());
  ASSERT_TRUE(doc.ok()) << rendered.str();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(*(*doc->Get("samples"))->AsUint64(), 1u);
  EXPECT_EQ(*(*doc->Get("requests"))->AsUint64(), 10u);
  EXPECT_DOUBLE_EQ(*(*doc->Get("mean_rt"))->AsNumber(), 5.0);
}

TEST(StatsWriterTest, OpenWritesToFileAndBadPathFails) {
  const std::string path = ::testing::TempDir() + "/stats_test.jsonl";
  {
    Result<std::unique_ptr<StatsWriter>> writer = StatsWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    (*writer)->Write(MakeSample(1.0, 1, 1.0));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(ParseStatsLine(line).ok());

  EXPECT_FALSE(StatsWriter::Open("/nonexistent_dir_zzz/stats.jsonl").ok());
}

}  // namespace
}  // namespace bcast::obs
