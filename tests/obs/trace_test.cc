#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bcast::obs {
namespace {

RequestEvent SampleEvent() {
  RequestEvent event;
  event.time = 123.5;
  event.page = 42;
  event.hit = false;
  event.warmup = false;
  event.wait_slots = 17.0;
  event.disk = 2;
  event.victim = 7;
  event.victim_score = 0.25;
  event.client = 3;
  return event;
}

TEST(TraceFormatTest, Parse) {
  ASSERT_TRUE(ParseTraceFormat("jsonl").ok());
  EXPECT_EQ(*ParseTraceFormat("jsonl"), TraceFormat::kJsonl);
  ASSERT_TRUE(ParseTraceFormat("csv").ok());
  EXPECT_EQ(*ParseTraceFormat("csv"), TraceFormat::kCsv);
  EXPECT_FALSE(ParseTraceFormat("xml").ok());
}

TEST(TraceSinkTest, SampleOneRecordsEverything) {
  std::ostringstream out;
  TraceSink sink(&out, 1.0, TraceFormat::kJsonl, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(sink.ShouldSample());
  }
  EXPECT_EQ(sink.offered(), 50u);
}

TEST(TraceSinkTest, SampleZeroRecordsNothing) {
  std::ostringstream out;
  TraceSink sink(&out, 0.0, TraceFormat::kJsonl, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(sink.ShouldSample());
  }
  EXPECT_EQ(sink.offered(), 50u);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(out.str().empty());
}

TEST(TraceSinkTest, SamplingIsDeterministicInSeed) {
  const auto decisions = [](uint64_t seed) {
    std::ostringstream out;
    TraceSink sink(&out, 0.3, TraceFormat::kJsonl, seed);
    std::vector<bool> result;
    for (int i = 0; i < 200; ++i) result.push_back(sink.ShouldSample());
    return result;
  };
  EXPECT_EQ(decisions(42), decisions(42));
  EXPECT_NE(decisions(42), decisions(43));
}

TEST(TraceSinkTest, SampleRateIsRoughlyRespected) {
  std::ostringstream out;
  TraceSink sink(&out, 0.2, TraceFormat::kJsonl, 7);
  int sampled = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sink.ShouldSample()) ++sampled;
  }
  EXPECT_GT(sampled, 1600);
  EXPECT_LT(sampled, 2400);
}

TEST(TraceSinkTest, JsonlRecordContents) {
  std::ostringstream out;
  TraceSink sink(&out, 1.0, TraceFormat::kJsonl, 1);
  ASSERT_TRUE(sink.ShouldSample());
  sink.Record(SampleEvent());
  const std::string line = out.str();
  EXPECT_NE(line.find("\"t\": 123.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"page\": 42"), std::string::npos);
  EXPECT_NE(line.find("\"hit\": false"), std::string::npos);
  EXPECT_NE(line.find("\"warmup\": false"), std::string::npos);
  EXPECT_NE(line.find("\"wait\": 17"), std::string::npos);
  EXPECT_NE(line.find("\"disk\": 2"), std::string::npos);
  EXPECT_NE(line.find("\"victim\": 7"), std::string::npos);
  EXPECT_NE(line.find("\"victim_score\": 0.25"), std::string::npos);
  EXPECT_NE(line.find("\"client\": 3"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(sink.recorded(), 1u);
}

TEST(TraceSinkTest, CsvHeaderAndRow) {
  std::ostringstream out;
  TraceSink sink(&out, 1.0, TraceFormat::kCsv, 1);
  ASSERT_TRUE(sink.ShouldSample());
  sink.Record(SampleEvent());
  const std::string text = out.str();
  EXPECT_EQ(text.find("time,page,hit,warmup,wait_slots,disk,victim,"
                      "victim_score,client\n"),
            0u)
      << text;
  EXPECT_NE(text.find("123.5,42,0,0,17,2,7,0.25,3"), std::string::npos)
      << text;
}

TEST(TraceSinkTest, CacheHitRecordUsesSentinels) {
  std::ostringstream out;
  TraceSink sink(&out, 1.0, TraceFormat::kJsonl, 1);
  RequestEvent event;
  event.time = 5.0;
  event.page = 9;
  event.hit = true;
  ASSERT_TRUE(sink.ShouldSample());
  sink.Record(event);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"hit\": true"), std::string::npos);
  EXPECT_NE(line.find("\"disk\": -1"), std::string::npos);
  EXPECT_NE(line.find("\"victim\": -1"), std::string::npos);
}

TEST(TraceSinkTest, OpenWritesToFile) {
  const std::string path = ::testing::TempDir() + "/trace_test.jsonl";
  {
    Result<std::unique_ptr<TraceSink>> sink =
        TraceSink::Open(path, 1.0, TraceFormat::kJsonl, 3);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE((*sink)->ShouldSample());
    (*sink)->Record(SampleEvent());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"page\": 42"), std::string::npos);
}

TEST(TraceSinkTest, OpenBadPathFails) {
  Result<std::unique_ptr<TraceSink>> sink = TraceSink::Open(
      "/nonexistent_dir_zzz/trace.jsonl", 1.0, TraceFormat::kJsonl, 3);
  EXPECT_FALSE(sink.ok());
}

TEST(TraceSinkTest, OutOfRangeSampleRatesClamp) {
  std::ostringstream out;
  TraceSink high(&out, 2.0, TraceFormat::kJsonl, 1);
  EXPECT_DOUBLE_EQ(high.sample_rate(), 1.0);
  TraceSink low(&out, -1.0, TraceFormat::kJsonl, 1);
  EXPECT_DOUBLE_EQ(low.sample_rate(), 0.0);
}

}  // namespace
}  // namespace bcast::obs
