#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcast::obs {
namespace {

TEST(LogHistogramTest, EmptyStateIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(LogHistogramTest, BucketBoundaries) {
  LogHistogram h;  // min_value 1, 16 sub-buckets per octave
  // Below min_value: the underflow bucket.
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(0.99), 0u);
  // First octave [1, 2) spans buckets 1..16 in steps of 1/16.
  EXPECT_EQ(h.BucketIndex(1.0), 1u);
  EXPECT_EQ(h.BucketIndex(1.0 + 1.0 / 16.0), 2u);
  EXPECT_EQ(h.BucketIndex(2.0 - 1e-9), 16u);
  // Second octave [2, 4) starts at bucket 17.
  EXPECT_EQ(h.BucketIndex(2.0), 17u);
  EXPECT_EQ(h.BucketIndex(4.0), 33u);
  // Bucket edges round-trip: lower edge maps back to the same bucket.
  for (size_t i = 1; i < 40; ++i) {
    EXPECT_EQ(h.BucketIndex(h.BucketLower(i)), i) << "bucket " << i;
    EXPECT_LT(h.BucketLower(i), h.BucketUpper(i));
  }
}

TEST(LogHistogramTest, OverflowClampsToLastBucket) {
  LogHistogram::Options options;
  options.octaves = 4;  // top regular value: 16
  LogHistogram h(options);
  const size_t overflow = h.num_buckets() - 1;
  EXPECT_EQ(h.BucketIndex(1e12), overflow);
  h.Add(1e12);
  EXPECT_EQ(h.bucket_count(overflow), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
}

TEST(LogHistogramTest, NegativeValuesClampToZero) {
  LogHistogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(LogHistogramTest, QuantileInterpolationWithinRelativeError) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  // 16 sub-buckets bound the relative error near 1/16.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 500.0 / 8.0);
  EXPECT_NEAR(h.Quantile(0.9), 900.0, 900.0 / 8.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 990.0 / 8.0);
  // Quantiles are clamped to the observed range and monotone.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
}

TEST(LogHistogramTest, SingleValueQuantilesCollapse) {
  LogHistogram h;
  h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 7.0);
}

TEST(LogHistogramTest, MergeMatchesRecordingEverythingInOne) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  for (int i = 0; i < 100; ++i) {
    const double v = 1.0 + 3.7 * i;
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (size_t i = 0; i < a.num_buckets(); ++i) {
    EXPECT_EQ(a.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(a.Quantile(0.9), all.Quantile(0.9));
}

TEST(LogHistogramTest, ResetKeepsGeometryClearsCounts) {
  LogHistogram h;
  h.Add(5.0);
  h.Add(500.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Add(2.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LogHistogramDeathTest, MergeGeometryMismatchDies) {
  LogHistogram a;
  LogHistogram::Options options;
  options.sub_buckets = 8;
  LogHistogram b(options);
  EXPECT_DEATH(a.Merge(b), "Check failed");
}

TEST(LogHistogramTest, NanClampsToZeroLikeNegatives) {
  // A NaN response time is always an upstream bug, but the histogram must
  // not let it poison sum/mean/min/max or the bucket index (NaN-to-integer
  // casts are UB). It lands in the underflow bucket like any negative.
  LogHistogram h;
  h.Add(std::nan(""));
  h.Add(5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_FALSE(std::isnan(h.Quantile(0.5)));
  const HistogramSummary s = h.Summary();
  EXPECT_FALSE(std::isnan(s.p99));
}

TEST(LogHistogramTest, MergeOfDisjointRangesKeepsBothTails) {
  // One histogram saw only small values, the other only large ones; the
  // merge must report the union's extremes and place the median between
  // the two clusters, not inside either.
  LogHistogram small;
  LogHistogram large;
  for (int i = 0; i < 100; ++i) small.Add(1.0 + 0.01 * i);
  for (int i = 0; i < 100; ++i) large.Add(1000.0 + 10.0 * i);
  small.Merge(large);
  EXPECT_EQ(small.count(), 200u);
  EXPECT_DOUBLE_EQ(small.min(), 1.0);
  EXPECT_DOUBLE_EQ(small.max(), 1990.0);
  EXPECT_LE(small.Quantile(0.25), 2.0);
  EXPECT_GE(small.Quantile(0.75), 1000.0 / 2.0);
  EXPECT_LE(small.Quantile(0.49), small.Quantile(0.51));
}

TEST(LinearHistogramTest, EmptyQuantilesAreZero) {
  LinearHistogram h(10.0, 5);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LinearHistogramTest, SingleSampleQuantilesCollapse) {
  LinearHistogram h(10.0, 5);
  h.Add(37.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 37.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 37.0);
}

TEST(LinearHistogramTest, NanClampsToZero) {
  LinearHistogram h(10.0, 5);
  h.Add(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_FALSE(std::isnan(h.Quantile(0.5)));
}

TEST(LinearHistogramTest, OverflowBucketQuantilesStayInObservedRange) {
  // All mass beyond the tracked range: quantiles must interpolate between
  // the overflow bucket's lower edge and the observed max, never NaN or a
  // value outside [min, max].
  LinearHistogram h(10.0, 5);  // overflow starts at 50
  h.Add(60.0);
  h.Add(80.0);
  h.Add(120.0);
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, 60.0) << "q=" << q;
    EXPECT_LE(v, 120.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 120.0);
}

TEST(LinearHistogramTest, BucketsAndOverflow) {
  LinearHistogram h(10.0, 5);  // [0,10) ... [40,50), then overflow
  h.Add(0.0);
  h.Add(9.9);
  h.Add(10.0);
  h.Add(49.0);
  h.Add(1000.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(LinearHistogramTest, QuantileInterpolation) {
  LinearHistogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 99.0);
}

TEST(LinearHistogramTest, MergeAddsCounts) {
  LinearHistogram a(1.0, 10);
  LinearHistogram b(1.0, 10);
  a.Add(1.5);
  b.Add(2.5);
  b.Add(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(2), 1u);
  EXPECT_EQ(a.overflow_count(), 1u);
}

}  // namespace
}  // namespace bcast::obs
