#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json_reader.h"

namespace bcast::obs {
namespace {

// Parses the writer's output and returns the traceEvents array.
Result<JsonValue> ParseTimeline(const std::string& text) {
  Result<JsonValue> doc = JsonValue::Parse(text);
  if (!doc.ok()) return doc.status();
  EXPECT_TRUE(doc->is_object()) << text;
  return doc;
}

TEST(TimelineWriterTest, EmptyTimelineIsValidJson) {
  std::ostringstream out;
  {
    TimelineWriter writer(&out);
    writer.Close();
  }
  Result<JsonValue> doc = ParseTimeline(out.str());
  ASSERT_TRUE(doc.ok()) << out.str();
  Result<const JsonValue*> events = doc->Get("traceEvents");
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE((*events)->is_array());
  EXPECT_EQ((*events)->items().size(), 0u);
}

TEST(TimelineWriterTest, EventsRoundTripThroughJsonReader) {
  std::ostringstream out;
  {
    TimelineWriter writer(&out);
    writer.NameTrack(track::kSim, "des");
    writer.BeginSpan(track::kSim, "run", "des", 0.0);
    writer.Span(track::Client(0), "miss_wait", "client", 10.0, 3.5,
                {{"page", 42.0}, {"disk", 2.0}});
    writer.Instant(track::Client(0), "evict", "cache", 11.0,
                   {{"victim", 7.0}});
    writer.Counter(track::kPull, "pull_queue_depth", 12.0, 5.0);
    writer.EndSpan(track::kSim, 20.0);
    writer.Close();
  }
  Result<JsonValue> doc = ParseTimeline(out.str());
  ASSERT_TRUE(doc.ok()) << out.str();
  Result<const JsonValue*> events = doc->Get("traceEvents");
  ASSERT_TRUE(events.ok());
  const auto& items = (*events)->items();
  ASSERT_EQ(items.size(), 6u);

  // Every event carries the required trace-event fields.
  for (const JsonValue& event : items) {
    ASSERT_TRUE(event.is_object());
    EXPECT_TRUE(event.Get("name").ok());
    EXPECT_TRUE(event.Get("ph").ok());
    EXPECT_TRUE(event.Get("pid").ok());
    EXPECT_TRUE(event.Get("tid").ok());
  }

  // Metadata record names the track.
  EXPECT_EQ(*(*items[0].Get("ph"))->AsString(), "M");
  EXPECT_EQ(*(*items[0].Get("name"))->AsString(), "thread_name");

  // The complete span has a duration and its args survive.
  const JsonValue& x = items[2];
  EXPECT_EQ(*(*x.Get("ph"))->AsString(), "X");
  EXPECT_DOUBLE_EQ(*(*x.Get("dur"))->AsNumber(), 3.5);
  Result<const JsonValue*> args = x.Get("args");
  ASSERT_TRUE(args.ok());
  EXPECT_DOUBLE_EQ(*(*(*args)->Get("page"))->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(*(*(*args)->Get("disk"))->AsNumber(), 2.0);

  // Counter events carry their value under args.
  const JsonValue& c = items[4];
  EXPECT_EQ(*(*c.Get("ph"))->AsString(), "C");

  // B/E nesting is balanced per track across the whole stream.
  std::map<uint64_t, int64_t> depth;
  for (const JsonValue& event : items) {
    const std::string ph = *(*event.Get("ph"))->AsString();
    const uint64_t tid = *(*event.Get("tid"))->AsUint64();
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "track " << tid;
}

TEST(TimelineWriterTest, OpenSpanBookkeeping) {
  std::ostringstream out;
  TimelineWriter writer(&out);
  EXPECT_EQ(writer.open_spans(), 0);
  writer.BeginSpan(1, "a", "t", 0.0);
  writer.BeginSpan(1, "b", "t", 1.0);
  writer.BeginSpan(2, "c", "t", 1.0);
  EXPECT_EQ(writer.open_spans(), 3);
  writer.EndSpan(1, 2.0);
  writer.EndSpan(2, 2.0);
  writer.EndSpan(1, 3.0);
  EXPECT_EQ(writer.open_spans(), 0);
  EXPECT_EQ(writer.events_written(), 6u);
}

TEST(TimelineWriterTest, EventsAfterCloseAreDropped) {
  std::ostringstream out;
  TimelineWriter writer(&out);
  writer.Instant(0, "before", "t", 1.0);
  writer.Close();
  const std::string closed = out.str();
  writer.Instant(0, "after", "t", 2.0);
  writer.Close();  // idempotent
  EXPECT_EQ(out.str(), closed);
  EXPECT_EQ(writer.events_written(), 1u);
  EXPECT_EQ(out.str().find("after"), std::string::npos);
}

TEST(TimelineWriterTest, DestructorClosesTheDocument) {
  std::ostringstream out;
  {
    TimelineWriter writer(&out);
    writer.Instant(0, "only", "t", 1.0);
  }
  Result<JsonValue> doc = ParseTimeline(out.str());
  ASSERT_TRUE(doc.ok()) << out.str();
}

TEST(TimelineWriterTest, NamesAreJsonEscaped) {
  std::ostringstream out;
  {
    TimelineWriter writer(&out);
    writer.Instant(0, "quote\"back\\slash", "cat\n", 1.0);
    writer.Close();
  }
  Result<JsonValue> doc = ParseTimeline(out.str());
  ASSERT_TRUE(doc.ok()) << out.str();
  const auto& items = (*doc->Get("traceEvents"))->items();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(*(*items[0].Get("name"))->AsString(), "quote\"back\\slash");
}

TEST(TimelineWriterTest, ScopedSpanBalances) {
  std::ostringstream out;
  TimelineWriter writer(&out);
  double now = 5.0;
  const auto now_fn = [&now]() { return now; };
  {
    ScopedSpan span(&writer, 3, "scope", "t", now_fn);
    EXPECT_EQ(writer.open_spans(), 1);
    now = 9.0;
  }
  EXPECT_EQ(writer.open_spans(), 0);
  // A null writer is a no-op, not a crash.
  { ScopedSpan span(static_cast<TimelineWriter*>(nullptr), 3, "n", "t",
                    now_fn); }
}

TEST(TimelineWriterTest, OpenWritesToFile) {
  const std::string path = ::testing::TempDir() + "/timeline_test.json";
  {
    Result<std::unique_ptr<TimelineWriter>> writer =
        TimelineWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    (*writer)->Instant(0, "x", "t", 1.0);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> doc = ParseTimeline(buffer.str());
  ASSERT_TRUE(doc.ok()) << buffer.str();
}

TEST(TimelineWriterTest, OpenBadPathFails) {
  Result<std::unique_ptr<TimelineWriter>> writer =
      TimelineWriter::Open("/nonexistent_dir_zzz/timeline.json");
  EXPECT_FALSE(writer.ok());
}

}  // namespace
}  // namespace bcast::obs
