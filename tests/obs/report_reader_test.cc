#include "obs/report_reader.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/run_report.h"

namespace bcast::obs {
namespace {

RunReport FullReport() {
  RunReport report;
  report.tool = "bcastsim";
  report.mode = "single";
  report.config = "disks=<500,2000,2500>@freqs{7,4,1}";
  report.seed = 42;
  report.seeds = 3;
  report.period = 11010;
  report.empty_slots = 10;
  report.perturbed_pages = 2;
  report.requests = 20000;
  report.warmup_requests = 993;
  report.cache_hits = 14394;
  report.response = {20000, 424.17, 0.69, 3670.0, 0.69, 1844.1, 3584.6};
  report.tuning = {20000, 424.17, 0.69, 3670.0, 0.69, 1844.1, 3584.6};
  report.served_per_disk = {2938, 2668, 0};
  report.end_time = 9211919.0;
  report.timings.build_program_seconds = 0.001;
  report.timings.setup_seconds = 0.002;
  report.timings.warmup_seconds = 0.4;
  report.timings.measured_seconds = 2.5;
  report.events_dispatched = 27100;
  report.slots_per_second = 3.2e9;
  report.events_per_second = 9.4e6;
  report.extra.emplace_back("fairness_spread", 1.5);
  report.extra.emplace_back("stale_hits", 7.0);
  report.metrics.counters.emplace_back("cache.evictions", 123);
  report.metrics.gauges.emplace_back("cache.fill", 0.97);
  report.metrics.histograms.emplace_back(
      "tuning.slots", HistogramSummary{10, 2.0, 1.0, 4.0, 2.0, 3.0, 4.0});
  return report;
}

std::string ToJson(const RunReport& report) {
  std::ostringstream out;
  report.WriteJson(out);
  return out.str();
}

TEST(ReportReaderTest, RoundTripsEveryField) {
  const RunReport original = FullReport();
  Result<RunReport> r = ReadRunReport(ToJson(original));
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r->tool, original.tool);
  EXPECT_EQ(r->mode, original.mode);
  EXPECT_EQ(r->config, original.config);
  EXPECT_EQ(r->seed, original.seed);
  EXPECT_EQ(r->seeds, original.seeds);
  EXPECT_EQ(r->period, original.period);
  EXPECT_EQ(r->empty_slots, original.empty_slots);
  EXPECT_EQ(r->perturbed_pages, original.perturbed_pages);
  EXPECT_EQ(r->requests, original.requests);
  EXPECT_EQ(r->warmup_requests, original.warmup_requests);
  EXPECT_EQ(r->cache_hits, original.cache_hits);
  EXPECT_EQ(r->response.count, original.response.count);
  EXPECT_DOUBLE_EQ(r->response.p99, original.response.p99);
  EXPECT_EQ(r->served_per_disk, original.served_per_disk);
  EXPECT_DOUBLE_EQ(r->end_time, original.end_time);
  EXPECT_DOUBLE_EQ(r->timings.measured_seconds,
                   original.timings.measured_seconds);
  EXPECT_EQ(r->events_dispatched, original.events_dispatched);
  EXPECT_DOUBLE_EQ(r->slots_per_second, original.slots_per_second);
  ASSERT_EQ(r->extra.size(), 2u);
  EXPECT_EQ(r->extra[0].first, "fairness_spread");
  EXPECT_DOUBLE_EQ(r->extra[1].second, 7.0);
  ASSERT_EQ(r->metrics.counters.size(), 1u);
  EXPECT_EQ(r->metrics.counters[0].second, 123u);
  ASSERT_EQ(r->metrics.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(r->metrics.histograms[0].second.p90, 3.0);
}

TEST(ReportReaderTest, RoundTripIsByteStable) {
  // Write -> Read -> Write is byte-identical, so a checked-in golden and
  // a re-serialized load never spuriously diff.
  const std::string json = ToJson(FullReport());
  Result<RunReport> r = ReadRunReport(json);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToJson(*r), json);
}

TEST(ReportReaderTest, StreamAndStringAgree) {
  const std::string json = ToJson(FullReport());
  std::istringstream in(json);
  Result<RunReport> from_stream = ReadRunReport(&in);
  ASSERT_TRUE(from_stream.ok());
  EXPECT_EQ(ToJson(*from_stream), json);
}

TEST(ReportReaderTest, MissingFileIsCleanError) {
  Result<RunReport> r = ReadRunReportFile("/nonexistent/report.json");
  EXPECT_FALSE(r.ok());
}

TEST(ReportReaderTest, RejectsTruncatedDocument) {
  std::string json = ToJson(FullReport());
  // Strip trailing whitespace first: losing only the final newline still
  // leaves a complete document, which rightly parses.
  json.erase(json.find_last_not_of(" \t\r\n") + 1);
  EXPECT_FALSE(ReadRunReport(json.substr(0, json.size() / 2)).ok());
  EXPECT_FALSE(ReadRunReport(json.substr(0, json.size() - 1)).ok());
  EXPECT_FALSE(ReadRunReport("").ok());
}

TEST(ReportReaderTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ReadRunReport(ToJson(FullReport()) + "x").ok());
}

TEST(ReportReaderTest, RejectsNonObjectAndGarbage) {
  EXPECT_FALSE(ReadRunReport("[1,2,3]").ok());
  EXPECT_FALSE(ReadRunReport("\"just a string\"").ok());
  EXPECT_FALSE(ReadRunReport("not json at all").ok());
  EXPECT_FALSE(ReadRunReport("{").ok());
}

TEST(ReportReaderTest, RejectsMissingRequiredKey) {
  std::string json = ToJson(FullReport());
  // Drop the "period" key; the program block becomes incomplete.
  const size_t pos = json.find("\"period\"");
  ASSERT_NE(pos, std::string::npos);
  const size_t comma = json.find(',', pos);
  json.erase(pos, comma - pos + 1);
  Result<RunReport> r = ReadRunReport(json);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("period"), std::string::npos)
      << "error should name the missing key: " << r.status().message();
}

TEST(ReportReaderTest, RejectsWrongType) {
  std::string json = ToJson(FullReport());
  const size_t pos = json.find("\"seed\": 42");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 10, "\"seed\": \"x\"");
  EXPECT_FALSE(ReadRunReport(json).ok());
}

TEST(ReportReaderTest, RejectsNegativeCount) {
  std::string json = ToJson(FullReport());
  const size_t pos = json.find("\"seed\": 42");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 10, "\"seed\": -1");
  EXPECT_FALSE(ReadRunReport(json).ok());
}

TEST(ReportReaderTest, RejectsDuplicateKeys) {
  EXPECT_FALSE(
      ReadRunReport("{\"tool\": \"a\", \"tool\": \"b\"}").ok());
}

TEST(ReportReaderTest, EmptyOptionalBlocksRoundTrip) {
  // A minimal report: no disks, no extras, no metrics. The writer still
  // emits the blocks; the reader must accept the empty collections.
  RunReport minimal;
  minimal.tool = "t";
  const std::string json = ToJson(minimal);
  Result<RunReport> r = ReadRunReport(json);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->served_per_disk.empty());
  EXPECT_TRUE(r->extra.empty());
  EXPECT_TRUE(r->metrics.empty());
  EXPECT_EQ(ToJson(*r), json);
}

}  // namespace
}  // namespace bcast::obs
