#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/json_util.h"

namespace bcast::obs {
namespace {

RunReport FilledReport() {
  RunReport report;
  report.tool = "bcastsim";
  report.mode = "single";
  report.config = "disks<500,2000,2500> policy=LRU";
  report.seed = 42;
  report.seeds = 3;
  report.period = 11010;
  report.empty_slots = 10;
  report.perturbed_pages = 0;
  report.requests = 4000;
  report.warmup_requests = 1996;
  report.cache_hits = 2867;
  LogHistogram response;
  for (int i = 1; i <= 1000; ++i) response.Add(static_cast<double>(i));
  report.response = response.Summary();
  report.tuning = response.Summary();
  report.served_per_disk = {604, 529, 0};
  report.end_time = 3035869.0;
  report.timings.measured_seconds = 2.0;
  report.events_dispatched = 8131;
  report.extra = {{"clients", 5.0}};
  report.FinalizeThroughput(report.end_time, 2.0);
  return report;
}

TEST(RunReportTest, HitRateGuardsZeroRequests) {
  RunReport report;
  EXPECT_EQ(report.hit_rate(), 0.0);
  report.requests = 4;
  report.cache_hits = 1;
  EXPECT_DOUBLE_EQ(report.hit_rate(), 0.25);
}

TEST(RunReportTest, FinalizeThroughputGuardsZeroSeconds) {
  RunReport report;
  report.events_dispatched = 100;
  report.FinalizeThroughput(1000.0, 0.0);
  EXPECT_EQ(report.slots_per_second, 0.0);
  EXPECT_EQ(report.events_per_second, 0.0);
  report.FinalizeThroughput(1000.0, 2.0);
  EXPECT_DOUBLE_EQ(report.slots_per_second, 500.0);
  EXPECT_DOUBLE_EQ(report.events_per_second, 50.0);
}

TEST(RunReportTest, JsonRoundTripsHeadlineNumbers) {
  const RunReport report = FilledReport();
  std::ostringstream out;
  report.WriteJson(out);
  const std::string json = out.str();

  // The serialized document reparses to the values we put in.
  Result<double> seed = FindJsonNumber(json, "seed");
  ASSERT_TRUE(seed.ok());
  EXPECT_DOUBLE_EQ(*seed, 42.0);
  Result<double> period = FindJsonNumber(json, "period");
  ASSERT_TRUE(period.ok());
  EXPECT_DOUBLE_EQ(*period, 11010.0);
  Result<double> measured = FindJsonNumber(json, "measured");
  ASSERT_TRUE(measured.ok());
  EXPECT_DOUBLE_EQ(*measured, 4000.0);
  Result<double> hit_rate = FindJsonNumber(json, "hit_rate");
  ASSERT_TRUE(hit_rate.ok());
  EXPECT_NEAR(*hit_rate, 2867.0 / 4000.0, 1e-9);
  // Numbers serialize with %.12g, so reparse to ~12 significant digits.
  Result<double> p50 = FindJsonNumber(json, "p50");
  ASSERT_TRUE(p50.ok());
  EXPECT_NEAR(*p50, report.response.p50, 1e-9 * report.response.p50);
  Result<double> p99 = FindJsonNumber(json, "p99");
  ASSERT_TRUE(p99.ok());
  EXPECT_NEAR(*p99, report.response.p99, 1e-9 * report.response.p99);
  Result<double> slots = FindJsonNumber(json, "slots_per_second");
  ASSERT_TRUE(slots.ok());
  EXPECT_NEAR(*slots, report.slots_per_second, 1e-3);
  Result<double> clients = FindJsonNumber(json, "clients");
  ASSERT_TRUE(clients.ok());
  EXPECT_DOUBLE_EQ(*clients, 5.0);

  // Structural spot checks.
  EXPECT_NE(json.find("\"tool\": \"bcastsim\""), std::string::npos);
  EXPECT_NE(json.find("\"served_per_disk\": [604, 529, 0]"),
            std::string::npos);
}

TEST(RunReportTest, ConfigStringIsEscaped) {
  RunReport report;
  report.config = "quote\" backslash\\ newline\n";
  std::ostringstream out;
  report.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n"),
            std::string::npos)
      << json;
}

TEST(RunReportTest, MetricsSnapshotSerializes) {
  MetricsRegistry registry;
  registry.GetCounter("sim/requests")->Increment(123);
  registry.GetGauge("sim/period")->Set(11010.0);
  registry.GetHistogram("sim/response_slots")->Add(50.0);

  RunReport report = FilledReport();
  report.metrics = registry.TakeSnapshot();
  std::ostringstream out;
  report.WriteJson(out);
  const std::string json = out.str();
  Result<double> requests = FindJsonNumber(json, "sim/requests");
  ASSERT_TRUE(requests.ok());
  EXPECT_DOUBLE_EQ(*requests, 123.0);
  Result<double> period = FindJsonNumber(json, "sim/period");
  ASSERT_TRUE(period.ok());
  EXPECT_DOUBLE_EQ(*period, 11010.0);
  EXPECT_NE(json.find("\"sim/response_slots\""), std::string::npos);
}

TEST(RunReportTest, WriteToFileRoundTrips) {
  const RunReport report = FilledReport();
  const std::string path = ::testing::TempDir() + "/run_report_test.json";
  ASSERT_TRUE(report.WriteToFile(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  Result<double> seeds = FindJsonNumber(json, "seeds");
  ASSERT_TRUE(seeds.ok());
  EXPECT_DOUBLE_EQ(*seeds, 3.0);
}

TEST(RunReportTest, WriteToFileBadPathFails) {
  const RunReport report;
  EXPECT_FALSE(report.WriteToFile("/nonexistent_dir_zzz/report.json").ok());
}

TEST(RunReportTest, EmptyReportSerializesFiniteNumbers) {
  const RunReport report;
  std::ostringstream out;
  report.WriteJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  Result<double> hit_rate = FindJsonNumber(json, "hit_rate");
  ASSERT_TRUE(hit_rate.ok());
  EXPECT_EQ(*hit_rate, 0.0);
}

}  // namespace
}  // namespace bcast::obs
