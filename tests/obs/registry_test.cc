#include "obs/registry.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json_util.h"

namespace bcast::obs {
namespace {

TEST(MetricsRegistryTest, ReRegistrationReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("sim/requests");
  Counter* b = registry.GetCounter("sim/requests");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);

  Gauge* g1 = registry.GetGauge("sim/period");
  Gauge* g2 = registry.GetGauge("sim/period");
  EXPECT_EQ(g1, g2);

  LogHistogram* h1 = registry.GetHistogram("sim/response");
  LogHistogram* h2 = registry.GetHistogram("sim/response");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("a");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("counter_" + std::to_string(i));
  }
  first->Increment();
  EXPECT_EQ(registry.GetCounter("a")->value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(1);
  registry.GetCounter("alpha")->Increment(2);
  registry.GetCounter("mid")->Increment(3);
  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
  EXPECT_EQ(snap.counters[0].second, 2u);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry a;
  a.GetCounter("x")->Increment(1);
  a.GetCounter("y")->Increment(2);
  MetricsRegistry b;
  b.GetCounter("y")->Increment(2);
  b.GetCounter("x")->Increment(1);
  std::ostringstream ja;
  std::ostringstream jb;
  a.WriteJson(ja);
  b.WriteJson(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(MetricsRegistryTest, EmptyAndSnapshotEmpty) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_TRUE(registry.TakeSnapshot().empty());
  registry.GetGauge("g");
  EXPECT_FALSE(registry.empty());
  EXPECT_FALSE(registry.TakeSnapshot().empty());
}

TEST(MetricsRegistryTest, MergeAddsCountersAndHistograms) {
  MetricsRegistry a;
  a.GetCounter("hits")->Increment(5);
  a.GetHistogram("rt")->Add(10.0);
  MetricsRegistry b;
  b.GetCounter("hits")->Increment(7);
  b.GetCounter("only_in_b")->Increment(1);
  b.GetHistogram("rt")->Add(30.0);
  b.GetGauge("period")->Set(100.0);

  a.Merge(b);
  EXPECT_EQ(a.GetCounter("hits")->value(), 12u);
  EXPECT_EQ(a.GetCounter("only_in_b")->value(), 1u);
  EXPECT_EQ(a.GetHistogram("rt")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.GetHistogram("rt")->max(), 30.0);
  EXPECT_DOUBLE_EQ(a.GetGauge("period")->value(), 100.0);
}

TEST(MetricsRegistryTest, GaugeMergeKeepsSetValue) {
  Gauge set;
  set.Set(42.0);
  Gauge unset;
  set.Merge(unset);  // merging an unset gauge must not clobber
  EXPECT_DOUBLE_EQ(set.value(), 42.0);
  unset.Merge(set);
  EXPECT_DOUBLE_EQ(unset.value(), 42.0);
}

TEST(MetricsRegistryTest, WriteJsonRoundTripsValues) {
  MetricsRegistry registry;
  registry.GetCounter("sim/requests")->Increment(4000);
  registry.GetGauge("sim/period")->Set(11010.0);
  LogHistogram* h = registry.GetHistogram("sim/response_slots");
  for (int i = 1; i <= 100; ++i) h->Add(static_cast<double>(i));

  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();

  Result<double> requests = FindJsonNumber(json, "sim/requests");
  ASSERT_TRUE(requests.ok());
  EXPECT_DOUBLE_EQ(*requests, 4000.0);
  Result<double> period = FindJsonNumber(json, "sim/period");
  ASSERT_TRUE(period.ok());
  EXPECT_DOUBLE_EQ(*period, 11010.0);
  Result<double> count = FindJsonNumber(json, "count");
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 100.0);
  Result<double> p90 = FindJsonNumber(json, "p90");
  ASSERT_TRUE(p90.ok());
  EXPECT_NEAR(*p90, 90.0, 12.0);
}

TEST(MetricsRegistryDeathTest, EmptyNameDies) {
  MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter(""), "Check failed");
}

}  // namespace
}  // namespace bcast::obs
