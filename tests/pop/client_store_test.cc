// The population SoA store: shard partition geometry, class stamping,
// conditional block allocation, canonical merges, and the cache-line
// padding the zero-synchronization rounds depend on.

#include "pop/client_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pop/pop_params.h"

namespace bcast::pop {
namespace {

std::vector<ClassProfile> TwoClasses() {
  return {{"near", 0.6, 0.5, 0.0}, {"far", 0.4, 2.0, 3.0}};
}

TEST(ClientStoreTest, ShardRangesMatchShardBegin) {
  ClientStore store(10, 3, {}, /*need_pull=*/false, /*need_cold=*/false);
  EXPECT_EQ(store.clients(), 10u);
  EXPECT_EQ(store.shards(), 3u);
  for (uint64_t s = 0; s < 3; ++s) {
    EXPECT_EQ(store.ShardBeginOf(s), ShardBegin(s, 3, 10));
    EXPECT_EQ(store.ShardEndOf(s), ShardBegin(s + 1, 3, 10));
    for (uint64_t c = store.ShardBeginOf(s); c < store.ShardEndOf(s); ++c) {
      EXPECT_EQ(store.ShardOf(c), s) << "client " << c;
    }
  }
}

TEST(ClientStoreTest, ClassAssignmentMatchesClassOfClient) {
  const auto classes = TwoClasses();
  ClientStore store(10, 2, classes, false, false);
  for (uint64_t c = 0; c < 10; ++c) {
    EXPECT_EQ(store.class_of(c), ClassOfClient(c, 10, classes)) << c;
  }
}

TEST(ClientStoreTest, BlocksAllocatedOnlyWhenNeeded) {
  ClientStore bare(4, 2, {}, false, false);
  EXPECT_EQ(bare.pull_stats(0), nullptr);
  EXPECT_EQ(bare.cold_wait(0), nullptr);

  ClientStore full(4, 2, {}, true, true);
  ASSERT_NE(full.pull_stats(0), nullptr);
  ASSERT_NE(full.cold_wait(0), nullptr);
  EXPECT_NE(full.pull_stats(0), full.pull_stats(1));
}

TEST(ClientStoreTest, BlocksAreCacheLinePadded) {
  // The no-false-sharing contract: each client's mutable block starts
  // on its own cache line.
  static_assert(alignof(ClientPullBlock) >= 64);
  static_assert(alignof(ClientColdBlock) >= 64);
  static_assert(sizeof(ClientPullBlock) % 64 == 0);
  static_assert(sizeof(ClientColdBlock) % 64 == 0);
  ClientStore store(3, 3, {}, true, true);
  for (uint64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(store.pull_stats(c)) % 64, 0u);
  }
}

TEST(ClientStoreTest, MergePullStatsFoldsClientSideFields) {
  // The blocks carry only what the client-side requester writes —
  // deliveries and wait histograms. Admission counters (attempted,
  // accepted, dropped, lost) are accounted by the coordinator's replay
  // against the real pull server and must NOT be double-folded here.
  ClientStore store(5, 2, {}, true, false);
  for (uint64_t c = 0; c < 5; ++c) {
    store.pull_stats(c)->requests_attempted = 100;  // replay-owned
    store.pull_stats(c)->push_deliveries = c + 1;
    store.pull_stats(c)->pull_latency.Add(static_cast<double>(c));
    store.pull_stats(c)->push_latency.Add(static_cast<double>(c));
  }
  pull::PullStats total;
  store.MergePullStats(&total);
  EXPECT_EQ(total.push_deliveries, 1u + 2 + 3 + 4 + 5);
  EXPECT_EQ(total.pull_latency.count(), 5u);
  EXPECT_EQ(total.push_latency.count(), 5u);
  EXPECT_EQ(total.requests_attempted, 0u);
}

TEST(ClientStoreTest, MergeColdWaitFoldsEveryClient) {
  ClientStore store(4, 4, {}, false, true);
  for (uint64_t c = 0; c < 4; ++c) {
    store.cold_wait(c)->Add(10.0 * static_cast<double>(c + 1));
  }
  obs::LogHistogram total;
  store.MergeColdWait(&total);
  EXPECT_EQ(total.count(), 4u);
}

TEST(ApplyClassProfilesTest, StampsSpecsFromClasses) {
  const auto classes = TwoClasses();
  std::vector<ClientSpec> specs(10);
  ApplyClassProfiles(classes, &specs);
  for (uint64_t c = 0; c < 10; ++c) {
    const uint32_t k = ClassOfClient(c, 10, classes);
    EXPECT_EQ(specs[c].class_id, k);
    EXPECT_DOUBLE_EQ(specs[c].loss_scale, classes[k].loss_scale);
    EXPECT_DOUBLE_EQ(specs[c].doze_scale, classes[k].doze_scale);
  }
}

TEST(ApplyClassProfilesTest, EmptyClassListIsNoOp) {
  std::vector<ClientSpec> specs(3);
  specs[1].loss_scale = 7.0;
  ApplyClassProfiles({}, &specs);
  EXPECT_EQ(specs[0].class_id, 0u);
  EXPECT_DOUBLE_EQ(specs[1].loss_scale, 7.0);
}

}  // namespace
}  // namespace bcast::pop
