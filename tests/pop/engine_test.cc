// Differential tests of the sharded population engine against the
// legacy single-simulation runner (the oracle): on uncoupled and
// fault-only configurations the engine must be *bit-identical* to
// `RunMultiClientSimulation`, for any shard count. Also covers the
// engine-only observability surfaces: population report extras and the
// stats-stream population fields.

#include "pop/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi_client.h"
#include "obs/run_report.h"
#include "obs/stats_stream.h"
#include "pop/client_store.h"
#include "pop/pop_params.h"
#include "tests/pop/population_test_util.h"

namespace bcast::pop {
namespace {

using pop_test::MakePopulation;
using pop_test::SimulationBytes;

// Serialized report of the legacy runner.
std::string LegacyBytes(const MultiClientParams& params) {
  auto result = RunMultiClientSimulation(params);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return SimulationBytes(
      MakePopulationRunReport(params, *result, "pop_test", "test"));
}

// Serialized report of the engine at shard count `k` (forced, so k=1
// exercises the engine rather than the legacy fallback). Population
// extras are deliberately *not* appended: the oracle cannot produce
// them, and SimulationBytes already covers the engine-vs-engine case.
std::string EngineBytes(const MultiClientParams& params, uint64_t k) {
  PopParams pop;
  pop.clients = params.clients.size();
  pop.shards = k;
  pop.force_engine = true;
  auto result = RunPopulationSimulation(params, pop);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return SimulationBytes(
      MakePopulationRunReport(params, *result, "pop_test", "test"));
}

void ExpectEngineMatchesLegacy(const MultiClientParams& params) {
  const std::string legacy = LegacyBytes(params);
  for (uint64_t k : {1u, 2u, 5u}) {
    EXPECT_EQ(EngineBytes(params, k), legacy) << "shards=" << k;
  }
}

TEST(PopulationEngineTest, MatchesLegacyOnUncoupledConfig) {
  ExpectEngineMatchesLegacy(MakePopulation(6));
}

TEST(PopulationEngineTest, MatchesLegacyUnderChannelFaults) {
  MultiClientParams params = MakePopulation(6);
  params.fault.loss = 0.1;
  params.fault.burst_len = 3.0;
  params.fault.corrupt = 0.02;
  ExpectEngineMatchesLegacy(params);
}

TEST(PopulationEngineTest, MatchesLegacyUnderProcessFaults) {
  MultiClientParams params = MakePopulation(6);
  params.fault.loss = 0.05;
  params.fault.process.crash_every = 20000.0;
  params.fault.process.crash_down = 50.0;
  params.fault.process.crash_cold = true;
  params.fault.process.stall_every = 5000.0;
  params.fault.process.stall_len = 20.0;
  params.fault.process.slot_jitter = 0.3;
  ExpectEngineMatchesLegacy(params);
}

TEST(PopulationEngineTest, MatchesLegacyUnderScheduleVersionBumps) {
  MultiClientParams params = MakePopulation(6);
  params.fault.process.version_every = 20000.0;
  ExpectEngineMatchesLegacy(params);
}

TEST(PopulationEngineTest, MatchesLegacyWithReceiverClasses) {
  // Class profiles scale each client's fault knobs; the legacy runner
  // reads the same stamped specs, so the runs must still agree.
  MultiClientParams params = MakePopulation(6);
  params.fault.loss = 0.1;
  const auto classes =
      *ParseClassProfiles("near:0.5:0.25:1,far:0.5:2:1");
  ApplyClassProfiles(classes, &params.clients);
  const std::string legacy = LegacyBytes(params);
  PopParams pop;
  pop.clients = params.clients.size();
  pop.classes = classes;
  pop.force_engine = true;
  for (uint64_t k : {1u, 3u}) {
    pop.shards = k;
    auto result = RunPopulationSimulation(params, pop);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(SimulationBytes(MakePopulationRunReport(params, *result,
                                                      "pop_test", "test")),
              legacy)
        << "shards=" << k;
  }
}

// Finds an extra by key; -1 when absent.
double ExtraOr(const obs::RunReport& report, const std::string& key,
               double fallback) {
  for (const auto& [k, v] : report.extra) {
    if (k == key) return v;
  }
  return fallback;
}

TEST(PopulationEngineTest, AppendsPopulationAndClassExtras) {
  MultiClientParams params = MakePopulation(8);
  params.fault.loss = 0.1;
  PopParams pop;
  pop.clients = 8;
  pop.shards = 2;
  pop.classes = *ParseClassProfiles("near:0.5:0.25,far:0.5:2");
  ApplyClassProfiles(pop.classes, &params.clients);
  auto result = RunPopulationSimulation(params, pop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  obs::RunReport report =
      MakePopulationRunReport(params, *result, "pop_test", "test");
  AppendPopulationExtras(pop, *result, &report);

  EXPECT_EQ(ExtraOr(report, "pop_clients", -1.0), 8.0);
  EXPECT_EQ(ExtraOr(report, "pop_shards", -1.0), 2.0);
  EXPECT_EQ(ExtraOr(report, "pop_engine", -1.0), 1.0);
  EXPECT_EQ(ExtraOr(report, "class0_near_clients", -1.0), 4.0);
  EXPECT_EQ(ExtraOr(report, "class1_far_clients", -1.0), 4.0);
  EXPECT_GT(ExtraOr(report, "pop_max_flow_time", -1.0), 0.0);
  EXPECT_GT(ExtraOr(report, "pop_stretch_max", -1.0), 0.0);
  // The worst class p99 is the max over the per-class p99 extras.
  const double worst = ExtraOr(report, "pop_worst_class_p99", -1.0);
  EXPECT_EQ(worst, std::max(ExtraOr(report, "class0_near_rt_p99", -1.0),
                            ExtraOr(report, "class1_far_rt_p99", -1.0)));
  // A "far" class that loses 2x as often cannot beat "near" on mean
  // response time.
  EXPECT_GE(ExtraOr(report, "class1_far_mean_rt", -1.0),
            ExtraOr(report, "class0_near_mean_rt", -1.0));
}

TEST(PopulationEngineTest, StatsStreamCarriesPopulationFields) {
  MultiClientParams params = MakePopulation(6);
  PopParams pop;
  pop.clients = 6;
  pop.shards = 3;
  std::ostringstream stream;
  obs::StatsWriter writer(&stream);
  SimObservers observers;
  observers.stats = &writer;
  observers.stats_interval = 2000.0;
  auto result = RunPopulationSimulation(params, pop, observers);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::istringstream lines(stream.str());
  std::string line;
  uint64_t samples = 0;
  obs::StatsSample last;
  while (std::getline(lines, line)) {
    auto sample = obs::ParseStatsLine(line);
    ASSERT_TRUE(sample.ok()) << sample.status().ToString() << ": " << line;
    EXPECT_EQ(sample->pop_clients, 6u);
    EXPECT_EQ(sample->pop_shards, 3u);
    last = *sample;
    ++samples;
  }
  ASSERT_GT(samples, 1u);
  EXPECT_TRUE(last.final_sample);
  // The closing sample agrees with the run's own ledger.
  uint64_t requests = 0;
  for (const auto& m : result->per_client) requests += m.requests();
  EXPECT_EQ(last.requests, requests);
  EXPECT_EQ(last.events, result->events_dispatched);
}

TEST(PopulationEngineTest, StatsObservationDoesNotPerturbTheRun) {
  // The engine samples at barriers without scheduling DES events, so an
  // observed run reports the same simulation as an unobserved one. The
  // sole exception is `end_time`: the last surviving grid tick rounds
  // the clock up to its sample time, exactly as the legacy sampler's
  // final kStats event does (legacy additionally inflates
  // events_dispatched, which the engine does not).
  MultiClientParams params = MakePopulation(6);
  PopParams pop;
  pop.clients = 6;
  pop.shards = 2;
  auto unobserved = RunPopulationSimulation(params, pop);
  ASSERT_TRUE(unobserved.ok());
  std::ostringstream stream;
  obs::StatsWriter writer(&stream);
  SimObservers observers;
  observers.stats = &writer;
  observers.stats_interval = 1000.0;
  auto observed = RunPopulationSimulation(params, pop, observers);
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(observed->events_dispatched, unobserved->events_dispatched);
  auto normalized = [&](const MultiClientResult& result) {
    obs::RunReport report =
        MakePopulationRunReport(params, result, "pop_test", "test");
    report.end_time = 0.0;
    return SimulationBytes(std::move(report));
  };
  EXPECT_EQ(normalized(*observed), normalized(*unobserved));
}

}  // namespace
}  // namespace bcast::pop
