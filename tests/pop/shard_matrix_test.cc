// Shard-count invariance matrix (the engine's determinism contract):
// for each golden configuration, every shard count in {1, 2, 7} and
// both DES queue backends must produce the same report, byte for byte,
// after wall-clock normalization. Unlike the engine-vs-legacy
// differential (engine_test.cc), this holds on *coupled* configurations
// too — pull and adaptation included — because the barrier replay order
// never mentions shards.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/multi_client.h"
#include "des/simulation.h"
#include "obs/run_report.h"
#include "pop/client_store.h"
#include "pop/engine.h"
#include "pop/pop_params.h"
#include "tests/pop/population_test_util.h"

namespace bcast::pop {
namespace {

using pop_test::MakePopulation;
using pop_test::SimulationBytes;

// Nine clients so a seven-way split is a genuine partition (two shards
// own two clients, five own one).
constexpr uint64_t kClients = 9;

std::vector<std::pair<std::string, MultiClientParams>> GoldenConfigs() {
  std::vector<std::pair<std::string, MultiClientParams>> configs;
  {
    // Uncoupled: no cross-shard traffic at all; one round to completion.
    configs.emplace_back("pop_uncoupled", MakePopulation(kClients));
  }
  {
    // Fault-heavy but still uncoupled: loss bursts, corruption, crashes,
    // server stalls and jitter all resolve shard-locally.
    MultiClientParams params = MakePopulation(kClients);
    params.fault.loss = 0.1;
    params.fault.burst_len = 3.0;
    params.fault.corrupt = 0.02;
    params.fault.process.crash_every = 20000.0;
    params.fault.process.crash_down = 50.0;
    params.fault.process.stall_every = 5000.0;
    params.fault.process.stall_len = 20.0;
    configs.emplace_back("pop_faults", params);
  }
  {
    // Coupled: a shared pull server (uplink admission + queue) and the
    // adaptive controller splitting the slot budget — the paths where
    // the barrier protocol actually carries information between shards.
    MultiClientParams params = MakePopulation(kClients);
    params.fault.loss = 0.1;
    params.pull.pull_slots = 2;
    params.pull.threshold = 100.0;
    params.adapt.epoch_cycles = 4;
    configs.emplace_back("pop_adapt_pull", params);
  }
  return configs;
}

TEST(ShardMatrixTest, ReportsInvariantInShardCountAndBackend) {
  for (const auto& [name, base] : GoldenConfigs()) {
    SCOPED_TRACE(name);
    std::string reference;
    for (des::QueueBackend backend :
         {des::QueueBackend::kHeap, des::QueueBackend::kCalendar}) {
      for (uint64_t k : {1u, 2u, 7u}) {
        MultiClientParams params = base;
        params.des_queue = backend;
        PopParams pop;
        pop.clients = kClients;
        pop.shards = k;
        pop.force_engine = true;
        auto result = RunPopulationSimulation(params, pop);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        obs::RunReport report =
            MakePopulationRunReport(params, *result, name, "test");
        AppendPopulationExtras(pop, *result, &report);
        const std::string bytes = SimulationBytes(std::move(report));
        if (reference.empty()) {
          reference = bytes;
        } else {
          EXPECT_EQ(bytes, reference)
              << name << " diverged at shards=" << k << " backend="
              << (backend == des::QueueBackend::kHeap ? "heap"
                                                      : "calendar");
        }
      }
    }
  }
}

TEST(ShardMatrixTest, ClassProfilesStayShardInvariant) {
  // Receiver classes cut across shard boundaries (class ranges and
  // shard ranges are different partitions of the id space); the fairness
  // extras must not notice how the population was split.
  MultiClientParams base = MakePopulation(kClients);
  base.fault.loss = 0.08;
  PopParams pop;
  pop.clients = kClients;
  pop.force_engine = true;
  pop.classes = *ParseClassProfiles("near:0.4:0.5,far:0.6:2");
  ApplyClassProfiles(pop.classes, &base.clients);
  std::string reference;
  for (uint64_t k : {1u, 3u, 7u}) {
    pop.shards = k;
    auto result = RunPopulationSimulation(base, pop);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    obs::RunReport report =
        MakePopulationRunReport(base, *result, "pop_classes", "test");
    AppendPopulationExtras(pop, *result, &report);
    const std::string bytes = SimulationBytes(std::move(report));
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "shards=" << k;
    }
  }
}

}  // namespace
}  // namespace bcast::pop
