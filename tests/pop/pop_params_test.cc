// Population knobs: class-profile parsing, the deterministic
// client-to-class and client-to-shard maps, and validation.

#include "pop/pop_params.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bcast::pop {
namespace {

TEST(ParseClassProfilesTest, EmptySpecMeansNoClasses) {
  auto classes = ParseClassProfiles("");
  ASSERT_TRUE(classes.ok());
  EXPECT_TRUE(classes->empty());
}

TEST(ParseClassProfilesTest, FullEntries) {
  auto classes = ParseClassProfiles("near:0.6:0.5:0,far:0.4:2:3");
  ASSERT_TRUE(classes.ok());
  ASSERT_EQ(classes->size(), 2u);
  EXPECT_EQ((*classes)[0].name, "near");
  EXPECT_DOUBLE_EQ((*classes)[0].fraction, 0.6);
  EXPECT_DOUBLE_EQ((*classes)[0].loss_scale, 0.5);
  EXPECT_DOUBLE_EQ((*classes)[0].doze_scale, 0.0);
  EXPECT_EQ((*classes)[1].name, "far");
  EXPECT_DOUBLE_EQ((*classes)[1].fraction, 0.4);
  EXPECT_DOUBLE_EQ((*classes)[1].loss_scale, 2.0);
  EXPECT_DOUBLE_EQ((*classes)[1].doze_scale, 3.0);
}

TEST(ParseClassProfilesTest, TrailingFieldsDefault) {
  auto classes = ParseClassProfiles("solo");
  ASSERT_TRUE(classes.ok());
  ASSERT_EQ(classes->size(), 1u);
  EXPECT_DOUBLE_EQ((*classes)[0].fraction, 1.0);
  EXPECT_DOUBLE_EQ((*classes)[0].loss_scale, 1.0);
  EXPECT_DOUBLE_EQ((*classes)[0].doze_scale, 1.0);

  auto partial = ParseClassProfiles("a:0.5,b::4");
  ASSERT_TRUE(partial.ok());
  ASSERT_EQ(partial->size(), 2u);
  EXPECT_DOUBLE_EQ((*partial)[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ((*partial)[1].fraction, 1.0);
  EXPECT_DOUBLE_EQ((*partial)[1].loss_scale, 4.0);
}

TEST(ParseClassProfilesTest, RejectsMalformedEntries) {
  EXPECT_FALSE(ParseClassProfiles(":0.5").ok());
  EXPECT_FALSE(ParseClassProfiles("a:0.5:x").ok());
  EXPECT_FALSE(ParseClassProfiles("a:1:1:1:1").ok());
}

TEST(PopParamsValidateTest, AcceptsDefaults) {
  PopParams pop;
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopParamsValidateTest, RejectsDegenerateCounts) {
  PopParams pop;
  pop.clients = 0;
  EXPECT_FALSE(pop.Validate().ok());
  pop.clients = 10;
  pop.shards = 0;
  EXPECT_FALSE(pop.Validate().ok());
}

TEST(PopParamsValidateTest, RejectsBadClassProfiles) {
  PopParams pop;
  pop.clients = 10;
  pop.classes.push_back({"near", 0.0, 1.0, 1.0});
  EXPECT_FALSE(pop.Validate().ok());
  pop.classes[0].fraction = 0.7;
  EXPECT_TRUE(pop.Validate().ok());
  pop.classes.push_back({"far", 0.7, 1.0, 1.0});
  EXPECT_FALSE(pop.Validate().ok());  // fractions sum past 1
  pop.classes[1].fraction = 0.3;
  pop.classes[1].loss_scale = -1.0;
  EXPECT_FALSE(pop.Validate().ok());
}

TEST(PopParamsTest, UseEngineAndEffectiveShards) {
  PopParams pop;
  pop.clients = 10;
  EXPECT_FALSE(pop.UseEngine());  // shards=1, not forced: legacy path
  pop.force_engine = true;
  EXPECT_TRUE(pop.UseEngine());
  pop.force_engine = false;
  pop.shards = 4;
  EXPECT_TRUE(pop.UseEngine());
  EXPECT_EQ(pop.EffectiveShards(), 4u);
  pop.shards = 64;  // never more shards than clients
  EXPECT_EQ(pop.EffectiveShards(), 10u);
}

TEST(ShardBeginTest, PartitionIsContiguousBalancedAndComplete) {
  for (uint64_t clients : {1u, 7u, 10u, 1000u}) {
    for (uint64_t shards : {1u, 2u, 3u, 7u}) {
      if (shards > clients) continue;
      EXPECT_EQ(ShardBegin(0, shards, clients), 0u);
      EXPECT_EQ(ShardBegin(shards, shards, clients), clients);
      for (uint64_t s = 0; s < shards; ++s) {
        const uint64_t begin = ShardBegin(s, shards, clients);
        const uint64_t end = ShardBegin(s + 1, shards, clients);
        ASSERT_LT(begin, end) << "empty shard " << s;
        // Balanced: block sizes differ by at most one.
        const uint64_t size = end - begin;
        EXPECT_GE(size, clients / shards);
        EXPECT_LE(size, clients / shards + 1);
      }
    }
  }
}

TEST(ClassOfClientTest, ContiguousRangesWithRemainderToLast) {
  std::vector<ClassProfile> classes = {{"near", 0.6, 0.5, 0.0},
                                       {"far", 0.2, 2.0, 3.0}};
  constexpr uint64_t kClients = 10;
  // near covers [0, 6), far takes its 0.2 share *and* the unassigned
  // remainder: [6, 10).
  for (uint64_t c = 0; c < 6; ++c) {
    EXPECT_EQ(ClassOfClient(c, kClients, classes), 0u) << c;
  }
  for (uint64_t c = 6; c < kClients; ++c) {
    EXPECT_EQ(ClassOfClient(c, kClients, classes), 1u) << c;
  }
  // Classless population: everyone is class 0.
  EXPECT_EQ(ClassOfClient(3, kClients, {}), 0u);
}

TEST(ClassOfClientTest, MapIsMonotoneInClientId) {
  std::vector<ClassProfile> classes = {
      {"a", 0.25, 1.0, 1.0}, {"b", 0.25, 1.0, 1.0}, {"c", 0.5, 1.0, 1.0}};
  uint32_t last = 0;
  for (uint64_t c = 0; c < 100; ++c) {
    const uint32_t k = ClassOfClient(c, 100, classes);
    EXPECT_GE(k, last);
    last = k;
  }
  EXPECT_EQ(last, 2u);
}

}  // namespace
}  // namespace bcast::pop
