// Shared helpers for the population-engine test suites: a compact
// N-client population over a small two-disk geometry (fast enough for
// differential runs), and the wall-clock-normalized report serializer
// the identity assertions compare.

#ifndef BCAST_TESTS_POP_POPULATION_TEST_UTIL_H_
#define BCAST_TESTS_POP_POPULATION_TEST_UTIL_H_

#include <sstream>
#include <string>

#include "core/multi_client.h"
#include "obs/run_report.h"

namespace bcast::pop_test {

// A small heterogeneous population: N clients with interest shifts
// spread across a {100, 200} two-disk database. 500 measured requests
// per client keeps a full differential run (engine + legacy, several
// shard counts) well under a second.
inline MultiClientParams MakePopulation(uint64_t n) {
  MultiClientParams params;
  params.disk_sizes = {100, 200};
  params.delta = 2;
  params.measured_requests = 500;
  params.seed = 42;
  const uint64_t db = params.ServerDbSize();
  for (uint64_t c = 0; c < n; ++c) {
    ClientSpec spec;
    spec.access_range = 150;
    spec.region_size = 10;
    spec.cache_size = 40;
    spec.interest_shift = db * c / n;
    params.clients.push_back(spec);
  }
  return params;
}

// Zeroes the host-measurement fields (phase timings, wall-clock rates),
// leaving only simulation-derived bytes. `pop_shards` is additionally
// dropped from the extras when present: it names the execution layout,
// the one thing shard-count invariance is *about*.
inline std::string SimulationBytes(obs::RunReport report) {
  report.timings = {};
  report.slots_per_second = 0.0;
  report.events_per_second = 0.0;
  for (auto it = report.extra.begin(); it != report.extra.end(); ++it) {
    if (it->first == "pop_shards") {
      report.extra.erase(it);
      break;
    }
  }
  std::ostringstream out;
  report.WriteJson(out);
  return out.str();
}

}  // namespace bcast::pop_test

#endif  // BCAST_TESTS_POP_POPULATION_TEST_UTIL_H_
