// The shard-to-coordinator ring: capacity rounding, FIFO through ring
// and spill, and a two-thread soak of the lock-free fast path.

#include "pop/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace bcast::pop {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1025).capacity(), 2048u);
}

TEST(SpscQueueTest, PopOnEmptyFails) {
  SpscQueue<int> q(4);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
  q.Push(7);
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, FifoWithinRingCapacity) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) q.Push(i);
  EXPECT_EQ(q.spilled(), 0u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscQueueTest, OverflowSpillsAndDrainsFifo) {
  // A parked producer that overfills the ring models the barrier drain:
  // pops must come back in exact push order, ring bytes first, spill
  // after — which *is* push order, since spilling only starts when the
  // ring is full.
  SpscQueue<int> q(4);
  constexpr int kTotal = 100;
  for (int i = 0; i < kTotal; ++i) q.Push(i);
  EXPECT_GT(q.spilled(), 0u);
  for (int i = 0; i < kTotal; ++i) {
    int out = -1;
    ASSERT_TRUE(q.TryPop(&out)) << "lost entry " << i;
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, QueueIsReusableAfterFullDrain) {
  SpscQueue<int> q(2);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) q.Push(round * 10 + i);
    for (int i = 0; i < 10; ++i) {
      int out = -1;
      ASSERT_TRUE(q.TryPop(&out));
      EXPECT_EQ(out, round * 10 + i);
    }
    int out = -1;
    EXPECT_FALSE(q.TryPop(&out));
  }
}

TEST(SpscQueueTest, ConcurrentProducerConsumerLosesNothing) {
  // Live producer + live consumer: every pushed value must arrive
  // exactly once. (Cross spill/ring interleavings may reorder under a
  // racing producer; the engine only drains at barriers, where order is
  // covered by the FIFO tests above.)
  SpscQueue<uint64_t> q(64);
  constexpr uint64_t kTotal = 200000;
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kTotal; ++i) q.Push(i);
  });
  std::vector<uint8_t> seen(kTotal, 0);
  uint64_t received = 0;
  while (received < kTotal) {
    uint64_t v = 0;
    if (!q.TryPop(&v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(v, kTotal);
    ASSERT_EQ(seen[v], 0) << "duplicate " << v;
    seen[v] = 1;
    ++received;
  }
  producer.join();
  uint64_t v = 0;
  EXPECT_FALSE(q.TryPop(&v));
}

}  // namespace
}  // namespace bcast::pop
