// The adaptive grow-direction scenario: a population whose pull demand
// sustains a backlog on a one-slot split must drive the controller to
// grow the split — and the growth must be shard-count invariant, since
// the controller only ever sees the coordinator's replayed queue.
//
// The same scenario backs the CI gate: CI renders it to a run report
// and feeds it through `bcastcheck --adapt_sweep ... --adapt_require_grow`,
// which fails unless `adapt_slot_grows > 0` and
// `adapt_final_slots > adapt_initial_slots`.

#include <gtest/gtest.h>

#include <cstdint>

#include "check/invariants.h"
#include "core/multi_client.h"
#include "obs/run_report.h"
#include "pop/engine.h"
#include "pop/pop_params.h"
#include "tests/pop/population_test_util.h"

namespace bcast::pop {
namespace {

// Eight clients pulling against a single pull slot with a low send
// threshold: the queue never drains at the initial split, so every
// epoch's mean queue depth sits above `queue_high`.
MultiClientParams BacklogScenario() {
  MultiClientParams params = pop_test::MakePopulation(8);
  params.pull.pull_slots = 1;
  params.pull.threshold = 30.0;
  params.adapt.epoch_cycles = 2;
  params.adapt.max_slots = 8;
  return params;
}

TEST(AdaptGrowTest, SustainedBacklogGrowsThePullSplit) {
  const MultiClientParams params = BacklogScenario();
  for (uint64_t k : {1u, 2u, 4u}) {
    SCOPED_TRACE(k);
    PopParams pop;
    pop.clients = params.clients.size();
    pop.shards = k;
    pop.force_engine = true;
    auto result = RunPopulationSimulation(params, pop);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const adapt::AdaptStats& stats = result->adapt_stats;
    EXPECT_GT(stats.epochs, 0u);
    EXPECT_GT(stats.slot_grows, 0u);
    EXPECT_GT(stats.final_slots, stats.initial_slots);
    EXPECT_LE(stats.final_slots, params.adapt.max_slots);
  }
}

TEST(AdaptGrowTest, ScenarioReportPassesTheRequireGrowGate) {
  // End-to-end through the bcastcheck machinery: a static anchor plus
  // the adaptive backlog run must clear CheckAdaptImprovement with
  // require_grow set — the exact invocation CI uses.
  PopParams pop;
  pop.clients = 8;
  pop.shards = 2;
  pop.force_engine = true;

  MultiClientParams anchor_params = BacklogScenario();
  anchor_params.adapt.epoch_cycles = 0;  // static anchor
  auto anchor_result = RunPopulationSimulation(anchor_params, pop);
  ASSERT_TRUE(anchor_result.ok()) << anchor_result.status().ToString();
  obs::RunReport anchor = MakePopulationRunReport(
      anchor_params, *anchor_result, "pop_grow_static", "test");

  const MultiClientParams params = BacklogScenario();
  auto result = RunPopulationSimulation(params, pop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  obs::RunReport adaptive =
      MakePopulationRunReport(params, *result, "pop_grow_adaptive", "test");

  const check::CheckList checks = check::CheckAdaptImprovement(
      {check::AdaptSweepPointFromReport(anchor),
       check::AdaptSweepPointFromReport(adaptive)},
      /*slack=*/0.0, /*require_grow=*/true);
  std::ostringstream out;
  checks.Print(out);
  EXPECT_TRUE(checks.all_ok()) << out.str();
}

}  // namespace
}  // namespace bcast::pop
