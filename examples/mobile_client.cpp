// Mobile stock-quote terminal — the paper's information-dispersal
// scenario (Section 1.1: "stock prices ... mutual fund information
// services"). A brokerage broadcasts quote pages to battery-powered
// handhelds with no uplink. This example compares every cache policy the
// library ships on one realistic handheld, and shows the fixed
// inter-arrival property that lets a receiver sleep between the
// broadcasts it needs (the paper's power-saving argument in Section 2.1).

#include <iostream>

#include "broadcast/generator.h"
#include "common/table.h"
#include "common/string_util.h"
#include "core/simulator.h"

using namespace bcast;  // NOLINT: example brevity

int main() {
  // 4000 instruments: 400 blue chips on the fast disk, 1200 mid caps,
  // 2400 long-tail tickers. The handheld tracks the hottest 800.
  SimParams base;
  base.disk_sizes = {400, 1200, 2400};
  base.delta = 3;
  base.access_range = 800;
  base.region_size = 40;
  base.cache_size = 200;
  base.offset = 200;          // server expects caching clients
  base.noise_percent = 25.0;  // this user's watchlist is not the average
  base.measured_requests = 40000;

  std::cout << "Handheld quote terminal: 4000 instruments, 200-page cache, "
               "25% watchlist mismatch\n\n";

  AsciiTable table({"Policy", "MeanRT", "CacheHit%", "FromSlowDisk%",
                    "Comment"});
  struct Row {
    PolicyKind kind;
    const char* comment;
  };
  const Row rows[] = {
      {PolicyKind::kLru, "recency only"},
      {PolicyKind::kClock, "cheap recency approximation"},
      {PolicyKind::kTwoQ, "scan-resistant recency"},
      {PolicyKind::kL, "probability estimate only"},
      {PolicyKind::kLix, "probability / broadcast frequency"},
      {PolicyKind::kLruK, "k-distance + frequency"},
      {PolicyKind::kP, "idealized probability (unimplementable)"},
      {PolicyKind::kPix, "idealized cost-based bound"},
  };
  for (const Row& row : rows) {
    SimParams params = base;
    params.policy = row.kind;
    auto result = RunSimulation(params);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto fractions = result->metrics.LocationFractions();
    table.AddRow({PolicyKindName(row.kind),
                  FormatDouble(result->metrics.mean_response_time(), 1),
                  FormatDouble(100.0 * result->metrics.hit_rate(), 1),
                  FormatDouble(100.0 * fractions.back(), 1), row.comment});
  }
  table.Print(std::cout);

  // Power argument: fixed inter-arrival lets the radio sleep.
  auto layout = MakeDeltaLayout(base.disk_sizes, base.delta);
  auto program = GenerateMultiDiskProgram(*layout);
  if (program.ok()) {
    const PageId blue_chip = 0;
    const auto gaps = program->InterArrivalGaps(blue_chip);
    std::cout << "\nBlue-chip pages repeat every " << gaps[0]
              << " slots with zero variance: a receiver that needs one "
                 "can power its radio\ndown for "
              << gaps[0] - 1
              << " slots between copies — impossible under a random "
                 "broadcast schedule.\n";
  }
  return 0;
}
