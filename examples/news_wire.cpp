// News-wire dissemination — volatile, time-sensitive information (the
// paper's Section-1.1 motivating domain) on a broadcast disk.
//
// A wire service pushes 2000 story pages to receive-only terminals.
// Breaking stories (the hot disk) update constantly; archive pages almost
// never. The example shows:
//   1. a terminal *learning* the schedule off the air (ScheduleLearner),
//      which is what makes selective tuning possible with zero uplink;
//   2. the staleness/latency tradeoff of the three consistency actions
//      as the update rate rises (RunUpdateSimulation).

#include <iostream>

#include "broadcast/generator.h"
#include "client/schedule_learner.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/updates.h"

using namespace bcast;  // NOLINT: example brevity

int main() {
  // The wire: 100 breaking stories, 500 developing, 1400 archive.
  SimParams wire;
  wire.disk_sizes = {100, 500, 1400};
  wire.delta = 4;
  wire.access_range = 600;  // terminals read breaking + developing
  wire.region_size = 30;
  wire.cache_size = 150;
  wire.policy = PolicyKind::kLix;
  wire.measured_requests = 30000;

  // --- 1. Learn the schedule off the air. ---
  auto layout = MakeDeltaLayout(wire.disk_sizes, wire.delta);
  auto program = GenerateMultiDiskProgram(*layout);
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }
  ScheduleLearner learner;
  uint64_t listened = 0;
  // Tune in mid-broadcast and listen until the period is confirmed.
  const uint64_t start = 777 % program->period();
  while (!learner.converged() ||
         learner.observed() < 2 * learner.CandidatePeriod()) {
    learner.Observe(program->page_at((start + listened) % program->period()));
    ++listened;
    if (listened > 4 * program->period()) break;  // safety
  }
  auto learned = learner.Build();
  if (!learned.ok()) {
    std::cerr << learned.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Terminal tuned in mid-stream and learned the schedule after "
            << listened << " slots:\n  period " << learned->period()
            << " (true: " << program->period() << "), breaking story repeats"
            << " every " << learned->InterArrivalGaps(0)[0]
            << " slots, archive every " << learned->InterArrivalGaps(1999)[0]
            << ".\n  Frequency classes recovered: "
            << learned->num_disks() << " disks (true: "
            << program->num_disks() << ").\n\n";

  // --- 2. Updates: how should the terminal stay fresh? ---
  std::cout << "Terminal cache: " << wire.cache_size
            << " pages, LIX. Updates hit breaking stories hardest "
               "(Zipf 1.2 over the hot ranking).\n\n";
  AsciiTable table({"Updates/unit", "Action", "MeanRT", "Stale%",
                    "FreshHit%"});
  for (double rate : {0.02, 0.2}) {
    for (auto [action, name] :
         {std::pair{ConsistencyAction::kNone, "serve-stale"},
          std::pair{ConsistencyAction::kInvalidate, "invalidate"},
          std::pair{ConsistencyAction::kAutoRefresh, "auto-refresh"}}) {
      UpdateParams updates;
      updates.update_rate = rate;
      updates.update_theta = 1.2;
      updates.action = action;
      auto result = RunUpdateSimulation(wire, updates);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      table.AddRow(
          {FormatDouble(rate, 2), name,
           FormatDouble(result->mean_response_time, 1),
           FormatDouble(100.0 * result->StaleFraction(), 2),
           FormatDouble(100.0 * result->fresh_hits /
                            static_cast<double>(result->requests),
                        1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nFor a news wire, auto-refresh is the natural choice: the "
               "radio is already\nlistening for the schedule, and hot "
               "stories refresh themselves every few\nhundred slots at "
               "zero request latency.\n";
  return 0;
}
