// Quickstart: build a 3-level broadcast disk, inspect its schedule, and
// run a LIX-caching client against it.
//
//   $ ./build/examples/quickstart
//
// Walks through the three core objects of the library: DiskLayout (what
// to broadcast how often), BroadcastProgram (the generated periodic
// schedule), and RunSimulation (a full client/server experiment).

#include <iostream>

#include "broadcast/analysis.h"
#include "broadcast/generator.h"
#include "core/simulator.h"

using namespace bcast;  // NOLINT: example brevity

int main() {
  // 1. Shape the broadcast: 12 pages on three disks, the fastest spinning
  //    5x the slowest (Delta rule with delta = 2: frequencies 5, 3, 1).
  Result<DiskLayout> layout = MakeDeltaLayout({2, 4, 6}, /*delta=*/2);
  if (!layout.ok()) {
    std::cerr << "layout error: " << layout.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Layout: " << layout->ToString() << "\n";

  // 2. Generate the periodic schedule (Section 2.2 of the paper).
  Result<BroadcastProgram> program = GenerateMultiDiskProgram(*layout);
  if (!program.ok()) {
    std::cerr << "program error: " << program.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Period: " << program->period() << " slots ("
            << program->EmptySlots() << " empty)\nSchedule: ";
  for (SlotId s = 0; s < program->period(); ++s) {
    const PageId p = program->page_at(s);
    if (p == kEmptySlot) {
      std::cout << "- ";
    } else {
      std::cout << p << ' ';
    }
  }
  std::cout << "\n";
  std::cout << "Page 0 (fast disk) expected delay: "
            << ExpectedDelay(*program, 0) << " slots\n"
            << "Page 11 (slow disk) expected delay: "
            << ExpectedDelay(*program, 11) << " slots\n\n";

  // 3. Run a full simulation: a client with a 100-page LIX cache reading
  //    the hottest 500 pages of a 2000-page broadcast.
  SimParams params;
  params.disk_sizes = {200, 800, 1000};
  params.delta = 3;
  params.access_range = 500;
  params.region_size = 25;
  params.cache_size = 100;
  params.offset = 0;
  params.noise_percent = 15.0;  // the broadcast is a slight mismatch
  params.policy = PolicyKind::kLix;
  params.measured_requests = 30000;

  Result<SimResult> result = RunSimulation(params);
  if (!result.ok()) {
    std::cerr << "simulation error: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Simulated " << result->metrics.requests() << " requests ("
            << result->warmup_requests << " warm-up)\n"
            << "Mean response time : "
            << result->metrics.mean_response_time() << " broadcast units\n"
            << "Cache hit rate     : " << 100.0 * result->metrics.hit_rate()
            << "%\n";
  const auto fractions = result->metrics.LocationFractions();
  std::cout << "Served from        : cache " << 100 * fractions[0]
            << "%, disk1 " << 100 * fractions[1] << "%, disk2 "
            << 100 * fractions[2] << "%, disk3 " << 100 * fractions[3]
            << "%\n";

  // Compare against a flat broadcast of the same database.
  params.disk_sizes = {2000};
  params.delta = 0;
  Result<SimResult> flat = RunSimulation(params);
  if (flat.ok()) {
    std::cout << "Flat-broadcast baseline would be "
              << flat->metrics.mean_response_time()
              << " units: the multi-disk program is "
              << flat->metrics.mean_response_time() /
                     result->metrics.mean_response_time()
              << "x faster for this client.\n";
  }
  return 0;
}
