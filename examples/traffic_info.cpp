// Traffic information dissemination — one of the paper's motivating
// applications (Section 1.1: "traffic information systems ... volatile,
// time-sensitive information such as ... traffic updates").
//
// A metropolitan traffic server broadcasts road-segment condition pages
// to in-vehicle receivers that cannot transmit back. Incident-prone
// arterial segments are in high demand; residential streets are rarely
// queried. The example designs a broadcast for that demand curve and
// quantifies what commuters experience, including during an incident
// surge that the (static) broadcast was not tuned for.

#include <iostream>

#include "broadcast/analysis.h"
#include "broadcast/generator.h"
#include "common/table.h"
#include "common/string_util.h"
#include "core/simulator.h"

using namespace bcast;  // NOLINT: example brevity

namespace {

// Road database: 3000 segment pages, hottest first.
//   - 150 arterial/highway segments: queried constantly
//   - 850 major-road segments: queried regularly
//   - 2000 residential segments: queried rarely
constexpr uint64_t kArterial = 150;
constexpr uint64_t kMajor = 850;
constexpr uint64_t kResidential = 2000;

SimParams CommuterParams() {
  SimParams params;
  params.disk_sizes = {kArterial, kMajor, kResidential};
  params.delta = 4;
  // A commuter app queries the 1000 hottest segments along its routes.
  params.access_range = 1000;
  params.region_size = 50;
  params.theta = 0.95;
  params.cache_size = 120;   // in-dash unit memory
  params.policy = PolicyKind::kLix;
  params.think_time = 2.0;
  params.measured_requests = 40000;
  return params;
}

}  // namespace

int main() {
  std::cout << "Traffic broadcast for " << (kArterial + kMajor + kResidential)
            << " road segments (arterial/major/residential)\n\n";

  // Broadcast design summary.
  auto layout = MakeDeltaLayout({kArterial, kMajor, kResidential}, 4);
  auto program = GenerateMultiDiskProgram(*layout);
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }
  AsciiTable design({"Tier", "Segments", "RelFreq", "Repeat every",
                     "Worst-case wait"});
  const char* tiers[] = {"arterial", "major", "residential"};
  PageId first_page[] = {0, kArterial, kArterial + kMajor};
  for (int d = 0; d < 3; ++d) {
    const PageId p = first_page[d];
    const auto gaps = program->InterArrivalGaps(p);
    design.AddRow({tiers[d], std::to_string(layout->sizes[d]),
                   std::to_string(layout->rel_freqs[d]),
                   StrFormat("%llu slots",
                             static_cast<unsigned long long>(gaps[0])),
                   StrFormat("%.0f slots", static_cast<double>(gaps[0]))});
  }
  design.Print(std::cout);
  std::cout << "Broadcast period: " << program->period() << " slots, "
            << program->EmptySlots()
            << " spare slots (available for indexes/alerts)\n\n";

  // Normal commute vs incident surge. An incident re-ranks demand: many
  // drivers suddenly query segments the server considered cold. We model
  // that as mapping noise (the broadcast no longer matches the workload).
  AsciiTable results({"Scenario", "Policy", "MeanRT", "CacheHit%"});
  for (double noise : {0.0, 40.0}) {
    for (PolicyKind policy : {PolicyKind::kLru, PolicyKind::kLix}) {
      SimParams params = CommuterParams();
      params.noise_percent = noise;
      params.policy = policy;
      auto result = RunSimulation(params);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      results.AddRow({noise == 0.0 ? "normal commute" : "incident surge",
                      PolicyKindName(policy),
                      FormatDouble(result->metrics.mean_response_time(), 1),
                      FormatDouble(100.0 * result->metrics.hit_rate(), 1)});
    }
  }
  results.Print(std::cout);

  std::cout << "\nTakeaway: with a cost-aware cache (LIX) the in-vehicle "
               "unit keeps residential\nsegments it cares about cached "
               "(they repeat rarely on air), so even when an\nincident "
               "shifts demand, lookups stay fast without any uplink.\n";
  return 0;
}
