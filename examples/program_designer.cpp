// Broadcast program designer — the tool the paper asks for in Section 7
// ("we would like to have concrete design principles for deciding how
// many disks to use, what the best relative spinning speeds should be,
// and how to segment the client access range across these disks").
//
// Given a workload skew, the designer searches layouts with 1-4 disks,
// reports the analytically optimal configuration per disk count, and
// validates the winner in simulation.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "broadcast/schedule_optimizer.h"
#include "common/table.h"
#include "common/string_util.h"
#include "common/zipf.h"
#include "core/simulator.h"

using namespace bcast;  // NOLINT: example brevity

int main(int argc, char** argv) {
  // Workload: Zipf(theta) access to the hottest 1000 of 5000 pages.
  // Usage: program_designer [theta]
  double theta = 0.95;
  if (argc > 1) theta = std::atof(argv[1]);
  const uint64_t db_size = 5000;
  const uint64_t access_range = 1000;

  auto zipf = RegionZipfGenerator::Make(access_range, 50, theta);
  if (!zipf.ok()) {
    std::cerr << zipf.status().ToString() << "\n";
    return 1;
  }
  std::vector<double> probs(db_size, 0.0);
  for (PageId p = 0; p < access_range; ++p) probs[p] = zipf->Probability(p);

  std::cout << "Designing a broadcast for Zipf(theta=" << theta
            << ") access to " << access_range << "/" << db_size
            << " pages\n\n";

  const ScheduleOptimizer* designer = FindScheduleOptimizer("delta");

  AsciiTable table({"Disks", "Layout", "AnalyticRT", "vs flat"});
  const double flat_rt = static_cast<double>(db_size) / 2.0;
  std::optional<OptimizedSchedule> best;
  for (uint64_t disks = 1; disks <= 4; ++disks) {
    OptimizerRequest request;
    request.probs = probs;
    request.num_disks = disks;
    request.max_delta = 7;
    auto result = designer->Design(request);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({std::to_string(disks), result->layout.ToString(),
                  FormatDouble(result->predicted_delay, 1),
                  StrFormat("%.2fx", flat_rt / result->predicted_delay)});
    if (!best || result->predicted_delay < best->predicted_delay) {
      best = std::move(*result);
    }
  }
  table.Print(std::cout);

  // Race the whole optimizer frontier on the winning partition.
  std::cout << "\nFrontier on the winning partition:\n";
  for (const std::string& name : ScheduleOptimizerNames()) {
    OptimizerRequest request;
    request.disk_sizes = best->layout.sizes;
    request.probs = probs;
    auto raced = FindScheduleOptimizer(name)->Build(request);
    if (raced.ok()) {
      std::cout << "  " << name << ": analytic "
                << FormatDouble(raced->predicted_delay, 1) << " units\n";
    }
  }

  // Validate the winner in simulation: pin its exact frequency vector.
  SimParams params;
  params.disk_sizes = best->layout.sizes;
  params.rel_freqs = best->layout.rel_freqs;
  params.access_range = access_range;
  params.theta = theta;
  params.cache_size = 1;  // validate the raw broadcast, no cache
  params.measured_requests = 30000;
  auto sim = RunSimulation(params);
  if (!sim.ok()) {
    std::cerr << sim.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nBest design " << best->layout.ToString() << ":\n  analytic "
            << FormatDouble(best->predicted_delay, 1) << " units, simulated "
            << FormatDouble(sim->metrics.mean_response_time(), 1)
            << " units (includes the 1-unit transmission).\n";
  std::cout << "\nDesign principles this reproduces: two disks capture "
               "most of the win and\nreturns diminish sharply beyond ~3; "
               "the fastest disk should hold only the\nvery hottest pages; "
               "and the analytic optimum agrees with simulation to\nwithin "
               "about a percent.\n";
  return 0;
}
