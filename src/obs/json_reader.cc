#include "obs/json_reader.h"

#include <cmath>
#include <cstdlib>

namespace bcast::obs {
namespace {

constexpr int kMaxDepth = 64;

}  // namespace

/// Recursive-descent parser over a string_view; tracks position for error
/// messages and depth for stack safety.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    JsonValue value;
    BCAST_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      BCAST_RETURN_IF_ERROR(ParseString(&key));
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      JsonValue value;
      BCAST_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      BCAST_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  // Parses a string literal (opening quote at pos_) into *out, decoding
  // escapes. \uXXXX escapes are decoded to UTF-8 (surrogate pairs
  // included; unpaired surrogates are rejected).
  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          BCAST_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!ConsumeLiteral("\\u")) return Error("unpaired surrogate");
            uint32_t low = 0;
            BCAST_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  // Strict JSON number grammar: -?int frac? exp?, no leading '+', no bare
  // '.', no leading zeros. strtod would accept more (hex, inf), so scan
  // the token by hand and then let strtod do the value conversion.
  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    Consume('-');
    if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
      return Error("expected number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        return Error("expected digits after decimal point");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        return Error("expected exponent digits");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

Result<bool> JsonValue::AsBool() const {
  if (!is_bool()) return Status::InvalidArgument("json value is not a bool");
  return bool_;
}

Result<double> JsonValue::AsNumber() const {
  if (!is_number()) {
    return Status::InvalidArgument("json value is not a number");
  }
  return number_;
}

Result<uint64_t> JsonValue::AsUint64() const {
  if (!is_number()) {
    return Status::InvalidArgument("json value is not a number");
  }
  if (number_ < 0.0 || number_ != std::floor(number_) ||
      number_ >= 1.8446744073709552e19) {
    return Status::OutOfRange("json number is not a uint64");
  }
  return static_cast<uint64_t>(number_);
}

Result<std::string> JsonValue::AsString() const {
  if (!is_string()) {
    return Status::InvalidArgument("json value is not a string");
  }
  return string_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<const JsonValue*> JsonValue::Get(std::string_view key) const {
  if (!is_object()) {
    return Status::InvalidArgument("json value is not an object");
  }
  const JsonValue* found = Find(key);
  if (found == nullptr) {
    return Status::NotFound("missing json key: " + std::string(key));
  }
  return found;
}

}  // namespace bcast::obs
