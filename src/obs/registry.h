/// \file registry.h
/// \brief A named-metric registry: counters, gauges, and histograms.
///
/// Instrumented code asks the registry once for a handle
/// (`registry->GetCounter("sim/cache_hits")`) and then bumps it directly —
/// a handle operation is a plain `uint64_t`/`double` store with no lock
/// and no lookup, cheap enough for the simulator's per-request path.
/// Handles stay valid for the registry's lifetime; asking again for the
/// same name returns the same handle (re-registration is idempotent).
///
/// Registries are single-threaded like the simulation itself; a
/// multi-client experiment keeps one registry per worker and folds them
/// together with `Merge()`. `TakeSnapshot()` renders a deterministic
/// (name-sorted) view for reports, and `WriteJson` serializes it.

#ifndef BCAST_OBS_REGISTRY_H_
#define BCAST_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace bcast::obs {

/// \brief A monotonically increasing named count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Merge(const Counter& other) { value_ += other.value_; }

 private:
  uint64_t value_ = 0;
};

/// \brief A last-write-wins named value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

  /// Merge keeps the larger magnitude-of-information value: a gauge that
  /// was never set (0) yields to one that was.
  void Merge(const Gauge& other) {
    if (other.value_ != 0.0) value_ = other.value_;
  }

 private:
  double value_ = 0.0;
};

/// \brief Owner of named counters/gauges/histograms.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \name Handle accessors: create on first use, return the existing
  /// handle afterwards. Pointers remain valid until the registry dies.
  /// @{
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LogHistogram* GetHistogram(const std::string& name);

  /// Histogram accessor with explicit geometry; the geometry only applies
  /// on first creation (an existing histogram keeps its own).
  LogHistogram* GetHistogram(const std::string& name,
                             const LogHistogram::Options& options);
  /// @}

  /// \brief A deterministic, name-sorted view of every metric.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSummary>> histograms;

    bool empty() const {
      return counters.empty() && gauges.empty() && histograms.empty();
    }
  };
  Snapshot TakeSnapshot() const;

  /// Folds \p other into this registry, creating missing metrics. Same-name
  /// histograms must share geometry.
  void Merge(const MetricsRegistry& other);

  /// Serializes the snapshot as a JSON object
  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
  void WriteJson(std::ostream& out) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  // std::map: stable handle addresses (values are unique_ptr) and sorted
  // iteration, which makes snapshots deterministic by construction.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace bcast::obs

#endif  // BCAST_OBS_REGISTRY_H_
