/// \file trace.h
/// \brief Structured per-request trace sink (sampled JSONL or CSV).
///
/// Where the metrics registry aggregates, the trace sink records: one
/// line per sampled client request with the simulated time, logical
/// page, hit/miss, wait in slots, serving disk, and — when the request
/// evicted a cached page — the victim and the policy's score for it.
/// Downstream tooling (pattern miners, fairness analyses, schedule
/// tuners) consumes the stream without re-running the simulator.
///
/// Sampling is deterministic: the sink owns a splitmix64 stream seeded
/// from the run seed, and `ShouldSample()` advances it once per request,
/// so two runs with identical seeds trace identical request subsets.
/// With sampling off (`sample = 0`) the sink records nothing and the
/// client's fast path stays a null-pointer check.

#ifndef BCAST_OBS_TRACE_H_
#define BCAST_OBS_TRACE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "common/status.h"

namespace bcast::obs {

/// \brief Output encoding of the trace stream.
enum class TraceFormat {
  kJsonl,  ///< One JSON object per line (default).
  kCsv,    ///< Header row, then one CSV row per record.
};

/// Parses "jsonl" | "csv".
Result<TraceFormat> ParseTraceFormat(const std::string& name);

/// \brief One sampled client request.
struct RequestEvent {
  /// Simulated time when the request was issued (broadcast units).
  double time = 0.0;

  /// Logical page requested.
  uint64_t page = 0;

  /// Served from the cache?
  bool hit = false;

  /// Issued during cache warm-up (before the measured phase)?
  bool warmup = false;

  /// Slots waited on the broadcast; 0 for hits.
  double wait_slots = 0.0;

  /// Serving disk (0 = fastest); -1 when served from the cache.
  int32_t disk = -1;

  /// Page evicted to admit this one; -1 when nothing was evicted.
  int64_t victim = -1;

  /// The policy's eviction score for the victim (e.g. its lix value);
  /// 0 when the policy has no score or nothing was evicted.
  double victim_score = 0.0;

  /// Issuing client's index in its population (0 in single-client runs).
  uint32_t client = 0;
};

/// \brief Writes sampled `RequestEvent`s to a stream or file.
class TraceSink {
 public:
  /// Creates a sink writing to \p out (unowned; must outlive the sink).
  /// \p sample in [0, 1] is the per-request sampling probability and
  /// \p seed feeds the deterministic sampling stream.
  TraceSink(std::ostream* out, double sample, TraceFormat format,
            uint64_t seed);

  /// Opens \p path for writing and returns a file-backed sink.
  static Result<std::unique_ptr<TraceSink>> Open(const std::string& path,
                                                 double sample,
                                                 TraceFormat format,
                                                 uint64_t seed);

  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Flips the sampling coin for the next request; call exactly once per
  /// request so `offered()` counts the full request stream.
  bool ShouldSample();

  /// Writes one record (call only after `ShouldSample()` returned true).
  void Record(const RequestEvent& event);

  /// Requests offered to the sampler so far.
  uint64_t offered() const { return offered_; }

  /// Records actually written.
  uint64_t recorded() const { return recorded_; }

  /// Configured sampling probability.
  double sample_rate() const { return sample_; }

  /// Flushes the underlying stream.
  void Flush();

 private:
  TraceSink(std::ofstream file, double sample, TraceFormat format,
            uint64_t seed);

  // Serializes the sampler and the stream across population-engine
  // shards. Under the multi-shard engine the coin-flip order follows
  // thread interleaving, so the *sampled subset* is only deterministic
  // on single-threaded paths; the run report never depends on it.
  std::mutex mu_;
  std::ofstream file_;  // backing storage when Open()ed; else unused
  std::ostream* out_;
  double sample_;
  TraceFormat format_;
  uint64_t sampler_state_;
  uint64_t offered_ = 0;
  uint64_t recorded_ = 0;
};

}  // namespace bcast::obs

#endif  // BCAST_OBS_TRACE_H_
