/// \file timeline.h
/// \brief Chrome trace-event timeline writer for simulation runs.
///
/// Where the metrics registry aggregates and the trace sink samples
/// requests, the timeline records *when things happened*: spans (phases,
/// miss waits, resync episodes), instant events (evictions, epoch
/// decisions, pull service), and counter tracks (pull queue depth), all
/// in the Chrome trace-event JSON format that Perfetto and
/// `chrome://tracing` load directly. Timestamps are simulated broadcast
/// units rendered as microseconds (1 slot = 1 us on the viewer's axis).
///
/// The writer is pure observation: it never schedules events and never
/// draws randomness, so a run with a timeline attached is bit-identical
/// (same requests, same event count) to one without. Call sites go
/// through the `BCAST_TIMELINE` macro, which reduces to a null-pointer
/// test when tracing is compiled in and to nothing at all when the build
/// defines `BCAST_DISABLE_TIMELINE` (CMake option `BCAST_DISABLE_TIMELINE`).

#ifndef BCAST_OBS_TIMELINE_H_
#define BCAST_OBS_TIMELINE_H_

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"

namespace bcast::obs {

/// \brief Timeline track ("tid") assignments, one per subsystem. Client
/// c gets track 1 + c; the server-side subsystems sit above any
/// plausible population size.
namespace track {
inline constexpr uint32_t kSim = 0;         ///< DES kernel (run span)
inline constexpr uint32_t kController = 100;  ///< adaptive controller
inline constexpr uint32_t kPull = 101;        ///< pull server

/// Track of client \p client_id (0-based).
constexpr uint32_t Client(uint32_t client_id) { return 1 + client_id; }

/// Track of population-engine shard \p shard (0-based); parked in the
/// top half of the id space so client tracks can never collide with it.
constexpr uint32_t Shard(uint32_t shard) { return 0x80000000u + shard; }
}  // namespace track

/// \brief One numeric argument attached to a timeline event.
struct TimelineArg {
  const char* key;
  double value;
};

/// \brief Streams Chrome trace-event JSON: `{"traceEvents": [...]}`.
///
/// Events are appended one per line as they happen; `Close()` (or the
/// destructor) terminates the array so the file is valid JSON. The
/// writer tracks per-track span depth so tests can assert B/E nesting
/// stays balanced.
///
/// Emission is serialized by an internal mutex: one writer may be shared
/// by every shard of the population engine. Record order across threads
/// follows wall-clock interleaving (each record is internally complete;
/// viewers sort by ts), so timeline *files* are not byte-deterministic
/// under the multi-shard engine even though the run's report is.
class TimelineWriter {
 public:
  /// Creates a writer over \p out (unowned; must outlive the writer).
  explicit TimelineWriter(std::ostream* out);

  /// Opens \p path for writing and returns a file-backed writer.
  static Result<std::unique_ptr<TimelineWriter>> Open(
      const std::string& path);

  ~TimelineWriter();

  TimelineWriter(const TimelineWriter&) = delete;
  TimelineWriter& operator=(const TimelineWriter&) = delete;

  /// Emits the thread_name metadata record naming \p tid in the viewer.
  void NameTrack(uint32_t tid, std::string_view name);

  /// Opens a span ("B") on \p tid at simulated time \p ts.
  void BeginSpan(uint32_t tid, std::string_view name, std::string_view cat,
                 double ts, std::initializer_list<TimelineArg> args = {});

  /// Closes the innermost open span ("E") on \p tid.
  void EndSpan(uint32_t tid, double ts);

  /// Emits a complete span ("X") of duration \p dur starting at \p ts.
  void Span(uint32_t tid, std::string_view name, std::string_view cat,
            double ts, double dur,
            std::initializer_list<TimelineArg> args = {});

  /// Emits a thread-scoped instant event ("i").
  void Instant(uint32_t tid, std::string_view name, std::string_view cat,
               double ts, std::initializer_list<TimelineArg> args = {});

  /// Emits a counter sample ("C") for the series \p name.
  void Counter(uint32_t tid, std::string_view name, double ts,
               double value);

  /// Terminates the JSON document; further events are dropped.
  void Close();

  /// Flushes the underlying stream (does not close the array).
  void Flush();

  /// Events emitted so far (metadata records included).
  uint64_t events_written() const { return events_written_; }

  /// Spans currently open across all tracks; 0 when nesting is balanced.
  int64_t open_spans() const { return open_spans_; }

 private:
  explicit TimelineWriter(std::ofstream file);

  // Writes the shared `{"name":...,"cat":...,"ph":.,"pid":1,"tid":...,
  // "ts":...` prefix and returns the stream for phase-specific fields.
  std::ostream& EmitCommon(std::string_view name, std::string_view cat,
                           char ph, uint32_t tid, double ts);
  void EmitArgs(std::initializer_list<TimelineArg> args);
  void EmitSeparator();

  std::mutex mu_;       // serializes emission across engine shards
  std::ofstream file_;  // backing storage when Open()ed; else unused
  std::ostream* out_;
  bool closed_ = false;
  bool first_event_ = true;
  uint64_t events_written_ = 0;
  int64_t open_spans_ = 0;
  std::unordered_map<uint32_t, int64_t> depth_per_track_;
};

/// \brief RAII span helper: begins on construction, ends on destruction.
/// \p NowFn supplies the (simulated) timestamp at both edges.
template <typename NowFn>
class ScopedSpan {
 public:
  ScopedSpan(TimelineWriter* writer, uint32_t tid, std::string_view name,
             std::string_view cat, NowFn now)
      : writer_(writer), tid_(tid), now_(now) {
    if (writer_ != nullptr) writer_->BeginSpan(tid_, name, cat, now_());
  }
  ~ScopedSpan() {
    if (writer_ != nullptr) writer_->EndSpan(tid_, now_());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TimelineWriter* writer_;
  uint32_t tid_;
  NowFn now_;
};

}  // namespace bcast::obs

// Instrumentation points funnel through these macros so a build with
// BCAST_DISABLE_TIMELINE compiles every timeline call out of the hot
// paths entirely (the argument expressions are not evaluated).
#ifndef BCAST_DISABLE_TIMELINE
// Fetches the attached writer from a des::Simulation* (nullptr when no
// timeline is attached).
#define BCAST_TIMELINE_PTR(sim) ((sim)->timeline())
// Invokes `writer->call(...)` when a writer is attached. The call is
// passed as variadic tokens so brace-enclosed argument lists with commas
// survive preprocessing.
#define BCAST_TIMELINE(writer, ...)                 \
  do {                                              \
    if ((writer) != nullptr) (writer)->__VA_ARGS__; \
  } while (0)
#else
#define BCAST_TIMELINE_PTR(sim) \
  (static_cast<::bcast::obs::TimelineWriter*>(nullptr))
#define BCAST_TIMELINE(writer, ...) \
  do {                              \
    (void)sizeof(writer);           \
  } while (0)
#endif

#endif  // BCAST_OBS_TIMELINE_H_
