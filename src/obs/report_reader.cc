#include "obs/report_reader.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "obs/json_reader.h"

namespace bcast::obs {
namespace {

// Pulls a required member of \p object into a typed destination, tagging
// errors with the member name so "response.p99 is not a number" is
// actionable.
Status ReadString(const JsonValue& object, std::string_view key,
                  std::string* out) {
  Result<const JsonValue*> member = object.Get(key);
  if (!member.ok()) return member.status();
  Result<std::string> value = (*member)->AsString();
  if (!value.ok()) {
    return Status::InvalidArgument(std::string(key) + ": " +
                                   value.status().message());
  }
  *out = *std::move(value);
  return Status::OK();
}

Status ReadUint64(const JsonValue& object, std::string_view key,
                  uint64_t* out) {
  Result<const JsonValue*> member = object.Get(key);
  if (!member.ok()) return member.status();
  Result<uint64_t> value = (*member)->AsUint64();
  if (!value.ok()) {
    return Status::InvalidArgument(std::string(key) + ": " +
                                   value.status().message());
  }
  *out = *value;
  return Status::OK();
}

Status ReadDouble(const JsonValue& object, std::string_view key,
                  double* out) {
  Result<const JsonValue*> member = object.Get(key);
  if (!member.ok()) return member.status();
  Result<double> value = (*member)->AsNumber();
  if (!value.ok()) {
    return Status::InvalidArgument(std::string(key) + ": " +
                                   value.status().message());
  }
  *out = *value;
  return Status::OK();
}

Status ReadObject(const JsonValue& object, std::string_view key,
                  const JsonValue** out) {
  Result<const JsonValue*> member = object.Get(key);
  if (!member.ok()) return member.status();
  if (!(*member)->is_object()) {
    return Status::InvalidArgument(std::string(key) + " is not an object");
  }
  *out = *member;
  return Status::OK();
}

Status ReadSummaryObject(const JsonValue& object, HistogramSummary* out) {
  if (!object.is_object()) {
    return Status::InvalidArgument("histogram summary is not an object");
  }
  BCAST_RETURN_IF_ERROR(ReadUint64(object, "count", &out->count));
  BCAST_RETURN_IF_ERROR(ReadDouble(object, "mean", &out->mean));
  BCAST_RETURN_IF_ERROR(ReadDouble(object, "min", &out->min));
  BCAST_RETURN_IF_ERROR(ReadDouble(object, "max", &out->max));
  BCAST_RETURN_IF_ERROR(ReadDouble(object, "p50", &out->p50));
  BCAST_RETURN_IF_ERROR(ReadDouble(object, "p90", &out->p90));
  BCAST_RETURN_IF_ERROR(ReadDouble(object, "p99", &out->p99));
  return Status::OK();
}

Status ReadSummary(const JsonValue& parent, std::string_view key,
                   HistogramSummary* out) {
  const JsonValue* object = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(parent, key, &object));
  return ReadSummaryObject(*object, out);
}

}  // namespace

Result<RunReport> ReadRunReport(std::string_view text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("report is not a json object");
  }

  RunReport report;
  BCAST_RETURN_IF_ERROR(ReadString(root, "tool", &report.tool));
  BCAST_RETURN_IF_ERROR(ReadString(root, "mode", &report.mode));
  BCAST_RETURN_IF_ERROR(ReadString(root, "config", &report.config));
  // Optional: the writer emits the optimizer only when non-empty, and
  // reports predating the optimizer frontier never carry it.
  if (root.Get("optimizer").ok()) {
    BCAST_RETURN_IF_ERROR(ReadString(root, "optimizer", &report.optimizer));
  }
  BCAST_RETURN_IF_ERROR(ReadUint64(root, "seed", &report.seed));
  BCAST_RETURN_IF_ERROR(ReadUint64(root, "seeds", &report.seeds));

  const JsonValue* program = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(root, "program", &program));
  BCAST_RETURN_IF_ERROR(ReadUint64(*program, "period", &report.period));
  BCAST_RETURN_IF_ERROR(
      ReadUint64(*program, "empty_slots", &report.empty_slots));
  BCAST_RETURN_IF_ERROR(
      ReadUint64(*program, "perturbed_pages", &report.perturbed_pages));

  const JsonValue* requests = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(root, "requests", &requests));
  BCAST_RETURN_IF_ERROR(ReadUint64(*requests, "measured", &report.requests));
  BCAST_RETURN_IF_ERROR(
      ReadUint64(*requests, "warmup", &report.warmup_requests));
  BCAST_RETURN_IF_ERROR(
      ReadUint64(*requests, "cache_hits", &report.cache_hits));

  BCAST_RETURN_IF_ERROR(ReadSummary(root, "response", &report.response));
  BCAST_RETURN_IF_ERROR(ReadSummary(root, "tuning", &report.tuning));

  Result<const JsonValue*> served = root.Get("served_per_disk");
  if (!served.ok()) return served.status();
  if (!(*served)->is_array()) {
    return Status::InvalidArgument("served_per_disk is not an array");
  }
  for (const JsonValue& item : (*served)->items()) {
    Result<uint64_t> count = item.AsUint64();
    if (!count.ok()) {
      return Status::InvalidArgument("served_per_disk: " +
                                     count.status().message());
    }
    report.served_per_disk.push_back(*count);
  }

  BCAST_RETURN_IF_ERROR(ReadDouble(root, "end_time", &report.end_time));

  const JsonValue* timings = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(root, "timings", &timings));
  BCAST_RETURN_IF_ERROR(ReadDouble(*timings, "build_program_seconds",
                                   &report.timings.build_program_seconds));
  BCAST_RETURN_IF_ERROR(ReadDouble(*timings, "setup_seconds",
                                   &report.timings.setup_seconds));
  BCAST_RETURN_IF_ERROR(ReadDouble(*timings, "warmup_seconds",
                                   &report.timings.warmup_seconds));
  BCAST_RETURN_IF_ERROR(ReadDouble(*timings, "measured_seconds",
                                   &report.timings.measured_seconds));
  BCAST_RETURN_IF_ERROR(ReadDouble(*timings, "total_seconds",
                                   &report.timings.total_seconds));

  const JsonValue* throughput = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(root, "throughput", &throughput));
  BCAST_RETURN_IF_ERROR(ReadDouble(*throughput, "slots_per_second",
                                   &report.slots_per_second));
  BCAST_RETURN_IF_ERROR(ReadDouble(*throughput, "events_per_second",
                                   &report.events_per_second));
  BCAST_RETURN_IF_ERROR(ReadUint64(*throughput, "events_dispatched",
                                   &report.events_dispatched));

  const JsonValue* extra = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(root, "extra", &extra));
  for (const auto& [name, value] : extra->members()) {
    Result<double> number = value.AsNumber();
    if (!number.ok()) {
      return Status::InvalidArgument("extra." + name + ": " +
                                     number.status().message());
    }
    report.extra.emplace_back(name, *number);
  }

  const JsonValue* metrics = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(root, "metrics", &metrics));
  const JsonValue* counters = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(*metrics, "counters", &counters));
  for (const auto& [name, value] : counters->members()) {
    Result<uint64_t> count = value.AsUint64();
    if (!count.ok()) {
      return Status::InvalidArgument("metrics.counters." + name + ": " +
                                     count.status().message());
    }
    report.metrics.counters.emplace_back(name, *count);
  }
  const JsonValue* gauges = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(*metrics, "gauges", &gauges));
  for (const auto& [name, value] : gauges->members()) {
    Result<double> number = value.AsNumber();
    if (!number.ok()) {
      return Status::InvalidArgument("metrics.gauges." + name + ": " +
                                     number.status().message());
    }
    report.metrics.gauges.emplace_back(name, *number);
  }
  const JsonValue* histograms = nullptr;
  BCAST_RETURN_IF_ERROR(ReadObject(*metrics, "histograms", &histograms));
  for (const auto& [name, value] : histograms->members()) {
    HistogramSummary summary;
    Status st = ReadSummaryObject(value, &summary);
    if (!st.ok()) {
      return Status::InvalidArgument("metrics.histograms." + name + ": " +
                                     st.message());
    }
    report.metrics.histograms.emplace_back(name, summary);
  }

  return report;
}

Result<RunReport> ReadRunReport(std::istream* in) {
  std::ostringstream buffer;
  buffer << in->rdbuf();
  if (in->bad()) return Status::Internal("failed reading report stream");
  return ReadRunReport(buffer.str());
}

Result<RunReport> ReadRunReportFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open report file: " + path);
  }
  return ReadRunReport(&in);
}

}  // namespace bcast::obs
