/// \file json_reader.h
/// \brief A minimal, defensive JSON parser for reading run reports back.
///
/// The write side (json_util.h) emits flat, hand-rolled JSON; this is the
/// matching read side, grown now that `bcastcheck` must load whole reports
/// rather than grep single numbers. It is a strict recursive-descent
/// parser over the full JSON grammar (objects, arrays, strings with
/// escapes, numbers, booleans, null) that never throws, never reads past
/// the input, and bounds recursion depth — fuzzed inputs produce a clean
/// `Status`, not a crash. Object member order is preserved and duplicate
/// keys are rejected, so a report round-trips byte-for-byte meaningfully.

#ifndef BCAST_OBS_JSON_READER_H_
#define BCAST_OBS_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace bcast::obs {

/// \brief One parsed JSON value; a tree of these represents a document.
class JsonValue {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Parses \p text as exactly one JSON document (trailing whitespace
  /// allowed, trailing garbage rejected). Nesting deeper than 64 levels is
  /// rejected to keep fuzzed inputs from exhausting the stack.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// \name Typed accessors. Each returns an error when the value has a
  /// different kind, so readers can propagate "key X is not a number"
  /// without checking kind() first.
  /// @{
  Result<bool> AsBool() const;
  Result<double> AsNumber() const;
  /// Non-negative integral number as uint64; errors on fractions,
  /// negatives, and values too large for uint64.
  Result<uint64_t> AsUint64() const;
  Result<std::string> AsString() const;
  /// @}

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object members in document order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Looks up \p key in an object; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Required-member lookup: errors with the key name when absent.
  Result<const JsonValue*> Get(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace bcast::obs

#endif  // BCAST_OBS_JSON_READER_H_
