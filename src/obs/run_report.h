/// \file run_report.h
/// \brief The machine-readable record of what one run did.
///
/// A run report is a single JSON document per run: the configuration and
/// seed, the generated program's geometry, request counts and cache
/// behavior, the response-time and tuning-time distributions as histogram
/// percentiles (p50/p90/p99/max — the paper reports only means, which
/// hides the Bus Stop Paradox tail), per-disk service counts, wall-clock
/// phase timings, and throughput in slots/sec and events/sec. Two reports
/// diff cleanly, which is what turns perf work from anecdotes into a
/// regression gate.

#ifndef BCAST_OBS_RUN_REPORT_H_
#define BCAST_OBS_RUN_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/stopwatch.h"

namespace bcast::obs {

/// \brief Everything a run wants remembered, serializable to JSON.
struct RunReport {
  /// Producing binary ("bcastsim", "bench/fig05", ...).
  std::string tool;

  /// One-line rendering of the run configuration.
  std::string config;

  /// Run mode ("single", "population", "updates", ...).
  std::string mode;

  /// Schedule optimizer that built the broadcast program ("delta",
  /// "ksy", "rbo"); empty in reports predating the optimizer frontier
  /// (and in hand-built goldens). Serialized only when non-empty, so
  /// those historical documents round-trip byte-identically.
  std::string optimizer;

  /// Master seed of the (first) run and how many consecutive seeds were
  /// aggregated into this report.
  uint64_t seed = 0;
  uint64_t seeds = 1;

  /// \name Broadcast program geometry.
  /// @{
  uint64_t period = 0;
  uint64_t empty_slots = 0;
  uint64_t perturbed_pages = 0;
  /// @}

  /// \name Request accounting (summed across seeds).
  /// @{
  uint64_t requests = 0;
  uint64_t warmup_requests = 0;
  uint64_t cache_hits = 0;
  /// @}

  /// Response-time distribution in broadcast units.
  HistogramSummary response;

  /// Radio-on (tuning) time distribution in slots.
  HistogramSummary tuning;

  /// Requests served from each disk (index 0 = fastest).
  std::vector<uint64_t> served_per_disk;

  /// Simulated clock at the end of the (last) run.
  double end_time = 0.0;

  /// Wall-clock phase breakdown (summed across seeds).
  PhaseTimings timings;

  /// Events the DES kernel dispatched (summed across seeds).
  uint64_t events_dispatched = 0;

  /// \name Throughput: simulated slots and kernel events per wall second.
  /// Derived by `FinalizeThroughput` from end_time/events and timings.
  /// @{
  double slots_per_second = 0.0;
  double events_per_second = 0.0;
  /// @}

  /// Mode-specific extras, serialized under "extra" in declaration order
  /// (e.g. stale-hit counts for updates mode, fairness spread for
  /// population mode).
  std::vector<std::pair<std::string, double>> extra;

  /// Registry snapshot (may be empty; serialized under "metrics").
  MetricsRegistry::Snapshot metrics;

  /// Fraction of requests served from the cache; 0 when no requests.
  double hit_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cache_hits) /
                               static_cast<double>(requests);
  }

  /// Computes slots_per_second / events_per_second from the recorded
  /// simulated totals and `sim_seconds` of event-loop wall time.
  void FinalizeThroughput(double simulated_slots, double sim_seconds);

  /// Serializes the whole report as one JSON object.
  void WriteJson(std::ostream& out) const;

  /// Same, to a file. Returns an error when the file cannot be written.
  Status WriteToFile(const std::string& path) const;
};

}  // namespace bcast::obs

#endif  // BCAST_OBS_RUN_REPORT_H_
