/// \file json_util.h
/// \brief Tiny JSON emission/extraction helpers for the observability
/// layer.
///
/// The repo deliberately carries no third-party JSON dependency; run
/// reports and traces are flat enough that hand-rolled emission with
/// correct string escaping and finite-number guarantees suffices.
/// `FindJsonNumber` is the matching reparse utility used by tests and the
/// CI smoke check to pull headline numbers back out of a report without a
/// parser.

#ifndef BCAST_OBS_JSON_UTIL_H_
#define BCAST_OBS_JSON_UTIL_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"

namespace bcast::obs {

/// Writes \p s as a JSON string literal (quotes included), escaping
/// quotes, backslashes, and control characters.
void AppendJsonString(std::ostream& out, std::string_view s);

/// Writes \p value as a JSON number. Non-finite values (which JSON cannot
/// represent) are emitted as 0; integral values print without an exponent.
void AppendJsonNumber(std::ostream& out, double value);

/// Writes \p value as a JSON unsigned integer.
void AppendJsonNumber(std::ostream& out, uint64_t value);

/// Finds the first occurrence of `"key"` in \p json and parses the number
/// following its colon. Matches any nesting level — use distinctive keys.
Result<double> FindJsonNumber(const std::string& json,
                              const std::string& key);

}  // namespace bcast::obs

#endif  // BCAST_OBS_JSON_UTIL_H_
