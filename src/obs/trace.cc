#include "obs/trace.h"

#include <utility>

#include "common/logging.h"
#include "obs/json_util.h"

namespace bcast::obs {
namespace {

// splitmix64: tiny, well-mixed, and independent of common/rng.h so the
// trace sampler can never perturb simulation randomness.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Result<TraceFormat> ParseTraceFormat(const std::string& name) {
  if (name == "jsonl") return TraceFormat::kJsonl;
  if (name == "csv") return TraceFormat::kCsv;
  return Status::InvalidArgument("unknown trace format: " + name +
                                 " (jsonl|csv)");
}

TraceSink::TraceSink(std::ostream* out, double sample, TraceFormat format,
                     uint64_t seed)
    : out_(out),
      sample_(sample < 0.0 ? 0.0 : (sample > 1.0 ? 1.0 : sample)),
      format_(format),
      sampler_state_(seed ^ 0xA5A5A5A55A5A5A5Aull) {
  BCAST_CHECK(out != nullptr);
  if (format_ == TraceFormat::kCsv) {
    *out_ << "time,page,hit,warmup,wait_slots,disk,victim,victim_score,"
             "client\n";
  }
}

TraceSink::TraceSink(std::ofstream file, double sample, TraceFormat format,
                     uint64_t seed)
    : file_(std::move(file)),
      out_(&file_),
      sample_(sample < 0.0 ? 0.0 : (sample > 1.0 ? 1.0 : sample)),
      format_(format),
      sampler_state_(seed ^ 0xA5A5A5A55A5A5A5Aull) {
  if (format_ == TraceFormat::kCsv) {
    *out_ << "time,page,hit,warmup,wait_slots,disk,victim,victim_score,"
             "client\n";
  }
}

Result<std::unique_ptr<TraceSink>> TraceSink::Open(const std::string& path,
                                                   double sample,
                                                   TraceFormat format,
                                                   uint64_t seed) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  return std::unique_ptr<TraceSink>(
      new TraceSink(std::move(file), sample, format, seed));
}

TraceSink::~TraceSink() { Flush(); }

bool TraceSink::ShouldSample() {
  std::lock_guard<std::mutex> lock(mu_);
  ++offered_;
  if (sample_ >= 1.0) return true;
  if (sample_ <= 0.0) return false;
  // 53 high bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(SplitMix64(&sampler_state_) >> 11) * 0x1.0p-53;
  return u < sample_;
}

void TraceSink::Record(const RequestEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  std::ostream& out = *out_;
  if (format_ == TraceFormat::kCsv) {
    AppendJsonNumber(out, event.time);
    out << ',' << event.page << ',' << (event.hit ? 1 : 0) << ','
        << (event.warmup ? 1 : 0) << ',';
    AppendJsonNumber(out, event.wait_slots);
    out << ',' << event.disk << ',' << event.victim << ',';
    AppendJsonNumber(out, event.victim_score);
    out << ',' << event.client << '\n';
    return;
  }
  out << "{\"t\": ";
  AppendJsonNumber(out, event.time);
  out << ", \"page\": " << event.page
      << ", \"hit\": " << (event.hit ? "true" : "false")
      << ", \"warmup\": " << (event.warmup ? "true" : "false")
      << ", \"wait\": ";
  AppendJsonNumber(out, event.wait_slots);
  out << ", \"disk\": " << event.disk << ", \"victim\": " << event.victim
      << ", \"victim_score\": ";
  AppendJsonNumber(out, event.victim_score);
  out << ", \"client\": " << event.client << "}\n";
}

void TraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
}

}  // namespace bcast::obs
