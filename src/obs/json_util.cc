#include "obs/json_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bcast::obs {

void AppendJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void AppendJsonNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    out << static_cast<int64_t>(value);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out << buf;
}

void AppendJsonNumber(std::ostream& out, uint64_t value) { out << value; }

Result<double> FindJsonNumber(const std::string& json,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return Status::NotFound("key not present: " + key);
  }
  pos += needle.size();
  while (pos < json.size() &&
         (json[pos] == ' ' || json[pos] == ':' || json[pos] == '\n' ||
          json[pos] == '\t')) {
    ++pos;
  }
  if (pos >= json.size()) {
    return Status::InvalidArgument("no value after key: " + key);
  }
  const char* start = json.c_str() + pos;
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) {
    return Status::InvalidArgument("value after key is not a number: " + key);
  }
  return value;
}

}  // namespace bcast::obs
