#include "obs/stats_stream.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/json_reader.h"
#include "obs/json_util.h"

namespace bcast::obs {

StatsWriter::StatsWriter(std::ostream* out) : out_(out) {
  BCAST_CHECK(out != nullptr);
}

StatsWriter::StatsWriter(std::ofstream file)
    : file_(std::move(file)), out_(&file_) {}

Result<std::unique_ptr<StatsWriter>> StatsWriter::Open(
    const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open stats file: " + path);
  }
  return std::unique_ptr<StatsWriter>(new StatsWriter(std::move(file)));
}

void StatsWriter::Write(const StatsSample& sample) {
  ++samples_;
  std::ostream& out = *out_;
  out << "{\"t\": ";
  AppendJsonNumber(out, sample.t);
  out << ", \"wall\": ";
  AppendJsonNumber(out, sample.wall_seconds);
  out << ", \"events\": " << sample.events
      << ", \"requests\": " << sample.requests
      << ", \"hits\": " << sample.hits
      << ", \"warmup\": " << sample.warmup_requests << ", \"mean_rt\": ";
  AppendJsonNumber(out, sample.mean_rt);
  out << ", \"win_requests\": " << sample.win_requests
      << ", \"win_hits\": " << sample.win_hits << ", \"win_mean_rt\": ";
  AppendJsonNumber(out, sample.win_mean_rt);
  out << ", \"disks\": [";
  for (size_t d = 0; d < sample.served_per_disk.size(); ++d) {
    if (d > 0) out << ", ";
    out << sample.served_per_disk[d];
  }
  out << "], \"pull_depth\": " << sample.pull_queue_depth
      << ", \"pull_serviced\": " << sample.pull_serviced
      << ", \"fault_lost\": " << sample.fault_lost
      << ", \"fault_retries\": " << sample.fault_retries;
  if (sample.pop_clients > 0) {
    out << ", \"pop_clients\": " << sample.pop_clients
        << ", \"pop_shards\": " << sample.pop_shards
        << ", \"pop_req_rate\": ";
    AppendJsonNumber(out, sample.pop_req_rate);
    out << ", \"pop_worst_p99\": ";
    AppendJsonNumber(out, sample.pop_worst_p99);
  }
  out << ", \"final\": " << (sample.final_sample ? "true" : "false")
      << "}\n";
  // Flush per line: tailers (bcasttop) must never see a torn record.
  out.flush();
}

void StatsWriter::Flush() { out_->flush(); }

namespace {

// Optional-field readers: absent keys default, present keys must have
// the right shape.
Status ReadU64(const JsonValue& obj, std::string_view key, uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  Result<uint64_t> parsed = v->AsUint64();
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::OK();
}

Status ReadDouble(const JsonValue& obj, std::string_view key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  Result<double> parsed = v->AsNumber();
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::OK();
}

}  // namespace

Result<StatsSample> ParseStatsLine(std::string_view line) {
  Result<JsonValue> doc = JsonValue::Parse(line);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("stats line is not a JSON object");
  }
  StatsSample sample;
  // Required shape: a record that cannot say when it was taken or what
  // it counted is useless to every consumer.
  for (const char* key : {"t", "events", "requests"}) {
    if (doc->Find(key) == nullptr) {
      return Status::InvalidArgument(std::string("stats line missing \"") +
                                     key + "\"");
    }
  }
  BCAST_RETURN_IF_ERROR(ReadDouble(*doc, "t", &sample.t));
  BCAST_RETURN_IF_ERROR(ReadDouble(*doc, "wall", &sample.wall_seconds));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "events", &sample.events));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "requests", &sample.requests));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "hits", &sample.hits));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "warmup", &sample.warmup_requests));
  BCAST_RETURN_IF_ERROR(ReadDouble(*doc, "mean_rt", &sample.mean_rt));
  BCAST_RETURN_IF_ERROR(
      ReadU64(*doc, "win_requests", &sample.win_requests));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "win_hits", &sample.win_hits));
  BCAST_RETURN_IF_ERROR(
      ReadDouble(*doc, "win_mean_rt", &sample.win_mean_rt));
  BCAST_RETURN_IF_ERROR(
      ReadU64(*doc, "pull_depth", &sample.pull_queue_depth));
  BCAST_RETURN_IF_ERROR(
      ReadU64(*doc, "pull_serviced", &sample.pull_serviced));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "fault_lost", &sample.fault_lost));
  BCAST_RETURN_IF_ERROR(
      ReadU64(*doc, "fault_retries", &sample.fault_retries));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "pop_clients", &sample.pop_clients));
  BCAST_RETURN_IF_ERROR(ReadU64(*doc, "pop_shards", &sample.pop_shards));
  BCAST_RETURN_IF_ERROR(
      ReadDouble(*doc, "pop_req_rate", &sample.pop_req_rate));
  BCAST_RETURN_IF_ERROR(
      ReadDouble(*doc, "pop_worst_p99", &sample.pop_worst_p99));
  if (const JsonValue* f = doc->Find("final"); f != nullptr) {
    Result<bool> parsed = f->AsBool();
    if (!parsed.ok()) return parsed.status();
    sample.final_sample = *parsed;
  }
  if (const JsonValue* disks = doc->Find("disks"); disks != nullptr) {
    if (!disks->is_array()) {
      return Status::InvalidArgument("stats \"disks\" is not an array");
    }
    for (const JsonValue& item : disks->items()) {
      Result<uint64_t> count = item.AsUint64();
      if (!count.ok()) return count.status();
      sample.served_per_disk.push_back(*count);
    }
  }
  return sample;
}

namespace {

// Folds the last sample of one segment (one run / seed) into the
// cross-segment accumulators of \p summary.
void FoldSegment(const StatsSample& last, double* weighted_rt_sum,
                 StatsSummary* summary) {
  ++summary->segments;
  summary->events += last.events;
  summary->requests += last.requests;
  summary->hits += last.hits;
  *weighted_rt_sum += last.mean_rt * static_cast<double>(last.requests);
  if (summary->served_per_disk.size() < last.served_per_disk.size()) {
    summary->served_per_disk.resize(last.served_per_disk.size(), 0);
  }
  for (size_t d = 0; d < last.served_per_disk.size(); ++d) {
    summary->served_per_disk[d] += last.served_per_disk[d];
  }
  summary->fault_lost += last.fault_lost;
  summary->end_time = last.t;
}

}  // namespace

Result<StatsSummary> SummarizeStatsStream(std::istream& in) {
  StatsSummary summary;
  double weighted_rt_sum = 0.0;
  bool have_segment = false;
  StatsSample last;  // latest valid sample of the current segment
  std::string line;
  while (std::getline(in, line)) {
    // The writer terminates every record with '\n', so a final line
    // without one is a torn in-progress write (the stream may be read
    // while the producer is live), not corruption.
    const bool torn_tail = in.eof();
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<StatsSample> sample = ParseStatsLine(line);
    if (!sample.ok()) {
      if (!torn_tail) ++summary.invalid_lines;
      continue;
    }
    ++summary.samples;
    if (have_segment && sample->t < last.t) {
      // The simulated clock ran backwards: a new run (seed) started
      // writing into the same stream. Close out the finished segment.
      FoldSegment(last, &weighted_rt_sum, &summary);
    }
    last = std::move(*sample);
    have_segment = true;
    summary.max_win_mean_rt =
        std::max(summary.max_win_mean_rt, last.win_mean_rt);
    summary.pull_queue_depth_max =
        std::max(summary.pull_queue_depth_max, last.pull_queue_depth);
    summary.wall_seconds = std::max(summary.wall_seconds, last.wall_seconds);
    if (last.pop_clients > summary.pop_clients) {
      summary.pop_clients = last.pop_clients;
      summary.pop_shards = last.pop_shards;
    }
    summary.pop_req_rate_max =
        std::max(summary.pop_req_rate_max, last.pop_req_rate);
    summary.pop_worst_p99 =
        std::max(summary.pop_worst_p99, last.pop_worst_p99);
  }
  if (!have_segment) {
    return Status::InvalidArgument("stats stream holds no valid samples");
  }
  FoldSegment(last, &weighted_rt_sum, &summary);
  if (summary.requests > 0) {
    summary.mean_rt =
        weighted_rt_sum / static_cast<double>(summary.requests);
    summary.hit_rate = static_cast<double>(summary.hits) /
                       static_cast<double>(summary.requests);
  }
  if (summary.wall_seconds > 0.0) {
    summary.events_per_second =
        static_cast<double>(summary.events) / summary.wall_seconds;
  }
  return summary;
}

void WriteStatsSummaryJson(const StatsSummary& summary, std::ostream& out) {
  out << "{\n  \"samples\": " << summary.samples
      << ",\n  \"invalid_lines\": " << summary.invalid_lines
      << ",\n  \"segments\": " << summary.segments << ",\n  \"end_time\": ";
  AppendJsonNumber(out, summary.end_time);
  out << ",\n  \"wall_seconds\": ";
  AppendJsonNumber(out, summary.wall_seconds);
  out << ",\n  \"events\": " << summary.events
      << ",\n  \"requests\": " << summary.requests
      << ",\n  \"hits\": " << summary.hits << ",\n  \"mean_rt\": ";
  AppendJsonNumber(out, summary.mean_rt);
  out << ",\n  \"hit_rate\": ";
  AppendJsonNumber(out, summary.hit_rate);
  out << ",\n  \"events_per_second\": ";
  AppendJsonNumber(out, summary.events_per_second);
  out << ",\n  \"max_win_mean_rt\": ";
  AppendJsonNumber(out, summary.max_win_mean_rt);
  out << ",\n  \"served_per_disk\": [";
  for (size_t d = 0; d < summary.served_per_disk.size(); ++d) {
    if (d > 0) out << ", ";
    out << summary.served_per_disk[d];
  }
  out << "],\n  \"pull_queue_depth_max\": " << summary.pull_queue_depth_max
      << ",\n  \"fault_lost\": " << summary.fault_lost;
  if (summary.pop_clients > 0) {
    out << ",\n  \"pop_clients\": " << summary.pop_clients
        << ",\n  \"pop_shards\": " << summary.pop_shards
        << ",\n  \"pop_req_rate_max\": ";
    AppendJsonNumber(out, summary.pop_req_rate_max);
    out << ",\n  \"pop_worst_p99\": ";
    AppendJsonNumber(out, summary.pop_worst_p99);
  }
  out << "\n}\n";
}

}  // namespace bcast::obs
