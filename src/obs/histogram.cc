#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bcast::obs {

LogHistogram::LogHistogram(Options options) : options_(options) {
  BCAST_CHECK_GT(options_.min_value, 0.0);
  BCAST_CHECK_GE(options_.sub_buckets, 1u);
  BCAST_CHECK_GE(options_.octaves, 1u);
  counts_.assign(2 + options_.octaves * options_.sub_buckets, 0);
}

size_t LogHistogram::BucketIndex(double value) const {
  if (!(value >= options_.min_value)) return 0;  // underflow (also NaN)
  // value / min_value = frac * 2^exp with frac in [0.5, 1), exp >= 1, so
  // octave e covers [min_value * 2^(e-1), min_value * 2^e).
  int exp = 0;
  const double frac = std::frexp(value / options_.min_value, &exp);
  const uint64_t sub = static_cast<uint64_t>(
      (frac - 0.5) * 2.0 * static_cast<double>(options_.sub_buckets));
  const size_t idx =
      1 + static_cast<size_t>(exp - 1) * options_.sub_buckets +
      std::min<size_t>(sub, options_.sub_buckets - 1);
  return std::min(idx, counts_.size() - 1);
}

double LogHistogram::BucketLower(size_t i) const {
  BCAST_CHECK_LT(i, counts_.size());
  if (i == 0) return 0.0;
  const size_t octave = (i - 1) / options_.sub_buckets;
  const size_t sub = (i - 1) % options_.sub_buckets;
  const double base = options_.min_value * std::ldexp(1.0, static_cast<int>(octave));
  return base * (1.0 + static_cast<double>(sub) /
                           static_cast<double>(options_.sub_buckets));
}

double LogHistogram::BucketUpper(size_t i) const {
  BCAST_CHECK_LT(i, counts_.size());
  if (i + 1 < counts_.size()) return BucketLower(i + 1);
  // Overflow bucket: the best honest upper edge is the largest value seen.
  return std::max(BucketLower(i), count_ ? max_ : BucketLower(i));
}

void LogHistogram::Add(double value) {
  // The negated comparison also catches NaN, which would otherwise poison
  // sum_/min_/max_ and every quantile derived from them.
  if (!(value >= 0.0)) value = 0.0;
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LogHistogram::Merge(const LogHistogram& other) {
  BCAST_CHECK_EQ(counts_.size(), other.counts_.size())
      << "merging histograms with different geometries";
  BCAST_CHECK_EQ(options_.min_value, other.options_.min_value);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LogHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, count-1]; walk buckets to the one containing it and
  // interpolate linearly inside.
  const double rank = q * static_cast<double>(count_ - 1);
  uint64_t before = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double last_in_bucket =
        static_cast<double>(before + counts_[i] - 1);
    if (rank <= last_in_bucket) {
      const double within =
          counts_[i] == 1
              ? 0.0
              : (rank - static_cast<double>(before)) /
                    static_cast<double>(counts_[i] - 1);
      const double lower = BucketLower(i);
      const double upper = BucketUpper(i);
      return std::clamp(lower + (upper - lower) * within, min_, max_);
    }
    before += counts_[i];
  }
  return max_;
}

HistogramSummary LogHistogram::Summary() const {
  HistogramSummary s;
  s.count = count_;
  s.mean = mean();
  s.min = min();
  s.max = max();
  s.p50 = Quantile(0.50);
  s.p90 = Quantile(0.90);
  s.p99 = Quantile(0.99);
  return s;
}

LinearHistogram::LinearHistogram(double bucket_width, size_t num_buckets)
    : width_(bucket_width) {
  BCAST_CHECK_GT(bucket_width, 0.0);
  BCAST_CHECK_GE(num_buckets, 1u);
  counts_.assign(num_buckets + 1, 0);
}

void LinearHistogram::Add(double value) {
  // !(>= 0) catches NaN too: NaN / width_ cast to size_t is undefined
  // behaviour, and NaN would poison sum_/min_/max_.
  if (!(value >= 0.0)) value = 0.0;
  size_t idx = static_cast<size_t>(value / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LinearHistogram::Merge(const LinearHistogram& other) {
  BCAST_CHECK_EQ(counts_.size(), other.counts_.size())
      << "merging histograms with different geometries";
  BCAST_CHECK_EQ(width_, other.width_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LinearHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_ - 1);
  uint64_t before = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double last_in_bucket =
        static_cast<double>(before + counts_[i] - 1);
    if (rank <= last_in_bucket) {
      const double within =
          counts_[i] == 1
              ? 0.0
              : (rank - static_cast<double>(before)) /
                    static_cast<double>(counts_[i] - 1);
      const double lower = static_cast<double>(i) * width_;
      const double upper =
          i + 1 < counts_.size() ? lower + width_ : std::max(lower, max_);
      return std::clamp(lower + (upper - lower) * within, min_, max_);
    }
    before += counts_[i];
  }
  return max_;
}

}  // namespace bcast::obs
