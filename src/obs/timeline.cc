#include "obs/timeline.h"

#include <utility>

#include "common/logging.h"
#include "obs/json_util.h"

namespace bcast::obs {

TimelineWriter::TimelineWriter(std::ostream* out) : out_(out) {
  BCAST_CHECK(out != nullptr);
  *out_ << "{\"traceEvents\": [\n";
}

TimelineWriter::TimelineWriter(std::ofstream file)
    : file_(std::move(file)), out_(&file_) {
  *out_ << "{\"traceEvents\": [\n";
}

Result<std::unique_ptr<TimelineWriter>> TimelineWriter::Open(
    const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open timeline file: " + path);
  }
  return std::unique_ptr<TimelineWriter>(
      new TimelineWriter(std::move(file)));
}

TimelineWriter::~TimelineWriter() { Close(); }

void TimelineWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  *out_ << "\n]}\n";
  out_->flush();
}

void TimelineWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!closed_) out_->flush();
}

void TimelineWriter::EmitSeparator() {
  if (!first_event_) *out_ << ",\n";
  first_event_ = false;
}

std::ostream& TimelineWriter::EmitCommon(std::string_view name,
                                         std::string_view cat, char ph,
                                         uint32_t tid, double ts) {
  EmitSeparator();
  ++events_written_;
  std::ostream& out = *out_;
  out << "{\"name\": ";
  AppendJsonString(out, name);
  if (!cat.empty()) {
    out << ", \"cat\": ";
    AppendJsonString(out, cat);
  }
  out << ", \"ph\": \"" << ph << "\", \"pid\": 1, \"tid\": " << tid
      << ", \"ts\": ";
  AppendJsonNumber(out, ts);
  return out;
}

void TimelineWriter::EmitArgs(std::initializer_list<TimelineArg> args) {
  if (args.size() == 0) return;
  std::ostream& out = *out_;
  out << ", \"args\": {";
  bool first = true;
  for (const TimelineArg& arg : args) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(out, arg.key);
    out << ": ";
    AppendJsonNumber(out, arg.value);
  }
  out << "}";
}

void TimelineWriter::NameTrack(uint32_t tid, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  EmitSeparator();
  ++events_written_;
  std::ostream& out = *out_;
  out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": "
      << tid << ", \"args\": {\"name\": ";
  AppendJsonString(out, name);
  out << "}}";
}

void TimelineWriter::BeginSpan(uint32_t tid, std::string_view name,
                               std::string_view cat, double ts,
                               std::initializer_list<TimelineArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  EmitCommon(name, cat, 'B', tid, ts);
  EmitArgs(args);
  *out_ << "}";
  ++open_spans_;
  ++depth_per_track_[tid];
}

void TimelineWriter::EndSpan(uint32_t tid, double ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  int64_t& depth = depth_per_track_[tid];
  BCAST_CHECK_GT(depth, 0) << "EndSpan with no open span on track " << tid;
  EmitCommon("", "", 'E', tid, ts);
  *out_ << "}";
  --open_spans_;
  --depth;
}

void TimelineWriter::Span(uint32_t tid, std::string_view name,
                          std::string_view cat, double ts, double dur,
                          std::initializer_list<TimelineArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  std::ostream& out = EmitCommon(name, cat, 'X', tid, ts);
  out << ", \"dur\": ";
  AppendJsonNumber(out, dur);
  EmitArgs(args);
  out << "}";
}

void TimelineWriter::Instant(uint32_t tid, std::string_view name,
                             std::string_view cat, double ts,
                             std::initializer_list<TimelineArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  std::ostream& out = EmitCommon(name, cat, 'i', tid, ts);
  out << ", \"s\": \"t\"";
  EmitArgs(args);
  out << "}";
}

void TimelineWriter::Counter(uint32_t tid, std::string_view name, double ts,
                             double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  std::ostream& out = EmitCommon(name, "", 'C', tid, ts);
  out << ", \"args\": {\"value\": ";
  AppendJsonNumber(out, value);
  out << "}}";
}

}  // namespace bcast::obs
