#include "obs/registry.h"

#include "common/logging.h"
#include "obs/json_util.h"

namespace bcast::obs {
namespace {

template <typename Map, typename... Args>
typename Map::mapped_type::element_type* GetOrCreate(Map* map,
                                                     const std::string& name,
                                                     Args&&... args) {
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(name,
                      std::make_unique<typename Map::mapped_type::element_type>(
                          std::forward<Args>(args)...))
             .first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  BCAST_CHECK(!name.empty()) << "metric names must be non-empty";
  return GetOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  BCAST_CHECK(!name.empty()) << "metric names must be non-empty";
  return GetOrCreate(&gauges_, name);
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, LogHistogram::Options{});
}

LogHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, const LogHistogram::Options& options) {
  BCAST_CHECK(!name.empty()) << "metric names must be non-empty";
  return GetOrCreate(&histograms_, name, options);
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->Summary());
  }
  return snap;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(name)->Merge(*counter);
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(name)->Merge(*gauge);
  }
  for (const auto& [name, hist] : other.histograms_) {
    GetHistogram(name, hist->options())->Merge(*hist);
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(out, name);
    out << ": ";
    AppendJsonNumber(out, counter->value());
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(out, name);
    out << ": ";
    AppendJsonNumber(out, gauge->value());
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(out, name);
    const HistogramSummary s = hist->Summary();
    out << ": {\"count\": ";
    AppendJsonNumber(out, s.count);
    out << ", \"mean\": ";
    AppendJsonNumber(out, s.mean);
    out << ", \"min\": ";
    AppendJsonNumber(out, s.min);
    out << ", \"max\": ";
    AppendJsonNumber(out, s.max);
    out << ", \"p50\": ";
    AppendJsonNumber(out, s.p50);
    out << ", \"p90\": ";
    AppendJsonNumber(out, s.p90);
    out << ", \"p99\": ";
    AppendJsonNumber(out, s.p99);
    out << "}";
  }
  out << "}}";
}

}  // namespace bcast::obs
