/// \file stats_stream.h
/// \brief Periodic run-statistics streaming (JSONL) and its reader.
///
/// Every K simulated slots the simulator snapshots its live counters —
/// DES events, measured requests and hits, cumulative and windowed mean
/// response time, the per-disk service mix, pull queue depth, and fault
/// counters — and appends one JSON object per line to a stream. The
/// `bcasttop` tool tails that stream for a live dashboard; its
/// `--summarize` mode folds a whole stream back into the headline
/// numbers so CI can cross-check them against the run report.
///
/// The reader is deliberately lenient: a tail line truncated mid-write,
/// or garbage injected into the stream, is counted and skipped rather
/// than fatal (the stream may be read while the producer is still
/// running). A multi-seed run writes several concatenated segments into
/// one stream; the summarizer detects the simulated-clock reset at each
/// segment boundary and aggregates across segments.

#ifndef BCAST_OBS_STATS_STREAM_H_
#define BCAST_OBS_STATS_STREAM_H_

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/stopwatch.h"

namespace bcast::obs {

/// \brief One periodic snapshot of a running simulation.
///
/// Counters are cumulative since the start of the current run (segment);
/// the `win_*` fields cover only the interval since the previous sample.
struct StatsSample {
  double t = 0.0;             ///< simulated time (broadcast units)
  double wall_seconds = 0.0;  ///< wall clock since the writer was created
  uint64_t events = 0;        ///< DES events dispatched
  uint64_t requests = 0;      ///< measured-phase requests
  uint64_t hits = 0;          ///< measured-phase cache hits
  uint64_t warmup_requests = 0;
  double mean_rt = 0.0;       ///< cumulative mean response time (slots)
  uint64_t win_requests = 0;  ///< requests since the previous sample
  uint64_t win_hits = 0;
  double win_mean_rt = 0.0;   ///< mean response time of the window
  std::vector<uint64_t> served_per_disk;  ///< broadcast service mix
  uint64_t pull_queue_depth = 0;  ///< 0 when pull is off
  uint64_t pull_serviced = 0;
  uint64_t fault_lost = 0;  ///< 0 when faults are off
  uint64_t fault_retries = 0;
  /// \name Population-engine fields; serialized only when
  /// `pop_clients > 0` so non-population streams stay byte-identical.
  /// @{
  uint64_t pop_clients = 0;  ///< population size (0: not an engine run)
  uint64_t pop_shards = 0;   ///< worker shards
  double pop_req_rate = 0.0;  ///< window requests per simulated slot
  double pop_worst_p99 = 0.0;  ///< worst per-class response p99 so far
  /// @}
  bool final_sample = false;  ///< exact end-of-run record
};

/// \brief Appends `StatsSample`s as JSONL to a stream or file.
class StatsWriter {
 public:
  /// Creates a writer over \p out (unowned; must outlive the writer).
  explicit StatsWriter(std::ostream* out);

  /// Opens \p path for writing and returns a file-backed writer.
  static Result<std::unique_ptr<StatsWriter>> Open(const std::string& path);

  StatsWriter(const StatsWriter&) = delete;
  StatsWriter& operator=(const StatsWriter&) = delete;

  /// Writes one sample line and flushes it (tailers see whole lines).
  void Write(const StatsSample& sample);

  /// Samples written so far.
  uint64_t samples_written() const { return samples_; }

  /// Wall-clock seconds since the writer was created (the `wall` field
  /// producers stamp into samples).
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

  void Flush();

 private:
  explicit StatsWriter(std::ofstream file);

  std::ofstream file_;  // backing storage when Open()ed; else unused
  std::ostream* out_;
  uint64_t samples_ = 0;
  Stopwatch watch_;
};

/// Parses one JSONL stats line. Unknown keys are ignored; missing
/// optional keys default to zero. Errors on malformed JSON or a line
/// missing the required `t`/`events`/`requests` fields.
Result<StatsSample> ParseStatsLine(std::string_view line);

/// \brief Whole-stream aggregation for `bcasttop --summarize`.
struct StatsSummary {
  uint64_t samples = 0;        ///< valid sample lines
  uint64_t invalid_lines = 0;  ///< non-empty lines that failed to parse
  uint64_t segments = 0;       ///< concatenated runs (multi-seed)
  double end_time = 0.0;       ///< simulated end of the last segment
  double wall_seconds = 0.0;   ///< last wall stamp seen
  uint64_t events = 0;         ///< summed final events per segment
  uint64_t requests = 0;
  uint64_t hits = 0;
  double mean_rt = 0.0;   ///< request-weighted mean across segments
  double hit_rate = 0.0;
  double events_per_second = 0.0;  ///< events / wall_seconds
  double max_win_mean_rt = 0.0;    ///< worst window seen anywhere
  std::vector<uint64_t> served_per_disk;  ///< summed final mixes
  uint64_t pull_queue_depth_max = 0;
  uint64_t fault_lost = 0;
  uint64_t pop_clients = 0;     ///< largest population seen (0: none)
  uint64_t pop_shards = 0;      ///< shards of that population
  double pop_req_rate_max = 0.0;   ///< busiest window, requests/slot
  double pop_worst_p99 = 0.0;      ///< worst per-class p99 seen
};

/// Reads a whole stats stream and folds it into a summary. Invalid
/// lines are skipped and counted; errors only when no valid sample
/// exists at all.
Result<StatsSummary> SummarizeStatsStream(std::istream& in);

/// Writes \p summary as one pretty-printed JSON object.
void WriteStatsSummaryJson(const StatsSummary& summary, std::ostream& out);

}  // namespace bcast::obs

#endif  // BCAST_OBS_STATS_STREAM_H_
