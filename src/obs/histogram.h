/// \file histogram.h
/// \brief Observability histograms: HDR-style log-bucket and fixed-width
/// linear, both cheap enough for the simulator's hot loop.
///
/// `LogHistogram` covers many orders of magnitude (response times range
/// from 0 slots on a cache hit to a whole broadcast period on an unlucky
/// miss) with bounded relative error: each power-of-two octave is split
/// into `sub_buckets` linear sub-buckets, so recording is a couple of
/// float ops plus one `uint64_t` bump — no locks, no allocation after
/// construction. `Merge()` combines per-client instances after a
/// multi-client run. `LinearHistogram` is the classic fixed-width
/// variant for quantities with a known small range.

#ifndef BCAST_OBS_HISTOGRAM_H_
#define BCAST_OBS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace bcast::obs {

/// \brief Summary statistics extracted from a histogram — the headline
/// numbers a run report carries (all 0 when the histogram is empty, so
/// serializing an idle run never emits inf/nan).
struct HistogramSummary {
  uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// \brief Log-bucket (HDR-style) histogram over non-negative values.
class LogHistogram {
 public:
  /// \brief Bucket geometry. Two histograms can only `Merge` when their
  /// geometries match.
  struct Options {
    /// Values below this land in the single underflow bucket [0, min_value).
    double min_value = 1.0;

    /// Linear sub-buckets per power-of-two octave; bounds the relative
    /// error of `Quantile` at roughly 1/sub_buckets.
    uint64_t sub_buckets = 16;

    /// Octaves covered: the top regular bucket ends at
    /// min_value * 2^octaves; anything beyond goes to the overflow bucket.
    uint64_t octaves = 32;
  };

  LogHistogram() : LogHistogram(Options{}) {}
  explicit LogHistogram(Options options);

  /// Records one observation. Negative values and NaN clamp to 0.
  void Add(double value);

  /// Folds \p other into this histogram; geometries must match.
  void Merge(const LogHistogram& other);

  /// Returns to the empty state, keeping the geometry.
  void Reset();

  /// Observations recorded.
  uint64_t count() const { return count_; }

  /// Smallest observation; 0 when empty.
  double min() const { return count_ ? min_ : 0.0; }

  /// Largest observation; 0 when empty.
  double max() const { return count_ ? max_ : 0.0; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Mean observation; 0 when empty.
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Approximate quantile for \p q in [0, 1]: linear interpolation inside
  /// the containing bucket, clamped to the observed [min, max]. Returns 0
  /// when empty.
  double Quantile(double q) const;

  /// Convenience: count/mean/min/max/p50/p90/p99 in one struct.
  HistogramSummary Summary() const;

  /// \name Bucket introspection (tests, serialization).
  /// @{
  /// Total buckets including the underflow ([0, min_value)) bucket at
  /// index 0 and the overflow bucket at the last index.
  size_t num_buckets() const { return counts_.size(); }

  /// The bucket \p value would be recorded into.
  size_t BucketIndex(double value) const;

  /// Inclusive lower edge of bucket \p i.
  double BucketLower(size_t i) const;

  /// Exclusive upper edge of bucket \p i (the overflow bucket reports the
  /// largest observed value, or its lower edge when empty).
  double BucketUpper(size_t i) const;

  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// @}

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<uint64_t> counts_;  // [underflow, regular..., overflow]
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-width-bucket histogram with `Merge`, for bounded-range
/// quantities (e.g. per-period empty-slot counts).
class LinearHistogram {
 public:
  /// \p bucket_width > 0; bucket i covers [i*width, (i+1)*width), with an
  /// overflow bucket past the last.
  LinearHistogram(double bucket_width, size_t num_buckets);

  /// Records one observation; negatives and NaN clamp into the first
  /// bucket.
  void Add(double value);

  /// Folds \p other in; geometries must match.
  void Merge(const LinearHistogram& other);

  uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Interpolated quantile, clamped to the observed range; 0 when empty.
  double Quantile(double q) const;

  /// Regular (non-overflow) buckets.
  size_t num_buckets() const { return counts_.size() - 1; }
  double bucket_width() const { return width_; }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  uint64_t overflow_count() const { return counts_.back(); }

 private:
  double width_;
  std::vector<uint64_t> counts_;  // last element is the overflow bucket
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace bcast::obs

#endif  // BCAST_OBS_HISTOGRAM_H_
