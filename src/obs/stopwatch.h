/// \file stopwatch.h
/// \brief Wall-clock timers for run phases.
///
/// The simulated clock measures broadcast units; these measure how much
/// real time the simulator spends producing them, which is what perf PRs
/// diff. `Stopwatch` is a thin steady_clock wrapper, `ScopedTimer`
/// accumulates a scope's duration into a caller-owned slot, and
/// `PhaseTimings` is the standard set of phases a run report carries.

#ifndef BCAST_OBS_STOPWATCH_H_
#define BCAST_OBS_STOPWATCH_H_

#include <chrono>

namespace bcast::obs {

/// \brief Monotonic wall-clock timer; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts from zero.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds since construction or the last `Restart`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Adds the lifetime of the scope to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += watch_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  Stopwatch watch_;
};

/// \brief Wall-clock breakdown of one simulation run (seconds).
struct PhaseTimings {
  /// Generating the broadcast program (layout + interleaving).
  double build_program_seconds = 0.0;

  /// Building mapping, access generator, cache, and channel.
  double setup_seconds = 0.0;

  /// Event-loop time until the client's cache was warm.
  double warmup_seconds = 0.0;

  /// Event-loop time of the measured phase.
  double measured_seconds = 0.0;

  /// Whole run, construction to teardown.
  double total_seconds = 0.0;

  /// Element-wise accumulation (averaging across seeds).
  void Accumulate(const PhaseTimings& other) {
    build_program_seconds += other.build_program_seconds;
    setup_seconds += other.setup_seconds;
    warmup_seconds += other.warmup_seconds;
    measured_seconds += other.measured_seconds;
    total_seconds += other.total_seconds;
  }
};

}  // namespace bcast::obs

#endif  // BCAST_OBS_STOPWATCH_H_
