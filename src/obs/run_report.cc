#include "obs/run_report.h"

#include <fstream>

#include "obs/json_util.h"

namespace bcast::obs {
namespace {

void WriteSummary(std::ostream& out, const HistogramSummary& s) {
  out << "{\"count\": ";
  AppendJsonNumber(out, s.count);
  out << ", \"mean\": ";
  AppendJsonNumber(out, s.mean);
  out << ", \"min\": ";
  AppendJsonNumber(out, s.min);
  out << ", \"max\": ";
  AppendJsonNumber(out, s.max);
  out << ", \"p50\": ";
  AppendJsonNumber(out, s.p50);
  out << ", \"p90\": ";
  AppendJsonNumber(out, s.p90);
  out << ", \"p99\": ";
  AppendJsonNumber(out, s.p99);
  out << "}";
}

}  // namespace

void RunReport::FinalizeThroughput(double simulated_slots,
                                   double sim_seconds) {
  if (sim_seconds > 0.0) {
    slots_per_second = simulated_slots / sim_seconds;
    events_per_second =
        static_cast<double>(events_dispatched) / sim_seconds;
  }
}

void RunReport::WriteJson(std::ostream& out) const {
  out << "{\n  \"tool\": ";
  AppendJsonString(out, tool);
  out << ",\n  \"mode\": ";
  AppendJsonString(out, mode);
  out << ",\n  \"config\": ";
  AppendJsonString(out, config);
  if (!optimizer.empty()) {
    out << ",\n  \"optimizer\": ";
    AppendJsonString(out, optimizer);
  }
  out << ",\n  \"seed\": " << seed << ",\n  \"seeds\": " << seeds;
  out << ",\n  \"program\": {\"period\": " << period
      << ", \"empty_slots\": " << empty_slots
      << ", \"perturbed_pages\": " << perturbed_pages << "}";
  out << ",\n  \"requests\": {\"measured\": " << requests
      << ", \"warmup\": " << warmup_requests
      << ", \"cache_hits\": " << cache_hits << ", \"hit_rate\": ";
  AppendJsonNumber(out, hit_rate());
  out << "}";
  out << ",\n  \"response\": ";
  WriteSummary(out, response);
  out << ",\n  \"tuning\": ";
  WriteSummary(out, tuning);
  out << ",\n  \"served_per_disk\": [";
  for (size_t d = 0; d < served_per_disk.size(); ++d) {
    if (d) out << ", ";
    out << served_per_disk[d];
  }
  out << "]";
  out << ",\n  \"end_time\": ";
  AppendJsonNumber(out, end_time);
  out << ",\n  \"timings\": {\"build_program_seconds\": ";
  AppendJsonNumber(out, timings.build_program_seconds);
  out << ", \"setup_seconds\": ";
  AppendJsonNumber(out, timings.setup_seconds);
  out << ", \"warmup_seconds\": ";
  AppendJsonNumber(out, timings.warmup_seconds);
  out << ", \"measured_seconds\": ";
  AppendJsonNumber(out, timings.measured_seconds);
  out << ", \"total_seconds\": ";
  AppendJsonNumber(out, timings.total_seconds);
  out << "}";
  out << ",\n  \"throughput\": {\"slots_per_second\": ";
  AppendJsonNumber(out, slots_per_second);
  out << ", \"events_per_second\": ";
  AppendJsonNumber(out, events_per_second);
  out << ", \"events_dispatched\": " << events_dispatched << "}";
  out << ",\n  \"extra\": {";
  for (size_t i = 0; i < extra.size(); ++i) {
    if (i) out << ", ";
    AppendJsonString(out, extra[i].first);
    out << ": ";
    AppendJsonNumber(out, extra[i].second);
  }
  out << "}";
  out << ",\n  \"metrics\": {\"counters\": {";
  for (size_t i = 0; i < metrics.counters.size(); ++i) {
    if (i) out << ", ";
    AppendJsonString(out, metrics.counters[i].first);
    out << ": ";
    AppendJsonNumber(out, metrics.counters[i].second);
  }
  out << "}, \"gauges\": {";
  for (size_t i = 0; i < metrics.gauges.size(); ++i) {
    if (i) out << ", ";
    AppendJsonString(out, metrics.gauges[i].first);
    out << ": ";
    AppendJsonNumber(out, metrics.gauges[i].second);
  }
  out << "}, \"histograms\": {";
  for (size_t i = 0; i < metrics.histograms.size(); ++i) {
    if (i) out << ", ";
    AppendJsonString(out, metrics.histograms[i].first);
    out << ": ";
    WriteSummary(out, metrics.histograms[i].second);
  }
  out << "}}\n}\n";
}

Status RunReport::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open report file: " + path);
  }
  WriteJson(out);
  out.flush();
  if (!out) {
    return Status::Internal("failed writing report file: " + path);
  }
  return Status::OK();
}

}  // namespace bcast::obs
