/// \file report_reader.h
/// \brief Loads a JSON run report back into a `RunReport`.
///
/// The exact inverse of `RunReport::WriteJson`: every field the writer
/// emits is read back, with required keys and types enforced, so
/// `Read(Write(r)) == r` up to floating-point formatting. This is what
/// lets `bcastcheck` diff a fresh run against a checked-in golden baseline
/// without the two sides sharing any in-process state. Malformed input of
/// any kind — truncation, wrong types, duplicate keys, garbage — yields a
/// `Status`, never a crash (fuzzed in tests/integration/fuzz_loaders).

#ifndef BCAST_OBS_REPORT_READER_H_
#define BCAST_OBS_REPORT_READER_H_

#include <istream>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/run_report.h"

namespace bcast::obs {

/// \brief Parses one JSON run report from \p text.
Result<RunReport> ReadRunReport(std::string_view text);

/// \brief Same, from a stream (reads to EOF).
Result<RunReport> ReadRunReport(std::istream* in);

/// \brief Same, from a file.
Result<RunReport> ReadRunReportFile(const std::string& path);

}  // namespace bcast::obs

#endif  // BCAST_OBS_REPORT_READER_H_
