/// \file client_store.h
/// \brief Population-wide SoA bookkeeping for the sharded engine.
///
/// The heavyweight per-client machinery (cache, generator, receiver,
/// coroutine) lives in each shard's `ClientWorld` vector; this store
/// holds the *engine's* per-client state as parallel arrays partitioned
/// by shard: class assignment, the pull bookkeeping blocks each client's
/// requester writes during a round, and the per-client cold-wait
/// histograms the adaptive gate reads. The arrays are laid out so that
/// no two shards ever write the same cache line — each client's
/// mutable block is cache-line aligned, and a shard only touches the
/// blocks of its contiguous client range — which is what lets shards
/// run a round with zero synchronization.
///
/// Merging is canonical: every fold over these arrays walks client ids
/// in ascending order, so floating-point sums come out bit-identical
/// for any shard count.

#ifndef BCAST_POP_CLIENT_STORE_H_
#define BCAST_POP_CLIENT_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/multi_client.h"
#include "obs/histogram.h"
#include "pop/pop_params.h"
#include "pull/pull_stats.h"

namespace bcast::pop {

/// \brief One client's mutable pull bookkeeping, padded to its own
/// cache line(s) so neighboring clients on different shards never
/// false-share.
struct alignas(64) ClientPullBlock {
  pull::PullStats stats;
};

/// \brief One client's cold-wait histogram, likewise padded.
struct alignas(64) ClientColdBlock {
  obs::LogHistogram wait;
};

/// \brief SoA per-client engine state for a population of N clients
/// over K shards.
class ClientStore {
 public:
  /// \p need_pull allocates the per-client pull blocks (only pull runs
  /// pay for them); \p need_cold the per-client cold-wait histograms
  /// (only adaptive runs).
  ClientStore(uint64_t clients, uint64_t shards,
              const std::vector<ClassProfile>& classes, bool need_pull,
              bool need_cold);

  uint64_t clients() const { return clients_; }
  uint64_t shards() const { return shards_; }

  /// Client id range owned by shard \p s: [begin, end).
  uint64_t ShardBeginOf(uint64_t s) const {
    return ShardBegin(s, shards_, clients_);
  }
  uint64_t ShardEndOf(uint64_t s) const {
    return ShardBegin(s + 1, shards_, clients_);
  }

  /// Shard owning client \p c.
  uint64_t ShardOf(uint64_t c) const;

  /// Receiver class of client \p c (0 = default).
  uint32_t class_of(uint64_t c) const { return class_of_[c]; }

  /// Pull bookkeeping of client \p c; null when pull is off.
  pull::PullStats* pull_stats(uint64_t c) {
    return pull_blocks_.empty() ? nullptr : &pull_blocks_[c].stats;
  }

  /// Cold-wait histogram of client \p c; null when adaptation is off.
  obs::LogHistogram* cold_wait(uint64_t c) {
    return cold_blocks_.empty() ? nullptr : &cold_blocks_[c].wait;
  }

  /// Folds every client's pull block into \p total, in client order.
  void MergePullStats(pull::PullStats* total) const;

  /// Folds every client's cold-wait histogram into \p total, in client
  /// order.
  void MergeColdWait(obs::LogHistogram* total) const;

 private:
  uint64_t clients_;
  uint64_t shards_;
  std::vector<uint32_t> class_of_;
  std::vector<ClientPullBlock> pull_blocks_;
  std::vector<ClientColdBlock> cold_blocks_;
};

/// \brief Expands class profiles onto a spec vector: stamps class_id,
/// loss_scale, and doze_scale of each client's spec from its class.
/// No-op when \p classes is empty.
void ApplyClassProfiles(const std::vector<ClassProfile>& classes,
                        std::vector<ClientSpec>* specs);

}  // namespace bcast::pop

#endif  // BCAST_POP_CLIENT_STORE_H_
