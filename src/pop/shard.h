/// \file shard.h
/// \brief One worker shard of the population engine.
///
/// A shard owns a private `des::Simulation` plus replicas of everything
/// a client touches on the data path: a `BroadcastChannel` over the
/// shared program, a `fault::ServerFaultPlane` (seeded identically in
/// every shard, and deterministic under any query order, so replicas
/// agree bit-for-bit), a `ShardPullHub` standing in for the pull
/// server's air side, and a private `adapt::LossMonitor` its receivers
/// report into without synchronization. The shard's client range is a
/// contiguous block of ids, each built by the shared
/// `BuildClientWorld` assembly from the same (client id, purpose)-keyed
/// randomness as the single-threaded path.
///
/// The engine drives a shard in *rounds*: the coordinator writes the
/// round's mailbox (pending program switch, pending pull-delivery
/// mirrors) while the worker is parked at the gate, then the worker
/// applies the mailbox and runs its simulation to the round barrier.
/// All cross-shard coupling happens at barriers; within a round the
/// shard shares nothing mutable with anyone.

#ifndef BCAST_POP_SHARD_H_
#define BCAST_POP_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "adapt/loss_monitor.h"
#include "broadcast/channel.h"
#include "broadcast/disk_config.h"
#include "broadcast/program.h"
#include "common/rng.h"
#include "core/client_world.h"
#include "core/multi_client.h"
#include "des/simulation.h"
#include "fault/process_faults.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "pop/client_store.h"
#include "pop/pull_hub.h"
#include "pull/hybrid.h"

namespace bcast::pop {

/// \brief Run-level context shared (read-only) by every shard.
struct ShardShared {
  const MultiClientParams* params = nullptr;
  const DiskLayout* layout = nullptr;
  const BroadcastProgram* program = nullptr;      ///< initial program
  const pull::HybridLayout* hybrid = nullptr;     ///< initial hybrid layout
  const std::vector<bool>* cold_pages = nullptr;  ///< may be empty
  obs::TimelineWriter* timeline = nullptr;  ///< mutexed; may be null
  obs::TraceSink* trace = nullptr;          ///< mutexed; may be null
  bool pull_enabled = false;        ///< program carries pull capacity
  double service_interval = 0.0;    ///< initial pull service interval
  bool need_loss_monitor = false;   ///< adaptation + faults are on
  bool need_cold_wait = false;      ///< adaptation is on
  bool profile_des = false;
};

/// \brief One shard: clients [begin, end) of the population.
class Shard {
 public:
  Shard(uint64_t index, uint64_t begin, uint64_t end,
        const ShardShared& shared, ClientStore* store);

  /// Builds and spawns this shard's client worlds (identical randomness
  /// and construction order to the legacy path), arms the shard-local
  /// schedule-version tick chain. Call once, before the first round.
  Status Build(const Rng& master);

  /// \name Round mailbox — coordinator-side, only while the worker is
  /// parked at the gate (the gate's mutex publishes the writes).
  /// @{

  /// The coordinator's pull server transmits \p page in the slot ending
  /// at \p end (strictly after the round barrier that produced it);
  /// mirror the delivery into this shard's waiter table next round.
  void QueueMirror(PageId page, double end);

  /// The adaptive controller switched to \p program at time \p at (a
  /// round barrier); \p service_interval is the new layout's mean pull
  /// spacing. Applied at the top of the next round.
  void QueueSwitch(const BroadcastProgram* program, double service_interval,
                   double at);
  /// @}

  /// Worker-side: applies the mailbox, then runs the shard simulation —
  /// to \p barrier, or to event-queue exhaustion when \p to_completion.
  void RunRound(double barrier, bool to_completion);

  /// Clients of this shard that have not finished their runs.
  uint64_t unfinished() const;

  uint64_t index() const { return index_; }
  uint64_t begin() const { return begin_; }
  uint64_t end() const { return end_; }

  des::Simulation& sim() { return sim_; }
  const des::Simulation& sim() const { return sim_; }

  /// The world of global client \p c (must be owned by this shard).
  ClientWorld& world(uint64_t c) { return worlds_[c - begin_]; }
  const ClientWorld& world(uint64_t c) const { return worlds_[c - begin_]; }

  /// Null when pull is off.
  ShardPullHub* hub() { return hub_.get(); }

  /// Null unless adaptation + faults are on.
  adapt::LossMonitor* loss_monitor() { return loss_monitor_.get(); }

  /// Schedule-version re-announces performed (shard-local liveness).
  uint64_t version_bumps() const { return version_bumps_; }

  /// Version-tick events fired (each bump plus the final dead-chain
  /// firing) — engine-infrastructure events the merged event count must
  /// not double-report.
  uint64_t vtick_events() const { return vtick_events_; }

  /// Mirror delivery events fired — likewise engine infrastructure.
  uint64_t mirrors_fired() const { return mirrors_fired_; }

 private:
  void ApplyMailbox();

  uint64_t index_;
  uint64_t begin_;
  uint64_t end_;
  const ShardShared& shared_;
  ClientStore* store_;

  des::Simulation sim_;
  BroadcastChannel channel_;
  std::unique_ptr<ShardPullHub> hub_;
  std::unique_ptr<fault::ServerFaultPlane> server_faults_;
  std::unique_ptr<adapt::LossMonitor> loss_monitor_;
  std::vector<ClientWorld> worlds_;

  std::function<void()> version_tick_;
  uint64_t version_bumps_ = 0;
  uint64_t vtick_events_ = 0;
  uint64_t mirrors_fired_ = 0;

  struct PendingMirror {
    PageId page;
    double end;
  };
  struct PendingSwitch {
    const BroadcastProgram* program;
    double service_interval;
    double at;
  };
  std::vector<PendingMirror> pending_mirrors_;
  std::vector<PendingSwitch> pending_switches_;
};

}  // namespace bcast::pop

#endif  // BCAST_POP_SHARD_H_
