#include "pop/shard.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "fault/fault_model.h"

namespace bcast::pop {

Shard::Shard(uint64_t index, uint64_t begin, uint64_t end,
             const ShardShared& shared, ClientStore* store)
    : index_(index),
      begin_(begin),
      end_(end),
      shared_(shared),
      store_(store),
      // An `auto` backend resolves against this shard's own slice: the
      // backends are bit-identical by contract, so per-shard choices
      // never show up in results — only in wall-clock.
      sim_(des::ResolveQueueBackend(shared.params->des_queue, end - begin)),
      channel_(&sim_, shared.program) {
  BCAST_CHECK(begin < end);
  if (shared_.profile_des) sim_.EnableProfiling();
  sim_.AttachTimeline(shared_.timeline);
  BCAST_TIMELINE(shared_.timeline,
                 NameTrack(obs::track::Shard(static_cast<uint32_t>(index)),
                           "shard" + std::to_string(index)));
  const MultiClientParams& params = *shared_.params;
  if (params.pull.Active()) {
    hub_ = std::make_unique<ShardPullHub>(shared_.pull_enabled,
                                          shared_.service_interval);
    if (shared_.pull_enabled) channel_.AttachPullServer(hub_.get());
  }
  // Server-side faults replicate per shard: same (0, kStall)/(0, kJitter)
  // seeds, and FaultWindows materializes identical windows under any
  // query order, so every replica answers exactly like the legacy
  // shared plane.
  if (params.fault.process.ServerActive()) {
    Rng salt_rng = fault::FaultStream(Rng(params.fault.fault_seed),
                                      /*client_id=*/0,
                                      fault::Purpose::kJitter);
    server_faults_ = std::make_unique<fault::ServerFaultPlane>(
        params.fault.process,
        fault::FaultStream(Rng(params.fault.fault_seed), /*client_id=*/0,
                           fault::Purpose::kStall),
        salt_rng.Next());
  }
  if (shared_.need_loss_monitor) {
    loss_monitor_ = std::make_unique<adapt::LossMonitor>(
        static_cast<PageId>(shared_.layout->TotalPages()));
  }
  // Adaptive runs switch programs mid-flight; the legacy Controller
  // enables resync on its channel at construction (before any client
  // wait), and every shard replica must mirror that so the queued
  // program switches can be applied.
  if (shared_.need_cold_wait) channel_.EnableResync();
}

Status Shard::Build(const Rng& master) {
  const MultiClientParams& params = *shared_.params;
  ClientWorldDeps deps;
  deps.sim = &sim_;
  deps.channel = &channel_;
  deps.layout = shared_.layout;
  deps.program = shared_.program;
  deps.hybrid = shared_.hybrid;
  deps.timeline = shared_.timeline;
  deps.trace = shared_.trace;
  deps.loss_monitor = loss_monitor_.get();
  deps.server_faults = server_faults_.get();
  deps.cold_pages = shared_.cold_pages;
  if (hub_ != nullptr) {
    // Transport-attached requester: submits cross the SPSC queue to the
    // coordinator, which owns the per-client uplink loss streams (draw
    // order stays canonical no matter how clients shard).
    deps.make_pull = [this, &params](size_t c, const fault::FaultParams&) {
      return std::make_unique<pull::PullClient>(
          &sim_, hub_->MakeTransport(c, store_->pull_stats(c)),
          params.pull);
    };
  }
  if (shared_.need_cold_wait) {
    deps.cold_wait_for = [this](size_t c) { return store_->cold_wait(c); };
  }
  worlds_.resize(end_ - begin_);
  for (uint64_t c = begin_; c < end_; ++c) {
    BCAST_RETURN_IF_ERROR(
        BuildClientWorld(params, c, master, deps, &worlds_[c - begin_]));
  }
  for (auto& world : worlds_) sim_.Spawn(world.client->Run());

  // Shard-local schedule-version tick chain (see RunMultiClientSimulation):
  // the re-announce only touches this shard's in-flight waits, and the
  // chain dies with this shard's last client. The population-wide bump
  // count is the max over shards — the longest-living shard ticks exactly
  // as long as the legacy single-sim chain would.
  if (params.fault.process.version_every > 0.0) {
    channel_.EnableResync();
    const double every = params.fault.process.version_every;
    version_tick_ = [this, every]() {
      ++vtick_events_;
      if (sim_.live_processes() == 0) return;
      channel_.SetProgram(&channel_.program(), sim_.Now());
      ++version_bumps_;
      sim_.Schedule(every, version_tick_, des::EventKind::kController);
    };
    sim_.Schedule(every, version_tick_, des::EventKind::kController);
  }
  return Status::OK();
}

void Shard::QueueMirror(PageId page, double end) {
  pending_mirrors_.push_back(PendingMirror{page, end});
}

void Shard::QueueSwitch(const BroadcastProgram* program,
                        double service_interval, double at) {
  pending_switches_.push_back(PendingSwitch{program, service_interval, at});
}

void Shard::ApplyMailbox() {
  // Switches first: a mirror delivered under the new program must see
  // the channel already resynced, exactly as the legacy path orders
  // SetProgram (at the epoch tick) before the delivery (a strictly later
  // event).
  for (const PendingSwitch& sw : pending_switches_) {
    channel_.SetProgram(sw.program, sw.at);
    if (hub_ != nullptr) hub_->set_service_interval(sw.service_interval);
    BCAST_TIMELINE(shared_.timeline,
                   Instant(obs::track::Shard(static_cast<uint32_t>(index_)),
                           "program_switch", "pop", sw.at,
                           {{"shard", static_cast<double>(index_)}}));
  }
  pending_switches_.clear();
  for (const PendingMirror& m : pending_mirrors_) {
    sim_.ScheduleAt(
        m.end,
        [this, m]() {
          ++mirrors_fired_;
          hub_->Deliver(m.page, m.end);
        },
        des::EventKind::kPull);
  }
  pending_mirrors_.clear();
}

void Shard::RunRound(double barrier, bool to_completion) {
  ApplyMailbox();
  if (to_completion) {
    sim_.Run();
  } else {
    sim_.RunUntil(barrier);
  }
  BCAST_TIMELINE(shared_.timeline,
                 Counter(obs::track::Shard(static_cast<uint32_t>(index_)),
                         "shard_unfinished",
                         to_completion ? sim_.Now() : barrier,
                         static_cast<double>(unfinished())));
}

uint64_t Shard::unfinished() const {
  uint64_t n = 0;
  for (const auto& world : worlds_) {
    if (!world.client->finished()) ++n;
  }
  return n;
}

}  // namespace bcast::pop
