/// \file spsc_queue.h
/// \brief Bounded single-producer/single-consumer ring with a mutexed
/// overflow spill.
///
/// Each population shard owns one of these toward the coordinator: the
/// shard's worker thread is the only producer (client uplink submits
/// during a round), the coordinator the only consumer (drained at the
/// round barrier). The fast path is the classic cache-line-padded
/// head/tail ring (DRAMHiT's bqueue shape): the producer writes the slot
/// then publishes `tail` with a release store; the consumer reads `tail`
/// with acquire and bumps `head`. A full ring spills to a mutex-guarded
/// vector rather than blocking the simulation — correctness never
/// depends on capacity, only the fast-path hit rate does.
///
/// Drain-at-barrier FIFO: `TryPop` empties the ring before touching the
/// spill, and the producer only spills while the ring is full, so the
/// pop order during a barrier drain (producer parked) is exactly the
/// push order.

#ifndef BCAST_POP_SPSC_QUEUE_H_
#define BCAST_POP_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace bcast::pop {

template <typename T>
class SpscQueue {
 public:
  /// \p capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t capacity = 1024) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer: enqueues \p value; never fails (full ring spills).
  void Push(const T& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail - head <= mask_) {
      ring_[tail & mask_] = value;
      tail_.store(tail + 1, std::memory_order_release);
      return;
    }
    std::lock_guard<std::mutex> lock(spill_mu_);
    spill_.push_back(value);
    ++spilled_;
  }

  /// Consumer: dequeues into \p out; false when empty. Ring first, then
  /// the spill — FIFO when the producer is parked (barrier drain).
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head != tail) {
      *out = ring_[head & mask_];
      head_.store(head + 1, std::memory_order_release);
      return true;
    }
    std::lock_guard<std::mutex> lock(spill_mu_);
    if (spill_head_ >= spill_.size()) {
      if (!spill_.empty()) {
        spill_.clear();
        spill_head_ = 0;
      }
      return false;
    }
    *out = spill_[spill_head_++];
    return true;
  }

  /// Entries that missed the ring (diagnostics; racy outside barriers).
  uint64_t spilled() const { return spilled_; }

  /// Ring capacity after rounding.
  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> ring_;
  size_t mask_ = 0;
  // Producer and consumer cursors on their own cache lines so the two
  // threads never false-share.
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::mutex spill_mu_;
  std::vector<T> spill_;
  size_t spill_head_ = 0;
  uint64_t spilled_ = 0;
};

}  // namespace bcast::pop

#endif  // BCAST_POP_SPSC_QUEUE_H_
