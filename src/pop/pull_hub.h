/// \file pull_hub.h
/// \brief Shard-side half of the hybrid pull path.
///
/// The population engine keeps uplink admission, queueing, and service
/// decisions centralized in the coordinator's `pull::PullServer` — the
/// paper's backchannel is one shared scarce resource and must stay one.
/// What each shard owns locally is the *air side*: the waiter table its
/// `BroadcastChannel` replica registers page waits into, and the mirror
/// deliveries that resume those waiters when the coordinator's server
/// transmits a pull slot.
///
/// Requests flow the other way through an SPSC queue: a client's
/// `PullClient` submits into its shard's queue during a round, and the
/// coordinator drains all queues at the round barrier, replaying each
/// submit against the real server in canonical (time, client) order so
/// admission accounting and per-client uplink loss draws are identical
/// for every shard count.
///
/// `Deliver` is a verbatim mirror of `PullServer::DeliverPage` —
/// detach-then-offer with re-registration on refusal — except the
/// consumed-offer count lands in a shard-local counter that the engine
/// sums into the merged stats (hub order is irrelevant: the counter is
/// an integer).

#ifndef BCAST_POP_PULL_HUB_H_
#define BCAST_POP_PULL_HUB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "broadcast/types.h"
#include "pop/spsc_queue.h"
#include "pull/pull_client.h"
#include "pull/pull_sink.h"
#include "pull/pull_stats.h"

namespace bcast::pop {

/// \brief One uplink submit crossing a shard→coordinator queue.
struct UplinkMsg {
  double t = 0.0;          ///< simulation time of the submit
  uint64_t client = 0;     ///< submitting client id (global)
  PageId page = 0;         ///< requested page
  bool re_request = false; ///< timeout-driven re-send
};

/// \brief Shard-local waiter table + uplink forwarding for one shard.
class ShardPullHub : public pull::WaiterRegistry {
 public:
  /// \p enabled mirrors `PullServer::enabled()`: whether the program
  /// carries pull capacity at all. \p service_interval is the initial
  /// mean slots between pull-slot starts (updated at program switches
  /// via `set_service_interval`, always at a round boundary).
  ShardPullHub(bool enabled, double service_interval)
      : enabled_(enabled), service_interval_(service_interval) {}

  // pull::WaiterRegistry — called re-entrantly from the shard's channel.
  void AddWaiter(PageId page, pull::PullSink* sink) override {
    waiters_[page].push_back(sink);
  }
  void RemoveWaiter(PageId page, pull::PullSink* sink) override;

  /// Mirror of `PullServer::DeliverPage`: the coordinator's server
  /// transmitted \p page in a pull slot ending at \p end; offer it to
  /// this shard's waiters.
  void Deliver(PageId page, double end);

  /// Transport for client \p client_id: submits land in this shard's
  /// queue, delivery/latency accounting lands in \p stats (the client's
  /// own store block).
  pull::PullTransport MakeTransport(uint64_t client_id,
                                    pull::PullStats* stats);

  /// New mean pull service interval after a program switch (applied by
  /// the shard at the round start where the switch lands).
  void set_service_interval(double interval) {
    service_interval_ = interval;
  }

  /// Consumed pull-delivery offers on this shard.
  uint64_t pull_deliveries() const { return pull_deliveries_; }

  /// The shard→coordinator uplink queue (drained at barriers).
  SpscQueue<UplinkMsg>& queue() { return queue_; }

 private:
  bool enabled_;
  double service_interval_;
  uint64_t pull_deliveries_ = 0;
  std::unordered_map<PageId, std::vector<pull::PullSink*>> waiters_;
  SpscQueue<UplinkMsg> queue_;
};

}  // namespace bcast::pop

#endif  // BCAST_POP_PULL_HUB_H_
