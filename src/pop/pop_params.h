/// \file pop_params.h
/// \brief Parameters of the sharded population engine.
///
/// The engine simulates N clients partitioned across K worker threads
/// (shards). Results are deterministic in the run seed and invariant in
/// K: the shard count is an execution detail, like the DES queue
/// backend, never a semantic knob. Receiver heterogeneity is expressed
/// as *class profiles* — named fractions of the population whose
/// fault knobs scale relative to the shared baseline ("near" receivers
/// hear well, "far" ones lose more and doze longer) — mapped onto
/// clients deterministically by client id.
///
/// This header is included by `core/sim_config.h` and must stay free of
/// core/ includes.

#ifndef BCAST_POP_POP_PARAMS_H_
#define BCAST_POP_POP_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bcast::pop {

/// \brief One receiver class: a fraction of the population with scaled
/// fault knobs (see ClientSpec::loss_scale / doze_scale).
struct ClassProfile {
  std::string name = "default";
  double fraction = 1.0;  ///< share of the population, in (0, 1]
  double loss_scale = 1.0;
  double doze_scale = 1.0;
};

/// \brief Population-engine knobs, carried next to the simulation
/// parameters in `SimConfig`.
struct PopParams {
  /// Population size. 1 keeps the classic single-client path.
  uint64_t clients = 1;

  /// Worker shards. 1 (the default) routes population runs through the
  /// legacy single-threaded `RunMultiClientSimulation` unless
  /// `force_engine` is set; shard-count invariance makes the choice
  /// observable only in wall-clock time.
  uint64_t shards = 1;

  /// Route even single-shard runs through the engine (tests and the
  /// shard-count matrix use this; reports are identical either way on
  /// uncoupled configs).
  bool force_engine = false;

  /// Receiver classes; empty means one homogeneous default class.
  /// Fractions must sum to at most 1 (any remainder joins the last
  /// class).
  std::vector<ClassProfile> classes;

  /// Whether this run uses the sharded engine.
  bool UseEngine() const { return force_engine || shards > 1; }

  /// Shards actually spun up (never more than clients).
  uint64_t EffectiveShards() const {
    return shards < clients ? (shards > 0 ? shards : 1) : (clients > 0 ? clients : 1);
  }

  Status Validate() const;
};

/// Parses a class-profile list: "name:fraction:loss_scale:doze_scale"
/// entries separated by commas, e.g. "near:0.6:0.5:0,far:0.4:2:3".
/// Trailing fields may be omitted (":" defaults apply).
Result<std::vector<ClassProfile>> ParseClassProfiles(
    const std::string& spec);

/// The class of client \p c in a population of \p clients under
/// \p classes: contiguous id ranges sized by the fractions, remainder
/// to the last class; 0 when \p classes is empty.
uint32_t ClassOfClient(uint64_t c, uint64_t clients,
                       const std::vector<ClassProfile>& classes);

/// First client id owned by shard \p s of \p shards over \p clients
/// (contiguous blocks, remainder spread over the leading shards).
/// Shard s owns [ShardBegin(s), ShardBegin(s + 1)).
uint64_t ShardBegin(uint64_t s, uint64_t shards, uint64_t clients);

}  // namespace bcast::pop

#endif  // BCAST_POP_POP_PARAMS_H_
