/// \file engine.h
/// \brief The sharded population engine: N clients over K worker threads.
///
/// The engine partitions the population into contiguous shards, each a
/// private discrete-event simulation (see shard.h), and couples them to
/// one coordinator-owned *server simulation* holding the subsystems the
/// paper centralizes: the pull server (uplink admission, request queue,
/// service decisions) and the adaptive controller. Shards and server
/// synchronize only at *round barriers* — the coupling times where
/// information can cross the air or the backchannel:
///
///   - every pull-slot start (a service decision may transmit),
///   - every controller epoch boundary (the program may switch),
///   - every stats-stream sample point.
///
/// A round: (1) shards run `[t, B]` in parallel, queuing uplink submits
/// into their SPSC queues; (2) the coordinator drains all queues, sorts
/// the submits by (time, client id), and replays them against the real
/// pull server — admission, the per-client uplink loss draw, enqueue —
/// in that canonical order; (3) the server simulation runs to `B`,
/// firing decisions/epoch ticks, and every pull transmission fans out
/// as a delivery *mirror* into each shard's next round; (4) repeat.
/// Configurations with no pull, no adaptation, and no stats stream have
/// no coupling at all: the engine runs one round to completion, shards
/// fully parallel.
///
/// Determinism contract:
///   - Results are **shard-count invariant**: any K produces the same
///     `MultiClientResult` (and report) bit for bit. Per-client state is
///     keyed by client id, merges fold in ascending client order, and
///     the replay order above does not mention shards.
///   - On *uncoupled* configurations the engine is additionally
///     **bit-identical to `RunMultiClientSimulation`** (golden-proven):
///     the same client worlds run the same events, and the merged
///     event count reconstructs the single-sim count exactly.
///   - On coupled configurations the engine is its own (deterministic,
///     K-invariant) reference: barrier replay resolves equal-timestamp
///     races by (time, client id) where the single simulation resolves
///     them by event sequence number, so e.g. a timeout re-request
///     landing exactly on a decision slot may order differently than
///     legacy. `--shards=1` without `force_engine` therefore routes
///     through the legacy path, which stays the compatibility anchor.
///   - Stats-stream samples are taken at barriers by the coordinator
///     and add **no** DES events (the legacy sampler adds kStats
///     events), so `events_dispatched` of a stats-observed engine run
///     matches the unobserved run, not the legacy stats-observed one.

#ifndef BCAST_POP_ENGINE_H_
#define BCAST_POP_ENGINE_H_

#include "core/multi_client.h"
#include "core/simulator.h"
#include "obs/run_report.h"
#include "pop/pop_params.h"

namespace bcast::pop {

/// \brief Runs \p params.clients (already expanded to the population,
/// with any class profiles applied to the specs) across
/// \p pop.EffectiveShards() worker threads. Deterministic in
/// `params.seed`; invariant in the shard count.
Result<MultiClientResult> RunPopulationSimulation(
    const MultiClientParams& params, const PopParams& pop,
    const SimObservers& observers);

/// \brief Convenience overload without observers.
Result<MultiClientResult> RunPopulationSimulation(
    const MultiClientParams& params, const PopParams& pop);

/// \brief Appends population-engine extras to a population report:
/// engine identity (`pop_clients`, `pop_shards`, `pop_engine`),
/// population fairness (`pop_max_flow_time` — the largest total measured
/// wait any client accumulated; `pop_stretch_max` — worst per-class mean
/// response time over the population mean; `pop_worst_class_p99`), and
/// one block per receiver class (count, mean/p50/p90/p99/max response
/// time, stretch).
void AppendPopulationExtras(const PopParams& pop,
                            const MultiClientResult& result,
                            obs::RunReport* report);

}  // namespace bcast::pop

#endif  // BCAST_POP_ENGINE_H_
