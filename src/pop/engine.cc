#include "pop/engine.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adapt/controller.h"
#include "adapt/loss_monitor.h"
#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "broadcast/schedule_optimizer.h"
#include "client/client.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/client_world.h"
#include "des/simulation.h"
#include "fault/fault_model.h"
#include "obs/stats_stream.h"
#include "obs/stopwatch.h"
#include "obs/timeline.h"
#include "pop/client_store.h"
#include "pop/shard.h"
#include "pull/hybrid.h"
#include "pull/pull_server.h"

namespace bcast::pop {
namespace {

// Sub-stream tag of the random-program draw (matches multi_client.cc).
constexpr uint64_t kProgramStream = 3;

/// K parked worker threads, one per shard, driven in lock-step rounds.
/// The gate mutex publishes the coordinator's mailbox writes to the
/// workers (acquire at round start) and the workers' shard state back
/// (release at round end), so shard internals need no atomics.
class WorkerPool {
 public:
  explicit WorkerPool(std::vector<std::unique_ptr<Shard>>* shards)
      : shards_(shards) {
    threads_.reserve(shards_->size());
    for (auto& shard : *shards_) {
      threads_.emplace_back([this, s = shard.get()]() { WorkerMain(s); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      quit_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Runs one round on every shard; returns when all are parked again.
  void RunRound(double barrier, bool to_completion) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      barrier_ = barrier;
      to_completion_ = to_completion;
      done_ = 0;
      ++seq_;
    }
    cv_start_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this]() { return done_ == shards_->size(); });
  }

 private:
  void WorkerMain(Shard* shard) {
    uint64_t seen = 0;
    for (;;) {
      double barrier;
      bool to_completion;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&]() { return quit_ || seq_ != seen; });
        if (quit_) return;
        seen = seq_;
        barrier = barrier_;
        to_completion = to_completion_;
      }
      shard->RunRound(barrier, to_completion);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++done_;
      }
      cv_done_.notify_one();
    }
  }

  std::vector<std::unique_ptr<Shard>>* shards_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t seq_ = 0;
  uint64_t done_ = 0;
  double barrier_ = 0.0;
  bool to_completion_ = false;
  bool quit_ = false;
};

/// Lazily-built per-client uplink loss draw state; the coordinator owns
/// every stream, so draw order per client is its submit order — exactly
/// the legacy order (a client has at most one request outstanding).
struct UplinkDraw {
  std::optional<Rng> rng;
  double loss = 0.0;
};

}  // namespace

Result<MultiClientResult> RunPopulationSimulation(
    const MultiClientParams& params, const PopParams& pop) {
  return RunPopulationSimulation(params, pop, SimObservers{});
}

Result<MultiClientResult> RunPopulationSimulation(
    const MultiClientParams& params, const PopParams& pop,
    const SimObservers& observers) {
  obs::Stopwatch total_watch;
  obs::PhaseTimings timings;

  BCAST_RETURN_IF_ERROR(params.Validate());
  BCAST_RETURN_IF_ERROR(pop.Validate());
  const uint64_t n_clients = params.clients.size();
  const uint64_t n_shards =
      std::min<uint64_t>(pop.shards > 0 ? pop.shards : 1, n_clients);

  const Rng master(params.seed);
  // Same schedule construction as RunMultiClientSimulation: the
  // configured optimizer designs layout and program together (with pull
  // the air carries the hybrid program built from the optimizer's
  // layout), so the engine and the legacy runner race identical
  // schedules.
  pull::HybridLayout hybrid_layout;
  Result<ServerSchedule> schedule = [&]() -> Result<ServerSchedule> {
    obs::ScopedTimer timer(&timings.build_program_seconds);
    if (params.program_kind == ProgramKind::kMultiDisk) {
      const ScheduleOptimizer* optimizer =
          FindScheduleOptimizer(params.optimizer);
      BCAST_CHECK(optimizer != nullptr);  // Validate() vetted the name
      OptimizerRequest request;
      request.disk_sizes = params.disk_sizes;
      request.rel_freqs = params.rel_freqs;
      request.delta = params.delta;
      if (params.optimizer != "delta") {
        request.probs = PopulationNominalProbs(params);
      }
      Result<OptimizedSchedule> built = optimizer->Build(request);
      if (!built.ok()) return built.status();
      ServerSchedule out{std::move(built->layout), std::move(built->program),
                         built->predicted_delay};
      if (params.pull.Active()) {
        Result<pull::HybridProgram> hybrid = pull::GenerateHybridProgram(
            out.layout, params.pull.pull_slots);
        if (!hybrid.ok()) return hybrid.status();
        hybrid_layout = std::move(hybrid->layout);
        out.program = std::move(hybrid->program);
      }
      return out;
    }
    Result<DiskLayout> layout =
        params.rel_freqs.empty()
            ? MakeDeltaLayout(params.disk_sizes, params.delta)
            : MakeLayout(params.disk_sizes, params.rel_freqs);
    if (!layout.ok()) return layout.status();
    Result<BroadcastProgram> program = [&]() -> Result<BroadcastProgram> {
      if (params.program_kind == ProgramKind::kSkewed) {
        return GenerateSkewedProgram(*layout);
      }
      Result<BroadcastProgram> reference = GenerateMultiDiskProgram(*layout);
      if (!reference.ok()) return reference.status();
      Rng rng = master.Split(kProgramStream);
      return GenerateRandomProgram(*layout, reference->period(), &rng);
    }();
    if (!program.ok()) return program.status();
    return ServerSchedule{std::move(*layout), std::move(*program), 0.0};
  }();
  if (!schedule.ok()) return schedule.status();
  const DiskLayout* const layout = &schedule->layout;
  BroadcastProgram* const program = &schedule->program;

  const uint64_t total = layout->TotalPages();
  obs::Stopwatch setup_watch;

  // The coordinator's server simulation: the centralized subsystems —
  // pull server, adaptive controller, and the channel the controller
  // steers (no client ever waits on this channel; the shards' replicas
  // carry the waiters).
  // The server simulation hosts only the centralized subsystems (no
  // client waits), so an `auto` backend resolves against zero clients —
  // the heap. Each shard resolves against its own slice (shard.cc).
  const des::QueueBackend resolved_queue =
      des::ResolveQueueBackend(params.des_queue, n_clients);
  des::Simulation server_sim(
      des::ResolveQueueBackend(params.des_queue, /*expected_clients=*/0));
  if (observers.profile_des) server_sim.EnableProfiling();
  server_sim.AttachTimeline(observers.timeline);
  BCAST_TIMELINE(observers.timeline, NameTrack(obs::track::kSim, "des"));
  BroadcastChannel server_channel(&server_sim, &*program);

  std::unique_ptr<pull::PullServer> pull_server;
  if (params.pull.Active()) {
    pull_server = std::make_unique<pull::PullServer>(
        &server_sim, hybrid_layout, params.pull);
    BCAST_TIMELINE(observers.timeline, NameTrack(obs::track::kPull, "pull"));
  }
  const bool pull_on = pull_server != nullptr && pull_server->enabled();

  std::vector<bool> cold_pages;
  if ((params.pull.Active() || params.adapt.Active()) &&
      program->num_disks() > 1) {
    const DiskIndex coldest =
        static_cast<DiskIndex>(program->num_disks() - 1);
    cold_pages.resize(total);
    for (PageId p = 0; p < static_cast<PageId>(total); ++p) {
      cold_pages[p] = program->DiskOf(p) == coldest;
    }
  }

  std::unique_ptr<adapt::LossMonitor> loss_monitor;
  std::unique_ptr<adapt::Controller> controller;
  // The controller's epoch-barrier products, captured by its hooks while
  // the server simulation runs and forwarded to the shards before the
  // next round.
  struct SwitchInfo {
    const BroadcastProgram* program;
    double service_interval;
    bool pull_switch;
    double at;
  };
  std::vector<SwitchInfo> pending_switches;
  uint64_t unfinished_total = n_clients;
  if (params.adapt.Active()) {
    if (params.fault.Active()) {
      loss_monitor =
          std::make_unique<adapt::LossMonitor>(static_cast<PageId>(total));
    }
    adapt::Controller::Hooks hooks;
    hooks.channel = &server_channel;
    hooks.pull = pull_on ? pull_server.get() : nullptr;
    hooks.loss = loss_monitor.get();
    hooks.liveness = [&unfinished_total]() { return unfinished_total > 0; };
    hooks.on_switch = [&pending_switches](
                          const BroadcastProgram* prog,
                          const pull::HybridLayout* hybrid, double now) {
      const double interval =
          hybrid != nullptr && hybrid->enabled()
              ? static_cast<double>(hybrid->minor_len()) /
                    static_cast<double>(hybrid->pull_per_minor)
              : 0.0;
      pending_switches.push_back(
          SwitchInfo{prog, interval, hybrid != nullptr, now});
    };
    controller = std::make_unique<adapt::Controller>(&server_sim, *layout,
                                                     params.adapt, hooks);
    BCAST_TIMELINE(observers.timeline,
                   NameTrack(obs::track::kController, "adapt"));
  }

  // Pull transmissions observed on the server, mirrored into every
  // shard's next round (each delivery ends strictly after the barrier
  // that produced it, so the mirror always lands inside the next round).
  std::vector<std::pair<PageId, double>> pending_mirrors;
  if (pull_server != nullptr) {
    pull_server->SetServiceFanout([&pending_mirrors](PageId page,
                                                     double end) {
      pending_mirrors.emplace_back(page, end);
    });
  }

  ClientStore store(n_clients, n_shards, pop.classes,
                    /*need_pull=*/params.pull.Active(),
                    /*need_cold=*/params.adapt.Active());

  ShardShared shared;
  shared.params = &params;
  shared.layout = &*layout;
  shared.program = &*program;
  shared.hybrid = &hybrid_layout;
  shared.cold_pages = &cold_pages;
  shared.timeline = observers.timeline;
  shared.trace = observers.trace;
  shared.pull_enabled = pull_on;
  shared.service_interval =
      pull_server != nullptr ? pull_server->ServiceInterval() : 0.0;
  shared.need_loss_monitor = loss_monitor != nullptr;
  shared.need_cold_wait = controller != nullptr;
  shared.profile_des = observers.profile_des;

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(n_shards);
  for (uint64_t s = 0; s < n_shards; ++s) {
    shards.push_back(std::make_unique<Shard>(
        s, store.ShardBeginOf(s), store.ShardEndOf(s), shared, &store));
    BCAST_RETURN_IF_ERROR(shards.back()->Build(master));
  }
  timings.setup_seconds = setup_watch.ElapsedSeconds();

  // Merged DES event count: shard events minus engine infrastructure
  // (delivery mirrors; all but the longest version-tick chain, which
  // stands in for the legacy single chain) plus the server simulation's
  // own events. On uncoupled configurations this equals the legacy
  // single-simulation count exactly.
  auto merged_events = [&]() {
    uint64_t events = server_sim.events_dispatched();
    uint64_t max_vticks = 0;
    for (const auto& shard : shards) {
      events += shard->sim().events_dispatched() - shard->mirrors_fired() -
                shard->vtick_events();
      max_vticks = std::max(max_vticks, shard->vtick_events());
    }
    return events + max_vticks;
  };

  // The population stats sampler (see RunMultiClientSimulation): same
  // fields, but sampled by the coordinator at round barriers — it adds
  // no DES events to any simulation.
  const bool stats_on = observers.stats != nullptr;
  const double stats_interval =
      stats_on ? std::max(observers.stats_interval, 1.0) : 0.0;
  uint64_t stats_prev_requests = 0;
  uint64_t stats_prev_hits = 0;
  double stats_prev_rt_sum = 0.0;
  std::vector<ClassProfile> stat_classes = pop.classes;
  if (stat_classes.empty()) stat_classes.push_back(ClassProfile{});
  auto take_stats_sample = [&](bool final_sample, double t) {
    obs::StatsSample s;
    s.t = t;
    s.wall_seconds = observers.stats->ElapsedSeconds();
    s.events = merged_events();
    double rt_sum = 0.0;
    std::vector<std::optional<obs::LogHistogram>> class_rt(
        stat_classes.size());
    for (const auto& shard : shards) {
      for (uint64_t c = shard->begin(); c < shard->end(); ++c) {
        const ClientWorld& world = shard->world(c);
        const ClientMetrics& m = world.client->metrics();
        s.requests += m.requests();
        s.hits += m.cache_hits();
        s.warmup_requests += world.client->warmup_requests();
        rt_sum += m.response_time().sum();
        const uint32_t k = store.class_of(c);
        if (!class_rt[k].has_value()) {
          class_rt[k].emplace(m.response_histogram());
        } else {
          class_rt[k]->Merge(m.response_histogram());
        }
        const std::vector<uint64_t>& per_disk = m.served_per_disk();
        if (s.served_per_disk.size() < per_disk.size()) {
          s.served_per_disk.resize(per_disk.size(), 0);
        }
        for (size_t d = 0; d < per_disk.size(); ++d) {
          s.served_per_disk[d] += per_disk[d];
        }
        if (world.receiver != nullptr) {
          s.fault_lost += world.receiver->stats().lost;
          s.fault_retries += world.receiver->stats().retries;
        }
      }
    }
    s.mean_rt =
        s.requests > 0 ? rt_sum / static_cast<double>(s.requests) : 0.0;
    s.win_requests = s.requests - stats_prev_requests;
    s.win_hits = s.hits - stats_prev_hits;
    s.win_mean_rt = s.win_requests > 0
                        ? (rt_sum - stats_prev_rt_sum) /
                              static_cast<double>(s.win_requests)
                        : 0.0;
    if (pull_server != nullptr) {
      s.pull_queue_depth = pull_server->queue_depth();
      s.pull_serviced = pull_server->stats().serviced_pages;
    }
    s.pop_clients = n_clients;
    s.pop_shards = n_shards;
    s.pop_req_rate = stats_interval > 0.0
                         ? static_cast<double>(s.win_requests) /
                               stats_interval
                         : 0.0;
    for (const auto& h : class_rt) {
      if (h.has_value()) {
        s.pop_worst_p99 = std::max(s.pop_worst_p99, h->Summary().p99);
      }
    }
    s.final_sample = final_sample;
    stats_prev_requests = s.requests;
    stats_prev_hits = s.hits;
    stats_prev_rt_sum = rt_sum;
    observers.stats->Write(s);
  };

  double next_stats = stats_interval;
  bool stats_armed = stats_on;
  double last_stats_time = 0.0;

  const double horizon = observers.horizon;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double t_cursor = 0.0;
  bool first_round = true;
  double pull_origin = 0.0;
  bool fully_drained = false;
  std::vector<UplinkMsg> msgs;
  std::unordered_map<uint64_t, UplinkDraw> uplink_draws;

  obs::Stopwatch run_watch;
  if (controller != nullptr) controller->Start();
  {
    WorkerPool pool(&shards);
    for (;;) {
      // The round barrier: the earliest upcoming coupling time. Pull
      // slot starts all become barriers (a service decision may fire at
      // any of them once a request is queued); epoch ticks and stats
      // samples add theirs. No coupling at all → run to completion.
      double barrier = kInf;
      if (pull_on) {
        // First round only: a pull slot starting at t=0 can service a
        // submit from the t=0 client start-up events.
        const double from = first_round ? t_cursor : t_cursor + 1.0;
        barrier = std::min(
            barrier, pull_origin + pull_server->layout().NextPullSlotStart(
                                       from - pull_origin));
      }
      if (controller != nullptr &&
          controller->next_tick_time() > t_cursor) {
        barrier = std::min(barrier, controller->next_tick_time());
      }
      if (stats_armed) barrier = std::min(barrier, next_stats);
      bool to_completion = barrier == kInf;
      if (horizon > 0.0 && (to_completion || barrier > horizon)) {
        barrier = horizon;
        to_completion = false;
      }

      pool.RunRound(barrier, to_completion);
      first_round = false;

      // Population liveness at the barrier, read by the controller's
      // tick (and the stats arm logic) during the server round.
      unfinished_total = 0;
      for (const auto& shard : shards) {
        unfinished_total += shard->unfinished();
      }

      // Replay the round's uplink submits in canonical (time, client)
      // order: backchannel admission, the per-client in-flight loss
      // draw, enqueue — identical accounting for every shard count.
      if (pull_server != nullptr) {
        msgs.clear();
        for (const auto& shard : shards) {
          if (shard->hub() == nullptr) continue;
          UplinkMsg m;
          while (shard->hub()->queue().TryPop(&m)) msgs.push_back(m);
        }
        std::stable_sort(msgs.begin(), msgs.end(),
                         [](const UplinkMsg& a, const UplinkMsg& b) {
                           if (a.t != b.t) return a.t < b.t;
                           return a.client < b.client;
                         });
        for (const UplinkMsg& m : msgs) {
          if (!pull_server->TryUplink(m.t, m.re_request)) continue;
          auto [it, inserted] = uplink_draws.try_emplace(m.client);
          if (inserted) {
            const fault::FaultParams scaled =
                ScaledFaultParams(params.fault, params.clients[m.client]);
            if (scaled.Active() && scaled.loss > 0.0) {
              it->second.rng = fault::FaultStream(Rng(scaled.fault_seed),
                                                  m.client,
                                                  fault::Purpose::kUplink);
              it->second.loss = scaled.loss;
            }
          }
          UplinkDraw& draw = it->second;
          if (draw.loss > 0.0 && draw.rng->NextDouble() < draw.loss) {
            pull_server->NoteUplinkLost();
            continue;
          }
          pull_server->Enqueue(m.page, m.t);
        }
      }

      // Fold shard loss windows into the controller's monitor right
      // before an epoch tick could drain them; shard order, pure
      // integer addition.
      if (loss_monitor != nullptr && !to_completion &&
          controller->next_tick_time() == barrier) {
        for (const auto& shard : shards) {
          loss_monitor->Absorb(*shard->loss_monitor());
        }
      }

      if (to_completion) {
        server_sim.Run();
        fully_drained = true;
      } else {
        server_sim.RunUntil(barrier);
      }

      // Forward the server round's products into next round's
      // mailboxes.
      for (const SwitchInfo& sw : pending_switches) {
        if (sw.pull_switch) pull_origin = sw.at;
        for (const auto& shard : shards) {
          shard->QueueSwitch(sw.program, sw.service_interval, sw.at);
        }
      }
      pending_switches.clear();
      for (const auto& [page, end] : pending_mirrors) {
        for (const auto& shard : shards) shard->QueueMirror(page, end);
      }
      pending_mirrors.clear();

      if (stats_armed && !to_completion && barrier == next_stats) {
        take_stats_sample(false, barrier);
        last_stats_time = barrier;
        stats_armed = unfinished_total > 0;
        next_stats += stats_interval;
      }
      if (!to_completion) t_cursor = barrier;

      if (unfinished_total == 0) break;
      if (to_completion) break;  // drained dry with clients unfinished
      if (horizon > 0.0 && t_cursor >= horizon) {
        for (const auto& shard : shards) {
          for (uint64_t c = shard->begin(); c < shard->end(); ++c) {
            if (!shard->world(c).client->finished()) {
              return Status::Internal(StrFormat(
                  "no-hang violation: client %zu unfinished at horizon "
                  "%.0f (t=%.0f, events=%llu)",
                  static_cast<size_t>(c), horizon, t_cursor,
                  static_cast<unsigned long long>(merged_events())));
            }
          }
        }
      }
    }

    // Drain the tails: pending version ticks in the shards, the
    // controller's final (dead-liveness) tick and any queued pull
    // deliveries in the server simulation. Mirrors produced here have
    // no waiters left and are dropped.
    if (!fully_drained) {
      pool.RunRound(0.0, /*to_completion=*/true);
      server_sim.Run();
      pending_switches.clear();
      pending_mirrors.clear();
    }
    // The one legacy stats tick that survives every client (scheduled
    // while someone was still running): sampled at its grid time.
    if (stats_armed && stats_on) {
      take_stats_sample(false, next_stats);
      last_stats_time = next_stats;
    }
  }  // joins the worker pool
  timings.measured_seconds = run_watch.ElapsedSeconds();

  double end_time = server_sim.Now();
  for (const auto& shard : shards) {
    end_time = std::max(end_time, shard->sim().Now());
  }
  end_time = std::max(end_time, last_stats_time);

  MultiClientResult result;
  result.aggregate = ClientMetrics(program->num_disks());
  uint64_t version_bumps = 0;
  for (const auto& shard : shards) {
    version_bumps = std::max(version_bumps, shard->version_bumps());
    for (uint64_t c = shard->begin(); c < shard->end(); ++c) {
      ClientWorld& world = shard->world(c);
      BCAST_CHECK(world.client->finished())
          << "client " << c << " did not finish";
      result.per_client.push_back(world.client->metrics());
      result.aggregate.Merge(world.client->metrics());
      const double mean = world.client->metrics().mean_response_time();
      result.mean_response_times.push_back(mean);
      result.response_across_clients.Add(mean);
      if (world.receiver != nullptr) {
        result.faults.Merge(world.receiver->stats());
        result.faults_active = true;
      }
      result.cold_requests += world.client->cold_requests();
      result.cold_hits += world.client->cold_hits();
    }
  }
  if (result.faults_active) result.faults.version_bumps = version_bumps;
  if (stats_on) take_stats_sample(true, end_time);
  if (pull_server != nullptr) {
    pull_server->FinishRun(end_time);
    result.pull_stats = pull_server->stats();
    // Delivery offers consumed on the shards' air side plus every
    // client's own bookkeeping block, folded in client order.
    for (const auto& shard : shards) {
      if (shard->hub() != nullptr) {
        result.pull_stats.pull_deliveries += shard->hub()->pull_deliveries();
      }
    }
    store.MergePullStats(&result.pull_stats);
    result.pull_active = true;
  }
  if (controller != nullptr) {
    result.adapt_stats = controller->stats();
    store.MergeColdWait(&result.adapt_stats.cold_wait);
    result.adapt_active = true;
  }
  result.end_time = end_time;
  result.events_dispatched = merged_events();
  result.predicted_delay = schedule->predicted_delay;
  result.resolved_queue = resolved_queue;
  if (observers.profile_des) {
    result.profile = server_sim.profile();
    for (const auto& shard : shards) {
      result.profile.Merge(shard->sim().profile());
    }
    result.profile_active = true;
  }
  timings.total_seconds = total_watch.ElapsedSeconds();
  result.timings = timings;
  return result;
}

void AppendPopulationExtras(const PopParams& pop,
                            const MultiClientResult& result,
                            obs::RunReport* report) {
  const uint64_t n = result.per_client.size();
  if (n == 0) return;
  const uint64_t shards = std::min<uint64_t>(
      pop.shards > 0 ? pop.shards : 1, n);
  report->extra.emplace_back("pop_clients", static_cast<double>(n));
  report->extra.emplace_back("pop_shards", static_cast<double>(shards));
  report->extra.emplace_back("pop_engine", pop.UseEngine() ? 1.0 : 0.0);

  // The heaviest single client: its total accumulated measured wait.
  double max_flow = 0.0;
  for (const ClientMetrics& m : result.per_client) {
    max_flow = std::max(max_flow, m.response_time().sum());
  }
  report->extra.emplace_back("pop_max_flow_time", max_flow);

  std::vector<ClassProfile> classes = pop.classes;
  if (classes.empty()) classes.push_back(ClassProfile{});
  const double pop_mean = result.aggregate.mean_response_time();
  const uint64_t num_disks = result.aggregate.served_per_disk().size();
  std::vector<ClientMetrics> per_class(classes.size(),
                                       ClientMetrics(num_disks));
  std::vector<uint64_t> class_counts(classes.size(), 0);
  for (uint64_t c = 0; c < n; ++c) {
    const uint32_t k = ClassOfClient(c, n, classes);
    per_class[k].Merge(result.per_client[c]);
    ++class_counts[k];
  }
  double worst_p99 = 0.0;
  double stretch_max = 0.0;
  for (size_t k = 0; k < classes.size(); ++k) {
    const obs::HistogramSummary rt =
        per_class[k].response_histogram().Summary();
    const double mean = per_class[k].mean_response_time();
    const double stretch = pop_mean > 0.0 ? mean / pop_mean : 0.0;
    const std::string prefix =
        "class" + std::to_string(k) + "_" + classes[k].name + "_";
    report->extra.emplace_back(prefix + "clients",
                               static_cast<double>(class_counts[k]));
    report->extra.emplace_back(prefix + "mean_rt", mean);
    report->extra.emplace_back(prefix + "rt_p50", rt.p50);
    report->extra.emplace_back(prefix + "rt_p90", rt.p90);
    report->extra.emplace_back(prefix + "rt_p99", rt.p99);
    report->extra.emplace_back(prefix + "rt_max", rt.max);
    report->extra.emplace_back(prefix + "stretch", stretch);
    worst_p99 = std::max(worst_p99, rt.p99);
    stretch_max = std::max(stretch_max, stretch);
  }
  report->extra.emplace_back("pop_worst_class_p99", worst_p99);
  report->extra.emplace_back("pop_stretch_max", stretch_max);
}

}  // namespace bcast::pop
