#include "pop/pop_params.h"

#include <cstdlib>

#include "common/string_util.h"

namespace bcast::pop {
namespace {

Result<double> ParseScale(const std::string& field, const char* what,
                          double fallback) {
  if (field.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument(std::string("class profile: bad ") +
                                   what + " '" + field + "'");
  }
  return v;
}

}  // namespace

Status PopParams::Validate() const {
  if (clients == 0) {
    return Status::InvalidArgument("population needs at least one client");
  }
  if (shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  double total_fraction = 0.0;
  for (const ClassProfile& cls : classes) {
    if (cls.name.empty()) {
      return Status::InvalidArgument("class profile needs a name");
    }
    if (cls.fraction <= 0.0 || cls.fraction > 1.0) {
      return Status::InvalidArgument("class '" + cls.name +
                                     "': fraction must be in (0, 1]");
    }
    if (cls.loss_scale < 0.0) {
      return Status::InvalidArgument("class '" + cls.name +
                                     "': loss_scale must be >= 0");
    }
    if (cls.doze_scale < 0.0) {
      return Status::InvalidArgument("class '" + cls.name +
                                     "': doze_scale must be >= 0");
    }
    total_fraction += cls.fraction;
  }
  if (total_fraction > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "class profile fractions must sum to at most 1");
  }
  return Status::OK();
}

Result<std::vector<ClassProfile>> ParseClassProfiles(
    const std::string& spec) {
  std::vector<ClassProfile> classes;
  if (spec.empty()) return classes;
  for (const std::string& entry : Split(spec, ',')) {
    const std::vector<std::string> fields = Split(entry, ':');
    if (fields.empty() || fields[0].empty() || fields.size() > 4) {
      return Status::InvalidArgument(
          "class profile entry must be name:fraction[:loss[:doze]]: '" +
          entry + "'");
    }
    ClassProfile cls;
    cls.name = fields[0];
    Result<double> fraction = ParseScale(
        fields.size() > 1 ? fields[1] : "", "fraction", 1.0);
    if (!fraction.ok()) return fraction.status();
    cls.fraction = *fraction;
    Result<double> loss =
        ParseScale(fields.size() > 2 ? fields[2] : "", "loss_scale", 1.0);
    if (!loss.ok()) return loss.status();
    cls.loss_scale = *loss;
    Result<double> doze =
        ParseScale(fields.size() > 3 ? fields[3] : "", "doze_scale", 1.0);
    if (!doze.ok()) return doze.status();
    cls.doze_scale = *doze;
    classes.push_back(cls);
  }
  return classes;
}

uint32_t ClassOfClient(uint64_t c, uint64_t clients,
                       const std::vector<ClassProfile>& classes) {
  if (classes.empty() || clients == 0) return 0;
  // Contiguous ranges: class k covers [round(cum_{k-1} * N),
  // round(cum_k * N)); the remainder of fractions summing below 1
  // joins the last class.
  double cum = 0.0;
  for (size_t k = 0; k + 1 < classes.size(); ++k) {
    cum += classes[k].fraction;
    const uint64_t end = static_cast<uint64_t>(
        cum * static_cast<double>(clients) + 0.5);
    if (c < end) return static_cast<uint32_t>(k);
  }
  return static_cast<uint32_t>(classes.size() - 1);
}

uint64_t ShardBegin(uint64_t s, uint64_t shards, uint64_t clients) {
  if (shards == 0) return 0;
  // Contiguous blocks: shard s owns floor(s*N/K) .. floor((s+1)*N/K).
  return (s * clients) / shards;
}

}  // namespace bcast::pop
