#include "pop/client_store.h"

#include "common/logging.h"

namespace bcast::pop {

ClientStore::ClientStore(uint64_t clients, uint64_t shards,
                         const std::vector<ClassProfile>& classes,
                         bool need_pull, bool need_cold)
    : clients_(clients), shards_(shards) {
  BCAST_CHECK(clients > 0 && shards > 0 && shards <= clients);
  class_of_.resize(clients);
  for (uint64_t c = 0; c < clients; ++c) {
    class_of_[c] = ClassOfClient(c, clients, classes);
  }
  if (need_pull) pull_blocks_ = std::vector<ClientPullBlock>(clients);
  if (need_cold) cold_blocks_ = std::vector<ClientColdBlock>(clients);
}

uint64_t ClientStore::ShardOf(uint64_t c) const {
  // Blocks are floor(s*N/K)-bounded, so the owner is found directly.
  uint64_t s = (c * shards_) / clients_;
  while (ShardBeginOf(s) > c) --s;
  while (ShardEndOf(s) <= c) ++s;
  return s;
}

void ClientStore::MergePullStats(pull::PullStats* total) const {
  for (const ClientPullBlock& block : pull_blocks_) {
    total->push_deliveries += block.stats.push_deliveries;
    total->pull_latency.Merge(block.stats.pull_latency);
    total->push_latency.Merge(block.stats.push_latency);
    total->cold_wait.Merge(block.stats.cold_wait);
  }
}

void ClientStore::MergeColdWait(obs::LogHistogram* total) const {
  for (const ClientColdBlock& block : cold_blocks_) {
    total->Merge(block.wait);
  }
}

void ApplyClassProfiles(const std::vector<ClassProfile>& classes,
                        std::vector<ClientSpec>* specs) {
  if (classes.empty()) return;
  for (size_t c = 0; c < specs->size(); ++c) {
    const uint32_t k = ClassOfClient(c, specs->size(), classes);
    ClientSpec& spec = (*specs)[c];
    spec.class_id = k;
    spec.loss_scale = classes[k].loss_scale;
    spec.doze_scale = classes[k].doze_scale;
  }
}

}  // namespace bcast::pop
