#include "pop/pull_hub.h"

#include <algorithm>

namespace bcast::pop {

void ShardPullHub::RemoveWaiter(PageId page, pull::PullSink* sink) {
  auto it = waiters_.find(page);
  if (it == waiters_.end()) return;
  std::vector<pull::PullSink*>& sinks = it->second;
  sinks.erase(std::remove(sinks.begin(), sinks.end(), sink), sinks.end());
  if (sinks.empty()) waiters_.erase(it);
}

void ShardPullHub::Deliver(PageId page, double end) {
  auto it = waiters_.find(page);
  if (it == waiters_.end()) return;
  // Detach the list first: consuming sinks resume client coroutines,
  // which may register new waiters (for other pages) re-entrantly.
  std::vector<pull::PullSink*> sinks = std::move(it->second);
  waiters_.erase(it);
  for (pull::PullSink* sink : sinks) {
    if (sink->OnPullDelivery(end)) {
      ++pull_deliveries_;
    } else {
      // This receiver could not hear the pull slot (doze/loss/corrupt);
      // it keeps waiting and stays eligible for a later pull.
      waiters_[page].push_back(sink);
    }
  }
}

pull::PullTransport ShardPullHub::MakeTransport(uint64_t client_id,
                                                pull::PullStats* stats) {
  pull::PullTransport transport;
  transport.enabled = enabled_;
  transport.submit = [this, client_id](PageId page, double now,
                                       bool re_request) {
    queue_.Push(UplinkMsg{now, client_id, page, re_request});
  };
  transport.service_interval = [this]() { return service_interval_; };
  transport.stats = stats;
  return transport;
}

}  // namespace bcast::pop
