#include "client/access_generator.h"

namespace bcast {

Result<AccessGenerator> AccessGenerator::Make(uint64_t access_range,
                                              uint64_t region_size,
                                              double theta, double think_time,
                                              ThinkTimeKind kind, Rng rng) {
  if (think_time < 0.0) {
    return Status::InvalidArgument("think_time must be >= 0");
  }
  Result<RegionZipfGenerator> zipf =
      RegionZipfGenerator::Make(access_range, region_size, theta);
  if (!zipf.ok()) return zipf.status();
  return AccessGenerator(std::move(*zipf), think_time, kind, rng);
}

double AccessGenerator::NextThinkTime() {
  switch (kind_) {
    case ThinkTimeKind::kFixed:
      return think_time_;
    case ThinkTimeKind::kExponential:
      return think_time_ > 0.0 ? rng_.NextExponential(think_time_) : 0.0;
  }
  return think_time_;
}

}  // namespace bcast
