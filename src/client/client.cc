#include "client/client.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/timeline.h"
#include "pull/pull_client.h"

namespace bcast {

Client::Client(des::Simulation* sim, BroadcastChannel* channel,
               CachePolicy* cache, RequestSource* gen,
               const Mapping* mapping, ClientRunConfig config)
    : sim_(sim),
      channel_(channel),
      cache_(cache),
      gen_(gen),
      mapping_(mapping),
      config_(config),
      metrics_(channel->program().num_disks()) {
  BCAST_CHECK(sim != nullptr);
  BCAST_CHECK(channel != nullptr);
  BCAST_CHECK(cache != nullptr);
  BCAST_CHECK(gen != nullptr);
  BCAST_CHECK(mapping != nullptr);
  BCAST_CHECK_GE(mapping->num_pages(), gen->access_range())
      << "client would request pages outside the broadcast";
  if (config_.trace != nullptr || BCAST_TIMELINE_PTR(sim_) != nullptr) {
    // Capture eviction victims for the trace and the timeline; the
    // callback stays unset — and the eviction path branch-free — when
    // neither observer is attached.
    cache_->SetEvictionCallback([this](PageId victim, double score) {
      pending_victim_ = static_cast<int64_t>(victim);
      pending_victim_score_ = score;
      BCAST_TIMELINE(
          BCAST_TIMELINE_PTR(sim_),
          Instant(obs::track::Client(config_.client_id), "evict", "cache",
                  sim_->Now(),
                  {{"victim", static_cast<double>(victim)},
                   {"score", score}}));
    });
  }
}

bool Client::IsColdDisk(DiskIndex disk) const {
  // "Cold" pages live on the slowest disk — the worst-served class under
  // pure push and the one pull service is meant to rescue. A one-disk
  // (flat) program has no cold class.
  const uint64_t num_disks = channel_->program().num_disks();
  return num_disks > 1 && static_cast<uint64_t>(disk) == num_disks - 1;
}

void Client::TraceRequest(double start, PageId logical, bool hit,
                          bool warmup, double wait, int32_t disk) {
  obs::RequestEvent event;
  event.time = start;
  event.page = logical;
  event.hit = hit;
  event.warmup = warmup;
  event.wait_slots = wait;
  event.disk = disk;
  event.victim = pending_victim_;
  event.victim_score = pending_victim_score_;
  event.client = config_.client_id;
  pending_victim_ = -1;
  pending_victim_score_ = 0.0;
  config_.trace->Record(event);
}

des::Process Client::Run() {
  obs::Stopwatch phase_watch;
  [[maybe_unused]] obs::TimelineWriter* const timeline =
      BCAST_TIMELINE_PTR(sim_);
  [[maybe_unused]] const uint32_t tl_track =
      obs::track::Client(config_.client_id);
  BCAST_TIMELINE(timeline, BeginSpan(tl_track, "warmup", "phase",
                                     sim_->Now()));
  // Warm-up: run unrecorded requests until the cache is full. The target
  // is capped by the access range (the cache can never hold more distinct
  // pages than the client requests) and by a request budget.
  const uint64_t fill_target =
      std::min<uint64_t>(cache_->capacity(), gen_->access_range());
  while (cache_->size() < fill_target &&
         warmup_requests_ < config_.max_warmup_requests) {
    if (config_.receiver != nullptr) {
      // A crash during think time surfaces here: apply its state loss
      // and, if the client is still down, sleep until the restart.
      const double up_at = config_.receiver->CrashResume(sim_->Now());
      if (up_at > sim_->Now()) co_await sim_->Delay(up_at - sim_->Now());
    }
    ++warmup_requests_;
    const PageId logical = gen_->NextPage();
    const bool sampled = config_.trace && config_.trace->ShouldSample();
    const double start = sim_->Now();
    if (!cache_->Lookup(logical, start)) {
      const PageId physical = mapping_->ToPhysical(logical);
      if (config_.access != nullptr) config_.access->OnFetch(physical);
      if (config_.pull != nullptr) {
        config_.pull->MaybeRequest(
            physical, start,
            channel_->NextArrivalStart(physical) + 1.0 - start);
      }
      co_await channel_->WaitForPage(physical, config_.receiver);
      cache_->Insert(logical, sim_->Now());
      if (config_.pull != nullptr) {
        const DiskIndex disk = channel_->program().DiskOf(physical);
        config_.pull->OnFetchDone(
            physical, sim_->Now(), sim_->Now() - start,
            channel_->last_wait_via_pull(), /*measured=*/false,
            IsColdDisk(disk));
      }
      if (sampled) {
        TraceRequest(start, logical, /*hit=*/false, /*warmup=*/true,
                     sim_->Now() - start,
                     static_cast<int32_t>(
                         channel_->program().DiskOf(physical)));
      }
    } else if (sampled) {
      TraceRequest(start, logical, /*hit=*/true, /*warmup=*/true, 0.0, -1);
    }
    co_await sim_->Delay(gen_->NextThinkTime());
  }
  warmup_wall_seconds_ = phase_watch.ElapsedSeconds();
  phase_watch.Restart();
  BCAST_TIMELINE(timeline, EndSpan(tl_track, sim_->Now()));
  BCAST_TIMELINE(timeline, BeginSpan(tl_track, "measured", "phase",
                                     sim_->Now()));

  // Measured phase. (Channel-level delivery stats are shared across
  // clients and are NOT reset here; per-client accounting lives in
  // metrics_.)
  for (uint64_t i = 0; i < config_.measured_requests; ++i) {
    if (config_.receiver != nullptr) {
      const double up_at = config_.receiver->CrashResume(sim_->Now());
      if (up_at > sim_->Now()) co_await sim_->Delay(up_at - sim_->Now());
    }
    const PageId logical = gen_->NextPage();
    const bool sampled = config_.trace && config_.trace->ShouldSample();
    const double start = sim_->Now();
    if (cache_->Lookup(logical, start)) {
      metrics_.RecordHit(0.0);
      metrics_.RecordTuning(0.0);
      if (config_.cold_pages != nullptr &&
          (*config_.cold_pages)[mapping_->ToPhysical(logical)]) {
        ++cold_requests_;
        ++cold_hits_;
      }
      if (sampled) {
        TraceRequest(start, logical, /*hit=*/true, /*warmup=*/false, 0.0,
                     -1);
      }
    } else {
      const PageId physical = mapping_->ToPhysical(logical);
      if (config_.access != nullptr) config_.access->OnFetch(physical);
      if (config_.pull != nullptr) {
        config_.pull->MaybeRequest(
            physical, start,
            channel_->NextArrivalStart(physical) + 1.0 - start);
      }
      co_await channel_->WaitForPage(physical, config_.receiver);
      const double wait = sim_->Now() - start;
      cache_->Insert(logical, sim_->Now());
      const DiskIndex disk = channel_->program().DiskOf(physical);
      if (config_.pull != nullptr) {
        config_.pull->OnFetchDone(physical, sim_->Now(), wait,
                                  channel_->last_wait_via_pull(),
                                  /*measured=*/true, IsColdDisk(disk));
      }
      metrics_.RecordMiss(wait, disk);
      BCAST_TIMELINE(timeline,
                     Span(tl_track, "miss_wait", "client", start, wait,
                          {{"page", static_cast<double>(logical)},
                           {"disk", static_cast<double>(disk)}}));
      if (config_.cold_pages != nullptr && (*config_.cold_pages)[physical]) {
        ++cold_requests_;
        if (config_.cold_wait != nullptr) config_.cold_wait->Add(wait);
      }
      // Radio accounting: with a known schedule the client sleeps until
      // the page's slot and listens one slot per reception attempt;
      // otherwise the radio is on for the whole wait, minus any backoff
      // or doze time the receiver spent with the radio off.
      if (config_.receiver != nullptr) {
        metrics_.RecordTuning(
            config_.knows_schedule
                ? static_cast<double>(config_.receiver->last_wait_attempts())
                : std::max(0.0,
                           wait - config_.receiver->last_wait_radio_off()));
      } else {
        metrics_.RecordTuning(config_.knows_schedule ? 1.0 : wait);
      }
      if (sampled) {
        TraceRequest(start, logical, /*hit=*/false, /*warmup=*/false, wait,
                     static_cast<int32_t>(disk));
      }
    }
    co_await sim_->Delay(gen_->NextThinkTime());
  }
  measured_wall_seconds_ = phase_watch.ElapsedSeconds();
  BCAST_TIMELINE(timeline, EndSpan(tl_track, sim_->Now()));
  finished_ = true;
}

}  // namespace bcast
