#include "client/client.h"

#include <algorithm>

#include "common/logging.h"

namespace bcast {

Client::Client(des::Simulation* sim, BroadcastChannel* channel,
               CachePolicy* cache, RequestSource* gen,
               const Mapping* mapping, ClientRunConfig config)
    : sim_(sim),
      channel_(channel),
      cache_(cache),
      gen_(gen),
      mapping_(mapping),
      config_(config),
      metrics_(channel->program().num_disks()) {
  BCAST_CHECK(sim != nullptr);
  BCAST_CHECK(channel != nullptr);
  BCAST_CHECK(cache != nullptr);
  BCAST_CHECK(gen != nullptr);
  BCAST_CHECK(mapping != nullptr);
  BCAST_CHECK_GE(mapping->num_pages(), gen->access_range())
      << "client would request pages outside the broadcast";
}

des::Process Client::Run() {
  // Warm-up: run unrecorded requests until the cache is full. The target
  // is capped by the access range (the cache can never hold more distinct
  // pages than the client requests) and by a request budget.
  const uint64_t fill_target =
      std::min<uint64_t>(cache_->capacity(), gen_->access_range());
  while (cache_->size() < fill_target &&
         warmup_requests_ < config_.max_warmup_requests) {
    ++warmup_requests_;
    const PageId logical = gen_->NextPage();
    if (!cache_->Lookup(logical, sim_->Now())) {
      const PageId physical = mapping_->ToPhysical(logical);
      co_await channel_->WaitForPage(physical);
      cache_->Insert(logical, sim_->Now());
    }
    co_await sim_->Delay(gen_->NextThinkTime());
  }

  // Measured phase. (Channel-level delivery stats are shared across
  // clients and are NOT reset here; per-client accounting lives in
  // metrics_.)
  for (uint64_t i = 0; i < config_.measured_requests; ++i) {
    const PageId logical = gen_->NextPage();
    const double start = sim_->Now();
    if (cache_->Lookup(logical, start)) {
      metrics_.RecordHit(0.0);
      metrics_.RecordTuning(0.0);
    } else {
      const PageId physical = mapping_->ToPhysical(logical);
      co_await channel_->WaitForPage(physical);
      const double wait = sim_->Now() - start;
      cache_->Insert(logical, sim_->Now());
      metrics_.RecordMiss(wait, channel_->program().DiskOf(physical));
      // Radio accounting: with a known schedule the client sleeps until
      // the page's slot and listens for exactly one slot; otherwise the
      // radio is on for the whole wait.
      metrics_.RecordTuning(config_.knows_schedule ? 1.0 : wait);
    }
    co_await sim_->Delay(gen_->NextThinkTime());
  }
  finished_ = true;
}

}  // namespace bcast
