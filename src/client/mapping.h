/// \file mapping.h
/// \brief The logical→physical page mapping with Offset and Noise
/// (paper Section 4.2, Figure 4).
///
/// The client requests *logical* pages (0 = its hottest); the server
/// broadcasts *physical* pages (0 = first page of the fastest disk). The
/// mapping between them is how the simulation models broadcasts that are
/// tuned toward, or away from, this client without simulating other
/// clients:
///
///  - **Offset** shifts the mapping so the client's `offset` hottest pages
///    land at the *end of the slowest disk* and colder pages move up to
///    the faster disks. With a caching client, `offset = CacheSize` frees
///    the fastest disk for the pages the client cannot hold.
///  - **Noise** is the percentage chance, per page, that its mapping is
///    exchanged with a page on a uniformly chosen disk — modelling clients
///    whose needs the server only partially serves. A swap can land on the
///    page's own disk (no steady-state effect), so Noise is an upper bound
///    on actual mismatch.

#ifndef BCAST_CLIENT_MAPPING_H_
#define BCAST_CLIENT_MAPPING_H_

#include <cstdint>
#include <vector>

#include "broadcast/disk_config.h"
#include "broadcast/types.h"
#include "common/rng.h"
#include "common/status.h"

namespace bcast {

/// \brief The Noise perturbation model (Section 4.2, step 3).
///
/// For each participating logical page, a coin weighted by `percent` is
/// tossed; on success the page's mapping is exchanged with a page at a
/// randomly chosen destination. Two knobs cover the paper's (slightly
/// ambiguous) prose:
///  - `coin_pages`: 0 = every page in the mapping (the literal wording);
///    n = only logical pages [0, n), e.g. the client's AccessRange — the
///    pages whose placement matters to the modelled client. Swap targets
///    may still be any page. See DESIGN.md for why AccessRange scope best
///    reproduces Figures 9-10.
///  - `destination`: the paper says "a disk d is uniformly chosen to be
///    its new destination"; `kUniformPage` (uniform over slots, i.e.
///    disks weighted by size) is kept as an ablation alternative.
struct NoiseModel {
  /// Per-page swap probability, in percent [0, 100].
  double percent = 0.0;

  /// Pages participating in the coin toss; 0 = all.
  uint64_t coin_pages = 0;

  /// How the swap destination is drawn.
  enum class Destination {
    kUniformDisk,  ///< Disk uniform, then slot uniform within it (paper).
    kUniformPage,  ///< Slot uniform over the whole database.
  };
  Destination destination = Destination::kUniformDisk;
};

/// \brief An invertible logical↔physical page permutation.
class Mapping {
 public:
  /// Builds the paper's mapping: identity, shifted by \p offset, then
  /// perturbed by \p noise.
  ///
  /// \param layout The broadcast layout (defines disk boundaries for
  ///               noise-swap destinations; its total page count is the
  ///               mapping's domain).
  /// \param offset Pages to rotate (0 <= offset <= total pages).
  /// \param noise  The perturbation model.
  /// \param rng    RNG consumed by the noise swaps only; the result is
  ///               deterministic in it.
  static Result<Mapping> Make(const DiskLayout& layout, uint64_t offset,
                              NoiseModel noise, Rng rng);

  /// Convenience overload: bare noise percentage, default scope and
  /// destination.
  static Result<Mapping> Make(const DiskLayout& layout, uint64_t offset,
                              double noise_percent, Rng rng) {
    return Make(layout, offset, NoiseModel{noise_percent, 0,
                                           NoiseModel::Destination::
                                               kUniformDisk},
                rng);
  }

  /// Identity mapping over \p num_pages pages (for flat programs/tests).
  static Mapping Identity(PageId num_pages);

  /// Number of pages in the mapping's domain.
  PageId num_pages() const {
    return static_cast<PageId>(to_physical_.size());
  }

  /// Physical page that logical \p page maps to.
  PageId ToPhysical(PageId page) const { return to_physical_[page]; }

  /// Logical page that physical \p page maps to.
  PageId ToLogical(PageId page) const { return to_logical_[page]; }

  /// Number of logical pages whose physical image differs from the pure
  /// offset mapping — the *actual* mismatch that Noise produced.
  uint64_t PerturbedPages() const;

 private:
  Mapping(std::vector<PageId> to_physical, std::vector<PageId> to_logical,
          std::vector<PageId> offset_only)
      : to_physical_(std::move(to_physical)),
        to_logical_(std::move(to_logical)),
        offset_only_(std::move(offset_only)) {}

  std::vector<PageId> to_physical_;
  std::vector<PageId> to_logical_;
  std::vector<PageId> offset_only_;  // pre-noise mapping, for PerturbedPages
};

}  // namespace bcast

#endif  // BCAST_CLIENT_MAPPING_H_
