#include "client/prefetch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bcast {

PrefetchClient::PrefetchClient(des::Simulation* sim,
                               BroadcastChannel* channel,
                               RequestSource* gen, const Mapping* mapping,
                               uint64_t capacity,
                               PrefetchClientConfig config)
    : sim_(sim),
      channel_(channel),
      gen_(gen),
      mapping_(mapping),
      capacity_(capacity),
      config_(config),
      metrics_(channel->program().num_disks()),
      cached_(mapping->num_pages(), false) {
  BCAST_CHECK_GE(capacity, 1u);
  resident_.reserve(capacity);
}

double PrefetchClient::PtValue(PageId page, double now) const {
  const PageId physical = mapping_->ToPhysical(page);
  const double next = channel_->program().NextArrivalStart(physical, now);
  return gen_->Probability(page) * (next - now);
}

bool PrefetchClient::TagTeamAdmit(PageId page, double now) {
  if (cached_[page]) return false;
  if (gen_->Probability(page) <= 0.0) return false;
  if (resident_.size() < capacity_) {
    cached_[page] = true;
    resident_.push_back(page);
    return true;
  }
  // Find the resident page whose absence would cost the least right now.
  size_t min_idx = 0;
  double min_pt = PtValue(resident_[0], now);
  for (size_t i = 1; i < resident_.size(); ++i) {
    const double pt = PtValue(resident_[i], now);
    if (pt < min_pt) {
      min_pt = pt;
      min_idx = i;
    }
  }
  // The newcomer was just broadcast, so its own next arrival is a full gap
  // away; admit it only if that makes it more valuable than the victim.
  if (PtValue(page, now) <= min_pt) return false;
  cached_[resident_[min_idx]] = false;
  resident_[min_idx] = page;
  cached_[page] = true;
  return true;
}

des::Process PrefetchClient::RunRequests() {
  // Warm-up (the monitor fills the cache as pages fly by; demand misses
  // contribute too).
  uint64_t warmed = 0;
  const uint64_t fill_target = std::min<uint64_t>(
      capacity_, gen_->access_range());
  while (resident_.size() < fill_target &&
         warmed < config_.max_warmup_requests) {
    ++warmed;
    const PageId logical = gen_->NextPage();
    if (!cached_[logical]) {
      co_await channel_->WaitForPage(mapping_->ToPhysical(logical));
      TagTeamAdmit(logical, sim_->Now());
    }
    co_await sim_->Delay(gen_->NextThinkTime());
  }

  for (uint64_t i = 0; i < config_.measured_requests; ++i) {
    const PageId logical = gen_->NextPage();
    const double start = sim_->Now();
    if (cached_[logical]) {
      metrics_.RecordHit(0.0);
    } else {
      const PageId physical = mapping_->ToPhysical(logical);
      co_await channel_->WaitForPage(physical);
      TagTeamAdmit(logical, sim_->Now());
      metrics_.RecordMiss(sim_->Now() - start,
                          channel_->program().DiskOf(physical));
    }
    co_await sim_->Delay(gen_->NextThinkTime());
  }
  requests_done_ = true;
}

des::Process PrefetchClient::RunMonitor() {
  const BroadcastProgram& program = channel_->program();
  // Wake at every integer time t: the page of slot (t-1) mod period has
  // just finished transmitting and can be taken off the air for free.
  co_await sim_->Delay(1.0 - std::fmod(sim_->Now(), 1.0));
  while (!requests_done_) {
    const double now = sim_->Now();
    const uint64_t completed_slot = static_cast<uint64_t>(
        std::llround(now - 1.0)) % program.period();
    const PageId physical = program.page_at(completed_slot);
    if (physical != kEmptySlot) {
      TagTeamAdmit(mapping_->ToLogical(physical), now);
    }
    co_await sim_->Delay(1.0);
  }
}

}  // namespace bcast
