/// \file access_generator.h
/// \brief The client's request stream: region-Zipf page selection plus a
/// think-time model (paper Table 2 / Section 4.1).

#ifndef BCAST_CLIENT_ACCESS_GENERATOR_H_
#define BCAST_CLIENT_ACCESS_GENERATOR_H_

#include <cstdint>

#include "broadcast/types.h"
#include "client/request_source.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"

namespace bcast {

/// \brief How the ThinkTime pause between requests is drawn.
enum class ThinkTimeKind {
  kFixed,        ///< Every pause is exactly `think_time` (the paper's model).
  kExponential,  ///< Exponential with mean `think_time` (extension; breaks
                 ///< the lock-step alignment of requests to slot starts).
};

/// \brief Generates the client's logical page requests and think times.
///
/// Logical pages [0, access_range) are requested with region-Zipf
/// probabilities (page 0 hottest); pages outside the range have zero
/// probability (they model the rest of a larger broadcast serving other
/// clients).
class AccessGenerator : public RequestSource {
 public:
  /// \param access_range Pages the client ever requests.
  /// \param region_size  Pages per Zipf region.
  /// \param theta        Zipf skew (0 = uniform).
  /// \param think_time   Mean pause between requests, in broadcast units.
  /// \param kind         Think-time distribution.
  /// \param rng          Request-stream RNG (owned; pass a dedicated
  ///                     sub-stream so other randomness does not disturb
  ///                     the request sequence).
  static Result<AccessGenerator> Make(uint64_t access_range,
                                      uint64_t region_size, double theta,
                                      double think_time, ThinkTimeKind kind,
                                      Rng rng);

  /// Draws the next logical page to request.
  PageId NextPage() override {
    return static_cast<PageId>(zipf_.Sample(&rng_));
  }

  /// Draws the next think-time pause.
  double NextThinkTime() override;

  /// Exact access probability of logical \p page (0 outside the range).
  double Probability(PageId page) const override {
    return zipf_.Probability(page);
  }

  /// Number of pages with non-zero probability.
  uint64_t access_range() const override { return zipf_.access_range(); }

 private:
  AccessGenerator(RegionZipfGenerator zipf, double think_time,
                  ThinkTimeKind kind, Rng rng)
      : zipf_(std::move(zipf)),
        think_time_(think_time),
        kind_(kind),
        rng_(rng) {}

  RegionZipfGenerator zipf_;
  double think_time_;
  ThinkTimeKind kind_;
  Rng rng_;
};

}  // namespace bcast

#endif  // BCAST_CLIENT_ACCESS_GENERATOR_H_
