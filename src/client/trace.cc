#include "client/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace bcast {
namespace {
constexpr char kMagic[] = "bcast-trace v1";
}  // namespace

Result<Trace> Trace::Make(std::vector<PageId> pages, double think_time) {
  if (pages.empty()) {
    return Status::InvalidArgument("trace must contain requests");
  }
  if (think_time < 0.0 || !std::isfinite(think_time)) {
    return Status::InvalidArgument("think_time must be finite and >= 0");
  }
  PageId max_page = 0;
  for (PageId p : pages) {
    if (p == kEmptySlot) {
      return Status::InvalidArgument("trace contains an invalid page id");
    }
    max_page = std::max(max_page, p);
  }
  return Trace(std::move(pages), think_time, uint64_t{max_page} + 1);
}

Result<Trace> Trace::Record(RequestSource* source, uint64_t count) {
  BCAST_CHECK(source != nullptr);
  if (count == 0) {
    return Status::InvalidArgument("cannot record an empty trace");
  }
  std::vector<PageId> pages;
  pages.reserve(count);
  double think = 0.0;
  for (uint64_t i = 0; i < count; ++i) {
    pages.push_back(source->NextPage());
    think += source->NextThinkTime();
  }
  return Make(std::move(pages), think / static_cast<double>(count));
}

Status Trace::Save(std::ostream* out) const {
  BCAST_CHECK(out != nullptr);
  *out << kMagic << "\n";
  *out << "requests " << pages_.size() << " think " << think_time_ << "\n";
  *out << "pages";
  for (PageId p : pages_) *out << ' ' << p;
  *out << "\nend\n";
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<Trace> Trace::Load(std::istream* in) {
  BCAST_CHECK(in != nullptr);
  std::string line;
  if (!std::getline(*in, line) || line != kMagic) {
    return Status::InvalidArgument("expected header '" +
                                   std::string(kMagic) + "'");
  }
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("missing size line");
  }
  uint64_t count = 0;
  double think = 0.0;
  {
    std::istringstream sizes(line);
    std::string k1, k2;
    if (!(sizes >> k1 >> count >> k2 >> think) || k1 != "requests" ||
        k2 != "think") {
      return Status::InvalidArgument("expected 'requests N think T'");
    }
  }
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("missing pages line");
  }
  std::vector<PageId> pages;
  pages.reserve(count);
  {
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    if (keyword != "pages") {
      return Status::InvalidArgument("expected 'pages'");
    }
    uint64_t id = 0;
    while (tokens >> id) {
      if (id >= kEmptySlot) {
        return Status::InvalidArgument("page id out of range");
      }
      pages.push_back(static_cast<PageId>(id));
    }
  }
  if (pages.size() != count) {
    return Status::InvalidArgument(
        "declared " + std::to_string(count) + " requests, found " +
        std::to_string(pages.size()));
  }
  if (!std::getline(*in, line) || line != "end") {
    return Status::InvalidArgument("expected 'end'");
  }
  return Make(std::move(pages), think);
}

std::vector<double> Trace::EmpiricalProbabilities() const {
  std::vector<double> probs(access_range_, 0.0);
  const double weight = 1.0 / static_cast<double>(pages_.size());
  for (PageId p : pages_) probs[p] += weight;
  return probs;
}

TraceSource::TraceSource(const Trace* trace)
    : trace_(trace), empirical_(trace->EmpiricalProbabilities()) {
  BCAST_CHECK(trace != nullptr);
}

PageId TraceSource::NextPage() {
  const PageId page = trace_->pages()[cursor_];
  cursor_ = (cursor_ + 1) % trace_->size();
  ++replayed_;
  return page;
}

double TraceSource::Probability(PageId page) const {
  if (page >= empirical_.size()) return 0.0;
  return empirical_[page];
}

}  // namespace bcast
