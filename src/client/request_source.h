/// \file request_source.h
/// \brief The interface between the client loop and its workload.
///
/// The paper's study uses a synthetic region-Zipf stream
/// (`AccessGenerator`); real deployments replay captured traces
/// (`TraceSource` in trace.h). Both implement this interface, so every
/// runner (simulator, multi-client, updates) works with either.

#ifndef BCAST_CLIENT_REQUEST_SOURCE_H_
#define BCAST_CLIENT_REQUEST_SOURCE_H_

#include <cstdint>

#include "broadcast/types.h"

namespace bcast {

/// \brief A stream of client page requests with think-time pacing and a
/// probability model (used by the idealized P/PIX policies and the
/// analytic machinery).
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// The next logical page to request.
  virtual PageId NextPage() = 0;

  /// The pause before the next request, in broadcast units.
  virtual double NextThinkTime() = 0;

  /// Probability that a given request is for \p page (exact for
  /// synthetic sources, empirical for traces); 0 outside the source's
  /// range.
  virtual double Probability(PageId page) const = 0;

  /// One past the largest page id this source can request.
  virtual uint64_t access_range() const = 0;
};

}  // namespace bcast

#endif  // BCAST_CLIENT_REQUEST_SOURCE_H_
