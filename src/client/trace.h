/// \file trace.h
/// \brief Request traces: record, persist, and replay client workloads.
///
/// A trace captures the exact page-request sequence of a client, so
/// experiments can be repeated bit-for-bit, compared across systems, or
/// driven from captured real-world workloads instead of the synthetic
/// Zipf model. The text format is versioned:
///
///     bcast-trace v1
///     requests <count> think <mean>
///     pages <id ...>
///     end
///
/// `TraceSource` replays a trace through the standard `RequestSource`
/// interface; its `Probability` is the trace's empirical page frequency,
/// which is exactly what the idealized P/PIX policies should use when no
/// ground-truth distribution exists.

#ifndef BCAST_CLIENT_TRACE_H_
#define BCAST_CLIENT_TRACE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "client/request_source.h"
#include "common/status.h"

namespace bcast {

/// \brief An immutable recorded request sequence.
class Trace {
 public:
  /// Builds a trace from a request sequence; \p think_time is the fixed
  /// pacing to use on replay. Fails on an empty sequence or negative
  /// think time.
  static Result<Trace> Make(std::vector<PageId> pages, double think_time);

  /// Records \p count requests from \p source (consuming its stream).
  static Result<Trace> Record(RequestSource* source, uint64_t count);

  /// Parses the v1 text format.
  static Result<Trace> Load(std::istream* in);

  /// Writes the v1 text format.
  Status Save(std::ostream* out) const;

  /// The recorded requests, in order.
  const std::vector<PageId>& pages() const { return pages_; }

  /// Requests in the trace.
  uint64_t size() const { return pages_.size(); }

  /// Fixed think time used on replay.
  double think_time() const { return think_time_; }

  /// One past the largest requested page id.
  uint64_t access_range() const { return access_range_; }

  /// Empirical request probability of each page in [0, access_range).
  std::vector<double> EmpiricalProbabilities() const;

 private:
  Trace(std::vector<PageId> pages, double think_time,
        uint64_t access_range)
      : pages_(std::move(pages)),
        think_time_(think_time),
        access_range_(access_range) {}

  std::vector<PageId> pages_;
  double think_time_;
  uint64_t access_range_;
};

/// \brief Replays a `Trace` as a `RequestSource`, cycling when the trace
/// is shorter than the run.
class TraceSource : public RequestSource {
 public:
  /// \param trace Must outlive the source.
  explicit TraceSource(const Trace* trace);

  PageId NextPage() override;
  double NextThinkTime() override { return trace_->think_time(); }
  double Probability(PageId page) const override;
  uint64_t access_range() const override { return trace_->access_range(); }

  /// How many requests have been replayed (including repeats).
  uint64_t replayed() const { return replayed_; }

  /// True once the cursor has wrapped at least once.
  bool wrapped() const { return replayed_ > trace_->size(); }

 private:
  const Trace* trace_;
  std::vector<double> empirical_;
  uint64_t cursor_ = 0;
  uint64_t replayed_ = 0;
};

}  // namespace bcast

#endif  // BCAST_CLIENT_TRACE_H_
