/// \file client.h
/// \brief The client process: the paper's Section 4.1 execution model.
///
/// The client loops forever: draw a logical page from its access
/// distribution; probe the cache; on a miss, tune in to the broadcast and
/// wait for the page's physical image, then offer it to the replacement
/// policy; finally "think" for ThinkTime broadcast units and repeat.
///
/// Measurement protocol (Section 5): warm-up runs until the cache is full
/// (bounded by a safety cap), statistics are then reset and exactly
/// `measured_requests` further requests are recorded.

#ifndef BCAST_CLIENT_CLIENT_H_
#define BCAST_CLIENT_CLIENT_H_

#include <cstdint>
#include <vector>

#include "adapt/access_monitor.h"
#include "broadcast/channel.h"
#include "cache/cache_policy.h"
#include "client/access_generator.h"
#include "client/request_source.h"
#include "client/mapping.h"
#include "core/metrics.h"
#include "des/simulation.h"
#include "obs/histogram.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace bcast {

namespace pull {
class PullClient;
}  // namespace pull

/// \brief Run-control knobs for one client.
struct ClientRunConfig {
  /// Requests recorded after warm-up.
  uint64_t measured_requests = 100000;

  /// Warm-up safety cap: stop warming even if the cache never fills
  /// (e.g. capacity > AccessRange).
  uint64_t max_warmup_requests = 2000000;

  /// Whether the client knows the (static) broadcast schedule — e.g. via
  /// a ScheduleLearner or out-of-band. Affects only the tuning-time
  /// metric: a knowing client dozes until its page's slot (1 slot of
  /// radio-on per miss); an ignorant one listens for the whole wait.
  bool knows_schedule = false;

  /// Optional sampled per-request trace sink (unowned; must outlive the
  /// run). nullptr — the default — keeps the request loop free of any
  /// observability work beyond one pointer test.
  obs::TraceSink* trace = nullptr;

  /// Optional unreliable-channel receiver (unowned; must outlive the
  /// run). nullptr — the default — waits on the ideal channel,
  /// bit-identical to the pre-fault client.
  fault::Receiver* receiver = nullptr;

  /// Optional hybrid pull requester (unowned; must outlive the run).
  /// nullptr — the default — never touches the backchannel,
  /// bit-identical to the pure-push client.
  pull::PullClient* pull = nullptr;

  /// Optional per-page demand monitor (unowned; must outlive the run).
  /// When set, every broadcast fetch — warm-up and measured — reports
  /// its physical page, feeding `--adapt_reopt`'s measured-frequency
  /// re-seating. nullptr — the default — adds no per-miss work.
  adapt::AccessMonitor* access = nullptr;

  /// Optional cold-page set, indexed by *physical* page and pinned to
  /// the initial program (unowned; must outlive the run). When set, the
  /// client counts measured-phase requests and hits against this fixed
  /// set — the class the adaptive gates compare across runs, immune to
  /// the controller re-seating pages mid-run. nullptr — the default —
  /// adds no per-request work.
  const std::vector<bool>* cold_pages = nullptr;

  /// Optional histogram of measured-phase response times of misses on
  /// `cold_pages` (unowned). Feeds the adapt cold-latency gate.
  obs::LogHistogram* cold_wait = nullptr;

  /// This client's index in its population (0 in single-client runs).
  /// Stamped into trace records and selects the timeline track.
  uint32_t client_id = 0;
};

/// \brief A single client workload driving a cache against the broadcast.
///
/// Construct it, then `sim->Spawn(client.Run())`. All referenced objects
/// must outlive the simulation run.
class Client {
 public:
  Client(des::Simulation* sim, BroadcastChannel* channel, CachePolicy* cache,
         RequestSource* gen, const Mapping* mapping, ClientRunConfig config);

  /// The client coroutine; spawn exactly once.
  des::Process Run();

  /// Metrics for the measured phase (valid once the run completes).
  const ClientMetrics& metrics() const { return metrics_; }

  /// Requests spent warming up before measurement began.
  uint64_t warmup_requests() const { return warmup_requests_; }

  /// True once the measured phase has completed.
  bool finished() const { return finished_; }

  /// Measured-phase requests (and cache hits) for pages of the pinned
  /// cold set; both 0 unless `config.cold_pages` was provided.
  uint64_t cold_requests() const { return cold_requests_; }
  uint64_t cold_hits() const { return cold_hits_; }

  /// Wall-clock seconds the event loop spent inside this client's warm-up
  /// and measured phases (attributed from the client's own coroutine;
  /// with several concurrent clients the phases overlap and the numbers
  /// include interleaved work of the others).
  double warmup_wall_seconds() const { return warmup_wall_seconds_; }
  double measured_wall_seconds() const { return measured_wall_seconds_; }

 private:
  /// True when \p disk is the slowest (cold) disk of a multi-disk
  /// program — the class whose latency the pull sweep gate tracks.
  bool IsColdDisk(DiskIndex disk) const;

  /// Records one request into the trace sink if this request was sampled.
  void TraceRequest(double start, PageId logical, bool hit, bool warmup,
                    double wait, int32_t disk);

  des::Simulation* sim_;
  BroadcastChannel* channel_;
  CachePolicy* cache_;
  RequestSource* gen_;
  const Mapping* mapping_;
  ClientRunConfig config_;
  ClientMetrics metrics_;
  uint64_t warmup_requests_ = 0;
  uint64_t cold_requests_ = 0;
  uint64_t cold_hits_ = 0;
  bool finished_ = false;
  double warmup_wall_seconds_ = 0.0;
  double measured_wall_seconds_ = 0.0;

  // Most recent eviction (victim + policy score), captured via the cache's
  // eviction callback while tracing; consumed by the next trace record.
  int64_t pending_victim_ = -1;
  double pending_victim_score_ = 0.0;
};

}  // namespace bcast

#endif  // BCAST_CLIENT_CLIENT_H_
