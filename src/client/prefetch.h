/// \file prefetch.h
/// \brief Opportunistic prefetching from the broadcast (extension).
///
/// Section 7 ("We are currently investigating how prefetching could be
/// introduced into the present scheme. The client cache manager would use
/// the broadcast as a way to opportunistically increase the temperature of
/// its cache.") This module implements the `pt` tag-team heuristic the
/// authors later published: the client listens to *every* page that goes
/// by and values a page as
///
///     pt(page, now) = P(page) * (time until page is next broadcast)
///
/// — the expected cost its absence will cause. A page arriving on the air
/// has just started the longest possible wait until its next broadcast, so
/// its pt is maximal; it displaces the cached page with the *lowest*
/// current pt if it beats it. Demand misses still wait on the broadcast as
/// usual.
///
/// Monitoring every slot makes this client O(simulated time) rather than
/// O(requests); run it at reduced scale (see bench/ablation_prefetch).

#ifndef BCAST_CLIENT_PREFETCH_H_
#define BCAST_CLIENT_PREFETCH_H_

#include <cstdint>
#include <vector>

#include "broadcast/channel.h"
#include "client/access_generator.h"
#include "client/request_source.h"
#include "client/mapping.h"
#include "core/metrics.h"
#include "des/simulation.h"

namespace bcast {

/// \brief Run-control knobs for `PrefetchClient`.
struct PrefetchClientConfig {
  /// Requests recorded after warm-up.
  uint64_t measured_requests = 5000;

  /// Warm-up request cap.
  uint64_t max_warmup_requests = 100000;
};

/// \brief A client that both demands pages and prefetches from the air.
///
/// Spawn *both* coroutines: `sim->Spawn(c.RunRequests());`
/// `sim->Spawn(c.RunMonitor());`. The monitor stops itself once the
/// request loop finishes.
class PrefetchClient {
 public:
  PrefetchClient(des::Simulation* sim, BroadcastChannel* channel,
                 RequestSource* gen, const Mapping* mapping,
                 uint64_t capacity, PrefetchClientConfig config);

  /// The demand request loop (think → request → serve).
  des::Process RunRequests();

  /// The per-slot broadcast monitor performing tag-team replacement.
  des::Process RunMonitor();

  /// Measured-phase metrics.
  const ClientMetrics& metrics() const { return metrics_; }

  /// Pages currently cached.
  uint64_t cache_size() const { return resident_.size(); }

  /// True iff logical \p page is cached (for tests).
  bool Contains(PageId page) const { return cached_[page]; }

  /// The pt value of logical \p page at time \p now.
  double PtValue(PageId page, double now) const;

 private:
  /// Inserts \p page, evicting the minimum-pt resident if full and beaten.
  /// Returns true if the page was admitted.
  bool TagTeamAdmit(PageId page, double now);

  des::Simulation* sim_;
  BroadcastChannel* channel_;
  RequestSource* gen_;
  const Mapping* mapping_;
  uint64_t capacity_;
  PrefetchClientConfig config_;
  ClientMetrics metrics_;
  std::vector<bool> cached_;       // by logical page
  std::vector<PageId> resident_;   // logical pages in cache
  bool requests_done_ = false;
};

}  // namespace bcast

#endif  // BCAST_CLIENT_PREFETCH_H_
