/// \file schedule_learner.h
/// \brief Learning the broadcast program by listening (extension).
///
/// Selective tuning (sleep between the slots you need — the paper's
/// Section-2.1 power argument) requires knowing the schedule. With a
/// static program a client can *learn* it off the air: observe the slot
/// stream, detect its period, and rebuild the program — including which
/// disk each page lives on, because relative frequencies are visible in
/// the learned period.
///
/// Period detection uses the KMP prefix function: after observing a
/// stream S, its smallest weak period is |S| − π(|S|); the learner
/// declares convergence once that candidate is confirmed over at least
/// two full repetitions (candidate ≤ |S|/2). This is exact for genuinely
/// periodic sources: a wrong smaller period cannot survive a window of
/// twice the true period.

#ifndef BCAST_CLIENT_SCHEDULE_LEARNER_H_
#define BCAST_CLIENT_SCHEDULE_LEARNER_H_

#include <cstdint>
#include <vector>

#include "broadcast/program.h"

namespace bcast {

/// \brief Incrementally learns a periodic broadcast program from its
/// observed slot stream.
class ScheduleLearner {
 public:
  ScheduleLearner() = default;

  /// Feeds one observed slot (use `kEmptySlot` for an empty slot).
  /// Amortized O(1).
  void Observe(PageId page);

  /// Slots observed so far.
  uint64_t observed() const { return stream_.size(); }

  /// The current smallest candidate period (0 before any observation).
  uint64_t CandidatePeriod() const;

  /// True once the candidate period has been confirmed over two full
  /// repetitions. Observing more slots never un-converges a truly
  /// periodic source.
  bool converged() const;

  /// Discards every observation: the learned stream and its prefix
  /// function are volatile client state, lost on a crash–restart
  /// (src/fault/process_faults). The learner reconverges from scratch by
  /// listening again; a truly periodic source is relearned after at most
  /// two fresh periods.
  void Reset() {
    stream_.clear();
    pi_.clear();
  }

  /// Builds the learned program: the first period of the observed stream
  /// (a rotation of the transmitter's program — all frequencies and gap
  /// structure are preserved), with per-page disks inferred by grouping
  /// equal broadcast frequencies (highest frequency = disk 0).
  ///
  /// Fails if not yet converged, or if the observed page ids are not
  /// dense in [0, max_id] (a page that never appears cannot be learned).
  Result<BroadcastProgram> Build() const;

 private:
  std::vector<PageId> stream_;
  std::vector<uint32_t> pi_;  // KMP prefix function of stream_
};

}  // namespace bcast

#endif  // BCAST_CLIENT_SCHEDULE_LEARNER_H_
