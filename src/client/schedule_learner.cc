#include "client/schedule_learner.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace bcast {

void ScheduleLearner::Observe(PageId page) {
  stream_.push_back(page);
  const size_t i = stream_.size() - 1;
  if (i == 0) {
    pi_.push_back(0);
    return;
  }
  uint32_t k = pi_[i - 1];
  while (k > 0 && stream_[i] != stream_[k]) k = pi_[k - 1];
  if (stream_[i] == stream_[k]) ++k;
  pi_.push_back(k);
}

uint64_t ScheduleLearner::CandidatePeriod() const {
  if (stream_.empty()) return 0;
  return stream_.size() - pi_.back();
}

bool ScheduleLearner::converged() const {
  const uint64_t period = CandidatePeriod();
  return period > 0 && 2 * period <= stream_.size();
}

Result<BroadcastProgram> ScheduleLearner::Build() const {
  if (!converged()) {
    return Status::FailedPrecondition(
        "period not yet confirmed; keep listening (observed " +
        std::to_string(observed()) + " slots, candidate period " +
        std::to_string(CandidatePeriod()) + ")");
  }
  const uint64_t period = CandidatePeriod();
  std::vector<PageId> slots(stream_.begin(),
                            stream_.begin() + static_cast<long>(period));

  PageId max_page = 0;
  bool any_page = false;
  for (PageId p : slots) {
    if (p == kEmptySlot) continue;
    any_page = true;
    max_page = std::max(max_page, p);
  }
  if (!any_page) {
    return Status::InvalidArgument("observed only empty slots");
  }
  const PageId num_pages = max_page + 1;

  // Count per-page frequencies, then group equal frequencies into disks,
  // fastest (highest frequency) first — exactly the structure a client
  // needs for LIX's per-disk chains.
  std::vector<uint32_t> freq(num_pages, 0);
  for (PageId p : slots) {
    if (p != kEmptySlot) ++freq[p];
  }
  std::map<uint32_t, DiskIndex, std::greater<>> disk_of_freq;
  for (PageId p = 0; p < num_pages; ++p) {
    if (freq[p] > 0) disk_of_freq.emplace(freq[p], 0);
  }
  DiskIndex next = 0;
  for (auto& [f, disk] : disk_of_freq) disk = next++;

  std::vector<DiskIndex> disk_of(num_pages, 0);
  for (PageId p = 0; p < num_pages; ++p) {
    if (freq[p] == 0) {
      return Status::InvalidArgument(
          "page " + std::to_string(p) +
          " never observed: page ids are not dense, cannot learn");
    }
    disk_of[p] = disk_of_freq[freq[p]];
  }

  return BroadcastProgram::Make(std::move(slots), num_pages,
                                std::move(disk_of));
}

}  // namespace bcast
