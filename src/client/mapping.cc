#include "client/mapping.h"

#include <numeric>
#include <string>

#include "common/logging.h"

namespace bcast {

Mapping Mapping::Identity(PageId num_pages) {
  BCAST_CHECK_GT(num_pages, 0u);
  std::vector<PageId> ident(num_pages);
  std::iota(ident.begin(), ident.end(), PageId{0});
  return Mapping(ident, ident, ident);
}

Result<Mapping> Mapping::Make(const DiskLayout& layout, uint64_t offset,
                              NoiseModel noise, Rng rng) {
  BCAST_RETURN_IF_ERROR(ValidateLayout(layout));
  const uint64_t total = layout.TotalPages();
  if (total > static_cast<uint64_t>(kEmptySlot)) {
    return Status::OutOfRange("too many pages for PageId");
  }
  if (offset > total) {
    return Status::InvalidArgument("offset " + std::to_string(offset) +
                                   " exceeds database size " +
                                   std::to_string(total));
  }
  if (noise.percent < 0.0 || noise.percent > 100.0) {
    return Status::InvalidArgument("noise must be in [0, 100] percent");
  }
  const PageId n = static_cast<PageId>(total);

  // Step 1-2: identity shifted by offset. Logical page l maps to physical
  // (l - offset) mod n, so the `offset` hottest logical pages [0, offset)
  // wrap to the end of physical space — the tail of the slowest disk —
  // and every colder page moves `offset` slots toward the fast disks
  // (Figure 4).
  std::vector<PageId> to_physical(n);
  for (PageId l = 0; l < n; ++l) {
    to_physical[l] =
        static_cast<PageId>((l + total - offset) % total);
  }
  const std::vector<PageId> offset_only = to_physical;

  std::vector<PageId> to_logical(n);
  for (PageId l = 0; l < n; ++l) to_logical[to_physical[l]] = l;

  // Step 3: noise. For each participating logical page, with probability
  // noise.percent%, draw a destination slot (per the destination policy)
  // and exchange mappings with the page occupying it.
  uint64_t coin_pages = noise.coin_pages;
  if (coin_pages == 0 || coin_pages > total) coin_pages = total;
  if (noise.percent > 0.0) {
    const double p_swap = noise.percent / 100.0;
    const uint64_t num_disks = layout.NumDisks();
    std::vector<uint64_t> disk_base(num_disks, 0);
    for (uint64_t i = 1; i < num_disks; ++i) {
      disk_base[i] = disk_base[i - 1] + layout.sizes[i - 1];
    }
    for (PageId l = 0; l < static_cast<PageId>(coin_pages); ++l) {
      if (!rng.NextBernoulli(p_swap)) continue;
      PageId target_phys;
      if (noise.destination == NoiseModel::Destination::kUniformDisk) {
        const uint64_t disk = rng.NextBounded(num_disks);
        target_phys = static_cast<PageId>(
            disk_base[disk] + rng.NextBounded(layout.sizes[disk]));
      } else {
        target_phys = static_cast<PageId>(rng.NextBounded(total));
      }
      const PageId other_logical = to_logical[target_phys];
      const PageId my_phys = to_physical[l];
      // Exchange the two logical pages' physical images.
      to_physical[l] = target_phys;
      to_physical[other_logical] = my_phys;
      to_logical[target_phys] = l;
      to_logical[my_phys] = other_logical;
    }
  }

  return Mapping(std::move(to_physical), std::move(to_logical),
                 std::move(offset_only));
}

uint64_t Mapping::PerturbedPages() const {
  uint64_t count = 0;
  for (PageId l = 0; l < num_pages(); ++l) {
    if (to_physical_[l] != offset_only_[l]) ++count;
  }
  return count;
}

}  // namespace bcast
