#include "core/params.h"

#include <cmath>
#include <numeric>

#include "broadcast/disk_config.h"
#include "broadcast/schedule_optimizer.h"
#include "common/string_util.h"

namespace bcast {

uint64_t SimParams::ServerDbSize() const {
  return std::accumulate(disk_sizes.begin(), disk_sizes.end(), uint64_t{0});
}

Status SimParams::Validate() const {
  if (disk_sizes.empty()) {
    return Status::InvalidArgument("disk_sizes must not be empty");
  }
  for (uint64_t s : disk_sizes) {
    if (s == 0) return Status::InvalidArgument("disk sizes must be positive");
  }
  if (!rel_freqs.empty() && rel_freqs.size() != disk_sizes.size()) {
    return Status::InvalidArgument(
        "rel_freqs must match disk_sizes in length (or be empty)");
  }
  const uint64_t db = ServerDbSize();
  if (access_range == 0 || access_range > db) {
    return Status::InvalidArgument(
        "access_range must be in [1, ServerDBSize]");
  }
  if (region_size == 0) {
    return Status::InvalidArgument("region_size must be positive");
  }
  if (theta < 0.0 || !std::isfinite(theta)) {
    return Status::InvalidArgument("theta must be finite and >= 0");
  }
  if (cache_size == 0) {
    return Status::InvalidArgument(
        "cache_size must be >= 1 (1 disables caching)");
  }
  if (think_time < 0.0 || !std::isfinite(think_time)) {
    return Status::InvalidArgument("think_time must be finite and >= 0");
  }
  if (offset > db) {
    return Status::InvalidArgument("offset must be <= ServerDBSize");
  }
  if (noise_percent < 0.0 || noise_percent > 100.0) {
    return Status::InvalidArgument("noise_percent must be in [0, 100]");
  }
  if (measured_requests == 0) {
    return Status::InvalidArgument("measured_requests must be positive");
  }
  if (FindScheduleOptimizer(optimizer) == nullptr) {
    return Status::InvalidArgument(
        "unknown optimizer: " + optimizer + " (delta|ksy|rbo)");
  }
  if (optimizer != "delta") {
    if (program_kind != ProgramKind::kMultiDisk) {
      return Status::InvalidArgument(
          "--optimizer applies to the multi-disk program; use "
          "--program=multidisk with --optimizer=" + optimizer);
    }
    if (!rel_freqs.empty()) {
      return Status::InvalidArgument(
          "explicit --freqs pin the schedule; they require "
          "--optimizer=delta");
    }
  }
  Status fault_status = fault.Validate();
  if (!fault_status.ok()) return fault_status;
  Status pull_status = pull.Validate();
  if (!pull_status.ok()) return pull_status;
  if (pull.Active() && program_kind != ProgramKind::kMultiDisk) {
    return Status::InvalidArgument(
        "pull slots interleave into the multi-disk program's minor "
        "cycles; use --program=multidisk with pull");
  }
  if (pull.Active() && optimizer == "rbo") {
    return Status::InvalidArgument(
        "pull slots interleave into chunked minor cycles, which "
        "bit-reversal schedules do not have; use --optimizer=delta or "
        "ksy with pull");
  }
  Status adapt_status = adapt.Validate();
  if (!adapt_status.ok()) return adapt_status;
  if (adapt.Active()) {
    if (program_kind != ProgramKind::kMultiDisk) {
      return Status::InvalidArgument(
          "the adaptive controller regenerates the multi-disk program; "
          "use --program=multidisk with --adapt_epoch");
    }
    if (!fault.Active() && !pull.Active() && !adapt.reopt) {
      return Status::InvalidArgument(
          "adaptation needs a signal to adapt to: enable the fault model "
          "(--loss/--corrupt/--doze) for frequency repair, pull "
          "(--pull_slots/--pull_force) for slot control, or "
          "--adapt_reopt for measured-frequency re-optimization");
    }
  }
  // Delegate frequency validation to the layout builder.
  Result<DiskLayout> layout =
      rel_freqs.empty() ? MakeDeltaLayout(disk_sizes, delta)
                        : MakeLayout(disk_sizes, rel_freqs);
  if (!layout.ok()) return layout.status();
  return Status::OK();
}

std::string SimParams::ToString() const {
  std::vector<std::string> sizes;
  sizes.reserve(disk_sizes.size());
  for (uint64_t s : disk_sizes) sizes.push_back(std::to_string(s));
  std::string summary = StrFormat(
      "disks<%s> delta=%llu policy=%s cache=%llu offset=%llu noise=%.0f%% "
      "theta=%.2f seed=%llu",
      Join(sizes, ",").c_str(), static_cast<unsigned long long>(delta),
      PolicyKindName(policy).c_str(),
      static_cast<unsigned long long>(cache_size),
      static_cast<unsigned long long>(offset), noise_percent, theta,
      static_cast<unsigned long long>(seed));
  // A non-default optimizer is part of the run's identity; the default
  // ("delta") leaves every historical config string untouched.
  if (optimizer != "delta") {
    summary += " optimizer=" + optimizer;
  }
  // Faults extend the identity string only when active, so every
  // pre-fault config string (and golden baseline) is untouched.
  if (fault.Active()) {
    summary += " " + fault.ToString();
  }
  // Same contract for pull: the identity string only grows when the
  // hybrid machinery is on, so pure-push goldens never shift.
  if (pull.Active()) {
    summary += " " + pull.ToString();
  }
  // And for adaptation: a static run's identity never mentions it.
  if (adapt.Active()) {
    summary += " " + adapt.ToString();
  }
  return summary;
}

}  // namespace bcast
