/// \file metrics.h
/// \brief Per-client performance metrics collected by the simulator.
///
/// The paper's primary metric is client response time in broadcast units
/// (Section 5); Figures 11 and 14 additionally report *where* accesses
/// were served from (cache vs. each broadcast disk), which explains the
/// response-time differences between policies. On top of the paper's
/// means, every metric also feeds a log-bucket histogram so runs can
/// report percentiles (p50/p90/p99) — the Bus Stop Paradox is a tail
/// phenomenon a mean cannot show.

#ifndef BCAST_CORE_METRICS_H_
#define BCAST_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "broadcast/types.h"
#include "common/stats.h"
#include "obs/histogram.h"

namespace bcast {

/// \brief Metrics for one client over the measured phase of a run.
///
/// All derived quantities (`hit_rate`, `LocationFractions`, histogram
/// summaries) are defined for the empty state — they return 0 / 0-filled
/// vectors when no requests were recorded, never NaN or inf — so that an
/// aborted or zero-request run still serializes to valid JSON.
class ClientMetrics {
 public:
  /// \param num_disks Disks in the broadcast program (for the per-disk
  ///        service breakdown).
  explicit ClientMetrics(uint64_t num_disks)
      : served_per_disk_(num_disks, 0) {}

  /// Records a request served from the cache in \p response_time units
  /// (normally 0 — cache probes are instantaneous in the model).
  void RecordHit(double response_time);

  /// Records a request served from the broadcast: the page came off disk
  /// \p disk after \p response_time units.
  void RecordMiss(double response_time, DiskIndex disk);

  /// Requests recorded.
  uint64_t requests() const { return response_time_.count(); }

  /// Requests served from the cache.
  uint64_t cache_hits() const { return cache_hits_; }

  /// Requests served from the broadcast.
  uint64_t misses() const { return requests() - cache_hits_; }

  /// Fraction of requests served from the cache; 0 when no requests were
  /// recorded.
  double hit_rate() const;

  /// Response-time statistics over all recorded requests.
  const RunningStat& response_time() const { return response_time_; }

  /// Mean response time in broadcast units (the paper's headline number).
  double mean_response_time() const { return response_time_.mean(); }

  /// Response-time distribution (broadcast units) for percentile queries.
  const obs::LogHistogram& response_histogram() const {
    return response_hist_;
  }

  /// Requests served from each disk (index 0 = fastest).
  const std::vector<uint64_t>& served_per_disk() const {
    return served_per_disk_;
  }

  /// Fractions of requests served from [cache, disk 0, disk 1, ...];
  /// sums to 1 when any requests were recorded, and is all-zero (with the
  /// same shape) when none were. This is the breakdown Figures 11 and 14
  /// plot.
  std::vector<double> LocationFractions() const;

  /// Records radio-on time for one request (broadcast units). With a
  /// known schedule a miss costs 1 slot of listening; without one it
  /// costs the whole wait (see ClientRunConfig::knows_schedule).
  void RecordTuning(double slots);

  /// Radio-on time statistics (the paper's Section-2.1 energy argument).
  const RunningStat& tuning_time() const { return tuning_time_; }

  /// Radio-on time distribution for percentile queries.
  const obs::LogHistogram& tuning_histogram() const { return tuning_hist_; }

  /// Folds \p other into this metric set (multi-client / multi-seed
  /// aggregation). Disk breakdowns must have the same shape.
  void Merge(const ClientMetrics& other);

 private:
  RunningStat response_time_;
  RunningStat tuning_time_;
  obs::LogHistogram response_hist_;
  obs::LogHistogram tuning_hist_;
  uint64_t cache_hits_ = 0;
  std::vector<uint64_t> served_per_disk_;
};

}  // namespace bcast

#endif  // BCAST_CORE_METRICS_H_
