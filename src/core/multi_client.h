/// \file multi_client.h
/// \brief Simulating a heterogeneous client population on one broadcast.
///
/// Section 3 of the paper: "tuning the performance of the broadcast is a
/// zero-sum game; improving the broadcast for any one access probability
/// distribution will hurt the performance of clients with different access
/// distributions." The single-client simulator models this indirectly with
/// Noise; this module models it directly: any number of clients, each with
/// its own access distribution, cache and policy, all listening to the
/// same channel (a broadcast never contends, so clients interact only
/// through how well the program fits each of them).
///
/// Client heterogeneity is expressed with `interest_shift`: client c's
/// hottest logical page corresponds to physical page `interest_shift`, so
/// populations with spread-out shifts want different parts of the database
/// hot. A server program (physical page 0 = hottest by the *server's*
/// ranking) can then favor some clients over others.

#ifndef BCAST_CORE_MULTI_CLIENT_H_
#define BCAST_CORE_MULTI_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/adapt_params.h"
#include "adapt/adapt_stats.h"
#include "core/metrics.h"
#include "core/params.h"
#include "core/simulator.h"
#include "des/simulation.h"
#include "fault/fault_params.h"
#include "fault/recovery.h"
#include "obs/run_report.h"
#include "obs/stopwatch.h"
#include "pull/pull_params.h"
#include "pull/pull_stats.h"

namespace bcast {

/// \brief One client of the population.
struct ClientSpec {
  /// Pages this client ever requests (its own logical numbering).
  uint64_t access_range = 1000;

  /// Zipf skew and region size of its access distribution.
  double theta = 0.95;
  uint64_t region_size = 50;

  /// Where in the physical database this client's interest centers:
  /// its hottest logical page maps to physical `interest_shift` (before
  /// offset/noise). 0 = perfectly aligned with the server's ranking.
  uint64_t interest_shift = 0;

  /// Per-client Offset (hot pages pushed to the slow-disk tail) and Noise.
  uint64_t offset = 0;
  double noise_percent = 0.0;
  NoiseScope noise_scope = NoiseScope::kAccessRange;

  /// Cache and policy.
  uint64_t cache_size = 500;
  PolicyKind policy = PolicyKind::kLix;
  PolicyOptions policy_options;

  /// Think-time model.
  double think_time = 2.0;
  ThinkTimeKind think_kind = ThinkTimeKind::kFixed;

  /// Receiver-class scaling of the population-shared fault knobs: this
  /// client's channel/uplink loss probabilities are `fault.loss *
  /// loss_scale` (clamped to [0, 1]) and its doze duty cycle stretches
  /// by `doze_scale` (doze_for *= doze_scale; 0 disables dozing). The
  /// defaults leave the shared knobs untouched, so homogeneous
  /// populations are bit-identical to the pre-class behavior. "Near"
  /// receivers set scales < 1, "far" ones > 1 (paper §5's receiver
  /// heterogeneity).
  double loss_scale = 1.0;
  double doze_scale = 1.0;

  /// Receiver-class index this spec was expanded from (reporting only;
  /// 0 = the default class).
  uint32_t class_id = 0;
};

/// \brief The population-shared fault knobs specialized to one client's
/// receiver class (identity when both scales are 1).
fault::FaultParams ScaledFaultParams(const fault::FaultParams& base,
                                     const ClientSpec& spec);

struct MultiClientParams;

/// \brief The access distribution the server designs for: the mean of
/// every client's nominal (unshifted) distribution, hottest-first and
/// non-increasing. Interest shifts, offsets and noise are deliberately
/// ignored — the server schedules for its advertised ordering, and
/// per-client misalignment is exactly what the population experiments
/// measure. This is what the non-default optimizers consume.
std::vector<double> PopulationNominalProbs(const MultiClientParams& params);

/// \brief Population-level experiment parameters.
struct MultiClientParams {
  /// Server side: disks, frequencies, program kind — as in SimParams.
  std::vector<uint64_t> disk_sizes = {500, 2000, 2500};
  uint64_t delta = 2;
  std::vector<uint64_t> rel_freqs;  ///< overrides delta when non-empty
  ProgramKind program_kind = ProgramKind::kMultiDisk;

  /// Schedule optimizer building the multi-disk program (registry name;
  /// see broadcast/schedule_optimizer.h). Non-default optimizers derive
  /// their frequencies from the population's mean nominal access
  /// distribution, so they require the multi-disk program and empty
  /// `rel_freqs`; `rbo` additionally excludes pull (no chunked minor
  /// cycles to interleave into).
  std::string optimizer = "delta";

  /// The clients. Must be non-empty.
  std::vector<ClientSpec> clients;

  /// Requests measured per client after its warm-up.
  uint64_t measured_requests = 50000;

  /// Warm-up request cap per client.
  uint64_t max_warmup_requests = 2000000;

  /// Master seed; client c draws from independent sub-streams.
  uint64_t seed = 42;

  /// Pending-event-set backend of the DES kernel (never semantic; see
  /// SimParams::des_queue).
  des::QueueBackend des_queue = des::DefaultQueueBackend();

  /// Unreliable-channel knobs, shared by the population; each client
  /// gets its own receiver with (client id, purpose)-keyed fault
  /// streams. Inactive by default.
  fault::FaultParams fault;

  /// Hybrid push–pull knobs, shared by the population: one pull server
  /// (backchannel + request queue) serves every client, and each client
  /// gets its own requester with a (client id, kUplink)-keyed loss
  /// stream. Inactive by default; active pull requires the multi-disk
  /// program.
  pull::PullParams pull;

  /// Adaptive control-plane knobs, shared by the population: one epoch
  /// controller steers the program (and the shared pull server) from the
  /// aggregate loss and queue measurements of every client. Inactive by
  /// default; same activation requirements as SimParams.
  adapt::AdaptParams adapt;

  /// Total pages broadcast.
  uint64_t ServerDbSize() const;

  /// Structural validation.
  Status Validate() const;
};

/// \brief Per-population results.
struct MultiClientResult {
  /// Per-client metrics, in `clients` order.
  std::vector<ClientMetrics> per_client;

  /// Mean response time of each client (convenience).
  std::vector<double> mean_response_times;

  /// Statistics over the per-client means: the population's fairness
  /// picture (max/min spread, etc.).
  RunningStat response_across_clients;

  /// All clients' metrics merged (histograms, hits, per-disk counts) —
  /// the population-wide distributional view.
  ClientMetrics aggregate{1};

  /// Simulated end time.
  double end_time = 0.0;

  /// Wall-clock breakdown (warmup/measured are not separable per client
  /// in a concurrent population; the event loop lands in
  /// measured_seconds).
  obs::PhaseTimings timings;

  /// Events the DES kernel dispatched.
  uint64_t events_dispatched = 0;

  /// Expected delay the optimizer predicted for its program under the
  /// population's mean nominal distribution (0 for `delta`, which skips
  /// the prediction to keep its historical build path byte-for-byte).
  double predicted_delay = 0.0;

  /// Pending-event-set backend the run actually used (`auto` resolved
  /// against the population size).
  des::QueueBackend resolved_queue = des::QueueBackend::kHeap;

  /// Channel-fault accounting merged over all clients; populated (and
  /// `faults_active` set) only when `params.fault.Active()`.
  fault::FaultStats faults;
  bool faults_active = false;

  /// Hybrid push–pull accounting, accumulated on the shared server by
  /// the whole population; populated (and `pull_active` set) only when
  /// `params.pull.Active()`.
  pull::PullStats pull_stats;
  bool pull_active = false;

  /// Adaptive-controller accounting; populated (and `adapt_active` set)
  /// only when `params.adapt.Active()`.
  adapt::AdaptStats adapt_stats;
  bool adapt_active = false;

  /// Population-wide measured requests (and hits) against the pinned
  /// cold-page set; populated when pull or adaptation is active.
  uint64_t cold_requests = 0;
  uint64_t cold_hits = 0;

  /// Per-event-kind DES dispatch profile; populated (and
  /// `profile_active` set) only when `SimObservers::profile_des` was on.
  des::DesProfile profile;
  bool profile_active = false;
};

/// \brief Runs the population against one shared broadcast.
/// Deterministic in `params.seed`.
Result<MultiClientResult> RunMultiClientSimulation(
    const MultiClientParams& params);

/// \brief Same, with observability hooks attached. Trace records carry
/// each issuer's client index; timeline spans land on per-client tracks;
/// the stats stream samples population-wide totals. As in the
/// single-client runner, only the stats sampler adds DES events — every
/// other observer leaves the run bit-identical.
Result<MultiClientResult> RunMultiClientSimulation(
    const MultiClientParams& params, const SimObservers& observers);

/// \brief Renders a population run as a run report (mode "population"):
/// aggregate counts and distributions plus per-population fairness
/// extras, and the channel-fault extras when faults were active.
/// \p config is the one-line configuration identity (callers driving the
/// population from a SimParams template pass `base.ToString()`).
obs::RunReport MakePopulationRunReport(const MultiClientParams& params,
                                       const MultiClientResult& result,
                                       const std::string& config,
                                       const std::string& tool);

}  // namespace bcast

#endif  // BCAST_CORE_MULTI_CLIENT_H_
