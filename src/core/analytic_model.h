/// \file analytic_model.h
/// \brief Closed-form response-time prediction for idealized caching.
///
/// For the idealized policies the steady-state cache content is
/// deterministic: P holds the CacheSize pages with the highest access
/// probability, PIX those with the highest probability/frequency ratio
/// (ties broken toward lower page ids, matching `StaticValueCache`).
/// Expected response time then has a closed form:
///
///     E[RT] = sum over uncached pages i of  p_i * (E[delay_i] + 1)
///
/// with E[delay_i] from the program's gap structure (analysis.h). This
/// module computes that prediction for any (program, mapping, workload)
/// triple — including Offset and Noise — and is cross-validated against
/// the discrete-event simulator in tests and bench/ablation_analytic:
/// agreement within a few percent is evidence that both are right, since
/// the two implementations share no code path for the actual modelling.
///
/// The residual error is itself informative: request times are *not*
/// uniformly random (a client thinks for a fixed time after each fetch,
/// correlating request phase with the schedule), which the closed form
/// ignores. See EXPERIMENTS.md (ablation A5, config D1).

#ifndef BCAST_CORE_ANALYTIC_MODEL_H_
#define BCAST_CORE_ANALYTIC_MODEL_H_

#include <vector>

#include "core/params.h"

namespace bcast {

/// \brief The closed-form prediction and its ingredients.
struct AnalyticPrediction {
  /// Predicted mean response time (broadcast units, incl. transmission).
  double response_time = 0.0;

  /// Predicted steady-state cache hit rate.
  double hit_rate = 0.0;

  /// Predicted fraction of requests served from each disk
  /// (index 0 = fastest); together with hit_rate these sum to 1.
  std::vector<double> disk_fractions;

  /// The logical pages predicted to be cached in steady state.
  std::vector<PageId> cached_pages;
};

/// \brief Predicts the steady-state behaviour of `params` without
/// simulating, for the idealized policies only.
///
/// Supported: `PolicyKind::kP`, `PolicyKind::kPix`, and any policy when
/// `cache_size == 1` (the no-cache baseline, predicted as cache-less).
/// Returns kUnimplemented for the history-dependent policies (LRU, LIX,
/// ...), whose steady state has no closed form.
Result<AnalyticPrediction> PredictResponse(const SimParams& params);

}  // namespace bcast

#endif  // BCAST_CORE_ANALYTIC_MODEL_H_
