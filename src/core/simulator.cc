#include "core/simulator.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "adapt/access_monitor.h"
#include "adapt/controller.h"
#include "adapt/loss_monitor.h"
#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "broadcast/schedule_optimizer.h"
#include "client/client.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/zipf.h"
#include "des/simulation.h"
#include "fault/fault_model.h"
#include "pull/hybrid.h"
#include "pull/pull_client.h"
#include "pull/pull_server.h"

namespace bcast {

using internal::kNoiseStream;
using internal::kProgramStream;
using internal::kRequestStream;

namespace {

Result<DiskLayout> LayoutFromParams(const SimParams& params) {
  return params.rel_freqs.empty()
             ? MakeDeltaLayout(params.disk_sizes, params.delta)
             : MakeLayout(params.disk_sizes, params.rel_freqs);
}

}  // namespace

std::vector<double> NominalAccessProbs(uint64_t access_range,
                                       uint64_t region_size, double theta,
                                       uint64_t db_size) {
  std::vector<double> probs(db_size, 0.0);
  Result<RegionZipfGenerator> zipf =
      RegionZipfGenerator::Make(access_range, region_size, theta);
  BCAST_CHECK(zipf.ok()) << zipf.status().ToString();
  const uint64_t hot = std::min(access_range, db_size);
  for (uint64_t page = 0; page < hot; ++page) {
    probs[page] = zipf->Probability(page);
  }
  // A partial final region crams its full Zipf weight into fewer pages,
  // making the tail *hotter* per page than the region before it — which
  // would break the non-increasing contract. The server designs for
  // uniform-width regions: rescale the tail back to full region width.
  const uint64_t rem = access_range % region_size;
  if (rem != 0 && access_range > region_size) {
    for (uint64_t page = access_range - rem; page < hot; ++page) {
      probs[page] *= static_cast<double>(rem) / region_size;
    }
  }
  return probs;
}

Result<ServerSchedule> BuildSchedule(const SimParams& params) {
  BCAST_RETURN_IF_ERROR(params.Validate());
  if (params.program_kind == ProgramKind::kMultiDisk) {
    const ScheduleOptimizer* optimizer =
        FindScheduleOptimizer(params.optimizer);
    BCAST_CHECK(optimizer != nullptr);  // Validate() vetted the name
    OptimizerRequest request;
    request.disk_sizes = params.disk_sizes;
    request.rel_freqs = params.rel_freqs;
    request.delta = params.delta;
    // The delta optimizer works without probabilities (and skipping them
    // keeps its historical build path byte-for-byte); the others derive
    // their frequencies from the nominal access distribution.
    if (params.optimizer != "delta") {
      request.probs =
          NominalAccessProbs(params.access_range, params.region_size,
                             params.theta, params.ServerDbSize());
    }
    Result<OptimizedSchedule> built = optimizer->Build(request);
    if (!built.ok()) return built.status();
    return ServerSchedule{std::move(built->layout), std::move(built->program),
                          built->predicted_delay};
  }

  // The skewed/random study programs bypass the optimizer frontier; they
  // exist to ablate the multi-disk construction, not to compete with it.
  Result<DiskLayout> layout = LayoutFromParams(params);
  if (!layout.ok()) return layout.status();
  Result<BroadcastProgram> program = [&]() -> Result<BroadcastProgram> {
    if (params.program_kind == ProgramKind::kSkewed) {
      return GenerateSkewedProgram(*layout);
    }
    // Match the multi-disk program's period so bandwidth and cycle
    // length are comparable.
    Result<BroadcastProgram> reference = GenerateMultiDiskProgram(*layout);
    if (!reference.ok()) return reference.status();
    Rng rng = Rng(params.seed).Split(kProgramStream);
    return GenerateRandomProgram(*layout, reference->period(), &rng);
  }();
  if (!program.ok()) return program.status();
  return ServerSchedule{std::move(*layout), std::move(*program), 0.0};
}

Result<BroadcastProgram> BuildProgram(const SimParams& params) {
  Result<ServerSchedule> schedule = BuildSchedule(params);
  if (!schedule.ok()) return schedule.status();
  return std::move(schedule->program);
}

Result<SimResult> RunSimulation(const SimParams& params) {
  return RunSimulation(params, SimObservers{});
}

Result<SimResult> RunSimulation(const SimParams& params,
                                const SimObservers& observers) {
  SimResult result;
  obs::Stopwatch total_watch;

  BCAST_RETURN_IF_ERROR(params.Validate());

  // The configured optimizer designs layout and program together. With
  // active pull params the program on the air is the hybrid one: the
  // optimizer's program with pull slots interleaved into every minor
  // cycle (identical to the plain program when pull_slots == 0).
  pull::HybridLayout hybrid_layout;
  Result<ServerSchedule> schedule = [&]() -> Result<ServerSchedule> {
    obs::ScopedTimer timer(&result.timings.build_program_seconds);
    Result<ServerSchedule> built = BuildSchedule(params);
    if (!built.ok()) return built;
    if (params.pull.Active()) {
      Result<pull::HybridProgram> hybrid = pull::GenerateHybridProgram(
          built->layout, params.pull.pull_slots);
      if (!hybrid.ok()) return hybrid.status();
      hybrid_layout = std::move(hybrid->layout);
      built->program = std::move(hybrid->program);
    }
    return built;
  }();
  if (!schedule.ok()) return schedule.status();
  result.predicted_delay = schedule->predicted_delay;
  const DiskLayout* const layout = &schedule->layout;
  BroadcastProgram* const program = &schedule->program;

  obs::Stopwatch setup_watch;
  const Rng master(params.seed);
  NoiseModel noise;
  noise.percent = params.noise_percent;
  noise.coin_pages = params.noise_scope == NoiseScope::kAccessRange
                         ? params.access_range
                         : 0;
  noise.destination = params.noise_destination;
  Result<Mapping> mapping = Mapping::Make(*layout, params.offset, noise,
                                          master.Split(kNoiseStream));
  if (!mapping.ok()) return mapping.status();

  Result<AccessGenerator> gen = AccessGenerator::Make(
      params.access_range, params.region_size, params.theta,
      params.think_time, params.think_kind, master.Split(kRequestStream));
  if (!gen.ok()) return gen.status();

  // The policy catalog is pinned to the *initial* program: the client's
  // replacement knowledge (probabilities, frequencies, disks) is what it
  // learned from the published schedule, and deliberately lags any
  // mid-run repair the adaptive controller broadcasts.
  SimCatalog catalog(&*gen, &*program, &*mapping);
  PolicyOptions policy_options = params.policy_options;
  if (params.pull.Active() && hybrid_layout.enabled()) {
    // The pull-aware estimator's refetch bound: the mean spacing of pull
    // slots (one service interval, the optimistic single-request case).
    policy_options.pull_service_interval =
        static_cast<double>(hybrid_layout.period()) /
        static_cast<double>(hybrid_layout.pull_per_minor *
                            hybrid_layout.num_minor);
  }
  Result<std::unique_ptr<CachePolicy>> cache = MakeCachePolicy(
      params.policy, params.cache_size,
      static_cast<PageId>(params.ServerDbSize()), &catalog,
      policy_options);
  if (!cache.ok()) return cache.status();

  result.resolved_queue =
      des::ResolveQueueBackend(params.des_queue, /*expected_clients=*/1);
  des::Simulation sim(result.resolved_queue);
  if (observers.profile_des) sim.EnableProfiling();
  sim.AttachTimeline(observers.timeline);
  BCAST_TIMELINE(observers.timeline,
                 NameTrack(obs::track::kSim, "des"));
  BCAST_TIMELINE(observers.timeline,
                 NameTrack(obs::track::Client(0), "client0"));
  BroadcastChannel channel(&sim, &*program);
  // The receiver exists only for active fault params: an inactive run
  // builds no fault machinery and draws no extra randomness.
  std::unique_ptr<fault::Receiver> receiver;
  if (params.fault.Active()) {
    receiver = fault::MakeReceiver(params.fault, /*client_id=*/0,
                                   static_cast<double>(program->period()));
    receiver->AttachTimeline(observers.timeline, obs::track::Client(0));
  }
  // Server-side process faults (transmission stalls + slot jitter): one
  // plane per run, shared by every receiver — the server's trouble is
  // common-mode. Built only when the axes are on; an inactive run
  // attaches nothing and draws nothing.
  std::unique_ptr<fault::ServerFaultPlane> server_faults;
  if (params.fault.process.ServerActive()) {
    Rng salt_rng = fault::FaultStream(Rng(params.fault.fault_seed),
                                      /*client_id=*/0,
                                      fault::Purpose::kJitter);
    server_faults = std::make_unique<fault::ServerFaultPlane>(
        params.fault.process,
        fault::FaultStream(Rng(params.fault.fault_seed), /*client_id=*/0,
                           fault::Purpose::kStall),
        salt_rng.Next());
    receiver->AttachServerFaults(server_faults.get());
  }
  // Pull machinery exists only for active pull params; with zero pull
  // slots the server is inert (never attached, never scheduling), so
  // the forced zero-capacity path stays bit-identical to pure push.
  std::unique_ptr<pull::PullServer> pull_server;
  std::unique_ptr<pull::PullClient> pull_client;
  if (params.pull.Active()) {
    pull_server = std::make_unique<pull::PullServer>(&sim, hybrid_layout,
                                                     params.pull);
    if (pull_server->enabled()) channel.AttachPullServer(pull_server.get());
    BCAST_TIMELINE(observers.timeline,
                   NameTrack(obs::track::kPull, "pull"));
    // The uplink shares the air with the downlink: requests are lost in
    // flight at the channel's loss rate, drawn from the dedicated
    // (client, kUplink) fault sub-stream so pull never perturbs the
    // downlink draws.
    std::optional<Rng> uplink_rng;
    double uplink_loss = 0.0;
    if (params.fault.Active() && params.fault.loss > 0.0) {
      uplink_rng = fault::FaultStream(Rng(params.fault.fault_seed),
                                      /*client_id=*/0,
                                      fault::Purpose::kUplink);
      uplink_loss = params.fault.loss;
    }
    pull_client = std::make_unique<pull::PullClient>(
        &sim, pull_server.get(), params.pull, uplink_rng, uplink_loss);
  }
  // Crash–restart state loss: a restart forgets the in-flight pull
  // request (the server's orphaned copy stays accounted) and — on a cold
  // restart — the cache contents. The receiver's own volatile timers are
  // reset inside its crash application; this hook covers the state it
  // does not own.
  if (params.fault.process.CrashActive()) {
    receiver->SetCrashHook(
        [pull = pull_client.get(), cache_ptr = cache->get(),
         cold = params.fault.process.crash_cold]() {
          if (pull != nullptr) pull->OnCrash();
          if (cold) cache_ptr->Clear();
        });
  }
  // The cold-page set pinned to the initial program: the slowest-disk
  // class whose fate the adaptive gates (and the pull ablations) track
  // across runs. Built only when something can use it.
  std::vector<bool> cold_pages;
  if ((params.pull.Active() || params.adapt.Active()) &&
      program->num_disks() > 1) {
    const DiskIndex coldest =
        static_cast<DiskIndex>(program->num_disks() - 1);
    cold_pages.resize(params.ServerDbSize());
    for (PageId p = 0; p < static_cast<PageId>(cold_pages.size()); ++p) {
      cold_pages[p] = program->DiskOf(p) == coldest;
    }
  }
  // The adaptive control plane: a shared loss monitor (and, under
  // --adapt_reopt, a demand monitor) feeding the epoch controller.
  // Nothing is built (and no event scheduled) when off.
  std::unique_ptr<adapt::LossMonitor> loss_monitor;
  std::unique_ptr<adapt::AccessMonitor> access_monitor;
  std::unique_ptr<adapt::Controller> controller;
  if (params.adapt.Active()) {
    if (receiver != nullptr) {
      loss_monitor = std::make_unique<adapt::LossMonitor>(
          static_cast<PageId>(params.ServerDbSize()));
      receiver->AttachLossSink(loss_monitor.get());
    }
    if (params.adapt.reopt) {
      access_monitor = std::make_unique<adapt::AccessMonitor>(
          static_cast<PageId>(params.ServerDbSize()));
    }
    adapt::Controller::Hooks hooks;
    hooks.channel = &channel;
    hooks.pull = (pull_server != nullptr && pull_server->enabled())
                     ? pull_server.get()
                     : nullptr;
    hooks.loss = loss_monitor.get();
    hooks.access = access_monitor.get();
    if (params.optimizer == "rbo") {
      // A bit-reversal schedule is not a chunked minor-cycle program, so
      // rebuilds must not regenerate through GenerateMultiDiskProgram;
      // the geometry never changes mid-run, so the original seat program
      // (seats == pages at build time) is exactly the rebuild target.
      const BroadcastProgram* const seat_program = program;
      hooks.make_program =
          [seat_program](const DiskLayout&) -> Result<BroadcastProgram> {
        return BroadcastProgram(*seat_program);
      };
    }
    controller = std::make_unique<adapt::Controller>(&sim, *layout,
                                                     params.adapt, hooks);
    BCAST_TIMELINE(observers.timeline,
                   NameTrack(obs::track::kController, "adapt"));
  }
  ClientRunConfig run_config{params.measured_requests,
                             params.max_warmup_requests,
                             params.knows_schedule, observers.trace,
                             receiver.get(), pull_client.get()};
  run_config.access = access_monitor.get();
  if (!cold_pages.empty()) {
    run_config.cold_pages = &cold_pages;
    if (controller != nullptr) {
      run_config.cold_wait = &controller->stats().cold_wait;
    }
  }
  Client client(&sim, &channel, cache->get(), &*gen, &*mapping,
                run_config);
  result.timings.setup_seconds = setup_watch.ElapsedSeconds();

  // The periodic stats sampler. It is the one observer that *does* add
  // DES events (tagged kStats, visible in events_dispatched), so golden
  // comparisons keep it off; with it off the run is bit-identical. The
  // tick re-arms only while the client is unfinished — a perpetual
  // event would keep the queue non-empty and Run() would never return.
  uint64_t stats_prev_requests = 0;
  uint64_t stats_prev_hits = 0;
  double stats_prev_rt_sum = 0.0;
  auto take_stats_sample = [&](bool final_sample) {
    obs::StatsSample s;
    s.t = sim.Now();
    s.wall_seconds = observers.stats->ElapsedSeconds();
    s.events = sim.events_dispatched();
    const ClientMetrics& m = client.metrics();
    s.requests = m.requests();
    s.hits = m.cache_hits();
    s.warmup_requests = client.warmup_requests();
    s.mean_rt = m.response_time().mean();
    s.win_requests = s.requests - stats_prev_requests;
    s.win_hits = s.hits - stats_prev_hits;
    const double rt_sum = m.response_time().sum();
    s.win_mean_rt = s.win_requests > 0
                        ? (rt_sum - stats_prev_rt_sum) /
                              static_cast<double>(s.win_requests)
                        : 0.0;
    s.served_per_disk = m.served_per_disk();
    if (pull_server != nullptr) {
      s.pull_queue_depth = pull_server->queue_depth();
      s.pull_serviced = pull_server->stats().serviced_pages;
    }
    if (receiver != nullptr) {
      s.fault_lost = receiver->stats().lost;
      s.fault_retries = receiver->stats().retries;
    }
    s.final_sample = final_sample;
    stats_prev_requests = s.requests;
    stats_prev_hits = s.hits;
    stats_prev_rt_sum = rt_sum;
    observers.stats->Write(s);
  };
  std::function<void()> stats_tick;
  if (observers.stats != nullptr) {
    const double interval = std::max(observers.stats_interval, 1.0);
    stats_tick = [&take_stats_sample, &stats_tick, &sim, &client,
                  interval]() {
      take_stats_sample(false);
      if (!client.finished()) {
        sim.Schedule(interval, stats_tick, des::EventKind::kStats);
      }
    };
    sim.Schedule(interval, stats_tick, des::EventKind::kStats);
  }

  // Schedule-version bumps: every version_every slots the server
  // re-announces its program (same content, new epoch), which re-arms
  // every in-flight wait through the resync path — a program switch as a
  // fault source mid-tune. The tick re-arms only while the client runs,
  // like the stats sampler, so the queue still drains.
  uint64_t version_bumps = 0;
  std::function<void()> version_tick;
  if (params.fault.process.version_every > 0.0) {
    channel.EnableResync();
    const double every = params.fault.process.version_every;
    version_tick = [&version_tick, &version_bumps, &sim, &channel,
                    every]() {
      if (sim.live_processes() == 0) return;
      channel.SetProgram(&channel.program(), sim.Now());
      ++version_bumps;
      sim.Schedule(every, version_tick, des::EventKind::kController);
    };
    sim.Schedule(every, version_tick, des::EventKind::kController);
  }

  sim.Spawn(client.Run());
  if (controller != nullptr) controller->Start();
  if (observers.horizon > 0.0) {
    // Bounded run: the chaos harness's no-hang check. A scenario whose
    // client cannot finish by the horizon is a liveness violation,
    // reported as an error instead of aborting the process.
    sim.RunUntil(observers.horizon);
    if (!client.finished()) {
      return Status::Internal(StrFormat(
          "no-hang violation: client unfinished at horizon %.0f "
          "(t=%.0f, events=%llu, measured %llu/%llu requests)",
          observers.horizon, sim.Now(),
          static_cast<unsigned long long>(sim.events_dispatched()),
          static_cast<unsigned long long>(client.metrics().requests()),
          static_cast<unsigned long long>(params.measured_requests)));
    }
  } else {
    sim.Run();
    BCAST_CHECK(client.finished())
        << "client did not complete its requests";
  }
  // The exact end-of-run record: totals here equal the run report's, so
  // a stream summary reproduces the report's headline numbers.
  if (observers.stats != nullptr) take_stats_sample(true);

  result.metrics = client.metrics();
  result.warmup_requests = client.warmup_requests();
  result.end_time = sim.Now();
  result.period = program->period();
  result.empty_slots = program->EmptySlots();
  result.perturbed_pages = mapping->PerturbedPages();
  result.timings.warmup_seconds = client.warmup_wall_seconds();
  result.timings.measured_seconds = client.measured_wall_seconds();
  result.events_dispatched = sim.events_dispatched();
  result.timings.total_seconds = total_watch.ElapsedSeconds();
  if (receiver != nullptr) {
    result.faults = receiver->stats();
    result.faults.version_bumps = version_bumps;
    result.faults_active = true;
  }
  if (pull_server != nullptr) {
    pull_server->FinishRun(sim.Now());
    result.pull_stats = pull_server->stats();
    result.pull_active = true;
  }
  if (controller != nullptr) {
    result.adapt_stats = controller->stats();
    result.adapt_active = true;
  }
  result.cold_requests = client.cold_requests();
  result.cold_hits = client.cold_hits();
  if (observers.profile_des) {
    result.profile = sim.profile();
    result.profile_active = true;
  }

  if (observers.registry != nullptr) {
    obs::MetricsRegistry& reg = *observers.registry;
    reg.GetCounter("sim/requests")->Increment(result.metrics.requests());
    reg.GetCounter("sim/cache_hits")
        ->Increment(result.metrics.cache_hits());
    reg.GetCounter("sim/warmup_requests")
        ->Increment(result.warmup_requests);
    reg.GetCounter("sim/events")->Increment(result.events_dispatched);
    reg.GetGauge("sim/period")->Set(static_cast<double>(result.period));
    reg.GetGauge("sim/end_time")->Set(result.end_time);
    reg.GetHistogram("sim/response_slots")
        ->Merge(result.metrics.response_histogram());
    reg.GetHistogram("sim/tuning_slots")
        ->Merge(result.metrics.tuning_histogram());
    if (result.faults_active) {
      const fault::FaultStats& fs = result.faults;
      reg.GetCounter("fault/attempts")->Increment(fs.attempts);
      reg.GetCounter("fault/delivered")->Increment(fs.delivered);
      reg.GetCounter("fault/lost")->Increment(fs.lost);
      reg.GetCounter("fault/corrupted")->Increment(fs.corrupted);
      reg.GetCounter("fault/retries")->Increment(fs.retries);
      reg.GetCounter("fault/doze_missed_arrivals")
          ->Increment(fs.doze_missed_arrivals);
      reg.GetCounter("fault/deadline_expiries")
          ->Increment(fs.deadline_expiries);
      reg.GetCounter("fault/loss_delayed_fetches")
          ->Increment(fs.loss_delayed_fetches);
      reg.GetGauge("fault/delivery_ratio")->Set(fs.delivery_ratio());
      reg.GetHistogram("fault/extra_cycles")->Merge(fs.extra_cycles);
      reg.GetHistogram("fault/resync_slots")->Merge(fs.resync_slots);
      if (params.fault.process.Active()) {
        reg.GetCounter("fault/crashes")->Increment(fs.crashes);
        reg.GetCounter("fault/crash_missed_arrivals")
            ->Increment(fs.crash_missed_arrivals);
        reg.GetCounter("fault/stall_missed_arrivals")
            ->Increment(fs.stall_missed_arrivals);
        reg.GetCounter("fault/version_bumps")->Increment(fs.version_bumps);
      }
    }
    if (result.pull_active) {
      const pull::PullStats& ps = result.pull_stats;
      reg.GetCounter("pull/requests")->Increment(ps.requests_attempted);
      reg.GetCounter("pull/re_requests")->Increment(ps.re_requests);
      reg.GetCounter("pull/uplink_accepted")
          ->Increment(ps.uplink_accepted);
      reg.GetCounter("pull/uplink_dropped")->Increment(ps.uplink_dropped);
      reg.GetCounter("pull/uplink_lost")->Increment(ps.uplink_lost);
      reg.GetCounter("pull/serviced_pages")->Increment(ps.serviced_pages);
      reg.GetCounter("pull/idle_slots")->Increment(ps.idle_pull_slots());
      reg.GetCounter("pull/deliveries")->Increment(ps.pull_deliveries);
      reg.GetCounter("pull/push_deliveries")
          ->Increment(ps.push_deliveries);
      reg.GetGauge("pull/service_share")->Set(ps.pull_service_share());
      reg.GetHistogram("pull/queue_depth")->Merge(ps.queue_depth);
      reg.GetHistogram("pull/latency_slots")->Merge(ps.pull_latency);
      reg.GetHistogram("pull/push_latency_slots")->Merge(ps.push_latency);
      reg.GetHistogram("pull/cold_wait_slots")->Merge(ps.cold_wait);
    }
    if (result.adapt_active) {
      const adapt::AdaptStats& as = result.adapt_stats;
      reg.GetCounter("adapt/epochs")->Increment(as.epochs);
      reg.GetCounter("adapt/rebuilds")->Increment(as.rebuilds);
      reg.GetCounter("adapt/promotions")->Increment(as.promotions);
      reg.GetCounter("adapt/demotions")->Increment(as.demotions);
      reg.GetCounter("adapt/reopts")->Increment(as.reopts);
      reg.GetCounter("adapt/slot_grows")->Increment(as.slot_grows);
      reg.GetCounter("adapt/slot_shrinks")->Increment(as.slot_shrinks);
      reg.GetGauge("adapt/initial_slots")
          ->Set(static_cast<double>(as.initial_slots));
      reg.GetGauge("adapt/final_slots")
          ->Set(static_cast<double>(as.final_slots));
      reg.GetGauge("adapt/slot_range_late")
          ->Set(static_cast<double>(as.SlotRangeLate()));
      reg.GetHistogram("adapt/cold_wait_slots")->Merge(as.cold_wait);
    }
  }
  return result;
}

obs::RunReport MakeRunReport(const SimParams& params,
                             const SimResult& result,
                             const std::string& tool) {
  obs::RunReport report;
  report.tool = tool;
  report.mode = "single";
  report.config = params.ToString();
  report.optimizer = params.optimizer;
  report.seed = params.seed;
  report.period = result.period;
  report.empty_slots = result.empty_slots;
  report.perturbed_pages = result.perturbed_pages;
  report.requests = result.metrics.requests();
  report.warmup_requests = result.warmup_requests;
  report.cache_hits = result.metrics.cache_hits();
  report.response = result.metrics.response_histogram().Summary();
  report.tuning = result.metrics.tuning_histogram().Summary();
  report.served_per_disk = result.metrics.served_per_disk();
  report.end_time = result.end_time;
  report.timings = result.timings;
  report.events_dispatched = result.events_dispatched;
  // Simulated slots produced per wall second of event-loop work. The
  // end_time of one run approximates the slots covered; callers that sum
  // several seeds should rerun FinalizeThroughput with their own totals.
  report.FinalizeThroughput(
      result.end_time,
      result.timings.warmup_seconds + result.timings.measured_seconds);
  // The analytic prediction rides along only for the non-default
  // optimizers: delta reports keep their historical byte format, and the
  // frontier's prediction-vs-simulation cross-check reads it back.
  if (params.optimizer != "delta") {
    report.extra.emplace_back("optimizer_predicted_delay",
                              result.predicted_delay);
  }
  if (result.faults_active) {
    AppendFaultExtras(params.fault, result.faults, &report);
  }
  if (result.pull_active) {
    AppendPullExtras(params.pull, result.pull_stats, &report);
  }
  if (result.adapt_active) {
    AppendAdaptExtras(params.adapt, result.adapt_stats, &report);
  }
  if (result.profile_active) {
    AppendProfileExtras(result.profile, &report);
  }
  return report;
}

void AppendFaultExtras(const fault::FaultParams& params,
                       const fault::FaultStats& stats,
                       obs::RunReport* report) {
  auto add = [report](const char* key, double value) {
    report->extra.emplace_back(key, value);
  };
  // Configured rates first (the degradation checker reads them back),
  // then the observed counters and summary statistics.
  add("fault_loss", params.loss);
  add("fault_burst_len", params.burst_len);
  add("fault_corrupt", params.corrupt);
  add("fault_doze_for", params.doze_for);
  add("fault_awake_for", params.doze_for > 0.0 ? params.awake_for : 0.0);
  add("fault_backoff_cap", params.backoff_cap);
  add("fault_deadline_arrivals",
      static_cast<double>(params.deadline_arrivals));
  add("fault_attempts", static_cast<double>(stats.attempts));
  add("fault_delivered", static_cast<double>(stats.delivered));
  add("fault_lost", static_cast<double>(stats.lost));
  add("fault_corrupted_rx", static_cast<double>(stats.corrupted));
  add("fault_retries", static_cast<double>(stats.retries));
  add("fault_delivery_ratio", stats.delivery_ratio());
  add("fault_doze_missed_arrivals",
      static_cast<double>(stats.doze_missed_arrivals));
  add("fault_deadline_expiries",
      static_cast<double>(stats.deadline_expiries));
  add("fault_loss_delayed_fetches",
      static_cast<double>(stats.loss_delayed_fetches));
  add("fault_extra_cycles_mean",
      stats.extra_cycles.count() == 0
          ? 0.0
          : stats.extra_cycles.sum() /
                static_cast<double>(stats.extra_cycles.count()));
  add("fault_extra_cycles_max", stats.extra_cycles.max());
  add("fault_resync_count", static_cast<double>(stats.resync_slots.count()));
  add("fault_resync_slots_mean",
      stats.resync_slots.count() == 0
          ? 0.0
          : stats.resync_slots.sum() /
                static_cast<double>(stats.resync_slots.count()));
  add("fault_resync_slots_max", stats.resync_slots.max());
  // Process-fault extras last, gated on their own activity: pre-process
  // fault reports keep their exact byte format.
  if (params.process.Active()) {
    add("fault_crash_every", params.process.crash_every);
    add("fault_crash_down", params.process.crash_down);
    add("fault_crash_cold", params.process.crash_cold ? 1.0 : 0.0);
    add("fault_stall_every", params.process.stall_every);
    add("fault_stall_len", params.process.stall_len);
    add("fault_slot_jitter", params.process.slot_jitter);
    add("fault_version_every", params.process.version_every);
    add("fault_crashes", static_cast<double>(stats.crashes));
    add("fault_crash_missed_arrivals",
        static_cast<double>(stats.crash_missed_arrivals));
    add("fault_stall_missed_arrivals",
        static_cast<double>(stats.stall_missed_arrivals));
    add("fault_version_bumps", static_cast<double>(stats.version_bumps));
  }
}

void AppendPullExtras(const pull::PullParams& params,
                      const pull::PullStats& stats,
                      obs::RunReport* report) {
  auto add = [report](const char* key, double value) {
    report->extra.emplace_back(key, value);
  };
  // Configured capacity first (the sweep checker reads it back), then
  // uplink accounting, service mix, and the latency split.
  add("pull_slots", static_cast<double>(params.pull_slots));
  add("pull_uplink_cap", static_cast<double>(params.uplink_cap));
  add("pull_sched", static_cast<double>(static_cast<int>(params.scheduler)));
  add("pull_threshold", params.threshold);
  add("pull_timeout_services",
      static_cast<double>(params.timeout_services));
  add("pull_requests", static_cast<double>(stats.requests_attempted));
  add("pull_re_requests", static_cast<double>(stats.re_requests));
  add("pull_uplink_accepted", static_cast<double>(stats.uplink_accepted));
  add("pull_uplink_dropped", static_cast<double>(stats.uplink_dropped));
  add("pull_uplink_lost", static_cast<double>(stats.uplink_lost));
  add("pull_serviced", static_cast<double>(stats.serviced_pages));
  add("pull_opportunities", static_cast<double>(stats.pull_opportunities));
  add("pull_idle_slots", static_cast<double>(stats.idle_pull_slots()));
  add("pull_deliveries", static_cast<double>(stats.pull_deliveries));
  add("pull_push_deliveries", static_cast<double>(stats.push_deliveries));
  add("pull_service_share", stats.pull_service_share());
  add("pull_queue_depth_mean", stats.queue_depth.mean());
  add("pull_queue_depth_max", stats.queue_depth.max());
  add("pull_latency_mean", stats.pull_latency.mean());
  add("pull_latency_count", static_cast<double>(stats.pull_latency.count()));
  add("pull_push_latency_mean", stats.push_latency.mean());
  add("pull_cold_mean_rt", stats.cold_wait.mean());
  add("pull_cold_count", static_cast<double>(stats.cold_wait.count()));
}

void AppendAdaptExtras(const adapt::AdaptParams& params,
                       const adapt::AdaptStats& stats,
                       obs::RunReport* report) {
  auto add = [report](const char* key, double value) {
    report->extra.emplace_back(key, value);
  };
  // Configured knobs first (the adapt-sweep checker reads them back),
  // then the controller's decision counts, the slot trajectory summary,
  // and the pinned cold-class latency the improvement gate compares.
  add("adapt_epoch_cycles", static_cast<double>(params.epoch_cycles));
  add("adapt_max_promote", static_cast<double>(params.max_promote));
  add("adapt_queue_high", params.queue_high);
  add("adapt_idle_low", params.idle_low);
  add("adapt_idle_high", params.idle_high);
  add("adapt_hysteresis", static_cast<double>(params.hysteresis_epochs));
  add("adapt_min_slots", static_cast<double>(params.min_slots));
  add("adapt_max_slots", static_cast<double>(params.max_slots));
  add("adapt_epochs", static_cast<double>(stats.epochs));
  add("adapt_rebuilds", static_cast<double>(stats.rebuilds));
  add("adapt_promotions", static_cast<double>(stats.promotions));
  // Reopt extras gated on their own activity, like the process-fault
  // rows: pre-reopt adaptive reports keep their exact byte format.
  if (params.reopt) {
    add("adapt_reopt", 1.0);
    add("adapt_reopts", static_cast<double>(stats.reopts));
    add("adapt_demotions", static_cast<double>(stats.demotions));
  }
  add("adapt_slot_grows", static_cast<double>(stats.slot_grows));
  add("adapt_slot_shrinks", static_cast<double>(stats.slot_shrinks));
  add("adapt_initial_slots", static_cast<double>(stats.initial_slots));
  add("adapt_final_slots", static_cast<double>(stats.final_slots));
  add("adapt_slot_range_late", static_cast<double>(stats.SlotRangeLate()));
  add("adapt_cold_mean_rt", stats.cold_wait.mean());
  add("adapt_cold_count", static_cast<double>(stats.cold_wait.count()));
}

void AppendProfileExtras(const des::DesProfile& profile,
                         obs::RunReport* report) {
  auto add = [report](const std::string& key, double value) {
    report->extra.emplace_back(key, value);
  };
  // Totals first, then every kind in enum order — a stable schema even
  // for kinds a particular run never dispatched.
  add("profile_total_dispatches",
      static_cast<double>(profile.total_dispatches()));
  add("profile_total_cpu_ns", static_cast<double>(profile.total_cpu_ns()));
  for (size_t i = 0; i < des::kNumEventKinds; ++i) {
    const std::string name =
        des::EventKindName(static_cast<des::EventKind>(i));
    add("profile_" + name + "_dispatches",
        static_cast<double>(profile.kinds[i].dispatches));
    add("profile_" + name + "_cpu_ns",
        static_cast<double>(profile.kinds[i].cpu_ns));
  }
}

}  // namespace bcast
