#include "core/simulator.h"

#include <utility>

#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "client/client.h"
#include "common/logging.h"
#include "common/rng.h"
#include "des/simulation.h"

namespace bcast {

using internal::kNoiseStream;
using internal::kProgramStream;
using internal::kRequestStream;

namespace {

Result<DiskLayout> LayoutFromParams(const SimParams& params) {
  return params.rel_freqs.empty()
             ? MakeDeltaLayout(params.disk_sizes, params.delta)
             : MakeLayout(params.disk_sizes, params.rel_freqs);
}

}  // namespace

Result<BroadcastProgram> BuildProgram(const SimParams& params) {
  BCAST_RETURN_IF_ERROR(params.Validate());
  Result<DiskLayout> layout = LayoutFromParams(params);
  if (!layout.ok()) return layout.status();

  switch (params.program_kind) {
    case ProgramKind::kMultiDisk:
      return GenerateMultiDiskProgram(*layout);
    case ProgramKind::kSkewed:
      return GenerateSkewedProgram(*layout);
    case ProgramKind::kRandom: {
      // Match the multi-disk program's period so bandwidth and cycle
      // length are comparable.
      Result<BroadcastProgram> reference = GenerateMultiDiskProgram(*layout);
      if (!reference.ok()) return reference.status();
      Rng rng = Rng(params.seed).Split(kProgramStream);
      return GenerateRandomProgram(*layout, reference->period(), &rng);
    }
  }
  return Status::Internal("unreachable program kind");
}

Result<SimResult> RunSimulation(const SimParams& params) {
  BCAST_RETURN_IF_ERROR(params.Validate());

  Result<DiskLayout> layout = LayoutFromParams(params);
  if (!layout.ok()) return layout.status();

  Result<BroadcastProgram> program = BuildProgram(params);
  if (!program.ok()) return program.status();

  const Rng master(params.seed);
  NoiseModel noise;
  noise.percent = params.noise_percent;
  noise.coin_pages = params.noise_scope == NoiseScope::kAccessRange
                         ? params.access_range
                         : 0;
  noise.destination = params.noise_destination;
  Result<Mapping> mapping = Mapping::Make(*layout, params.offset, noise,
                                          master.Split(kNoiseStream));
  if (!mapping.ok()) return mapping.status();

  Result<AccessGenerator> gen = AccessGenerator::Make(
      params.access_range, params.region_size, params.theta,
      params.think_time, params.think_kind, master.Split(kRequestStream));
  if (!gen.ok()) return gen.status();

  SimCatalog catalog(&*gen, &*program, &*mapping);
  Result<std::unique_ptr<CachePolicy>> cache = MakeCachePolicy(
      params.policy, params.cache_size,
      static_cast<PageId>(params.ServerDbSize()), &catalog,
      params.policy_options);
  if (!cache.ok()) return cache.status();

  des::Simulation sim;
  BroadcastChannel channel(&sim, &*program);
  Client client(&sim, &channel, cache->get(), &*gen, &*mapping,
                ClientRunConfig{params.measured_requests,
                                params.max_warmup_requests,
                                params.knows_schedule});
  sim.Spawn(client.Run());
  sim.Run();

  BCAST_CHECK(client.finished()) << "client did not complete its requests";

  SimResult result;
  result.metrics = client.metrics();
  result.warmup_requests = client.warmup_requests();
  result.end_time = sim.Now();
  result.period = program->period();
  result.empty_slots = program->EmptySlots();
  result.perturbed_pages = mapping->PerturbedPages();
  return result;
}

}  // namespace bcast
