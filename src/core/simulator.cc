#include "core/simulator.h"

#include <utility>

#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "client/client.h"
#include "common/logging.h"
#include "common/rng.h"
#include "des/simulation.h"

namespace bcast {

using internal::kNoiseStream;
using internal::kProgramStream;
using internal::kRequestStream;

namespace {

Result<DiskLayout> LayoutFromParams(const SimParams& params) {
  return params.rel_freqs.empty()
             ? MakeDeltaLayout(params.disk_sizes, params.delta)
             : MakeLayout(params.disk_sizes, params.rel_freqs);
}

}  // namespace

Result<BroadcastProgram> BuildProgram(const SimParams& params) {
  BCAST_RETURN_IF_ERROR(params.Validate());
  Result<DiskLayout> layout = LayoutFromParams(params);
  if (!layout.ok()) return layout.status();

  switch (params.program_kind) {
    case ProgramKind::kMultiDisk:
      return GenerateMultiDiskProgram(*layout);
    case ProgramKind::kSkewed:
      return GenerateSkewedProgram(*layout);
    case ProgramKind::kRandom: {
      // Match the multi-disk program's period so bandwidth and cycle
      // length are comparable.
      Result<BroadcastProgram> reference = GenerateMultiDiskProgram(*layout);
      if (!reference.ok()) return reference.status();
      Rng rng = Rng(params.seed).Split(kProgramStream);
      return GenerateRandomProgram(*layout, reference->period(), &rng);
    }
  }
  return Status::Internal("unreachable program kind");
}

Result<SimResult> RunSimulation(const SimParams& params) {
  return RunSimulation(params, SimObservers{});
}

Result<SimResult> RunSimulation(const SimParams& params,
                                const SimObservers& observers) {
  SimResult result;
  obs::Stopwatch total_watch;

  BCAST_RETURN_IF_ERROR(params.Validate());

  Result<DiskLayout> layout = LayoutFromParams(params);
  if (!layout.ok()) return layout.status();

  Result<BroadcastProgram> program = [&] {
    obs::ScopedTimer timer(&result.timings.build_program_seconds);
    return BuildProgram(params);
  }();
  if (!program.ok()) return program.status();

  obs::Stopwatch setup_watch;
  const Rng master(params.seed);
  NoiseModel noise;
  noise.percent = params.noise_percent;
  noise.coin_pages = params.noise_scope == NoiseScope::kAccessRange
                         ? params.access_range
                         : 0;
  noise.destination = params.noise_destination;
  Result<Mapping> mapping = Mapping::Make(*layout, params.offset, noise,
                                          master.Split(kNoiseStream));
  if (!mapping.ok()) return mapping.status();

  Result<AccessGenerator> gen = AccessGenerator::Make(
      params.access_range, params.region_size, params.theta,
      params.think_time, params.think_kind, master.Split(kRequestStream));
  if (!gen.ok()) return gen.status();

  SimCatalog catalog(&*gen, &*program, &*mapping);
  Result<std::unique_ptr<CachePolicy>> cache = MakeCachePolicy(
      params.policy, params.cache_size,
      static_cast<PageId>(params.ServerDbSize()), &catalog,
      params.policy_options);
  if (!cache.ok()) return cache.status();

  des::Simulation sim;
  BroadcastChannel channel(&sim, &*program);
  Client client(&sim, &channel, cache->get(), &*gen, &*mapping,
                ClientRunConfig{params.measured_requests,
                                params.max_warmup_requests,
                                params.knows_schedule, observers.trace});
  result.timings.setup_seconds = setup_watch.ElapsedSeconds();

  sim.Spawn(client.Run());
  sim.Run();

  BCAST_CHECK(client.finished()) << "client did not complete its requests";

  result.metrics = client.metrics();
  result.warmup_requests = client.warmup_requests();
  result.end_time = sim.Now();
  result.period = program->period();
  result.empty_slots = program->EmptySlots();
  result.perturbed_pages = mapping->PerturbedPages();
  result.timings.warmup_seconds = client.warmup_wall_seconds();
  result.timings.measured_seconds = client.measured_wall_seconds();
  result.events_dispatched = sim.events_dispatched();
  result.timings.total_seconds = total_watch.ElapsedSeconds();

  if (observers.registry != nullptr) {
    obs::MetricsRegistry& reg = *observers.registry;
    reg.GetCounter("sim/requests")->Increment(result.metrics.requests());
    reg.GetCounter("sim/cache_hits")
        ->Increment(result.metrics.cache_hits());
    reg.GetCounter("sim/warmup_requests")
        ->Increment(result.warmup_requests);
    reg.GetCounter("sim/events")->Increment(result.events_dispatched);
    reg.GetGauge("sim/period")->Set(static_cast<double>(result.period));
    reg.GetGauge("sim/end_time")->Set(result.end_time);
    reg.GetHistogram("sim/response_slots")
        ->Merge(result.metrics.response_histogram());
    reg.GetHistogram("sim/tuning_slots")
        ->Merge(result.metrics.tuning_histogram());
  }
  return result;
}

obs::RunReport MakeRunReport(const SimParams& params,
                             const SimResult& result,
                             const std::string& tool) {
  obs::RunReport report;
  report.tool = tool;
  report.mode = "single";
  report.config = params.ToString();
  report.seed = params.seed;
  report.period = result.period;
  report.empty_slots = result.empty_slots;
  report.perturbed_pages = result.perturbed_pages;
  report.requests = result.metrics.requests();
  report.warmup_requests = result.warmup_requests;
  report.cache_hits = result.metrics.cache_hits();
  report.response = result.metrics.response_histogram().Summary();
  report.tuning = result.metrics.tuning_histogram().Summary();
  report.served_per_disk = result.metrics.served_per_disk();
  report.end_time = result.end_time;
  report.timings = result.timings;
  report.events_dispatched = result.events_dispatched;
  // Simulated slots produced per wall second of event-loop work. The
  // end_time of one run approximates the slots covered; callers that sum
  // several seeds should rerun FinalizeThroughput with their own totals.
  report.FinalizeThroughput(
      result.end_time,
      result.timings.warmup_seconds + result.timings.measured_seconds);
  return report;
}

}  // namespace bcast
