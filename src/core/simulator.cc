#include "core/simulator.h"

#include <utility>

#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "client/client.h"
#include "common/logging.h"
#include "common/rng.h"
#include "des/simulation.h"

namespace bcast {

using internal::kNoiseStream;
using internal::kProgramStream;
using internal::kRequestStream;

namespace {

Result<DiskLayout> LayoutFromParams(const SimParams& params) {
  return params.rel_freqs.empty()
             ? MakeDeltaLayout(params.disk_sizes, params.delta)
             : MakeLayout(params.disk_sizes, params.rel_freqs);
}

}  // namespace

Result<BroadcastProgram> BuildProgram(const SimParams& params) {
  BCAST_RETURN_IF_ERROR(params.Validate());
  Result<DiskLayout> layout = LayoutFromParams(params);
  if (!layout.ok()) return layout.status();

  switch (params.program_kind) {
    case ProgramKind::kMultiDisk:
      return GenerateMultiDiskProgram(*layout);
    case ProgramKind::kSkewed:
      return GenerateSkewedProgram(*layout);
    case ProgramKind::kRandom: {
      // Match the multi-disk program's period so bandwidth and cycle
      // length are comparable.
      Result<BroadcastProgram> reference = GenerateMultiDiskProgram(*layout);
      if (!reference.ok()) return reference.status();
      Rng rng = Rng(params.seed).Split(kProgramStream);
      return GenerateRandomProgram(*layout, reference->period(), &rng);
    }
  }
  return Status::Internal("unreachable program kind");
}

Result<SimResult> RunSimulation(const SimParams& params) {
  return RunSimulation(params, SimObservers{});
}

Result<SimResult> RunSimulation(const SimParams& params,
                                const SimObservers& observers) {
  SimResult result;
  obs::Stopwatch total_watch;

  BCAST_RETURN_IF_ERROR(params.Validate());

  Result<DiskLayout> layout = LayoutFromParams(params);
  if (!layout.ok()) return layout.status();

  Result<BroadcastProgram> program = [&] {
    obs::ScopedTimer timer(&result.timings.build_program_seconds);
    return BuildProgram(params);
  }();
  if (!program.ok()) return program.status();

  obs::Stopwatch setup_watch;
  const Rng master(params.seed);
  NoiseModel noise;
  noise.percent = params.noise_percent;
  noise.coin_pages = params.noise_scope == NoiseScope::kAccessRange
                         ? params.access_range
                         : 0;
  noise.destination = params.noise_destination;
  Result<Mapping> mapping = Mapping::Make(*layout, params.offset, noise,
                                          master.Split(kNoiseStream));
  if (!mapping.ok()) return mapping.status();

  Result<AccessGenerator> gen = AccessGenerator::Make(
      params.access_range, params.region_size, params.theta,
      params.think_time, params.think_kind, master.Split(kRequestStream));
  if (!gen.ok()) return gen.status();

  SimCatalog catalog(&*gen, &*program, &*mapping);
  Result<std::unique_ptr<CachePolicy>> cache = MakeCachePolicy(
      params.policy, params.cache_size,
      static_cast<PageId>(params.ServerDbSize()), &catalog,
      params.policy_options);
  if (!cache.ok()) return cache.status();

  des::Simulation sim;
  BroadcastChannel channel(&sim, &*program);
  // The receiver exists only for active fault params: an inactive run
  // builds no fault machinery and draws no extra randomness.
  std::unique_ptr<fault::Receiver> receiver;
  if (params.fault.Active()) {
    receiver = fault::MakeReceiver(params.fault, /*client_id=*/0,
                                   static_cast<double>(program->period()));
  }
  Client client(&sim, &channel, cache->get(), &*gen, &*mapping,
                ClientRunConfig{params.measured_requests,
                                params.max_warmup_requests,
                                params.knows_schedule, observers.trace,
                                receiver.get()});
  result.timings.setup_seconds = setup_watch.ElapsedSeconds();

  sim.Spawn(client.Run());
  sim.Run();

  BCAST_CHECK(client.finished()) << "client did not complete its requests";

  result.metrics = client.metrics();
  result.warmup_requests = client.warmup_requests();
  result.end_time = sim.Now();
  result.period = program->period();
  result.empty_slots = program->EmptySlots();
  result.perturbed_pages = mapping->PerturbedPages();
  result.timings.warmup_seconds = client.warmup_wall_seconds();
  result.timings.measured_seconds = client.measured_wall_seconds();
  result.events_dispatched = sim.events_dispatched();
  result.timings.total_seconds = total_watch.ElapsedSeconds();
  if (receiver != nullptr) {
    result.faults = receiver->stats();
    result.faults_active = true;
  }

  if (observers.registry != nullptr) {
    obs::MetricsRegistry& reg = *observers.registry;
    reg.GetCounter("sim/requests")->Increment(result.metrics.requests());
    reg.GetCounter("sim/cache_hits")
        ->Increment(result.metrics.cache_hits());
    reg.GetCounter("sim/warmup_requests")
        ->Increment(result.warmup_requests);
    reg.GetCounter("sim/events")->Increment(result.events_dispatched);
    reg.GetGauge("sim/period")->Set(static_cast<double>(result.period));
    reg.GetGauge("sim/end_time")->Set(result.end_time);
    reg.GetHistogram("sim/response_slots")
        ->Merge(result.metrics.response_histogram());
    reg.GetHistogram("sim/tuning_slots")
        ->Merge(result.metrics.tuning_histogram());
    if (result.faults_active) {
      const fault::FaultStats& fs = result.faults;
      reg.GetCounter("fault/attempts")->Increment(fs.attempts);
      reg.GetCounter("fault/delivered")->Increment(fs.delivered);
      reg.GetCounter("fault/lost")->Increment(fs.lost);
      reg.GetCounter("fault/corrupted")->Increment(fs.corrupted);
      reg.GetCounter("fault/retries")->Increment(fs.retries);
      reg.GetCounter("fault/doze_missed_arrivals")
          ->Increment(fs.doze_missed_arrivals);
      reg.GetCounter("fault/deadline_expiries")
          ->Increment(fs.deadline_expiries);
      reg.GetCounter("fault/loss_delayed_fetches")
          ->Increment(fs.loss_delayed_fetches);
      reg.GetGauge("fault/delivery_ratio")->Set(fs.delivery_ratio());
      reg.GetHistogram("fault/extra_cycles")->Merge(fs.extra_cycles);
      reg.GetHistogram("fault/resync_slots")->Merge(fs.resync_slots);
    }
  }
  return result;
}

obs::RunReport MakeRunReport(const SimParams& params,
                             const SimResult& result,
                             const std::string& tool) {
  obs::RunReport report;
  report.tool = tool;
  report.mode = "single";
  report.config = params.ToString();
  report.seed = params.seed;
  report.period = result.period;
  report.empty_slots = result.empty_slots;
  report.perturbed_pages = result.perturbed_pages;
  report.requests = result.metrics.requests();
  report.warmup_requests = result.warmup_requests;
  report.cache_hits = result.metrics.cache_hits();
  report.response = result.metrics.response_histogram().Summary();
  report.tuning = result.metrics.tuning_histogram().Summary();
  report.served_per_disk = result.metrics.served_per_disk();
  report.end_time = result.end_time;
  report.timings = result.timings;
  report.events_dispatched = result.events_dispatched;
  // Simulated slots produced per wall second of event-loop work. The
  // end_time of one run approximates the slots covered; callers that sum
  // several seeds should rerun FinalizeThroughput with their own totals.
  report.FinalizeThroughput(
      result.end_time,
      result.timings.warmup_seconds + result.timings.measured_seconds);
  if (result.faults_active) {
    AppendFaultExtras(params.fault, result.faults, &report);
  }
  return report;
}

void AppendFaultExtras(const fault::FaultParams& params,
                       const fault::FaultStats& stats,
                       obs::RunReport* report) {
  auto add = [report](const char* key, double value) {
    report->extra.emplace_back(key, value);
  };
  // Configured rates first (the degradation checker reads them back),
  // then the observed counters and summary statistics.
  add("fault_loss", params.loss);
  add("fault_burst_len", params.burst_len);
  add("fault_corrupt", params.corrupt);
  add("fault_doze_for", params.doze_for);
  add("fault_awake_for", params.doze_for > 0.0 ? params.awake_for : 0.0);
  add("fault_backoff_cap", params.backoff_cap);
  add("fault_deadline_arrivals",
      static_cast<double>(params.deadline_arrivals));
  add("fault_attempts", static_cast<double>(stats.attempts));
  add("fault_delivered", static_cast<double>(stats.delivered));
  add("fault_lost", static_cast<double>(stats.lost));
  add("fault_corrupted_rx", static_cast<double>(stats.corrupted));
  add("fault_retries", static_cast<double>(stats.retries));
  add("fault_delivery_ratio", stats.delivery_ratio());
  add("fault_doze_missed_arrivals",
      static_cast<double>(stats.doze_missed_arrivals));
  add("fault_deadline_expiries",
      static_cast<double>(stats.deadline_expiries));
  add("fault_loss_delayed_fetches",
      static_cast<double>(stats.loss_delayed_fetches));
  add("fault_extra_cycles_mean",
      stats.extra_cycles.count() == 0
          ? 0.0
          : stats.extra_cycles.sum() /
                static_cast<double>(stats.extra_cycles.count()));
  add("fault_extra_cycles_max", stats.extra_cycles.max());
  add("fault_resync_count", static_cast<double>(stats.resync_slots.count()));
  add("fault_resync_slots_mean",
      stats.resync_slots.count() == 0
          ? 0.0
          : stats.resync_slots.sum() /
                static_cast<double>(stats.resync_slots.count()));
  add("fault_resync_slots_max", stats.resync_slots.max());
}

}  // namespace bcast
