#include "core/sim_config.h"

#include <utility>
#include <vector>

#include "common/string_util.h"

namespace bcast {

void SimConfig::RegisterFlags(FlagSet* flags) {
  flags->AddString("disks", &disks, "comma-separated pages per disk");
  flags->AddUint64("delta", &params.delta,
                   "broadcast shape: rel_freq(i) = (N-i)*delta + 1");
  flags->AddString("program", &program,
                   "program kind: multidisk | skewed | random");
  flags->AddString("optimizer", &params.optimizer,
                   "schedule optimizer for the multi-disk program: "
                   "delta | ksy | rbo");
  flags->AddString("policy", &policy,
                   "cache policy: p|pix|lru|l|lix|plix|lru-k|2q|clock");
  flags->AddUint64("cache_size", &params.cache_size, "client cache pages");
  flags->AddUint64("offset", &params.offset,
                   "hot pages shifted to the slow-disk tail");
  flags->AddDouble("noise", &params.noise_percent,
                   "percent of pages with perturbed mapping");
  flags->AddString("noise_scope", &noise_scope,
                   "noise coin population: access_range | all");
  flags->AddUint64("access_range", &params.access_range,
                   "pages the client requests");
  flags->AddDouble("theta", &params.theta, "Zipf skew");
  flags->AddUint64("region_size", &params.region_size, "pages per region");
  flags->AddDouble("think_time", &params.think_time,
                   "pause between requests (broadcast units)");
  flags->AddUint64("requests", &params.measured_requests,
                   "measured requests");
  flags->AddBool("knows_schedule", &params.knows_schedule,
                 "client dozes to its page's slot (tuning metric only)");
  flags->AddDouble("loss", &params.fault.loss,
                   "per-transmission loss probability in [0, 1)");
  flags->AddDouble("burst_len", &params.fault.burst_len,
                   "mean loss-burst length (<=1: i.i.d., >1: Gilbert-"
                   "Elliott)");
  flags->AddDouble("corrupt", &params.fault.corrupt,
                   "per-reception corruption probability in [0, 1)");
  flags->AddDouble("doze", &params.fault.doze_for,
                   "slots the radio dozes per duty cycle (0 = always on)");
  flags->AddDouble("doze_awake", &params.fault.awake_for,
                   "slots the radio is awake per duty cycle");
  flags->AddUint64("fault_seed", &params.fault.fault_seed,
                   "fault RNG seed (independent of --seed)");
  flags->AddUint64("deadline_k", &params.fault.deadline_arrivals,
                   "reception deadline in guaranteed inter-arrival gaps");
  flags->AddDouble("backoff_base", &params.fault.backoff_base,
                   "retry backoff base delay (slots)");
  flags->AddDouble("backoff_cap", &params.fault.backoff_cap,
                   "retry backoff cap (slots)");
  flags->AddDouble("crash_every", &params.fault.process.crash_every,
                   "mean slots between client crash-restarts (0 = never)");
  flags->AddDouble("crash_down", &params.fault.process.crash_down,
                   "slots the client stays down per crash (0 = instant "
                   "reboot)");
  flags->AddString("crash_cache", &crash_cache,
                   "cache fate across a crash: warm (survives) | cold "
                   "(wiped)");
  flags->AddDouble("stall_every", &params.fault.process.stall_every,
                   "mean slots between server transmission stalls");
  flags->AddDouble("stall_len", &params.fault.process.stall_len,
                   "slots each server stall silences the broadcast");
  flags->AddDouble("slot_jitter", &params.fault.process.slot_jitter,
                   "max slot-boundary jitter in slots, in [0, 1)");
  flags->AddDouble("version_every", &params.fault.process.version_every,
                   "slots between schedule-version bumps (0 = never)");
  flags->AddUint64("pull_slots", &params.pull.pull_slots,
                   "pull slots interleaved per minor cycle (0 = pure "
                   "push)");
  flags->AddUint64("uplink_cap", &params.pull.uplink_cap,
                   "backchannel requests accepted per broadcast slot");
  flags->AddString("pull_sched", &pull_sched,
                   "pull-slot scheduler: fcfs | mrf | lxw");
  flags->AddString("des_queue", &des_queue,
                   "DES pending-event backend: heap | calendar | auto "
                   "(auto picks heap for tiny populations; default auto, "
                   "or $BCAST_DES_QUEUE; never changes results)");
  flags->AddDouble("pull_threshold", &params.pull.threshold,
                   "request only when the scheduled wait exceeds this "
                   "many slots");
  flags->AddUint64("pull_timeout", &params.pull.timeout_services,
                   "re-request timeout in pull service intervals");
  flags->AddBool("pull_force", &params.pull.force,
                 "build the pull machinery even with zero pull slots");
  flags->AddUint64("adapt_epoch", &params.adapt.epoch_cycles,
                   "control epoch in major cycles (0 = static program)");
  flags->AddUint64("adapt_promote", &params.adapt.max_promote,
                   "max pages promoted a disk hotter per epoch");
  flags->AddDouble("adapt_queue_high", &params.adapt.queue_high,
                   "grow pull slots when mean queue depth exceeds this");
  flags->AddDouble("adapt_idle_low", &params.adapt.idle_low,
                   "...and the idle-pull-slot rate is below this");
  flags->AddDouble("adapt_idle_high", &params.adapt.idle_high,
                   "shrink pull slots when the idle rate exceeds this");
  flags->AddUint64("adapt_hysteresis", &params.adapt.hysteresis_epochs,
                   "epochs a grow/shrink signal must persist to act");
  flags->AddUint64("adapt_min_slots", &params.adapt.min_slots,
                   "pull-slot floor the controller may choose");
  flags->AddUint64("adapt_max_slots", &params.adapt.max_slots,
                   "pull-slot ceiling the controller may choose");
  flags->AddBool("adapt_reopt", &params.adapt.reopt,
                 "re-run the schedule optimizer each epoch on measured "
                 "access frequencies (demotes as well as promotes)");
  flags->AddUint64("shards", &pop.shards,
                   "population worker shards (1 = classic single-threaded "
                   "path; results are shard-count invariant)");
  flags->AddString("pop_classes", &pop_classes,
                   "receiver classes \"name:frac[:loss_scale[:doze_scale]]"
                   ",...\" (population mode)");
  flags->AddBool("force_pop_engine", &pop.force_engine,
                 "route population runs through the sharded engine even "
                 "with --shards=1");
  flags->AddUint64("seed", &params.seed, "master RNG seed");
}

Status SimConfig::Finalize(const FlagSet* flags) {
  // Set-ness coherence first: these reject flag *combinations* that the
  // default values would silently swallow (e.g. `--burst_len 4` with no
  // loss model configured at all). Only meaningful against a parsed
  // command line.
  if (flags != nullptr) {
    if (flags->WasSet("burst_len") && !flags->WasSet("loss")) {
      return Status::InvalidArgument(
          "--burst_len shapes the loss process; it needs --loss");
    }
    if (flags->WasSet("doze_awake") && !flags->WasSet("doze")) {
      return Status::InvalidArgument(
          "--doze_awake sets the duty cycle's on-phase; it needs --doze");
    }
    for (const char* name : {"crash_down", "crash_cache"}) {
      if (flags->WasSet(name) && !flags->WasSet("crash_every")) {
        return Status::InvalidArgument(
            std::string("--") + name +
            " shapes the crash-restart process; it needs --crash_every");
      }
    }
    if (flags->WasSet("stall_len") && !flags->WasSet("stall_every")) {
      return Status::InvalidArgument(
          "--stall_len sizes the server stalls; it needs --stall_every");
    }
    if (flags->WasSet("uplink_cap") && !flags->WasSet("pull_slots") &&
        !flags->WasSet("pull_force")) {
      return Status::InvalidArgument(
          "--uplink_cap sizes the pull backchannel; it needs "
          "--pull_slots (or --pull_force)");
    }
    // The adaptive controller needs a signal to adapt to: a loss model
    // (frequency repair), pull capacity (slot control), or measured
    // demand (--adapt_reopt re-optimization).
    const bool fault_set = flags->WasSet("loss") ||
                           flags->WasSet("corrupt") ||
                           flags->WasSet("doze");
    const bool pull_set =
        flags->WasSet("pull_slots") || flags->WasSet("pull_force");
    if (flags->WasSet("adapt_epoch") && !fault_set && !pull_set &&
        !flags->WasSet("adapt_reopt")) {
      return Status::InvalidArgument(
          "--adapt_epoch adapts to measured loss, pull load, or measured "
          "demand; it needs --loss (or --corrupt/--doze), --pull_slots "
          "(or --pull_force), or --adapt_reopt");
    }
    // And the controller knobs need the controller.
    for (const char* name :
         {"adapt_promote", "adapt_queue_high", "adapt_idle_low",
          "adapt_idle_high", "adapt_hysteresis", "adapt_min_slots",
          "adapt_max_slots", "adapt_reopt"}) {
      if (flags->WasSet(name) && !flags->WasSet("adapt_epoch")) {
        return Status::InvalidArgument(
            std::string("--") + name +
            " tunes the epoch controller; it needs --adapt_epoch");
      }
    }
  }

  Result<std::vector<uint64_t>> sizes = ParseUint64List(disks);
  if (!sizes.ok()) {
    return Status::InvalidArgument("--disks: " +
                                   sizes.status().ToString());
  }
  params.disk_sizes = *sizes;

  Result<PolicyKind> kind = ParsePolicyKind(policy);
  if (!kind.ok()) return kind.status();
  params.policy = *kind;

  if (program == "multidisk") {
    params.program_kind = ProgramKind::kMultiDisk;
  } else if (program == "skewed") {
    params.program_kind = ProgramKind::kSkewed;
  } else if (program == "random") {
    params.program_kind = ProgramKind::kRandom;
  } else {
    return Status::InvalidArgument("unknown --program: " + program +
                                   " (multidisk|skewed|random)");
  }

  if (noise_scope == "access_range") {
    params.noise_scope = NoiseScope::kAccessRange;
  } else if (noise_scope == "all") {
    params.noise_scope = NoiseScope::kAllPages;
  } else {
    return Status::InvalidArgument("unknown --noise_scope: " +
                                   noise_scope + " (access_range|all)");
  }

  if (crash_cache == "warm") {
    params.fault.process.crash_cold = false;
  } else if (crash_cache == "cold") {
    params.fault.process.crash_cold = true;
  } else {
    return Status::InvalidArgument("unknown --crash_cache: " + crash_cache +
                                   " (warm|cold)");
  }

  if (!des_queue.empty() &&
      !des::ParseQueueBackend(des_queue, &params.des_queue)) {
    return Status::InvalidArgument("unknown --des_queue: " + des_queue +
                                   " (heap|calendar|auto)");
  }

  Result<pull::PullScheduler> sched =
      pull::ParsePullScheduler(pull_sched);
  if (!sched.ok()) {
    return Status::InvalidArgument("--pull_sched: " +
                                   sched.status().ToString());
  }
  params.pull.scheduler = *sched;

  if (!pop_classes.empty()) {
    Result<std::vector<pop::ClassProfile>> classes =
        pop::ParseClassProfiles(pop_classes);
    if (!classes.ok()) {
      return Status::InvalidArgument("--pop_classes: " +
                                     classes.status().ToString());
    }
    pop.classes = std::move(*classes);
  }
  Status pop_status = pop.Validate();
  if (!pop_status.ok()) return pop_status;

  return params.Validate();
}

}  // namespace bcast
