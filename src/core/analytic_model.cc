#include "core/analytic_model.h"

#include <algorithm>
#include <numeric>

#include "broadcast/analysis.h"
#include "broadcast/generator.h"
#include "common/logging.h"
#include "core/simulator.h"

namespace bcast {

Result<AnalyticPrediction> PredictResponse(const SimParams& params) {
  BCAST_RETURN_IF_ERROR(params.Validate());
  const bool cacheless = params.cache_size == 1;
  if (!cacheless && params.policy != PolicyKind::kP &&
      params.policy != PolicyKind::kPix) {
    return Status::Unimplemented(
        "closed form exists only for P, PIX, or the cache-less baseline; "
        "policy " +
        PolicyKindName(params.policy) + " is history-dependent");
  }

  Result<DiskLayout> layout =
      params.rel_freqs.empty()
          ? MakeDeltaLayout(params.disk_sizes, params.delta)
          : MakeLayout(params.disk_sizes, params.rel_freqs);
  if (!layout.ok()) return layout.status();

  Result<BroadcastProgram> program = BuildProgram(params);
  if (!program.ok()) return program.status();

  // Identical noise realization to RunSimulation's.
  const Rng master(params.seed);
  NoiseModel noise;
  noise.percent = params.noise_percent;
  noise.coin_pages = params.noise_scope == NoiseScope::kAccessRange
                         ? params.access_range
                         : 0;
  noise.destination = params.noise_destination;
  Result<Mapping> mapping =
      Mapping::Make(*layout, params.offset, noise,
                    master.Split(internal::kNoiseStream));
  if (!mapping.ok()) return mapping.status();

  Result<RegionZipfGenerator> zipf = RegionZipfGenerator::Make(
      params.access_range, params.region_size, params.theta);
  if (!zipf.ok()) return zipf.status();

  // Steady-state cache content: top-CacheSize pages by the policy's
  // static value. Equal-value boundary pages are chosen by page id;
  // arrival order decides in the simulator, but since tied pages have
  // equal probability the hit rate is unaffected and the disk breakdown
  // only marginally so.
  std::vector<PageId> cached;
  if (!cacheless) {
    std::vector<std::pair<double, PageId>> values;
    values.reserve(params.access_range);
    for (PageId l = 0; l < params.access_range; ++l) {
      double value = zipf->Probability(l);
      if (params.policy == PolicyKind::kPix) {
        const double freq =
            program->NormalizedFrequency(mapping->ToPhysical(l));
        BCAST_CHECK_GT(freq, 0.0);
        value /= freq;
      }
      values.emplace_back(value, l);
    }
    const size_t k =
        std::min<size_t>(params.cache_size, values.size());
    std::partial_sort(values.begin(), values.begin() + k, values.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    cached.reserve(k);
    for (size_t i = 0; i < k; ++i) cached.push_back(values[i].second);
  }
  std::vector<bool> is_cached(params.access_range, false);
  for (PageId l : cached) is_cached[l] = true;

  AnalyticPrediction prediction;
  prediction.cached_pages = std::move(cached);
  prediction.disk_fractions.assign(program->num_disks(), 0.0);
  for (PageId l = 0; l < params.access_range; ++l) {
    const double p = zipf->Probability(l);
    if (p <= 0.0) continue;
    if (is_cached[l]) {
      prediction.hit_rate += p;
      continue;
    }
    const PageId physical = mapping->ToPhysical(l);
    prediction.response_time +=
        p * (ExpectedDelay(*program, physical) + 1.0);
    prediction.disk_fractions[program->DiskOf(physical)] += p;
  }
  return prediction;
}

}  // namespace bcast
