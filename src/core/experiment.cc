#include "core/experiment.h"

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"

namespace bcast {

namespace {

// Mean response over `replications` consecutive seeds of `params`.
Result<double> ReplicatedMean(const SimParams& params,
                              uint64_t replications) {
  BCAST_CHECK_GE(replications, 1u);
  double sum = 0.0;
  for (uint64_t i = 0; i < replications; ++i) {
    SimParams run = params;
    run.seed = params.seed + i;
    Result<SimResult> result = RunSimulation(run);
    if (!result.ok()) return result.status();
    sum += result->metrics.mean_response_time();
  }
  return sum / static_cast<double>(replications);
}

}  // namespace

Result<std::vector<double>> SweepDelta(const SimParams& base,
                                       const std::vector<uint64_t>& deltas,
                                       uint64_t replications) {
  std::vector<double> out;
  out.reserve(deltas.size());
  for (uint64_t delta : deltas) {
    SimParams params = base;
    params.delta = delta;
    params.rel_freqs.clear();  // delta drives the frequencies
    Result<double> mean = ReplicatedMean(params, replications);
    if (!mean.ok()) return mean.status();
    out.push_back(*mean);
  }
  return out;
}

Result<std::vector<double>> SweepNoise(const SimParams& base,
                                       const std::vector<double>& noises,
                                       uint64_t replications) {
  std::vector<double> out;
  out.reserve(noises.size());
  for (double noise : noises) {
    SimParams params = base;
    params.noise_percent = noise;
    Result<double> mean = ReplicatedMean(params, replications);
    if (!mean.ok()) return mean.status();
    out.push_back(*mean);
  }
  return out;
}

Result<RunningStat> ReplicateResponse(const SimParams& params,
                                      uint64_t num_seeds) {
  BCAST_CHECK_GE(num_seeds, 1u);
  RunningStat stat;
  for (uint64_t i = 0; i < num_seeds; ++i) {
    SimParams run = params;
    run.seed = params.seed + i;
    Result<SimResult> result = RunSimulation(run);
    if (!result.ok()) return result.status();
    stat.Add(result->metrics.mean_response_time());
  }
  return stat;
}

void PrintXYTable(std::ostream& out, const std::string& title,
                  const std::string& x_name, const std::vector<double>& xs,
                  const std::vector<Series>& series, int precision) {
  out << title << "\n";
  std::vector<std::string> headers{x_name};
  for (const Series& s : series) {
    BCAST_CHECK_EQ(s.y.size(), xs.size())
        << "series '" << s.label << "' length mismatch";
    headers.push_back(s.label);
  }
  AsciiTable table(std::move(headers));
  for (size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(FormatDouble(xs[i], xs[i] == static_cast<uint64_t>(xs[i])
                                          ? 0
                                          : precision));
    for (const Series& s : series) {
      row.push_back(FormatDouble(s.y[i], precision));
    }
    table.AddRow(std::move(row));
  }
  table.Print(out);
}

void PrintXYCsv(std::ostream& out, const std::string& x_name,
                const std::vector<double>& xs,
                const std::vector<Series>& series, int precision) {
  CsvWriter csv(&out);
  std::vector<std::string> header{x_name};
  for (const Series& s : series) header.push_back(s.label);
  csv.WriteHeader(header);
  for (size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{FormatDouble(xs[i], precision)};
    for (const Series& s : series) {
      row.push_back(FormatDouble(s.y[i], precision));
    }
    csv.WriteRow(row);
  }
}

void PrintLocationTable(std::ostream& out, const std::string& title,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::vector<double>>& fractions) {
  BCAST_CHECK_EQ(row_labels.size(), fractions.size());
  BCAST_CHECK(!fractions.empty());
  const size_t num_disks = fractions[0].size() - 1;

  out << title << "\n";
  std::vector<std::string> headers{"Policy", "Cache%"};
  for (size_t d = 0; d < num_disks; ++d) {
    headers.push_back("Disk" + std::to_string(d + 1) + "%");
  }
  AsciiTable table(std::move(headers));
  for (size_t r = 0; r < fractions.size(); ++r) {
    BCAST_CHECK_EQ(fractions[r].size(), num_disks + 1);
    std::vector<std::string> row{row_labels[r]};
    for (double f : fractions[r]) {
      row.push_back(FormatDouble(100.0 * f, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(out);
}

}  // namespace bcast
