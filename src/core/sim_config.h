/// \file sim_config.h
/// \brief The consolidated command-line surface of a simulation run.
///
/// Before this struct existed, every tool and driver re-plumbed the same
/// two dozen simulation flags by hand and re-stated the flag-coherence
/// rules (or forgot to). `SimConfig` owns the whole surface once:
///
///   - `RegisterFlags` binds every simulation flag of SimParams — server
///     geometry, client workload, policy, faults, pull, adaptation — to
///     one `FlagSet`;
///   - `Finalize` parses the string-typed fields (disk list, policy,
///     program kind, noise scope, pull scheduler), enforces every
///     *set-ness* coherence rule (`--burst_len` without `--loss`,
///     `--adapt_epoch` without a loss or pull signal, ...), and runs
///     `SimParams::Validate()` — so a tool cannot accept a combination
///     another tool would reject.
///
/// Tools add their own non-simulation flags (mode, report paths, trace
/// sinks) to the same FlagSet before parsing. Programmatic users (bench
/// drivers, tests) fill the fields directly and call `Finalize(nullptr)`:
/// the set-ness rules are skipped (there is no command line) but parsing
/// and validation still apply.

#ifndef BCAST_CORE_SIM_CONFIG_H_
#define BCAST_CORE_SIM_CONFIG_H_

#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "core/params.h"
#include "pop/pop_params.h"

namespace bcast {

/// \brief One validated simulation configuration, built from flags or
/// filled programmatically.
struct SimConfig {
  /// The validated product; numeric and boolean flags bind directly into
  /// it, string-typed fields below are parsed into it by `Finalize`.
  SimParams params;

  /// Population-engine knobs (`--shards`, `--pop_classes`,
  /// `--force_pop_engine`); `pop.clients` is stamped by the tool from its
  /// population-size flag. Only population-mode tools consult this.
  pop::PopParams pop;

  /// \name Raw string-typed fields (flag syntax), parsed by `Finalize`.
  /// @{
  std::string disks = "500,2000,2500";  ///< comma-separated disk sizes
  std::string policy = "lru";           ///< cache policy name
  std::string program = "multidisk";    ///< multidisk | skewed | random
  std::string noise_scope = "access_range";  ///< access_range | all
  std::string pull_sched = "fcfs";      ///< fcfs | mrf | lxw
  std::string des_queue;  ///< heap | calendar | auto ("" = default)
  std::string crash_cache = "warm";     ///< warm | cold (restart cache fate)
  std::string pop_classes;  ///< "name:frac[:loss[:doze]],..." receiver classes
  /// @}

  /// Registers every simulation flag on \p flags, bound to this config.
  /// The config must outlive the FlagSet's Parse call.
  void RegisterFlags(FlagSet* flags);

  /// Parses the string fields into `params`, enforces the flag-coherence
  /// rules against \p flags (skipped when null — programmatic use), and
  /// validates. On error the message is exactly what the tool should
  /// print (a usage error, exit code 2 by convention).
  Status Finalize(const FlagSet* flags);
};

}  // namespace bcast

#endif  // BCAST_CORE_SIM_CONFIG_H_
