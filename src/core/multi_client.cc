#include "core/multi_client.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <numeric>
#include <string>

#include "adapt/controller.h"
#include "adapt/loss_monitor.h"
#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "broadcast/schedule_optimizer.h"
#include "client/client.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/client_world.h"
#include "core/simulator.h"
#include "des/simulation.h"
#include "fault/fault_model.h"
#include "obs/stats_stream.h"
#include "obs/timeline.h"
#include "pull/hybrid.h"
#include "pull/pull_client.h"
#include "pull/pull_server.h"

namespace bcast {
namespace {

// Sub-stream tag of the random-program draw. Per-client tags live in
// core/client_world.cc with the shared assembly code.
constexpr uint64_t kProgramStream = 3;

}  // namespace

// Each addend is non-increasing hottest-first, so the mean is too, as
// the optimizers require.
std::vector<double> PopulationNominalProbs(const MultiClientParams& params) {
  const uint64_t db = params.ServerDbSize();
  std::vector<double> probs(db, 0.0);
  for (const ClientSpec& spec : params.clients) {
    const std::vector<double> one = NominalAccessProbs(
        spec.access_range, spec.region_size, spec.theta, db);
    for (uint64_t page = 0; page < db; ++page) probs[page] += one[page];
  }
  const double scale = 1.0 / static_cast<double>(params.clients.size());
  for (double& p : probs) p *= scale;
  return probs;
}

uint64_t MultiClientParams::ServerDbSize() const {
  return std::accumulate(disk_sizes.begin(), disk_sizes.end(), uint64_t{0});
}

Status MultiClientParams::Validate() const {
  if (clients.empty()) {
    return Status::InvalidArgument("population needs at least one client");
  }
  const uint64_t db = ServerDbSize();
  Result<DiskLayout> layout =
      rel_freqs.empty() ? MakeDeltaLayout(disk_sizes, delta)
                        : MakeLayout(disk_sizes, rel_freqs);
  if (!layout.ok()) return layout.status();
  for (size_t c = 0; c < clients.size(); ++c) {
    const ClientSpec& spec = clients[c];
    const std::string who = "client " + std::to_string(c) + ": ";
    if (spec.access_range == 0 || spec.access_range > db) {
      return Status::InvalidArgument(who +
                                     "access_range must be in [1, DBSize]");
    }
    if (spec.region_size == 0) {
      return Status::InvalidArgument(who + "region_size must be positive");
    }
    if (spec.cache_size == 0) {
      return Status::InvalidArgument(who + "cache_size must be >= 1");
    }
    if (spec.interest_shift >= db) {
      return Status::InvalidArgument(who + "interest_shift must be < DBSize");
    }
    if (spec.offset > db) {
      return Status::InvalidArgument(who + "offset must be <= DBSize");
    }
    if (spec.noise_percent < 0.0 || spec.noise_percent > 100.0) {
      return Status::InvalidArgument(who + "noise must be in [0, 100]");
    }
    if (spec.think_time < 0.0) {
      return Status::InvalidArgument(who + "think_time must be >= 0");
    }
    if (spec.loss_scale < 0.0) {
      return Status::InvalidArgument(who + "loss_scale must be >= 0");
    }
    if (spec.doze_scale < 0.0) {
      return Status::InvalidArgument(who + "doze_scale must be >= 0");
    }
  }
  if (measured_requests == 0) {
    return Status::InvalidArgument("measured_requests must be positive");
  }
  if (FindScheduleOptimizer(optimizer) == nullptr) {
    return Status::InvalidArgument(
        "unknown optimizer: " + optimizer + " (delta|ksy|rbo)");
  }
  if (optimizer != "delta") {
    if (program_kind != ProgramKind::kMultiDisk) {
      return Status::InvalidArgument(
          "--optimizer applies to the multi-disk program; use "
          "--program=multidisk with --optimizer=" + optimizer);
    }
    if (!rel_freqs.empty()) {
      return Status::InvalidArgument(
          "explicit --freqs pin the schedule; they require "
          "--optimizer=delta");
    }
  }
  Status fault_status = fault.Validate();
  if (!fault_status.ok()) return fault_status;
  Status pull_status = pull.Validate();
  if (!pull_status.ok()) return pull_status;
  if (pull.Active() && program_kind != ProgramKind::kMultiDisk) {
    return Status::InvalidArgument(
        "pull slots interleave into the multi-disk program's minor "
        "cycles; use the multi-disk program with pull");
  }
  if (pull.Active() && optimizer == "rbo") {
    return Status::InvalidArgument(
        "pull slots interleave into chunked minor cycles, which "
        "bit-reversal schedules do not have; use --optimizer=delta or "
        "ksy with pull");
  }
  Status adapt_status = adapt.Validate();
  if (!adapt_status.ok()) return adapt_status;
  if (adapt.Active()) {
    if (program_kind != ProgramKind::kMultiDisk) {
      return Status::InvalidArgument(
          "the adaptive controller regenerates the multi-disk program; "
          "use the multi-disk program with adaptation");
    }
    if (adapt.reopt) {
      return Status::InvalidArgument(
          "measured-frequency re-optimization (--adapt_reopt) is "
          "single-client only: a population has no one demand ranking "
          "to re-seat by");
    }
    if (!fault.Active() && !pull.Active()) {
      return Status::InvalidArgument(
          "adaptation needs a signal to adapt to: enable the fault model "
          "for frequency repair or pull for slot control");
    }
  }
  return Status::OK();
}

Result<MultiClientResult> RunMultiClientSimulation(
    const MultiClientParams& params) {
  return RunMultiClientSimulation(params, SimObservers{});
}

Result<MultiClientResult> RunMultiClientSimulation(
    const MultiClientParams& params, const SimObservers& observers) {
  obs::Stopwatch total_watch;
  obs::PhaseTimings timings;

  BCAST_RETURN_IF_ERROR(params.Validate());

  const Rng master(params.seed);
  // The configured optimizer designs layout and program together. With
  // active pull params the air carries the hybrid program: the
  // optimizer's program with pull slots interleaved into every minor
  // cycle (slot-identical to the plain program when pull_slots == 0).
  pull::HybridLayout hybrid_layout;
  Result<ServerSchedule> schedule = [&]() -> Result<ServerSchedule> {
    obs::ScopedTimer timer(&timings.build_program_seconds);
    if (params.program_kind == ProgramKind::kMultiDisk) {
      const ScheduleOptimizer* optimizer =
          FindScheduleOptimizer(params.optimizer);
      BCAST_CHECK(optimizer != nullptr);  // Validate() vetted the name
      OptimizerRequest request;
      request.disk_sizes = params.disk_sizes;
      request.rel_freqs = params.rel_freqs;
      request.delta = params.delta;
      // As in BuildSchedule: delta skips the probabilities (its
      // historical build path stays byte-for-byte); the others derive
      // their frequencies from the population's mean nominal demand.
      if (params.optimizer != "delta") {
        request.probs = PopulationNominalProbs(params);
      }
      Result<OptimizedSchedule> built = optimizer->Build(request);
      if (!built.ok()) return built.status();
      ServerSchedule out{std::move(built->layout), std::move(built->program),
                         built->predicted_delay};
      if (params.pull.Active()) {
        Result<pull::HybridProgram> hybrid = pull::GenerateHybridProgram(
            out.layout, params.pull.pull_slots);
        if (!hybrid.ok()) return hybrid.status();
        hybrid_layout = std::move(hybrid->layout);
        out.program = std::move(hybrid->program);
      }
      return out;
    }
    Result<DiskLayout> layout =
        params.rel_freqs.empty()
            ? MakeDeltaLayout(params.disk_sizes, params.delta)
            : MakeLayout(params.disk_sizes, params.rel_freqs);
    if (!layout.ok()) return layout.status();
    Result<BroadcastProgram> program = [&]() -> Result<BroadcastProgram> {
      if (params.program_kind == ProgramKind::kSkewed) {
        return GenerateSkewedProgram(*layout);
      }
      Result<BroadcastProgram> reference = GenerateMultiDiskProgram(*layout);
      if (!reference.ok()) return reference.status();
      Rng rng = master.Split(kProgramStream);
      return GenerateRandomProgram(*layout, reference->period(), &rng);
    }();
    if (!program.ok()) return program.status();
    return ServerSchedule{std::move(*layout), std::move(*program), 0.0};
  }();
  if (!schedule.ok()) return schedule.status();
  const DiskLayout* const layout = &schedule->layout;
  BroadcastProgram* const program = &schedule->program;

  const uint64_t total = layout->TotalPages();
  obs::Stopwatch setup_watch;
  const des::QueueBackend resolved_queue = des::ResolveQueueBackend(
      params.des_queue, /*expected_clients=*/params.clients.size());
  des::Simulation sim(resolved_queue);
  if (observers.profile_des) sim.EnableProfiling();
  sim.AttachTimeline(observers.timeline);
  BCAST_TIMELINE(observers.timeline,
                 NameTrack(obs::track::kSim, "des"));
  BroadcastChannel channel(&sim, &*program);

  // One pull server is shared by the whole population: the backchannel
  // and request queue are server-side resources, so clients contend for
  // uplink slots and benefit from each other's pulls (a page one client
  // requested resumes every waiter).
  std::unique_ptr<pull::PullServer> pull_server;
  if (params.pull.Active()) {
    pull_server = std::make_unique<pull::PullServer>(&sim, hybrid_layout,
                                                     params.pull);
    if (pull_server->enabled()) channel.AttachPullServer(pull_server.get());
    BCAST_TIMELINE(observers.timeline,
                   NameTrack(obs::track::kPull, "pull"));
  }

  // Server-side process faults (stalls + jitter): the plane is a
  // server-side resource like the pull server — one per run, shared by
  // every receiver, because the server's trouble is common-mode across
  // the population. Built only when the axes are on.
  std::unique_ptr<fault::ServerFaultPlane> server_faults;
  if (params.fault.process.ServerActive()) {
    Rng salt_rng = fault::FaultStream(Rng(params.fault.fault_seed),
                                      /*client_id=*/0,
                                      fault::Purpose::kJitter);
    server_faults = std::make_unique<fault::ServerFaultPlane>(
        params.fault.process,
        fault::FaultStream(Rng(params.fault.fault_seed), /*client_id=*/0,
                           fault::Purpose::kStall),
        salt_rng.Next());
  }

  // Cold-page set pinned to the initial program (see RunSimulation).
  std::vector<bool> cold_pages;
  if ((params.pull.Active() || params.adapt.Active()) &&
      program->num_disks() > 1) {
    const DiskIndex coldest =
        static_cast<DiskIndex>(program->num_disks() - 1);
    cold_pages.resize(total);
    for (PageId p = 0; p < static_cast<PageId>(total); ++p) {
      cold_pages[p] = program->DiskOf(p) == coldest;
    }
  }
  // The adaptive control plane is population-wide: one loss monitor
  // aggregates every receiver's failures (the server sees the union),
  // and one controller steers the shared program and pull split.
  std::unique_ptr<adapt::LossMonitor> loss_monitor;
  std::unique_ptr<adapt::Controller> controller;
  if (params.adapt.Active()) {
    if (params.fault.Active()) {
      loss_monitor =
          std::make_unique<adapt::LossMonitor>(static_cast<PageId>(total));
    }
    adapt::Controller::Hooks hooks;
    hooks.channel = &channel;
    hooks.pull = (pull_server != nullptr && pull_server->enabled())
                     ? pull_server.get()
                     : nullptr;
    hooks.loss = loss_monitor.get();
    controller = std::make_unique<adapt::Controller>(&sim, *layout,
                                                     params.adapt, hooks);
    BCAST_TIMELINE(observers.timeline,
                   NameTrack(obs::track::kController, "adapt"));
  }

  // Assemble every client's private machinery through the shared
  // builder (core/client_world.h) — the same code the population engine
  // runs, so the two paths cannot drift apart.
  ClientWorldDeps deps;
  deps.sim = &sim;
  deps.channel = &channel;
  deps.layout = &*layout;
  deps.program = &*program;
  deps.hybrid = &hybrid_layout;
  deps.timeline = observers.timeline;
  deps.trace = observers.trace;
  deps.loss_monitor = loss_monitor.get();
  deps.server_faults = server_faults.get();
  deps.cold_pages = &cold_pages;
  if (pull_server != nullptr) {
    // Each client gets its own requester; the in-flight uplink loss
    // draw comes from the (client id, kUplink) fault sub-stream so
    // pull never perturbs the downlink draws.
    deps.make_pull = [&sim, &pull_server, &params](
                         size_t c, const fault::FaultParams& scaled) {
      std::optional<Rng> uplink_rng;
      double uplink_loss = 0.0;
      if (scaled.Active() && scaled.loss > 0.0) {
        uplink_rng = fault::FaultStream(Rng(scaled.fault_seed),
                                        /*client_id=*/c,
                                        fault::Purpose::kUplink);
        uplink_loss = scaled.loss;
      }
      return std::make_unique<pull::PullClient>(
          &sim, pull_server.get(), params.pull, uplink_rng, uplink_loss);
    };
  }
  if (controller != nullptr) {
    deps.cold_wait_for = [&controller](size_t) {
      return &controller->stats().cold_wait;
    };
  }
  std::vector<ClientWorld> worlds(params.clients.size());
  for (size_t c = 0; c < params.clients.size(); ++c) {
    BCAST_RETURN_IF_ERROR(
        BuildClientWorld(params, c, master, deps, &worlds[c]));
  }

  timings.setup_seconds = setup_watch.ElapsedSeconds();

  // The population-wide stats sampler: one snapshot aggregates every
  // client's totals — the same view MakePopulationRunReport summarizes,
  // so a stream summary reproduces the report's headline numbers. As in
  // the single-client runner it is the one observer that *does* add DES
  // events (tagged kStats); the tick re-arms only while some client is
  // still running, so Run() can drain the queue and return.
  uint64_t stats_prev_requests = 0;
  uint64_t stats_prev_hits = 0;
  double stats_prev_rt_sum = 0.0;
  auto take_stats_sample = [&](bool final_sample) {
    obs::StatsSample s;
    s.t = sim.Now();
    s.wall_seconds = observers.stats->ElapsedSeconds();
    s.events = sim.events_dispatched();
    double rt_sum = 0.0;
    for (const auto& world : worlds) {
      const ClientMetrics& m = world.client->metrics();
      s.requests += m.requests();
      s.hits += m.cache_hits();
      s.warmup_requests += world.client->warmup_requests();
      rt_sum += m.response_time().sum();
      const std::vector<uint64_t>& per_disk = m.served_per_disk();
      if (s.served_per_disk.size() < per_disk.size()) {
        s.served_per_disk.resize(per_disk.size(), 0);
      }
      for (size_t d = 0; d < per_disk.size(); ++d) {
        s.served_per_disk[d] += per_disk[d];
      }
      if (world.receiver != nullptr) {
        s.fault_lost += world.receiver->stats().lost;
        s.fault_retries += world.receiver->stats().retries;
      }
    }
    s.mean_rt =
        s.requests > 0 ? rt_sum / static_cast<double>(s.requests) : 0.0;
    s.win_requests = s.requests - stats_prev_requests;
    s.win_hits = s.hits - stats_prev_hits;
    s.win_mean_rt = s.win_requests > 0
                        ? (rt_sum - stats_prev_rt_sum) /
                              static_cast<double>(s.win_requests)
                        : 0.0;
    if (pull_server != nullptr) {
      s.pull_queue_depth = pull_server->queue_depth();
      s.pull_serviced = pull_server->stats().serviced_pages;
    }
    s.final_sample = final_sample;
    stats_prev_requests = s.requests;
    stats_prev_hits = s.hits;
    stats_prev_rt_sum = rt_sum;
    observers.stats->Write(s);
  };
  std::function<void()> stats_tick;
  if (observers.stats != nullptr) {
    const double interval = std::max(observers.stats_interval, 1.0);
    stats_tick = [&take_stats_sample, &stats_tick, &sim, &worlds,
                  interval]() {
      take_stats_sample(false);
      const bool all_finished =
          std::all_of(worlds.begin(), worlds.end(),
                      [](const auto& w) { return w.client->finished(); });
      if (!all_finished) {
        sim.Schedule(interval, stats_tick, des::EventKind::kStats);
      }
    };
    sim.Schedule(interval, stats_tick, des::EventKind::kStats);
  }

  // Schedule-version bumps (see RunSimulation): the server re-announces
  // its program every version_every slots, re-arming every in-flight
  // wait across the whole population through the resync path.
  uint64_t version_bumps = 0;
  std::function<void()> version_tick;
  if (params.fault.process.version_every > 0.0) {
    channel.EnableResync();
    const double every = params.fault.process.version_every;
    version_tick = [&version_tick, &version_bumps, &sim, &channel,
                    every]() {
      if (sim.live_processes() == 0) return;
      channel.SetProgram(&channel.program(), sim.Now());
      ++version_bumps;
      sim.Schedule(every, version_tick, des::EventKind::kController);
    };
    sim.Schedule(every, version_tick, des::EventKind::kController);
  }

  obs::Stopwatch run_watch;
  for (auto& world : worlds) sim.Spawn(world.client->Run());
  if (controller != nullptr) controller->Start();
  if (observers.horizon > 0.0) {
    // Bounded run (chaos no-hang check): an unfinished client at the
    // horizon is a liveness violation, reported instead of aborting.
    sim.RunUntil(observers.horizon);
    for (size_t c = 0; c < worlds.size(); ++c) {
      if (!worlds[c].client->finished()) {
        return Status::Internal(StrFormat(
            "no-hang violation: client %zu unfinished at horizon %.0f "
            "(t=%.0f, events=%llu)",
            c, observers.horizon, sim.Now(),
            static_cast<unsigned long long>(sim.events_dispatched())));
      }
    }
  } else {
    sim.Run();
  }
  timings.measured_seconds = run_watch.ElapsedSeconds();

  MultiClientResult result;
  result.aggregate = ClientMetrics(program->num_disks());
  for (size_t c = 0; c < worlds.size(); ++c) {
    BCAST_CHECK(worlds[c].client->finished())
        << "client " << c << " did not finish";
    result.per_client.push_back(worlds[c].client->metrics());
    result.aggregate.Merge(worlds[c].client->metrics());
    const double mean = worlds[c].client->metrics().mean_response_time();
    result.mean_response_times.push_back(mean);
    result.response_across_clients.Add(mean);
    if (worlds[c].receiver != nullptr) {
      result.faults.Merge(worlds[c].receiver->stats());
      result.faults_active = true;
    }
    result.cold_requests += worlds[c].client->cold_requests();
    result.cold_hits += worlds[c].client->cold_hits();
  }
  // Version bumps are a per-run fact, not a per-client sum: assign after
  // the merges (each receiver contributes zero).
  if (result.faults_active) result.faults.version_bumps = version_bumps;
  // The exact end-of-run record (after the finished checks above).
  if (observers.stats != nullptr) take_stats_sample(true);
  if (pull_server != nullptr) {
    pull_server->FinishRun(sim.Now());
    result.pull_stats = pull_server->stats();
    result.pull_active = true;
  }
  if (controller != nullptr) {
    result.adapt_stats = controller->stats();
    result.adapt_active = true;
  }
  result.end_time = sim.Now();
  result.events_dispatched = sim.events_dispatched();
  result.predicted_delay = schedule->predicted_delay;
  result.resolved_queue = resolved_queue;
  if (observers.profile_des) {
    result.profile = sim.profile();
    result.profile_active = true;
  }
  timings.total_seconds = total_watch.ElapsedSeconds();
  result.timings = timings;
  return result;
}

obs::RunReport MakePopulationRunReport(const MultiClientParams& params,
                                       const MultiClientResult& result,
                                       const std::string& config,
                                       const std::string& tool) {
  obs::RunReport report;
  report.tool = tool;
  report.mode = "population";
  report.config = config;
  report.optimizer = params.optimizer;
  report.seed = params.seed;
  report.requests = result.aggregate.requests();
  report.cache_hits = result.aggregate.cache_hits();
  report.response = result.aggregate.response_histogram().Summary();
  report.tuning = result.aggregate.tuning_histogram().Summary();
  report.served_per_disk = result.aggregate.served_per_disk();
  report.end_time = result.end_time;
  report.timings = result.timings;
  report.events_dispatched = result.events_dispatched;
  report.FinalizeThroughput(result.end_time,
                            result.timings.measured_seconds);
  const double min_rt = result.response_across_clients.min();
  report.extra = {
      {"clients", static_cast<double>(params.clients.size())},
      {"population_mean_rt", result.response_across_clients.mean()},
      {"population_min_rt", min_rt},
      {"population_max_rt", result.response_across_clients.max()},
      {"fairness_max_over_min",
       min_rt > 0.0 ? result.response_across_clients.max() / min_rt : 0.0},
  };
  // Per-client response-time distributions: the fairness extras above
  // only summarize means, but a client can share the population mean
  // while suffering a far heavier tail (e.g. when its interest lives on
  // the slow disk). One block per client, in `clients` order — capped so
  // an engine-scale population (100k clients) cannot bloat the report;
  // large runs rely on the class blocks instead.
  constexpr size_t kMaxPerClientBlocks = 256;
  for (size_t c = 0; c < result.per_client.size() &&
                     result.per_client.size() <= kMaxPerClientBlocks;
       ++c) {
    const ClientMetrics& m = result.per_client[c];
    const obs::HistogramSummary rt = m.response_histogram().Summary();
    const std::string prefix = "client" + std::to_string(c) + "_";
    report.extra.emplace_back(prefix + "mean_rt", m.mean_response_time());
    report.extra.emplace_back(prefix + "rt_p50", rt.p50);
    report.extra.emplace_back(prefix + "rt_p90", rt.p90);
    report.extra.emplace_back(prefix + "rt_p99", rt.p99);
    report.extra.emplace_back(prefix + "rt_max", rt.max);
    report.extra.emplace_back(
        prefix + "hit_rate",
        m.requests() > 0
            ? static_cast<double>(m.cache_hits()) /
                  static_cast<double>(m.requests())
            : 0.0);
  }
  // The analytic prediction rides along only for the non-default
  // optimizers: delta reports keep their historical byte format.
  if (params.optimizer != "delta") {
    report.extra.emplace_back("optimizer_predicted_delay",
                              result.predicted_delay);
  }
  if (result.faults_active) {
    AppendFaultExtras(params.fault, result.faults, &report);
  }
  if (result.pull_active) {
    AppendPullExtras(params.pull, result.pull_stats, &report);
  }
  if (result.adapt_active) {
    AppendAdaptExtras(params.adapt, result.adapt_stats, &report);
  }
  if (result.profile_active) {
    AppendProfileExtras(result.profile, &report);
  }
  return report;
}

}  // namespace bcast
