/// \file simulator.h
/// \brief End-to-end wiring: params → program + mapping + cache + client →
/// one simulated run → results.

#ifndef BCAST_CORE_SIMULATOR_H_
#define BCAST_CORE_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/adapt_params.h"
#include "adapt/adapt_stats.h"
#include "broadcast/disk_config.h"
#include "broadcast/program.h"
#include "client/mapping.h"
#include "core/metrics.h"
#include "core/params.h"
#include "des/simulation.h"
#include "fault/recovery.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/stats_stream.h"
#include "obs/stopwatch.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "pull/pull_params.h"
#include "pull/pull_stats.h"

namespace bcast {

namespace internal {
/// Named RNG sub-streams shared by every runner (simulator, analytic
/// model, updates): changing one experimental factor must never change
/// the randomness feeding another, and the analytic model must see the
/// exact same noise mapping the simulator does.
inline constexpr uint64_t kRequestStream = 1;
inline constexpr uint64_t kNoiseStream = 2;
inline constexpr uint64_t kProgramStream = 3;
inline constexpr uint64_t kUpdateStream = 7;
}  // namespace internal

/// \brief The server-side schedule one run broadcasts: the layout the
/// chosen `ScheduleOptimizer` designed, the (push-only) program over it,
/// and the optimizer's analytic expected-delay prediction.
struct ServerSchedule {
  DiskLayout layout;
  BroadcastProgram program;

  /// Expected wait (broadcast units, to transmission start) the optimizer
  /// predicts under the nominal access distribution; 0 when the schedule
  /// was built without probabilities (the historical delta path).
  double predicted_delay = 0.0;
};

/// \brief Everything a run produced.
struct SimResult {
  /// Measured-phase client metrics.
  ClientMetrics metrics{1};

  /// Requests spent warming the cache.
  uint64_t warmup_requests = 0;

  /// Simulated clock at the end of the run (broadcast units).
  double end_time = 0.0;

  /// Broadcast period of the generated program (slots).
  uint64_t period = 0;

  /// Empty (wasted) slots per period in the generated program.
  uint64_t empty_slots = 0;

  /// Logical pages whose mapping Noise actually moved.
  uint64_t perturbed_pages = 0;

  /// Wall-clock breakdown of the run.
  obs::PhaseTimings timings;

  /// Events the DES kernel dispatched during the run.
  uint64_t events_dispatched = 0;

  /// Channel-fault degradation accounting; populated (and
  /// `faults_active` set) only when `params.fault.Active()`.
  fault::FaultStats faults;
  bool faults_active = false;

  /// Hybrid push–pull accounting; populated (and `pull_active` set)
  /// only when `params.pull.Active()`.
  pull::PullStats pull_stats;
  bool pull_active = false;

  /// Adaptive-controller decision accounting; populated (and
  /// `adapt_active` set) only when `params.adapt.Active()`.
  adapt::AdaptStats adapt_stats;
  bool adapt_active = false;

  /// Measured-phase requests (and hits) against the pinned cold-page
  /// set (the slowest disk of the *initial* program). Populated when
  /// pull or adaptation is active; never emitted into run reports.
  uint64_t cold_requests = 0;
  uint64_t cold_hits = 0;

  /// Per-event-kind DES dispatch profile; populated (and
  /// `profile_active` set) only when `SimObservers::profile_des` was on.
  des::DesProfile profile;
  bool profile_active = false;

  /// The schedule optimizer's analytic expected-delay prediction for the
  /// program this run broadcast (0 when built without probabilities).
  double predicted_delay = 0.0;

  /// The concrete DES backend the run executed on: `params.des_queue`
  /// with `kAuto` resolved against the run's client count. Backends are
  /// bit-identical by contract, so this is provenance, not semantics.
  des::QueueBackend resolved_queue = des::QueueBackend::kHeap;
};

/// \brief Optional observability hooks for a run. All default to off; a
/// null member costs the hot loop at most one pointer test, and none of
/// them can perturb the simulation (same events, same randomness).
struct SimObservers {
  /// Sampled per-request trace records (unowned).
  obs::TraceSink* trace = nullptr;

  /// Run-level counters, gauges, and histograms (unowned). The simulator
  /// records under the "sim/" prefix: requests, cache_hits,
  /// warmup_requests, events, the period/end_time gauges, and the
  /// response_slots / tuning_slots histograms.
  obs::MetricsRegistry* registry = nullptr;

  /// Chrome trace-event timeline (unowned). Spans and instants are
  /// emitted for the DES run, client phases, miss waits, cache
  /// evictions, fault-recovery episodes, pull service, and controller
  /// epochs. Observation only: the attached run stays bit-identical.
  obs::TimelineWriter* timeline = nullptr;

  /// Periodic stats stream (unowned). When set, a sampler event fires
  /// every `stats_interval` simulated slots and appends one JSONL
  /// snapshot; one exact final sample is appended after the run. The
  /// sampler adds events to the DES (visible in `events_dispatched`),
  /// so golden-report comparisons must keep it off.
  obs::StatsWriter* stats = nullptr;

  /// Slots between stats samples (>= 1; values below 1 are clamped).
  double stats_interval = 1000.0;

  /// Per-event-kind DES dispatch profiling (counts + wall-clock ns),
  /// surfaced as `profile_*` report extras. Wall-clock only; cannot
  /// perturb the simulation.
  bool profile_des = false;

  /// Simulated-time budget for the run; 0 = unbounded (the default, the
  /// historical behavior). When > 0 the event loop stops at this time and
  /// an unfinished client yields a Status error instead of a crash — the
  /// chaos harness's no-hang invariant (tools/bcastchaos) runs every
  /// adversarial scenario under a horizon. A run that finishes before the
  /// horizon is untouched by it (same events, same results).
  double horizon = 0.0;
};

/// \brief The `PageCatalog` a simulation exposes to its cache policy:
/// exact probabilities from the access generator, exact frequencies and
/// disk indices from the program through the mapping.
class SimCatalog : public PageCatalog {
 public:
  /// All referents must outlive the catalog.
  SimCatalog(const RequestSource* gen, const BroadcastProgram* program,
             const Mapping* mapping)
      : gen_(gen), program_(program), mapping_(mapping) {}

  double Probability(PageId page) const override {
    return gen_->Probability(page);
  }
  double Frequency(PageId page) const override {
    return program_->NormalizedFrequency(mapping_->ToPhysical(page));
  }
  DiskIndex DiskOf(PageId page) const override {
    return program_->DiskOf(mapping_->ToPhysical(page));
  }
  uint64_t NumDisks() const override { return program_->num_disks(); }

 private:
  const RequestSource* gen_;
  const BroadcastProgram* program_;
  const Mapping* mapping_;
};

/// \brief The nominal per-page access probabilities the server designs
/// against: the client's RegionZipf distribution over the hottest
/// `access_range` physical pages, padded with zeros to \p db_size.
/// Non-increasing hottest-first by construction (what the non-delta
/// optimizers require): a partial final region — whose true pmf is
/// hotter per page than the region before it, since the full region
/// weight covers fewer pages — is rescaled to uniform region width.
/// Exact otherwise — no sampling, no RNG. Mapping offset and
/// noise are deliberately ignored: the server designs for the advertised
/// hot-first ordering, and the client-side mapping perturbations are the
/// paper's misalignment experiments, not server knowledge.
std::vector<double> NominalAccessProbs(uint64_t access_range,
                                       uint64_t region_size, double theta,
                                       uint64_t db_size);

/// \brief Builds the full server schedule \p params describes: for the
/// multi-disk program, the configured `ScheduleOptimizer` ("delta",
/// "ksy", "rbo") designs layout and program together; the skewed and
/// random study programs bypass the optimizer frontier and carry the
/// Δ-rule (or explicit-frequency) layout.
Result<ServerSchedule> BuildSchedule(const SimParams& params);

/// \brief Builds the broadcast program \p params describes (multi-disk,
/// skewed, or random; the paper's Delta rule or explicit frequencies).
/// A thin wrapper over `BuildSchedule` for callers that only need the
/// program (the chaos version axis, the updates runner).
Result<BroadcastProgram> BuildProgram(const SimParams& params);

/// \brief Runs one complete simulation. Deterministic in `params.seed`
/// (observability hooks never touch simulation randomness).
Result<SimResult> RunSimulation(const SimParams& params);

/// \brief Same, with observability hooks attached.
Result<SimResult> RunSimulation(const SimParams& params,
                                const SimObservers& observers);

/// \brief Renders one run as a machine-readable report: params, program
/// geometry, response/tuning percentiles, per-disk service counts, and
/// wall-clock throughput. Callers aggregating several seeds can merge
/// `SimResult`s first (see `ClientMetrics::Merge`) and adjust
/// `report.seeds`.
obs::RunReport MakeRunReport(const SimParams& params,
                             const SimResult& result,
                             const std::string& tool);

/// \brief Appends the channel-fault extras (rates, delivery ratio, retry
/// and resync accounting) to \p report. Call only for active fault
/// params: an inactive run's report must stay byte-identical to the
/// pre-fault format.
void AppendFaultExtras(const fault::FaultParams& params,
                       const fault::FaultStats& stats,
                       obs::RunReport* report);

/// \brief Appends the hybrid push–pull extras (configured capacity,
/// uplink accounting, service mix, pull-vs-push latency, cold-page
/// latency) to \p report. Call only for active pull params: a push-only
/// run's report must stay byte-identical to the pre-pull format.
void AppendPullExtras(const pull::PullParams& params,
                      const pull::PullStats& stats,
                      obs::RunReport* report);

/// \brief Appends the adaptive-controller extras (configured knobs,
/// epoch/rebuild/promotion counts, slot trajectory, pinned cold-page
/// latency) to \p report. Call only for active adapt params: a static
/// run's report must stay byte-identical to the pre-adapt format.
void AppendAdaptExtras(const adapt::AdaptParams& params,
                       const adapt::AdaptStats& stats,
                       obs::RunReport* report);

/// \brief Appends the DES dispatch profile (`profile_<kind>_dispatches`
/// and `profile_<kind>_cpu_ns` per event kind, plus totals) to
/// \p report. Call only when profiling ran: an unprofiled run's report
/// must stay byte-identical to the pre-profiling format.
void AppendProfileExtras(const des::DesProfile& profile,
                         obs::RunReport* report);

}  // namespace bcast

#endif  // BCAST_CORE_SIMULATOR_H_
