#include "core/updates.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "broadcast/channel.h"
#include "broadcast/generator.h"
#include "client/client.h"
#include "common/logging.h"
#include "common/zipf.h"
#include "core/simulator.h"
#include "des/simulation.h"
#include "obs/stopwatch.h"

namespace bcast {

using internal::kNoiseStream;
using internal::kRequestStream;
using internal::kUpdateStream;

Result<UpdateTracker> UpdateTracker::Make(PageId num_pages,
                                          double total_rate, double theta,
                                          Rng rng) {
  if (num_pages == 0) {
    return Status::InvalidArgument("need at least one page");
  }
  if (total_rate < 0.0 || !std::isfinite(total_rate)) {
    return Status::InvalidArgument("update rate must be finite and >= 0");
  }
  std::vector<double> rates(num_pages, 0.0);
  if (total_rate > 0.0) {
    Result<ZipfDistribution> zipf = ZipfDistribution::Make(num_pages, theta);
    if (!zipf.ok()) return zipf.status();
    for (PageId p = 0; p < num_pages; ++p) {
      rates[p] = total_rate * zipf->Probability(p + 1);
    }
  }
  return UpdateTracker(std::move(rates), rng);
}

UpdateTracker::UpdateTracker(std::vector<double> rates, Rng rng)
    : rates_(std::move(rates)), clocks_(rates_.size()), rng_(rng) {
  for (PageId p = 0; p < clocks_.size(); ++p) {
    clocks_[p].next = rates_[p] > 0.0
                          ? rng_.NextExponential(1.0 / rates_[p])
                          : std::numeric_limits<double>::infinity();
  }
}

double UpdateTracker::LastUpdateBefore(PageId page, double now) {
  BCAST_CHECK_LT(page, clocks_.size());
  PageClock& clock = clocks_[page];
  while (clock.next <= now) {
    clock.last = clock.next;
    clock.next += rng_.NextExponential(1.0 / rates_[page]);
    ++updates_;
  }
  return clock.last < 0.0 ? -std::numeric_limits<double>::infinity()
                          : clock.last;
}

namespace {

// The volatile-data client: the Section-4.1 loop plus staleness handling.
// Structured as a plain struct of state driven by one coroutine so the
// whole run stays deterministic and allocation-light.
struct VolatileClient {
  des::Simulation* sim;
  BroadcastChannel* channel;
  CachePolicy* cache;
  RequestSource* gen;
  const Mapping* mapping;
  UpdateTracker* updates;
  fault::Receiver* receiver;  // null when faults are off
  ConsistencyAction action;
  uint64_t measured_requests;
  uint64_t max_warmup_requests;
  double awake_for;
  double sleep_for;
  uint64_t window_cycles;

  // Per-logical-page freshness time: when the cached copy's content was
  // current (fetch completion, or last on-air refresh under kAutoRefresh).
  std::vector<double> content_time;

  UpdateSimResult result;
  RunningStat response;
  bool finished = false;

  // Disconnection state.
  double next_sleep = 0.0;
  double last_reconnect = 0.0;
  double distrust_before = -std::numeric_limits<double>::infinity();

  // Response-time distribution of the measured phase.
  obs::LogHistogram response_hist;

  void RecordResponse(double slots) {
    response.Add(slots);
    response_hist.Add(slots);
  }

  double Period() const {
    return static_cast<double>(channel->program().period());
  }

  double PeriodStart(double now) const {
    return std::floor(now / Period()) * Period();
  }

  // Last completed broadcast of `physical` within (window_start, to],
  // or -inf if none.
  double LastBroadcastEnd(PageId physical, double window_start,
                          double to) const {
    double probe = std::max(window_start, to - Period());
    if (probe < 0.0) probe = 0.0;
    double end = channel->program().NextArrivalEnd(physical, probe);
    double last = -std::numeric_limits<double>::infinity();
    while (end <= to) {
      last = end;
      end = channel->program().NextArrivalEnd(physical, end);
    }
    return last;
  }

  // Refresh point of a cached page under kAutoRefresh: the radio picks a
  // cached page up every time it passes *while the client is awake*, so
  // its content is as fresh as its most recent completed broadcast in the
  // current awake window (refreshes from earlier windows were committed
  // into content_time before each nap).
  double EffectiveContentTime(PageId logical, double now) const {
    const double t = content_time[logical];
    if (action != ConsistencyAction::kAutoRefresh) return t;
    const PageId physical = mapping->ToPhysical(logical);
    return std::max(t, LastBroadcastEnd(physical, last_reconnect, now));
  }

  // Before sleeping, bank the passive refreshes of the ending awake
  // window so they are not lost once last_reconnect moves forward.
  void CommitRefreshes(double window_start, double window_end) {
    for (PageId l = 0; l < static_cast<PageId>(content_time.size()); ++l) {
      if (!cache->Contains(l)) continue;
      const double last = LastBroadcastEnd(mapping->ToPhysical(l),
                                           window_start, window_end);
      if (last > content_time[l]) content_time[l] = last;
    }
  }

  des::Process Run() {
    const uint64_t fill_target =
        std::min<uint64_t>(cache->capacity(), gen->access_range());
    const bool naps_enabled = awake_for > 0.0 && sleep_for > 0.0;
    next_sleep = awake_for;
    uint64_t warmed = 0;
    uint64_t measured = 0;
    while (measured < measured_requests) {
      if (naps_enabled && sim->Now() >= next_sleep) {
        if (action == ConsistencyAction::kAutoRefresh) {
          CommitRefreshes(last_reconnect, sim->Now());
        }
        co_await sim->Delay(sleep_for);
        ++result.naps;
        last_reconnect = sim->Now();
        next_sleep = last_reconnect + awake_for;
        if (action == ConsistencyAction::kInvalidate &&
            window_cycles > 0 &&
            sleep_for > static_cast<double>(window_cycles) * Period()) {
          // Slept past the server's invalidation history: nothing cached
          // before this instant can be verified anymore.
          distrust_before = last_reconnect;
          ++result.distrust_purges;
        }
      }
      const bool warming =
          cache->size() < fill_target && warmed < max_warmup_requests;
      const bool record = !warming;
      if (warming) ++warmed;

      const PageId logical = gen->NextPage();
      const double start = sim->Now();
      const PageId physical = mapping->ToPhysical(logical);

      bool needs_fetch = false;
      bool counted_refetch = false;
      if (cache->Lookup(logical, start)) {
        const double have = EffectiveContentTime(logical, start);
        const double updated = updates->LastUpdateBefore(physical, start);
        const bool distrusted = have < distrust_before;
        if (!distrusted && updated <= have) {
          if (record) {
            ++result.fresh_hits;
            RecordResponse(0.0);
          }
        } else if (action == ConsistencyAction::kInvalidate &&
                   (distrusted || updated < PeriodStart(start))) {
          // Either the stale copy was announced in an earlier cycle's
          // invalidation list, or the client slept past the window and
          // cannot trust the copy at all: re-fetch.
          needs_fetch = true;
          counted_refetch = true;
        } else {
          // Either no consistency action, or the update is too recent to
          // be known: served stale.
          if (record) {
            ++result.stale_hits;
            RecordResponse(0.0);
          }
        }
      } else {
        needs_fetch = true;
      }

      if (needs_fetch) {
        co_await channel->WaitForPage(physical, receiver);
        const double now = sim->Now();
        if (!cache->Contains(logical)) cache->Insert(logical, now);
        if (cache->Contains(logical)) content_time[logical] = now;
        if (record) {
          if (counted_refetch) {
            ++result.invalidation_refetches;
          } else {
            ++result.cold_misses;
          }
          RecordResponse(now - start);
        }
      }
      if (record) {
        ++result.requests;
        ++measured;
      }
      co_await sim->Delay(gen->NextThinkTime());
    }
    finished = true;
  }
};

}  // namespace

Result<UpdateSimResult> RunUpdateSimulation(const SimParams& base,
                                            const UpdateParams& updates) {
  return RunUpdateSimulation(base, updates, nullptr);
}

Result<UpdateSimResult> RunUpdateSimulation(const SimParams& base,
                                            const UpdateParams& updates,
                                            obs::MetricsRegistry* registry) {
  BCAST_RETURN_IF_ERROR(base.Validate());
  if (base.pull.Active()) {
    return Status::InvalidArgument(
        "updates mode does not model the backchannel; drop the pull "
        "params");
  }
  if (updates.update_rate < 0.0 || !std::isfinite(updates.update_rate)) {
    return Status::InvalidArgument("update_rate must be finite and >= 0");
  }
  if (updates.awake_for < 0.0 || !std::isfinite(updates.awake_for) ||
      updates.sleep_for < 0.0 || !std::isfinite(updates.sleep_for)) {
    return Status::InvalidArgument(
        "awake_for/sleep_for must be finite and >= 0");
  }
  if ((updates.awake_for > 0.0) != (updates.sleep_for > 0.0)) {
    return Status::InvalidArgument(
        "awake_for and sleep_for must both be positive (naps on) or both "
        "zero (naps off)");
  }

  Result<DiskLayout> layout =
      base.rel_freqs.empty() ? MakeDeltaLayout(base.disk_sizes, base.delta)
                             : MakeLayout(base.disk_sizes, base.rel_freqs);
  if (!layout.ok()) return layout.status();
  Result<BroadcastProgram> program = BuildProgram(base);
  if (!program.ok()) return program.status();

  const Rng master(base.seed);
  NoiseModel noise;
  noise.percent = base.noise_percent;
  noise.coin_pages = base.noise_scope == NoiseScope::kAccessRange
                         ? base.access_range
                         : 0;
  noise.destination = base.noise_destination;
  Result<Mapping> mapping = Mapping::Make(*layout, base.offset, noise,
                                          master.Split(kNoiseStream));
  if (!mapping.ok()) return mapping.status();

  Result<AccessGenerator> gen = AccessGenerator::Make(
      base.access_range, base.region_size, base.theta, base.think_time,
      base.think_kind, master.Split(kRequestStream));
  if (!gen.ok()) return gen.status();

  Result<UpdateTracker> tracker = UpdateTracker::Make(
      static_cast<PageId>(base.ServerDbSize()), updates.update_rate,
      updates.update_theta, master.Split(kUpdateStream));
  if (!tracker.ok()) return tracker.status();

  SimCatalog catalog(&*gen, &*program, &*mapping);
  Result<std::unique_ptr<CachePolicy>> cache = MakeCachePolicy(
      base.policy, base.cache_size, static_cast<PageId>(base.ServerDbSize()),
      &catalog, base.policy_options);
  if (!cache.ok()) return cache.status();

  des::Simulation sim(
      des::ResolveQueueBackend(base.des_queue, /*expected_clients=*/1));
  BroadcastChannel channel(&sim, &*program);
  std::unique_ptr<fault::Receiver> receiver;
  if (base.fault.Active()) {
    receiver = fault::MakeReceiver(base.fault, /*client_id=*/0,
                                   static_cast<double>(program->period()));
  }
  // GCC 12 issues a spurious maybe-uninitialized for the value-initialized
  // histogram vectors nested in `result` once the aggregate crosses an
  // inlining threshold; every member below is explicitly initialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  VolatileClient client{
      &sim,
      &channel,
      cache->get(),
      &*gen,
      &*mapping,
      &*tracker,
      receiver.get(),
      updates.action,
      base.measured_requests,
      base.max_warmup_requests,
      updates.awake_for,
      updates.sleep_for,
      updates.invalidation_window_cycles,
      std::vector<double>(base.ServerDbSize(),
                          -std::numeric_limits<double>::infinity()),
      {},
      {},
      false,
      0.0,
      0.0,
      -std::numeric_limits<double>::infinity(),
      obs::LogHistogram()};
#pragma GCC diagnostic pop
  obs::Stopwatch run_watch;
  sim.Spawn(client.Run());
  sim.Run();
  BCAST_CHECK(client.finished) << "volatile client did not finish";

  client.result.mean_response_time = client.response.mean();
  client.result.response = client.response_hist.Summary();
  client.result.wall_seconds = run_watch.ElapsedSeconds();
  client.result.events_dispatched = sim.events_dispatched();
  if (receiver != nullptr) {
    client.result.faults = receiver->stats();
    client.result.faults_active = true;
  }

  if (registry != nullptr) {
    const UpdateSimResult& r = client.result;
    registry->GetCounter("updates/requests")->Increment(r.requests);
    registry->GetCounter("updates/fresh_hits")->Increment(r.fresh_hits);
    registry->GetCounter("updates/stale_hits")->Increment(r.stale_hits);
    registry->GetCounter("updates/invalidation_refetches")
        ->Increment(r.invalidation_refetches);
    registry->GetCounter("updates/cold_misses")->Increment(r.cold_misses);
    registry->GetCounter("updates/naps")->Increment(r.naps);
    registry->GetCounter("updates/distrust_purges")
        ->Increment(r.distrust_purges);
    registry->GetCounter("updates/generated")
        ->Increment(tracker->updates_generated());
    registry->GetCounter("updates/events")->Increment(r.events_dispatched);
    registry->GetHistogram("updates/response_slots")
        ->Merge(client.response_hist);
  }
  return client.result;
}

obs::RunReport MakeUpdateRunReport(const SimParams& base,
                                   const UpdateParams& updates,
                                   const UpdateSimResult& result,
                                   const std::string& tool) {
  obs::RunReport report;
  report.tool = tool;
  report.mode = "updates";
  report.config = base.ToString();
  report.seed = base.seed;
  report.requests = result.requests;
  report.cache_hits = result.fresh_hits + result.stale_hits;
  report.response = result.response;
  report.timings.measured_seconds = result.wall_seconds;
  report.timings.total_seconds = result.wall_seconds;
  report.events_dispatched = result.events_dispatched;
  report.FinalizeThroughput(0.0, result.wall_seconds);
  report.extra = {
      {"update_rate", updates.update_rate},
      {"update_theta", updates.update_theta},
      {"fresh_hits", static_cast<double>(result.fresh_hits)},
      {"stale_hits", static_cast<double>(result.stale_hits)},
      {"invalidation_refetches",
       static_cast<double>(result.invalidation_refetches)},
      {"cold_misses", static_cast<double>(result.cold_misses)},
      {"naps", static_cast<double>(result.naps)},
      {"distrust_purges", static_cast<double>(result.distrust_purges)},
      {"stale_fraction", result.StaleFraction()},
      {"mean_response_time", result.mean_response_time},
  };
  if (result.faults_active) {
    AppendFaultExtras(base.fault, result.faults, &report);
  }
  return report;
}

}  // namespace bcast
