#include "core/client_world.h"

#include <algorithm>
#include <string>
#include <utility>

#include "adapt/loss_monitor.h"
#include "common/logging.h"

namespace bcast {
namespace {

// Sub-stream tags (see multi_client.cc: client c uses (c, kClientRequest)
// and (c, kClientNoise) so adding/removing a client never disturbs
// another's randomness).
constexpr uint64_t kClientRequest = 1001;
constexpr uint64_t kClientNoise = 1002;

}  // namespace

fault::FaultParams ScaledFaultParams(const fault::FaultParams& base,
                                     const ClientSpec& spec) {
  fault::FaultParams scaled = base;
  if (spec.loss_scale != 1.0) {
    scaled.loss = std::min(1.0, base.loss * spec.loss_scale);
  }
  if (spec.doze_scale != 1.0) {
    scaled.doze_for = base.doze_for * spec.doze_scale;
  }
  return scaled;
}

Status BuildClientWorld(const MultiClientParams& params, size_t c,
                        const Rng& master, const ClientWorldDeps& deps,
                        ClientWorld* out) {
  BCAST_CHECK(deps.sim != nullptr && deps.channel != nullptr &&
              deps.layout != nullptr && deps.program != nullptr &&
              out != nullptr);
  const ClientSpec& spec = params.clients[c];
  const uint64_t total = deps.layout->TotalPages();
  const Rng client_rng = master.Split(1000 + c);
  BCAST_TIMELINE(deps.timeline,
                 NameTrack(obs::track::Client(static_cast<uint32_t>(c)),
                           "client" + std::to_string(c)));

  // Interest shift s composes with the offset rotation: the client's
  // logical page l maps to physical (l + s - offset) mod total, i.e. an
  // effective offset of (offset - s) mod total.
  const uint64_t effective_offset =
      (spec.offset + total - spec.interest_shift % total) % total;
  NoiseModel noise;
  noise.percent = spec.noise_percent;
  noise.coin_pages = spec.noise_scope == NoiseScope::kAccessRange
                         ? spec.access_range
                         : 0;
  Result<Mapping> mapping =
      Mapping::Make(*deps.layout, effective_offset, noise,
                    client_rng.Split(kClientNoise));
  if (!mapping.ok()) return mapping.status();
  out->mapping = std::make_unique<Mapping>(std::move(*mapping));

  Result<AccessGenerator> gen = AccessGenerator::Make(
      spec.access_range, spec.region_size, spec.theta, spec.think_time,
      spec.think_kind, client_rng.Split(kClientRequest));
  if (!gen.ok()) return gen.status();
  out->gen = std::make_unique<AccessGenerator>(std::move(*gen));

  out->catalog = std::make_unique<SimCatalog>(out->gen.get(), deps.program,
                                              out->mapping.get());
  PolicyOptions policy_options = spec.policy_options;
  if (params.pull.Active() && deps.hybrid != nullptr &&
      deps.hybrid->enabled()) {
    // Pull-aware estimator's refetch bound: mean pull-slot spacing.
    policy_options.pull_service_interval =
        static_cast<double>(deps.hybrid->period()) /
        static_cast<double>(deps.hybrid->pull_per_minor *
                            deps.hybrid->num_minor);
  }
  Result<std::unique_ptr<CachePolicy>> cache = MakeCachePolicy(
      spec.policy, spec.cache_size, static_cast<PageId>(total),
      out->catalog.get(), policy_options);
  if (!cache.ok()) return cache.status();
  out->cache = std::move(*cache);

  const fault::FaultParams scaled = ScaledFaultParams(params.fault, spec);
  if (params.fault.Active()) {
    // Each client gets its own radio: independent (client id)-keyed
    // fault streams, independent doze phase, class-scaled knobs.
    out->receiver =
        fault::MakeReceiver(scaled, /*client_id=*/c,
                            static_cast<double>(deps.program->period()));
    out->receiver->AttachTimeline(
        deps.timeline, obs::track::Client(static_cast<uint32_t>(c)));
    if (deps.loss_monitor != nullptr) {
      out->receiver->AttachLossSink(deps.loss_monitor);
    }
    if (deps.server_faults != nullptr) {
      out->receiver->AttachServerFaults(deps.server_faults);
    }
  }
  if (deps.make_pull) {
    out->pull = deps.make_pull(c, scaled);
  }
  // Crash–restart state loss for this client: the in-flight pull
  // request and (cold restarts) the cache go with the process; each
  // client crashes on its own schedule (per-client kCrash stream).
  if (params.fault.process.CrashActive()) {
    out->receiver->SetCrashHook(
        [pull = out->pull.get(), cache_ptr = out->cache.get(),
         cold = params.fault.process.crash_cold]() {
          if (pull != nullptr) pull->OnCrash();
          if (cold) cache_ptr->Clear();
        });
  }
  ClientRunConfig config;
  config.measured_requests = params.measured_requests;
  config.max_warmup_requests = params.max_warmup_requests;
  config.trace = deps.trace;
  config.receiver = out->receiver.get();
  config.pull = out->pull.get();
  config.client_id = static_cast<uint32_t>(c);
  if (deps.cold_pages != nullptr && !deps.cold_pages->empty()) {
    config.cold_pages = deps.cold_pages;
    if (deps.cold_wait_for) {
      config.cold_wait = deps.cold_wait_for(c);
    }
  }
  out->client = std::make_unique<Client>(deps.sim, deps.channel,
                                         out->cache.get(), out->gen.get(),
                                         out->mapping.get(), config);
  return Status::OK();
}

}  // namespace bcast
