/// \file experiment.h
/// \brief Sweep and reporting helpers shared by the bench binaries.
///
/// Every reproduced figure is an x-axis sweep (Delta or Noise) with one
/// series per configuration/policy. These helpers run the sweeps and print
/// the results both as an aligned table (for humans and
/// bench_output.txt) and as CSV (for plotting).

#ifndef BCAST_CORE_EXPERIMENT_H_
#define BCAST_CORE_EXPERIMENT_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/params.h"
#include "core/simulator.h"

namespace bcast {

/// \brief One labelled series of y-values over a shared x-axis.
struct Series {
  std::string label;
  std::vector<double> y;
};

/// \brief Runs \p base per delta in \p deltas; returns the mean response
/// time (broadcast units) for each, averaged over \p replications
/// consecutive seeds (the noise mapping is redrawn per seed, which is the
/// dominant run-to-run variance).
Result<std::vector<double>> SweepDelta(const SimParams& base,
                                       const std::vector<uint64_t>& deltas,
                                       uint64_t replications = 1);

/// \brief Runs \p base per noise level (percent) in \p noises, averaged
/// over \p replications consecutive seeds.
Result<std::vector<double>> SweepNoise(const SimParams& base,
                                       const std::vector<double>& noises,
                                       uint64_t replications = 1);

/// \brief Runs \p params over \p num_seeds consecutive seeds and folds the
/// per-run mean response times into one statistic (mean of means, CI).
Result<RunningStat> ReplicateResponse(const SimParams& params,
                                      uint64_t num_seeds);

/// \brief Prints "title", then an aligned table with column \p x_name and
/// one column per series.
void PrintXYTable(std::ostream& out, const std::string& title,
                  const std::string& x_name, const std::vector<double>& xs,
                  const std::vector<Series>& series, int precision = 1);

/// \brief Prints the same data as CSV (header row first).
void PrintXYCsv(std::ostream& out, const std::string& x_name,
                const std::vector<double>& xs,
                const std::vector<Series>& series, int precision = 4);

/// \brief Prints an access-location breakdown (Figures 11/14): one row per
/// policy, columns Cache / Disk1..DiskN as percentages.
void PrintLocationTable(std::ostream& out, const std::string& title,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::vector<double>>& fractions);

}  // namespace bcast

#endif  // BCAST_CORE_EXPERIMENT_H_
