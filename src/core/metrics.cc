#include "core/metrics.h"

#include "common/logging.h"

namespace bcast {

void ClientMetrics::RecordHit(double response_time) {
  response_time_.Add(response_time);
  response_hist_.Add(response_time);
  ++cache_hits_;
}

void ClientMetrics::RecordMiss(double response_time, DiskIndex disk) {
  BCAST_CHECK_LT(disk, served_per_disk_.size());
  response_time_.Add(response_time);
  response_hist_.Add(response_time);
  ++served_per_disk_[disk];
}

void ClientMetrics::RecordTuning(double slots) {
  tuning_time_.Add(slots);
  tuning_hist_.Add(slots);
}

double ClientMetrics::hit_rate() const {
  const uint64_t total = requests();
  return total == 0
             ? 0.0
             : static_cast<double>(cache_hits_) / static_cast<double>(total);
}

std::vector<double> ClientMetrics::LocationFractions() const {
  std::vector<double> fractions(1 + served_per_disk_.size(), 0.0);
  const uint64_t total = requests();
  if (total == 0) return fractions;
  fractions[0] =
      static_cast<double>(cache_hits_) / static_cast<double>(total);
  for (size_t d = 0; d < served_per_disk_.size(); ++d) {
    fractions[1 + d] =
        static_cast<double>(served_per_disk_[d]) / static_cast<double>(total);
  }
  return fractions;
}

void ClientMetrics::Merge(const ClientMetrics& other) {
  BCAST_CHECK_EQ(served_per_disk_.size(), other.served_per_disk_.size())
      << "merging metrics from different broadcast programs";
  response_time_.Merge(other.response_time_);
  tuning_time_.Merge(other.tuning_time_);
  response_hist_.Merge(other.response_hist_);
  tuning_hist_.Merge(other.tuning_hist_);
  cache_hits_ += other.cache_hits_;
  for (size_t d = 0; d < served_per_disk_.size(); ++d) {
    served_per_disk_[d] += other.served_per_disk_[d];
  }
}

}  // namespace bcast
