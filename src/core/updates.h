/// \file updates.h
/// \brief Volatile data: updates, staleness, and consistency actions
/// (extension).
///
/// The paper's study is read-only; its Section 7 asks "How would our
/// results have to change if we allowed the broadcast data to change from
/// cycle to cycle?" and points at Datacycle's use of periodicity for
/// update semantics. This module answers with the standard follow-up
/// design: server pages receive updates (per-page Poisson processes, with
/// a Zipf-skewed update distribution), cached client copies go stale, and
/// the client can run one of three consistency actions:
///
///  - `kNone` — serve whatever is cached; we count how often that is
///    stale (the do-nothing baseline).
///  - `kInvalidate` — the server announces each cycle's updates at the
///    next period boundary (e.g. in the spare slots the generator leaves);
///    a client hit on a known-stale page becomes a demand re-fetch.
///    Updates from the *current* cycle are not yet announced and can
///    still be served stale.
///  - `kAutoRefresh` — the client's receiver also refreshes any cached
///    page whenever it passes on the broadcast (free in latency, paid in
///    tuning); a cached copy is stale only if the page was updated after
///    its most recent broadcast.
///
/// Staleness bookkeeping is exact but lazy: per-page Poisson update
/// clocks are advanced only when a page is examined.

#ifndef BCAST_CORE_UPDATES_H_
#define BCAST_CORE_UPDATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/program.h"
#include "common/rng.h"
#include "core/params.h"
#include "fault/recovery.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/run_report.h"

namespace bcast {

/// \brief What the client does about staleness.
enum class ConsistencyAction {
  kNone,        ///< Serve cached copies blindly.
  kInvalidate,  ///< Per-cycle invalidation lists; stale hits re-fetch.
  kAutoRefresh, ///< Cached pages refresh as they pass on the air.
};

/// \brief Update-workload parameters.
struct UpdateParams {
  /// Expected updates per broadcast unit across the whole database.
  double update_rate = 0.05;

  /// Zipf skew of which (physical) page an update hits; 0 = uniform.
  /// Updates follow the server's hot ranking: page 0 hottest.
  double update_theta = 0.0;

  /// The consistency action.
  ConsistencyAction action = ConsistencyAction::kInvalidate;

  /// \name Disconnection model ("Sleepers and Workaholics" [Barb94],
  /// discussed in the paper's related work).
  ///
  /// When both are positive the client alternates: awake for `awake_for`
  /// broadcast units (issuing requests), asleep for `sleep_for` (radio
  /// off — no requests, no invalidation lists, no auto-refresh).
  /// @{
  double awake_for = 0.0;
  double sleep_for = 0.0;
  /// @}

  /// How many past cycles of invalidation lists the server re-broadcasts
  /// (kInvalidate only). A client that slept longer than this window
  /// cannot verify its cache on reconnect and must distrust every older
  /// entry (refetching on demand). 0 = unbounded history (never
  /// distrust).
  uint64_t invalidation_window_cycles = 0;
};

/// \brief Per-page lazily-advanced Poisson update clocks.
class UpdateTracker {
 public:
  /// \param num_pages   Physical pages subject to updates.
  /// \param total_rate  Updates per broadcast unit over all pages (> 0 for
  ///                    any updates; 0 disables them).
  /// \param theta       Zipf skew of the per-page rates (page 0 hottest).
  /// \param rng         Update-process randomness (owned).
  static Result<UpdateTracker> Make(PageId num_pages, double total_rate,
                                    double theta, Rng rng);

  /// Time of the last update of \p page at or before \p now
  /// (-infinity if never updated). Advances the page's clock lazily;
  /// `now` must not decrease across calls for the same page.
  double LastUpdateBefore(PageId page, double now);

  /// Total updates generated so far (for tests).
  uint64_t updates_generated() const { return updates_; }

 private:
  UpdateTracker(std::vector<double> rates, Rng rng);

  struct PageClock {
    double last = -1.0;  // last update time; < 0 means none yet
    double next = 0.0;   // next scheduled update
  };

  std::vector<double> rates_;  // per-page update rate (may be 0)
  std::vector<PageClock> clocks_;
  Rng rng_;
  uint64_t updates_ = 0;
};

/// \brief Metrics of one volatile-data run.
struct UpdateSimResult {
  /// Requests measured.
  uint64_t requests = 0;

  /// Hits served fresh from the cache.
  uint64_t fresh_hits = 0;

  /// Hits served with stale data (the client could not know).
  uint64_t stale_hits = 0;

  /// Hits on known-stale pages converted to broadcast re-fetches
  /// (kInvalidate only).
  uint64_t invalidation_refetches = 0;

  /// Ordinary misses (page not cached).
  uint64_t cold_misses = 0;

  /// Naps taken (disconnection model).
  uint64_t naps = 0;

  /// Naps that exceeded the invalidation window, forcing the client to
  /// distrust its whole cache on reconnect.
  uint64_t distrust_purges = 0;

  /// Mean response time over all requests (broadcast units).
  double mean_response_time = 0.0;

  /// Response-time distribution over all measured requests (slots).
  obs::HistogramSummary response;

  /// Wall-clock seconds spent in the event loop.
  double wall_seconds = 0.0;

  /// Events the DES kernel dispatched.
  uint64_t events_dispatched = 0;

  /// Channel-fault accounting; populated (and `faults_active` set) only
  /// when `base.fault.Active()`.
  fault::FaultStats faults;
  bool faults_active = false;

  /// Fraction of requests served stale.
  double StaleFraction() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(stale_hits) /
                     static_cast<double>(requests);
  }
};

/// \brief Runs the paper's client/server simulation with updates.
/// `base` supplies the broadcast, workload, cache and seeds; `updates`
/// the volatility model. Deterministic in `base.seed`.
Result<UpdateSimResult> RunUpdateSimulation(const SimParams& base,
                                            const UpdateParams& updates);

/// \brief Same, additionally accumulating counters and the response
/// histogram into \p registry (under the "updates/" prefix) when it is
/// non-null. Observability never touches simulation randomness.
Result<UpdateSimResult> RunUpdateSimulation(const SimParams& base,
                                            const UpdateParams& updates,
                                            obs::MetricsRegistry* registry);

/// \brief Renders one volatile-data run as a run report (mode "updates"):
/// staleness accounting as extras, plus the channel-fault extras when
/// faults were active. The registry snapshot (if any) is the caller's to
/// attach.
obs::RunReport MakeUpdateRunReport(const SimParams& base,
                                   const UpdateParams& updates,
                                   const UpdateSimResult& result,
                                   const std::string& tool);

}  // namespace bcast

#endif  // BCAST_CORE_UPDATES_H_
